package vectorwise

// Tuple-mover tests: deterministic fold/rebuild behavior, and the
// crash-safety windows of the stable-image rebuild. The failpoint hook
// stops a mover pass at a named stage; "crashing" is then just
// abandoning the DB (Close flushes nothing) and reopening from the
// directory, which replays the WAL against whatever stable image the
// interrupted pass left on disk. The recovered state is compared
// against a plain-Go oracle — no delta may be lost or applied twice.

import (
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"testing"
)

// moverOracle mirrors kv-table contents: key → value.
type moverOracle map[int64]int64

func (o moverOracle) insert(db *DB, t *testing.T, k, v int64) {
	t.Helper()
	if _, err := db.Exec(fmt.Sprintf(`INSERT INTO kv VALUES (%d, %d)`, k, v)); err != nil {
		t.Fatal(err)
	}
	o[k] = v
}

func (o moverOracle) update(db *DB, t *testing.T, k, v int64) {
	t.Helper()
	if _, err := db.Exec(fmt.Sprintf(`UPDATE kv SET v = %d WHERE k = %d`, v, k)); err != nil {
		t.Fatal(err)
	}
	if _, ok := o[k]; ok {
		o[k] = v
	}
}

func (o moverOracle) delete(db *DB, t *testing.T, k int64) {
	t.Helper()
	if _, err := db.Exec(fmt.Sprintf(`DELETE FROM kv WHERE k = %d`, k)); err != nil {
		t.Fatal(err)
	}
	delete(o, k)
}

// verify compares the table, read through a fresh snapshot, against the
// oracle — exact keys, exact values, exact cardinality.
func (o moverOracle) verify(db *DB, t *testing.T, label string) {
	t.Helper()
	res, err := db.Query(`SELECT k, v FROM kv ORDER BY k`)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	if len(res.Rows) != len(o) {
		t.Fatalf("%s: %d rows, oracle has %d", label, len(res.Rows), len(o))
	}
	keys := make([]int64, 0, len(o))
	for k := range o {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for i, k := range keys {
		if got := res.Rows[i]; got[0].I64 != k || got[1].I64 != o[k] {
			t.Fatalf("%s: row %d = (%d,%d), oracle (%d,%d)", label, i, got[0].I64, got[1].I64, k, o[k])
		}
	}
}

// moverTestDB opens a disk-backed DB with the mover stopped (tests
// drive it manually) and a kv table of n seeded rows.
func moverTestDB(t *testing.T, dir string, n int) (*DB, moverOracle) {
	t.Helper()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	db.SetMoverInterval(0)
	if _, err := db.Exec(`CREATE TABLE kv (k BIGINT, v BIGINT)`); err != nil {
		t.Fatal(err)
	}
	o := moverOracle{}
	for i := 0; i < n; i++ {
		o.insert(db, t, int64(i), int64(i)*10)
	}
	return db, o
}

// TestMoverFoldAndRebuild drives both mover phases deterministically
// and checks visible data is bit-identical before and after each
// reorganization, including through an open cursor pinned across the
// stable swap.
func TestMoverFoldAndRebuild(t *testing.T) {
	db := OpenMemory()
	defer db.Close()
	if _, err := db.Exec(`CREATE TABLE kv (k BIGINT, v BIGINT)`); err != nil {
		t.Fatal(err)
	}
	o := moverOracle{}
	for i := 0; i < 200; i++ {
		o.insert(db, t, int64(i), int64(i))
	}
	o.update(db, t, 7, -7)
	o.delete(db, t, 13)

	// Pin a cursor before any mover activity; it must replay the
	// pre-mover state even after fold + rebuild.
	rows, err := db.QueryContext(nil, `SELECT k, v FROM kv ORDER BY k`)
	if err != nil {
		t.Fatal(err)
	}
	preMover := make(moverOracle, len(o))
	for k, v := range o {
		preMover[k] = v
	}

	// Phase 1 only: threshold disabled → fold, no rebuild.
	db.SetMoverThreshold(0)
	if err := db.MoveTuples(); err != nil {
		t.Fatal(err)
	}
	st := db.MoverStats()
	if st.Folds == 0 || st.Rebuilds != 0 {
		t.Fatalf("after fold-only pass: %+v", st)
	}
	o.verify(db, t, "after fold")

	// More DML on top of the folded state, then a rebuild pass.
	o.insert(db, t, 500, 500)
	o.update(db, t, 0, 999)
	db.SetMoverThreshold(1)
	if err := db.MoveTuples(); err != nil {
		t.Fatal(err)
	}
	if st := db.MoverStats(); st.Rebuilds == 0 {
		t.Fatalf("rebuild pass did not rebuild: %+v", st)
	}
	o.verify(db, t, "after rebuild")

	// The pinned cursor still sees the pre-mover epoch exactly.
	var got int
	for rows.Next() {
		var k, v int64
		if err := rows.Scan(&k, &v); err != nil {
			t.Fatal(err)
		}
		want, ok := preMover[k]
		if !ok || want != v {
			t.Fatalf("pinned cursor row (%d,%d) not in pre-mover oracle", k, v)
		}
		got++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if got != len(preMover) {
		t.Fatalf("pinned cursor yielded %d rows, want %d", got, len(preMover))
	}
}

// moverCrashAt runs the shared crash script: seed a disk-backed DB,
// trip the failpoint at the given stage of a rebuild pass, commit more
// DML after the failed pass, "crash", reopen, and verify against the
// oracle. It exercises both sides of the applied-LSN watermark: crash
// before the image persists (WAL replays everything onto the old
// image) and crash after (replay skips exactly the absorbed records).
func moverCrashAt(t *testing.T, stage string) {
	dir := filepath.Join(t.TempDir(), "db")
	db, o := moverTestDB(t, dir, 100)
	o.update(db, t, 5, -5)
	o.delete(db, t, 6)

	db.SetMoverThreshold(1)
	injected := errors.New("injected crash")
	fired := false
	db.SetMoverFailpoint(func(s string) error {
		if s == stage+":kv" {
			fired = true
			return injected
		}
		return nil
	})
	if err := db.MoveTuples(); !errors.Is(err, injected) {
		t.Fatalf("MoveTuples error = %v, want injected crash", err)
	}
	if !fired {
		t.Fatalf("failpoint %q never fired", stage)
	}
	db.SetMoverFailpoint(nil)

	// The failed pass must not have changed what queries see.
	o.verify(db, t, "after failed pass")

	// Deltas committed after the interrupted pass land in the WAL with
	// LSNs above the (possibly persisted) image's watermark.
	o.insert(db, t, 1000, 1000)
	o.update(db, t, 10, -10)
	o.delete(db, t, 11)

	// Crash: no checkpoint, no flush — just drop the handle.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	db2.SetMoverInterval(0)
	o.verify(db2, t, "recovered after crash at "+stage)

	// Recovered state must still move and survive a clean cycle.
	db2.SetMoverThreshold(1)
	if err := db2.MoveTuples(); err != nil {
		t.Fatal(err)
	}
	o.verify(db2, t, "mover pass after recovery")
}

// TestMoverCrashBeforePersist crashes before the rebuilt image reaches
// disk: the old image plus a full WAL replay must reproduce the oracle.
func TestMoverCrashBeforePersist(t *testing.T) { moverCrashAt(t, "persist") }

// TestMoverCrashBetweenPersistAndSwap crashes in the worst window —
// the new image is durable but was never installed: replay must skip
// exactly the absorbed records (no duplicated deltas) while applying
// the later ones (no lost deltas).
func TestMoverCrashBetweenPersistAndSwap(t *testing.T) { moverCrashAt(t, "swap") }

// TestMoverPersistSurvivesRestart: the happy path end to end — a
// completed rebuild, then clean reopen; the swapped image's watermark
// must keep replay from double-applying the absorbed deltas.
func TestMoverCompletedRebuildThenReopen(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, o := moverTestDB(t, dir, 80)
	o.update(db, t, 3, 33)
	o.delete(db, t, 4)
	db.SetMoverThreshold(1)
	if err := db.MoveTuples(); err != nil {
		t.Fatal(err)
	}
	if st := db.MoverStats(); st.Rebuilds != 1 {
		t.Fatalf("want exactly one rebuild, got %+v", st)
	}
	// Post-rebuild deltas stay WAL-only until the next move.
	o.insert(db, t, 2000, 1)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	db2.SetMoverInterval(0)
	o.verify(db2, t, "reopen after completed rebuild")
}
