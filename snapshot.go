package vectorwise

// Epoch snapshots: the read side of the concurrency model.
//
// A query pins a dbSnapshot at QueryContext time — an immutable image
// of every table's committed state (stable image + frozen PDT layer
// stack) captured at one commit point, tagged with the data epoch. The
// cursor then streams against the snapshot with no DB lock held:
// writers commit new PDT layers and the tuple mover reorganizes the
// layer stack freely, because none of that mutates the objects a
// snapshot references (layers are immutable once published; reorgs
// replace fields, never rewrite published PDTs or tables in place).
//
// Snapshots are refcounted and shared: every cursor opened at the same
// epoch holds the same dbSnapshot. A committed-state change retires the
// current snapshot (the next query pins a fresh one); when the last
// cursor on a retired snapshot closes, stable images it was the final
// holder of are evicted from the buffer pool — they can never be
// scanned again.

import (
	"fmt"

	"vectorwise/internal/catalog"
	"vectorwise/internal/pdt"
	"vectorwise/internal/storage"
	"vectorwise/internal/txn"
)

// dbSnapshot is one pinned epoch. It implements xcompile.Resolver, so
// compiled scans read the pinned layer stacks instead of the live
// catalog. Immutable after construction except for the refcount.
type dbSnapshot struct {
	db    *DB
	epoch uint64
	pins  map[string]*txn.Pinned
	// refs counts holders: the DB itself while the snapshot is current,
	// plus one per open cursor. Guarded by db.snapMu.
	//
	//vw:refcount
	refs int
}

// Resolve implements xcompile.Resolver against the pinned state.
func (s *dbSnapshot) Resolve(name string) (*storage.Table, []*pdt.PDT, error) {
	pin, ok := s.pins[name]
	if !ok {
		return nil, nil, fmt.Errorf("vectorwise: %w %q in snapshot", catalog.ErrUnknownTable, name)
	}
	return pin.Stable, pin.Layers(), nil
}

// acquireSnapshot returns the current epoch snapshot with an extra
// reference, creating it on first use after a committed-state change.
// Callers hold db.mu (read suffices: creation only reads committed
// state, and snapMu serializes the cur swap).
//
// Lock ordering: db.mu → db.snapMu → internal package mutexes
// (txn.Manager.mu via PinAll); snapMu never acquires db.mu.
//
//vw:owns
func (db *DB) acquireSnapshot() *dbSnapshot {
	db.snapMu.Lock()
	defer db.snapMu.Unlock()
	if db.cur == nil {
		db.cur = &dbSnapshot{db: db, epoch: db.cat.DataEpoch(), pins: db.txm.PinAll(), refs: 1}
	}
	db.cur.refs++
	return db.cur
}

// invalidateSnapshot bumps the data epoch and retires the current
// snapshot after a committed-state change (commit, fold, swap,
// checkpoint, registration). Open cursors keep streaming their pinned
// epochs; the next query pins fresh state. Callers hold the db.mu
// write lock (the change being published requires it).
func (db *DB) invalidateSnapshot() {
	db.cat.BumpDataEpoch()
	db.snapMu.Lock()
	s := db.cur
	db.cur = nil
	db.snapMu.Unlock()
	if s != nil {
		s.unref()
	}
}

// unref drops one reference; the last holder of a retired snapshot
// reclaims buffer-pool residue of superseded stable images.
func (s *dbSnapshot) unref() {
	db := s.db
	db.snapMu.Lock()
	s.refs--
	dead := s.refs == 0 && db.cur != s
	db.snapMu.Unlock()
	if dead {
		db.reclaimSnapshot(s)
	}
}

// reclaimSnapshot evicts cached chunks of stable images this snapshot
// pinned that are no longer current. The check against the current
// snapshot is best-effort — an older still-live snapshot sharing the
// image merely re-fetches chunks on its next scan; dropping is an
// eviction, never a correctness hazard.
func (db *DB) reclaimSnapshot(s *dbSnapshot) {
	for name, pin := range s.pins {
		if ent, err := db.cat.Get(name); err == nil && ent.Table == pin.Stable {
			continue
		}
		db.snapMu.Lock()
		shared := db.cur != nil && db.cur.pins[name] != nil && db.cur.pins[name].Stable == pin.Stable
		db.snapMu.Unlock()
		if !shared {
			db.buf.DropTable(pin.Stable)
		}
	}
}

// Epoch returns the current data epoch: a monotonic counter bumped on
// every committed-state change (DML commit, tuple-mover fold or swap,
// checkpoint, bulk load, registration). A cursor reports the epoch it
// pinned via [Rows.Epoch]; equal epochs mean identical visible data.
func (db *DB) Epoch() uint64 { return db.cat.DataEpoch() }
