// Command vwbench reproduces the paper's experiments and prints
// paper-style tables. Run all experiments or one by id:
//
//	vwbench            # everything (SF 0.01 default)
//	vwbench -exp t1    # just the TPC-H power/throughput table
//	vwbench -exp sql   # TPC-H through the public SQL surface → BENCH_tpch.json
//	vwbench -sf 0.05   # bigger scale factor
//
// Experiment ids follow DESIGN.md: t1 c1 c2 f1 t2 t3 t4 t5 t6 f2, plus
// `sql`, the end-to-end benchmark over the public API (SQL text, plan
// cache, bulk-loaded storage). `sql` writes a machine-readable
// BENCH_tpch.json (-out) and, given -baseline, prints a markdown
// comparison that warns on per-query warm-time regressions above 25%.
// `cluster` benchmarks the distributed exchange — 1-node vs N-shard
// TPC-H plus failover recovery latency — into BENCH_cluster.json
// (-cluster-out / -cluster-baseline / -cluster-sf / -cluster-shards).
//
// The TPC-H database itself is built through the public ingest surface
// (CREATE TABLE + DB.LoadBatch via internal/tpchdb), so every
// experiment measures tables a user could actually load.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"time"

	vectorwise "vectorwise"
	"vectorwise/internal/bufmgr"
	"vectorwise/internal/catalog"
	"vectorwise/internal/compress"
	"vectorwise/internal/core"
	"vectorwise/internal/matengine"
	"vectorwise/internal/pdt"
	"vectorwise/internal/storage"
	"vectorwise/internal/tpch"
	"vectorwise/internal/tpchdb"
	"vectorwise/internal/vtypes"
)

func main() {
	sf := flag.Float64("sf", 0.01, "TPC-H scale factor")
	exp := flag.String("exp", "all", "experiment id (sql mixed cluster t1 c1 c2 f1 t2 t3 t4 t5 t6 f2 or all)")
	out := flag.String("out", "BENCH_tpch.json", "output path for the sql experiment's JSON artifact")
	baseline := flag.String("baseline", "", "baseline JSON to compare the sql experiment against")
	warmRuns := flag.Int("warm", 5, "warm executions per query in the sql experiment")
	mixedOut := flag.String("mixed-out", "BENCH_mixed.json", "output path for the mixed experiment's JSON artifact")
	mixedBaseline := flag.String("mixed-baseline", "", "baseline JSON to compare the mixed experiment against")
	clusterOut := flag.String("cluster-out", "BENCH_cluster.json", "output path for the cluster experiment's JSON artifact")
	clusterBaseline := flag.String("cluster-baseline", "", "baseline JSON to compare the cluster experiment against")
	clusterSF := flag.Float64("cluster-sf", 0.05, "TPC-H scale factor for the cluster experiment")
	clusterShards := flag.Int("cluster-shards", 3, "shard count for the cluster experiment")
	flag.Parse()

	fmt.Printf("vectorwise experiment harness — SF=%g, GOMAXPROCS=%d\n\n", *sf, runtime.GOMAXPROCS(0))
	fmt.Println("loading TPC-H through the public ingest path (CREATE TABLE + LoadBatch) ...")
	db := vectorwise.OpenMemory()
	loadStats, err := tpchdb.Load(db, *sf)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("loaded %d rows in %v (%.0f rows/s)\n", loadStats.Rows,
		loadStats.Elapsed.Round(time.Millisecond),
		float64(loadStats.Rows)/loadStats.Elapsed.Seconds())
	cat := db.Catalog()
	fmt.Println("validating query suite across engines ...")
	if err := tpch.Validate(cat); err != nil {
		fatal(err)
	}
	fmt.Print("validation OK: vectorized = tuple = materialized = parallel\n\n")

	want := func(id string) bool { return *exp == "all" || strings.EqualFold(*exp, id) }
	if want("sql") {
		expSQL(db, *sf, loadStats, *out, *baseline, *warmRuns)
	}
	if want("mixed") {
		expMixed(db, *mixedOut, *mixedBaseline)
	}
	if want("cluster") {
		expCluster(*clusterSF, *clusterShards, *clusterOut, *clusterBaseline)
	}
	if want("t1") {
		expT1(cat, *sf)
	}
	if want("c1") {
		expC1(cat, db.BufferManager())
	}
	if want("c2") {
		expC2(cat, db.BufferManager())
	}
	if want("f1") {
		expF1(cat, db.BufferManager())
	}
	if want("t2") {
		expT2()
	}
	if want("t3") {
		expT3()
	}
	if want("t4") {
		expT4()
	}
	if want("t5") {
		expT5()
	}
	if want("t6") {
		expT6()
	}
	if want("f2") {
		expF2(cat)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vwbench:", err)
	os.Exit(1)
}

// expT1 — the paper's §I-C table: QphH-style scores per engine.
func expT1(cat *catalog.Catalog, sf float64) {
	fmt.Println("== T1: TPC-H power/throughput (paper §I-C audited results) ==")
	fmt.Printf("%-14s %12s %12s %12s %14s\n", "engine", "power-run", "QphPower", "QphTput", "QphH-analog")
	streams := runtime.GOMAXPROCS(0)
	for _, eng := range []tpch.Engine{tpch.EngineVectorized, tpch.EngineTuple, tpch.EngineMaterialized} {
		par := 0
		if eng == tpch.EngineVectorized {
			par = runtime.GOMAXPROCS(0)
		}
		p, err := tpch.PowerRun(cat, sf, tpch.RunOptions{Engine: eng, Parallel: par})
		if err != nil {
			fatal(err)
		}
		tp, err := tpch.ThroughputRun(cat, sf, streams, tpch.RunOptions{Engine: eng, Parallel: 0})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-14s %12v %12.1f %12.1f %14.1f\n",
			eng, p.Total.Round(time.Millisecond), p.QphPower, tp.QphThroughput, tpch.QphH(p, tp))
	}
	fmt.Println()
}

// expC1 — per-query speedups vectorized vs tuple (">10×" claim).
func expC1(cat *catalog.Catalog, fetch storage.ChunkFetcher) {
	fmt.Println("== C1: vectorized vs tuple-at-a-time (raw processing power) ==")
	fmt.Printf("%-6s %12s %12s %9s\n", "query", "vectorized", "tuple", "speedup")
	for _, q := range tpch.Suite() {
		_, dv, err := tpch.RunQuery(cat, q, tpch.RunOptions{Engine: tpch.EngineVectorized, Fetch: fetch})
		if err != nil {
			fatal(err)
		}
		_, dt, err := tpch.RunQuery(cat, q, tpch.RunOptions{Engine: tpch.EngineTuple})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-6s %12v %12v %8.1fx\n", q.Name,
			dv.Round(time.Microsecond), dt.Round(time.Microsecond), dt.Seconds()/dv.Seconds())
	}
	fmt.Println()
}

// expC2 — vectorized vs full materialization, with intermediate volume.
func expC2(cat *catalog.Catalog, fetch storage.ChunkFetcher) {
	fmt.Println("== C2: vectorized vs column-at-a-time materialization ==")
	fmt.Printf("%-6s %12s %12s %9s %14s\n", "query", "vectorized", "materialized", "speedup", "interm-bytes")
	for _, q := range tpch.Suite() {
		_, dv, err := tpch.RunQuery(cat, q, tpch.RunOptions{Engine: tpch.EngineVectorized, Fetch: fetch})
		if err != nil {
			fatal(err)
		}
		matengine.ResetMatBytes()
		_, dm, err := tpch.RunQuery(cat, q, tpch.RunOptions{Engine: tpch.EngineMaterialized})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-6s %12v %12v %8.1fx %14d\n", q.Name,
			dv.Round(time.Microsecond), dm.Round(time.Microsecond),
			dm.Seconds()/dv.Seconds(), matengine.MatBytes())
	}
	fmt.Println()
}

// expF1 — the classic vector-size U-curve on Q1.
func expF1(cat *catalog.Catalog, fetch storage.ChunkFetcher) {
	fmt.Println("== F1: runtime vs vector size (Q1) ==")
	fmt.Printf("%-10s %12s\n", "vecsize", "runtime")
	q := findQuery("Q1")
	for _, size := range []int{1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144} {
		best := time.Duration(1 << 62)
		for rep := 0; rep < 3; rep++ {
			_, d, err := tpch.RunQuery(cat, q, tpch.RunOptions{Engine: tpch.EngineVectorized, VecSize: size, Fetch: fetch})
			if err != nil {
				fatal(err)
			}
			if d < best {
				best = d
			}
		}
		fmt.Printf("%-10d %12v\n", size, best.Round(time.Microsecond))
	}
	fmt.Println()
}

func findQuery(name string) tpch.Query {
	for _, q := range tpch.Suite() {
		if q.Name == name {
			return q
		}
	}
	panic("unknown query " + name)
}

// expT2 — compression ratios and decompression bandwidth.
func expT2() {
	fmt.Println("== T2: compression (PFOR family) ==")
	fmt.Printf("%-12s %8s %16s\n", "codec", "ratio", "decompress-GB/s")
	n := 1 << 20
	rng := rand.New(rand.NewSource(5))
	small := make([]int64, n)
	sorted := make([]int64, n)
	runs := make([]int64, n)
	for i := range small {
		small[i] = int64(rng.Intn(4096))
		sorted[i] = int64(i) * 3
		runs[i] = int64(i / 2048)
	}
	words := []string{"RAIL", "AIR", "SHIP", "TRUCK", "MAIL", "FOB", "REG AIR"}
	strs := make([]string, n)
	for i := range strs {
		strs[i] = words[i%len(words)]
	}
	benchI64 := func(name string, vals []int64, codec compress.Codec) {
		data, err := compress.CompressI64(vals, codec)
		if err != nil {
			fatal(err)
		}
		buf := make([]int64, n)
		start := time.Now()
		reps := 20
		for r := 0; r < reps; r++ {
			if _, err := compress.DecompressI64(buf, data); err != nil {
				fatal(err)
			}
		}
		el := time.Since(start)
		gbs := float64(n*8*reps) / el.Seconds() / 1e9
		fmt.Printf("%-12s %7.1fx %16.2f\n", name, float64(n*8)/float64(len(data)), gbs)
	}
	benchI64("plain", small, compress.CodecPlainI64)
	benchI64("pfor", small, compress.CodecPFOR)
	benchI64("pfor-delta", sorted, compress.CodecPFORDelta)
	benchI64("rle", runs, compress.CodecRLE)
	data, _ := compress.CompressStr(strs, compress.CodecDict)
	buf := make([]string, n)
	start := time.Now()
	for r := 0; r < 5; r++ {
		if _, err := compress.DecompressStr(buf, data); err != nil {
			fatal(err)
		}
	}
	plainBytes := 0
	for _, s := range strs {
		plainBytes += len(s) + 1
	}
	fmt.Printf("%-12s %7.1fx %16.2f\n", "pdict",
		float64(plainBytes)/float64(len(data)),
		float64(plainBytes*5)/time.Since(start).Seconds()/1e9)
	fmt.Println()
}

func benchTable(rows int) *storage.Table {
	schema := vtypes.NewSchema(
		vtypes.Column{Name: "k", Kind: vtypes.KindI64},
		vtypes.Column{Name: "v", Kind: vtypes.KindF64},
	)
	bl := storage.NewBuilder("t", schema, 8192)
	for i := 0; i < rows; i++ {
		if err := bl.AppendRow(vtypes.Row{vtypes.I64Value(int64(i)), vtypes.F64Value(float64(i))}); err != nil {
			panic(err)
		}
	}
	t, err := bl.Finish()
	if err != nil {
		panic(err)
	}
	return t
}

// expT3 — PDT update throughput and merge overhead.
func expT3() {
	fmt.Println("== T3: Positional Delta Trees ==")
	tbl := benchTable(400_000)
	// Update throughput.
	rng := rand.New(rand.NewSource(3))
	p := pdt.New(tbl.Schema(), tbl.Rows())
	nOps := 50_000
	start := time.Now()
	for k := 0; k < nOps; k++ {
		rid := rng.Int63n(p.VisibleRows())
		switch k % 3 {
		case 0:
			_ = p.Insert(rid, vtypes.Row{vtypes.I64Value(int64(k)), vtypes.F64Value(1)})
		case 1:
			_ = p.Delete(rid)
		default:
			_ = p.Modify(rid, 1, vtypes.F64Value(2))
		}
	}
	fmt.Printf("%-28s %12.0f ops/s\n", "PDT random updates", float64(nOps)/time.Since(start).Seconds())

	// The query reads only column v: the positional merge never touches
	// the key column, a value-based delta store must scan it to align.
	scan := func(layers []*pdt.PDT) time.Duration {
		best := time.Duration(1 << 62)
		for rep := 0; rep < 3; rep++ {
			sc := core.NewScan(tbl, []int{1}, core.ScanOpts{Layers: layers})
			start := time.Now()
			if _, err := core.Drain(sc); err != nil {
				fatal(err)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	clean := scan(nil)
	// 1% modified.
	p2 := pdt.New(tbl.Schema(), tbl.Rows())
	for k := 0; k < 4000; k++ {
		_ = p2.Modify(rng.Int63n(p2.VisibleRows()), 1, vtypes.F64Value(9))
	}
	merged := scan([]*pdt.PDT{p2})

	// Value-based comparator: key-aligned delta map.
	updates := make(map[int64]float64, 4000)
	for k := 0; k < 4000; k++ {
		updates[rng.Int63n(tbl.Rows())] = 9
	}
	valueBased := time.Duration(1 << 62)
	for rep := 0; rep < 3; rep++ {
		sc := storage.NewScanner(tbl, []int{0, 1}, nil, nil, 1024)
		out := make([]float64, 1024)
		start := time.Now()
		for {
			vecs, _, n, err := sc.Next()
			if err != nil {
				fatal(err)
			}
			if n == 0 {
				break
			}
			keys := vecs[0].I64
			vals := vecs[1].F64
			for r := 0; r < n; r++ {
				v := vals[r]
				if nv, ok := updates[keys[r]]; ok {
					v = nv
				}
				out[r] = v
			}
		}
		if d := time.Since(start); d < valueBased {
			valueBased = d
		}
	}
	fmt.Printf("%-28s %12v\n", "clean scan (400k rows)", clean.Round(time.Microsecond))
	fmt.Printf("%-28s %12v  (overhead %.0f%%)\n", "scan + PDT merge (1% mods)",
		merged.Round(time.Microsecond), 100*(merged.Seconds()-clean.Seconds())/clean.Seconds())
	fmt.Printf("%-28s %12v  (%.1fx slower than PDT)\n", "value-based delta merge",
		valueBased.Round(time.Microsecond), valueBased.Seconds()/merged.Seconds())
	fmt.Println()
}

// expT4 — cooperative vs normal scan policies under a tight cache.
func expT4() {
	fmt.Println("== T4: cooperative scans (2 staggered concurrent scans) ==")
	tbl := benchTable(400_000)
	run := func(policy bufmgr.ScanPolicy) (time.Duration, int64) {
		m := bufmgr.New(1<<20, nil)
		h1 := m.StartScan(tbl, []int{0, 1}, policy)
		h2 := m.StartScan(tbl, []int{0, 1}, policy)
		defer h1.Close()
		defer h2.Close()
		start := time.Now()
		for k := 0; k < tbl.Groups()/3; k++ {
			if _, _, err := h1.NextGroup(); err != nil {
				fatal(err)
			}
		}
		d1, d2 := false, false
		for !d1 || !d2 {
			if !d1 {
				_, ok, err := h1.NextGroup()
				if err != nil {
					fatal(err)
				}
				d1 = !ok
			}
			if !d2 {
				_, ok, err := h2.NextGroup()
				if err != nil {
					fatal(err)
				}
				d2 = !ok
			}
		}
		return time.Since(start), m.Stats().IOChunks
	}
	dn, ion := run(bufmgr.PolicyNormal)
	dc, ioc := run(bufmgr.PolicyCooperative)
	fmt.Printf("%-14s %12s %14s\n", "policy", "elapsed", "chunk loads")
	fmt.Printf("%-14s %12v %14d\n", "normal/LRU", dn.Round(time.Microsecond), ion)
	fmt.Printf("%-14s %12v %14d\n", "cooperative", dc.Round(time.Microsecond), ioc)
	fmt.Println()
}

// expT5 — NULL decomposition rewrite vs null-aware kernels.
func expT5() {
	fmt.Println("== T5: NULL decomposition (rewriter) vs NULL-aware kernel ==")
	schema := vtypes.NewSchema(
		vtypes.Column{Name: "k", Kind: vtypes.KindI64},
		vtypes.Column{Name: "v", Kind: vtypes.KindI64, Nullable: true},
	)
	bl := storage.NewBuilder("nulls", schema, 8192)
	for i := 0; i < 400_000; i++ {
		v := vtypes.I64Value(int64(i % 1000))
		if i%10 == 0 {
			v = vtypes.NullValue(vtypes.KindI64)
		}
		if err := bl.AppendRow(vtypes.Row{vtypes.I64Value(int64(i)), v}); err != nil {
			fatal(err)
		}
	}
	tbl, err := bl.Finish()
	if err != nil {
		fatal(err)
	}
	timeIt := func(nullAware bool) time.Duration {
		best := time.Duration(1 << 62)
		for rep := 0; rep < 5; rep++ {
			sc := storage.NewScanner(tbl, []int{1}, nil, nil, 1024)
			sel := make([]int32, 1024)
			sel2 := make([]int32, 1024)
			start := time.Now()
			var count int64
			for {
				vecs, _, n, err := sc.Next()
				if err != nil {
					fatal(err)
				}
				if n == 0 {
					break
				}
				v := vecs[0]
				if nullAware {
					for r := 0; r < n; r++ {
						var isNull bool
						if v.Nulls != nil {
							isNull = v.Nulls[r]
						}
						if !isNull && v.I64[r] > 500 {
							count++
						}
					}
					continue
				}
				k := 0
				if v.Nulls != nil {
					for r := 0; r < n; r++ {
						if !v.Nulls[r] {
							sel[k] = int32(r)
							k++
						}
					}
				} else {
					for r := 0; r < n; r++ {
						sel[r] = int32(r)
					}
					k = n
				}
				k2 := 0
				for _, r := range sel[:k] {
					if v.I64[r] > 500 {
						sel2[k2] = r
						k2++
					}
				}
				count += int64(k2)
			}
			if count == 0 {
				fatal(fmt.Errorf("no matches"))
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	fmt.Printf("%-28s %12v\n", "rewritten (two kernels)", timeIt(false).Round(time.Microsecond))
	fmt.Printf("%-28s %12v\n", "null-aware single kernel", timeIt(true).Round(time.Microsecond))
	fmt.Println()
}

// expT6 — fully cached vs bandwidth-throttled cold scans.
func expT6() {
	fmt.Println("== T6: RAM-resident vs cold I/O (64 MB/s simulated disk) ==")
	tbl := benchTable(400_000)
	hot := bufmgr.New(0, nil)
	sc := core.NewScan(tbl, []int{0, 1}, core.ScanOpts{Fetch: hot})
	if _, err := core.Drain(sc); err != nil {
		fatal(err)
	}
	timeScan := func(m *bufmgr.Manager) time.Duration {
		sc := core.NewScan(tbl, []int{0, 1}, core.ScanOpts{Fetch: m})
		start := time.Now()
		if _, err := core.Drain(sc); err != nil {
			fatal(err)
		}
		return time.Since(start)
	}
	hd := timeScan(hot)
	cold := bufmgr.New(1, &bufmgr.SimDisk{BytesPerSec: 64 << 20})
	cd := timeScan(cold)
	fmt.Printf("%-28s %12v\n", "hot (all cached)", hd.Round(time.Microsecond))
	fmt.Printf("%-28s %12v  (%.1fx slower)\n", "cold (throttled disk)", cd.Round(time.Microsecond), cd.Seconds()/hd.Seconds())
	fmt.Println()
}

// expF2 — parallel scaling on the power queries.
func expF2(cat *catalog.Catalog) {
	fmt.Println("== F2: multi-core scaling (parallel rewriter, Q1/Q6) ==")
	fmt.Printf("%-8s %12s %12s\n", "workers", "Q1", "Q6")
	maxw := runtime.GOMAXPROCS(0)
	base := map[string]time.Duration{}
	for w := 1; w <= maxw; w *= 2 {
		times := map[string]time.Duration{}
		for _, name := range []string{"Q1", "Q6"} {
			best := time.Duration(1 << 62)
			for rep := 0; rep < 3; rep++ {
				_, d, err := tpch.RunQuery(cat, findQuery(name), tpch.RunOptions{Engine: tpch.EngineVectorized, Parallel: w})
				if err != nil {
					fatal(err)
				}
				if d < best {
					best = d
				}
			}
			times[name] = best
			if w == 1 {
				base[name] = best
			}
		}
		fmt.Printf("%-8d %12v %12v  (speedup %.2fx / %.2fx)\n", w,
			times["Q1"].Round(time.Microsecond), times["Q6"].Round(time.Microsecond),
			base["Q1"].Seconds()/times["Q1"].Seconds(), base["Q6"].Seconds()/times["Q6"].Seconds())
	}
	fmt.Println()
}
