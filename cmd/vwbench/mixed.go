package main

// The `mixed` experiment: the concurrency contract measured. A slow
// streaming cursor (an "analyst" dribbling batches) stays open across
// the whole run while a pack of writers commits inserts and the
// background tuple mover folds and rebuilds underneath — the workload
// the epoch-snapshot design exists for. The artifact records the write
// latency distribution (p50/p99/max) and the mover counters; CI
// compares p99 against a checked-in baseline and warns on regressions,
// which is what keeps "writers never wait for readers" true over time
// rather than true once.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	vectorwise "vectorwise"
)

const mixedSchemaVersion = 1

// mixedRegressionFactor is the p99 write-latency growth that triggers a
// CI warning. Latency tails on shared runners are noisy, so the bar is
// deliberately loose; the counters catch systematic slowdowns.
const mixedRegressionFactor = 1.5

// mixedFile is the BENCH_mixed.json artifact.
type mixedFile struct {
	SchemaVersion int    `json:"schema_version"`
	GOMAXPROCS    int    `json:"gomaxprocs"`
	GOOS          string `json:"goos"`
	GOARCH        string `json:"goarch"`
	// Workload shape.
	SeedRows        int `json:"seed_rows"`
	Writers         int `json:"writers"`
	WritesPerWriter int `json:"writes_per_writer"`
	// Results.
	DurationNs   int64   `json:"duration_ns"`
	WritesPerSec float64 `json:"writes_per_sec"`
	WriteP50Ns   int64   `json:"write_p50_ns"`
	WriteP99Ns   int64   `json:"write_p99_ns"`
	WriteMaxNs   int64   `json:"write_max_ns"`
	// ReaderRows is what the slow cursor streamed — always exactly the
	// seeded count, or the run aborts (a snapshot correctness failure
	// is not a number worth archiving).
	ReaderRows int64 `json:"reader_rows"`
	// Mover activity during the storm.
	MoverPasses   uint64 `json:"mover_passes"`
	MoverFolds    uint64 `json:"mover_folds"`
	MoverRebuilds uint64 `json:"mover_rebuilds"`
	MoverRetries  uint64 `json:"mover_retries"`
}

func pctNs(sorted []time.Duration, p float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	return sorted[int(float64(len(sorted)-1)*p/100)].Nanoseconds()
}

func expMixed(db *vectorwise.DB, outPath, baselinePath string) {
	fmt.Println("== MIXED: concurrent writers vs slow streaming reader vs tuple mover ==")
	const (
		seedRows        = 100_000
		writers         = 8
		writesPerWriter = 250
	)
	if _, err := db.Exec(`CREATE TABLE mixed_kv (k BIGINT, v DOUBLE)`); err != nil {
		fatal(err)
	}
	ks := make([]int64, seedRows)
	vs := make([]float64, seedRows)
	for i := range ks {
		ks[i] = int64(i)
		vs[i] = float64(i % 1000)
	}
	if _, err := db.LoadBatch("mixed_kv", []any{ks, vs}, nil); err != nil {
		fatal(err)
	}
	moverBefore := db.MoverStats()
	db.SetMoverThreshold(256)
	db.SetMoverInterval(2 * time.Millisecond)
	defer db.SetMoverInterval(0)

	// Slow reader: pinned before the storm, dribbling batches through
	// it, closed after. It must stream exactly the seeded image.
	readerRows := make(chan int64, 1)
	readerErr := make(chan error, 1)
	readerPinned := make(chan struct{})
	writersStart := make(chan struct{})
	go func() {
		rows, err := db.QueryContext(context.Background(), `SELECT k FROM mixed_kv`)
		if err != nil {
			readerErr <- err
			close(readerPinned)
			return
		}
		defer rows.Close()
		close(readerPinned) // snapshot pinned; writers may start
		<-writersStart
		var n int64
		for {
			b, err := rows.NextBatch()
			if err != nil {
				readerErr <- err
				return
			}
			if b == nil {
				break
			}
			n += int64(b.N)
			time.Sleep(time.Millisecond)
		}
		readerRows <- n
	}()

	latCh := make(chan time.Duration, writers*writesPerWriter)
	errCh := make(chan error, writers)
	var wg sync.WaitGroup
	wg.Add(writers)
	<-readerPinned
	select {
	case err := <-readerErr:
		fatal(fmt.Errorf("mixed reader: %w", err))
	default:
	}
	start := time.Now()
	close(writersStart)
	for w := 0; w < writers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < writesPerWriter; i++ {
				k := int64(seedRows + w*writesPerWriter + i)
				t0 := time.Now()
				if _, err := db.ExecArgs(`INSERT INTO mixed_kv VALUES ($1, $2)`, k, float64(i)); err != nil {
					errCh <- err
					return
				}
				latCh <- time.Since(t0)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(latCh)
	select {
	case err := <-errCh:
		fatal(fmt.Errorf("mixed writer: %w", err))
	default:
	}
	var nRead int64
	select {
	case err := <-readerErr:
		fatal(fmt.Errorf("mixed reader: %w", err))
	case nRead = <-readerRows:
	}
	if nRead != seedRows {
		fatal(fmt.Errorf("mixed: slow reader streamed %d rows, want %d (snapshot not pinned)", nRead, seedRows))
	}

	var lats []time.Duration
	for d := range latCh {
		lats = append(lats, d)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	mover := db.MoverStats()
	mf := mixedFile{
		SchemaVersion:   mixedSchemaVersion,
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		GOOS:            runtime.GOOS,
		GOARCH:          runtime.GOARCH,
		SeedRows:        seedRows,
		Writers:         writers,
		WritesPerWriter: writesPerWriter,
		DurationNs:      elapsed.Nanoseconds(),
		WritesPerSec:    float64(len(lats)) / elapsed.Seconds(),
		WriteP50Ns:      pctNs(lats, 50),
		WriteP99Ns:      pctNs(lats, 99),
		WriteMaxNs:      lats[len(lats)-1].Nanoseconds(),
		ReaderRows:      nRead,
		MoverPasses:     mover.Passes - moverBefore.Passes,
		MoverFolds:      mover.Folds - moverBefore.Folds,
		MoverRebuilds:   mover.Rebuilds - moverBefore.Rebuilds,
		MoverRetries:    mover.Retries - moverBefore.Retries,
	}
	fmt.Printf("%d writes by %d writers in %v (%.0f writes/s) against a %d-row slow cursor\n",
		len(lats), writers, elapsed.Round(time.Millisecond), mf.WritesPerSec, nRead)
	fmt.Printf("write latency p50=%v p99=%v max=%v\n",
		time.Duration(mf.WriteP50Ns), time.Duration(mf.WriteP99Ns), time.Duration(mf.WriteMaxNs))
	fmt.Printf("mover during storm: passes=%d folds=%d rebuilds=%d retries=%d\n\n",
		mf.MoverPasses, mf.MoverFolds, mf.MoverRebuilds, mf.MoverRetries)

	data, err := json.MarshalIndent(mf, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n\n", outPath)
	if baselinePath != "" {
		compareMixedBaseline(mf, baselinePath)
	}
}

// compareMixedBaseline warns (GitHub annotation) when p99 write latency
// regresses past the factor. Advisory only — runners differ.
func compareMixedBaseline(cur mixedFile, path string) {
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Printf("no mixed baseline at %s (%v) — skipping comparison\n", path, err)
		return
	}
	var base mixedFile
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Printf("unreadable mixed baseline %s: %v — skipping comparison\n", path, err)
		return
	}
	if base.SchemaVersion != cur.SchemaVersion {
		fmt.Printf("mixed baseline schema v%d != current v%d — skipping comparison\n",
			base.SchemaVersion, cur.SchemaVersion)
		return
	}
	fmt.Printf("| metric | baseline | current | delta |\n|---|---|---|---|\n")
	row := func(name string, b, c int64) {
		delta := "n/a"
		if b > 0 {
			delta = fmt.Sprintf("%+.1f%%", 100*(float64(c)-float64(b))/float64(b))
		}
		fmt.Printf("| %s | %v | %v | %s |\n", name, time.Duration(b), time.Duration(c), delta)
	}
	row("write p50", base.WriteP50Ns, cur.WriteP50Ns)
	row("write p99", base.WriteP99Ns, cur.WriteP99Ns)
	row("write max", base.WriteMaxNs, cur.WriteMaxNs)
	fmt.Println()
	if base.WriteP99Ns > 0 && float64(cur.WriteP99Ns) > float64(base.WriteP99Ns)*mixedRegressionFactor {
		fmt.Printf("::warning title=mixed-workload regression::p99 write latency %v vs baseline %v (>%.0f%% growth) — a slow reader may be back on the write path\n",
			time.Duration(cur.WriteP99Ns), time.Duration(base.WriteP99Ns), (mixedRegressionFactor-1)*100)
	}
}
