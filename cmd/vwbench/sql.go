package main

// The `sql` experiment: TPC-H end-to-end through the public surface.
// Where t1/c1/c2 hand the engines pre-built algebra plans, this one
// submits the SQL text of every suite query to DB.Query — lexer, parser,
// planner, rewriter, plan cache, cross-compiler, vectorized execution —
// and separates the cold cost (empty plan cache, the whole front end on
// the critical path) from the warm cost (cached template, bind and run).
// The results land in a JSON artifact that CI archives per commit and
// compares against a checked-in baseline, which is what turns the suite
// into a regression instrument rather than a one-off table.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	vectorwise "vectorwise"
	"vectorwise/internal/sql"
	"vectorwise/internal/tpch"
	"vectorwise/internal/tpchdb"
)

// benchSchemaVersion guards artifact compatibility in CI comparisons.
const benchSchemaVersion = 1

// regressionThreshold is the warm-time growth that triggers a warning.
const regressionThreshold = 0.25

// prunedFractionSlack is how far a query's pruned row-group fraction
// may drop below the baseline before the compare warns (data sizes vary
// a little across scale factors and group-size tweaks).
const prunedFractionSlack = 0.05

// prunedFraction is the share of visited row groups a query skipped.
func prunedFraction(r queryResult) float64 {
	total := r.GroupsPruned + r.GroupsScanned
	if total == 0 {
		return 0
	}
	return float64(r.GroupsPruned) / float64(total)
}

// queryResult is one (query, parallelism) measurement.
type queryResult struct {
	Query       string `json:"query"`
	Parallelism int    `json:"parallelism"`
	// ColdNs times the first execution after emptying the plan cache
	// (parse + plan + rewrite + compile + run).
	ColdNs int64 `json:"cold_ns"`
	// WarmNs is the best of -warm cached executions.
	WarmNs int64 `json:"warm_ns"`
	// StreamNs is the best warm execution through the streaming cursor
	// (QueryContext + NextBatch): the same cached plan, consumed
	// columnar with no row boxing.
	StreamNs int64 `json:"stream_ns"`
	Rows     int   `json:"rows"`
	// CollectAllocBytes/StreamAllocBytes are heap bytes allocated by
	// one warm execution of each result path (runtime TotalAlloc
	// delta) — the boxing overhead the cursor API eliminates, tracked
	// per commit alongside the timings.
	CollectAllocBytes uint64 `json:"collect_alloc_bytes"`
	StreamAllocBytes  uint64 `json:"stream_alloc_bytes"`
	// CacheHits/CacheMisses are the plan-cache counter deltas across the
	// query's executions (expected: 1 miss on the cold run, every later
	// execution a hit).
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	// GroupsScanned/GroupsPruned count row-group outcomes of one warm
	// execution: how many groups the scans decompressed vs how many
	// min/max data skipping refuted from chunk statistics. The baseline
	// compare warns when a query's pruned fraction drops.
	GroupsScanned int64 `json:"groups_scanned"`
	GroupsPruned  int64 `json:"groups_pruned"`
	// AggProbeNs/JoinBuildNs are the hash-operator phase timings of one
	// warm execution: total time HashAggregate spent in batched group
	// FindOrInsert, and total time HashJoin spent building its table.
	// The baseline compare warns when either regresses past the
	// threshold — the shared hashtable core's own regression guard.
	AggProbeNs  int64 `json:"agg_probe_ns"`
	JoinBuildNs int64 `json:"join_build_ns"`
}

// benchFile is the BENCH_tpch.json artifact.
type benchFile struct {
	SchemaVersion int     `json:"schema_version"`
	SF            float64 `json:"sf"`
	GOMAXPROCS    int     `json:"gomaxprocs"`
	GOOS          string  `json:"goos"`
	GOARCH        string  `json:"goarch"`
	// Ingest covers tpchdb.Load: data generation + CREATE TABLE +
	// LoadBatch through the public bulk path.
	IngestRows int64 `json:"ingest_rows"`
	IngestNs   int64 `json:"ingest_ns"`
	// ParseMBs is warm-arena parse throughput over the whole SQL suite
	// (front end only, best pass) — the lexer+parser budget, tracked so
	// front-end regressions show up even when execution dominates the
	// per-query timings.
	ParseMBs float64       `json:"parse_mb_s"`
	Results  []queryResult `json:"results"`
}

// measureParseMBs reports warm parse throughput: the full SQL suite
// parsed repeatedly into one reused arena for a fixed wall budget, best
// whole-suite pass wins (matches BenchmarkParse/corpus in internal/sql).
func measureParseMBs() float64 {
	suite := tpch.SQLSuite()
	var total int64
	for _, q := range suite {
		total += int64(len(q.SQL))
	}
	if total == 0 {
		return 0
	}
	a := sql.NewArena()
	best := 0.0
	for deadline := time.Now().Add(300 * time.Millisecond); time.Now().Before(deadline); {
		start := time.Now()
		for _, q := range suite {
			if _, err := sql.Parse(q.SQL, sql.WithArena(a)); err != nil {
				fatal(fmt.Errorf("parse %s: %w", q.Name, err))
			}
		}
		if el := time.Since(start).Seconds(); el > 0 {
			if mbs := float64(total) / el / 1e6; mbs > best {
				best = mbs
			}
		}
	}
	return best
}

func expSQL(db *vectorwise.DB, sf float64, load tpchdb.LoadStats, outPath, baselinePath string, warmRuns int) {
	fmt.Println("== SQL: TPC-H through the public SQL surface (cold vs warm plan cache) ==")
	if warmRuns < 1 {
		warmRuns = 1
	}
	pars := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		pars = append(pars, n)
	}
	bf := benchFile{
		SchemaVersion: benchSchemaVersion,
		SF:            sf,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		IngestRows:    load.Rows,
		IngestNs:      load.Elapsed.Nanoseconds(),
		ParseMBs:      measureParseMBs(),
	}
	fmt.Printf("parse throughput (warm arena, whole suite): %.0f MB/s\n", bf.ParseMBs)
	fmt.Printf("%-6s %4s %12s %12s %12s %7s %12s %6s %7s %10s %10s\n",
		"query", "par", "cold", "warm", "stream", "rows", "boxing-B", "h/m", "pruned", "agg-probe", "join-build")
	for _, par := range pars {
		db.SetParallelism(par)
		for _, q := range tpch.SQLSuite() {
			// Cold: empty the plan cache so the whole front end runs.
			db.SetPlanCacheCapacity(0)
			db.SetPlanCacheCapacity(vectorwise.DefaultPlanCacheCapacity)
			before := db.PlanCacheStats()
			start := time.Now()
			res, err := db.Query(q.SQL)
			if err != nil {
				fatal(fmt.Errorf("sql %s: %w", q.Name, err))
			}
			cold := time.Since(start)
			warm := time.Duration(1<<62 - 1)
			for i := 0; i < warmRuns; i++ {
				start = time.Now()
				if _, err := db.Query(q.SQL); err != nil {
					fatal(fmt.Errorf("sql %s (warm): %w", q.Name, err))
				}
				if d := time.Since(start); d < warm {
					warm = d
				}
			}
			// Streaming: same cached plan, consumed through the cursor
			// (NextBatch) with no result boxing.
			stream := time.Duration(1<<62 - 1)
			var streamRows int
			for i := 0; i < warmRuns; i++ {
				start = time.Now()
				n, err := drainCursor(db, q.SQL)
				if err != nil {
					fatal(fmt.Errorf("sql %s (stream): %w", q.Name, err))
				}
				if d := time.Since(start); d < stream {
					stream = d
				}
				streamRows = n
			}
			if streamRows != len(res.Rows) {
				fatal(fmt.Errorf("sql %s: cursor yielded %d rows, Query %d", q.Name, streamRows, len(res.Rows)))
			}
			collectAlloc := allocBytes(func() {
				if _, err := db.Query(q.SQL); err != nil {
					fatal(err)
				}
			})
			streamAlloc := allocBytes(func() {
				if _, err := drainCursor(db, q.SQL); err != nil {
					fatal(err)
				}
			})
			// Row-group outcomes of one warm execution (cumulative DB
			// counters, so take a delta).
			scanBefore := db.ScanStats()
			if _, err := db.Query(q.SQL); err != nil {
				fatal(fmt.Errorf("sql %s (scan stats): %w", q.Name, err))
			}
			scanAfter := db.ScanStats()
			// Hash-operator phase timings of one warm execution, read off
			// the statement's own cursor (per-statement stats, no
			// cumulative-counter delta needed).
			aggProbeNs, joinBuildNs, err := hashPhaseNs(db, q.SQL)
			if err != nil {
				fatal(fmt.Errorf("sql %s (hash stats): %w", q.Name, err))
			}
			after := db.PlanCacheStats()
			r := queryResult{
				Query:             q.Name,
				Parallelism:       par,
				ColdNs:            cold.Nanoseconds(),
				WarmNs:            warm.Nanoseconds(),
				StreamNs:          stream.Nanoseconds(),
				Rows:              len(res.Rows),
				CollectAllocBytes: collectAlloc,
				StreamAllocBytes:  streamAlloc,
				CacheHits:         after.Hits - before.Hits,
				CacheMisses:       after.Misses - before.Misses,
				GroupsScanned:     scanAfter.GroupsScanned - scanBefore.GroupsScanned,
				GroupsPruned:      scanAfter.GroupsPruned - scanBefore.GroupsPruned,
				AggProbeNs:        aggProbeNs,
				JoinBuildNs:       joinBuildNs,
			}
			bf.Results = append(bf.Results, r)
			boxing := int64(collectAlloc) - int64(streamAlloc)
			fmt.Printf("%-6s %4d %12v %12v %12v %7d %12d %3d/%d %5d/%d %10v %10v\n", q.Name, par,
				cold.Round(time.Microsecond), warm.Round(time.Microsecond),
				stream.Round(time.Microsecond), r.Rows, boxing,
				r.CacheHits, r.CacheMisses, r.GroupsPruned, r.GroupsPruned+r.GroupsScanned,
				time.Duration(r.AggProbeNs).Round(time.Microsecond),
				time.Duration(r.JoinBuildNs).Round(time.Microsecond))
		}
	}
	fmt.Println()
	if err := writeBenchFile(outPath, bf); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n\n", outPath)
	if baselinePath != "" {
		compareBaseline(bf, baselinePath)
	}
}

// drainCursor runs sql through the streaming cursor, counting rows
// without boxing any.
func drainCursor(db *vectorwise.DB, sql string) (int, error) {
	rows, err := db.QueryContext(context.Background(), sql)
	if err != nil {
		return 0, err
	}
	defer rows.Close()
	n := 0
	for {
		b, err := rows.NextBatch()
		if err != nil {
			return 0, err
		}
		if b == nil {
			return n, nil
		}
		n += b.N
	}
}

// hashPhaseNs runs sql once through the streaming cursor and reports
// the statement's hash-operator phase timings: total HashAggregate
// batched-probe time and total HashJoin build time (summed across
// operators, e.g. exchange shards).
func hashPhaseNs(db *vectorwise.DB, sqlText string) (aggNs, joinNs int64, err error) {
	rows, err := db.QueryContext(context.Background(), sqlText)
	if err != nil {
		return 0, 0, err
	}
	defer rows.Close()
	for {
		b, err := rows.NextBatch()
		if err != nil {
			return 0, 0, err
		}
		if b == nil {
			break
		}
	}
	for _, h := range rows.HashStats() {
		switch h.Op {
		case "agg":
			aggNs += h.PhaseNs
		case "join":
			joinNs += h.PhaseNs
		}
	}
	return aggNs, joinNs, nil
}

// allocBytes reports heap bytes allocated by fn (TotalAlloc delta —
// monotonic, so GC timing does not skew it).
func allocBytes(fn func()) uint64 {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	fn()
	runtime.ReadMemStats(&after)
	return after.TotalAlloc - before.TotalAlloc
}

func writeBenchFile(path string, bf benchFile) error {
	data, err := json.MarshalIndent(bf, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// compareBaseline prints a markdown comparison of warm times against a
// checked-in baseline and emits GitHub warning annotations for
// regressions beyond the threshold. Advisory only: CI runners differ, so
// it never fails the build.
func compareBaseline(cur benchFile, path string) {
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Printf("no baseline at %s (%v) — skipping comparison\n", path, err)
		return
	}
	var base benchFile
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Printf("unreadable baseline %s: %v — skipping comparison\n", path, err)
		return
	}
	if base.SchemaVersion != cur.SchemaVersion {
		fmt.Printf("baseline schema v%d != current v%d — skipping comparison\n",
			base.SchemaVersion, cur.SchemaVersion)
		return
	}
	type key struct {
		q   string
		par int
	}
	baseBy := map[key]queryResult{}
	for _, r := range base.Results {
		baseBy[key{r.Query, r.Parallelism}] = r
	}
	fmt.Println("### TPC-H SQL benchmark vs baseline")
	fmt.Println()
	fmt.Println("| query | par | baseline warm | current warm | delta |")
	fmt.Println("|-------|-----|---------------|--------------|-------|")
	regressions := 0
	for _, r := range cur.Results {
		b, ok := baseBy[key{r.Query, r.Parallelism}]
		if !ok || b.WarmNs == 0 {
			fmt.Printf("| %s | %d | — | %v | new |\n", r.Query, r.Parallelism, time.Duration(r.WarmNs).Round(time.Microsecond))
			continue
		}
		delta := float64(r.WarmNs-b.WarmNs) / float64(b.WarmNs)
		mark := ""
		if delta > regressionThreshold {
			mark = " ⚠️"
			regressions++
			fmt.Printf("::warning title=TPC-H %s regression::%s (par %d) warm time %+.0f%% vs baseline (%v → %v)\n",
				r.Query, r.Query, r.Parallelism, delta*100,
				time.Duration(b.WarmNs).Round(time.Microsecond),
				time.Duration(r.WarmNs).Round(time.Microsecond))
		}
		// Hash-phase regressions: agg probe or join build time growing
		// past the threshold means the shared hashtable core (or its
		// wiring in the operators) got slower, even if total warm time
		// hides it behind scan or sort work. Skipped when the baseline
		// predates the fields (unmarshals as 0).
		for _, ph := range [...]struct {
			name          string
			baseNs, curNs int64
		}{
			{"agg probe", b.AggProbeNs, r.AggProbeNs},
			{"join build", b.JoinBuildNs, r.JoinBuildNs},
		} {
			if ph.baseNs <= 0 || ph.curNs <= 0 {
				continue
			}
			d := float64(ph.curNs-ph.baseNs) / float64(ph.baseNs)
			if d > regressionThreshold {
				regressions++
				fmt.Printf("::warning title=TPC-H %s %s regression::%s (par %d) %s time %+.0f%% vs baseline (%v → %v)\n",
					r.Query, ph.name, r.Query, r.Parallelism, ph.name, d*100,
					time.Duration(ph.baseNs).Round(time.Microsecond),
					time.Duration(ph.curNs).Round(time.Microsecond))
			}
		}
		// Data-skipping regression: a query that used to prune row
		// groups and now prunes a meaningfully smaller fraction lost
		// its scan-level predicate (or the stats stopped refuting it).
		basePF, curPF := prunedFraction(b), prunedFraction(r)
		if basePF > 0 && curPF < basePF-prunedFractionSlack {
			regressions++
			fmt.Printf("::warning title=TPC-H %s pruning regression::%s (par %d) pruned fraction %.0f%% → %.0f%% (%d/%d → %d/%d groups)\n",
				r.Query, r.Query, r.Parallelism, basePF*100, curPF*100,
				b.GroupsPruned, b.GroupsPruned+b.GroupsScanned,
				r.GroupsPruned, r.GroupsPruned+r.GroupsScanned)
		}
		fmt.Printf("| %s | %d | %v | %v | %+.0f%%%s |\n", r.Query, r.Parallelism,
			time.Duration(b.WarmNs).Round(time.Microsecond),
			time.Duration(r.WarmNs).Round(time.Microsecond), delta*100, mark)
	}
	fmt.Println()
	// Front-end throughput: advisory like the rest, skipped when the
	// baseline predates the field (unmarshals as 0).
	if base.ParseMBs > 0 && cur.ParseMBs > 0 {
		delta := (cur.ParseMBs - base.ParseMBs) / base.ParseMBs
		fmt.Printf("parse throughput: %.0f MB/s baseline → %.0f MB/s current (%+.0f%%)\n",
			base.ParseMBs, cur.ParseMBs, delta*100)
		if delta < -regressionThreshold {
			regressions++
			fmt.Printf("::warning title=SQL parse throughput regression::parse_mb_s %.0f → %.0f (%+.0f%%)\n",
				base.ParseMBs, cur.ParseMBs, delta*100)
		}
	}
	if regressions == 0 {
		fmt.Println("No per-query warm regressions beyond 25%.")
	} else {
		fmt.Printf("%d per-query warm regression(s) beyond 25%% (advisory — runners vary).\n", regressions)
	}
	fmt.Println()
}
