package main

// The `cluster` experiment: distributed exchange measured. It stands up
// two in-process clusters — one shard vs three shards, every node
// pinned to one core so the speedup measured is sharding, not the
// intra-node parallel rewriter — loads TPC-H through the coordinator's
// CSV fan-out, and times the SQL suite on both. A second, tiny cluster
// with two replicas measures failover recovery: the primary is killed
// and the next query's wall time (detect + retry on the replica) is the
// recovery latency. CI compares the totals against a checked-in
// baseline and warns on regressions.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"time"

	vectorwise "vectorwise"
	"vectorwise/internal/cluster"
	"vectorwise/internal/server"
	"vectorwise/internal/tpch"
	"vectorwise/internal/tpchdb"
)

const clusterSchemaVersion = 1

// clusterRegressionFactor is the total-wall-time growth (and failover
// recovery growth) that triggers a CI warning.
const clusterRegressionFactor = 1.5

type clusterQueryResult struct {
	Name      string  `json:"name"`
	SingleNs  int64   `json:"single_ns"`
	ShardedNs int64   `json:"sharded_ns"`
	Speedup   float64 `json:"speedup"`
}

// clusterFile is the BENCH_cluster.json artifact.
type clusterFile struct {
	SchemaVersion int     `json:"schema_version"`
	GOMAXPROCS    int     `json:"gomaxprocs"`
	GOOS          string  `json:"goos"`
	GOARCH        string  `json:"goarch"`
	SF            float64 `json:"sf"`
	Shards        int     `json:"shards"`
	// Per-query warm wall times, coordinator-to-last-row.
	Queries []clusterQueryResult `json:"queries"`
	// Totals across the suite.
	SingleTotalNs  int64 `json:"single_total_ns"`
	ShardedTotalNs int64 `json:"sharded_total_ns"`
	// FailoverRecoveryNs is the wall time of the first query issued
	// after the primary replica is killed: connect failure + retry on
	// the surviving replica, end to end.
	FailoverRecoveryNs int64 `json:"failover_recovery_ns"`
}

// benchCluster is a coordinator over in-process single-core nodes.
type benchCluster struct {
	co    *cluster.Coordinator
	close func()
}

func newBenchCluster(shards, replicas int, tables []string) *benchCluster {
	var closers []func()
	m := &cluster.ShardMap{Tables: make(map[string]cluster.Placement)}
	for si := 0; si < shards; si++ {
		var urls []string
		for ri := 0; ri < replicas; ri++ {
			db := vectorwise.OpenMemory()
			db.SetParallelism(1)
			s := server.New(db, server.Config{Name: fmt.Sprintf("s%dr%d", si, ri)})
			ts := httptest.NewServer(s.Handler())
			closers = append(closers, func() { ts.Close(); s.Close() })
			urls = append(urls, ts.URL)
		}
		m.Shards = append(m.Shards, urls)
	}
	for _, spec := range tables {
		name, key, ok := strings.Cut(spec, ":")
		if !ok {
			fatal(fmt.Errorf("bad table spec %q", spec))
		}
		m.Tables[name] = cluster.Placement{Sharded: true, KeyCol: key}
	}
	co, err := cluster.New(cluster.Config{Map: m, HealthInterval: time.Hour})
	if err != nil {
		fatal(err)
	}
	closers = append(closers, func() { co.Close() })
	return &benchCluster{co: co, close: func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}}
}

func (bc *benchCluster) loadTPCH(data map[string][]byte) {
	ctx := context.Background()
	for _, ddl := range tpch.DDL() {
		if _, err := bc.co.Exec(ctx, ddl); err != nil {
			fatal(err)
		}
	}
	for table, csv := range data {
		if _, err := bc.co.LoadCSV(ctx, table, bytes.NewReader(csv), cluster.LoadOptions{}); err != nil {
			fatal(fmt.Errorf("cluster load %s: %w", table, err))
		}
	}
}

// timeQuery runs a SELECT through the coordinator and returns wall time
// to the last row.
func (bc *benchCluster) timeQuery(sqlText string) (time.Duration, int64) {
	start := time.Now()
	res, err := bc.co.Query(context.Background(), sqlText)
	if err != nil {
		fatal(err)
	}
	defer res.Close()
	var rows int64
	for {
		b, err := res.NextBatch()
		if err != nil {
			fatal(err)
		}
		if b == nil {
			break
		}
		rows += int64(b.N)
	}
	return time.Since(start), rows
}

func expCluster(sf float64, shards int, outPath, baselinePath string) {
	fmt.Printf("== CLUSTER: 1-node vs %d-shard distributed exchange (SF %g, 1 core/node) ==\n", shards, sf)
	data, err := tpchdb.GenerateCSV(sf)
	if err != nil {
		fatal(err)
	}
	tables := []string{"lineitem:l_orderkey", "orders:o_orderkey"}
	single := newBenchCluster(1, 1, tables)
	defer single.close()
	sharded := newBenchCluster(shards, 1, tables)
	defer sharded.close()
	single.loadTPCH(data)
	sharded.loadTPCH(data)

	cf := clusterFile{
		SchemaVersion: clusterSchemaVersion,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		SF:            sf,
		Shards:        shards,
	}
	fmt.Printf("%-6s %12s %12s %9s %8s\n", "query", "1-node", fmt.Sprintf("%d-shard", shards), "speedup", "rows")
	for _, q := range tpch.SQLSuite() {
		// One warm-up run each, then best of three.
		single.timeQuery(q.SQL)
		sharded.timeQuery(q.SQL)
		best := func(bc *benchCluster) (time.Duration, int64) {
			bestD := time.Duration(1 << 62)
			var rows int64
			for rep := 0; rep < 3; rep++ {
				d, n := bc.timeQuery(q.SQL)
				if d < bestD {
					bestD = d
				}
				rows = n
			}
			return bestD, rows
		}
		ds, n1 := best(single)
		dc, n2 := best(sharded)
		if n1 != n2 {
			fatal(fmt.Errorf("cluster %s: %d rows sharded vs %d single-node", q.Name, n2, n1))
		}
		cf.Queries = append(cf.Queries, clusterQueryResult{
			Name:      q.Name,
			SingleNs:  ds.Nanoseconds(),
			ShardedNs: dc.Nanoseconds(),
			Speedup:   ds.Seconds() / dc.Seconds(),
		})
		cf.SingleTotalNs += ds.Nanoseconds()
		cf.ShardedTotalNs += dc.Nanoseconds()
		fmt.Printf("%-6s %12v %12v %8.2fx %8d\n", q.Name,
			ds.Round(time.Microsecond), dc.Round(time.Microsecond),
			ds.Seconds()/dc.Seconds(), n1)
	}
	fmt.Printf("%-6s %12v %12v %8.2fx\n", "total",
		time.Duration(cf.SingleTotalNs).Round(time.Microsecond),
		time.Duration(cf.ShardedTotalNs).Round(time.Microsecond),
		float64(cf.SingleTotalNs)/float64(cf.ShardedTotalNs))

	cf.FailoverRecoveryNs = measureFailoverRecovery()
	fmt.Printf("failover recovery (primary killed → next query answered by replica): %v\n\n",
		time.Duration(cf.FailoverRecoveryNs).Round(time.Microsecond))

	out, err := json.MarshalIndent(cf, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(outPath, append(out, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n\n", outPath)
	if baselinePath != "" {
		compareClusterBaseline(cf, baselinePath)
	}
}

// measureFailoverRecovery kills a primary replica and times the next
// query: the coordinator's connect failure, retry, and the replica's
// answer, end to end.
func measureFailoverRecovery() int64 {
	ctx := context.Background()
	var primary *httptest.Server
	m := &cluster.ShardMap{Tables: map[string]cluster.Placement{
		"fk": {Sharded: true, KeyCol: "k"},
	}}
	var urls []string
	var closers []func()
	for ri := 0; ri < 2; ri++ {
		db := vectorwise.OpenMemory()
		db.SetParallelism(1)
		s := server.New(db, server.Config{})
		ts := httptest.NewServer(s.Handler())
		closers = append(closers, func() { ts.Close(); s.Close() })
		if ri == 0 {
			primary = ts
		}
		urls = append(urls, ts.URL)
	}
	defer func() {
		for _, c := range closers {
			c()
		}
	}()
	m.Shards = [][]string{urls}
	co, err := cluster.New(cluster.Config{Map: m, HealthInterval: time.Hour})
	if err != nil {
		fatal(err)
	}
	defer co.Close()
	if _, err := co.Exec(ctx, `CREATE TABLE fk (k BIGINT, v DOUBLE)`); err != nil {
		fatal(err)
	}
	var rows bytes.Buffer
	for i := 0; i < 10_000; i++ {
		fmt.Fprintf(&rows, "%d,%d.5\n", i, i)
	}
	if _, err := co.LoadCSV(ctx, "fk", bytes.NewReader(rows.Bytes()), cluster.LoadOptions{}); err != nil {
		fatal(err)
	}
	warm := func() {
		res, err := co.Query(ctx, `SELECT SUM(v) FROM fk`)
		if err != nil {
			fatal(err)
		}
		for {
			b, err := res.NextBatch()
			if err != nil {
				fatal(err)
			}
			if b == nil {
				break
			}
		}
		res.Close()
	}
	warm()

	primary.CloseClientConnections()
	primary.Close()
	start := time.Now()
	warm()
	return time.Since(start).Nanoseconds()
}

// compareClusterBaseline warns (GitHub annotation) when the sharded
// suite total or the failover recovery regresses past the factor.
func compareClusterBaseline(cur clusterFile, path string) {
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Printf("no cluster baseline at %s (%v) — skipping comparison\n", path, err)
		return
	}
	var base clusterFile
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Printf("unreadable cluster baseline %s: %v — skipping comparison\n", path, err)
		return
	}
	if base.SchemaVersion != cur.SchemaVersion {
		fmt.Printf("cluster baseline schema v%d != current v%d — skipping comparison\n",
			base.SchemaVersion, cur.SchemaVersion)
		return
	}
	fmt.Printf("| metric | baseline | current | delta |\n|---|---|---|---|\n")
	row := func(name string, b, c int64) {
		delta := "n/a"
		if b > 0 {
			delta = fmt.Sprintf("%+.1f%%", 100*(float64(c)-float64(b))/float64(b))
		}
		fmt.Printf("| %s | %v | %v | %s |\n", name, time.Duration(b), time.Duration(c), delta)
	}
	row("suite total (1-node)", base.SingleTotalNs, cur.SingleTotalNs)
	row(fmt.Sprintf("suite total (%d-shard)", cur.Shards), base.ShardedTotalNs, cur.ShardedTotalNs)
	row("failover recovery", base.FailoverRecoveryNs, cur.FailoverRecoveryNs)
	fmt.Println()
	if base.ShardedTotalNs > 0 && float64(cur.ShardedTotalNs) > float64(base.ShardedTotalNs)*clusterRegressionFactor {
		fmt.Printf("::warning title=cluster regression::%d-shard suite total %v vs baseline %v (>%.0f%% growth)\n",
			cur.Shards, time.Duration(cur.ShardedTotalNs), time.Duration(base.ShardedTotalNs),
			(clusterRegressionFactor-1)*100)
	}
	if base.FailoverRecoveryNs > 0 && float64(cur.FailoverRecoveryNs) > float64(base.FailoverRecoveryNs)*clusterRegressionFactor {
		fmt.Printf("::warning title=cluster failover regression::recovery %v vs baseline %v (>%.0f%% growth)\n",
			time.Duration(cur.FailoverRecoveryNs), time.Duration(base.FailoverRecoveryNs),
			(clusterRegressionFactor-1)*100)
	}
}
