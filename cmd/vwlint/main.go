// Command vwlint is the engine's invariant checker: a multichecker
// running the internal/analyzers suite — lockdiscipline, selalias,
// ctxnext, arenaescape, refbalance — over the requested packages.
//
// Usage:
//
//	go run ./cmd/vwlint ./...          # whole tree (what CI runs)
//	go run ./cmd/vwlint -list          # describe the analyzers
//
// Diagnostics print as path:line:col: analyzer: message; the exit code
// is 1 when any diagnostic survives //vwlint:ignore suppression, 2 on
// load errors. Only non-test Go files are analyzed. Suppression
// directives take the form
//
//	//vwlint:ignore <analyzer>[,<analyzer>] <reason>
//
// where the reason is mandatory and unknown analyzer names are
// themselves diagnostics.
package main

import (
	"flag"
	"fmt"
	"os"

	"vectorwise/internal/analyzers"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and their invariants, then exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: vwlint [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	suite := analyzers.All()
	if *list {
		for _, a := range suite {
			fmt.Printf("%s: %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analyzers.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	findings := analyzers.Run(pkgs, suite)
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "vwlint: %d invariant violation(s)\n", len(findings))
		os.Exit(1)
	}
}
