// Command vwcoord fronts a sharded + replicated cluster of vwserve
// nodes: it hash-shards designated tables across the shards on ingest,
// scatters SELECTs as per-shard partial statements, merges the partial
// results, and fails reads over between a shard's replicas when a node
// dies. It speaks the same /v1/query wire as a single node, so clients
// point at the coordinator exactly as they would at vwserve.
//
//	vwserve -addr :9001 -name s0a &
//	vwserve -addr :9002 -name s0b &
//	vwserve -addr :9011 -name s1a &
//	vwcoord -addr :8080 \
//	    -shard localhost:9001,localhost:9002 \
//	    -shard localhost:9011 \
//	    -table lineitem:l_orderkey -table orders:o_orderkey
//
// Flags:
//
//	-addr             listen address (default :8080)
//	-shard            one shard's replica URLs, comma-separated (repeat per shard)
//	-table            shard a table: name:keycol (repeat per table; others replicate)
//	-timeout          per-shard request deadline (default 30s)
//	-health-interval  replica health poll period (default 2s)
package main

import (
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"vectorwise/internal/cluster"
)

// repeatFlag collects a repeatable string flag.
type repeatFlag []string

func (f *repeatFlag) String() string     { return strings.Join(*f, "; ") }
func (f *repeatFlag) Set(v string) error { *f = append(*f, v); return nil }

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	timeout := flag.Duration("timeout", 30*time.Second, "per-shard request deadline")
	healthInterval := flag.Duration("health-interval", 2*time.Second, "replica health poll period")
	var shards, tables repeatFlag
	flag.Var(&shards, "shard", "one shard's replica URLs, comma-separated (repeat per shard)")
	flag.Var(&tables, "table", "shard a table: name:keycol (repeat per table)")
	flag.Parse()

	m, err := cluster.ParseShardFlags(shards, tables)
	if err != nil {
		fail(err)
	}
	co, err := cluster.New(cluster.Config{
		Map:            m,
		Timeout:        *timeout,
		HealthInterval: *healthInterval,
	})
	if err != nil {
		fail(err)
	}
	defer co.Close()

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           co.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Printf("vwcoord listening on %s (%d shards, %d sharded tables)\n",
		*addr, m.NumShards(), len(m.Tables))

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fail(err)
		}
	case sig := <-sigc:
		fmt.Printf("vwcoord: %v, shutting down\n", sig)
		_ = httpSrv.Close()
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "vwcoord:", err)
	os.Exit(1)
}
