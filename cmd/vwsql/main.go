// Command vwsql is an interactive shell (or one-shot executor) for a
// vectorwise database directory.
//
//	vwsql -db ./mydb                       # REPL
//	vwsql -db ./mydb -c "SELECT ..."       # one statement
//	vwsql -db ./mydb -explain "SELECT .."  # show the optimized plan
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	vectorwise "vectorwise"
)

func main() {
	dir := flag.String("db", "", "database directory (empty = in-memory)")
	oneShot := flag.String("c", "", "execute one statement and exit")
	explain := flag.String("explain", "", "explain a SELECT and exit")
	flag.Parse()

	var db *vectorwise.DB
	var err error
	if *dir == "" {
		db = vectorwise.OpenMemory()
	} else {
		db, err = vectorwise.Open(*dir)
		if err != nil {
			fail(err)
		}
	}
	defer db.Close()

	if *explain != "" {
		plan, err := db.Explain(*explain)
		if err != nil {
			fail(err)
		}
		fmt.Print(plan)
		return
	}
	if *oneShot != "" {
		run(db, *oneShot)
		return
	}

	fmt.Println("vectorwise shell — end statements with ; — \\q to quit")
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	fmt.Print("vw> ")
	for sc.Scan() {
		line := sc.Text()
		if strings.TrimSpace(line) == "\\q" {
			return
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.Contains(line, ";") {
			run(db, buf.String())
			buf.Reset()
		}
		fmt.Print("vw> ")
	}
}

func run(db *vectorwise.DB, stmt string) {
	up := strings.ToUpper(strings.TrimSpace(stmt))
	if strings.HasPrefix(up, "SELECT") {
		res, err := db.Query(stmt)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Println(strings.Join(res.Columns, "\t"))
		for _, row := range res.Rows {
			parts := make([]string, len(row))
			for i, v := range row {
				parts[i] = v.String()
			}
			fmt.Println(strings.Join(parts, "\t"))
		}
		fmt.Printf("(%d rows)\n", len(res.Rows))
		return
	}
	n, err := db.Exec(stmt)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("OK (%d rows affected)\n", n)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "vwsql:", err)
	os.Exit(1)
}
