// Command vwgen generates a TPC-H database directory at a scale factor.
//
//	vwgen -sf 0.01 -out ./tpchdb
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"vectorwise/internal/tpch"
)

func main() {
	sf := flag.Float64("sf", 0.01, "scale factor (1.0 = 6M lineitems)")
	out := flag.String("out", "tpchdb", "output directory")
	flag.Parse()

	start := time.Now()
	cat, err := tpch.Generate(*sf, 0)
	if err != nil {
		fail(err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fail(err)
	}
	var total int64
	for _, name := range cat.Names() {
		t, _, err := cat.Resolve(name)
		if err != nil {
			fail(err)
		}
		path := filepath.Join(*out, name+".vwt")
		if err := t.Save(path); err != nil {
			fail(err)
		}
		fmt.Printf("%-10s %10d rows  %10d bytes compressed\n", name, t.Rows(), t.DataSize())
		total += t.DataSize()
	}
	fmt.Printf("done: SF %g in %v, %d bytes on disk\n", *sf, time.Since(start).Round(time.Millisecond), total)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "vwgen:", err)
	os.Exit(1)
}
