// Command vwserve serves a vectorwise database over HTTP: a JSON query
// endpoint with session management, per-request timeouts, and admission
// control capping concurrent statements.
//
//	vwserve -db ./mydb -addr :8080
//	curl -s localhost:8080/v1/query -d '{"sql":"SELECT k, SUM(v) s FROM t GROUP BY k"}'
//
// Large SELECTs should stream: ?stream=1 returns chunked NDJSON — one
// line of column names, one {"rows":[...]} line per engine vector
// batch, then a {"done":true,...} trailer — in O(vector) server memory,
// and a timeout or dropped connection cancels the statement mid-flight:
//
//	curl -sN 'localhost:8080/v1/query?stream=1' -d '{"sql":"SELECT * FROM t"}'
//
// Flags:
//
//	-addr            listen address (default :8080)
//	-db              database directory (empty = in-memory)
//	-max-concurrent  in-flight statement cap (default 2×GOMAXPROCS/parallelism)
//	-max-queue       waiting room beyond the cap (default 4×cap)
//	-timeout         per-statement execution deadline (default 30s)
//	-session-ttl     idle session expiry (default 15m)
//	-parallelism     per-query worker target (default GOMAXPROCS)
//	-plan-cache      plan cache capacity in statements (0 disables)
//	-name            node name reported on /v1/health (cluster identity)
//
// On SIGINT/SIGTERM the server drains before exiting: new statements
// are refused with 503 ("draining"), in-flight streaming cursors run to
// completion, and /v1/health reports "draining" so a cluster
// coordinator fails reads over to another replica immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	vectorwise "vectorwise"
	"vectorwise/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dir := flag.String("db", "", "database directory (empty = in-memory)")
	maxConcurrent := flag.Int("max-concurrent", 0, "in-flight statement cap (0 = 2×GOMAXPROCS/parallelism)")
	maxQueue := flag.Int("max-queue", 0, "waiting room beyond the cap (0 = 4×cap, negative disables)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-statement execution deadline")
	sessionTTL := flag.Duration("session-ttl", 15*time.Minute, "idle session expiry (negative disables)")
	parallelism := flag.Int("parallelism", 0, "per-query worker target (0 = GOMAXPROCS)")
	planCache := flag.Int("plan-cache", vectorwise.DefaultPlanCacheCapacity,
		"plan cache capacity in statements (0 disables)")
	name := flag.String("name", "", "node name reported on /v1/health")
	flag.Parse()

	var db *vectorwise.DB
	var err error
	if *dir == "" {
		db = vectorwise.OpenMemory()
	} else {
		db, err = vectorwise.Open(*dir)
		if err != nil {
			fail(err)
		}
	}
	defer db.Close()
	if *parallelism > 0 {
		db.SetParallelism(*parallelism)
	}
	if *planCache != vectorwise.DefaultPlanCacheCapacity {
		db.SetPlanCacheCapacity(*planCache)
	}

	srv := server.New(db, server.Config{
		MaxConcurrent: *maxConcurrent,
		MaxQueue:      *maxQueue,
		QueryTimeout:  *timeout,
		SessionTTL:    *sessionTTL,
		Name:          *name,
	})
	defer srv.Close()

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Serve until SIGINT/SIGTERM, then drain connections gracefully.
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Printf("vwserve listening on %s (db=%s)\n", *addr, dbLabel(*dir))

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fail(err)
		}
	case sig := <-sigc:
		fmt.Printf("vwserve: %v, draining\n", sig)
		// Refuse new statements first, then let Shutdown wait for the
		// in-flight responses (open streaming cursors included).
		srv.BeginDrain()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			fail(err)
		}
	}
}

func dbLabel(dir string) string {
	if dir == "" {
		return "in-memory"
	}
	return dir
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "vwserve:", err)
	os.Exit(1)
}
