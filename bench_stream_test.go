package vectorwise_test

// BenchmarkQueryStreamVsCollect measures what the streaming cursor
// eliminates: DB.Query drains the pipeline through boxed []vtypes.Row
// (one allocation per row plus one Value box per cell), while
// Rows.NextBatch hands out the engine's own vectors. B/op is the
// headline metric (ReportAllocs); CI runs this in the bench job next to
// the BENCH_tpch.json artifact.
//
// Two shapes bracket the effect:
//
//   - Q1: aggregation — the result is 4 groups, so boxing is a rounding
//     error and the two paths should be within noise of each other.
//     This sub-benchmark pins that the cursor adds no overhead.
//   - LineitemScan: a wide ~60K-row projection — the collect path boxes
//     every row, the stream path allocates O(batches).
//
// The test lives in an external package (vectorwise_test) because
// internal/tpchdb imports vectorwise.

import (
	"context"
	"testing"

	vectorwise "vectorwise"
	"vectorwise/internal/tpch"
	"vectorwise/internal/tpchdb"
)

func BenchmarkQueryStreamVsCollect(b *testing.B) {
	db := vectorwise.OpenMemory()
	if _, err := tpchdb.Load(db, 0.01); err != nil {
		b.Fatal(err)
	}
	q1, ok := tpch.FindSQL("Q1")
	if !ok {
		b.Fatal("Q1 missing from the SQL suite")
	}
	const scanSQL = `SELECT l_orderkey, l_extendedprice, l_discount, l_shipdate FROM lineitem`

	for _, bc := range []struct{ name, sql string }{
		{"Q1", q1.SQL},
		{"LineitemScan", scanSQL},
	} {
		b.Run(bc.name+"/Collect", func(b *testing.B) {
			b.ReportAllocs()
			var rows int
			for i := 0; i < b.N; i++ {
				res, err := db.Query(bc.sql)
				if err != nil {
					b.Fatal(err)
				}
				rows = len(res.Rows)
			}
			b.ReportMetric(float64(rows), "rows")
		})
		b.Run(bc.name+"/Stream", func(b *testing.B) {
			b.ReportAllocs()
			var rows int
			for i := 0; i < b.N; i++ {
				cur, err := db.QueryContext(context.Background(), bc.sql)
				if err != nil {
					b.Fatal(err)
				}
				rows = 0
				for {
					batch, err := cur.NextBatch()
					if err != nil {
						b.Fatal(err)
					}
					if batch == nil {
						break
					}
					rows += batch.N
				}
				if err := cur.Close(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(rows), "rows")
		})
	}
}
