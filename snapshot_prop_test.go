package vectorwise

// Property test of the snapshot machinery: random interleavings of
// INSERT / UPDATE / DELETE / Checkpoint / MoveTuples are mirrored into
// a plain-Go oracle map, and snapshot cursors pinned at random points
// along the way — each paired with a copy of the oracle at its pin
// instant — are drained at later random points (after arbitrarily many
// commits, folds, stable swaps and checkpoints) and must replay
// exactly the oracle state of their pin epoch. Fixed seeds keep runs
// reproducible; odd seeds run disk-backed to put the WAL and the
// persisted-image watermark in the loop.

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
)

type propCursor struct {
	rows   *Rows
	expect map[int64]int64 // oracle at pin time
	step   int             // pin step, for failure messages
}

// drainAndCheck consumes a pinned cursor and compares it to the oracle
// copy captured when it was pinned.
func (pc *propCursor) drainAndCheck(t *testing.T, now int) {
	t.Helper()
	got := make(map[int64]int64)
	var n int
	for {
		b, err := pc.rows.NextBatch()
		if err != nil {
			t.Fatalf("cursor pinned at step %d, drained at %d: %v", pc.step, now, err)
		}
		if b == nil {
			break
		}
		for i := 0; i < b.N; i++ {
			ix := b.LiveIndex(i)
			got[b.Vecs[0].I64[ix]] = b.Vecs[1].I64[ix]
			n++
		}
	}
	if n != len(pc.expect) {
		t.Fatalf("cursor pinned at step %d, drained at %d: %d rows, oracle had %d",
			pc.step, now, n, len(pc.expect))
	}
	for k, v := range pc.expect {
		gv, ok := got[k]
		if !ok || gv != v {
			t.Fatalf("cursor pinned at step %d, drained at %d: key %d = (%d,%v), oracle %d",
				pc.step, now, k, gv, ok, v)
		}
	}
}

func TestSnapshotPropertyRandomOps(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runSnapshotProperty(t, seed)
		})
	}
}

func runSnapshotProperty(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	var db *DB
	if seed%2 == 1 {
		var err error
		if db, err = Open(filepath.Join(t.TempDir(), "db")); err != nil {
			t.Fatal(err)
		}
		db.SetMoverInterval(0)
	} else {
		db = OpenMemory()
	}
	defer db.Close()
	if _, err := db.Exec(`CREATE TABLE kv (k BIGINT, v BIGINT)`); err != nil {
		t.Fatal(err)
	}
	// Tiny threshold so MoveTuples steps actually rebuild the stable
	// image, not just fold.
	db.SetMoverThreshold(4)

	oracle := make(map[int64]int64)
	copyOracle := func() map[int64]int64 {
		c := make(map[int64]int64, len(oracle))
		for k, v := range oracle {
			c[k] = v
		}
		return c
	}
	var pinned []*propCursor
	nextKey := int64(0)
	randKey := func() int64 {
		if nextKey == 0 {
			return 0
		}
		return rng.Int63n(nextKey)
	}

	const steps = 500
	for step := 0; step < steps; step++ {
		switch p := rng.Intn(100); {
		case p < 35: // insert a fresh key
			k, v := nextKey, rng.Int63n(1000)
			nextKey++
			if _, err := db.Exec(fmt.Sprintf(`INSERT INTO kv VALUES (%d, %d)`, k, v)); err != nil {
				t.Fatalf("step %d insert: %v", step, err)
			}
			oracle[k] = v
		case p < 55: // update a (possibly absent) key
			k, v := randKey(), rng.Int63n(1000)
			if _, err := db.Exec(fmt.Sprintf(`UPDATE kv SET v = %d WHERE k = %d`, v, k)); err != nil {
				t.Fatalf("step %d update: %v", step, err)
			}
			if _, ok := oracle[k]; ok {
				oracle[k] = v
			}
		case p < 70: // delete a (possibly absent) key
			k := randKey()
			if _, err := db.Exec(fmt.Sprintf(`DELETE FROM kv WHERE k = %d`, k)); err != nil {
				t.Fatalf("step %d delete: %v", step, err)
			}
			delete(oracle, k)
		case p < 75: // checkpoint: full flatten + WAL truncate when clean
			if err := db.Checkpoint("kv"); err != nil {
				t.Fatalf("step %d checkpoint: %v", step, err)
			}
		case p < 85: // mover pass: fold + (tiny threshold) stable rebuild
			if err := db.MoveTuples(); err != nil {
				t.Fatalf("step %d move: %v", step, err)
			}
		case p < 95: // pin a snapshot cursor, drain later
			rows, err := db.QueryContext(nil, `SELECT k, v FROM kv`)
			if err != nil {
				t.Fatalf("step %d pin: %v", step, err)
			}
			pinned = append(pinned, &propCursor{rows: rows, expect: copyOracle(), step: step})
		default: // drain a random pinned cursor now
			if len(pinned) == 0 {
				continue
			}
			i := rng.Intn(len(pinned))
			pc := pinned[i]
			pinned = append(pinned[:i], pinned[i+1:]...)
			pc.drainAndCheck(t, step)
		}
	}
	// Drain every straggler — some of these snapshots predate dozens
	// of reorganizations.
	for _, pc := range pinned {
		pc.drainAndCheck(t, steps)
	}
	// Final state matches the oracle through a fresh snapshot.
	final := &propCursor{expect: copyOracle(), step: steps}
	rows, err := db.QueryContext(nil, `SELECT k, v FROM kv`)
	if err != nil {
		t.Fatal(err)
	}
	final.rows = rows
	final.drainAndCheck(t, steps)
	if st := db.MoverStats(); st.Folds == 0 && st.Rebuilds == 0 {
		t.Logf("note: mover never reorganized this run: %+v", st)
	}
}
