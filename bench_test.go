package vectorwise

// Benchmark harness: one benchmark family per experiment in DESIGN.md's
// index (T1–T6, C1, C2, F1, F2). cmd/vwbench runs the same experiments
// as a standalone binary and prints paper-style tables; these benches
// integrate with `go test -bench` for regression tracking.

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"vectorwise/internal/bufmgr"
	"vectorwise/internal/catalog"
	"vectorwise/internal/compress"
	"vectorwise/internal/core"
	"vectorwise/internal/matengine"
	"vectorwise/internal/pdt"
	"vectorwise/internal/storage"
	"vectorwise/internal/tpch"
	"vectorwise/internal/vtypes"
	"vectorwise/internal/xcompile"
)

// benchSF is the benchmark scale factor (≈15K orders, ≈60K lineitems).
const benchSF = 0.01

var (
	benchOnce sync.Once
	benchCat  *catalog.Catalog
	benchErr  error
)

func benchCatalog(b *testing.B) *catalog.Catalog {
	benchOnce.Do(func() {
		benchCat, benchErr = tpch.Generate(benchSF, 8192)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchCat
}

func runSuiteQuery(b *testing.B, name string, engine tpch.Engine, parallel int) {
	cat := benchCatalog(b)
	var q tpch.Query
	for _, cand := range tpch.Suite() {
		if cand.Name == name {
			q = cand
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := tpch.RunQuery(cat, q, tpch.RunOptions{Engine: engine, Parallel: parallel}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- T1: TPC-H power run per engine (paper §I-C audited results) ---

func BenchmarkT1TPCHPowerVectorized(b *testing.B) {
	cat := benchCatalog(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := tpch.PowerRun(cat, benchSF, tpch.RunOptions{Engine: tpch.EngineVectorized, Parallel: runtime.GOMAXPROCS(0)})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(p.QphPower, "QphPower")
	}
}

func BenchmarkT1TPCHPowerTuple(b *testing.B) {
	cat := benchCatalog(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := tpch.PowerRun(cat, benchSF, tpch.RunOptions{Engine: tpch.EngineTuple})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(p.QphPower, "QphPower")
	}
}

func BenchmarkT1TPCHPowerMaterialized(b *testing.B) {
	cat := benchCatalog(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := tpch.PowerRun(cat, benchSF, tpch.RunOptions{Engine: tpch.EngineMaterialized})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(p.QphPower, "QphPower")
	}
}

// --- C1: vectorized vs tuple-at-a-time per query (">10×" claim) ---

func BenchmarkC1VectorizedQ1(b *testing.B) { runSuiteQuery(b, "Q1", tpch.EngineVectorized, 0) }
func BenchmarkC1TupleQ1(b *testing.B)      { runSuiteQuery(b, "Q1", tpch.EngineTuple, 0) }
func BenchmarkC1VectorizedQ6(b *testing.B) { runSuiteQuery(b, "Q6", tpch.EngineVectorized, 0) }
func BenchmarkC1TupleQ6(b *testing.B)      { runSuiteQuery(b, "Q6", tpch.EngineTuple, 0) }

// --- C2: vectorized vs full materialization (MonetDB claim) ---

func BenchmarkC2VectorizedQ1(b *testing.B) { runSuiteQuery(b, "Q1", tpch.EngineVectorized, 0) }
func BenchmarkC2MaterializedQ1(b *testing.B) {
	cat := benchCatalog(b)
	var q tpch.Query
	for _, cand := range tpch.Suite() {
		if cand.Name == "Q1" {
			q = cand
		}
	}
	matengine.ResetMatBytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := tpch.RunQuery(cat, q, tpch.RunOptions{Engine: tpch.EngineMaterialized}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(matengine.MatBytes())/float64(b.N), "interm-bytes/op")
}

// --- F1: vector-size sweep (tuple ↔ vector ↔ materialize U-curve) ---

func BenchmarkF1VectorSizeSweep(b *testing.B) {
	cat := benchCatalog(b)
	var q tpch.Query
	for _, cand := range tpch.Suite() {
		if cand.Name == "Q1" {
			q = cand
		}
	}
	for _, size := range []int{4, 16, 64, 256, 1024, 4096, 16384, 65536} {
		b.Run(fmt.Sprintf("vecsize=%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := tpch.RunQuery(cat, q, tpch.RunOptions{Engine: tpch.EngineVectorized, VecSize: size}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- T2: compression codecs (PFOR paper ref [2]) ---

func benchI64Data() []int64 {
	rng := rand.New(rand.NewSource(5))
	vals := make([]int64, 64*1024)
	for i := range vals {
		vals[i] = int64(rng.Intn(4096)) // small domain, PFOR-friendly
	}
	return vals
}

func BenchmarkT2CompressPFOR(b *testing.B) {
	vals := benchI64Data()
	b.SetBytes(int64(len(vals) * 8))
	for i := 0; i < b.N; i++ {
		if _, err := compress.CompressI64(vals, compress.CodecPFOR); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkT2DecompressPFOR(b *testing.B) {
	vals := benchI64Data()
	data, _ := compress.CompressI64(vals, compress.CodecPFOR)
	buf := make([]int64, len(vals))
	b.SetBytes(int64(len(vals) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := compress.DecompressI64(buf, data); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(vals)*8)/float64(len(data)), "ratio")
}

func BenchmarkT2DecompressPFORDelta(b *testing.B) {
	vals := make([]int64, 64*1024)
	for i := range vals {
		vals[i] = int64(i) * 3
	}
	data, _ := compress.CompressI64(vals, compress.CodecPFORDelta)
	buf := make([]int64, len(vals))
	b.SetBytes(int64(len(vals) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := compress.DecompressI64(buf, data); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(vals)*8)/float64(len(data)), "ratio")
}

func BenchmarkT2DecompressRLE(b *testing.B) {
	vals := make([]int64, 64*1024)
	for i := range vals {
		vals[i] = int64(i / 512)
	}
	data, _ := compress.CompressI64(vals, compress.CodecRLE)
	buf := make([]int64, len(vals))
	b.SetBytes(int64(len(vals) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := compress.DecompressI64(buf, data); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(vals)*8)/float64(len(data)), "ratio")
}

func BenchmarkT2DecompressDict(b *testing.B) {
	words := []string{"RAIL", "AIR", "SHIP", "TRUCK", "MAIL", "FOB", "REG AIR"}
	vals := make([]string, 64*1024)
	for i := range vals {
		vals[i] = words[i%len(words)]
	}
	data, _ := compress.CompressStr(vals, compress.CodecDict)
	buf := make([]string, len(vals))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := compress.DecompressStr(buf, data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkT2DecompressPlainI64(b *testing.B) {
	vals := benchI64Data()
	data, _ := compress.CompressI64(vals, compress.CodecPlainI64)
	buf := make([]int64, len(vals))
	b.SetBytes(int64(len(vals) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := compress.DecompressI64(buf, data); err != nil {
			b.Fatal(err)
		}
	}
}

// --- T3: PDT updates and merge overhead (paper ref [5]) ---

func pdtBenchTable(b *testing.B, rows int) *storage.Table {
	schema := vtypes.NewSchema(
		vtypes.Column{Name: "k", Kind: vtypes.KindI64},
		vtypes.Column{Name: "v", Kind: vtypes.KindF64},
	)
	bl := storage.NewBuilder("t", schema, 8192)
	for i := 0; i < rows; i++ {
		if err := bl.AppendRow(vtypes.Row{vtypes.I64Value(int64(i)), vtypes.F64Value(float64(i))}); err != nil {
			b.Fatal(err)
		}
	}
	t, err := bl.Finish()
	if err != nil {
		b.Fatal(err)
	}
	return t
}

func BenchmarkT3PDTUpdates(b *testing.B) {
	tbl := pdtBenchTable(b, 100_000)
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pdt.New(tbl.Schema(), tbl.Rows())
		for k := 0; k < 10_000; k++ {
			rid := rng.Int63n(p.VisibleRows())
			switch k % 3 {
			case 0:
				if err := p.Insert(rid, vtypes.Row{vtypes.I64Value(int64(k)), vtypes.F64Value(1)}); err != nil {
					b.Fatal(err)
				}
			case 1:
				if err := p.Delete(rid); err != nil {
					b.Fatal(err)
				}
			default:
				if err := p.Modify(rid, 1, vtypes.F64Value(2)); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.ReportMetric(float64(10_000*b.N)/b.Elapsed().Seconds(), "updates/s")
}

// scanThrough drains a value-column-only scan merged with p. The query
// needs only column v; the positional merge never touches the key
// column — the PDT advantage the paper describes.
func scanThrough(b *testing.B, tbl *storage.Table, p *pdt.PDT) {
	layers := []*pdt.PDT(nil)
	if p != nil {
		layers = append(layers, p)
	}
	sc := core.NewScan(tbl, []int{1}, core.ScanOpts{Layers: layers})
	n, err := core.Drain(sc)
	if err != nil || n == 0 {
		b.Fatalf("scan drained %d rows, err %v", n, err)
	}
}

func BenchmarkT3ScanClean(b *testing.B) {
	tbl := pdtBenchTable(b, 200_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scanThrough(b, tbl, nil)
	}
}

func BenchmarkT3ScanWithPDTMerge(b *testing.B) {
	tbl := pdtBenchTable(b, 200_000)
	p := pdt.New(tbl.Schema(), tbl.Rows())
	rng := rand.New(rand.NewSource(4))
	for k := 0; k < 2000; k++ { // 1% of rows touched
		if err := p.Modify(rng.Int63n(p.VisibleRows()), 1, vtypes.F64Value(9)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scanThrough(b, tbl, p)
	}
}

// BenchmarkT3ValueBasedMerge is the comparator the paper argues against:
// a value-based delta store must scan the *key* column as well (even
// though the query needs only v) and probe the delta map per tuple,
// instead of positionally aligning runs.
func BenchmarkT3ValueBasedMerge(b *testing.B) {
	tbl := pdtBenchTable(b, 200_000)
	rng := rand.New(rand.NewSource(4))
	updates := make(map[int64]float64, 2000)
	for k := 0; k < 2000; k++ {
		updates[rng.Int63n(tbl.Rows())] = 9
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc := storage.NewScanner(tbl, []int{0, 1}, nil, nil, 1024)
		out := make([]float64, 1024)
		var total int64
		for {
			vecs, _, n, err := sc.Next()
			if err != nil {
				b.Fatal(err)
			}
			if n == 0 {
				break
			}
			keys := vecs[0].I64
			vals := vecs[1].F64
			for r := 0; r < n; r++ {
				v := vals[r]
				if nv, ok := updates[keys[r]]; ok {
					v = nv
				}
				out[r] = v
				total++
			}
		}
		if total == 0 {
			b.Fatal("no rows")
		}
	}
}

// --- T4: cooperative scans vs normal scans (paper ref [4]) ---

func coopBenchRun(b *testing.B, policy bufmgr.ScanPolicy) {
	tbl := pdtBenchTable(b, 400_000)
	b.ResetTimer()
	var totalIO int64
	for i := 0; i < b.N; i++ {
		m := bufmgr.New(1<<20, nil) // cache ≈ 8 of ~49 groups (≪ table)
		h1 := m.StartScan(tbl, []int{0, 1}, policy)
		h2 := m.StartScan(tbl, []int{0, 1}, policy)
		// Stagger: h1 leads by a third of the table.
		for k := 0; k < tbl.Groups()/3; k++ {
			if _, _, err := h1.NextGroup(); err != nil {
				b.Fatal(err)
			}
		}
		d1, d2 := false, false
		for !d1 || !d2 {
			if !d1 {
				_, ok, err := h1.NextGroup()
				if err != nil {
					b.Fatal(err)
				}
				d1 = !ok
			}
			if !d2 {
				_, ok, err := h2.NextGroup()
				if err != nil {
					b.Fatal(err)
				}
				d2 = !ok
			}
		}
		h1.Close()
		h2.Close()
		totalIO += m.Stats().IOChunks
	}
	b.ReportMetric(float64(totalIO)/float64(b.N), "chunk-loads/op")
}

func BenchmarkT4NormalScans(b *testing.B)      { coopBenchRun(b, bufmgr.PolicyNormal) }
func BenchmarkT4CooperativeScans(b *testing.B) { coopBenchRun(b, bufmgr.PolicyCooperative) }

// --- T5: NULL decomposition vs per-row null checking (§I-B) ---

func nullBenchTable(b *testing.B) *storage.Table {
	schema := vtypes.NewSchema(
		vtypes.Column{Name: "k", Kind: vtypes.KindI64},
		vtypes.Column{Name: "v", Kind: vtypes.KindI64, Nullable: true},
	)
	bl := storage.NewBuilder("nulls", schema, 8192)
	for i := 0; i < 200_000; i++ {
		v := vtypes.I64Value(int64(i % 1000))
		if i%10 == 0 {
			v = vtypes.NullValue(vtypes.KindI64)
		}
		if err := bl.AppendRow(vtypes.Row{vtypes.I64Value(int64(i)), v}); err != nil {
			b.Fatal(err)
		}
	}
	t, err := bl.Finish()
	if err != nil {
		b.Fatal(err)
	}
	return t
}

// BenchmarkT5RewrittenNulls: the rewriter's decomposition — indicator
// kernel then value kernel, both branch-free vector loops.
func BenchmarkT5RewrittenNulls(b *testing.B) {
	tbl := nullBenchTable(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc := storage.NewScanner(tbl, []int{1}, nil, nil, 1024)
		var count int64
		sel := make([]int32, 1024)
		sel2 := make([]int32, 1024)
		for {
			vecs, _, n, err := sc.Next()
			if err != nil {
				b.Fatal(err)
			}
			if n == 0 {
				break
			}
			v := vecs[0]
			// sel_isnotnull then sel_gt, chained.
			k := 0
			if v.Nulls != nil {
				for r := 0; r < n; r++ {
					if !v.Nulls[r] {
						sel[k] = int32(r)
						k++
					}
				}
			} else {
				for r := 0; r < n; r++ {
					sel[r] = int32(r)
				}
				k = n
			}
			k2 := 0
			for _, r := range sel[:k] {
				if v.I64[r] > 500 {
					sel2[k2] = r
					k2++
				}
			}
			count += int64(k2)
		}
		if count == 0 {
			b.Fatal("no matches")
		}
	}
}

// BenchmarkT5NullAwareKernel: the design the rewrite avoids — one kernel
// that checks the indicator per row inside the comparison loop.
func BenchmarkT5NullAwareKernel(b *testing.B) {
	tbl := nullBenchTable(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc := storage.NewScanner(tbl, []int{1}, nil, nil, 1024)
		var count int64
		for {
			vecs, _, n, err := sc.Next()
			if err != nil {
				b.Fatal(err)
			}
			if n == 0 {
				break
			}
			v := vecs[0]
			for r := 0; r < n; r++ {
				var isNull bool
				if v.Nulls != nil {
					isNull = v.Nulls[r]
				}
				if !isNull && v.I64[r] > 500 {
					count++
				}
			}
		}
		if count == 0 {
			b.Fatal("no matches")
		}
	}
}

// --- T6: hot (cached) vs cold (throttled I/O) scans (§I-C RAM note) ---

func BenchmarkT6HotScan(b *testing.B) {
	tbl := pdtBenchTable(b, 200_000)
	m := bufmgr.New(0, nil) // everything stays cached
	// Warm the cache.
	sc := core.NewScan(tbl, []int{0, 1}, core.ScanOpts{Fetch: m})
	if _, err := core.Drain(sc); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc := core.NewScan(tbl, []int{0, 1}, core.ScanOpts{Fetch: m})
		if _, err := core.Drain(sc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkT6ColdScan(b *testing.B) {
	tbl := pdtBenchTable(b, 200_000)
	disk := &bufmgr.SimDisk{BytesPerSec: 64 << 20} // 64 MB/s disk
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := bufmgr.New(1, disk) // nothing stays cached
		sc := core.NewScan(tbl, []int{0, 1}, core.ScanOpts{Fetch: m})
		if _, err := core.Drain(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// --- F2: multi-core scaling through the parallel rewriter ---

func BenchmarkF2ParallelScaling(b *testing.B) {
	maxw := runtime.GOMAXPROCS(0)
	for w := 1; w <= maxw; w *= 2 {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			runSuiteQuery(b, "Q1", tpch.EngineVectorized, w)
		})
	}
}

// --- prepared statements vs ad-hoc planning (plan cache) ---

// BenchmarkPreparedVsAdHoc measures what the plan cache buys on the
// served-workload shape: a repeated parametrized point SELECT.
//
//	AdHoc         — cache disabled: lex → parse → plan → simplify →
//	                parallelize → compile → execute, every request.
//	Prepared      — cached template + parameter binding per request.
//	ParsePlanOnly — just the front half (what the cache amortizes away).
//
// The AdHoc run also reports plan_pct: the share of ad-hoc latency
// spent in parse+plan, i.e. the fraction the paper's amortization
// argument says must not be paid per query.
func BenchmarkPreparedVsAdHoc(b *testing.B) {
	// The workload shape the cache targets: a short parametrized
	// point/range query over small hot tables, where the SQL front end
	// (lex → parse → name resolution → plan → simplify → parallelize)
	// is a large share of request latency. The join + IN + BETWEEN give
	// the planner realistic work (pushdown, join keys, predicate
	// lowering) without making execution the bottleneck.
	const q = `SELECT d.region AS region, SUM(p.v) total FROM pts p
		JOIN dim d ON p.g = d.id
		WHERE p.k BETWEEN ? AND ? AND d.id IN ($3, $4)
		GROUP BY d.region ORDER BY region`
	const rows = 256
	newDB := func(b *testing.B) *DB {
		db := OpenMemory()
		if _, err := db.Exec(`CREATE TABLE pts (k BIGINT, g BIGINT, v DOUBLE)`); err != nil {
			b.Fatal(err)
		}
		if _, err := db.Exec(`CREATE TABLE dim (id BIGINT, region VARCHAR)`); err != nil {
			b.Fatal(err)
		}
		stmt := "INSERT INTO pts VALUES "
		for i := 0; i < rows; i++ {
			if i > 0 {
				stmt += ","
			}
			stmt += fmt.Sprintf("(%d, %d, %d.5)", i, i%8, i%100)
		}
		if _, err := db.Exec(stmt); err != nil {
			b.Fatal(err)
		}
		if _, err := db.Exec(`INSERT INTO dim VALUES (0,'n'), (1,'s'), (2,'e'), (3,'w'), (4,'ne'), (5,'nw'), (6,'se'), (7,'sw')`); err != nil {
			b.Fatal(err)
		}
		return db
	}
	args := func(i int) []any {
		lo := int64(i % 128)
		return []any{lo, lo + 64, int64(i % 8), int64((i + 3) % 8)}
	}

	b.Run("AdHoc", func(b *testing.B) {
		db := newDB(b)
		db.SetPlanCacheCapacity(0) // every request re-plans
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := db.QueryArgs(q, args(i)...); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		// Estimate the parse+plan share: Explain runs exactly the
		// front half (parse → plan → simplify → parallelize).
		const probes = 200
		start := time.Now()
		for i := 0; i < probes; i++ {
			if _, err := db.Explain(q); err != nil {
				b.Fatal(err)
			}
		}
		planPerOp := time.Since(start) / probes
		adhocPerOp := b.Elapsed() / time.Duration(b.N)
		if adhocPerOp > 0 {
			b.ReportMetric(100*float64(planPerOp)/float64(adhocPerOp), "plan_pct")
		}
	})

	b.Run("Prepared", func(b *testing.B) {
		db := newDB(b)
		stmt, err := db.Prepare(q)
		if err != nil {
			b.Fatal(err)
		}
		base := db.PlanCacheStats()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := stmt.Query(args(i)...); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if st := db.PlanCacheStats(); st.Misses != base.Misses {
			b.Fatalf("prepared path re-planned: %+v vs %+v", st, base)
		}
	})

	b.Run("ParsePlanOnly", func(b *testing.B) {
		db := newDB(b)
		db.SetPlanCacheCapacity(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := db.Explain(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- end-to-end SQL sanity bench over the facade ---

func BenchmarkSQLEndToEnd(b *testing.B) {
	db := OpenMemory()
	if _, err := db.Exec(`CREATE TABLE s (k BIGINT, v DOUBLE)`); err != nil {
		b.Fatal(err)
	}
	for chunk := 0; chunk < 10; chunk++ {
		stmt := "INSERT INTO s VALUES "
		for i := 0; i < 500; i++ {
			if i > 0 {
				stmt += ","
			}
			stmt += fmt.Sprintf("(%d, %d.5)", chunk*500+i, i%100)
		}
		if _, err := db.Exec(stmt); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(`SELECT k / 100 AS bucket, SUM(v) s, COUNT(*) n FROM s GROUP BY k / 100`); err != nil {
			b.Fatal(err)
		}
	}
	_ = xcompile.Options{}
}
