package catalog

import (
	"testing"

	"vectorwise/internal/pdt"
	"vectorwise/internal/storage"
	"vectorwise/internal/vtypes"
)

func buildTable(t *testing.T, name string, n int) *storage.Table {
	t.Helper()
	schema := vtypes.NewSchema(
		vtypes.Column{Name: "k", Kind: vtypes.KindI64},
		vtypes.Column{Name: "f", Kind: vtypes.KindF64},
		vtypes.Column{Name: "s", Kind: vtypes.KindStr},
		vtypes.Column{Name: "b", Kind: vtypes.KindBool},
	)
	b := storage.NewBuilder(name, schema, 256)
	words := []string{"x", "y", "z"}
	for i := 0; i < n; i++ {
		if err := b.AppendRow(vtypes.Row{
			vtypes.I64Value(int64(i)),
			vtypes.F64Value(float64(i) / 2),
			vtypes.StrValue(words[i%3]),
			vtypes.BoolValue(i%2 == 0),
		}); err != nil {
			t.Fatal(err)
		}
	}
	tbl, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestCatalogCRUD(t *testing.T) {
	c := New()
	tbl := buildTable(t, "a", 10)
	c.Put(tbl)
	c.Put(buildTable(t, "b", 5))

	if names := c.Names(); len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names: %v", names)
	}
	got, layers, err := c.Resolve("a")
	if err != nil || got != tbl || layers != nil {
		t.Fatal("resolve wrong")
	}
	if _, err := c.Get("missing"); err == nil {
		t.Fatal("missing table must error")
	}
	p := pdt.New(tbl.Schema(), tbl.Rows())
	if err := c.SetLayers("a", []*pdt.PDT{p}); err != nil {
		t.Fatal(err)
	}
	_, layers, _ = c.Resolve("a")
	if len(layers) != 1 {
		t.Fatal("layers not installed")
	}
	if err := c.SetLayers("missing", nil); err == nil {
		t.Fatal("SetLayers on missing table must error")
	}
}

func TestAnalyzeStats(t *testing.T) {
	tbl := buildTable(t, "t", 1000)
	st, err := Analyze(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rows != 1000 {
		t.Fatalf("rows %d", st.Rows)
	}
	k := st.Cols[0]
	if k.MinI64 != 0 || k.MaxI64 != 999 || k.NDistinct != 1000 {
		t.Fatalf("int stats: %+v", k)
	}
	if len(k.Hist) != histBuckets {
		t.Fatal("histogram missing")
	}
	f := st.Cols[1]
	if f.MinF64 != 0 || f.MaxF64 != 999.0/2 {
		t.Fatalf("float stats: %+v", f)
	}
	s := st.Cols[2]
	if s.NDistinct != 3 {
		t.Fatalf("string ndistinct: %d", s.NDistinct)
	}
	if st.Cols[3].NDistinct != 2 {
		t.Fatal("bool ndistinct")
	}
}

func TestSelectivityEstimates(t *testing.T) {
	tbl := buildTable(t, "t", 10000)
	st, err := Analyze(tbl)
	if err != nil {
		t.Fatal(err)
	}
	k := st.Cols[0] // uniform 0..9999
	if got := k.SelectivityLtI64(2500); got < 0.2 || got > 0.3 {
		t.Fatalf("P(k<2500) = %v, want ≈0.25", got)
	}
	if got := k.SelectivityLtI64(-5); got != 0 {
		t.Fatalf("below-min selectivity: %v", got)
	}
	if got := k.SelectivityLtI64(1 << 40); got != 1 {
		t.Fatalf("above-max selectivity: %v", got)
	}
	if eq := k.SelectivityEq(); eq < 0.00005 || eq > 0.001 {
		t.Fatalf("eq selectivity: %v", eq)
	}
	var empty ColStats
	if empty.SelectivityEq() != 0.1 || empty.SelectivityLtI64(3) != 0.33 {
		t.Fatal("defaults for missing stats")
	}
}

func TestAnalyzeAll(t *testing.T) {
	c := New()
	c.Put(buildTable(t, "a", 100))
	c.Put(buildTable(t, "b", 100))
	if err := c.AnalyzeAll(); err != nil {
		t.Fatal(err)
	}
	e, _ := c.Get("a")
	if e.Stats == nil || e.Stats.Rows != 100 {
		t.Fatal("stats not installed")
	}
}
