// Package catalog tracks the tables of a database instance: their
// storage, their PDT layers (committed master deltas), and the
// statistics the optimizer uses for cardinality estimation — standing in
// for the Ingres catalog and its histogram machinery that Vectorwise
// reuses (paper §I-B).
package catalog

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"vectorwise/internal/pdt"
	"vectorwise/internal/storage"
	"vectorwise/internal/vtypes"
)

// Entry is one cataloged table.
//
// Concurrency: the Catalog's lock guards the name → entry map and the
// Layers/Stats fields while a catalog method touches them. Entry
// pointers escape via Get, so mutating an Entry's fields directly is
// only safe while the caller holds the DB-level write lock (the
// vectorwise.DB reader/writer discipline); readers on the query path
// must go through Resolve, which snapshots Layers under the lock.
type Entry struct {
	Table *storage.Table
	// Layers are committed PDT layers, bottom first (nil when clean).
	Layers []*pdt.PDT
	// Stats are optimizer statistics (nil until analyzed).
	Stats *TableStats
}

// Catalog is a concurrency-safe name → table map.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Entry
	// epoch is the schema epoch: a monotonic counter bumped whenever
	// cached plans may have gone stale — DDL and table (re)registration
	// (Put, including the fresh stable image a checkpoint installs) and
	// statistics refresh (AnalyzeAll). Plan caches include the epoch in
	// their key, so a bump makes every older plan structurally
	// unreachable rather than relying on best-effort purging. Routine
	// DML (SetLayers) does not bump: plans reference tables by name and
	// re-resolve PDT layers at execution, so they stay valid.
	epoch atomic.Uint64
	// dataEpoch is the data epoch: a monotonic counter bumped whenever
	// committed data changes — DML commits, tuple-mover folds and
	// stable-image swaps, checkpoints, bulk loads and (re)registration.
	// Unlike the schema epoch it does not invalidate plans; it versions
	// the committed state itself. Epoch-snapshot cursors record the data
	// epoch they pinned, which is what "a reader sees exactly its epoch"
	// means operationally.
	dataEpoch atomic.Uint64
}

// ErrUnknownTable tags lookups of unregistered tables so callers can
// classify the failure with errors.Is (e.g. the HTTP layer maps it to
// 404 rather than 500).
var ErrUnknownTable = errors.New("unknown table")

// New creates an empty catalog.
func New() *Catalog { return &Catalog{tables: make(map[string]*Entry)} }

// Put registers or replaces a table and bumps the schema epoch.
func (c *Catalog) Put(t *storage.Table) {
	c.mu.Lock()
	c.tables[t.Meta.Name] = &Entry{Table: t}
	c.mu.Unlock()
	c.epoch.Add(1)
}

// ReplaceTable swaps the stable image of an already-registered table,
// keeping its statistics. Unlike Put it does not bump the schema epoch:
// a tuple-mover stable swap is a physical reorganization — same name,
// same schema — so cached plans stay valid and only the data epoch
// (bumped by the DB layer) moves. The caller refreshes Layers
// separately to match the new image.
func (c *Catalog) ReplaceTable(t *storage.Table) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.tables[t.Meta.Name]
	if !ok {
		return fmt.Errorf("catalog: %w %q", ErrUnknownTable, t.Meta.Name)
	}
	e.Table = t
	return nil
}

// Epoch returns the current schema epoch.
func (c *Catalog) Epoch() uint64 { return c.epoch.Load() }

// BumpEpoch advances the schema epoch, invalidating every plan cached
// under earlier epochs. Catalog mutators that affect plans call it
// internally; it is exported for layers that change planning inputs the
// catalog cannot see.
func (c *Catalog) BumpEpoch() { c.epoch.Add(1) }

// DataEpoch returns the current data epoch.
func (c *Catalog) DataEpoch() uint64 { return c.dataEpoch.Load() }

// BumpDataEpoch advances the data epoch and returns the new value. The
// DB layer calls it after publishing any committed-state change.
func (c *Catalog) BumpDataEpoch() uint64 { return c.dataEpoch.Add(1) }

// Get returns the entry for name.
func (c *Catalog) Get(name string) (*Entry, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.tables[name]
	if !ok {
		return nil, fmt.Errorf("catalog: %w %q", ErrUnknownTable, name)
	}
	return e, nil
}

// SetLayers installs the committed PDT layers for a table.
func (c *Catalog) SetLayers(name string, layers []*pdt.PDT) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.tables[name]
	if !ok {
		return fmt.Errorf("catalog: %w %q", ErrUnknownTable, name)
	}
	e.Layers = layers
	return nil
}

// SetStats installs freshly computed optimizer statistics for a table
// (the bulk loader refreshes them at the end of a load; callers that
// also changed planning inputs are expected to have bumped the epoch,
// as Put does).
func (c *Catalog) SetStats(name string, st *TableStats) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.tables[name]
	if !ok {
		return fmt.Errorf("catalog: %w %q", ErrUnknownTable, name)
	}
	e.Stats = st
	return nil
}

// Names lists cataloged tables in sorted order.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []string
	for n := range c.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Resolve returns the storage and PDT layers of a table (the engines'
// entry point). The layer slice is copied under the read lock so a
// concurrent SetLayers cannot tear the read; the layers themselves are
// immutable once published.
func (c *Catalog) Resolve(name string) (*storage.Table, []*pdt.PDT, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.tables[name]
	if !ok {
		return nil, nil, fmt.Errorf("catalog: %w %q", ErrUnknownTable, name)
	}
	var layers []*pdt.PDT
	if len(e.Layers) > 0 {
		layers = append(layers, e.Layers...)
	}
	return e.Table, layers, nil
}

// histBuckets is the equi-width histogram resolution.
const histBuckets = 32

// ColStats summarizes one column for the optimizer.
type ColStats struct {
	Kind      vtypes.Kind
	MinI64    int64
	MaxI64    int64
	MinF64    float64
	MaxF64    float64
	NDistinct int64
	// Hist is an equi-width histogram over [min,max] for numeric and
	// date columns (row counts per bucket).
	Hist []int64
}

// TableStats summarizes a table.
type TableStats struct {
	Rows int64
	Cols []ColStats
}

// Analyze builds statistics by scanning the stable table image. PDT
// deltas are ignored (statistics are approximate by nature; the product
// refreshes them on checkpoint).
func Analyze(t *storage.Table) (*TableStats, error) {
	schema := t.Schema()
	ts := &TableStats{Rows: t.Rows(), Cols: make([]ColStats, schema.Len())}
	for c := 0; c < schema.Len(); c++ {
		col := schema.Col(c)
		cs := ColStats{Kind: col.Kind}
		switch col.Kind.StorageClass() {
		case vtypes.ClassI64:
			v, err := t.ReadAllColumn(c)
			if err != nil {
				return nil, err
			}
			cs.analyzeI64(v.I64)
		case vtypes.ClassF64:
			v, err := t.ReadAllColumn(c)
			if err != nil {
				return nil, err
			}
			cs.analyzeF64(v.F64)
		case vtypes.ClassStr:
			v, err := t.ReadAllColumn(c)
			if err != nil {
				return nil, err
			}
			distinct := make(map[string]struct{})
			for _, s := range v.Str {
				distinct[s] = struct{}{}
				if len(distinct) > 10000 {
					break
				}
			}
			cs.NDistinct = int64(len(distinct))
		case vtypes.ClassBool:
			cs.NDistinct = 2
		}
		ts.Cols[c] = cs
	}
	return ts, nil
}

func (cs *ColStats) analyzeI64(vals []int64) {
	if len(vals) == 0 {
		return
	}
	mn, mx := vals[0], vals[0]
	for _, v := range vals {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	cs.MinI64, cs.MaxI64 = mn, mx
	cs.Hist = make([]int64, histBuckets)
	span := float64(mx-mn) + 1
	for _, v := range vals {
		b := int(float64(v-mn) / span * histBuckets)
		if b >= histBuckets {
			b = histBuckets - 1
		}
		cs.Hist[b]++
	}
	distinct := make(map[int64]struct{})
	for _, v := range vals {
		distinct[v] = struct{}{}
		if len(distinct) > 10000 {
			cs.NDistinct = int64(len(distinct))
			return
		}
	}
	cs.NDistinct = int64(len(distinct))
}

func (cs *ColStats) analyzeF64(vals []float64) {
	if len(vals) == 0 {
		return
	}
	mn, mx := vals[0], vals[0]
	for _, v := range vals {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	cs.MinF64, cs.MaxF64 = mn, mx
	cs.Hist = make([]int64, histBuckets)
	span := mx - mn
	if span == 0 {
		span = 1
	}
	for _, v := range vals {
		b := int((v - mn) / span * histBuckets)
		if b >= histBuckets {
			b = histBuckets - 1
		}
		cs.Hist[b]++
	}
	cs.NDistinct = int64(len(vals)) // floats: assume mostly distinct
}

// SelectivityLtI64 estimates P(col < x) from the histogram.
func (cs *ColStats) SelectivityLtI64(x int64) float64 {
	if cs.Hist == nil || cs.MaxI64 <= cs.MinI64 {
		return 0.33
	}
	if x <= cs.MinI64 {
		return 0
	}
	if x > cs.MaxI64 {
		return 1
	}
	span := float64(cs.MaxI64-cs.MinI64) + 1
	pos := float64(x-cs.MinI64) / span * histBuckets
	full := int(pos)
	var rows, total int64
	for i, h := range cs.Hist {
		total += h
		if i < full {
			rows += h
		}
	}
	if full < len(cs.Hist) {
		rows += int64(float64(cs.Hist[full]) * (pos - float64(full)))
	}
	if total == 0 {
		return 0.33
	}
	return float64(rows) / float64(total)
}

// SelectivityEq estimates P(col = x) as 1/NDistinct.
func (cs *ColStats) SelectivityEq() float64 {
	if cs.NDistinct <= 0 {
		return 0.1
	}
	return 1 / float64(cs.NDistinct)
}

// AnalyzeAll computes statistics for every cataloged table. Fresh
// statistics change what the planner would produce, so it bumps the
// schema epoch — deferred, so the bump also covers a partial refresh
// when a later table errors mid-loop (some tables' stats did change).
func (c *Catalog) AnalyzeAll() error {
	defer c.epoch.Add(1)
	for _, name := range c.Names() {
		e, err := c.Get(name)
		if err != nil {
			return err
		}
		st, err := Analyze(e.Table)
		if err != nil {
			return err
		}
		c.mu.Lock()
		e.Stats = st
		c.mu.Unlock()
	}
	return nil
}
