package txn

import "os"

func osOpenAppend(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
}
