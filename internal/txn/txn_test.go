package txn

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"vectorwise/internal/pdt"
	"vectorwise/internal/storage"
	"vectorwise/internal/vtypes"
	"vectorwise/internal/wal"
)

func buildTable(t *testing.T, name string, n int) *storage.Table {
	t.Helper()
	schema := vtypes.NewSchema(
		vtypes.Column{Name: "id", Kind: vtypes.KindI64},
		vtypes.Column{Name: "val", Kind: vtypes.KindStr},
	)
	b := storage.NewBuilder(name, schema, 64)
	for i := 0; i < n; i++ {
		if err := b.AppendRow(vtypes.Row{vtypes.I64Value(int64(i)), vtypes.StrValue(fmt.Sprintf("v%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	tbl, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func scanAll(t *testing.T, tx *Txn, table string) []vtypes.Row {
	t.Helper()
	src, schema, err := tx.Scan(table, 16)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := pdt.Materialize(src, schema)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestReadYourOwnWrites(t *testing.T) {
	m := NewManager(nil)
	m.Register(buildTable(t, "t", 5))
	tx := m.Begin()
	if err := tx.Insert("t", vtypes.Row{vtypes.I64Value(100), vtypes.StrValue("new")}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Update("t", 0, 1, vtypes.StrValue("patched")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Delete("t", 2); err != nil {
		t.Fatal(err)
	}
	rows := scanAll(t, tx, "t")
	if len(rows) != 5 { // 5 - 1 deleted + 1 inserted
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0][1].Str != "patched" {
		t.Fatal("own update not visible")
	}
	if rows[4][0].I64 != 100 {
		t.Fatal("own insert not visible")
	}
	n, err := tx.Rows("t")
	if err != nil || n != 5 {
		t.Fatalf("Rows = %d", n)
	}
	r, err := tx.RowAt("t", 0)
	if err != nil || r[1].Str != "patched" {
		t.Fatal("RowAt must see own writes")
	}
}

func TestSnapshotIsolation(t *testing.T) {
	m := NewManager(nil)
	m.Register(buildTable(t, "t", 5))

	reader := m.Begin()
	_ = scanAll(t, reader, "t") // pin snapshot

	writer := m.Begin()
	if err := writer.Update("t", 0, 1, vtypes.StrValue("committed")); err != nil {
		t.Fatal(err)
	}
	if err := writer.Commit(); err != nil {
		t.Fatal(err)
	}

	// Reader still sees the old image.
	rows := scanAll(t, reader, "t")
	if rows[0][1].Str != "v0" {
		t.Fatal("snapshot isolation violated")
	}
	// A fresh transaction sees the commit.
	fresh := m.Begin()
	rows = scanAll(t, fresh, "t")
	if rows[0][1].Str != "committed" {
		t.Fatal("committed write not visible to new txn")
	}
}

func TestWriteWriteConflictAborts(t *testing.T) {
	m := NewManager(nil)
	m.Register(buildTable(t, "t", 10))

	a := m.Begin()
	b := m.Begin()
	if err := a.Update("t", 3, 1, vtypes.StrValue("a")); err != nil {
		t.Fatal(err)
	}
	if err := b.Update("t", 3, 1, vtypes.StrValue("b")); err != nil {
		t.Fatal(err)
	}
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(); !errors.Is(err, ErrConflict) {
		t.Fatalf("expected conflict, got %v", err)
	}
	// First committer wins.
	fresh := m.Begin()
	rows := scanAll(t, fresh, "t")
	if rows[3][1].Str != "a" {
		t.Fatal("first committer's write lost")
	}
}

func TestNonConflictingConcurrentCommits(t *testing.T) {
	m := NewManager(nil)
	m.Register(buildTable(t, "t", 10))

	a := m.Begin()
	b := m.Begin()
	if err := a.Update("t", 1, 1, vtypes.StrValue("a")); err != nil {
		t.Fatal(err)
	}
	if err := b.Update("t", 8, 1, vtypes.StrValue("b")); err != nil {
		t.Fatal(err)
	}
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(); err != nil {
		t.Fatalf("non-overlapping writes must both commit: %v", err)
	}
	rows := scanAll(t, m.Begin(), "t")
	if rows[1][1].Str != "a" || rows[8][1].Str != "b" {
		t.Fatal("merged commits wrong")
	}
}

func TestRebaseAcrossInsertShift(t *testing.T) {
	// Txn B updates row 8 while txn A inserts at position 0 and commits
	// first: B's RID 8 must rebase to the shifted position.
	m := NewManager(nil)
	m.Register(buildTable(t, "t", 10))

	a := m.Begin()
	b := m.Begin()
	if err := a.InsertAt("t", 0, vtypes.Row{vtypes.I64Value(999), vtypes.StrValue("front")}); err != nil {
		t.Fatal(err)
	}
	if err := b.Update("t", 8, 1, vtypes.StrValue("updated")); err != nil {
		t.Fatal(err)
	}
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(); err != nil {
		t.Fatalf("insert at 0 and update at 8 must not conflict: %v", err)
	}
	rows := scanAll(t, m.Begin(), "t")
	if rows[0][0].I64 != 999 {
		t.Fatal("front insert lost")
	}
	// Original row 8 is now at position 9.
	if rows[9][1].Str != "updated" || rows[9][0].I64 != 8 {
		t.Fatalf("rebase failed: row 9 = %v", rows[9])
	}
}

func TestAbortDiscards(t *testing.T) {
	m := NewManager(nil)
	m.Register(buildTable(t, "t", 3))
	tx := m.Begin()
	if err := tx.Update("t", 0, 1, vtypes.StrValue("x")); err != nil {
		t.Fatal(err)
	}
	tx.Abort()
	if err := tx.Commit(); !errors.Is(err, ErrClosed) {
		t.Fatal("commit after abort must fail")
	}
	rows := scanAll(t, m.Begin(), "t")
	if rows[0][1].Str != "v0" {
		t.Fatal("aborted write leaked")
	}
}

func TestClosedTxnRejectsOps(t *testing.T) {
	m := NewManager(nil)
	m.Register(buildTable(t, "t", 3))
	tx := m.Begin()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert("t", vtypes.Row{vtypes.I64Value(0), vtypes.StrValue("")}); !errors.Is(err, ErrClosed) {
		t.Fatal("insert on closed txn must fail")
	}
	if err := tx.Delete("t", 0); !errors.Is(err, ErrClosed) {
		t.Fatal("delete on closed txn must fail")
	}
	if err := tx.Update("t", 0, 0, vtypes.I64Value(1)); !errors.Is(err, ErrClosed) {
		t.Fatal("update on closed txn must fail")
	}
	if _, err := tx.RowAt("t", 0); !errors.Is(err, ErrClosed) {
		t.Fatal("read on closed txn must fail")
	}
	if _, _, err := tx.Scan("t", 8); !errors.Is(err, ErrClosed) {
		t.Fatal("scan on closed txn must fail")
	}
	if _, err := tx.Rows("t"); !errors.Is(err, ErrClosed) {
		t.Fatal("rows on closed txn must fail")
	}
}

func TestUnknownTable(t *testing.T) {
	m := NewManager(nil)
	tx := m.Begin()
	if err := tx.Insert("nope", vtypes.Row{}); err == nil {
		t.Fatal("unknown table must error")
	}
	if _, _, err := m.MasterPDT("nope"); err == nil {
		t.Fatal("unknown table must error")
	}
	if err := m.Checkpoint("nope"); err == nil {
		t.Fatal("unknown table must error")
	}
}

func TestWALRecovery(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "vw.wal")

	// Session 1: commit two transactions, leave one aborted.
	log1, recs, err := wal.Open(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatal("fresh WAL must be empty")
	}
	tbl := buildTable(t, "t", 10)
	m1 := NewManager(log1)
	m1.Register(tbl)
	tx := m1.Begin()
	_ = tx.Update("t", 0, 1, vtypes.StrValue("first"))
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx2 := m1.Begin()
	_ = tx2.Insert("t", vtypes.Row{vtypes.I64Value(777), vtypes.StrValue("ins")})
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	tx3 := m1.Begin()
	_ = tx3.Update("t", 5, 1, vtypes.StrValue("never"))
	tx3.Abort()
	log1.Close()

	// Session 2: recover from the WAL over the original stable table.
	log2, recs2, err := wal.Open(walPath)
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	m2 := NewManager(log2)
	m2.Register(tbl)
	if err := m2.Recover(recs2); err != nil {
		t.Fatal(err)
	}
	rows := scanAll(t, m2.Begin(), "t")
	if len(rows) != 11 {
		t.Fatalf("recovered %d rows, want 11", len(rows))
	}
	if rows[0][1].Str != "first" {
		t.Fatal("recovered update lost")
	}
	if rows[10][0].I64 != 777 {
		t.Fatal("recovered insert lost")
	}
	for _, r := range rows {
		if r[1].Str == "never" {
			t.Fatal("aborted txn leaked through recovery")
		}
	}
}

func TestWALTornTailIgnored(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "vw.wal")
	log1, _, err := wal.Open(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := log1.Append(1, wal.KindData, "t", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if _, err := log1.Append(1, wal.KindCommit, "", nil); err != nil {
		t.Fatal(err)
	}
	log1.Close()

	// Corrupt the tail by appending garbage.
	f, err := osOpenAppend(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	_, recs, err := wal.Open(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("torn tail must be dropped, got %d records", len(recs))
	}
	data := wal.CommittedTxns(recs)
	if len(data) != 1 || string(data[0].Data) != "payload" {
		t.Fatal("committed record lost")
	}
}

func TestCheckpointFlattens(t *testing.T) {
	m := NewManager(nil)
	m.Register(buildTable(t, "t", 10))
	tx := m.Begin()
	_ = tx.Delete("t", 0)
	_ = tx.Insert("t", vtypes.Row{vtypes.I64Value(42), vtypes.StrValue("new")})
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := m.Checkpoint("t"); err != nil {
		t.Fatal(err)
	}
	master, stable, err := m.MasterPDT("t")
	if err != nil {
		t.Fatal(err)
	}
	if !master.Empty() {
		t.Fatal("checkpoint must reset master PDT")
	}
	if stable.Rows() != 10 {
		t.Fatalf("checkpointed stable has %d rows", stable.Rows())
	}
	rows := scanAll(t, m.Begin(), "t")
	if rows[0][0].I64 != 1 || rows[9][0].I64 != 42 {
		t.Fatal("checkpointed image wrong")
	}
	// Idempotent when master is empty.
	if err := m.Checkpoint("t"); err != nil {
		t.Fatal(err)
	}
}

func TestManyTransactionsSequential(t *testing.T) {
	m := NewManager(nil)
	m.Register(buildTable(t, "t", 100))
	for i := 0; i < 60; i++ {
		tx := m.Begin()
		switch i % 3 {
		case 0:
			if err := tx.Insert("t", vtypes.Row{vtypes.I64Value(int64(1000 + i)), vtypes.StrValue("x")}); err != nil {
				t.Fatal(err)
			}
		case 1:
			if err := tx.Update("t", int64(i), 1, vtypes.StrValue("upd")); err != nil {
				t.Fatal(err)
			}
		case 2:
			if err := tx.Delete("t", int64(i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("txn %d: %v", i, err)
		}
	}
	rows := scanAll(t, m.Begin(), "t")
	want := 100 + 20 - 20
	if len(rows) != want {
		t.Fatalf("got %d rows, want %d", len(rows), want)
	}
}
