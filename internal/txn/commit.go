package txn

import (
	"fmt"

	"vectorwise/internal/pdt"
	"vectorwise/internal/storage"
	"vectorwise/internal/vector"
	"vectorwise/internal/vtypes"
	"vectorwise/internal/wal"
)

// touchedStable translates a small PDT's write positions (RIDs over the
// snapshot master image) into stable SIDs — the coordinate system shared
// by all transactions, in which conflicts are defined.
func touchedStable(small *pdt.PDT, master *pdt.PDT) (map[int64]struct{}, error) {
	out := make(map[int64]struct{})
	for _, e := range small.Entries() {
		var rid int64 = e.SID
		switch e.Type {
		case pdt.Ins:
			sid, _, err := master.InsertionPoint(rid)
			if err != nil {
				return nil, err
			}
			out[sid] = struct{}{}
		default:
			sid, _, _, err := master.ResolveRID(rid)
			if err != nil {
				return nil, err
			}
			out[sid] = struct{}{}
		}
	}
	return out, nil
}

// rebase re-expresses the small PDT in the coordinate system of the
// current master image. Validation has already guaranteed that no
// intervening commit touched the same stable positions, so each write
// target still exists; only its RID may have shifted. Entries replay in
// reverse sequence order for the same reason Propagate does: applying a
// change never disturbs positions before it.
func rebase(small *pdt.PDT, snapMaster, curMaster *pdt.PDT) (*pdt.PDT, error) {
	out := pdt.New(small.Schema(), curMaster.VisibleRows())
	ents := small.Entries()
	for i := len(ents) - 1; i >= 0; i-- {
		e := ents[i]
		switch e.Type {
		case pdt.Ins:
			sid, k, err := snapMaster.InsertionPoint(e.SID)
			if err != nil {
				return nil, err
			}
			rid := curMaster.RIDOfIns(sid, k)
			if err := out.Insert(rid, e.Row); err != nil {
				return nil, err
			}
		case pdt.Del, pdt.Mod:
			sid, k, isIns, err := snapMaster.ResolveRID(e.SID)
			if err != nil {
				return nil, err
			}
			var rid int64
			if isIns {
				rid = curMaster.RIDOfIns(sid, k)
			} else {
				rid = curMaster.RIDOfStable(sid)
			}
			if e.Type == pdt.Del {
				if err := out.Delete(rid); err != nil {
					return nil, err
				}
			} else {
				for _, mc := range e.Mods {
					if err := out.Modify(rid, mc.Col, mc.Val); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	return out, nil
}

// Commit validates, logs and publishes the transaction's writes.
// On conflict it returns ErrConflict and the transaction is aborted.
func (t *Txn) Commit() error {
	if t.done {
		return ErrClosed
	}
	t.done = true
	if len(t.writes) == 0 {
		return nil
	}
	m := t.m
	m.mu.Lock()
	defer m.mu.Unlock()

	// Phase 1: validate every written table.
	type pending struct {
		ts      *tableState
		rebased *pdt.PDT
		touched map[int64]struct{}
	}
	var plan []pending
	for name, small := range t.writes {
		if small.Empty() {
			continue
		}
		s := t.snaps[name]
		ts := m.tables[name]
		touched, err := touchedStable(small, s.master)
		if err != nil {
			return fmt.Errorf("txn: commit validation: %w", err)
		}
		for _, ci := range ts.commits {
			if ci.version <= s.version {
				continue
			}
			for sid := range touched {
				if _, clash := ci.touched[sid]; clash {
					return ErrConflict
				}
			}
		}
		rb, err := rebase(small, s.master, ts.master)
		if err != nil {
			return fmt.Errorf("txn: rebase: %w", err)
		}
		plan = append(plan, pending{ts: ts, rebased: rb, touched: touched})
	}
	if len(plan) == 0 {
		return nil
	}

	// Phase 2: WAL (data records + commit marker, then sync).
	if m.log != nil {
		for i, p := range plan {
			name := tableName(m, p.ts)
			if _, err := m.log.Append(t.id, wal.KindData, name, pdt.Encode(p.rebased)); err != nil {
				return fmt.Errorf("txn: wal append: %w", err)
			}
			_ = i
		}
		if _, err := m.log.Append(t.id, wal.KindCommit, "", nil); err != nil {
			return fmt.Errorf("txn: wal commit marker: %w", err)
		}
		if err := m.log.Sync(); err != nil {
			return fmt.Errorf("txn: wal sync: %w", err)
		}
	}

	// Phase 3: publish new master versions.
	for _, p := range plan {
		combined, err := pdt.Propagate(p.ts.master, p.rebased)
		if err != nil {
			return fmt.Errorf("txn: propagate: %w", err)
		}
		p.ts.master = combined
		p.ts.version++
		p.ts.commits = append(p.ts.commits, commitInfo{version: p.ts.version, touched: p.touched})
	}
	return nil
}

// MergeIntoBuilder streams a table's visible rows — stable image merged
// with the given PDT — into b. Checkpoints and the bulk loader share it
// so there is exactly one definition of the rebuild merge.
func MergeIntoBuilder(b *storage.Builder, stable *storage.Table, master *pdt.PDT) error {
	schema := stable.Schema()
	cols := make([]int, schema.Len())
	for i := range cols {
		cols[i] = i
	}
	merged := pdt.NewMergeScan(&scanSource{sc: storage.NewScanner(stable, cols, nil, nil, 0)}, master, 0)
	for {
		vecs, n, err := merged.Next()
		if err != nil {
			return err
		}
		if n == 0 {
			return nil
		}
		for i := 0; i < n; i++ {
			if err := b.AppendRow(rowFromVecs(vecs, i)); err != nil {
				return err
			}
		}
	}
}

// rowFromVecs boxes row i of a set of aligned vectors.
func rowFromVecs(vecs []*vector.Vector, i int) vtypes.Row {
	row := make(vtypes.Row, len(vecs))
	for c, v := range vecs {
		row[c] = v.Get(i)
	}
	return row
}

// tableName finds the registered name of a table state.
func tableName(m *Manager, ts *tableState) string {
	for n, s := range m.tables {
		if s == ts {
			return n
		}
	}
	return ""
}

// Abort discards the transaction's writes.
func (t *Txn) Abort() {
	t.done = true
	t.writes = nil
	t.snaps = nil
}

// MasterPDT returns the current committed master PDT of a table (the
// engine's scan path merges against it).
func (m *Manager) MasterPDT(table string) (*pdt.PDT, *storage.Table, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ts := m.tables[table]
	if ts == nil {
		return nil, nil, fmt.Errorf("txn: unknown table %q", table)
	}
	return ts.master, ts.stable, nil
}

// Checkpoint rewrites the table's stable image with the master PDT
// applied, installs an empty master, prunes the commit log, and (when a
// WAL is attached) resets it. Callers must ensure no transaction is
// in flight across a checkpoint (vectorwise.DB.Checkpoint quiesces by
// holding the DB-level write lock for the duration).
func (m *Manager) Checkpoint(table string) error {
	m.mu.Lock()
	ts := m.tables[table]
	if ts == nil {
		m.mu.Unlock()
		return fmt.Errorf("txn: unknown table %q", table)
	}
	master, stable := ts.master, ts.stable
	m.mu.Unlock()

	if master.Empty() {
		return nil
	}
	// Rebuild the stable image through a merge scan.
	schema := stable.Schema()
	nb := storage.NewBuilder(stable.Meta.Name, schema, 0)
	if err := MergeIntoBuilder(nb, stable, master); err != nil {
		return err
	}
	newStable, err := nb.Finish()
	if err != nil {
		return err
	}
	m.mu.Lock()
	ts.stable = newStable
	ts.master = pdt.New(schema, newStable.Rows())
	ts.version++
	ts.commits = nil
	log := m.log
	m.mu.Unlock()
	if log != nil {
		return log.Reset()
	}
	return nil
}
