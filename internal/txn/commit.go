package txn

import (
	"fmt"

	"vectorwise/internal/pdt"
	"vectorwise/internal/storage"
	"vectorwise/internal/vector"
	"vectorwise/internal/vtypes"
	"vectorwise/internal/wal"
)

// touchedStable translates a small PDT's write positions (RIDs over the
// snapshot's top image) down the layer stack into stable SIDs — the
// coordinate system shared by all transactions, in which conflicts are
// defined.
func touchedStable(small *pdt.PDT, s *snapshot) (map[int64]struct{}, error) {
	out := make(map[int64]struct{})
	for _, e := range small.Entries() {
		sid, err := anchorStable(s, e.SID)
		if err != nil {
			return nil, err
		}
		out[sid] = struct{}{}
	}
	return out, nil
}

// rebase re-expresses the small PDT over the table's current top image
// by remapping each write position up through the tail layers appended
// after the snapshot. Validation has already guaranteed that none of
// those layers touched the same stable anchors, so each target still
// exists and the per-layer maps are unambiguous: an insertion point
// maps with StartRID (land before any survivor at that point), a
// Del/Mod target with RIDOfStable (follow the row itself). Entries
// replay in reverse sequence order for the same reason Propagate does:
// applying a change never disturbs positions before it.
func rebase(small *pdt.PDT, newer []*pdt.PDT, topRows int64) (*pdt.PDT, error) {
	out := pdt.New(small.Schema(), topRows)
	ents := small.Entries()
	for i := len(ents) - 1; i >= 0; i-- {
		e := ents[i]
		rid := e.SID
		switch e.Type {
		case pdt.Ins:
			for _, layer := range newer {
				rid = layer.StartRID(rid)
			}
			if err := out.Insert(rid, e.Row); err != nil {
				return nil, err
			}
		case pdt.Del, pdt.Mod:
			for _, layer := range newer {
				rid = layer.RIDOfStable(rid)
			}
			if e.Type == pdt.Del {
				if err := out.Delete(rid); err != nil {
					return nil, err
				}
			} else {
				for _, mc := range e.Mods {
					if err := out.Modify(rid, mc.Col, mc.Val); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	return out, nil
}

// Commit validates, logs and publishes the transaction's writes as new
// tail layers. On conflict it returns ErrConflict; if any written
// table's layer stack was reorganized since the snapshot it returns
// ErrStaleSnapshot. Either way the transaction is aborted.
func (t *Txn) Commit() error {
	if t.done {
		return ErrClosed
	}
	t.done = true
	if len(t.writes) == 0 {
		return nil
	}
	m := t.m
	m.mu.Lock()
	defer m.mu.Unlock()

	// Phase 1: validate every written table.
	type pending struct {
		name    string
		ts      *tableState
		rebased *pdt.PDT
		touched map[int64]struct{}
		lsn     uint64
	}
	var plan []pending
	for name, small := range t.writes {
		if small.Empty() {
			continue
		}
		s := t.snaps[name]
		ts := m.tables[name]
		if ts == nil {
			return fmt.Errorf("txn: unknown table %q", name)
		}
		if ts.base != s.base {
			return ErrStaleSnapshot
		}
		touched, err := touchedStable(small, s)
		if err != nil {
			return fmt.Errorf("txn: commit validation: %w", err)
		}
		for _, ci := range ts.commits {
			if ci.version <= s.version {
				continue
			}
			for sid := range touched {
				if _, clash := ci.touched[sid]; clash {
					return ErrConflict
				}
			}
		}
		rb := small
		if newer := ts.tail[len(s.tail):]; len(newer) > 0 {
			if rb, err = rebase(small, newer, ts.topRows()); err != nil {
				return fmt.Errorf("txn: rebase: %w", err)
			}
		}
		plan = append(plan, pending{name: name, ts: ts, rebased: rb, touched: touched})
	}
	if len(plan) == 0 {
		return nil
	}

	// Phase 2: WAL (data records + commit marker, then sync).
	if m.log != nil {
		for i := range plan {
			lsn, err := m.log.Append(t.id, wal.KindData, plan[i].name, pdt.Encode(plan[i].rebased))
			if err != nil {
				return fmt.Errorf("txn: wal append: %w", err)
			}
			plan[i].lsn = lsn
		}
		if _, err := m.log.Append(t.id, wal.KindCommit, "", nil); err != nil {
			return fmt.Errorf("txn: wal commit marker: %w", err)
		}
		if err := m.log.Sync(); err != nil {
			return fmt.Errorf("txn: wal sync: %w", err)
		}
	}

	// Phase 3: publish each rebased PDT as a new tail layer. The slices
	// are copied so snapshots pinned by readers keep their exact stack.
	for _, p := range plan {
		ts := p.ts
		ts.tail = append(append([]*pdt.PDT(nil), ts.tail...), p.rebased)
		ts.tailLSN = append(append([]uint64(nil), ts.tailLSN...), p.lsn)
		ts.version++
		ts.commits = append(ts.commits, commitInfo{version: ts.version, touched: p.touched})
		if len(ts.tail) > maxTailLayers {
			if err := foldTailsLocked(ts); err != nil {
				return fmt.Errorf("txn: inline fold: %w", err)
			}
		}
	}
	return nil
}

// foldTailsLocked folds every tail layer into the big PDT in place (the
// inline backstop when the stack outgrows maxTailLayers). Callers hold
// Manager.mu. Published layers are not mutated: Propagate builds a new
// PDT, and the stack is replaced wholesale.
func foldTailsLocked(ts *tableState) error {
	combined := ts.big
	for _, layer := range ts.tail {
		var err error
		if combined, err = pdt.Propagate(combined, layer); err != nil {
			return err
		}
	}
	ts.big = combined
	for _, lsn := range ts.tailLSN {
		if lsn > ts.bigLSN {
			ts.bigLSN = lsn
		}
	}
	ts.tail, ts.tailLSN = nil, nil
	ts.base++
	ts.version++
	ts.commits = nil
	return nil
}

// MergeIntoBuilder streams a table's visible rows — stable image merged
// with the given PDT — into b. Checkpoints and the bulk loader share it
// so there is exactly one definition of the rebuild merge.
func MergeIntoBuilder(b *storage.Builder, stable *storage.Table, master *pdt.PDT) error {
	schema := stable.Schema()
	cols := make([]int, schema.Len())
	for i := range cols {
		cols[i] = i
	}
	merged := pdt.NewMergeScan(&scanSource{sc: storage.NewScanner(stable, cols, nil, nil, 0)}, master, 0)
	for {
		vecs, n, err := merged.Next()
		if err != nil {
			return err
		}
		if n == 0 {
			return nil
		}
		for i := 0; i < n; i++ {
			if err := b.AppendRow(rowFromVecs(vecs, i)); err != nil {
				return err
			}
		}
	}
}

// rowFromVecs boxes row i of a set of aligned vectors.
func rowFromVecs(vecs []*vector.Vector, i int) vtypes.Row {
	row := make(vtypes.Row, len(vecs))
	for c, v := range vecs {
		row[c] = v.Get(i)
	}
	return row
}

// Abort discards the transaction's writes.
func (t *Txn) Abort() {
	t.done = true
	t.writes = nil
	t.snaps = nil
}

// Pinned is an immutable pin of one table's committed state: the stable
// image plus the PDT layer stack over it (big below, tails above,
// bottom first). Epoch-snapshot cursors and the tuple mover both work
// from pins — the pinned objects are never mutated by later commits, so
// no lock is needed while reading or folding them off-line.
type Pinned struct {
	Stable  *storage.Table
	Big     *pdt.PDT
	Tail    []*pdt.PDT
	Version uint64

	base    uint64
	bigLSN  uint64
	tailLSN []uint64
}

// Layers returns the pin's non-empty PDT layers bottom-first — the
// stack a merge scan applies over the stable image.
func (p *Pinned) Layers() []*pdt.PDT {
	out := make([]*pdt.PDT, 0, 1+len(p.Tail))
	if !p.Big.Empty() {
		out = append(out, p.Big)
	}
	out = append(out, p.Tail...)
	return out
}

// Rows returns the visible row count of the pin's top image.
func (p *Pinned) Rows() int64 {
	if n := len(p.Tail); n > 0 {
		return p.Tail[n-1].VisibleRows()
	}
	return p.Big.VisibleRows()
}

// Combined folds the pin's whole layer stack into one PDT over the
// stable image. Pure and lock-free: inputs are immutable, the result is
// fresh. This is the mover's off-line propagate step.
func (p *Pinned) Combined() (*pdt.PDT, error) {
	combined := p.Big
	for _, layer := range p.Tail {
		var err error
		if combined, err = pdt.Propagate(combined, layer); err != nil {
			return nil, err
		}
	}
	return combined, nil
}

// Watermark returns the highest WAL LSN whose effects are contained in
// the pin (stable image, big, and tails). A stable image rebuilt from
// the full pin records this as its applied LSN.
func (p *Pinned) Watermark() uint64 {
	w := p.bigLSN
	for _, lsn := range p.tailLSN {
		if lsn > w {
			w = lsn
		}
	}
	return w
}

func pinLocked(ts *tableState) *Pinned {
	return &Pinned{
		Stable:  ts.stable,
		Big:     ts.big,
		Tail:    ts.tail,
		Version: ts.version,
		base:    ts.base,
		bigLSN:  ts.bigLSN,
		tailLSN: ts.tailLSN,
	}
}

// Pin captures the table's current committed state.
func (m *Manager) Pin(table string) (*Pinned, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ts := m.tables[table]
	if ts == nil {
		return nil, fmt.Errorf("txn: unknown table %q", table)
	}
	return pinLocked(ts), nil
}

// PinAll captures every table's committed state at one instant — the
// cross-table consistency point an epoch snapshot is built from.
func (m *Manager) PinAll() map[string]*Pinned {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]*Pinned, len(m.tables))
	for name, ts := range m.tables {
		out[name] = pinLocked(ts)
	}
	return out
}

// InstallFold publishes folded — the off-line Propagate of pin's big
// and tail layers (pin.Combined()) — as the table's new big PDT,
// keeping any tail layers committed after the pin. It fails (returns
// false, no change) when the table was reorganized since the pin; the
// mover just retries on its next tick. Bumps the base generation.
func (m *Manager) InstallFold(table string, pin *Pinned, folded *pdt.PDT) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	ts := m.tables[table]
	if ts == nil || ts.base != pin.base {
		return false
	}
	ts.big = folded
	ts.bigLSN = pin.Watermark()
	ts.tail = append([]*pdt.PDT(nil), ts.tail[len(pin.Tail):]...)
	ts.tailLSN = append([]uint64(nil), ts.tailLSN[len(pin.Tail):]...)
	ts.base++
	ts.version++
	ts.commits = nil
	return true
}

// InstallStable swaps in a stable image rebuilt off-line from
// (pin.Stable, pin.Big) — the mover's merge of the big PDT into a fresh
// columnar file — and resets the big PDT to empty. Tail layers stay:
// the new image materializes exactly the big PDT's output image, so
// their coordinates are unchanged. The caller must have set the new
// image's applied-LSN watermark (pin.AppliedLSN) before persisting it;
// InstallStable re-stamps it defensively. Fails (returns false, no
// change) when the table was reorganized since the pin.
func (m *Manager) InstallStable(table string, pin *Pinned, newStable *storage.Table) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	ts := m.tables[table]
	if ts == nil || ts.base != pin.base {
		return false
	}
	newStable.Meta.AppliedLSN = pin.bigLSN
	ts.stable = newStable
	ts.big = pdt.New(newStable.Schema(), newStable.Rows())
	ts.bigLSN = pin.bigLSN
	ts.base++
	ts.version++
	ts.commits = nil
	return true
}

// AppliedLSN returns the watermark a stable image rebuilt from
// (Stable, Big) must record: the highest LSN folded into the big PDT.
func (p *Pinned) AppliedLSN() uint64 { return p.bigLSN }

// DeltaStats reports a table's in-memory delta footprint — what the
// tuple mover inspects to decide whether to fold or rebuild.
type DeltaStats struct {
	// BigEntries is the entry count of the big PDT.
	BigEntries int
	// TailLayers and TailEntries describe the committed tail stack.
	TailLayers  int
	TailEntries int
}

// DeltaStats returns the table's current delta footprint.
func (m *Manager) DeltaStats(table string) (DeltaStats, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ts := m.tables[table]
	if ts == nil {
		return DeltaStats{}, fmt.Errorf("txn: unknown table %q", table)
	}
	st := DeltaStats{BigEntries: ts.big.Len(), TailLayers: len(ts.tail)}
	for _, layer := range ts.tail {
		st.TailEntries += layer.Len()
	}
	return st, nil
}

// MasterPDT returns the table's combined delta state — big and tails
// folded into one PDT — plus the stable image. O(total deltas); the
// bulk-load and checkpoint rebuild paths use it, scans use Pin instead.
// When the table has no tail layers the big PDT is returned directly;
// callers must treat it as immutable.
func (m *Manager) MasterPDT(table string) (*pdt.PDT, *storage.Table, error) {
	pin, err := m.Pin(table)
	if err != nil {
		return nil, nil, err
	}
	combined, err := pin.Combined()
	if err != nil {
		return nil, nil, err
	}
	return combined, pin.Stable, nil
}

// Checkpoint rewrites the table's stable image with every delta layer
// applied, stamps the applied-LSN watermark, and installs the fresh
// image with empty deltas. Callers must ensure no transaction commits
// to the table across a checkpoint (vectorwise.DB quiesces by holding
// its write lock for the duration); a concurrent reorganization or
// commit makes Checkpoint fail rather than lose layers. The WAL is NOT
// truncated here — records absorbed by the new image are made inert by
// the watermark, and the DB layer truncates once every table's deltas
// are persisted (TruncateWALIfClean).
func (m *Manager) Checkpoint(table string) error {
	pin, err := m.Pin(table)
	if err != nil {
		return err
	}
	combined, err := pin.Combined()
	if err != nil {
		return err
	}
	if combined.Empty() {
		return nil
	}
	schema := pin.Stable.Schema()
	nb := storage.NewBuilder(pin.Stable.Meta.Name, schema, 0)
	if err := MergeIntoBuilder(nb, pin.Stable, combined); err != nil {
		return err
	}
	newStable, err := nb.Finish()
	if err != nil {
		return err
	}
	newStable.Meta.AppliedLSN = pin.Watermark()

	m.mu.Lock()
	defer m.mu.Unlock()
	ts := m.tables[table]
	if ts == nil || ts.base != pin.base || ts.version != pin.Version {
		return fmt.Errorf("txn: table %q changed during checkpoint (caller must quiesce)", table)
	}
	ts.stable = newStable
	ts.big = pdt.New(schema, newStable.Rows())
	ts.bigLSN = newStable.Meta.AppliedLSN
	ts.tail, ts.tailLSN = nil, nil
	ts.base++
	ts.version++
	ts.commits = nil
	return nil
}

// TruncateWALIfClean resets the WAL when every table's deltas are empty
// — i.e. all committed state is materialized in stable images (which
// the caller has persisted). LSNs stay monotonic across the reset (see
// wal.Log.Reset), so applied-LSN watermarks remain comparable. No-op
// when any table still carries deltas or there is no WAL.
func (m *Manager) TruncateWALIfClean() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.log == nil {
		return nil
	}
	for _, ts := range m.tables {
		if !ts.big.Empty() || len(ts.tail) > 0 {
			return nil
		}
	}
	return m.log.Reset()
}
