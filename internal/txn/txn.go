// Package txn implements Vectorwise's transaction model: snapshot reads
// over layered PDTs, optimistic PDT-based concurrency control, and a
// write-ahead log that records PDTs as they commit (paper §I-B).
//
// Each table has a *master* PDT over its stable image; the master is
// immutable once published, so readers hold a consistent snapshot by
// pinning (stable, master) pairs. A transaction's writes accumulate in a
// private small PDT stacked on its snapshot master. Commit, under a
// short critical section:
//
//  1. validates optimistically — the small PDT's write set, translated
//     to stable SIDs, must not intersect the write set of any
//     transaction committed after the snapshot (first-committer-wins);
//  2. rebases the small PDT from snapshot-master coordinates onto the
//     current master's image (valid because validation ruled out
//     overlapping positions);
//  3. logs the rebased PDT and a commit marker to the WAL;
//  4. propagates it onto a copy of the current master and publishes the
//     result as the new master version.
package txn

import (
	"errors"
	"fmt"
	"sync"

	"vectorwise/internal/pdt"
	"vectorwise/internal/storage"
	"vectorwise/internal/vector"
	"vectorwise/internal/vtypes"
	"vectorwise/internal/wal"
)

// ErrConflict is returned by Commit when optimistic validation fails.
var ErrConflict = errors.New("txn: write-write conflict, transaction aborted")

// ErrClosed is returned when using a finished transaction.
var ErrClosed = errors.New("txn: transaction already committed or aborted")

// commitInfo records a committed transaction's write set for validation.
type commitInfo struct {
	version uint64
	touched map[int64]struct{}
}

// tableState is the committed state of one table.
type tableState struct {
	stable  *storage.Table
	master  *pdt.PDT
	version uint64
	commits []commitInfo
}

// Manager owns committed state and the WAL. All Manager methods are
// safe for concurrent use; committed snapshots (stable image + master
// PDT) are immutable once published, so a snapshot pinned by one
// transaction is never mutated by another's commit.
type Manager struct {
	mu      sync.Mutex
	tables  map[string]*tableState
	log     *wal.Log
	nextTxn uint64
}

// NewManager creates a transaction manager. log may be nil (no
// durability — used by benchmarks isolating CPU costs).
func NewManager(log *wal.Log) *Manager {
	return &Manager{tables: make(map[string]*tableState), log: log, nextTxn: 1}
}

// Register adds a table with an empty master PDT.
func (m *Manager) Register(t *storage.Table) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tables[t.Meta.Name] = &tableState{
		stable: t,
		master: pdt.New(t.Schema(), t.Rows()),
	}
}

// Recover replays committed WAL records (from wal.Open) onto the
// registered tables. Must run after all tables are registered and before
// any transaction starts.
func (m *Manager) Recover(recs []wal.Record) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, r := range wal.CommittedTxns(recs) {
		ts := m.tables[r.Table]
		if ts == nil {
			return fmt.Errorf("txn: WAL references unknown table %q", r.Table)
		}
		small, err := pdt.Decode(ts.stable.Schema(), r.Data)
		if err != nil {
			return fmt.Errorf("txn: WAL record LSN %d: %w", r.LSN, err)
		}
		combined, err := pdt.Propagate(ts.master, small)
		if err != nil {
			return fmt.Errorf("txn: WAL replay LSN %d: %w", r.LSN, err)
		}
		ts.master = combined
		ts.version++
	}
	return nil
}

// snapshot pins one table's committed state.
type snapshot struct {
	stable  *storage.Table
	master  *pdt.PDT
	version uint64
}

// Txn is an in-flight transaction. A Txn is owned by one goroutine at a
// time — its private write PDT and snapshot map are unsynchronized;
// only the Manager state it touches through snap/Commit is locked.
type Txn struct {
	m      *Manager
	id     uint64
	snaps  map[string]*snapshot
	writes map[string]*pdt.PDT
	done   bool
}

// Begin starts a transaction with a snapshot taken lazily per table.
func (m *Manager) Begin() *Txn {
	m.mu.Lock()
	defer m.mu.Unlock()
	t := &Txn{m: m, id: m.nextTxn, snaps: make(map[string]*snapshot), writes: make(map[string]*pdt.PDT)}
	m.nextTxn++
	return t
}

// snap pins the table's current committed version on first touch.
func (t *Txn) snap(table string) (*snapshot, error) {
	if s, ok := t.snaps[table]; ok {
		return s, nil
	}
	t.m.mu.Lock()
	defer t.m.mu.Unlock()
	ts := t.m.tables[table]
	if ts == nil {
		return nil, fmt.Errorf("txn: unknown table %q", table)
	}
	s := &snapshot{stable: ts.stable, master: ts.master, version: ts.version}
	t.snaps[table] = s
	return s, nil
}

// small returns the transaction's write PDT for the table.
func (t *Txn) small(table string) (*pdt.PDT, *snapshot, error) {
	s, err := t.snap(table)
	if err != nil {
		return nil, nil, err
	}
	w, ok := t.writes[table]
	if !ok {
		w = pdt.New(s.stable.Schema(), s.master.VisibleRows())
		t.writes[table] = w
	}
	return w, s, nil
}

// Rows returns the table's visible row count in this transaction.
func (t *Txn) Rows(table string) (int64, error) {
	if t.done {
		return 0, ErrClosed
	}
	w, s, err := t.small(table)
	if err != nil {
		return 0, err
	}
	_ = s
	return w.VisibleRows(), nil
}

// Insert appends a row to the table (visible to this transaction).
func (t *Txn) Insert(table string, row vtypes.Row) error {
	if t.done {
		return ErrClosed
	}
	w, _, err := t.small(table)
	if err != nil {
		return err
	}
	return w.Append(row)
}

// InsertAt inserts a row at a specific visible position.
func (t *Txn) InsertAt(table string, rid int64, row vtypes.Row) error {
	if t.done {
		return ErrClosed
	}
	w, _, err := t.small(table)
	if err != nil {
		return err
	}
	return w.Insert(rid, row)
}

// Delete removes the visible row at rid.
func (t *Txn) Delete(table string, rid int64) error {
	if t.done {
		return ErrClosed
	}
	w, _, err := t.small(table)
	if err != nil {
		return err
	}
	return w.Delete(rid)
}

// Update overwrites one column of the visible row at rid.
func (t *Txn) Update(table string, rid int64, col int, val vtypes.Value) error {
	if t.done {
		return ErrClosed
	}
	w, _, err := t.small(table)
	if err != nil {
		return err
	}
	return w.Modify(rid, col, val)
}

// RowAt reads the visible row at rid (snapshot + own writes).
func (t *Txn) RowAt(table string, rid int64) (vtypes.Row, error) {
	if t.done {
		return nil, ErrClosed
	}
	w, s, err := t.small(table)
	if err != nil {
		return nil, err
	}
	masterRead := func(sid int64) (vtypes.Row, error) {
		return s.master.RowAt(sid, s.stable.RowAt)
	}
	return w.RowAt(rid, masterRead)
}

// Scan returns a RowSource over the transaction's view of the table:
// stable image merged with the snapshot master and the private PDT.
func (t *Txn) Scan(table string, vecSize int) (pdt.RowSource, *vtypes.Schema, error) {
	if t.done {
		return nil, nil, ErrClosed
	}
	w, s, err := t.small(table)
	if err != nil {
		return nil, nil, err
	}
	cols := make([]int, s.stable.Schema().Len())
	for i := range cols {
		cols[i] = i
	}
	base := &scanSource{sc: storage.NewScanner(s.stable, cols, nil, nil, vecSize)}
	merged := pdt.NewMergeScan(base, s.master, vecSize)
	return pdt.NewMergeScan(merged, w, vecSize), s.stable.Schema(), nil
}

// scanSource adapts storage.Scanner to pdt.RowSource.
type scanSource struct{ sc *storage.Scanner }

// Next implements pdt.RowSource.
func (s *scanSource) Next() ([]*vector.Vector, int, error) {
	vecs, _, n, err := s.sc.Next()
	return vecs, n, err
}
