// Package txn implements Vectorwise's transaction model: snapshot reads
// over layered PDTs, optimistic PDT-based concurrency control, and a
// write-ahead log that records PDTs as they commit (paper §I-B).
//
// Each table's committed state is a stack of immutable layers:
//
//	stable image  →  big PDT  →  tail small PDTs (oldest first)
//
// The stable image is the columnar file, the big PDT is the
// mover-maintained base delta layer, and each commit installs its
// rebased small PDT as a new tail layer. Every layer is immutable once
// published, so a reader pins a consistent snapshot by capturing the
// (stable, big, tails) tuple — commits after the pin only append layers
// on top and never disturb the pinned objects. A transaction's writes
// accumulate in a private small PDT over its snapshot's top image.
//
// Commit, under a short critical section:
//
//  1. validates optimistically — the small PDT's write set, translated
//     down the snapshot stack to stable SIDs, must not intersect the
//     write set of any transaction committed after the snapshot
//     (first-committer-wins);
//  2. rebases the small PDT up through tail layers appended since the
//     snapshot (valid because validation ruled out overlapping
//     positions);
//  3. logs the rebased PDT and a commit marker to the WAL;
//  4. publishes the rebased PDT as the new top tail layer. Publishing is
//     O(own writes) — the big PDT is NOT propagated on the commit path;
//     folding tail layers into it is the background tuple mover's job
//     (InstallFold / InstallStable / Checkpoint).
//
// Layer reorganizations (mover folds, stable-image swaps, checkpoints,
// re-registration) bump the table's base generation; a transaction whose
// snapshot predates a reorganization cannot commit and gets
// ErrStaleSnapshot. The vectorwise.DB layer serializes writers against
// reorganizations with its write lock, so the error never surfaces
// through the SQL API; raw Manager users retry.
package txn

import (
	"errors"
	"fmt"
	"sync"

	"vectorwise/internal/pdt"
	"vectorwise/internal/storage"
	"vectorwise/internal/vector"
	"vectorwise/internal/vtypes"
	"vectorwise/internal/wal"
)

// ErrConflict is returned by Commit when optimistic validation fails.
var ErrConflict = errors.New("txn: write-write conflict, transaction aborted")

// ErrClosed is returned when using a finished transaction.
var ErrClosed = errors.New("txn: transaction already committed or aborted")

// ErrStaleSnapshot is returned by Commit when the table's layer stack
// was reorganized (mover fold, stable swap, checkpoint) after the
// transaction pinned its snapshot. The transaction is aborted; the
// caller may retry on a fresh snapshot.
var ErrStaleSnapshot = errors.New("txn: snapshot predates a layer reorganization, transaction aborted")

// maxTailLayers bounds the tail stack between mover runs: a commit that
// would grow the stack past this folds every tail into the big PDT
// inline (an O(big) backstop keeping scan merge chains short even with
// the mover disabled).
const maxTailLayers = 16

// commitInfo records a committed transaction's write set for validation.
type commitInfo struct {
	version uint64
	touched map[int64]struct{}
}

// tableState is the committed state of one table. All layer fields are
// immutable once published — mutations replace fields under Manager.mu,
// they never modify a published *pdt.PDT or *storage.Table in place.
type tableState struct {
	stable *storage.Table
	// big is the mover-maintained base delta layer over stable (empty,
	// never nil, when fully folded).
	big *pdt.PDT
	// tail holds committed small-PDT layers above big, oldest first.
	// Layer i applies to the output image of everything below it.
	tail []*pdt.PDT
	// bigLSN is the highest WAL LSN folded into stable or big; tailLSN
	// parallels tail with each layer's data-record LSN (0 without WAL).
	bigLSN  uint64
	tailLSN []uint64
	// version bumps on every publish; base bumps only on layer
	// reorganizations and fences stale-snapshot commits.
	version uint64
	base    uint64
	commits []commitInfo
}

// topRows returns the visible row count of the table's top image.
func (ts *tableState) topRows() int64 {
	if n := len(ts.tail); n > 0 {
		return ts.tail[n-1].VisibleRows()
	}
	return ts.big.VisibleRows()
}

// Manager owns committed state and the WAL. All Manager methods are
// safe for concurrent use; committed layers are immutable once
// published, so a snapshot pinned by one transaction or cursor is never
// mutated by another's commit.
type Manager struct {
	mu      sync.Mutex
	tables  map[string]*tableState
	log     *wal.Log
	nextTxn uint64
}

// NewManager creates a transaction manager. log may be nil (no
// durability — used by benchmarks isolating CPU costs).
func NewManager(log *wal.Log) *Manager {
	return &Manager{tables: make(map[string]*tableState), log: log, nextTxn: 1}
}

// Register installs t as the complete committed state of its table:
// empty big PDT, no tails. Re-registering an existing name asserts the
// new image supersedes everything previously committed (the bulk-load
// path does this after folding deltas into the rebuilt file), so the
// applied-LSN watermark carries forward and the base generation bumps.
func (m *Manager) Register(t *storage.Table) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ns := &tableState{
		stable: t,
		big:    pdt.New(t.Schema(), t.Rows()),
		bigLSN: t.Meta.AppliedLSN,
	}
	if old := m.tables[t.Meta.Name]; old != nil {
		ns.version = old.version + 1
		ns.base = old.base + 1
		if old.bigLSN > ns.bigLSN {
			ns.bigLSN = old.bigLSN
		}
		for _, lsn := range old.tailLSN {
			if lsn > ns.bigLSN {
				ns.bigLSN = lsn
			}
		}
	}
	m.tables[t.Meta.Name] = ns
}

// Recover replays committed WAL records (from wal.Open) onto the
// registered tables, folding each into the big PDT. Records whose LSN
// is at or below the stable image's applied-LSN watermark are already
// materialized in the file and are skipped — this is what makes the
// tuple mover's stable swap crash-safe without atomic WAL truncation.
// Must run after all tables are registered and before any transaction
// starts.
func (m *Manager) Recover(recs []wal.Record) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, r := range wal.CommittedTxns(recs) {
		ts := m.tables[r.Table]
		if ts == nil {
			return fmt.Errorf("txn: WAL references unknown table %q", r.Table)
		}
		if r.LSN <= ts.stable.Meta.AppliedLSN {
			continue
		}
		small, err := pdt.Decode(ts.stable.Schema(), r.Data)
		if err != nil {
			return fmt.Errorf("txn: WAL record LSN %d: %w", r.LSN, err)
		}
		combined, err := pdt.Propagate(ts.big, small)
		if err != nil {
			return fmt.Errorf("txn: WAL replay LSN %d: %w", r.LSN, err)
		}
		ts.big = combined
		ts.bigLSN = r.LSN
		ts.version++
	}
	return nil
}

// snapshot pins one table's committed state.
type snapshot struct {
	stable  *storage.Table
	big     *pdt.PDT
	tail    []*pdt.PDT
	version uint64
	base    uint64
}

// topRows returns the visible row count of the snapshot's top image.
func (s *snapshot) topRows() int64 {
	if n := len(s.tail); n > 0 {
		return s.tail[n-1].VisibleRows()
	}
	return s.big.VisibleRows()
}

// anchorStable translates a position in the snapshot's top image down
// through the layer stack to its stable-image anchor SID — the
// coordinate system shared by all transactions, in which conflicts are
// defined. Both write targets (Del/Mod) and insertion points anchor the
// same way: each layer's InsertionPoint decomposition yields the SID the
// position belongs to in the layer's input image.
func anchorStable(s *snapshot, pos int64) (int64, error) {
	for i := len(s.tail) - 1; i >= 0; i-- {
		sid, _, err := s.tail[i].InsertionPoint(pos)
		if err != nil {
			return 0, err
		}
		pos = sid
	}
	sid, _, err := s.big.InsertionPoint(pos)
	if err != nil {
		return 0, err
	}
	return sid, nil
}

// Txn is an in-flight transaction. A Txn is owned by one goroutine at a
// time — its private write PDT and snapshot map are unsynchronized;
// only the Manager state it touches through snap/Commit is locked.
type Txn struct {
	m      *Manager
	id     uint64
	snaps  map[string]*snapshot
	writes map[string]*pdt.PDT
	done   bool
}

// Begin starts a transaction with a snapshot taken lazily per table.
func (m *Manager) Begin() *Txn {
	m.mu.Lock()
	defer m.mu.Unlock()
	t := &Txn{m: m, id: m.nextTxn, snaps: make(map[string]*snapshot), writes: make(map[string]*pdt.PDT)}
	m.nextTxn++
	return t
}

// snap pins the table's current committed version on first touch.
func (t *Txn) snap(table string) (*snapshot, error) {
	if s, ok := t.snaps[table]; ok {
		return s, nil
	}
	t.m.mu.Lock()
	defer t.m.mu.Unlock()
	ts := t.m.tables[table]
	if ts == nil {
		return nil, fmt.Errorf("txn: unknown table %q", table)
	}
	s := &snapshot{stable: ts.stable, big: ts.big, tail: ts.tail, version: ts.version, base: ts.base}
	t.snaps[table] = s
	return s, nil
}

// small returns the transaction's write PDT for the table.
func (t *Txn) small(table string) (*pdt.PDT, *snapshot, error) {
	s, err := t.snap(table)
	if err != nil {
		return nil, nil, err
	}
	w, ok := t.writes[table]
	if !ok {
		w = pdt.New(s.stable.Schema(), s.topRows())
		t.writes[table] = w
	}
	return w, s, nil
}

// Rows returns the table's visible row count in this transaction.
func (t *Txn) Rows(table string) (int64, error) {
	if t.done {
		return 0, ErrClosed
	}
	w, _, err := t.small(table)
	if err != nil {
		return 0, err
	}
	return w.VisibleRows(), nil
}

// Insert appends a row to the table (visible to this transaction).
func (t *Txn) Insert(table string, row vtypes.Row) error {
	if t.done {
		return ErrClosed
	}
	w, _, err := t.small(table)
	if err != nil {
		return err
	}
	return w.Append(row)
}

// InsertAt inserts a row at a specific visible position.
func (t *Txn) InsertAt(table string, rid int64, row vtypes.Row) error {
	if t.done {
		return ErrClosed
	}
	w, _, err := t.small(table)
	if err != nil {
		return err
	}
	return w.Insert(rid, row)
}

// Delete removes the visible row at rid.
func (t *Txn) Delete(table string, rid int64) error {
	if t.done {
		return ErrClosed
	}
	w, _, err := t.small(table)
	if err != nil {
		return err
	}
	return w.Delete(rid)
}

// Update overwrites one column of the visible row at rid.
func (t *Txn) Update(table string, rid int64, col int, val vtypes.Value) error {
	if t.done {
		return ErrClosed
	}
	w, _, err := t.small(table)
	if err != nil {
		return err
	}
	return w.Modify(rid, col, val)
}

// RowAt reads the visible row at rid (snapshot + own writes) by chaining
// point lookups down the layer stack.
func (t *Txn) RowAt(table string, rid int64) (vtypes.Row, error) {
	if t.done {
		return nil, ErrClosed
	}
	w, s, err := t.small(table)
	if err != nil {
		return nil, err
	}
	read := s.stable.RowAt
	for _, layer := range append([]*pdt.PDT{s.big}, s.tail...) {
		below := read
		l := layer
		read = func(sid int64) (vtypes.Row, error) { return l.RowAt(sid, below) }
	}
	return w.RowAt(rid, read)
}

// Scan returns a RowSource over the transaction's view of the table:
// stable image merged with the snapshot's layer stack and the private
// PDT on top.
func (t *Txn) Scan(table string, vecSize int) (pdt.RowSource, *vtypes.Schema, error) {
	if t.done {
		return nil, nil, ErrClosed
	}
	w, s, err := t.small(table)
	if err != nil {
		return nil, nil, err
	}
	cols := make([]int, s.stable.Schema().Len())
	for i := range cols {
		cols[i] = i
	}
	var src pdt.RowSource = &scanSource{sc: storage.NewScanner(s.stable, cols, nil, nil, vecSize)}
	for _, layer := range append([]*pdt.PDT{s.big}, s.tail...) {
		if layer.Empty() {
			continue
		}
		src = pdt.NewMergeScan(src, layer, vecSize)
	}
	return pdt.NewMergeScan(src, w, vecSize), s.stable.Schema(), nil
}

// scanSource adapts storage.Scanner to pdt.RowSource.
type scanSource struct{ sc *storage.Scanner }

// Next implements pdt.RowSource.
func (s *scanSource) Next() ([]*vector.Vector, int, error) {
	vecs, _, n, err := s.sc.Next()
	return vecs, n, err
}
