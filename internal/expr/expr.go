// Package expr implements vectorized expression evaluation for the X100
// engine. An expression tree is *compiled* once into a tree of closures
// over monomorphic primitive kernels; evaluation then runs one kernel
// call per vector, never one interface dispatch per row — the crux of
// the paper's ">10× over tuple-at-a-time" claim.
//
// Expressions assume NULL-free inputs: the rewriter's NULL decomposition
// (paper §I-B) replaces NULLable expressions with equivalent plans over
// (indicator, safe value) column pairs before compilation.
package expr

import (
	"fmt"

	"vectorwise/internal/primitives"
	"vectorwise/internal/vector"
	"vectorwise/internal/vtypes"
)

// Expr is a compiled vectorized expression.
type Expr interface {
	// Kind is the result type.
	Kind() vtypes.Kind
	// Eval computes the expression over the batch's live rows. Results
	// are written at live positions (the output aligns with b.Sel).
	Eval(b *vector.Batch) (*vector.Vector, error)
}

// Col references an input column by position.
type Col struct {
	Idx     int
	ColKind vtypes.Kind
}

// NewCol builds a column reference.
func NewCol(idx int, kind vtypes.Kind) *Col { return &Col{Idx: idx, ColKind: kind} }

// Kind implements Expr.
func (c *Col) Kind() vtypes.Kind { return c.ColKind }

// Eval implements Expr: a column reference is free (no copy).
func (c *Col) Eval(b *vector.Batch) (*vector.Vector, error) {
	if c.Idx < 0 || c.Idx >= len(b.Vecs) {
		return nil, fmt.Errorf("expr: column %d out of range (%d cols)", c.Idx, len(b.Vecs))
	}
	return b.Vecs[c.Idx], nil
}

// Const is a literal broadcast over the batch.
type Const struct {
	Val vtypes.Value
	buf *vector.Vector
}

// NewConst builds a literal.
func NewConst(v vtypes.Value) *Const { return &Const{Val: v} }

// Kind implements Expr.
func (c *Const) Kind() vtypes.Kind { return c.Val.Kind }

// Eval implements Expr.
func (c *Const) Eval(b *vector.Batch) (*vector.Vector, error) {
	n := b.Capacity()
	if c.buf == nil || c.buf.Len() < n {
		c.buf = vector.New(c.Val.Kind, n)
		for i := 0; i < n; i++ {
			c.buf.Set(i, c.Val)
		}
	}
	return c.buf, nil
}

// ArithOp names a binary arithmetic operator.
type ArithOp uint8

// Arithmetic operators.
const (
	OpAdd ArithOp = iota
	OpSub
	OpMul
	OpDiv
)

func (o ArithOp) String() string {
	switch o {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	default:
		return "/"
	}
}

// Arith is a compiled binary arithmetic expression.
type Arith struct {
	op          ArithOp
	left, right Expr
	kind        vtypes.Kind
	buf         *vector.Vector
	fn          func(dst, a, b *vector.Vector, sel []int32, n int)
}

// NewArith compiles left op right. Mixed int/float operands widen to
// float via an implicit cast.
func NewArith(op ArithOp, left, right Expr) (*Arith, error) {
	lk, rk := left.Kind(), right.Kind()
	// Date ± int stays a date; date - date is an int (day difference).
	kind := lk
	switch {
	case lk == vtypes.KindDate && rk == vtypes.KindDate && op == OpSub:
		kind = vtypes.KindI64
	case lk == vtypes.KindDate && rk.StorageClass() == vtypes.ClassI64:
		kind = vtypes.KindDate
	case lk == vtypes.KindF64 || rk == vtypes.KindF64:
		kind = vtypes.KindF64
		if lk.StorageClass() == vtypes.ClassI64 {
			left = NewCast(left, vtypes.KindF64)
		}
		if rk.StorageClass() == vtypes.ClassI64 {
			right = NewCast(right, vtypes.KindF64)
		}
	case lk.StorageClass() == vtypes.ClassI64 && rk.StorageClass() == vtypes.ClassI64:
		if lk == vtypes.KindDate {
			kind = vtypes.KindDate
		} else {
			kind = vtypes.KindI64
		}
	default:
		return nil, fmt.Errorf("expr: cannot apply %v to %v and %v", op, lk, rk)
	}

	a := &Arith{op: op, left: left, right: right, kind: kind}
	switch kind.StorageClass() {
	case vtypes.ClassI64:
		switch op {
		case OpAdd:
			a.fn = func(dst, x, y *vector.Vector, sel []int32, n int) {
				primitives.MapAddVV(dst.I64, x.I64, y.I64, sel, n)
			}
		case OpSub:
			a.fn = func(dst, x, y *vector.Vector, sel []int32, n int) {
				primitives.MapSubVV(dst.I64, x.I64, y.I64, sel, n)
			}
		case OpMul:
			a.fn = func(dst, x, y *vector.Vector, sel []int32, n int) {
				primitives.MapMulVV(dst.I64, x.I64, y.I64, sel, n)
			}
		case OpDiv:
			a.fn = func(dst, x, y *vector.Vector, sel []int32, n int) {
				primitives.MapDivVV(dst.I64, x.I64, y.I64, sel, n)
			}
		}
	case vtypes.ClassF64:
		switch op {
		case OpAdd:
			a.fn = func(dst, x, y *vector.Vector, sel []int32, n int) {
				primitives.MapAddVV(dst.F64, x.F64, y.F64, sel, n)
			}
		case OpSub:
			a.fn = func(dst, x, y *vector.Vector, sel []int32, n int) {
				primitives.MapSubVV(dst.F64, x.F64, y.F64, sel, n)
			}
		case OpMul:
			a.fn = func(dst, x, y *vector.Vector, sel []int32, n int) {
				primitives.MapMulVV(dst.F64, x.F64, y.F64, sel, n)
			}
		case OpDiv:
			a.fn = func(dst, x, y *vector.Vector, sel []int32, n int) {
				primitives.MapDivVV(dst.F64, x.F64, y.F64, sel, n)
			}
		}
	default:
		return nil, fmt.Errorf("expr: arithmetic on %v unsupported", kind)
	}
	return a, nil
}

// Kind implements Expr.
func (a *Arith) Kind() vtypes.Kind { return a.kind }

// Eval implements Expr.
func (a *Arith) Eval(b *vector.Batch) (*vector.Vector, error) {
	lv, err := a.left.Eval(b)
	if err != nil {
		return nil, err
	}
	rv, err := a.right.Eval(b)
	if err != nil {
		return nil, err
	}
	if a.buf == nil || a.buf.Len() < b.Capacity() {
		a.buf = vector.New(a.kind, b.Capacity())
	}
	n := b.N
	if b.Sel == nil {
		if n == 0 {
			return a.buf, nil
		}
		a.fn(a.buf, lv, rv, nil, n)
	} else {
		a.fn(a.buf, lv, rv, b.Sel, n)
	}
	return a.buf, nil
}

// Cast converts between the numeric storage classes.
type Cast struct {
	in   Expr
	kind vtypes.Kind
	buf  *vector.Vector
}

// NewCast compiles a cast of in to kind (numeric classes only; casting
// to the same class relabels the kind, e.g. DATE → BIGINT).
func NewCast(in Expr, kind vtypes.Kind) *Cast { return &Cast{in: in, kind: kind} }

// Kind implements Expr.
func (c *Cast) Kind() vtypes.Kind { return c.kind }

// Eval implements Expr.
func (c *Cast) Eval(b *vector.Batch) (*vector.Vector, error) {
	v, err := c.in.Eval(b)
	if err != nil {
		return nil, err
	}
	if v.Kind.StorageClass() == c.kind.StorageClass() {
		if v.Kind == c.kind {
			return v, nil
		}
		out := *v
		out.Kind = c.kind
		return &out, nil
	}
	if c.buf == nil || c.buf.Len() < b.Capacity() {
		c.buf = vector.New(c.kind, b.Capacity())
	}
	n := b.N
	if n == 0 {
		return c.buf, nil
	}
	switch {
	case c.kind.StorageClass() == vtypes.ClassF64 && v.Kind.StorageClass() == vtypes.ClassI64:
		primitives.MapI64ToF64(c.buf.F64, v.I64, b.Sel, n)
	case c.kind.StorageClass() == vtypes.ClassI64 && v.Kind.StorageClass() == vtypes.ClassF64:
		primitives.MapF64ToI64(c.buf.I64, v.F64, b.Sel, n)
	default:
		return nil, fmt.Errorf("expr: unsupported cast %v → %v", v.Kind, c.kind)
	}
	return c.buf, nil
}

// YearOf extracts the calendar year from a date column.
type YearOf struct {
	in  Expr
	buf *vector.Vector
}

// NewYearOf compiles EXTRACT(YEAR FROM in).
func NewYearOf(in Expr) *YearOf { return &YearOf{in: in} }

// Kind implements Expr.
func (y *YearOf) Kind() vtypes.Kind { return vtypes.KindI64 }

// Eval implements Expr.
func (y *YearOf) Eval(b *vector.Batch) (*vector.Vector, error) {
	v, err := y.in.Eval(b)
	if err != nil {
		return nil, err
	}
	if y.buf == nil || y.buf.Len() < b.Capacity() {
		y.buf = vector.New(vtypes.KindI64, b.Capacity())
	}
	n := b.N
	if b.Sel == nil {
		for i := 0; i < n; i++ {
			y.buf.I64[i] = vtypes.Year(v.I64[i])
		}
	} else {
		for _, i := range b.Sel[:n] {
			y.buf.I64[i] = vtypes.Year(v.I64[i])
		}
	}
	return y.buf, nil
}

// Case is a two-armed CASE WHEN cond THEN a ELSE b END. The condition is
// a compiled boolean Expr; both arms evaluate over the full live set and
// blend — branch-free, as X100 compiles conditionals.
type Case struct {
	cond     Expr
	then, el Expr
	kind     vtypes.Kind
	buf      *vector.Vector
}

// NewCase compiles the conditional; then/else kinds must share a storage
// class (mixed int/float widen to float).
func NewCase(cond, then, el Expr) (*Case, error) {
	if cond.Kind() != vtypes.KindBool {
		return nil, fmt.Errorf("expr: CASE condition must be boolean, got %v", cond.Kind())
	}
	tk, ek := then.Kind(), el.Kind()
	kind := tk
	if tk != ek {
		if tk.Numeric() && ek.Numeric() {
			kind = vtypes.KindF64
			if tk.StorageClass() == vtypes.ClassI64 {
				then = NewCast(then, vtypes.KindF64)
			}
			if ek.StorageClass() == vtypes.ClassI64 {
				el = NewCast(el, vtypes.KindF64)
			}
		} else {
			return nil, fmt.Errorf("expr: CASE arms disagree: %v vs %v", tk, ek)
		}
	}
	return &Case{cond: cond, then: then, el: el, kind: kind}, nil
}

// Kind implements Expr.
func (c *Case) Kind() vtypes.Kind { return c.kind }

// Eval implements Expr.
func (c *Case) Eval(b *vector.Batch) (*vector.Vector, error) {
	cv, err := c.cond.Eval(b)
	if err != nil {
		return nil, err
	}
	tv, err := c.then.Eval(b)
	if err != nil {
		return nil, err
	}
	ev, err := c.el.Eval(b)
	if err != nil {
		return nil, err
	}
	if c.buf == nil || c.buf.Len() < b.Capacity() {
		c.buf = vector.New(c.kind, b.Capacity())
	}
	blend := func(i int32) {
		if cv.B[i] {
			c.buf.CopyFrom(tv, int(i), int(i), 1)
		} else {
			c.buf.CopyFrom(ev, int(i), int(i), 1)
		}
	}
	// Blend per storage class without boxing.
	switch c.kind.StorageClass() {
	case vtypes.ClassI64:
		if b.Sel == nil {
			for i := 0; i < b.N; i++ {
				if cv.B[i] {
					c.buf.I64[i] = tv.I64[i]
				} else {
					c.buf.I64[i] = ev.I64[i]
				}
			}
		} else {
			for _, i := range b.Sel[:b.N] {
				if cv.B[i] {
					c.buf.I64[i] = tv.I64[i]
				} else {
					c.buf.I64[i] = ev.I64[i]
				}
			}
		}
	case vtypes.ClassF64:
		if b.Sel == nil {
			for i := 0; i < b.N; i++ {
				if cv.B[i] {
					c.buf.F64[i] = tv.F64[i]
				} else {
					c.buf.F64[i] = ev.F64[i]
				}
			}
		} else {
			for _, i := range b.Sel[:b.N] {
				if cv.B[i] {
					c.buf.F64[i] = tv.F64[i]
				} else {
					c.buf.F64[i] = ev.F64[i]
				}
			}
		}
	default:
		if b.Sel == nil {
			for i := 0; i < b.N; i++ {
				blend(int32(i))
			}
		} else {
			for _, i := range b.Sel[:b.N] {
				blend(i)
			}
		}
	}
	return c.buf, nil
}
