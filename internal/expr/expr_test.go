package expr

import (
	"testing"

	"vectorwise/internal/vector"
	"vectorwise/internal/vtypes"
)

// mkBatch builds a dense two-column batch (i64, f64).
func mkBatch(is []int64, fs []float64) *vector.Batch {
	b := vector.NewBatchOfKinds([]vtypes.Kind{vtypes.KindI64, vtypes.KindF64}, len(is))
	copy(b.Vecs[0].I64, is)
	copy(b.Vecs[1].F64, fs)
	b.SetDense(len(is))
	return b
}

func TestColAndConst(t *testing.T) {
	b := mkBatch([]int64{1, 2}, []float64{0.5, 1.5})
	c := NewCol(0, vtypes.KindI64)
	v, err := c.Eval(b)
	if err != nil || v.I64[1] != 2 {
		t.Fatal("col eval wrong")
	}
	if _, err := NewCol(9, vtypes.KindI64).Eval(b); err == nil {
		t.Fatal("out-of-range col must error")
	}
	k := NewConst(vtypes.F64Value(3.5))
	v, err = k.Eval(b)
	if err != nil || v.F64[0] != 3.5 || v.F64[1] != 3.5 {
		t.Fatal("const eval wrong")
	}
}

func TestArithWideningAndDates(t *testing.T) {
	b := mkBatch([]int64{10, 20}, []float64{0.5, 1.5})
	// int + float widens to float.
	a, err := NewArith(OpAdd, NewCol(0, vtypes.KindI64), NewCol(1, vtypes.KindF64))
	if err != nil || a.Kind() != vtypes.KindF64 {
		t.Fatal(err)
	}
	v, err := a.Eval(b)
	if err != nil || v.F64[0] != 10.5 || v.F64[1] != 21.5 {
		t.Fatalf("widened add: %v", v.F64[:2])
	}
	// date - int stays a date.
	db := vector.NewBatchOfKinds([]vtypes.Kind{vtypes.KindDate}, 1)
	db.Vecs[0].I64[0] = 100
	db.SetDense(1)
	d, err := NewArith(OpSub, NewCol(0, vtypes.KindDate), NewConst(vtypes.I64Value(10)))
	if err != nil || d.Kind() != vtypes.KindDate {
		t.Fatal(err)
	}
	dv, err := d.Eval(db)
	if err != nil || dv.I64[0] != 90 {
		t.Fatal("date arithmetic wrong")
	}
	// strings reject arithmetic.
	if _, err := NewArith(OpAdd, NewConst(vtypes.StrValue("x")), NewConst(vtypes.I64Value(1))); err == nil {
		t.Fatal("string arithmetic must fail")
	}
}

func TestEvalRespectsSelection(t *testing.T) {
	b := mkBatch([]int64{1, 2, 3, 4}, []float64{1, 2, 3, 4})
	sel := b.MutableSel(4)
	sel[0], sel[1] = 1, 3
	b.SetSel(sel, 2)
	a, err := NewArith(OpMul, NewCol(0, vtypes.KindI64), NewConst(vtypes.I64Value(10)))
	if err != nil {
		t.Fatal(err)
	}
	v, err := a.Eval(b)
	if err != nil {
		t.Fatal(err)
	}
	// Only live positions are written.
	if v.I64[1] != 20 || v.I64[3] != 40 {
		t.Fatalf("live positions wrong: %v", v.I64[:4])
	}
	if v.I64[0] != 0 || v.I64[2] != 0 {
		t.Fatalf("dead positions touched: %v", v.I64[:4])
	}
}

func TestPredChain(t *testing.T) {
	b := mkBatch([]int64{1, 2, 3, 4, 5, 6}, []float64{1, 2, 3, 4, 5, 6})
	p1, err := NewCmpConst(NewCol(0, vtypes.KindI64), CmpGt, vtypes.I64Value(2))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := NewCmpConst(NewCol(0, vtypes.KindI64), CmpLt, vtypes.I64Value(6))
	if err != nil {
		t.Fatal(err)
	}
	if err := NewAnd(p1, p2).Filter(b); err != nil {
		t.Fatal(err)
	}
	if b.N != 3 || b.LiveIndex(0) != 2 || b.LiveIndex(2) != 4 {
		t.Fatalf("and-chain: N=%d", b.N)
	}
}

func TestOrPredUnions(t *testing.T) {
	b := mkBatch([]int64{1, 2, 3, 4, 5, 6}, []float64{1, 2, 3, 4, 5, 6})
	p1, _ := NewCmpConst(NewCol(0, vtypes.KindI64), CmpLe, vtypes.I64Value(2))
	p2, _ := NewCmpConst(NewCol(0, vtypes.KindI64), CmpGe, vtypes.I64Value(5))
	if err := NewOr(p1, p2).Filter(b); err != nil {
		t.Fatal(err)
	}
	if b.N != 4 {
		t.Fatalf("or: N=%d", b.N)
	}
	// Ascending order preserved.
	for i := 1; i < b.N; i++ {
		if b.LiveIndex(i) <= b.LiveIndex(i-1) {
			t.Fatal("or output must stay ascending")
		}
	}
}

func TestNotPredComplements(t *testing.T) {
	b := mkBatch([]int64{1, 2, 3, 4}, []float64{1, 2, 3, 4})
	p, _ := NewCmpConst(NewCol(0, vtypes.KindI64), CmpLe, vtypes.I64Value(2))
	if err := NewNot(p).Filter(b); err != nil {
		t.Fatal(err)
	}
	if b.N != 2 || b.LiveIndex(0) != 2 || b.LiveIndex(1) != 3 {
		t.Fatalf("not: %d", b.N)
	}
}

func TestCmpOpFlip(t *testing.T) {
	cases := map[CmpOp]CmpOp{
		CmpEq: CmpEq, CmpNe: CmpNe,
		CmpLt: CmpGt, CmpLe: CmpGe, CmpGt: CmpLt, CmpGe: CmpLe,
	}
	for in, want := range cases {
		if in.Flip() != want {
			t.Errorf("%v.Flip() = %v, want %v", in, in.Flip(), want)
		}
	}
}

func TestTypeErrors(t *testing.T) {
	if _, err := NewCmpConst(NewCol(0, vtypes.KindI64), CmpLt, vtypes.StrValue("x")); err == nil {
		t.Fatal("int vs string compare must fail")
	}
	if _, err := NewLike(NewCol(0, vtypes.KindI64), "a%", false); err == nil {
		t.Fatal("LIKE on int must fail")
	}
	if _, err := NewBetween(NewCol(0, vtypes.KindI64), vtypes.StrValue("a"), vtypes.StrValue("b")); err == nil {
		t.Fatal("mismatched BETWEEN must fail")
	}
	if _, err := NewBoolPred(NewCol(0, vtypes.KindI64)); err == nil {
		t.Fatal("non-bool predicate must fail")
	}
	if _, err := NewAndMap(NewCol(0, vtypes.KindI64)); err == nil {
		t.Fatal("non-bool AND operand must fail")
	}
	if _, err := NewCase(NewCol(0, vtypes.KindI64), NewCol(0, vtypes.KindI64), NewCol(0, vtypes.KindI64)); err == nil {
		t.Fatal("non-bool CASE condition must fail")
	}
}

func TestCaseBlends(t *testing.T) {
	b := mkBatch([]int64{1, 2, 3, 4}, []float64{10, 20, 30, 40})
	cond, err := NewCmpMap(NewCol(0, vtypes.KindI64), CmpGt, NewConst(vtypes.I64Value(2)))
	if err != nil {
		t.Fatal(err)
	}
	cs, err := NewCase(cond, NewCol(1, vtypes.KindF64), NewConst(vtypes.F64Value(0)))
	if err != nil {
		t.Fatal(err)
	}
	v, err := cs.Eval(b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 0, 30, 40}
	for i, w := range want {
		if v.F64[i] != w {
			t.Fatalf("case blend: %v", v.F64[:4])
		}
	}
}

func TestYearOf(t *testing.T) {
	b := vector.NewBatchOfKinds([]vtypes.Kind{vtypes.KindDate}, 2)
	b.Vecs[0].I64[0] = vtypes.MustParseDate("1995-06-17")
	b.Vecs[0].I64[1] = vtypes.MustParseDate("1998-12-01")
	b.SetDense(2)
	y := NewYearOf(NewCol(0, vtypes.KindDate))
	v, err := y.Eval(b)
	if err != nil || v.I64[0] != 1995 || v.I64[1] != 1998 {
		t.Fatal("year extraction wrong")
	}
}

func TestCastRelabelsAndConverts(t *testing.T) {
	b := mkBatch([]int64{7}, []float64{7.9})
	// Same class: relabel only.
	c := NewCast(NewCol(0, vtypes.KindI64), vtypes.KindDate)
	v, err := c.Eval(b)
	if err != nil || v.Kind != vtypes.KindDate || v.I64[0] != 7 {
		t.Fatal("relabel cast wrong")
	}
	// Cross class converts.
	c2 := NewCast(NewCol(1, vtypes.KindF64), vtypes.KindI64)
	v, err = c2.Eval(b)
	if err != nil || v.I64[0] != 7 {
		t.Fatal("f64→i64 cast wrong")
	}
}
