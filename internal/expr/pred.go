package expr

import (
	"fmt"

	"vectorwise/internal/primitives"
	"vectorwise/internal/vector"
	"vectorwise/internal/vtypes"
)

// Pred is a compiled predicate: it consumes the batch's live set and
// narrows it, producing a selection vector — no row is ever copied.
type Pred interface {
	// Filter narrows b's live set in place.
	Filter(b *vector.Batch) error
}

// CmpOp names a comparison operator.
type CmpOp uint8

// Comparison operators.
const (
	CmpEq CmpOp = iota
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
)

func (o CmpOp) String() string {
	return [...]string{"=", "<>", "<", "<=", ">", ">="}[o]
}

// Flip mirrors the operator for swapped operands (c OP col → col flip(OP) c).
func (o CmpOp) Flip() CmpOp {
	switch o {
	case CmpLt:
		return CmpGt
	case CmpLe:
		return CmpGe
	case CmpGt:
		return CmpLt
	case CmpGe:
		return CmpLe
	default:
		return o
	}
}

// cmpConst filters col OP literal through the Sel* kernels.
type cmpConst struct {
	expr Expr
	op   CmpOp
	val  vtypes.Value
}

// NewCmpConst compiles `e OP literal`.
func NewCmpConst(e Expr, op CmpOp, val vtypes.Value) (Pred, error) {
	ek := e.Kind().StorageClass()
	vk := val.Kind.StorageClass()
	if ek != vk {
		// Widen int literal to float or vice versa.
		switch {
		case ek == vtypes.ClassF64 && vk == vtypes.ClassI64:
			val = vtypes.F64Value(float64(val.I64))
		case ek == vtypes.ClassI64 && vk == vtypes.ClassF64:
			return nil, fmt.Errorf("expr: comparing integer column with float literal %v (cast explicitly)", val)
		default:
			return nil, fmt.Errorf("expr: cannot compare %v with %v", e.Kind(), val.Kind)
		}
	}
	if ek == vtypes.ClassBool && op != CmpEq && op != CmpNe {
		return nil, fmt.Errorf("expr: booleans only support =/<>")
	}
	return &cmpConst{expr: e, op: op, val: val}, nil
}

// Filter implements Pred.
func (p *cmpConst) Filter(b *vector.Batch) error {
	v, err := p.expr.Eval(b)
	if err != nil {
		return err
	}
	res := b.MutableSel(b.Capacity())
	var k int
	switch v.Kind.StorageClass() {
	case vtypes.ClassI64:
		k = selCmp(res, v.I64, p.val.I64, p.op, b.Sel, b.N)
	case vtypes.ClassF64:
		k = selCmp(res, v.F64, p.val.F64, p.op, b.Sel, b.N)
	case vtypes.ClassStr:
		k = selCmp(res, v.Str, p.val.Str, p.op, b.Sel, b.N)
	case vtypes.ClassBool:
		want := p.val.B
		if p.op == CmpNe {
			want = !want
		}
		if want {
			k = primitives.SelTrue(res, v.B, b.Sel, b.N)
		} else {
			k = primitives.SelFalse(res, v.B, b.Sel, b.N)
		}
	}
	b.SetSel(res, k)
	return nil
}

func selCmp[T primitives.Ordered](res []int32, a []T, c T, op CmpOp, sel []int32, n int) int {
	switch op {
	case CmpEq:
		return primitives.SelEqVC(res, a, c, sel, n)
	case CmpNe:
		return primitives.SelNeVC(res, a, c, sel, n)
	case CmpLt:
		return primitives.SelLtVC(res, a, c, sel, n)
	case CmpLe:
		return primitives.SelLeVC(res, a, c, sel, n)
	case CmpGt:
		return primitives.SelGtVC(res, a, c, sel, n)
	default:
		return primitives.SelGeVC(res, a, c, sel, n)
	}
}

// cmpCols filters colA OP colB.
type cmpCols struct {
	left, right Expr
	op          CmpOp
}

// NewCmpCols compiles `a OP b` for two expressions of one storage class.
func NewCmpCols(a Expr, op CmpOp, b Expr) (Pred, error) {
	if a.Kind().StorageClass() != b.Kind().StorageClass() {
		if a.Kind().Numeric() && b.Kind().Numeric() {
			a = NewCast(a, vtypes.KindF64)
			b = NewCast(b, vtypes.KindF64)
		} else {
			return nil, fmt.Errorf("expr: cannot compare %v with %v", a.Kind(), b.Kind())
		}
	}
	if a.Kind().StorageClass() == vtypes.ClassBool && op != CmpEq && op != CmpNe {
		return nil, fmt.Errorf("expr: booleans only support =/<>")
	}
	return &cmpCols{left: a, right: b, op: op}, nil
}

// Filter implements Pred.
func (p *cmpCols) Filter(b *vector.Batch) error {
	lv, err := p.left.Eval(b)
	if err != nil {
		return err
	}
	rv, err := p.right.Eval(b)
	if err != nil {
		return err
	}
	res := b.MutableSel(b.Capacity())
	var k int
	switch lv.Kind.StorageClass() {
	case vtypes.ClassI64:
		k = selCmpVV(res, lv.I64, rv.I64, p.op, b.Sel, b.N)
	case vtypes.ClassF64:
		k = selCmpVV(res, lv.F64, rv.F64, p.op, b.Sel, b.N)
	case vtypes.ClassStr:
		k = selCmpVV(res, lv.Str, rv.Str, p.op, b.Sel, b.N)
	case vtypes.ClassBool:
		if p.op == CmpEq {
			k = primitives.SelEqVV(res, lv.B, rv.B, b.Sel, b.N)
		} else {
			k = primitives.SelNeVV(res, lv.B, rv.B, b.Sel, b.N)
		}
	}
	b.SetSel(res, k)
	return nil
}

func selCmpVV[T primitives.Ordered](res []int32, a, b []T, op CmpOp, sel []int32, n int) int {
	switch op {
	case CmpEq:
		return primitives.SelEqVV(res, a, b, sel, n)
	case CmpNe:
		return primitives.SelNeVV(res, a, b, sel, n)
	case CmpLt:
		return primitives.SelLtVV(res, a, b, sel, n)
	case CmpLe:
		return primitives.SelLeVV(res, a, b, sel, n)
	case CmpGt:
		return primitives.SelGtVV(res, a, b, sel, n)
	default:
		return primitives.SelGeVV(res, a, b, sel, n)
	}
}

// between filters lo <= e <= hi with the fused kernel.
type between struct {
	expr   Expr
	lo, hi vtypes.Value
}

// NewBetween compiles `e BETWEEN lo AND hi`.
func NewBetween(e Expr, lo, hi vtypes.Value) (Pred, error) {
	if e.Kind().StorageClass() != lo.Kind.StorageClass() || lo.Kind.StorageClass() != hi.Kind.StorageClass() {
		return nil, fmt.Errorf("expr: BETWEEN type mismatch (%v, %v, %v)", e.Kind(), lo.Kind, hi.Kind)
	}
	return &between{expr: e, lo: lo, hi: hi}, nil
}

// Filter implements Pred.
func (p *between) Filter(b *vector.Batch) error {
	v, err := p.expr.Eval(b)
	if err != nil {
		return err
	}
	res := b.MutableSel(b.Capacity())
	var k int
	switch v.Kind.StorageClass() {
	case vtypes.ClassI64:
		k = primitives.SelBetweenVC(res, v.I64, p.lo.I64, p.hi.I64, b.Sel, b.N)
	case vtypes.ClassF64:
		k = primitives.SelBetweenVC(res, v.F64, p.lo.F64, p.hi.F64, b.Sel, b.N)
	case vtypes.ClassStr:
		k = primitives.SelBetweenVC(res, v.Str, p.lo.Str, p.hi.Str, b.Sel, b.N)
	default:
		return fmt.Errorf("expr: BETWEEN unsupported for %v", v.Kind)
	}
	b.SetSel(res, k)
	return nil
}

// like filters string LIKE pattern.
type like struct {
	expr    Expr
	pattern string
	negate  bool
}

// NewLike compiles `e [NOT] LIKE pattern`.
func NewLike(e Expr, pattern string, negate bool) (Pred, error) {
	if e.Kind().StorageClass() != vtypes.ClassStr {
		return nil, fmt.Errorf("expr: LIKE requires a string, got %v", e.Kind())
	}
	return &like{expr: e, pattern: pattern, negate: negate}, nil
}

// Filter implements Pred.
func (p *like) Filter(b *vector.Batch) error {
	v, err := p.expr.Eval(b)
	if err != nil {
		return err
	}
	res := b.MutableSel(b.Capacity())
	var k int
	if p.negate {
		k = primitives.SelNotLike(res, v.Str, p.pattern, b.Sel, b.N)
	} else {
		k = primitives.SelLike(res, v.Str, p.pattern, b.Sel, b.N)
	}
	b.SetSel(res, k)
	return nil
}

// inSet filters e IN (list).
type inSet struct {
	expr Expr
	strs []string
	i64s []int64
}

// NewInSet compiles `e IN (consts...)`.
func NewInSet(e Expr, vals []vtypes.Value) (Pred, error) {
	p := &inSet{expr: e}
	switch e.Kind().StorageClass() {
	case vtypes.ClassStr:
		for _, v := range vals {
			p.strs = append(p.strs, v.Str)
		}
	case vtypes.ClassI64:
		for _, v := range vals {
			p.i64s = append(p.i64s, v.I64)
		}
	default:
		return nil, fmt.Errorf("expr: IN unsupported for %v", e.Kind())
	}
	return p, nil
}

// Filter implements Pred.
func (p *inSet) Filter(b *vector.Batch) error {
	v, err := p.expr.Eval(b)
	if err != nil {
		return err
	}
	res := b.MutableSel(b.Capacity())
	var k int
	if p.strs != nil {
		k = primitives.SelInSet(res, v.Str, p.strs, b.Sel, b.N)
	} else {
		k = primitives.SelInSet(res, v.I64, p.i64s, b.Sel, b.N)
	}
	b.SetSel(res, k)
	return nil
}

// andPred chains conjuncts: each narrows the live set further, so later
// conjuncts run on ever-smaller selections (X100 conjunct chaining).
type andPred struct{ preds []Pred }

// NewAnd compiles a conjunction.
func NewAnd(preds ...Pred) Pred { return &andPred{preds: preds} }

// Filter implements Pred.
func (p *andPred) Filter(b *vector.Batch) error {
	for _, q := range p.preds {
		if err := q.Filter(b); err != nil {
			return err
		}
		if b.N == 0 {
			return nil
		}
	}
	return nil
}

// orPred evaluates each disjunct over the *original* live set and takes
// the union, preserving ascending order.
type orPred struct{ preds []Pred }

// NewOr compiles a disjunction.
func NewOr(preds ...Pred) Pred { return &orPred{preds: preds} }

// Filter implements Pred.
func (p *orPred) Filter(b *vector.Batch) error {
	origSel := b.Sel
	origN := b.N
	keep := make(map[int32]struct{})
	for _, q := range p.preds {
		// Restore the original live set for each disjunct.
		if origSel == nil {
			b.SetDense(origN)
		} else {
			b.Sel = origSel
			b.N = origN
		}
		if err := q.Filter(b); err != nil {
			return err
		}
		for i := 0; i < b.N; i++ {
			keep[int32(b.LiveIndex(i))] = struct{}{}
		}
	}
	res := make([]int32, 0, len(keep))
	if origSel == nil {
		for i := 0; i < origN; i++ {
			if _, ok := keep[int32(i)]; ok {
				res = append(res, int32(i))
			}
		}
	} else {
		for _, i := range origSel[:origN] {
			if _, ok := keep[i]; ok {
				res = append(res, i)
			}
		}
	}
	b.Sel = res
	b.N = len(res)
	return nil
}

// notPred selects the complement of its inner predicate within the
// current live set.
type notPred struct{ inner Pred }

// NewNot compiles a negation.
func NewNot(p Pred) Pred { return &notPred{inner: p} }

// Filter implements Pred.
func (p *notPred) Filter(b *vector.Batch) error {
	origSel := b.Sel
	origN := b.N
	if err := p.inner.Filter(b); err != nil {
		return err
	}
	matched := make(map[int32]struct{}, b.N)
	for i := 0; i < b.N; i++ {
		matched[int32(b.LiveIndex(i))] = struct{}{}
	}
	var res []int32
	if origSel == nil {
		for i := 0; i < origN; i++ {
			if _, ok := matched[int32(i)]; !ok {
				res = append(res, int32(i))
			}
		}
	} else {
		for _, i := range origSel[:origN] {
			if _, ok := matched[i]; !ok {
				res = append(res, i)
			}
		}
	}
	b.Sel = res
	b.N = len(res)
	return nil
}

// boolExprPred adapts a boolean-valued Expr (e.g. a Case) to Pred.
type boolExprPred struct{ e Expr }

// NewBoolPred adapts a boolean expression to a predicate.
func NewBoolPred(e Expr) (Pred, error) {
	if e.Kind() != vtypes.KindBool {
		return nil, fmt.Errorf("expr: predicate expression must be boolean, got %v", e.Kind())
	}
	return &boolExprPred{e: e}, nil
}

// Filter implements Pred.
func (p *boolExprPred) Filter(b *vector.Batch) error {
	v, err := p.e.Eval(b)
	if err != nil {
		return err
	}
	res := b.MutableSel(b.Capacity())
	k := primitives.SelTrue(res, v.B, b.Sel, b.N)
	b.SetSel(res, k)
	return nil
}

// CmpMap is a boolean-producing comparison Expr (used inside CASE).
type CmpMap struct {
	left, right Expr
	op          CmpOp
	buf         *vector.Vector
}

// NewCmpMap compiles `a OP b` as a boolean map expression.
func NewCmpMap(a Expr, op CmpOp, b Expr) (*CmpMap, error) {
	if a.Kind().StorageClass() != b.Kind().StorageClass() {
		if a.Kind().Numeric() && b.Kind().Numeric() {
			a = NewCast(a, vtypes.KindF64)
			b = NewCast(b, vtypes.KindF64)
		} else {
			return nil, fmt.Errorf("expr: cannot compare %v with %v", a.Kind(), b.Kind())
		}
	}
	return &CmpMap{left: a, right: b, op: op}, nil
}

// Kind implements Expr.
func (c *CmpMap) Kind() vtypes.Kind { return vtypes.KindBool }

// Eval implements Expr.
func (c *CmpMap) Eval(b *vector.Batch) (*vector.Vector, error) {
	lv, err := c.left.Eval(b)
	if err != nil {
		return nil, err
	}
	rv, err := c.right.Eval(b)
	if err != nil {
		return nil, err
	}
	if c.buf == nil || c.buf.Len() < b.Capacity() {
		c.buf = vector.New(vtypes.KindBool, b.Capacity())
	}
	n := b.N
	if n == 0 {
		return c.buf, nil
	}
	switch lv.Kind.StorageClass() {
	case vtypes.ClassI64:
		mapCmpVV(c.buf.B, lv.I64, rv.I64, c.op, b.Sel, n)
	case vtypes.ClassF64:
		mapCmpVV(c.buf.B, lv.F64, rv.F64, c.op, b.Sel, n)
	case vtypes.ClassStr:
		mapCmpVV(c.buf.B, lv.Str, rv.Str, c.op, b.Sel, n)
	case vtypes.ClassBool:
		if c.op == CmpEq {
			primitives.MapEqVV(c.buf.B, lv.B, rv.B, b.Sel, n)
		} else {
			primitives.MapNeVV(c.buf.B, lv.B, rv.B, b.Sel, n)
		}
	}
	return c.buf, nil
}

func mapCmpVV[T primitives.Ordered](dst []bool, a, b []T, op CmpOp, sel []int32, n int) {
	switch op {
	case CmpEq:
		primitives.MapEqVV(dst, a, b, sel, n)
	case CmpNe:
		primitives.MapNeVV(dst, a, b, sel, n)
	case CmpLt:
		primitives.MapLtVV(dst, a, b, sel, n)
	case CmpLe:
		primitives.MapLeVV(dst, a, b, sel, n)
	case CmpGt:
		primitives.MapLtVV(dst, b, a, sel, n)
	default:
		primitives.MapLeVV(dst, b, a, sel, n)
	}
}

// LikeMap is a boolean-producing LIKE Expr (used inside CASE, e.g. the
// promo share of TPC-H Q14).
type LikeMap struct {
	in      Expr
	pattern string
	buf     *vector.Vector
}

// NewLikeMap compiles `e LIKE pattern` as a boolean map.
func NewLikeMap(in Expr, pattern string) (*LikeMap, error) {
	if in.Kind().StorageClass() != vtypes.ClassStr {
		return nil, fmt.Errorf("expr: LIKE requires a string, got %v", in.Kind())
	}
	return &LikeMap{in: in, pattern: pattern}, nil
}

// Kind implements Expr.
func (l *LikeMap) Kind() vtypes.Kind { return vtypes.KindBool }

// Eval implements Expr.
func (l *LikeMap) Eval(b *vector.Batch) (*vector.Vector, error) {
	v, err := l.in.Eval(b)
	if err != nil {
		return nil, err
	}
	if l.buf == nil || l.buf.Len() < b.Capacity() {
		l.buf = vector.New(vtypes.KindBool, b.Capacity())
	}
	if b.N > 0 {
		primitives.MapLike(l.buf.B, v.Str, l.pattern, b.Sel, b.N)
	}
	return l.buf, nil
}
