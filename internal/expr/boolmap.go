package expr

import (
	"fmt"

	"vectorwise/internal/primitives"
	"vectorwise/internal/vector"
	"vectorwise/internal/vtypes"
)

// Boolean-map composites: AND/OR/NOT/IN/BETWEEN as value-producing
// expressions (used when a boolean expression appears inside CASE or a
// projection rather than as a top-level filter, where the selection-
// vector Pred forms are cheaper).

// AndMap computes the conjunction of boolean maps.
type AndMap struct {
	ins []Expr
	buf *vector.Vector
}

// NewAndMap compiles an AND over boolean expressions.
func NewAndMap(ins ...Expr) (*AndMap, error) {
	for _, e := range ins {
		if e.Kind() != vtypes.KindBool {
			return nil, fmt.Errorf("expr: AND operand must be boolean, got %v", e.Kind())
		}
	}
	return &AndMap{ins: ins}, nil
}

// Kind implements Expr.
func (a *AndMap) Kind() vtypes.Kind { return vtypes.KindBool }

// Eval implements Expr.
func (a *AndMap) Eval(b *vector.Batch) (*vector.Vector, error) {
	if a.buf == nil || a.buf.Len() < b.Capacity() {
		a.buf = vector.New(vtypes.KindBool, b.Capacity())
	}
	for i, e := range a.ins {
		v, err := e.Eval(b)
		if err != nil {
			return nil, err
		}
		if b.N == 0 {
			continue
		}
		if i == 0 {
			primitives.MapCopy(a.buf.B, v.B, b.Sel, b.N)
		} else {
			primitives.MapAnd(a.buf.B, a.buf.B, v.B, b.Sel, b.N)
		}
	}
	return a.buf, nil
}

// OrMap computes the disjunction of boolean maps.
type OrMap struct {
	ins []Expr
	buf *vector.Vector
}

// NewOrMap compiles an OR over boolean expressions.
func NewOrMap(ins ...Expr) (*OrMap, error) {
	for _, e := range ins {
		if e.Kind() != vtypes.KindBool {
			return nil, fmt.Errorf("expr: OR operand must be boolean, got %v", e.Kind())
		}
	}
	return &OrMap{ins: ins}, nil
}

// Kind implements Expr.
func (o *OrMap) Kind() vtypes.Kind { return vtypes.KindBool }

// Eval implements Expr.
func (o *OrMap) Eval(b *vector.Batch) (*vector.Vector, error) {
	if o.buf == nil || o.buf.Len() < b.Capacity() {
		o.buf = vector.New(vtypes.KindBool, b.Capacity())
	}
	for i, e := range o.ins {
		v, err := e.Eval(b)
		if err != nil {
			return nil, err
		}
		if b.N == 0 {
			continue
		}
		if i == 0 {
			primitives.MapCopy(o.buf.B, v.B, b.Sel, b.N)
		} else {
			primitives.MapOr(o.buf.B, o.buf.B, v.B, b.Sel, b.N)
		}
	}
	return o.buf, nil
}

// NotMap negates a boolean map.
type NotMap struct {
	in  Expr
	buf *vector.Vector
}

// NewNotMap compiles NOT over a boolean expression.
func NewNotMap(in Expr) (*NotMap, error) {
	if in.Kind() != vtypes.KindBool {
		return nil, fmt.Errorf("expr: NOT operand must be boolean, got %v", in.Kind())
	}
	return &NotMap{in: in}, nil
}

// Kind implements Expr.
func (n *NotMap) Kind() vtypes.Kind { return vtypes.KindBool }

// Eval implements Expr.
func (n *NotMap) Eval(b *vector.Batch) (*vector.Vector, error) {
	v, err := n.in.Eval(b)
	if err != nil {
		return nil, err
	}
	if n.buf == nil || n.buf.Len() < b.Capacity() {
		n.buf = vector.New(vtypes.KindBool, b.Capacity())
	}
	if b.N > 0 {
		primitives.MapNot(n.buf.B, v.B, b.Sel, b.N)
	}
	return n.buf, nil
}

// InMap computes membership as a boolean map.
type InMap struct {
	in   Expr
	strs []string
	i64s []int64
	buf  *vector.Vector
}

// NewInMap compiles `e IN (consts...)` as a boolean map.
func NewInMap(e Expr, vals []vtypes.Value) (*InMap, error) {
	m := &InMap{in: e}
	switch e.Kind().StorageClass() {
	case vtypes.ClassStr:
		for _, v := range vals {
			m.strs = append(m.strs, v.Str)
		}
	case vtypes.ClassI64:
		for _, v := range vals {
			m.i64s = append(m.i64s, v.I64)
		}
	default:
		return nil, fmt.Errorf("expr: IN unsupported for %v", e.Kind())
	}
	return m, nil
}

// Kind implements Expr.
func (m *InMap) Kind() vtypes.Kind { return vtypes.KindBool }

// Eval implements Expr.
func (m *InMap) Eval(b *vector.Batch) (*vector.Vector, error) {
	v, err := m.in.Eval(b)
	if err != nil {
		return nil, err
	}
	if m.buf == nil || m.buf.Len() < b.Capacity() {
		m.buf = vector.New(vtypes.KindBool, b.Capacity())
	}
	if b.N > 0 {
		if m.strs != nil {
			primitives.MapInSet(m.buf.B, v.Str, m.strs, b.Sel, b.N)
		} else {
			primitives.MapInSet(m.buf.B, v.I64, m.i64s, b.Sel, b.N)
		}
	}
	return m.buf, nil
}

// BetweenMap computes lo <= e <= hi as a boolean map.
type BetweenMap struct {
	in     Expr
	lo, hi vtypes.Value
	buf    *vector.Vector
}

// NewBetweenMap compiles BETWEEN as a boolean map.
func NewBetweenMap(e Expr, lo, hi vtypes.Value) (*BetweenMap, error) {
	if e.Kind().StorageClass() != lo.Kind.StorageClass() {
		return nil, fmt.Errorf("expr: BETWEEN type mismatch")
	}
	return &BetweenMap{in: e, lo: lo, hi: hi}, nil
}

// Kind implements Expr.
func (m *BetweenMap) Kind() vtypes.Kind { return vtypes.KindBool }

// Eval implements Expr.
func (m *BetweenMap) Eval(b *vector.Batch) (*vector.Vector, error) {
	v, err := m.in.Eval(b)
	if err != nil {
		return nil, err
	}
	if m.buf == nil || m.buf.Len() < b.Capacity() {
		m.buf = vector.New(vtypes.KindBool, b.Capacity())
	}
	if b.N == 0 {
		return m.buf, nil
	}
	set := func(i int32, ok bool) { m.buf.B[i] = ok }
	switch v.Kind.StorageClass() {
	case vtypes.ClassI64:
		lo, hi := m.lo.I64, m.hi.I64
		if b.Sel == nil {
			for i := 0; i < b.N; i++ {
				m.buf.B[i] = v.I64[i] >= lo && v.I64[i] <= hi
			}
		} else {
			for _, i := range b.Sel[:b.N] {
				m.buf.B[i] = v.I64[i] >= lo && v.I64[i] <= hi
			}
		}
	case vtypes.ClassF64:
		lo, hi := m.lo.F64, m.hi.F64
		if b.Sel == nil {
			for i := 0; i < b.N; i++ {
				m.buf.B[i] = v.F64[i] >= lo && v.F64[i] <= hi
			}
		} else {
			for _, i := range b.Sel[:b.N] {
				m.buf.B[i] = v.F64[i] >= lo && v.F64[i] <= hi
			}
		}
	case vtypes.ClassStr:
		lo, hi := m.lo.Str, m.hi.Str
		if b.Sel == nil {
			for i := 0; i < b.N; i++ {
				set(int32(i), v.Str[i] >= lo && v.Str[i] <= hi)
			}
		} else {
			for _, i := range b.Sel[:b.N] {
				set(i, v.Str[i] >= lo && v.Str[i] <= hi)
			}
		}
	}
	return m.buf, nil
}
