// Package matengine is the column-at-a-time, full-materialization
// baseline: MonetDB's execution model as the paper describes it — "a
// column-at-a-time processing model [that] materializes full
// intermediate results", whose "materialization may lead to very
// significant, avoidable, resource consumption" (§I-A).
//
// Each operator consumes fully materialized column relations and
// produces a new fully materialized relation: selections build entire
// new columns for the survivors, projections materialize every computed
// expression whole-column, and so on. Per-value work is as tight as the
// vectorized engine's (the loops are the same primitives); what differs
// is that every intermediate is table-sized instead of vector-sized.
// MatBytes tracks the intermediate volume for experiment C2.
package matengine

import (
	"fmt"
	"sync/atomic"

	"vectorwise/internal/algebra"
	"vectorwise/internal/catalog"
	"vectorwise/internal/pdt"
	"vectorwise/internal/primitives"
	"vectorwise/internal/storage"
	"vectorwise/internal/vector"
	"vectorwise/internal/vtypes"
)

// matBytes accumulates the bytes of materialized intermediates.
var matBytes atomic.Int64

// ResetMatBytes zeroes the intermediate-volume counter.
func ResetMatBytes() { matBytes.Store(0) }

// MatBytes returns the bytes of intermediates materialized since the
// last reset — the resource consumption the paper calls avoidable.
func MatBytes() int64 { return matBytes.Load() }

// Rel is a fully materialized relation: whole columns in memory.
type Rel struct {
	Cols []*vector.Vector
	N    int
}

// charge accounts a freshly materialized relation.
func (r *Rel) charge() *Rel {
	var b int64
	for _, c := range r.Cols {
		switch c.Kind.StorageClass() {
		case vtypes.ClassI64, vtypes.ClassF64:
			b += int64(r.N) * 8
		case vtypes.ClassStr:
			b += int64(r.N) * 16
		case vtypes.ClassBool:
			b += int64(r.N)
		}
	}
	matBytes.Add(b)
	return r
}

// Row boxes row i (results boundary).
func (r *Rel) Row(i int) vtypes.Row {
	row := make(vtypes.Row, len(r.Cols))
	for c, v := range r.Cols {
		row[c] = v.Get(i)
	}
	return row
}

// Run executes a plan column-at-a-time and returns boxed rows.
func Run(n algebra.Node, cat *catalog.Catalog) ([]vtypes.Row, error) {
	rel, err := Exec(n, cat)
	if err != nil {
		return nil, err
	}
	out := make([]vtypes.Row, rel.N)
	for i := 0; i < rel.N; i++ {
		out[i] = rel.Row(i)
	}
	return out, nil
}

// Exec evaluates a plan to a materialized relation.
func Exec(n algebra.Node, cat *catalog.Catalog) (*Rel, error) {
	switch t := n.(type) {
	case *algebra.ScanNode:
		rel, err := execScan(t, cat)
		if err != nil || len(t.Filters) == 0 {
			return rel, err
		}
		// Pushed scan filters evaluate as an ordinary selection over
		// the materialized columns: no row groups to skip, same rows
		// as the vectorized engine.
		return execSelect(&algebra.SelectNode{Pred: algebra.FiltersPred(t.Filters)}, rel)
	case *algebra.SelectNode:
		in, err := Exec(t.Input, cat)
		if err != nil {
			return nil, err
		}
		return execSelect(t, in)
	case *algebra.ProjectNode:
		in, err := Exec(t.Input, cat)
		if err != nil {
			return nil, err
		}
		return execProject(t, in)
	case *algebra.AggNode:
		in, err := Exec(t.Input, cat)
		if err != nil {
			return nil, err
		}
		return execAgg(t, in)
	case *algebra.JoinNode:
		l, err := Exec(t.Left, cat)
		if err != nil {
			return nil, err
		}
		r, err := Exec(t.Right, cat)
		if err != nil {
			return nil, err
		}
		return execJoin(t, l, r)
	case *algebra.SortNode:
		in, err := Exec(t.Input, cat)
		if err != nil {
			return nil, err
		}
		return execSort(t, in)
	case *algebra.LimitNode:
		in, err := Exec(t.Input, cat)
		if err != nil {
			return nil, err
		}
		if int64(in.N) <= t.N {
			return in, nil
		}
		out := &Rel{Cols: make([]*vector.Vector, len(in.Cols)), N: int(t.N)}
		idx := iota32(int(t.N))
		for c, v := range in.Cols {
			nv := vector.New(v.Kind, int(t.N))
			nv.GatherFrom(v, idx)
			out.Cols[c] = nv
		}
		return out.charge(), nil
	case *algebra.UnionAllNode:
		var rels []*Rel
		total := 0
		for _, in := range t.Inputs {
			r, err := Exec(in, cat)
			if err != nil {
				return nil, err
			}
			rels = append(rels, r)
			total += r.N
		}
		out := &Rel{N: total}
		for c := range rels[0].Cols {
			nv := vector.New(rels[0].Cols[c].Kind, total)
			off := 0
			for _, r := range rels {
				nv.CopyFrom(r.Cols[c], 0, off, r.N)
				off += r.N
			}
			out.Cols = append(out.Cols, nv)
		}
		return out.charge(), nil
	default:
		return nil, fmt.Errorf("matengine: unsupported node %T", n)
	}
}

func iota32(n int) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(i)
	}
	return out
}

// execScan materializes whole columns (BAT-style base access).
func execScan(t *algebra.ScanNode, cat *catalog.Catalog) (*Rel, error) {
	tbl, layers, err := cat.Resolve(t.Table)
	if err != nil {
		return nil, err
	}
	sc := storage.NewScanner(tbl, t.Cols, nil, nil, 4096)
	if t.PartHi > 0 {
		sc.SetGroupRange(t.PartLo, t.PartHi)
	}
	var src pdt.RowSource = &scannerSource{sc: sc}
	projected := tbl.Schema().Project(t.Cols)
	for _, layer := range layers {
		if layer == nil || layer.Empty() {
			continue
		}
		src = pdt.NewMergeScan(src, pdt.ProjectCols(layer, t.Cols, projected), 4096)
	}
	out := &Rel{Cols: make([]*vector.Vector, len(t.Cols))}
	for i, c := range t.Cols {
		out.Cols[i] = vector.New(tbl.Schema().Col(c).Kind, 0)
	}
	for {
		cols, n, err := src.Next()
		if err != nil {
			return nil, err
		}
		if n == 0 {
			break
		}
		for i := range out.Cols {
			appendVec(out.Cols[i], cols[i], n)
		}
		out.N += n
	}
	return out.charge(), nil
}

// scannerSource adapts storage.Scanner to pdt.PositionedSource so
// partition-restricted merges align deltas to global positions.
type scannerSource struct {
	sc  *storage.Scanner
	pos int64
}

// Next implements pdt.RowSource.
func (s *scannerSource) Next() ([]*vector.Vector, int, error) {
	vecs, pos, n, err := s.sc.Next()
	s.pos = pos
	return vecs, n, err
}

// BasePos implements pdt.PositionedSource.
func (s *scannerSource) BasePos() int64 { return s.pos }

// EndPos implements pdt.PositionedSource.
func (s *scannerSource) EndPos() int64 { return s.sc.EndPos() }

func appendVec(dst, src *vector.Vector, n int) {
	switch dst.Kind.StorageClass() {
	case vtypes.ClassI64:
		dst.I64 = append(dst.I64, src.I64[:n]...)
	case vtypes.ClassF64:
		dst.F64 = append(dst.F64, src.F64[:n]...)
	case vtypes.ClassStr:
		dst.Str = append(dst.Str, src.Str[:n]...)
	case vtypes.ClassBool:
		dst.B = append(dst.B, src.B[:n]...)
	}
	if src.Nulls != nil {
		for dst.Nulls == nil {
			dst.Nulls = make([]bool, dst.Len()-n)
		}
		dst.Nulls = append(dst.Nulls, src.Nulls[:n]...)
	} else if dst.Nulls != nil {
		dst.Nulls = append(dst.Nulls, make([]bool, n)...)
	}
}

// execSelect evaluates the predicate over the whole column set, then
// materializes the surviving rows into brand-new columns — the
// full-materialization step the vectorized engine avoids with selection
// vectors.
func execSelect(t *algebra.SelectNode, in *Rel) (*Rel, error) {
	mask, err := evalBool(t.Pred, in)
	if err != nil {
		return nil, err
	}
	sel := make([]int32, in.N)
	k := primitives.SelTrue(sel, mask, nil, in.N)
	out := &Rel{Cols: make([]*vector.Vector, len(in.Cols)), N: k}
	for c, v := range in.Cols {
		nv := vector.New(v.Kind, k)
		nv.GatherFrom(v, sel[:k])
		out.Cols[c] = nv
	}
	return out.charge(), nil
}

// execProject materializes each expression as a full column.
func execProject(t *algebra.ProjectNode, in *Rel) (*Rel, error) {
	out := &Rel{N: in.N}
	for _, e := range t.Exprs {
		col, err := evalCol(e, in)
		if err != nil {
			return nil, err
		}
		out.Cols = append(out.Cols, col)
	}
	return out.charge(), nil
}
