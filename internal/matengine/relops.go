package matengine

import (
	"sort"

	"vectorwise/internal/algebra"
	"vectorwise/internal/hashtable"
	"vectorwise/internal/vector"
	"vectorwise/internal/vtypes"
)

// execAgg groups over fully materialized key columns.
func execAgg(t *algebra.AggNode, in *Rel) (*Rel, error) {
	// Materialize group-key and argument columns whole (BAT style).
	keyCols := make([]*vector.Vector, len(t.GroupBy))
	for i, g := range t.GroupBy {
		v, err := evalCol(g, in)
		if err != nil {
			return nil, err
		}
		keyCols[i] = v
	}
	argCols := make([]*vector.Vector, len(t.Aggs))
	for i, a := range t.Aggs {
		if a.Arg == nil {
			continue
		}
		v, err := evalCol(a.Arg, in)
		if err != nil {
			return nil, err
		}
		argCols[i] = v
	}

	type group struct {
		key  vtypes.Row
		sum  []float64
		isum []int64
		cnt  []int64
		min  []vtypes.Value
		max  []vtypes.Value
	}
	ht := hashtable.New(0)
	var order []*group
	newGroup := func(key vtypes.Row) *group {
		g := &group{
			key:  key,
			sum:  make([]float64, len(t.Aggs)),
			isum: make([]int64, len(t.Aggs)),
			cnt:  make([]int64, len(t.Aggs)),
			min:  make([]vtypes.Value, len(t.Aggs)),
			max:  make([]vtypes.Value, len(t.Aggs)),
		}
		order = append(order, g)
		return g
	}

	for i := 0; i < in.N; i++ {
		key := make(vtypes.Row, len(keyCols))
		for c, v := range keyCols {
			key[c] = v.Get(i)
		}
		gid, _ := ht.Put(key.Hash(), func(v uint32) bool {
			cand := order[v]
			for c := range key {
				if !cand.key[c].Equal(key[c]) {
					return false
				}
			}
			return true
		}, func() uint32 {
			newGroup(key)
			return uint32(len(order) - 1)
		})
		g := order[gid]
		for a, spec := range t.Aggs {
			var v vtypes.Value
			if argCols[a] != nil {
				v = argCols[a].Get(i)
			}
			switch spec.Fn {
			case algebra.AggCountStar, algebra.AggCount:
				g.cnt[a]++
			case algebra.AggSum:
				if v.Kind.StorageClass() == vtypes.ClassF64 {
					g.sum[a] += v.F64
				} else {
					g.isum[a] += v.I64
				}
			case algebra.AggAvg:
				g.sum[a] += v.AsFloat()
				g.cnt[a]++
			case algebra.AggMin:
				if g.cnt[a] == 0 || v.Compare(g.min[a]) < 0 {
					g.min[a] = v
				}
				g.cnt[a]++
			case algebra.AggMax:
				if g.cnt[a] == 0 || v.Compare(g.max[a]) > 0 {
					g.max[a] = v
				}
				g.cnt[a]++
			}
		}
	}
	// Parallel partials skip the implicit global row: an empty
	// partition must contribute nothing to the recombination.
	if len(t.GroupBy) == 0 && len(order) == 0 && !t.Partial {
		newGroup(vtypes.Row{}) // appends itself to order
	}

	out := &Rel{N: len(order)}
	schema := t.Schema()
	for c := 0; c < schema.Len(); c++ {
		out.Cols = append(out.Cols, vector.New(schema.Col(c).Kind, len(order)))
	}
	for i, g := range order {
		for c := range keyCols {
			out.Cols[c].Set(i, g.key[c])
		}
		for a, spec := range t.Aggs {
			col := out.Cols[len(keyCols)+a]
			switch spec.Fn {
			case algebra.AggCountStar, algebra.AggCount:
				col.Set(i, vtypes.I64Value(g.cnt[a]))
			case algebra.AggSum:
				if spec.Arg.Kind().StorageClass() == vtypes.ClassF64 {
					col.Set(i, vtypes.F64Value(g.sum[a]))
				} else {
					col.Set(i, vtypes.I64Value(g.isum[a]))
				}
			case algebra.AggAvg:
				if g.cnt[a] == 0 {
					col.Set(i, vtypes.F64Value(0))
				} else {
					col.Set(i, vtypes.F64Value(g.sum[a]/float64(g.cnt[a])))
				}
			case algebra.AggMin:
				col.Set(i, g.min[a])
			case algebra.AggMax:
				col.Set(i, g.max[a])
			}
		}
	}
	return out.charge(), nil
}

// execJoin hash-joins two fully materialized relations.
func execJoin(t *algebra.JoinNode, l, r *Rel) (*Rel, error) {
	rKeyCols := make([]*vector.Vector, len(t.RightKeys))
	for i, k := range t.RightKeys {
		v, err := evalCol(k, r)
		if err != nil {
			return nil, err
		}
		rKeyCols[i] = v
	}
	lKeyCols := make([]*vector.Vector, len(t.LeftKeys))
	for i, k := range t.LeftKeys {
		v, err := evalCol(k, l)
		if err != nil {
			return nil, err
		}
		lKeyCols[i] = v
	}
	// Distinct build keys map to ids in the shared open-addressing
	// table; duplicate-key build rows collect under their id.
	ht := hashtable.New(r.N)
	var heads []int32    // per distinct key: representative build row
	var rowsOf [][]int32 // per distinct key: build rows in order
	rEq := func(a int, b int32) bool {
		for c := range rKeyCols {
			if !rKeyCols[c].Get(a).Equal(rKeyCols[c].Get(int(b))) {
				return false
			}
		}
		return true
	}
	for i := 0; i < r.N; i++ {
		key := make(vtypes.Row, len(rKeyCols))
		for c, v := range rKeyCols {
			key[c] = v.Get(i)
		}
		kid, _ := ht.Put(key.Hash(), func(v uint32) bool {
			return rEq(i, heads[v])
		}, func() uint32 {
			heads = append(heads, int32(i))
			rowsOf = append(rowsOf, nil)
			return uint32(len(heads) - 1)
		})
		rowsOf[kid] = append(rowsOf[kid], int32(i))
	}
	eq := func(li int, ri int32) bool {
		for c := range lKeyCols {
			if !lKeyCols[c].Get(li).Equal(rKeyCols[c].Get(int(ri))) {
				return false
			}
		}
		return true
	}
	var li32, ri32 []int32
	for i := 0; i < l.N; i++ {
		key := make(vtypes.Row, len(lKeyCols))
		for c, v := range lKeyCols {
			key[c] = v.Get(i)
		}
		kid, matched := ht.Get(key.Hash(), func(v uint32) bool {
			return eq(i, heads[v])
		})
		if matched {
			switch t.Type {
			case algebra.JoinInner, algebra.JoinLeftOuter:
				for _, ri := range rowsOf[kid] {
					li32 = append(li32, int32(i))
					ri32 = append(ri32, ri)
				}
			case algebra.JoinLeftSemi:
				li32 = append(li32, int32(i))
			}
		}
		if !matched {
			switch t.Type {
			case algebra.JoinLeftAnti:
				li32 = append(li32, int32(i))
			case algebra.JoinLeftOuter:
				li32 = append(li32, int32(i))
				ri32 = append(ri32, -1)
			}
		}
	}
	out := &Rel{N: len(li32)}
	for _, v := range l.Cols {
		nv := vector.New(v.Kind, len(li32))
		nv.GatherFrom(v, li32)
		out.Cols = append(out.Cols, nv)
	}
	if t.Type == algebra.JoinInner || t.Type == algebra.JoinLeftOuter {
		for _, v := range r.Cols {
			nv := vector.New(v.Kind, len(li32))
			for k, ri := range ri32 {
				if ri < 0 {
					nv.Set(k, vtypes.NullValue(v.Kind))
					continue
				}
				nv.CopyFrom(v, int(ri), k, 1)
			}
			out.Cols = append(out.Cols, nv)
		}
	}
	return out.charge(), nil
}

// execSort orders a materialized relation by full-column keys.
func execSort(t *algebra.SortNode, in *Rel) (*Rel, error) {
	keyCols := make([]*vector.Vector, len(t.Keys))
	for i, k := range t.Keys {
		v, err := evalCol(k.Expr, in)
		if err != nil {
			return nil, err
		}
		keyCols[i] = v
	}
	perm := make([]int32, in.N)
	for i := range perm {
		perm[i] = int32(i)
	}
	sort.SliceStable(perm, func(a, b int) bool {
		ia, ib := int(perm[a]), int(perm[b])
		for c, k := range t.Keys {
			cmp := keyCols[c].Get(ia).Compare(keyCols[c].Get(ib))
			if cmp == 0 {
				continue
			}
			if k.Desc {
				return cmp > 0
			}
			return cmp < 0
		}
		return false
	})
	out := &Rel{N: in.N}
	for _, v := range in.Cols {
		nv := vector.New(v.Kind, in.N)
		nv.GatherFrom(v, perm)
		out.Cols = append(out.Cols, nv)
	}
	return out.charge(), nil
}
