package matengine

import (
	"fmt"

	"vectorwise/internal/algebra"
	"vectorwise/internal/primitives"
	"vectorwise/internal/vector"
	"vectorwise/internal/vtypes"
)

// evalCol evaluates a scalar over the whole relation, materializing the
// result as a full column (and charging it to the intermediate counter):
// MonetDB's operator-at-a-time expression evaluation.
func evalCol(s algebra.Scalar, in *Rel) (*vector.Vector, error) {
	n := in.N
	switch t := s.(type) {
	case *algebra.ColRef:
		return in.Cols[t.Idx], nil // base column: not an intermediate
	case *algebra.Lit:
		out := vector.New(t.Val.Kind, n)
		for i := 0; i < n; i++ {
			out.Set(i, t.Val)
		}
		chargeCol(out, n)
		return out, nil
	case *algebra.Arith:
		l, err := evalNumeric(t.L, in, t.K)
		if err != nil {
			return nil, err
		}
		r, err := evalNumeric(t.R, in, t.K)
		if err != nil {
			return nil, err
		}
		out := vector.New(t.K, n)
		if n > 0 {
			switch t.K.StorageClass() {
			case vtypes.ClassF64:
				switch t.Op {
				case algebra.OpAdd:
					primitives.MapAddVV(out.F64, l.F64, r.F64, nil, n)
				case algebra.OpSub:
					primitives.MapSubVV(out.F64, l.F64, r.F64, nil, n)
				case algebra.OpMul:
					primitives.MapMulVV(out.F64, l.F64, r.F64, nil, n)
				default:
					primitives.MapDivVV(out.F64, l.F64, r.F64, nil, n)
				}
			default:
				switch t.Op {
				case algebra.OpAdd:
					primitives.MapAddVV(out.I64, l.I64, r.I64, nil, n)
				case algebra.OpSub:
					primitives.MapSubVV(out.I64, l.I64, r.I64, nil, n)
				case algebra.OpMul:
					primitives.MapMulVV(out.I64, l.I64, r.I64, nil, n)
				default:
					primitives.MapDivVV(out.I64, l.I64, r.I64, nil, n)
				}
			}
		}
		chargeCol(out, n)
		return out, nil
	case *algebra.Cast:
		v, err := evalCol(t.In, in)
		if err != nil {
			return nil, err
		}
		if v.Kind.StorageClass() == t.To.StorageClass() {
			out := *v
			out.Kind = t.To
			return &out, nil
		}
		out := vector.New(t.To, n)
		if n > 0 {
			if t.To.StorageClass() == vtypes.ClassF64 {
				primitives.MapI64ToF64(out.F64, v.I64, nil, n)
			} else {
				primitives.MapF64ToI64(out.I64, v.F64, nil, n)
			}
		}
		chargeCol(out, n)
		return out, nil
	case *algebra.YearOf:
		v, err := evalCol(t.In, in)
		if err != nil {
			return nil, err
		}
		out := vector.New(vtypes.KindI64, n)
		for i := 0; i < n; i++ {
			out.I64[i] = vtypes.Year(v.I64[i])
		}
		chargeCol(out, n)
		return out, nil
	case *algebra.Case:
		cond, err := evalBool(t.Cond, in)
		if err != nil {
			return nil, err
		}
		then, err := evalNumericOrSame(t.Then, in, t.K)
		if err != nil {
			return nil, err
		}
		el, err := evalNumericOrSame(t.Else, in, t.K)
		if err != nil {
			return nil, err
		}
		out := vector.New(t.K, n)
		switch t.K.StorageClass() {
		case vtypes.ClassF64:
			for i := 0; i < n; i++ {
				if cond[i] {
					out.F64[i] = then.F64[i]
				} else {
					out.F64[i] = el.F64[i]
				}
			}
		case vtypes.ClassI64:
			for i := 0; i < n; i++ {
				if cond[i] {
					out.I64[i] = then.I64[i]
				} else {
					out.I64[i] = el.I64[i]
				}
			}
		default:
			for i := 0; i < n; i++ {
				if cond[i] {
					out.CopyFrom(then, i, i, 1)
				} else {
					out.CopyFrom(el, i, i, 1)
				}
			}
		}
		chargeCol(out, n)
		return out, nil
	default:
		// Boolean scalars as value columns.
		if s.Kind() == vtypes.KindBool {
			mask, err := evalBool(s, in)
			if err != nil {
				return nil, err
			}
			out := vector.New(vtypes.KindBool, n)
			copy(out.B, mask)
			chargeCol(out, n)
			return out, nil
		}
		return nil, fmt.Errorf("matengine: unsupported scalar %T", s)
	}
}

// evalNumeric evaluates and widens to the target numeric kind.
func evalNumeric(s algebra.Scalar, in *Rel, to vtypes.Kind) (*vector.Vector, error) {
	v, err := evalCol(s, in)
	if err != nil {
		return nil, err
	}
	if v.Kind.StorageClass() == to.StorageClass() {
		return v, nil
	}
	out := vector.New(to, in.N)
	if in.N > 0 {
		if to.StorageClass() == vtypes.ClassF64 {
			primitives.MapI64ToF64(out.F64, v.I64, nil, in.N)
		} else {
			primitives.MapF64ToI64(out.I64, v.F64, nil, in.N)
		}
	}
	chargeCol(out, in.N)
	return out, nil
}

func evalNumericOrSame(s algebra.Scalar, in *Rel, to vtypes.Kind) (*vector.Vector, error) {
	if to.Numeric() {
		return evalNumeric(s, in, to)
	}
	return evalCol(s, in)
}

// evalBool evaluates a boolean scalar to a whole-column mask.
func evalBool(s algebra.Scalar, in *Rel) ([]bool, error) {
	n := in.N
	out := make([]bool, n)
	switch t := s.(type) {
	case *algebra.Cmp:
		l, err := evalCol(t.L, in)
		if err != nil {
			return nil, err
		}
		r, err := evalCol(t.R, in)
		if err != nil {
			return nil, err
		}
		if l.Kind.StorageClass() != r.Kind.StorageClass() {
			if l.Kind.Numeric() && r.Kind.Numeric() {
				l, err = evalNumeric(t.L, in, vtypes.KindF64)
				if err != nil {
					return nil, err
				}
				r, err = evalNumeric(t.R, in, vtypes.KindF64)
				if err != nil {
					return nil, err
				}
			} else {
				return nil, fmt.Errorf("matengine: compare %v vs %v", l.Kind, r.Kind)
			}
		}
		if n == 0 {
			return out, nil
		}
		switch l.Kind.StorageClass() {
		case vtypes.ClassI64:
			mapCmp(out, l.I64, r.I64, t.Op, n)
		case vtypes.ClassF64:
			mapCmp(out, l.F64, r.F64, t.Op, n)
		case vtypes.ClassStr:
			mapCmp(out, l.Str, r.Str, t.Op, n)
		case vtypes.ClassBool:
			if t.Op == algebra.CmpEq {
				primitives.MapEqVV(out, l.B, r.B, nil, n)
			} else {
				primitives.MapNeVV(out, l.B, r.B, nil, n)
			}
		}
		chargeMask(n)
		return out, nil
	case *algebra.Between:
		v, err := evalCol(t.In, in)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			val := v.Get(i)
			out[i] = !val.Null && val.Compare(t.Lo) >= 0 && val.Compare(t.Hi) <= 0
		}
		chargeMask(n)
		return out, nil
	case *algebra.Like:
		v, err := evalCol(t.In, in)
		if err != nil {
			return nil, err
		}
		if n > 0 {
			primitives.MapLike(out, v.Str, t.Pattern, nil, n)
		}
		if t.Negate {
			primitives.MapNot(out, out, nil, n)
		}
		chargeMask(n)
		return out, nil
	case *algebra.In:
		v, err := evalCol(t.In, in)
		if err != nil {
			return nil, err
		}
		switch v.Kind.StorageClass() {
		case vtypes.ClassStr:
			set := make([]string, len(t.List))
			for i, c := range t.List {
				set[i] = c.Str
			}
			primitives.MapInSet(out, v.Str, set, nil, n)
		case vtypes.ClassI64:
			set := make([]int64, len(t.List))
			for i, c := range t.List {
				set[i] = c.I64
			}
			primitives.MapInSet(out, v.I64, set, nil, n)
		default:
			return nil, fmt.Errorf("matengine: IN over %v", v.Kind)
		}
		chargeMask(n)
		return out, nil
	case *algebra.And:
		for pi, p := range t.Preds {
			m, err := evalBool(p, in)
			if err != nil {
				return nil, err
			}
			if pi == 0 {
				copy(out, m)
			} else if n > 0 {
				primitives.MapAnd(out, out, m, nil, n)
			}
		}
		chargeMask(n)
		return out, nil
	case *algebra.Or:
		for pi, p := range t.Preds {
			m, err := evalBool(p, in)
			if err != nil {
				return nil, err
			}
			if pi == 0 {
				copy(out, m)
			} else if n > 0 {
				primitives.MapOr(out, out, m, nil, n)
			}
		}
		chargeMask(n)
		return out, nil
	case *algebra.Not:
		m, err := evalBool(t.In, in)
		if err != nil {
			return nil, err
		}
		if n > 0 {
			primitives.MapNot(out, m, nil, n)
		}
		chargeMask(n)
		return out, nil
	case *algebra.IsNull:
		col, ok := t.In.(*algebra.ColRef)
		if !ok {
			return nil, fmt.Errorf("matengine: IS NULL on columns only")
		}
		v := in.Cols[col.Idx]
		for i := 0; i < n; i++ {
			isn := v.Nulls != nil && v.Nulls[i]
			out[i] = isn != t.Negate
		}
		chargeMask(n)
		return out, nil
	default:
		return nil, fmt.Errorf("matengine: unsupported boolean scalar %T", s)
	}
}

func mapCmp[T primitives.Ordered](dst []bool, a, b []T, op algebra.CmpOp, n int) {
	switch op {
	case algebra.CmpEq:
		primitives.MapEqVV(dst, a, b, nil, n)
	case algebra.CmpNe:
		primitives.MapNeVV(dst, a, b, nil, n)
	case algebra.CmpLt:
		primitives.MapLtVV(dst, a, b, nil, n)
	case algebra.CmpLe:
		primitives.MapLeVV(dst, a, b, nil, n)
	case algebra.CmpGt:
		primitives.MapLtVV(dst, b, a, nil, n)
	default:
		primitives.MapLeVV(dst, b, a, nil, n)
	}
}

func chargeCol(v *vector.Vector, n int) {
	switch v.Kind.StorageClass() {
	case vtypes.ClassI64, vtypes.ClassF64:
		matBytes.Add(int64(n) * 8)
	case vtypes.ClassStr:
		matBytes.Add(int64(n) * 16)
	case vtypes.ClassBool:
		matBytes.Add(int64(n))
	}
}

func chargeMask(n int) { matBytes.Add(int64(n)) }
