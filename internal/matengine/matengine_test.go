package matengine

import (
	"testing"

	"vectorwise/internal/algebra"
	"vectorwise/internal/catalog"
	"vectorwise/internal/storage"
	"vectorwise/internal/vtypes"
)

func buildCat(t *testing.T, rows int) *catalog.Catalog {
	t.Helper()
	schema := vtypes.NewSchema(
		vtypes.Column{Name: "k", Kind: vtypes.KindI64},
		vtypes.Column{Name: "v", Kind: vtypes.KindF64},
	)
	b := storage.NewBuilder("t", schema, 64)
	for i := 0; i < rows; i++ {
		if err := b.AppendRow(vtypes.Row{vtypes.I64Value(int64(i)), vtypes.F64Value(float64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	tbl, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	cat := catalog.New()
	cat.Put(tbl)
	return cat
}

func scanT() *algebra.ScanNode {
	return &algebra.ScanNode{Table: "t", Cols: []int{0, 1},
		Out: vtypes.NewSchema(
			vtypes.Column{Name: "k", Kind: vtypes.KindI64},
			vtypes.Column{Name: "v", Kind: vtypes.KindF64})}
}

func TestScanMaterializesWholeColumns(t *testing.T) {
	cat := buildCat(t, 500)
	rel, err := Exec(scanT(), cat)
	if err != nil {
		t.Fatal(err)
	}
	if rel.N != 500 || len(rel.Cols) != 2 || rel.Cols[0].Len() != 500 {
		t.Fatalf("scan rel: %d rows %d cols", rel.N, len(rel.Cols))
	}
}

func TestMatBytesAccountsIntermediates(t *testing.T) {
	cat := buildCat(t, 1000)
	ResetMatBytes()
	plan := &algebra.SelectNode{
		Input: scanT(),
		Pred:  &algebra.Cmp{Op: algebra.CmpLt, L: &algebra.ColRef{Idx: 0, K: vtypes.KindI64}, R: &algebra.Lit{Val: vtypes.I64Value(500)}},
	}
	rel, err := Exec(plan, cat)
	if err != nil {
		t.Fatal(err)
	}
	if rel.N != 500 {
		t.Fatalf("select rel: %d", rel.N)
	}
	// Base scan (1000×16B) + mask (1000B) + filtered copy (500×16B):
	// the counter must register at least the table-sized intermediates.
	if MatBytes() < 16_000 {
		t.Fatalf("MatBytes = %d, expected table-scale intermediates", MatBytes())
	}
	before := MatBytes()
	ResetMatBytes()
	if MatBytes() != 0 || before == 0 {
		t.Fatal("ResetMatBytes broken")
	}
}

func TestLimitAndUnion(t *testing.T) {
	cat := buildCat(t, 100)
	lim := &algebra.LimitNode{Input: scanT(), N: 7}
	rel, err := Exec(lim, cat)
	if err != nil || rel.N != 7 {
		t.Fatalf("limit: %d %v", rel.N, err)
	}
	// Limit larger than input passes through.
	lim2 := &algebra.LimitNode{Input: scanT(), N: 1000}
	rel, err = Exec(lim2, cat)
	if err != nil || rel.N != 100 {
		t.Fatalf("limit passthrough: %d %v", rel.N, err)
	}
	union := &algebra.UnionAllNode{Inputs: []algebra.Node{scanT(), scanT()}}
	rel, err = Exec(union, cat)
	if err != nil || rel.N != 200 {
		t.Fatalf("union: %d %v", rel.N, err)
	}
}

func TestRunBoxesRows(t *testing.T) {
	cat := buildCat(t, 5)
	rows, err := Run(scanT(), cat)
	if err != nil || len(rows) != 5 || rows[4][0].I64 != 4 {
		t.Fatalf("run: %v %v", rows, err)
	}
}
