package storage

import (
	"fmt"

	"vectorwise/internal/compress"
	"vectorwise/internal/vtypes"
)

// Builder accumulates rows column-wise and flushes them into compressed
// row groups, choosing a codec per chunk (the per-chunk adaptivity of
// the Vectorwise storage layer: a sorted key column gets PFOR-DELTA
// while a status column in the same group gets RLE or PDICT).
type Builder struct {
	name      string
	schema    *vtypes.Schema
	groupRows int

	// Column accumulators for the group under construction.
	i64s  [][]int64
	f64s  [][]float64
	strs  [][]string
	bools [][]bool
	nulls [][]bool
	n     int

	meta TableMeta
	data []byte
}

// NewBuilder creates a builder for the named table. groupRows <= 0
// selects DefaultGroupRows.
func NewBuilder(name string, schema *vtypes.Schema, groupRows int) *Builder {
	if groupRows <= 0 {
		groupRows = DefaultGroupRows
	}
	b := &Builder{
		name:      name,
		schema:    schema,
		groupRows: groupRows,
		i64s:      make([][]int64, schema.Len()),
		f64s:      make([][]float64, schema.Len()),
		strs:      make([][]string, schema.Len()),
		bools:     make([][]bool, schema.Len()),
		nulls:     make([][]bool, schema.Len()),
	}
	b.meta.Name = name
	b.meta.Cols = schema.Clone().Cols
	return b
}

// AppendRow adds one row. Values must match the schema kinds; NULLs are
// allowed only in nullable columns.
func (b *Builder) AppendRow(row vtypes.Row) error {
	if len(row) != b.schema.Len() {
		return fmt.Errorf("storage: row arity %d != schema arity %d", len(row), b.schema.Len())
	}
	for c, col := range b.schema.Cols {
		v := row[c]
		if v.Null {
			if !col.Nullable {
				return fmt.Errorf("storage: NULL in non-nullable column %q", col.Name)
			}
			b.nulls[c] = append(b.nulls[c], true)
			// Store the safe value (zero of the class).
			switch col.Kind.StorageClass() {
			case vtypes.ClassI64:
				b.i64s[c] = append(b.i64s[c], 0)
			case vtypes.ClassF64:
				b.f64s[c] = append(b.f64s[c], 0)
			case vtypes.ClassStr:
				b.strs[c] = append(b.strs[c], "")
			case vtypes.ClassBool:
				b.bools[c] = append(b.bools[c], false)
			}
			continue
		}
		if v.Kind.StorageClass() != col.Kind.StorageClass() {
			return fmt.Errorf("storage: column %q: kind %v incompatible with %v", col.Name, v.Kind, col.Kind)
		}
		if col.Nullable {
			b.nulls[c] = append(b.nulls[c], false)
		}
		switch col.Kind.StorageClass() {
		case vtypes.ClassI64:
			b.i64s[c] = append(b.i64s[c], v.I64)
		case vtypes.ClassF64:
			b.f64s[c] = append(b.f64s[c], v.F64)
		case vtypes.ClassStr:
			b.strs[c] = append(b.strs[c], v.Str)
		case vtypes.ClassBool:
			b.bools[c] = append(b.bools[c], v.B)
		}
	}
	b.n++
	if b.n >= b.groupRows {
		return b.flushGroup()
	}
	return nil
}

// appendChunk compresses payload bytes into the data section and returns
// its ChunkMeta.
func (b *Builder) appendChunk(raw []byte, codec compress.Codec) ChunkMeta {
	off := int64(len(b.data))
	b.data = append(b.data, raw...)
	return ChunkMeta{Codec: codec, Offset: off, Len: int64(len(raw))}
}

// flushGroup compresses the accumulated columns into a row group.
func (b *Builder) flushGroup() error {
	if b.n == 0 {
		return nil
	}
	grp := GroupMeta{Rows: b.n}
	anyNullable := false
	for _, col := range b.schema.Cols {
		if col.Nullable {
			anyNullable = true
		}
	}
	if anyNullable {
		grp.NullCols = make([]ChunkMeta, b.schema.Len())
	}
	for c, col := range b.schema.Cols {
		var cm ChunkMeta
		switch col.Kind.StorageClass() {
		case vtypes.ClassI64:
			vals := b.i64s[c]
			codec := compress.ChooseI64Codec(vals)
			raw, err := compress.CompressI64(vals, codec)
			if err != nil {
				return err
			}
			cm = b.appendChunk(raw, codec)
			cm.HasStats = true
			cm.MinI64, cm.MaxI64 = minMaxI64(vals)
			b.i64s[c] = vals[:0]
		case vtypes.ClassF64:
			vals := b.f64s[c]
			raw, err := compress.CompressF64(vals)
			if err != nil {
				return err
			}
			cm = b.appendChunk(raw, compress.CodecPlainF64)
			cm.HasStats = true
			cm.MinF64, cm.MaxF64 = minMaxF64(vals)
			b.f64s[c] = vals[:0]
		case vtypes.ClassStr:
			vals := b.strs[c]
			codec := compress.ChooseStrCodec(vals)
			raw, err := compress.CompressStr(vals, codec)
			if err != nil {
				return err
			}
			// CompressStr may have fallen back; record the actual codec.
			actual, _, _, _ := compress.ReadHeader(raw)
			cm = b.appendChunk(raw, actual)
			cm.HasStats = true
			cm.MinStr, cm.MaxStr = minMaxStr(vals)
			b.strs[c] = vals[:0]
		case vtypes.ClassBool:
			vals := b.bools[c]
			raw, err := compress.CompressBool(vals)
			if err != nil {
				return err
			}
			cm = b.appendChunk(raw, compress.CodecBoolPack)
			b.bools[c] = vals[:0]
		}
		grp.Cols = append(grp.Cols, cm)
		if col.Nullable {
			raw, err := compress.CompressBool(b.nulls[c])
			if err != nil {
				return err
			}
			grp.NullCols[c] = b.appendChunk(raw, compress.CodecBoolPack)
			b.nulls[c] = b.nulls[c][:0]
		}
	}
	b.meta.Groups = append(b.meta.Groups, grp)
	b.meta.Rows += int64(b.n)
	b.n = 0
	return nil
}

// Finish flushes the final partial group and returns the built table.
func (b *Builder) Finish() (*Table, error) {
	if err := b.flushGroup(); err != nil {
		return nil, err
	}
	return &Table{Meta: b.meta, data: b.data}, nil
}

func minMaxI64(vals []int64) (mn, mx int64) {
	if len(vals) == 0 {
		return 0, 0
	}
	mn, mx = vals[0], vals[0]
	for _, v := range vals[1:] {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	return mn, mx
}

func minMaxF64(vals []float64) (mn, mx float64) {
	if len(vals) == 0 {
		return 0, 0
	}
	mn, mx = vals[0], vals[0]
	for _, v := range vals[1:] {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	return mn, mx
}

func minMaxStr(vals []string) (mn, mx string) {
	if len(vals) == 0 {
		return "", ""
	}
	mn, mx = vals[0], vals[0]
	for _, v := range vals[1:] {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	return mn, mx
}

// colLen returns the length of a raw column slice, or -1 for an
// unsupported slice type.
func colLen(c any) int {
	switch s := c.(type) {
	case []int64:
		return len(s)
	case []float64:
		return len(s)
	case []string:
		return len(s)
	case []bool:
		return len(s)
	}
	return -1
}

// AppendColumns bulk-appends complete column slices — []int64 (BIGINT,
// DATE), []float64, []string, []bool — without boxing values into rows:
// the columnar fast path of the bulk loader. All slices must have equal
// length and match their schema column's storage class; nulls may be nil
// (no NULLs anywhere), or hold a nil or row-length slice per column.
// Rows are accumulated chunk-at-a-time, so each full group still flushes
// with its own codec choice and min/max statistics.
func (b *Builder) AppendColumns(cols []any, nulls [][]bool) (int64, error) {
	if len(cols) != b.schema.Len() {
		return 0, fmt.Errorf("storage: %d column slices for %d schema columns", len(cols), b.schema.Len())
	}
	if nulls != nil && len(nulls) != b.schema.Len() {
		return 0, fmt.Errorf("storage: %d null slices for %d schema columns", len(nulls), b.schema.Len())
	}
	rows := -1
	for i, c := range cols {
		l := colLen(c)
		if l < 0 {
			return 0, fmt.Errorf("storage: column %d has unsupported slice type %T", i, c)
		}
		if rows == -1 {
			rows = l
		} else if rows != l {
			return 0, fmt.Errorf("storage: column %d has %d rows, want %d", i, l, rows)
		}
		col := b.schema.Col(i)
		okType := false
		switch col.Kind.StorageClass() {
		case vtypes.ClassI64:
			_, okType = c.([]int64)
		case vtypes.ClassF64:
			_, okType = c.([]float64)
		case vtypes.ClassStr:
			_, okType = c.([]string)
		case vtypes.ClassBool:
			_, okType = c.([]bool)
		}
		if !okType {
			return 0, fmt.Errorf("storage: column %q: slice type %T incompatible with %v", col.Name, c, col.Kind)
		}
		if nulls != nil && nulls[i] != nil {
			if len(nulls[i]) != rows {
				return 0, fmt.Errorf("storage: column %q: %d null flags for %d rows", col.Name, len(nulls[i]), rows)
			}
			if !col.Nullable {
				for r, isNull := range nulls[i] {
					if isNull {
						return 0, fmt.Errorf("storage: row %d: NULL in non-nullable column %q", r+1, col.Name)
					}
				}
			}
		}
	}
	if rows <= 0 {
		return 0, nil
	}
	for r := 0; r < rows; r++ {
		for c, col := range b.schema.Cols {
			isNull := nulls != nil && nulls[c] != nil && nulls[c][r]
			if col.Nullable {
				b.nulls[c] = append(b.nulls[c], isNull)
			}
			switch s := cols[c].(type) {
			case []int64:
				b.i64s[c] = append(b.i64s[c], s[r])
			case []float64:
				b.f64s[c] = append(b.f64s[c], s[r])
			case []string:
				b.strs[c] = append(b.strs[c], s[r])
			case []bool:
				b.bools[c] = append(b.bools[c], s[r])
			}
		}
		b.n++
		if b.n >= b.groupRows {
			if err := b.flushGroup(); err != nil {
				return 0, err
			}
		}
	}
	return int64(rows), nil
}

// AppendTable adopts another table's row groups wholesale: the raw
// compressed chunks are copied byte-for-byte with their offsets
// rebased, so no decompression, boxing or re-encoding happens. This is
// how the bulk loader carries an existing clean table into a rebuild in
// O(bytes) instead of O(rows × columns). The source schema must match,
// and no partial group may be buffered (adopted groups keep their
// original row ranges).
func (b *Builder) AppendTable(t *Table) error {
	if b.n != 0 {
		return fmt.Errorf("storage: AppendTable with %d buffered rows (flush boundary required)", b.n)
	}
	src := t.Schema()
	if src.Len() != b.schema.Len() {
		return fmt.Errorf("storage: AppendTable schema arity %d != %d", src.Len(), b.schema.Len())
	}
	for i, col := range b.schema.Cols {
		sc := src.Col(i)
		if sc.Name != col.Name || sc.Kind != col.Kind || sc.Nullable != col.Nullable {
			return fmt.Errorf("storage: AppendTable column %d: %+v != %+v", i, sc, col)
		}
	}
	base := int64(len(b.data))
	b.data = append(b.data, t.data...)
	shift := func(cm ChunkMeta) ChunkMeta {
		if cm.Len > 0 {
			cm.Offset += base
		}
		return cm
	}
	for _, g := range t.Meta.Groups {
		ng := GroupMeta{Rows: g.Rows, Cols: make([]ChunkMeta, len(g.Cols))}
		for i, cm := range g.Cols {
			ng.Cols[i] = shift(cm)
		}
		if g.NullCols != nil {
			ng.NullCols = make([]ChunkMeta, len(g.NullCols))
			for i, cm := range g.NullCols {
				ng.NullCols[i] = shift(cm)
			}
		}
		b.meta.Groups = append(b.meta.Groups, ng)
	}
	b.meta.Rows += t.Meta.Rows
	return nil
}

// BuildFromColumns constructs a table directly from complete column
// slices (bulk load path used by the TPC-H generator). All value slices
// must have equal length; nulls may be nil (meaning no NULLs) or a
// per-column slice matching the row count.
func BuildFromColumns(name string, schema *vtypes.Schema, groupRows int, cols []any, nulls [][]bool) (*Table, error) {
	b := NewBuilder(name, schema, groupRows)
	if _, err := b.AppendColumns(cols, nulls); err != nil {
		return nil, err
	}
	return b.Finish()
}
