package storage

import "os"

// osWriteFile indirection keeps the main test file free of direct os
// imports beyond what it needs.
func osWriteFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
