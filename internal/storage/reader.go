package storage

import (
	"fmt"
	"sync/atomic"

	"vectorwise/internal/compress"
	"vectorwise/internal/vector"
	"vectorwise/internal/vtypes"
)

// DecodeChunk decompresses the value chunk (and indicator chunk, if any)
// of column c in group g into a full-group vector.
func (t *Table) DecodeChunk(g, c int) (*vector.Vector, error) {
	col := t.Meta.Cols[c]
	v := &vector.Vector{Kind: col.Kind}
	raw := t.RawChunk(g, c)
	var err error
	switch col.Kind.StorageClass() {
	case vtypes.ClassI64:
		v.I64, err = compress.DecompressI64(nil, raw)
	case vtypes.ClassF64:
		v.F64, err = compress.DecompressF64(nil, raw)
	case vtypes.ClassStr:
		v.Str, err = compress.DecompressStr(nil, raw)
	case vtypes.ClassBool:
		v.B, err = compress.DecompressBool(nil, raw)
	default:
		return nil, fmt.Errorf("storage: column %q has invalid kind", col.Name)
	}
	if err != nil {
		return nil, fmt.Errorf("storage: decode %s group %d col %d: %w", t.Meta.Name, g, c, err)
	}
	if nraw := t.RawNullChunk(g, c); nraw != nil {
		v.Nulls, err = compress.DecompressBool(nil, nraw)
		if err != nil {
			return nil, fmt.Errorf("storage: decode nulls %s group %d col %d: %w", t.Meta.Name, g, c, err)
		}
	}
	return v, nil
}

// ChunkFetcher abstracts chunk access so a buffer manager can interpose
// caching and I/O accounting between scans and table data.
type ChunkFetcher interface {
	// FetchColumn returns the decompressed column chunk of (group, col).
	// The returned vector is shared; callers must treat it as read-only.
	FetchColumn(t *Table, group, col int) (*vector.Vector, error)
}

// DirectFetcher decodes chunks on every access, bypassing any cache.
type DirectFetcher struct{}

// FetchColumn implements ChunkFetcher.
func (DirectFetcher) FetchColumn(t *Table, group, col int) (*vector.Vector, error) {
	return t.DecodeChunk(group, col)
}

// PruneFn decides whether row group g can be skipped based on its chunk
// statistics. Returning true skips the group without decompressing any
// of its chunks. The group index lets delta-aware callers map the group
// to its global row range.
type PruneFn func(g int, grp *GroupMeta) bool

// ScanStats counts row-group outcomes across the scans of one query (or
// one DB, for cumulative accounting). Partition scans of a parallel
// plan share one ScanStats, so the fields are atomic.
type ScanStats struct {
	// GroupsScanned counts row groups actually decompressed.
	GroupsScanned atomic.Int64
	// GroupsPruned counts row groups skipped by statistics.
	GroupsPruned atomic.Int64
}

// Add accumulates a snapshot into the stats (per-query → cumulative).
func (s *ScanStats) Add(snap ScanStatsSnapshot) {
	s.GroupsScanned.Add(snap.GroupsScanned)
	s.GroupsPruned.Add(snap.GroupsPruned)
}

// Snapshot returns a plain-value copy for reporting.
func (s *ScanStats) Snapshot() ScanStatsSnapshot {
	return ScanStatsSnapshot{
		GroupsScanned: s.GroupsScanned.Load(),
		GroupsPruned:  s.GroupsPruned.Load(),
	}
}

// ScanStatsSnapshot is the JSON-friendly form of ScanStats.
type ScanStatsSnapshot struct {
	GroupsScanned int64 `json:"groups_scanned"`
	GroupsPruned  int64 `json:"groups_pruned"`
}

// Scanner iterates a table's row groups column-wise, serving vectors of
// at most vecSize rows. It reports the global start position of every
// batch so callers (the PDT merge scan) can align positional deltas.
type Scanner struct {
	t       *Table
	cols    []int
	fetch   ChunkFetcher
	prune   PruneFn
	stats   *ScanStats
	vecSize int

	g    int
	off  int   // offset within current group
	base int64 // global position of current group start
	cur  []*vector.Vector

	gLo, gHi int // group range [gLo, gHi); gHi == 0 means all groups
}

// NewScanner creates a scanner over the given column indexes. fetch may
// be nil (DirectFetcher); prune may be nil (no pruning); vecSize <= 0
// selects vector.DefaultSize.
func NewScanner(t *Table, cols []int, fetch ChunkFetcher, prune PruneFn, vecSize int) *Scanner {
	if fetch == nil {
		fetch = DirectFetcher{}
	}
	if vecSize <= 0 {
		vecSize = vector.DefaultSize
	}
	return &Scanner{t: t, cols: cols, fetch: fetch, prune: prune, vecSize: vecSize}
}

// SetStats installs a row-group outcome counter (may be shared across
// the partition scanners of one query; nil disables counting).
func (s *Scanner) SetStats(st *ScanStats) { s.stats = st }

// Next returns the next batch of column vectors (views into the group
// chunks), the global row position of the first row, and the row count.
// n == 0 signals end of table.
func (s *Scanner) Next() (vecs []*vector.Vector, pos int64, n int, err error) {
	limit := s.t.Groups()
	if s.gHi > 0 && s.gHi < limit {
		limit = s.gHi
	}
	for {
		if s.g >= limit {
			return nil, 0, 0, nil
		}
		grp := &s.t.Meta.Groups[s.g]
		if s.cur == nil {
			if s.prune != nil && s.prune(s.g, grp) {
				if s.stats != nil {
					s.stats.GroupsPruned.Add(1)
				}
				s.base += int64(grp.Rows)
				s.g++
				continue
			}
			if s.stats != nil {
				s.stats.GroupsScanned.Add(1)
			}
			s.cur = make([]*vector.Vector, len(s.cols))
			for i, c := range s.cols {
				v, ferr := s.fetch.FetchColumn(s.t, s.g, c)
				if ferr != nil {
					return nil, 0, 0, ferr
				}
				s.cur[i] = v
			}
		}
		if s.off >= grp.Rows {
			s.base += int64(grp.Rows)
			s.g++
			s.off = 0
			s.cur = nil
			continue
		}
		n = grp.Rows - s.off
		if n > s.vecSize {
			n = s.vecSize
		}
		out := make([]*vector.Vector, len(s.cur))
		for i, v := range s.cur {
			out[i] = sliceRange(v, s.off, s.off+n)
		}
		pos = s.base + int64(s.off)
		s.off += n
		return out, pos, n, nil
	}
}

// EndPos returns the exclusive global position bound of the scan's
// range: the table's row count, or the end of the group range for
// partition scans.
func (s *Scanner) EndPos() int64 {
	limit := s.t.Groups()
	if s.gHi > 0 && s.gHi < limit {
		limit = s.gHi
	}
	var end int64
	for g := 0; g < limit; g++ {
		end += int64(s.t.GroupRows(g))
	}
	return end
}

// Reset rewinds the scanner to the beginning of the table (or of its
// group range, if one was set).
func (s *Scanner) Reset() {
	s.g, s.off, s.base, s.cur = s.gLo, 0, 0, nil
	for i := 0; i < s.gLo; i++ {
		s.base += int64(s.t.GroupRows(i))
	}
}

// SetGroupRange restricts the scanner to row groups [lo, hi) — the
// partitioning unit of parallel scans. Positions remain global.
func (s *Scanner) SetGroupRange(lo, hi int) {
	if hi > s.t.Groups() {
		hi = s.t.Groups()
	}
	if lo < 0 {
		lo = 0
	}
	s.gLo, s.gHi = lo, hi
	s.Reset()
}

// sliceRange views v[lo:hi] without copying.
func sliceRange(v *vector.Vector, lo, hi int) *vector.Vector {
	out := &vector.Vector{Kind: v.Kind}
	switch v.Kind.StorageClass() {
	case vtypes.ClassI64:
		out.I64 = v.I64[lo:hi]
	case vtypes.ClassF64:
		out.F64 = v.F64[lo:hi]
	case vtypes.ClassStr:
		out.Str = v.Str[lo:hi]
	case vtypes.ClassBool:
		out.B = v.B[lo:hi]
	}
	if v.Nulls != nil {
		out.Nulls = v.Nulls[lo:hi]
	}
	return out
}

// ReadAllColumn decodes an entire column into one contiguous vector (the
// column-at-a-time baseline engine and tests use this; the vectorized
// engine never does).
func (t *Table) ReadAllColumn(c int) (*vector.Vector, error) {
	col := t.Meta.Cols[c]
	out := vector.New(col.Kind, int(t.Rows()))
	if anyNullable(t, c) {
		out.EnsureNulls()
	}
	off := 0
	for g := 0; g < t.Groups(); g++ {
		v, err := t.DecodeChunk(g, c)
		if err != nil {
			return nil, err
		}
		out.CopyFrom(v, 0, off, t.GroupRows(g))
		off += t.GroupRows(g)
	}
	return out, nil
}

func anyNullable(t *Table, c int) bool {
	return t.Meta.Cols[c].Nullable
}

// RowAt materializes one full row by position (point-access path used by
// tests and the update layer when validating conflicts).
func (t *Table) RowAt(pos int64) (vtypes.Row, error) {
	if pos < 0 || pos >= t.Rows() {
		return nil, fmt.Errorf("storage: row %d out of range [0,%d)", pos, t.Rows())
	}
	g := 0
	for pos >= int64(t.GroupRows(g)) {
		pos -= int64(t.GroupRows(g))
		g++
	}
	row := make(vtypes.Row, len(t.Meta.Cols))
	for c := range t.Meta.Cols {
		v, err := t.DecodeChunk(g, c)
		if err != nil {
			return nil, err
		}
		row[c] = v.Get(int(pos))
	}
	return row, nil
}
