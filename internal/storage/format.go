// Package storage implements Vectorwise's columnar table storage: tables
// are sequences of row groups (the PAX granularity — all columns of a
// group stored adjacently), and within a group each column is a
// contiguous, independently compressed chunk (the DSM granularity).
// This is the hybrid PAX/DSM layout of paper ref [3]: scans touch only
// the chunks of the columns they need, while a row group keeps one
// row-range's columns close together on disk.
//
// Each chunk carries min/max statistics enabling scan-range pruning, and
// nullable columns store a separate boolean indicator chunk next to the
// "safe value" chunk — the two-column NULL representation of §I-B.
package storage

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"

	"vectorwise/internal/compress"
	"vectorwise/internal/vtypes"
)

// DefaultGroupRows is the default row-group size. 64K rows keeps chunk
// compression effective while letting min/max pruning skip large ranges.
const DefaultGroupRows = 64 * 1024

// ChunkMeta describes one compressed column chunk within a row group.
type ChunkMeta struct {
	// Codec is the compression codec actually used.
	Codec compress.Codec `json:"codec"`
	// Offset and Len locate the chunk in the table's data section.
	Offset int64 `json:"off"`
	Len    int64 `json:"len"`
	// Min/Max statistics (valid when HasStats). Only the fields matching
	// the column's storage class are meaningful.
	HasStats bool    `json:"stats,omitempty"`
	MinI64   int64   `json:"mini,omitempty"`
	MaxI64   int64   `json:"maxi,omitempty"`
	MinF64   float64 `json:"minf,omitempty"`
	MaxF64   float64 `json:"maxf,omitempty"`
	MinStr   string  `json:"mins,omitempty"`
	MaxStr   string  `json:"maxs,omitempty"`
}

// GroupMeta describes one row group.
type GroupMeta struct {
	// Rows is the number of rows in the group.
	Rows int `json:"rows"`
	// Cols holds one value chunk per schema column.
	Cols []ChunkMeta `json:"cols"`
	// NullCols holds the indicator chunk for nullable columns; entries
	// for non-nullable columns have Len == 0.
	NullCols []ChunkMeta `json:"nullcols,omitempty"`
}

// TableMeta is the persistent metadata of a table.
type TableMeta struct {
	// Name is the table name (catalog key).
	Name string `json:"name"`
	// Cols is the schema.
	Cols []vtypes.Column `json:"schema"`
	// Groups lists the row groups in storage order.
	Groups []GroupMeta `json:"groups"`
	// Rows is the total stable row count.
	Rows int64 `json:"rowcount"`
	// AppliedLSN is the highest WAL LSN whose effects are folded into
	// this stable image (0 = none). Recovery replays only committed WAL
	// records with a higher LSN, so a stable image rebuilt and swapped
	// in by the tuple mover (or a checkpoint) makes the records it
	// absorbed inert without requiring an atomic WAL truncation.
	AppliedLSN uint64 `json:"applied_lsn,omitempty"`
}

// Table is a loaded columnar table: metadata plus its raw data section.
// The data section lives fully in memory once loaded; a buffer manager
// interposes on chunk access to model I/O (caching, bandwidth) without
// complicating this layer.
type Table struct {
	Meta TableMeta
	data []byte
}

// Schema reconstructs the vtypes.Schema of the table.
func (t *Table) Schema() *vtypes.Schema { return &vtypes.Schema{Cols: t.Meta.Cols} }

// Rows returns the stable row count.
func (t *Table) Rows() int64 { return t.Meta.Rows }

// Groups returns the number of row groups.
func (t *Table) Groups() int { return len(t.Meta.Groups) }

// GroupRows returns the row count of group g.
func (t *Table) GroupRows(g int) int { return t.Meta.Groups[g].Rows }

// DataSize returns the total compressed size in bytes of the data
// section (the quantity a scan must read from "disk").
func (t *Table) DataSize() int64 { return int64(len(t.data)) }

// RawChunk returns the compressed bytes of the value chunk (group g,
// column c). The returned slice aliases the data section; callers must
// not modify it.
func (t *Table) RawChunk(g, c int) []byte {
	m := t.Meta.Groups[g].Cols[c]
	return t.data[m.Offset : m.Offset+m.Len]
}

// RawNullChunk returns the indicator chunk bytes, or nil if the column
// has none.
func (t *Table) RawNullChunk(g, c int) []byte {
	grp := t.Meta.Groups[g]
	if len(grp.NullCols) <= c || grp.NullCols[c].Len == 0 {
		return nil
	}
	m := grp.NullCols[c]
	return t.data[m.Offset : m.Offset+m.Len]
}

// magic identifies the on-disk format ("VWTB" + version 1).
var magic = [8]byte{'V', 'W', 'T', 'B', 0, 0, 0, 1}

// Save writes the table as a single file:
//
//	magic(8) | metaLen(8) | meta JSON | data section
//
// The write is crash-atomic: the image lands in a temp file first and
// renames over path only after a successful sync, so a crash mid-save
// leaves either the old complete file or the new complete file — never
// a torn image. The tuple mover's stable-image swap relies on this.
func (t *Table) Save(path string) error {
	meta, err := json.Marshal(&t.Meta)
	if err != nil {
		return fmt.Errorf("storage: marshal meta: %w", err)
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	var hdr [16]byte
	copy(hdr[:8], magic[:])
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(meta)))
	_, err = f.Write(hdr[:])
	if err == nil {
		_, err = f.Write(meta)
	}
	if err == nil {
		_, err = f.Write(t.data)
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// Open loads a table file written by Save.
func Open(path string) (*Table, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw) < 16 || string(raw[:8]) != string(magic[:]) {
		return nil, fmt.Errorf("storage: %s is not a vectorwise table file", path)
	}
	metaLen := binary.LittleEndian.Uint64(raw[8:16])
	if uint64(len(raw)-16) < metaLen {
		return nil, fmt.Errorf("storage: truncated table file %s", path)
	}
	t := &Table{}
	if err := json.Unmarshal(raw[16:16+metaLen], &t.Meta); err != nil {
		return nil, fmt.Errorf("storage: corrupt meta in %s: %w", path, err)
	}
	t.data = raw[16+metaLen:]
	return t, nil
}
