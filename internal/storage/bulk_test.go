package storage

import (
	"strings"
	"testing"

	"vectorwise/internal/vtypes"
)

func bulkSchema() *vtypes.Schema {
	return vtypes.NewSchema(
		vtypes.Column{Name: "k", Kind: vtypes.KindI64},
		vtypes.Column{Name: "v", Kind: vtypes.KindF64, Nullable: true},
		vtypes.Column{Name: "s", Kind: vtypes.KindStr},
	)
}

// AppendColumns must interleave with AppendRow, flush groups at the
// group boundary, and read back losslessly.
func TestAppendColumnsGroupsAndReadback(t *testing.T) {
	const rows = 1000
	b := NewBuilder("bulk", bulkSchema(), 256)
	ks := make([]int64, rows)
	vs := make([]float64, rows)
	ss := make([]string, rows)
	vnull := make([]bool, rows)
	for i := range ks {
		ks[i] = int64(i)
		vs[i] = float64(i) / 2
		ss[i] = "row"
		vnull[i] = i%10 == 0
	}
	n, err := b.AppendColumns([]any{ks, vs, ss}, [][]bool{nil, vnull, nil})
	if err != nil {
		t.Fatal(err)
	}
	if n != rows {
		t.Fatalf("appended %d rows, want %d", n, rows)
	}
	if err := b.AppendRow(vtypes.Row{
		vtypes.I64Value(rows), vtypes.NullValue(vtypes.KindF64), vtypes.StrValue("tail"),
	}); err != nil {
		t.Fatal(err)
	}
	tbl, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Rows() != rows+1 {
		t.Fatalf("table rows = %d", tbl.Rows())
	}
	if tbl.Groups() < 4 {
		t.Fatalf("expected multiple row groups, got %d", tbl.Groups())
	}
	col, err := tbl.ReadAllColumn(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		if got := col.Nulls[i]; got != vnull[i] {
			t.Fatalf("row %d null flag = %v", i, got)
		}
		if !vnull[i] && col.F64[i] != vs[i] {
			t.Fatalf("row %d value = %v, want %v", i, col.F64[i], vs[i])
		}
	}
	if !col.Nulls[rows] {
		t.Fatal("tail row must be NULL")
	}
}

// AppendTable must adopt compressed groups losslessly and rebase chunk
// offsets so both the adopted and the freshly built rows read back.
func TestAppendTableAdoptsGroups(t *testing.T) {
	mkTable := func(lo, hi int64) *Table {
		b := NewBuilder("bulk", bulkSchema(), 128)
		for i := lo; i < hi; i++ {
			if err := b.AppendRow(vtypes.Row{
				vtypes.I64Value(i), vtypes.F64Value(float64(i)), vtypes.StrValue("s"),
			}); err != nil {
				t.Fatal(err)
			}
		}
		tbl, err := b.Finish()
		if err != nil {
			t.Fatal(err)
		}
		return tbl
	}
	first := mkTable(0, 300)
	b := NewBuilder("bulk", bulkSchema(), 128)
	if err := b.AppendTable(first); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AppendColumns([]any{
		[]int64{300, 301}, []float64{300, 301}, []string{"s", "s"},
	}, nil); err != nil {
		t.Fatal(err)
	}
	tbl, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Rows() != 302 {
		t.Fatalf("rows = %d", tbl.Rows())
	}
	col, err := tbl.ReadAllColumn(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 302; i++ {
		if col.I64[i] != i {
			t.Fatalf("row %d = %d", i, col.I64[i])
		}
	}
	// Adoption mid-group is rejected (row order would interleave).
	b2 := NewBuilder("bulk", bulkSchema(), 128)
	if err := b2.AppendRow(vtypes.Row{
		vtypes.I64Value(0), vtypes.F64Value(0), vtypes.StrValue("s"),
	}); err != nil {
		t.Fatal(err)
	}
	if err := b2.AppendTable(first); err == nil {
		t.Fatal("AppendTable with buffered rows must error")
	}
}

func TestAppendColumnsRejectsBadInput(t *testing.T) {
	mk := func() *Builder { return NewBuilder("bulk", bulkSchema(), 0) }
	// Ragged column lengths.
	if _, err := mk().AppendColumns([]any{[]int64{1, 2}, []float64{1}, []string{"a", "b"}}, nil); err == nil {
		t.Fatal("ragged columns must error")
	}
	// Wrong storage class.
	if _, err := mk().AppendColumns([]any{[]float64{1}, []float64{1}, []string{"a"}}, nil); err == nil {
		t.Fatal("class mismatch must error")
	}
	// Arity mismatch.
	if _, err := mk().AppendColumns([]any{[]int64{1}}, nil); err == nil {
		t.Fatal("arity mismatch must error")
	}
	// NULL in a non-nullable column, with the offending row reported.
	_, err := mk().AppendColumns(
		[]any{[]int64{1, 2}, []float64{1, 2}, []string{"a", "b"}},
		[][]bool{{false, true}, nil, nil})
	if err == nil || !strings.Contains(err.Error(), "row 2") {
		t.Fatalf("want non-nullable NULL error naming row 2, got %v", err)
	}
	// Empty load is a no-op, not an error.
	b := mk()
	if n, err := b.AppendColumns([]any{[]int64{}, []float64{}, []string{}}, nil); err != nil || n != 0 {
		t.Fatalf("empty load: n=%d err=%v", n, err)
	}
}
