package storage

import (
	"path/filepath"
	"testing"

	"vectorwise/internal/compress"
	"vectorwise/internal/vtypes"
)

func testSchema() *vtypes.Schema {
	return vtypes.NewSchema(
		vtypes.Column{Name: "id", Kind: vtypes.KindI64},
		vtypes.Column{Name: "price", Kind: vtypes.KindF64},
		vtypes.Column{Name: "flag", Kind: vtypes.KindStr},
		vtypes.Column{Name: "ok", Kind: vtypes.KindBool},
		vtypes.Column{Name: "note", Kind: vtypes.KindStr, Nullable: true},
	)
}

func buildTestTable(t *testing.T, rows, groupRows int) *Table {
	t.Helper()
	b := NewBuilder("test", testSchema(), groupRows)
	flags := []string{"A", "B", "C"}
	for i := 0; i < rows; i++ {
		note := vtypes.StrValue("note")
		if i%3 == 0 {
			note = vtypes.NullValue(vtypes.KindStr)
		}
		row := vtypes.Row{
			vtypes.I64Value(int64(i)),
			vtypes.F64Value(float64(i) * 1.5),
			vtypes.StrValue(flags[i%3]),
			vtypes.BoolValue(i%2 == 0),
			note,
		}
		if err := b.AppendRow(row); err != nil {
			t.Fatal(err)
		}
	}
	tbl, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestBuilderGroups(t *testing.T) {
	tbl := buildTestTable(t, 250, 100)
	if tbl.Rows() != 250 {
		t.Fatalf("Rows = %d", tbl.Rows())
	}
	if tbl.Groups() != 3 {
		t.Fatalf("Groups = %d", tbl.Groups())
	}
	if tbl.GroupRows(0) != 100 || tbl.GroupRows(2) != 50 {
		t.Fatal("group sizes wrong")
	}
}

func TestChunkStatsAndCodecs(t *testing.T) {
	tbl := buildTestTable(t, 200, 100)
	idMeta := tbl.Meta.Groups[1].Cols[0]
	if !idMeta.HasStats || idMeta.MinI64 != 100 || idMeta.MaxI64 != 199 {
		t.Fatalf("id stats wrong: %+v", idMeta)
	}
	// Sequential ids should pick PFOR-DELTA.
	if idMeta.Codec != compress.CodecPFORDelta {
		t.Errorf("sequential ids got codec %v", idMeta.Codec)
	}
	// Low-cardinality flag column should be dictionary coded.
	flagMeta := tbl.Meta.Groups[0].Cols[2]
	if flagMeta.Codec != compress.CodecDict {
		t.Errorf("flag column got codec %v", flagMeta.Codec)
	}
	if flagMeta.MinStr != "A" || flagMeta.MaxStr != "C" {
		t.Errorf("flag stats wrong: %+v", flagMeta)
	}
	priceMeta := tbl.Meta.Groups[0].Cols[1]
	if priceMeta.MinF64 != 0 || priceMeta.MaxF64 != 99*1.5 {
		t.Errorf("price stats wrong: %+v", priceMeta)
	}
}

func TestDecodeChunkRoundtrip(t *testing.T) {
	tbl := buildTestTable(t, 150, 64)
	v, err := tbl.DecodeChunk(1, 0) // ids 64..127
	if err != nil {
		t.Fatal(err)
	}
	if v.I64[0] != 64 || v.I64[63] != 127 {
		t.Fatalf("chunk values wrong: %d..%d", v.I64[0], v.I64[63])
	}
	// Nullable column carries its indicator.
	nv, err := tbl.DecodeChunk(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if nv.Nulls == nil {
		t.Fatal("nullable column must decode indicator")
	}
	if !nv.Nulls[0] || nv.Nulls[1] {
		t.Fatal("null pattern wrong")
	}
	if nv.Str[0] != "" {
		t.Fatal("safe value for NULL string must be empty")
	}
}

func TestNullInNonNullableRejected(t *testing.T) {
	b := NewBuilder("t", vtypes.NewSchema(vtypes.Column{Name: "a", Kind: vtypes.KindI64}), 10)
	if err := b.AppendRow(vtypes.Row{vtypes.NullValue(vtypes.KindI64)}); err == nil {
		t.Fatal("NULL in non-nullable column must error")
	}
	if err := b.AppendRow(vtypes.Row{vtypes.StrValue("x")}); err == nil {
		t.Fatal("kind mismatch must error")
	}
	if err := b.AppendRow(vtypes.Row{}); err == nil {
		t.Fatal("arity mismatch must error")
	}
}

func TestSaveOpenRoundtrip(t *testing.T) {
	tbl := buildTestTable(t, 123, 50)
	path := filepath.Join(t.TempDir(), "test.vwt")
	if err := tbl.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows() != 123 || got.Groups() != 3 {
		t.Fatal("reloaded meta wrong")
	}
	r1, err := tbl.RowAt(77)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := got.RowAt(77)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1 {
		if !r1[i].Equal(r2[i]) {
			t.Fatalf("row mismatch at col %d: %v vs %v", i, r1[i], r2[i])
		}
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.vwt")
	if err := writeFile(path, []byte("not a table")); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("garbage file must be rejected")
	}
	if _, err := Open(filepath.Join(t.TempDir(), "missing.vwt")); err == nil {
		t.Fatal("missing file must error")
	}
}

func writeFile(path string, data []byte) error {
	return osWriteFile(path, data)
}

func TestScannerFullScan(t *testing.T) {
	tbl := buildTestTable(t, 300, 128)
	sc := NewScanner(tbl, []int{0, 1}, nil, nil, 100)
	var seen int64
	next := int64(0)
	for {
		vecs, pos, n, err := sc.Next()
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
		if pos != next {
			t.Fatalf("position %d, want %d", pos, next)
		}
		for i := 0; i < n; i++ {
			if vecs[0].I64[i] != pos+int64(i) {
				t.Fatalf("value at %d wrong", pos+int64(i))
			}
		}
		next = pos + int64(n)
		seen += int64(n)
	}
	if seen != 300 {
		t.Fatalf("scanned %d rows", seen)
	}
	// Batches must respect both vector size and group boundary:
	// group 0 has 128 rows → batches 100 + 28.
	sc.Reset()
	_, _, n1, _ := sc.Next()
	_, _, n2, _ := sc.Next()
	if n1 != 100 || n2 != 28 {
		t.Fatalf("batch split %d/%d, want 100/28", n1, n2)
	}
}

func TestScannerPruning(t *testing.T) {
	tbl := buildTestTable(t, 300, 100)
	// Prune groups whose id range is entirely below 150 (groups 0).
	pruned := 0
	prune := func(_ int, g *GroupMeta) bool {
		if g.Cols[0].MaxI64 < 150 {
			pruned++
			return true
		}
		return false
	}
	sc := NewScanner(tbl, []int{0}, nil, prune, 1024)
	var rows int64
	var firstPos int64 = -1
	for {
		_, pos, n, err := sc.Next()
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
		if firstPos == -1 {
			firstPos = pos
		}
		rows += int64(n)
	}
	if pruned != 1 {
		t.Fatalf("pruned %d groups, want 1", pruned)
	}
	if rows != 200 {
		t.Fatalf("scanned %d rows after pruning", rows)
	}
	// Positions must still be global: first unpruned row is 100.
	if firstPos != 100 {
		t.Fatalf("first pos %d, want 100", firstPos)
	}
}

func TestReadAllColumn(t *testing.T) {
	tbl := buildTestTable(t, 250, 100)
	v, err := tbl.ReadAllColumn(0)
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 250 || v.I64[249] != 249 {
		t.Fatal("ReadAllColumn wrong")
	}
	nv, err := tbl.ReadAllColumn(4)
	if err != nil {
		t.Fatal(err)
	}
	if nv.Nulls == nil || !nv.Nulls[0] || nv.Nulls[1] {
		t.Fatal("ReadAllColumn nullable wrong")
	}
}

func TestRowAtBounds(t *testing.T) {
	tbl := buildTestTable(t, 10, 4)
	if _, err := tbl.RowAt(-1); err == nil {
		t.Fatal("negative pos must error")
	}
	if _, err := tbl.RowAt(10); err == nil {
		t.Fatal("pos == rows must error")
	}
	r, err := tbl.RowAt(9)
	if err != nil || r[0].I64 != 9 {
		t.Fatal("RowAt(9) wrong")
	}
}

func TestBuildFromColumns(t *testing.T) {
	schema := vtypes.NewSchema(
		vtypes.Column{Name: "k", Kind: vtypes.KindI64},
		vtypes.Column{Name: "v", Kind: vtypes.KindF64},
		vtypes.Column{Name: "s", Kind: vtypes.KindStr},
		vtypes.Column{Name: "b", Kind: vtypes.KindBool},
	)
	tbl, err := BuildFromColumns("bulk", schema, 100,
		[]any{[]int64{1, 2, 3}, []float64{0.5, 1.5, 2.5}, []string{"x", "y", "z"}, []bool{true, false, true}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Rows() != 3 {
		t.Fatal("rows wrong")
	}
	r, _ := tbl.RowAt(1)
	if r[0].I64 != 2 || r[1].F64 != 1.5 || r[2].Str != "y" || r[3].B {
		t.Fatalf("row wrong: %v", r)
	}
	// Mismatched lengths rejected.
	if _, err := BuildFromColumns("bad", schema, 100,
		[]any{[]int64{1}, []float64{}, []string{"x"}, []bool{true}}, nil); err == nil {
		t.Fatal("length mismatch must error")
	}
	// Wrong arity rejected.
	if _, err := BuildFromColumns("bad2", schema, 100, []any{[]int64{1}}, nil); err == nil {
		t.Fatal("arity mismatch must error")
	}
	// Unsupported slice type rejected.
	if _, err := BuildFromColumns("bad3", schema, 100,
		[]any{[]int32{1}, []float64{1}, []string{"x"}, []bool{true}}, nil); err == nil {
		t.Fatal("bad slice type must error")
	}
}

func TestBuildFromColumnsWithNulls(t *testing.T) {
	schema := vtypes.NewSchema(
		vtypes.Column{Name: "k", Kind: vtypes.KindI64},
		vtypes.Column{Name: "n", Kind: vtypes.KindI64, Nullable: true},
	)
	tbl, err := BuildFromColumns("nulls", schema, 10,
		[]any{[]int64{1, 2}, []int64{10, 0}}, [][]bool{nil, {false, true}})
	if err != nil {
		t.Fatal(err)
	}
	r, _ := tbl.RowAt(1)
	if !r[1].Null {
		t.Fatal("null not preserved through bulk build")
	}
}

func TestEmptyTable(t *testing.T) {
	b := NewBuilder("empty", testSchema(), 100)
	tbl, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Rows() != 0 || tbl.Groups() != 0 {
		t.Fatal("empty table wrong")
	}
	sc := NewScanner(tbl, []int{0}, nil, nil, 0)
	_, _, n, err := sc.Next()
	if err != nil || n != 0 {
		t.Fatal("empty scan must return 0")
	}
	path := filepath.Join(t.TempDir(), "empty.vwt")
	if err := tbl.Save(path); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err != nil {
		t.Fatal(err)
	}
}

func TestDataSizeSmallerThanPlain(t *testing.T) {
	tbl := buildTestTable(t, 10000, 4096)
	// 5 columns × 10000 rows; plain int64+f64 alone would be 160KB.
	if tbl.DataSize() > 100_000 {
		t.Fatalf("compressed size %d suspiciously large", tbl.DataSize())
	}
}
