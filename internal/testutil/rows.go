// Package testutil holds comparison helpers shared by the differential
// test suites, so every suite enforces the same notion of row equality.
package testutil

import (
	"math"
	"testing"

	"vectorwise/internal/vtypes"
)

// MatchRows asserts that two result sets are equal as multisets under
// CloseValue (sort ties may permute rows; parallel partial sums reorder
// float addition). Quadratic matching — intended for the small result
// sets of the TPC-H suite.
func MatchRows(t testing.TB, label string, want, got []vtypes.Row) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: row counts differ: %d vs %d", label, len(want), len(got))
	}
	used := make([]bool, len(got))
outer:
	for i := range want {
		for j := range got {
			if used[j] {
				continue
			}
			if len(want[i]) != len(got[j]) {
				t.Fatalf("%s: column counts differ: %d vs %d", label, len(want[i]), len(got[j]))
			}
			match := true
			for c := range want[i] {
				if !CloseValue(want[i][c], got[j][c]) {
					match = false
					break
				}
			}
			if match {
				used[j] = true
				continue outer
			}
		}
		t.Fatalf("%s: row %d (%v) has no match", label, i, want[i])
	}
}

// CloseValue compares two values with a relative tolerance on floats.
func CloseValue(a, b vtypes.Value) bool {
	if a.Null != b.Null {
		return false
	}
	if a.Null {
		return true
	}
	if a.Kind == vtypes.KindF64 || b.Kind == vtypes.KindF64 {
		af, bf := a.AsFloat(), b.AsFloat()
		diff := math.Abs(af - bf)
		scale := math.Max(math.Abs(af), math.Abs(bf))
		return diff <= 1e-6*math.Max(scale, 1)
	}
	return a.Equal(b)
}
