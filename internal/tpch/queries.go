package tpch

import (
	"vectorwise/internal/algebra"
	"vectorwise/internal/vtypes"
)

// The query suite. Each entry builds the optimized algebra plan of one
// TPC-H query with the spec's validation parameters. Twelve queries
// cover every operator class of the suite: scan-heavy aggregation (Q1,
// Q6), multi-way joins with sort/limit (Q3, Q10), five-way join
// aggregation (Q5), semi-join (Q4), CASE aggregation over joins (Q12,
// Q14), an OR-of-ANDs multi-predicate scan (Q19), and uncorrelated
// subqueries as one-row cross joins (Q2, Q11) and grouped semi-joins
// (Q18). Q2, Q11 and Q18 are simplified to the uncorrelated forms the
// planner's subquery rewrites cover (Q2 compares against the global
// average supply cost instead of the per-part minimum; Q18's quantity
// threshold is lowered so the 0.01-scale differential fixture keeps
// rows). The remaining queries need correlated subqueries or windowing
// the SQL subset does not cover; EXPERIMENTS.md documents this
// substitution and QphH-analog is computed over the implemented set.

// Query is one benchmarkable query.
type Query struct {
	// Name is "Q1" .. "Q19".
	Name string
	// Build constructs the plan (fresh per run; plans hold no state).
	Build func() algebra.Node
}

func cI64(i int) algebra.Scalar     { return &algebra.ColRef{Idx: i, K: vtypes.KindI64} }
func cF64(i int) algebra.Scalar     { return &algebra.ColRef{Idx: i, K: vtypes.KindF64} }
func cStr(i int) algebra.Scalar     { return &algebra.ColRef{Idx: i, K: vtypes.KindStr} }
func cDate(i int) algebra.Scalar    { return &algebra.ColRef{Idx: i, K: vtypes.KindDate} }
func litF(v float64) algebra.Scalar { return &algebra.Lit{Val: vtypes.F64Value(v)} }
func litS(s string) algebra.Scalar  { return &algebra.Lit{Val: vtypes.StrValue(s)} }
func litD(s string) algebra.Scalar {
	return &algebra.Lit{Val: vtypes.DateValue(vtypes.MustParseDate(s))}
}

func scan(table string, schema *vtypes.Schema, cols ...int) *algebra.ScanNode {
	return &algebra.ScanNode{Table: table, Cols: cols, Out: schema.Project(cols)}
}

func mustArith(op algebra.ArithOp, l, r algebra.Scalar) algebra.Scalar {
	a, err := algebra.NewArith(op, l, r)
	if err != nil {
		panic(err)
	}
	return a
}

func mustCase(c, t, e algebra.Scalar) algebra.Scalar {
	cs, err := algebra.NewCase(c, t, e)
	if err != nil {
		panic(err)
	}
	return cs
}

// Q1 — pricing summary report: big scan, 4-group aggregation, heavy
// arithmetic. The paper's raw-processing-power showcase.
func Q1() algebra.Node {
	ls := LineitemSchema()
	// Projection order: returnflag, linestatus, qty, extprice, discount, tax.
	in := scan("lineitem", ls, LReturnFlag, LLineStatus, LQuantity, LExtendedPrice, LDiscount, LTax)
	filtered := &algebra.SelectNode{
		Input: in,
		Pred:  &algebra.Cmp{Op: algebra.CmpLe, L: cDate(6), R: litD("1998-09-02")},
	}
	// Need shipdate too: re-project scan with shipdate as col 6.
	in.Cols = []int{LReturnFlag, LLineStatus, LQuantity, LExtendedPrice, LDiscount, LTax, LShipDate}
	in.Out = ls.Project(in.Cols)

	discPrice := mustArith(algebra.OpMul, cF64(3), mustArith(algebra.OpSub, litF(1), cF64(4)))
	charge := mustArith(algebra.OpMul, discPrice, mustArith(algebra.OpAdd, litF(1), cF64(5)))
	agg := &algebra.AggNode{
		Input:   filtered,
		GroupBy: []algebra.Scalar{cStr(0), cStr(1)},
		Aggs: []algebra.AggExpr{
			{Fn: algebra.AggSum, Arg: cF64(2)},
			{Fn: algebra.AggSum, Arg: cF64(3)},
			{Fn: algebra.AggSum, Arg: discPrice},
			{Fn: algebra.AggSum, Arg: charge},
			{Fn: algebra.AggAvg, Arg: cF64(2)},
			{Fn: algebra.AggAvg, Arg: cF64(3)},
			{Fn: algebra.AggAvg, Arg: cF64(4)},
			{Fn: algebra.AggCountStar},
		},
		Names: []string{"l_returnflag", "l_linestatus", "sum_qty", "sum_base_price",
			"sum_disc_price", "sum_charge", "avg_qty", "avg_price", "avg_disc", "count_order"},
	}
	return &algebra.SortNode{Input: agg, Keys: []algebra.SortKey{
		{Expr: cStr(0)}, {Expr: cStr(1)},
	}}
}

// one is the constant key both sides of a one-row cross join hash on —
// the planner lowers uncorrelated scalar subqueries the same way.
func one() algebra.Scalar { return &algebra.Lit{Val: vtypes.I64Value(1)} }

// Q2 — minimum cost supplier, simplified: the spec's correlated
// per-part minimum becomes an uncorrelated global average-cost cutoff,
// attached to the probe side through a constant-key join against a
// one-row aggregate.
func Q2() algebra.Node {
	pss, ps, ss, ns, rs := PartsuppSchema(), PartSchema(), SupplierSchema(), NationSchema(), RegionSchema()
	avgCost := &algebra.AggNode{
		Input: scan("partsupp", pss, PSSupplyCost),
		Aggs:  []algebra.AggExpr{{Fn: algebra.AggAvg, Arg: cF64(0)}},
		Names: []string{"avg_cost"},
	}
	withAvg := &algebra.JoinNode{
		Left:      scan("partsupp", pss, PSPartKey, PSSuppKey, PSSupplyCost),
		Right:     avgCost,
		LeftKeys:  []algebra.Scalar{one()},
		RightKeys: []algebra.Scalar{one()},
		Type:      algebra.JoinInner,
	}
	cheap := &algebra.SelectNode{
		Input: withAvg,
		Pred:  &algebra.Cmp{Op: algebra.CmpLt, L: cF64(2), R: cF64(3)},
	}
	part := &algebra.SelectNode{
		Input: scan("part", ps, PPartKey, PMfgr, PSize),
		Pred:  &algebra.Cmp{Op: algebra.CmpEq, L: cI64(2), R: &algebra.Lit{Val: vtypes.I64Value(15)}},
	}
	pj := &algebra.JoinNode{
		Left: cheap, Right: part,
		LeftKeys:  []algebra.Scalar{cI64(0)},
		RightKeys: []algebra.Scalar{cI64(0)},
		Type:      algebra.JoinInner,
	}
	// pj: pskey, sskey(1), cost, avg | pkey(4), mfgr(5), size
	region := &algebra.SelectNode{
		Input: scan("region", rs, RRegionKey, RName),
		Pred:  &algebra.Cmp{Op: algebra.CmpEq, L: cStr(1), R: litS("EUROPE")},
	}
	nat := &algebra.JoinNode{
		Left:      scan("nation", ns, NNationKey, NName, NRegionKey),
		Right:     region,
		LeftKeys:  []algebra.Scalar{cI64(2)},
		RightKeys: []algebra.Scalar{cI64(0)},
		Type:      algebra.JoinLeftSemi,
	}
	supp := &algebra.JoinNode{
		Left:      scan("supplier", ss, SSuppKey, SName, SAcctBal, SNationKey),
		Right:     nat,
		LeftKeys:  []algebra.Scalar{cI64(3)},
		RightKeys: []algebra.Scalar{cI64(0)},
		Type:      algebra.JoinInner,
	}
	sj := &algebra.JoinNode{
		Left: pj, Right: supp,
		LeftKeys:  []algebra.Scalar{cI64(1)},
		RightKeys: []algebra.Scalar{cI64(0)},
		Type:      algebra.JoinInner,
	}
	// sj: 0..6 | skey(7), sname(8), sacct(9), snat | nkey, nname(12), nreg
	sorted := &algebra.SortNode{Input: sj, Keys: []algebra.SortKey{
		{Expr: cF64(9), Desc: true}, {Expr: cStr(12)}, {Expr: cStr(8)}, {Expr: cI64(4)},
	}}
	proj := &algebra.ProjectNode{
		Input: sorted,
		Exprs: []algebra.Scalar{cF64(9), cStr(8), cStr(12), cI64(4), cStr(5)},
		Names: []string{"s_acctbal", "s_name", "n_name", "p_partkey", "p_mfgr"},
	}
	return &algebra.LimitNode{N: 100, Input: proj}
}

// Q3 — shipping priority: customer ⋈ orders ⋈ lineitem, top-10 by
// revenue.
func Q3() algebra.Node {
	cs, os, ls := CustomerSchema(), OrdersSchema(), LineitemSchema()
	cust := &algebra.SelectNode{
		Input: scan("customer", cs, CCustKey, CMktSegment),
		Pred:  &algebra.Cmp{Op: algebra.CmpEq, L: cStr(1), R: litS("BUILDING")},
	}
	ord := &algebra.SelectNode{
		Input: scan("orders", os, OOrderKey, OCustKey, OOrderDate, OShipPriority),
		Pred:  &algebra.Cmp{Op: algebra.CmpLt, L: cDate(2), R: litD("1995-03-15")},
	}
	// orders ⋈ customer (build small side).
	oc := &algebra.JoinNode{
		Left: ord, Right: cust,
		LeftKeys:  []algebra.Scalar{cI64(1)},
		RightKeys: []algebra.Scalar{cI64(0)},
		Type:      algebra.JoinLeftSemi,
	}
	line := &algebra.SelectNode{
		Input: scan("lineitem", ls, LOrderKey, LExtendedPrice, LDiscount, LShipDate),
		Pred:  &algebra.Cmp{Op: algebra.CmpGt, L: cDate(3), R: litD("1995-03-15")},
	}
	// lineitem ⋈ (orders⋈customer).
	j := &algebra.JoinNode{
		Left: line, Right: oc,
		LeftKeys:  []algebra.Scalar{cI64(0)},
		RightKeys: []algebra.Scalar{cI64(0)},
		Type:      algebra.JoinInner,
	}
	// Schema: l_orderkey, extprice, discount, shipdate, o_orderkey, custkey, orderdate, shippri
	rev := mustArith(algebra.OpMul, cF64(1), mustArith(algebra.OpSub, litF(1), cF64(2)))
	agg := &algebra.AggNode{
		Input:   j,
		GroupBy: []algebra.Scalar{cI64(0), cDate(6), cI64(7)},
		Aggs:    []algebra.AggExpr{{Fn: algebra.AggSum, Arg: rev}},
		Names:   []string{"l_orderkey", "o_orderdate", "o_shippriority", "revenue"},
	}
	return &algebra.LimitNode{N: 10, Input: &algebra.SortNode{Input: agg, Keys: []algebra.SortKey{
		{Expr: cF64(3), Desc: true}, {Expr: cDate(1)},
	}}}
}

// Q4 — order priority checking: semi-join of orders with late lineitems.
func Q4() algebra.Node {
	os, ls := OrdersSchema(), LineitemSchema()
	ord := &algebra.SelectNode{
		Input: scan("orders", os, OOrderKey, OOrderDate, OOrderPriority),
		Pred: &algebra.Between{In: cDate(1),
			Lo: vtypes.DateValue(vtypes.MustParseDate("1993-07-01")),
			Hi: vtypes.DateValue(vtypes.MustParseDate("1993-09-30"))},
	}
	late := &algebra.SelectNode{
		Input: scan("lineitem", ls, LOrderKey, LCommitDate, LReceiptDate),
		Pred:  &algebra.Cmp{Op: algebra.CmpLt, L: cDate(1), R: cDate(2)},
	}
	semi := &algebra.JoinNode{
		Left: ord, Right: late,
		LeftKeys:  []algebra.Scalar{cI64(0)},
		RightKeys: []algebra.Scalar{cI64(0)},
		Type:      algebra.JoinLeftSemi,
	}
	agg := &algebra.AggNode{
		Input:   semi,
		GroupBy: []algebra.Scalar{cStr(2)},
		Aggs:    []algebra.AggExpr{{Fn: algebra.AggCountStar}},
		Names:   []string{"o_orderpriority", "order_count"},
	}
	return &algebra.SortNode{Input: agg, Keys: []algebra.SortKey{{Expr: cStr(0)}}}
}

// Q5 — local supplier volume: five-way join down the region hierarchy.
func Q5() algebra.Node {
	rs, ns, cs, os, ls, ss := RegionSchema(), NationSchema(), CustomerSchema(), OrdersSchema(), LineitemSchema(), SupplierSchema()
	region := &algebra.SelectNode{
		Input: scan("region", rs, RRegionKey, RName),
		Pred:  &algebra.Cmp{Op: algebra.CmpEq, L: cStr(1), R: litS("ASIA")},
	}
	nation := &algebra.JoinNode{ // nation ⋈ region
		Left:      scan("nation", ns, NNationKey, NName, NRegionKey),
		Right:     region,
		LeftKeys:  []algebra.Scalar{cI64(2)},
		RightKeys: []algebra.Scalar{cI64(0)},
		Type:      algebra.JoinLeftSemi,
	}
	// customer ⋈ nation → (custkey, nationkey, n_name)
	cust := &algebra.JoinNode{
		Left:      scan("customer", cs, CCustKey, CNationKey),
		Right:     nation,
		LeftKeys:  []algebra.Scalar{cI64(1)},
		RightKeys: []algebra.Scalar{cI64(0)},
		Type:      algebra.JoinInner,
	}
	ord := &algebra.SelectNode{
		Input: scan("orders", os, OOrderKey, OCustKey, OOrderDate),
		Pred: &algebra.Between{In: cDate(2),
			Lo: vtypes.DateValue(vtypes.MustParseDate("1994-01-01")),
			Hi: vtypes.DateValue(vtypes.MustParseDate("1994-12-31"))},
	}
	// orders ⋈ cust → orderkey, custkey, odate, [custkey, nationkey, nkey, name, rkey]
	oj := &algebra.JoinNode{
		Left: ord, Right: cust,
		LeftKeys:  []algebra.Scalar{cI64(1)},
		RightKeys: []algebra.Scalar{cI64(0)},
		Type:      algebra.JoinInner,
	}
	// lineitem ⋈ oj on orderkey; then supplier nation must equal customer nation.
	line := scan("lineitem", ls, LOrderKey, LSuppKey, LExtendedPrice, LDiscount)
	lj := &algebra.JoinNode{
		Left: line, Right: oj,
		LeftKeys:  []algebra.Scalar{cI64(0)},
		RightKeys: []algebra.Scalar{cI64(0)},
		Type:      algebra.JoinInner,
	}
	// lj schema: lokey, lsupp, extp, disc | okey, ocust, odate | ckey, cnat | nkey, nname, nregion
	supp := scan("supplier", ss, SSuppKey, SNationKey)
	sj := &algebra.JoinNode{
		Left: lj, Right: supp,
		LeftKeys:  []algebra.Scalar{cI64(1), cI64(8)}, // suppkey + customer nation
		RightKeys: []algebra.Scalar{cI64(0), cI64(1)}, // suppkey + supplier nation
		Type:      algebra.JoinInner,
	}
	rev := mustArith(algebra.OpMul, cF64(2), mustArith(algebra.OpSub, litF(1), cF64(3)))
	agg := &algebra.AggNode{
		Input:   sj,
		GroupBy: []algebra.Scalar{cStr(10)}, // n_name
		Aggs:    []algebra.AggExpr{{Fn: algebra.AggSum, Arg: rev}},
		Names:   []string{"n_name", "revenue"},
	}
	return &algebra.SortNode{Input: agg, Keys: []algebra.SortKey{{Expr: cF64(1), Desc: true}}}
}

// Q6 — forecasting revenue change: the pure selective-scan aggregate.
func Q6() algebra.Node {
	ls := LineitemSchema()
	in := scan("lineitem", ls, LShipDate, LDiscount, LQuantity, LExtendedPrice)
	sel := &algebra.SelectNode{
		Input: in,
		Pred: &algebra.And{Preds: []algebra.Scalar{
			&algebra.Between{In: cDate(0),
				Lo: vtypes.DateValue(vtypes.MustParseDate("1994-01-01")),
				Hi: vtypes.DateValue(vtypes.MustParseDate("1994-12-31"))},
			&algebra.Between{In: cF64(1),
				Lo: vtypes.F64Value(0.05), Hi: vtypes.F64Value(0.07)},
			&algebra.Cmp{Op: algebra.CmpLt, L: cF64(2), R: litF(24)},
		}},
	}
	rev := mustArith(algebra.OpMul, cF64(3), cF64(1))
	return &algebra.AggNode{
		Input: sel,
		Aggs:  []algebra.AggExpr{{Fn: algebra.AggSum, Arg: rev}},
		Names: []string{"revenue"},
	}
}

// Q10 — returned item reporting: 4-way join, top 20 customers.
func Q10() algebra.Node {
	cs, os, ls, ns := CustomerSchema(), OrdersSchema(), LineitemSchema(), NationSchema()
	ord := &algebra.SelectNode{
		Input: scan("orders", os, OOrderKey, OCustKey, OOrderDate),
		Pred: &algebra.Between{In: cDate(2),
			Lo: vtypes.DateValue(vtypes.MustParseDate("1993-10-01")),
			Hi: vtypes.DateValue(vtypes.MustParseDate("1993-12-31"))},
	}
	line := &algebra.SelectNode{
		Input: scan("lineitem", ls, LOrderKey, LExtendedPrice, LDiscount, LReturnFlag),
		Pred:  &algebra.Cmp{Op: algebra.CmpEq, L: cStr(3), R: litS("R")},
	}
	lo := &algebra.JoinNode{
		Left: line, Right: ord,
		LeftKeys:  []algebra.Scalar{cI64(0)},
		RightKeys: []algebra.Scalar{cI64(0)},
		Type:      algebra.JoinInner,
	}
	// lo: lokey, extp, disc, rf | okey, custkey, odate
	cust := scan("customer", cs, CCustKey, CName, CAcctBal, CNationKey, CPhone, CAddress)
	cj := &algebra.JoinNode{
		Left: lo, Right: cust,
		LeftKeys:  []algebra.Scalar{cI64(5)},
		RightKeys: []algebra.Scalar{cI64(0)},
		Type:      algebra.JoinInner,
	}
	// cj: ...7 | ckey(7), cname(8), acct(9), cnat(10), phone(11), addr(12)
	nat := scan("nation", ns, NNationKey, NName)
	nj := &algebra.JoinNode{
		Left: cj, Right: nat,
		LeftKeys:  []algebra.Scalar{cI64(10)},
		RightKeys: []algebra.Scalar{cI64(0)},
		Type:      algebra.JoinInner,
	}
	rev := mustArith(algebra.OpMul, cF64(1), mustArith(algebra.OpSub, litF(1), cF64(2)))
	agg := &algebra.AggNode{
		Input:   nj,
		GroupBy: []algebra.Scalar{cI64(7), cStr(8), cF64(9), cStr(14), cStr(11), cStr(12)},
		Aggs:    []algebra.AggExpr{{Fn: algebra.AggSum, Arg: rev}},
		Names:   []string{"c_custkey", "c_name", "c_acctbal", "n_name", "c_phone", "c_address", "revenue"},
	}
	return &algebra.LimitNode{N: 20, Input: &algebra.SortNode{Input: agg,
		Keys: []algebra.SortKey{{Expr: cF64(6), Desc: true}, {Expr: cI64(0)}}}}
}

// Q11 — important stock identification: the German partsupp volume per
// part, kept when it exceeds a fraction of the total German volume. The
// HAVING threshold is a one-row aggregate attached by constant-key join,
// exactly how the planner lowers the scalar subquery form.
func Q11() algebra.Node {
	pss, ss, ns := PartsuppSchema(), SupplierSchema(), NationSchema()
	germanPS := func() algebra.Node {
		nat := &algebra.SelectNode{
			Input: scan("nation", ns, NNationKey, NName),
			Pred:  &algebra.Cmp{Op: algebra.CmpEq, L: cStr(1), R: litS("GERMANY")},
		}
		supp := &algebra.JoinNode{
			Left:      scan("supplier", ss, SSuppKey, SNationKey),
			Right:     nat,
			LeftKeys:  []algebra.Scalar{cI64(1)},
			RightKeys: []algebra.Scalar{cI64(0)},
			Type:      algebra.JoinLeftSemi,
		}
		return &algebra.JoinNode{
			Left:      scan("partsupp", pss, PSPartKey, PSSuppKey, PSAvailQty, PSSupplyCost),
			Right:     supp,
			LeftKeys:  []algebra.Scalar{cI64(1)},
			RightKeys: []algebra.Scalar{cI64(0)},
			Type:      algebra.JoinLeftSemi,
		}
	}
	value := func() algebra.Scalar { return mustArith(algebra.OpMul, cF64(3), cI64(2)) }
	byPart := &algebra.AggNode{
		Input:   germanPS(),
		GroupBy: []algebra.Scalar{cI64(0)},
		Aggs:    []algebra.AggExpr{{Fn: algebra.AggSum, Arg: value()}},
		Names:   []string{"ps_partkey", "value"},
	}
	total := &algebra.AggNode{
		Input: germanPS(),
		Aggs:  []algebra.AggExpr{{Fn: algebra.AggSum, Arg: value()}},
		Names: []string{"total"},
	}
	threshold := &algebra.ProjectNode{
		Input: total,
		Exprs: []algebra.Scalar{mustArith(algebra.OpMul, cF64(0), litF(0.0001))},
		Names: []string{"threshold"},
	}
	joined := &algebra.JoinNode{
		Left: byPart, Right: threshold,
		LeftKeys:  []algebra.Scalar{one()},
		RightKeys: []algebra.Scalar{one()},
		Type:      algebra.JoinInner,
	}
	kept := &algebra.SelectNode{
		Input: joined,
		Pred:  &algebra.Cmp{Op: algebra.CmpGt, L: cF64(1), R: cF64(2)},
	}
	sorted := &algebra.SortNode{Input: kept, Keys: []algebra.SortKey{
		{Expr: cF64(1), Desc: true}, {Expr: cI64(0)},
	}}
	return &algebra.ProjectNode{
		Input: sorted,
		Exprs: []algebra.Scalar{cI64(0), cF64(1)},
		Names: []string{"ps_partkey", "value"},
	}
}

// Q12 — shipping modes and order priority: join + dual CASE aggregation.
func Q12() algebra.Node {
	os, ls := OrdersSchema(), LineitemSchema()
	line := &algebra.SelectNode{
		Input: scan("lineitem", ls, LOrderKey, LShipMode, LCommitDate, LReceiptDate, LShipDate),
		Pred: &algebra.And{Preds: []algebra.Scalar{
			&algebra.In{In: cStr(1), List: []vtypes.Value{vtypes.StrValue("MAIL"), vtypes.StrValue("SHIP")}},
			&algebra.Cmp{Op: algebra.CmpLt, L: cDate(2), R: cDate(3)},
			&algebra.Cmp{Op: algebra.CmpLt, L: cDate(4), R: cDate(2)},
			&algebra.Between{In: cDate(3),
				Lo: vtypes.DateValue(vtypes.MustParseDate("1994-01-01")),
				Hi: vtypes.DateValue(vtypes.MustParseDate("1994-12-31"))},
		}},
	}
	ord := scan("orders", os, OOrderKey, OOrderPriority)
	j := &algebra.JoinNode{
		Left: line, Right: ord,
		LeftKeys:  []algebra.Scalar{cI64(0)},
		RightKeys: []algebra.Scalar{cI64(0)},
		Type:      algebra.JoinInner,
	}
	// j: lokey, mode, commit, receipt, ship | okey, priority(6)
	isHigh := &algebra.Or{Preds: []algebra.Scalar{
		&algebra.Cmp{Op: algebra.CmpEq, L: cStr(6), R: litS("1-URGENT")},
		&algebra.Cmp{Op: algebra.CmpEq, L: cStr(6), R: litS("2-HIGH")},
	}}
	one := &algebra.Lit{Val: vtypes.I64Value(1)}
	zero := &algebra.Lit{Val: vtypes.I64Value(0)}
	highLine := mustCase(isHigh, one, zero)
	lowLine := mustCase(&algebra.Not{In: isHigh}, one, zero)
	agg := &algebra.AggNode{
		Input:   j,
		GroupBy: []algebra.Scalar{cStr(1)},
		Aggs: []algebra.AggExpr{
			{Fn: algebra.AggSum, Arg: highLine},
			{Fn: algebra.AggSum, Arg: lowLine},
		},
		Names: []string{"l_shipmode", "high_line_count", "low_line_count"},
	}
	return &algebra.SortNode{Input: agg, Keys: []algebra.SortKey{{Expr: cStr(0)}}}
}

// Q14 — promotion effect: join + CASE ratio.
func Q14() algebra.Node {
	ps, ls := PartSchema(), LineitemSchema()
	line := &algebra.SelectNode{
		Input: scan("lineitem", ls, LPartKey, LExtendedPrice, LDiscount, LShipDate),
		Pred: &algebra.Between{In: cDate(3),
			Lo: vtypes.DateValue(vtypes.MustParseDate("1995-09-01")),
			Hi: vtypes.DateValue(vtypes.MustParseDate("1995-09-30"))},
	}
	part := scan("part", ps, PPartKey, PType)
	j := &algebra.JoinNode{
		Left: line, Right: part,
		LeftKeys:  []algebra.Scalar{cI64(0)},
		RightKeys: []algebra.Scalar{cI64(0)},
		Type:      algebra.JoinInner,
	}
	// j: lpart, extp, disc, ship | pkey, ptype(5)
	rev := mustArith(algebra.OpMul, cF64(1), mustArith(algebra.OpSub, litF(1), cF64(2)))
	promo := mustCase(&algebra.Like{In: cStr(5), Pattern: "PROMO%"}, rev, litF(0))
	agg := &algebra.AggNode{
		Input: j,
		Aggs: []algebra.AggExpr{
			{Fn: algebra.AggSum, Arg: promo},
			{Fn: algebra.AggSum, Arg: rev},
		},
		Names: []string{"promo_revenue", "total_revenue"},
	}
	ratio := mustArith(algebra.OpDiv, mustArith(algebra.OpMul, litF(100), cF64(0)), cF64(1))
	return &algebra.ProjectNode{Input: agg, Exprs: []algebra.Scalar{ratio}, Names: []string{"promo_revenue_pct"}}
}

// Q18 — large volume customers: orders whose total lineitem quantity
// clears a threshold (grouped-HAVING subquery as a semi-join), re-joined
// to customer and lineitem for the report. The threshold is 250 instead
// of the spec's 300 so the small differential fixture keeps rows.
func Q18() algebra.Node {
	os, cs, ls := OrdersSchema(), CustomerSchema(), LineitemSchema()
	perOrder := &algebra.AggNode{
		Input:   scan("lineitem", ls, LOrderKey, LQuantity),
		GroupBy: []algebra.Scalar{cI64(0)},
		Aggs:    []algebra.AggExpr{{Fn: algebra.AggSum, Arg: cF64(1)}},
		Names:   []string{"l_orderkey", "sum_qty"},
	}
	big := &algebra.ProjectNode{
		Input: &algebra.SelectNode{
			Input: perOrder,
			Pred:  &algebra.Cmp{Op: algebra.CmpGt, L: cF64(1), R: litF(250)},
		},
		Exprs: []algebra.Scalar{cI64(0)},
		Names: []string{"l_orderkey"},
	}
	ord := &algebra.JoinNode{
		Left:      scan("orders", os, OOrderKey, OCustKey, OTotalPrice, OOrderDate),
		Right:     big,
		LeftKeys:  []algebra.Scalar{cI64(0)},
		RightKeys: []algebra.Scalar{cI64(0)},
		Type:      algebra.JoinLeftSemi,
	}
	cj := &algebra.JoinNode{
		Left: ord, Right: scan("customer", cs, CCustKey, CName),
		LeftKeys:  []algebra.Scalar{cI64(1)},
		RightKeys: []algebra.Scalar{cI64(0)},
		Type:      algebra.JoinInner,
	}
	// cj: okey, ocust, tprice(2), odate(3) | ckey(4), cname(5)
	lj := &algebra.JoinNode{
		Left: cj, Right: scan("lineitem", ls, LOrderKey, LQuantity),
		LeftKeys:  []algebra.Scalar{cI64(0)},
		RightKeys: []algebra.Scalar{cI64(0)},
		Type:      algebra.JoinInner,
	}
	agg := &algebra.AggNode{
		Input:   lj,
		GroupBy: []algebra.Scalar{cStr(5), cI64(4), cI64(0), cDate(3), cF64(2)},
		Aggs:    []algebra.AggExpr{{Fn: algebra.AggSum, Arg: cF64(7)}},
		Names:   []string{"c_name", "c_custkey", "o_orderkey", "o_orderdate", "o_totalprice", "total_qty"},
	}
	sorted := &algebra.SortNode{Input: agg, Keys: []algebra.SortKey{
		{Expr: cF64(4), Desc: true}, {Expr: cI64(2)},
	}}
	return &algebra.LimitNode{N: 100, Input: sorted}
}

// Q19 — discounted revenue: the OR-of-ANDs predicate zoo over a join.
func Q19() algebra.Node {
	ps, ls := PartSchema(), LineitemSchema()
	line := &algebra.SelectNode{
		Input: scan("lineitem", ls, LPartKey, LQuantity, LExtendedPrice, LDiscount, LShipInstruct, LShipMode),
		Pred: &algebra.And{Preds: []algebra.Scalar{
			&algebra.In{In: cStr(5), List: []vtypes.Value{vtypes.StrValue("AIR"), vtypes.StrValue("REG AIR")}},
			&algebra.Cmp{Op: algebra.CmpEq, L: cStr(4), R: litS("DELIVER IN PERSON")},
		}},
	}
	part := scan("part", ps, PPartKey, PBrand, PSize, PContainer)
	j := &algebra.JoinNode{
		Left: line, Right: part,
		LeftKeys:  []algebra.Scalar{cI64(0)},
		RightKeys: []algebra.Scalar{cI64(0)},
		Type:      algebra.JoinInner,
	}
	// j: lpart, qty(1), extp(2), disc(3), instr, mode | pkey(6), brand(7), size(8), container(9)
	arm := func(brand string, containers []string, qlo, qhi float64, szHi int64) algebra.Scalar {
		var cl []vtypes.Value
		for _, c := range containers {
			cl = append(cl, vtypes.StrValue(c))
		}
		return &algebra.And{Preds: []algebra.Scalar{
			&algebra.Cmp{Op: algebra.CmpEq, L: cStr(7), R: litS(brand)},
			&algebra.In{In: cStr(9), List: cl},
			&algebra.Between{In: cF64(1), Lo: vtypes.F64Value(qlo), Hi: vtypes.F64Value(qhi)},
			&algebra.Between{In: cI64(8), Lo: vtypes.I64Value(1), Hi: vtypes.I64Value(szHi)},
		}}
	}
	sel := &algebra.SelectNode{
		Input: j,
		Pred: &algebra.Or{Preds: []algebra.Scalar{
			arm("Brand#12", []string{"SM CASE", "SM BOX", "SM PACK", "SM PKG"}, 1, 11, 5),
			arm("Brand#23", []string{"MED BAG", "MED BOX", "MED PKG", "MED PACK"}, 10, 20, 10),
			arm("Brand#34", []string{"LG CASE", "LG BOX", "LG PACK", "LG PKG"}, 20, 30, 15),
		}},
	}
	rev := mustArith(algebra.OpMul, cF64(2), mustArith(algebra.OpSub, litF(1), cF64(3)))
	return &algebra.AggNode{
		Input: sel,
		Aggs:  []algebra.AggExpr{{Fn: algebra.AggSum, Arg: rev}},
		Names: []string{"revenue"},
	}
}

// Suite returns the implemented query set in TPC-H order.
func Suite() []Query {
	return []Query{
		{Name: "Q1", Build: Q1},
		{Name: "Q2", Build: Q2},
		{Name: "Q3", Build: Q3},
		{Name: "Q4", Build: Q4},
		{Name: "Q5", Build: Q5},
		{Name: "Q6", Build: Q6},
		{Name: "Q10", Build: Q10},
		{Name: "Q11", Build: Q11},
		{Name: "Q12", Build: Q12},
		{Name: "Q14", Build: Q14},
		{Name: "Q18", Build: Q18},
		{Name: "Q19", Build: Q19},
	}
}
