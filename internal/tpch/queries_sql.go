package tpch

// The SQL form of the query suite. Each statement goes through the full
// public front end — lexer, parser, planner, rewriter, plan cache,
// cross-compiler — and must produce results row-identical to the
// hand-built algebra plan of the same query in queries.go (the
// differential suite in internal/enginetest and internal/tpchdb enforces
// this at parallelism 1 and N). Column order follows the hand-built
// plans' output schemas so the comparison is positional.
//
// The texts keep the spec's validation parameters. Two deliberate
// departures from the spec text: joins are written with the large table
// first (the planner builds the hash table on the JOINed side), and
// Q4's EXISTS subquery uses the dialect's SEMI JOIN form.

// SQLQuery is one suite query as SQL text.
type SQLQuery struct {
	// Name is "Q1" .. "Q19", matching Suite().
	Name string
	// SQL is the statement text.
	SQL string
}

// SQLSuite returns the SQL form of the implemented query set, in the
// same order as Suite().
func SQLSuite() []SQLQuery {
	return []SQLQuery{
		{Name: "Q1", SQL: `
			SELECT l_returnflag, l_linestatus,
			       SUM(l_quantity) AS sum_qty,
			       SUM(l_extendedprice) AS sum_base_price,
			       SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
			       SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge,
			       AVG(l_quantity) AS avg_qty,
			       AVG(l_extendedprice) AS avg_price,
			       AVG(l_discount) AS avg_disc,
			       COUNT(*) AS count_order
			FROM lineitem
			WHERE l_shipdate <= DATE '1998-09-02'
			GROUP BY l_returnflag, l_linestatus
			ORDER BY l_returnflag, l_linestatus`},
		{Name: "Q2", SQL: `
			SELECT s_acctbal, s_name, n_name, p_partkey, p_mfgr
			FROM partsupp
			JOIN part ON ps_partkey = p_partkey
			JOIN supplier ON ps_suppkey = s_suppkey
			JOIN nation ON s_nationkey = n_nationkey
			JOIN region ON n_regionkey = r_regionkey
			WHERE r_name = 'EUROPE'
			  AND p_size = 15
			  AND ps_supplycost < (SELECT AVG(ps_supplycost) FROM partsupp)
			ORDER BY s_acctbal DESC, n_name, s_name, p_partkey
			LIMIT 100`},
		{Name: "Q3", SQL: `
			SELECT l_orderkey, o_orderdate, o_shippriority,
			       SUM(l_extendedprice * (1 - l_discount)) AS revenue
			FROM lineitem
			JOIN orders ON l_orderkey = o_orderkey
			JOIN customer ON o_custkey = c_custkey
			WHERE c_mktsegment = 'BUILDING'
			  AND o_orderdate < DATE '1995-03-15'
			  AND l_shipdate > DATE '1995-03-15'
			GROUP BY l_orderkey, o_orderdate, o_shippriority
			ORDER BY revenue DESC, o_orderdate
			LIMIT 10`},
		{Name: "Q4", SQL: `
			SELECT o_orderpriority, COUNT(*) AS order_count
			FROM orders
			SEMI JOIN lineitem ON o_orderkey = l_orderkey
			WHERE o_orderdate BETWEEN DATE '1993-07-01' AND DATE '1993-09-30'
			  AND l_commitdate < l_receiptdate
			GROUP BY o_orderpriority
			ORDER BY o_orderpriority`},
		{Name: "Q5", SQL: `
			SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue
			FROM lineitem
			JOIN orders ON l_orderkey = o_orderkey
			JOIN customer ON o_custkey = c_custkey
			JOIN supplier ON l_suppkey = s_suppkey AND c_nationkey = s_nationkey
			JOIN nation ON s_nationkey = n_nationkey
			JOIN region ON n_regionkey = r_regionkey
			WHERE r_name = 'ASIA'
			  AND o_orderdate BETWEEN DATE '1994-01-01' AND DATE '1994-12-31'
			GROUP BY n_name
			ORDER BY revenue DESC`},
		{Name: "Q6", SQL: `
			SELECT SUM(l_extendedprice * l_discount) AS revenue
			FROM lineitem
			WHERE l_shipdate BETWEEN DATE '1994-01-01' AND DATE '1994-12-31'
			  AND l_discount BETWEEN 0.05 AND 0.07
			  AND l_quantity < 24`},
		{Name: "Q10", SQL: `
			SELECT c_custkey, c_name, c_acctbal, n_name, c_phone, c_address,
			       SUM(l_extendedprice * (1 - l_discount)) AS revenue
			FROM lineitem
			JOIN orders ON l_orderkey = o_orderkey
			JOIN customer ON o_custkey = c_custkey
			JOIN nation ON c_nationkey = n_nationkey
			WHERE o_orderdate BETWEEN DATE '1993-10-01' AND DATE '1993-12-31'
			  AND l_returnflag = 'R'
			GROUP BY c_custkey, c_name, c_acctbal, c_phone, n_name, c_address
			ORDER BY revenue DESC, c_custkey
			LIMIT 20`},
		{Name: "Q11", SQL: `
			SELECT ps_partkey, SUM(ps_supplycost * ps_availqty) AS value
			FROM partsupp
			JOIN supplier ON ps_suppkey = s_suppkey
			JOIN nation ON s_nationkey = n_nationkey
			WHERE n_name = 'GERMANY'
			GROUP BY ps_partkey
			HAVING SUM(ps_supplycost * ps_availqty) >
			       (SELECT SUM(ps_supplycost * ps_availqty) * 0.0001
			        FROM partsupp
			        JOIN supplier ON ps_suppkey = s_suppkey
			        JOIN nation ON s_nationkey = n_nationkey
			        WHERE n_name = 'GERMANY')
			ORDER BY value DESC, ps_partkey`},
		{Name: "Q12", SQL: `
			SELECT l_shipmode,
			       SUM(CASE WHEN o_orderpriority = '1-URGENT' OR o_orderpriority = '2-HIGH'
			                THEN 1 ELSE 0 END) AS high_line_count,
			       SUM(CASE WHEN NOT (o_orderpriority = '1-URGENT' OR o_orderpriority = '2-HIGH')
			                THEN 1 ELSE 0 END) AS low_line_count
			FROM lineitem
			JOIN orders ON l_orderkey = o_orderkey
			WHERE l_shipmode IN ('MAIL', 'SHIP')
			  AND l_commitdate < l_receiptdate
			  AND l_shipdate < l_commitdate
			  AND l_receiptdate BETWEEN DATE '1994-01-01' AND DATE '1994-12-31'
			GROUP BY l_shipmode
			ORDER BY l_shipmode`},
		{Name: "Q14", SQL: `
			SELECT 100.0 * SUM(CASE WHEN p_type LIKE 'PROMO%'
			                        THEN l_extendedprice * (1 - l_discount)
			                        ELSE 0 END)
			             / SUM(l_extendedprice * (1 - l_discount)) AS promo_revenue_pct
			FROM lineitem
			JOIN part ON l_partkey = p_partkey
			WHERE l_shipdate BETWEEN DATE '1995-09-01' AND DATE '1995-09-30'`},
		{Name: "Q18", SQL: `
			SELECT c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice,
			       SUM(l_quantity) AS total_qty
			FROM orders
			JOIN customer ON o_custkey = c_custkey
			JOIN lineitem ON o_orderkey = l_orderkey
			WHERE o_orderkey IN
			      (SELECT l_orderkey FROM lineitem
			       GROUP BY l_orderkey
			       HAVING SUM(l_quantity) > 250)
			GROUP BY c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice
			ORDER BY o_totalprice DESC, o_orderkey
			LIMIT 100`},
		{Name: "Q19", SQL: `
			SELECT SUM(l_extendedprice * (1 - l_discount)) AS revenue
			FROM lineitem
			JOIN part ON l_partkey = p_partkey
			WHERE l_shipmode IN ('AIR', 'REG AIR')
			  AND l_shipinstruct = 'DELIVER IN PERSON'
			  AND ((p_brand = 'Brand#12'
			        AND p_container IN ('SM CASE', 'SM BOX', 'SM PACK', 'SM PKG')
			        AND l_quantity BETWEEN 1 AND 11 AND p_size BETWEEN 1 AND 5)
			    OR (p_brand = 'Brand#23'
			        AND p_container IN ('MED BAG', 'MED BOX', 'MED PKG', 'MED PACK')
			        AND l_quantity BETWEEN 10 AND 20 AND p_size BETWEEN 1 AND 10)
			    OR (p_brand = 'Brand#34'
			        AND p_container IN ('LG CASE', 'LG BOX', 'LG PACK', 'LG PKG')
			        AND l_quantity BETWEEN 20 AND 30 AND p_size BETWEEN 1 AND 15))`},
	}
}

// FindSQL returns the SQL text of a suite query by name.
func FindSQL(name string) (SQLQuery, bool) {
	for _, q := range SQLSuite() {
		if q.Name == name {
			return q, true
		}
	}
	return SQLQuery{}, false
}

// DDL returns CREATE TABLE statements for the eight TPC-H tables,
// matching the schemas in schema.go. Load order follows foreign-key
// dependencies (dimensions before facts).
func DDL() []string {
	return []string{
		`CREATE TABLE region (r_regionkey BIGINT, r_name VARCHAR, r_comment VARCHAR)`,
		`CREATE TABLE nation (n_nationkey BIGINT, n_name VARCHAR, n_regionkey BIGINT, n_comment VARCHAR)`,
		`CREATE TABLE supplier (s_suppkey BIGINT, s_name VARCHAR, s_address VARCHAR,
			s_nationkey BIGINT, s_phone VARCHAR, s_acctbal DOUBLE, s_comment VARCHAR)`,
		`CREATE TABLE customer (c_custkey BIGINT, c_name VARCHAR, c_address VARCHAR,
			c_nationkey BIGINT, c_phone VARCHAR, c_acctbal DOUBLE, c_mktsegment VARCHAR, c_comment VARCHAR)`,
		`CREATE TABLE part (p_partkey BIGINT, p_name VARCHAR, p_mfgr VARCHAR, p_brand VARCHAR,
			p_type VARCHAR, p_size BIGINT, p_container VARCHAR, p_retailprice DOUBLE, p_comment VARCHAR)`,
		`CREATE TABLE partsupp (ps_partkey BIGINT, ps_suppkey BIGINT, ps_availqty BIGINT,
			ps_supplycost DOUBLE, ps_comment VARCHAR)`,
		`CREATE TABLE orders (o_orderkey BIGINT, o_custkey BIGINT, o_orderstatus VARCHAR,
			o_totalprice DOUBLE, o_orderdate DATE, o_orderpriority VARCHAR,
			o_clerk VARCHAR, o_shippriority BIGINT, o_comment VARCHAR)`,
		`CREATE TABLE lineitem (l_orderkey BIGINT, l_partkey BIGINT, l_suppkey BIGINT,
			l_linenumber BIGINT, l_quantity DOUBLE, l_extendedprice DOUBLE, l_discount DOUBLE,
			l_tax DOUBLE, l_returnflag VARCHAR, l_linestatus VARCHAR, l_shipdate DATE,
			l_commitdate DATE, l_receiptdate DATE, l_shipinstruct VARCHAR, l_shipmode VARCHAR,
			l_comment VARCHAR)`,
	}
}
