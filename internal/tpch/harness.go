package tpch

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"vectorwise/internal/algebra"
	"vectorwise/internal/catalog"
	"vectorwise/internal/core"
	"vectorwise/internal/matengine"
	"vectorwise/internal/rewriter"
	"vectorwise/internal/storage"
	"vectorwise/internal/tupleengine"
	"vectorwise/internal/vtypes"
	"vectorwise/internal/xcompile"
)

// Engine selects which executor runs a plan.
type Engine uint8

// Engines under comparison (the paper's §I-A triangle).
const (
	// EngineVectorized is the X100 core.
	EngineVectorized Engine = iota
	// EngineTuple is the tuple-at-a-time Volcano baseline.
	EngineTuple
	// EngineMaterialized is the column-at-a-time materializing baseline.
	EngineMaterialized
)

func (e Engine) String() string {
	return [...]string{"vectorized", "tuple", "materialized"}[e]
}

// RunOptions configure a query execution.
type RunOptions struct {
	// Engine picks the executor.
	Engine Engine
	// Parallel > 1 applies the parallel rewrite (vectorized engine
	// honors it with real threads; serial engines execute the partitions
	// sequentially, which isolates the rewrite overhead).
	Parallel int
	// VecSize overrides the vectorized engine's vector size.
	VecSize int
	// Fetch interposes a buffer manager on scans — pass the DB's so the
	// harness exercises the same chunk-access path the server does.
	Fetch storage.ChunkFetcher
	// ScanStats, when non-nil, receives row-group scanned/pruned
	// counters (vectorized engine only).
	ScanStats *storage.ScanStats
	// NoPrune disables min/max data skipping while keeping the pushed
	// scan filters (differential baseline for pruning itself).
	NoPrune bool
}

// RunQuery executes one query and returns its rows and duration. The
// plan pipeline matches the public SQL path end-to-end: simplify, push
// sargable predicates into scan filters (enabling min/max data
// skipping), then parallelize — so differential suites exercise
// exactly the scan pipeline DB.Query compiles.
func RunQuery(cat *catalog.Catalog, q Query, opts RunOptions) ([]vtypes.Row, time.Duration, error) {
	plan := rewriter.SimplifyPlan(q.Build())
	plan = algebra.PushFiltersIntoScans(plan)
	if opts.Parallel > 1 {
		plan = rewriter.Parallelize(plan, cat, opts.Parallel)
	}
	start := time.Now()
	var rows []vtypes.Row
	var err error
	switch opts.Engine {
	case EngineVectorized:
		var op core.Operator
		op, err = xcompile.Compile(plan, cat, xcompile.Options{
			VecSize:   opts.VecSize,
			Fetch:     opts.Fetch,
			ScanStats: opts.ScanStats,
			NoPrune:   opts.NoPrune,
		})
		if err == nil {
			rows, err = core.Collect(op)
		}
	case EngineTuple:
		rows, err = tupleengine.Run(plan, cat)
	case EngineMaterialized:
		rows, err = matengine.Run(plan, cat)
	}
	return rows, time.Since(start), err
}

// PowerResult is one power run: each query once, in order.
type PowerResult struct {
	SF        float64
	Engine    Engine
	Durations map[string]time.Duration
	// QphPower is the TPC-H power metric adapted to the implemented
	// query count: (3600 × SF × Nq/22) / geomean(seconds).
	QphPower float64
	Total    time.Duration
}

// PowerRun executes the suite once on one engine.
func PowerRun(cat *catalog.Catalog, sf float64, opts RunOptions) (*PowerResult, error) {
	res := &PowerResult{SF: sf, Engine: opts.Engine, Durations: make(map[string]time.Duration)}
	logSum := 0.0
	n := 0
	for _, q := range Suite() {
		_, d, err := RunQuery(cat, q, opts)
		if err != nil {
			return nil, fmt.Errorf("tpch: %s on %v: %w", q.Name, opts.Engine, err)
		}
		res.Durations[q.Name] = d
		res.Total += d
		logSum += math.Log(d.Seconds())
		n++
	}
	geo := math.Exp(logSum / float64(n))
	res.QphPower = 3600 * sf * float64(n) / 22 / geo
	return res, nil
}

// ThroughputResult is a multi-stream throughput run.
type ThroughputResult struct {
	SF      float64
	Engine  Engine
	Streams int
	Total   time.Duration
	// QphThroughput = (streams × Nq × 3600 × SF × Nq/22) / elapsed,
	// following the spec's shape with the implemented query count.
	QphThroughput float64
}

// ThroughputRun executes `streams` concurrent query streams.
func ThroughputRun(cat *catalog.Catalog, sf float64, streams int, opts RunOptions) (*ThroughputResult, error) {
	if streams <= 0 {
		streams = runtime.GOMAXPROCS(0)
	}
	var wg sync.WaitGroup
	errs := make(chan error, streams)
	start := time.Now()
	for s := 0; s < streams; s++ {
		wg.Add(1)
		go func(stream int) {
			defer wg.Done()
			suite := Suite()
			// Each stream runs the suite in a rotated order, like the
			// spec's stream permutations.
			for i := range suite {
				q := suite[(i+stream)%len(suite)]
				if _, _, err := RunQuery(cat, q, opts); err != nil {
					errs <- err
					return
				}
			}
		}(s)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	n := len(Suite())
	qph := float64(streams*n) * 3600 * sf * float64(n) / 22 / elapsed.Seconds()
	return &ThroughputResult{
		SF: sf, Engine: opts.Engine, Streams: streams,
		Total: elapsed, QphThroughput: qph,
	}, nil
}

// QphH combines power and throughput the TPC-H way (geometric mean).
func QphH(power *PowerResult, tput *ThroughputResult) float64 {
	return math.Sqrt(power.QphPower * tput.QphThroughput)
}

// Validate cross-checks every suite query across all three engines on
// the given catalog, returning an error naming the first divergence.
// The experiment harness runs it before timing anything.
func Validate(cat *catalog.Catalog) error {
	for _, q := range Suite() {
		vrows, _, err := RunQuery(cat, q, RunOptions{Engine: EngineVectorized})
		if err != nil {
			return fmt.Errorf("%s vectorized: %w", q.Name, err)
		}
		trows, _, err := RunQuery(cat, q, RunOptions{Engine: EngineTuple})
		if err != nil {
			return fmt.Errorf("%s tuple: %w", q.Name, err)
		}
		mrows, _, err := RunQuery(cat, q, RunOptions{Engine: EngineMaterialized})
		if err != nil {
			return fmt.Errorf("%s materialized: %w", q.Name, err)
		}
		if err := sameRows(q.Name, vrows, trows); err != nil {
			return err
		}
		if err := sameRows(q.Name, vrows, mrows); err != nil {
			return err
		}
		// Parallel plan must agree with serial.
		prows, _, err := RunQuery(cat, q, RunOptions{Engine: EngineVectorized, Parallel: 2})
		if err != nil {
			return fmt.Errorf("%s parallel: %w", q.Name, err)
		}
		if err := sameRowsUnordered(q.Name+"-parallel", vrows, prows); err != nil {
			return err
		}
		// Min/max data skipping must not change results.
		nrows, _, err := RunQuery(cat, q, RunOptions{Engine: EngineVectorized, NoPrune: true})
		if err != nil {
			return fmt.Errorf("%s noprune: %w", q.Name, err)
		}
		if err := sameRows(q.Name+"-noprune", vrows, nrows); err != nil {
			return err
		}
	}
	return nil
}

func sameRows(name string, a, b []vtypes.Row) error {
	if len(a) != len(b) {
		return fmt.Errorf("tpch %s: row counts differ (%d vs %d)", name, len(a), len(b))
	}
	for i := range a {
		for c := range a[i] {
			if !valueClose(a[i][c], b[i][c]) {
				return fmt.Errorf("tpch %s: row %d col %d differs: %v vs %v", name, i, c, a[i][c], b[i][c])
			}
		}
	}
	return nil
}

// sameRowsUnordered compares as multisets (parallel unions reorder
// groups; sorted queries stay ordered but ungrouped positions may not).
func sameRowsUnordered(name string, a, b []vtypes.Row) error {
	if len(a) != len(b) {
		return fmt.Errorf("tpch %s: row counts differ (%d vs %d)", name, len(a), len(b))
	}
	used := make([]bool, len(b))
outer:
	for i := range a {
		for j := range b {
			if used[j] {
				continue
			}
			match := true
			for c := range a[i] {
				if !valueClose(a[i][c], b[j][c]) {
					match = false
					break
				}
			}
			if match {
				used[j] = true
				continue outer
			}
		}
		return fmt.Errorf("tpch %s: row %d has no match", name, i)
	}
	return nil
}

// valueClose compares values with a relative tolerance on floats
// (parallel partial sums reorder float addition).
func valueClose(a, b vtypes.Value) bool {
	if a.Null != b.Null {
		return false
	}
	if a.Null {
		return true
	}
	if a.Kind == vtypes.KindF64 || b.Kind == vtypes.KindF64 {
		af, bf := a.AsFloat(), b.AsFloat()
		diff := math.Abs(af - bf)
		scale := math.Max(math.Abs(af), math.Abs(bf))
		return diff <= 1e-6*math.Max(scale, 1)
	}
	return a.Equal(b)
}
