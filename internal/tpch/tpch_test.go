package tpch

import (
	"testing"

	"vectorwise/internal/vtypes"
)

// tiny catalog shared by tests (SF 0.002 ≈ 3000 orders, ~12k lineitems).
func tinyCat(t testing.TB) interface{ anyCat() } { return nil }

func TestGeneratorShapes(t *testing.T) {
	cat, err := Generate(0.002, 1024)
	if err != nil {
		t.Fatal(err)
	}
	sz := SizesFor(0.002)
	for _, chk := range []struct {
		table string
		want  int64
	}{
		{"region", 5}, {"nation", 25},
		{"supplier", sz.Supplier}, {"customer", sz.Customer},
		{"part", sz.Part}, {"orders", sz.Orders}, {"partsupp", sz.Part * 4},
	} {
		tbl, _, err := cat.Resolve(chk.table)
		if err != nil {
			t.Fatal(err)
		}
		if tbl.Rows() != chk.want {
			t.Errorf("%s: %d rows, want %d", chk.table, tbl.Rows(), chk.want)
		}
	}
	li, _, err := cat.Resolve("lineitem")
	if err != nil {
		t.Fatal(err)
	}
	// ~4 lines per order on average.
	if li.Rows() < sz.Orders*2 || li.Rows() > sz.Orders*7 {
		t.Errorf("lineitem rows %d out of expected band", li.Rows())
	}
	// FK integrity spot check: partkeys within range.
	r, err := li.RowAt(0)
	if err != nil {
		t.Fatal(err)
	}
	if r[LPartKey].I64 < 1 || r[LPartKey].I64 > sz.Part {
		t.Errorf("lineitem partkey %d out of range", r[LPartKey].I64)
	}
	// Determinism: regenerating yields identical rows.
	cat2, err := Generate(0.002, 1024)
	if err != nil {
		t.Fatal(err)
	}
	li2, _, _ := cat2.Resolve("lineitem")
	for _, pos := range []int64{0, 100, li.Rows() - 1} {
		a, _ := li.RowAt(pos)
		b, _ := li2.RowAt(pos)
		for c := range a {
			if !a[c].Equal(b[c]) {
				t.Fatalf("generator not deterministic at row %d col %d", pos, c)
			}
		}
	}
}

func TestSuiteValidatesAcrossEngines(t *testing.T) {
	cat, err := Generate(0.002, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(cat); err != nil {
		t.Fatal(err)
	}
}

func TestQueriesReturnPlausibleResults(t *testing.T) {
	cat, err := Generate(0.002, 2048)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range Suite() {
		rows, d, err := RunQuery(cat, q, RunOptions{Engine: EngineVectorized})
		if err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		if d <= 0 {
			t.Fatalf("%s: non-positive duration", q.Name)
		}
		switch q.Name {
		case "Q1":
			if len(rows) < 3 || len(rows) > 6 {
				t.Errorf("Q1 groups = %d, want 4-ish", len(rows))
			}
			for _, r := range rows {
				if r[9].I64 <= 0 {
					t.Errorf("Q1 count_order must be positive")
				}
			}
		case "Q3":
			if len(rows) > 10 {
				t.Errorf("Q3 must respect LIMIT 10, got %d", len(rows))
			}
		case "Q6":
			if len(rows) != 1 {
				t.Fatalf("Q6 must return one row")
			}
			if rows[0][0].F64 <= 0 {
				t.Errorf("Q6 revenue must be positive, got %v", rows[0][0])
			}
		case "Q10":
			if len(rows) > 20 {
				t.Errorf("Q10 must respect LIMIT 20")
			}
		case "Q14":
			if len(rows) != 1 || rows[0][0].F64 < 0 || rows[0][0].F64 > 100 {
				t.Errorf("Q14 promo pct implausible: %v", rows)
			}
		}
	}
}

func TestPowerAndThroughputMetrics(t *testing.T) {
	cat, err := Generate(0.001, 2048)
	if err != nil {
		t.Fatal(err)
	}
	p, err := PowerRun(cat, 0.001, RunOptions{Engine: EngineVectorized})
	if err != nil {
		t.Fatal(err)
	}
	if p.QphPower <= 0 || len(p.Durations) != len(Suite()) {
		t.Fatalf("power metrics wrong: %+v", p)
	}
	tp, err := ThroughputRun(cat, 0.001, 2, RunOptions{Engine: EngineVectorized})
	if err != nil {
		t.Fatal(err)
	}
	if tp.QphThroughput <= 0 {
		t.Fatal("throughput metric wrong")
	}
	if QphH(p, tp) <= 0 {
		t.Fatal("composite metric wrong")
	}
}

func TestQ6MatchesScalarReference(t *testing.T) {
	// Recompute Q6 with a plain scalar loop over the raw table.
	cat, err := Generate(0.002, 2048)
	if err != nil {
		t.Fatal(err)
	}
	li, _, _ := cat.Resolve("lineitem")
	lo := vtypes.MustParseDate("1994-01-01")
	hi := vtypes.MustParseDate("1994-12-31")
	var want float64
	ship, _ := li.ReadAllColumn(LShipDate)
	disc, _ := li.ReadAllColumn(LDiscount)
	qty, _ := li.ReadAllColumn(LQuantity)
	extp, _ := li.ReadAllColumn(LExtendedPrice)
	for i := 0; i < int(li.Rows()); i++ {
		if ship.I64[i] >= lo && ship.I64[i] <= hi &&
			disc.F64[i] >= 0.05 && disc.F64[i] <= 0.07 && qty.F64[i] < 24 {
			want += extp.F64[i] * disc.F64[i]
		}
	}
	rows, _, err := RunQuery(cat, Query{Name: "Q6", Build: Q6}, RunOptions{Engine: EngineVectorized})
	if err != nil {
		t.Fatal(err)
	}
	got := rows[0][0].F64
	if diff := got - want; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("Q6 = %v, scalar reference %v", got, want)
	}
}
