// Package tpch implements the TPC-H substrate of the paper's evaluation
// (§I-C): a deterministic dbgen-style data generator for all eight
// tables, a representative query suite expressed as optimized algebra
// plans, and the QphH-style power/throughput harness that regenerates
// the paper's benchmark table at laptop scale (see DESIGN.md for the
// scale substitution).
package tpch

import "vectorwise/internal/vtypes"

// Column index constants; names follow TPC-H.
const (
	// lineitem
	LOrderKey = iota
	LPartKey
	LSuppKey
	LLineNumber
	LQuantity
	LExtendedPrice
	LDiscount
	LTax
	LReturnFlag
	LLineStatus
	LShipDate
	LCommitDate
	LReceiptDate
	LShipInstruct
	LShipMode
	LComment
)

// orders columns.
const (
	OOrderKey = iota
	OCustKey
	OOrderStatus
	OTotalPrice
	OOrderDate
	OOrderPriority
	OClerk
	OShipPriority
	OComment
)

// customer columns.
const (
	CCustKey = iota
	CName
	CAddress
	CNationKey
	CPhone
	CAcctBal
	CMktSegment
	CComment
)

// supplier columns.
const (
	SSuppKey = iota
	SName
	SAddress
	SNationKey
	SPhone
	SAcctBal
	SComment
)

// part columns.
const (
	PPartKey = iota
	PName
	PMfgr
	PBrand
	PType
	PSize
	PContainer
	PRetailPrice
	PComment
)

// partsupp columns.
const (
	PSPartKey = iota
	PSSuppKey
	PSAvailQty
	PSSupplyCost
	PSComment
)

// nation columns.
const (
	NNationKey = iota
	NName
	NRegionKey
	NComment
)

// region columns.
const (
	RRegionKey = iota
	RName
	RComment
)

func i64col(name string) vtypes.Column  { return vtypes.Column{Name: name, Kind: vtypes.KindI64} }
func f64col(name string) vtypes.Column  { return vtypes.Column{Name: name, Kind: vtypes.KindF64} }
func strcol(name string) vtypes.Column  { return vtypes.Column{Name: name, Kind: vtypes.KindStr} }
func datecol(name string) vtypes.Column { return vtypes.Column{Name: name, Kind: vtypes.KindDate} }

// LineitemSchema returns the lineitem schema.
func LineitemSchema() *vtypes.Schema {
	return vtypes.NewSchema(
		i64col("l_orderkey"), i64col("l_partkey"), i64col("l_suppkey"), i64col("l_linenumber"),
		f64col("l_quantity"), f64col("l_extendedprice"), f64col("l_discount"), f64col("l_tax"),
		strcol("l_returnflag"), strcol("l_linestatus"),
		datecol("l_shipdate"), datecol("l_commitdate"), datecol("l_receiptdate"),
		strcol("l_shipinstruct"), strcol("l_shipmode"), strcol("l_comment"),
	)
}

// OrdersSchema returns the orders schema.
func OrdersSchema() *vtypes.Schema {
	return vtypes.NewSchema(
		i64col("o_orderkey"), i64col("o_custkey"), strcol("o_orderstatus"),
		f64col("o_totalprice"), datecol("o_orderdate"), strcol("o_orderpriority"),
		strcol("o_clerk"), i64col("o_shippriority"), strcol("o_comment"),
	)
}

// CustomerSchema returns the customer schema.
func CustomerSchema() *vtypes.Schema {
	return vtypes.NewSchema(
		i64col("c_custkey"), strcol("c_name"), strcol("c_address"), i64col("c_nationkey"),
		strcol("c_phone"), f64col("c_acctbal"), strcol("c_mktsegment"), strcol("c_comment"),
	)
}

// SupplierSchema returns the supplier schema.
func SupplierSchema() *vtypes.Schema {
	return vtypes.NewSchema(
		i64col("s_suppkey"), strcol("s_name"), strcol("s_address"), i64col("s_nationkey"),
		strcol("s_phone"), f64col("s_acctbal"), strcol("s_comment"),
	)
}

// PartSchema returns the part schema.
func PartSchema() *vtypes.Schema {
	return vtypes.NewSchema(
		i64col("p_partkey"), strcol("p_name"), strcol("p_mfgr"), strcol("p_brand"),
		strcol("p_type"), i64col("p_size"), strcol("p_container"),
		f64col("p_retailprice"), strcol("p_comment"),
	)
}

// PartsuppSchema returns the partsupp schema.
func PartsuppSchema() *vtypes.Schema {
	return vtypes.NewSchema(
		i64col("ps_partkey"), i64col("ps_suppkey"), i64col("ps_availqty"),
		f64col("ps_supplycost"), strcol("ps_comment"),
	)
}

// NationSchema returns the nation schema.
func NationSchema() *vtypes.Schema {
	return vtypes.NewSchema(
		i64col("n_nationkey"), strcol("n_name"), i64col("n_regionkey"), strcol("n_comment"),
	)
}

// RegionSchema returns the region schema.
func RegionSchema() *vtypes.Schema {
	return vtypes.NewSchema(i64col("r_regionkey"), strcol("r_name"), strcol("r_comment"))
}
