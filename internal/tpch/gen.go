package tpch

import (
	"fmt"

	"vectorwise/internal/catalog"
	"vectorwise/internal/storage"
	"vectorwise/internal/vtypes"
)

// Deterministic dbgen-style generator. Row counts follow the TPC-H
// cardinality formulas scaled by SF; value distributions mimic dbgen's
// (uniform keys, date windows, text pools) closely enough that query
// selectivities land near the spec's, which is what the benchmark shape
// depends on. A splitmix64 stream keyed by (table, row) makes every
// value reproducible independent of generation order.

type rng struct{ state uint64 }

func newRng(table uint64, row int64) *rng {
	return &rng{state: table*0x9e3779b97f4a7c15 + uint64(row)*0xbf58476d1ce4e5b9 + 0x94d049bb133111eb}
}

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a uniform value in [0, n).
func (r *rng) intn(n int64) int64 { return int64(r.next() % uint64(n)) }

// rang returns a uniform value in [lo, hi] inclusive.
func (r *rng) rang(lo, hi int64) int64 { return lo + r.intn(hi-lo+1) }

func (r *rng) pick(list []string) string { return list[r.intn(int64(len(list)))] }

// dbgen text pools (abbreviated but shaped like the spec's).
var (
	regions = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
	nations = []string{"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA", "FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES"}
	// nationRegion maps nation key to region key per the spec.
	nationRegion = []int64{0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2, 4, 0, 0, 0, 1, 2, 3, 4, 2, 3, 3, 1}
	segments     = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	priorities   = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	shipModes    = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
	instructs    = []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}
	containers   = []string{"SM CASE", "SM BOX", "SM PACK", "SM PKG", "MED BAG", "MED BOX", "MED PKG", "MED PACK", "LG CASE", "LG BOX", "LG PACK", "LG PKG", "JUMBO PKG", "WRAP CASE"}
	colors       = []string{"almond", "antique", "aquamarine", "azure", "beige", "bisque", "black", "blanched", "blue", "blush", "brown", "burlywood", "burnished", "chartreuse", "chiffon", "chocolate", "coral", "cornflower", "cream", "cyan", "dark", "deep", "dim", "dodger", "drab", "firebrick", "floral", "forest", "frosted", "gainsboro", "ghost", "goldenrod", "green", "grey", "honeydew", "hot", "indian", "ivory", "khaki", "lace", "lavender", "lawn", "lemon", "light", "lime", "linen", "magenta", "maroon", "medium", "metallic", "midnight", "mint", "misty", "moccasin", "navajo", "navy", "olive", "orange", "orchid", "pale", "papaya", "peach", "peru", "pink", "plum", "powder", "puff", "purple", "red", "rose", "rosy", "royal", "saddle", "salmon", "sandy", "seashell", "sienna", "sky", "slate", "smoke", "snow", "spring", "steel", "tan", "thistle", "tomato", "turquoise", "violet", "wheat", "white", "yellow"}
	types1       = []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
	types2       = []string{"ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"}
	types3       = []string{"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"}
	commentWords = []string{"requests", "deposits", "packages", "foxes", "accounts", "pending", "furiously", "carefully", "quickly", "special", "express", "regular", "final", "bold", "even", "silent", "ironic"}
)

// Date window of the spec: orders span 1992-01-01 .. 1998-08-02.
var (
	dateLo = vtypes.MustParseDate("1992-01-01")
	dateHi = vtypes.MustParseDate("1998-08-02")
)

// Sizes describes scaled table cardinalities.
type Sizes struct {
	Supplier, Customer, Part, Partsupp, Orders int64
}

// SizesFor returns cardinalities for a scale factor.
func SizesFor(sf float64) Sizes {
	return Sizes{
		Supplier: int64(10000 * sf),
		Customer: int64(150000 * sf),
		Part:     int64(200000 * sf),
		Partsupp: int64(800000 * sf),
		Orders:   int64(1500000 * sf),
	}
}

func (r *rng) comment(words int) string {
	out := ""
	for i := 0; i < words; i++ {
		if i > 0 {
			out += " "
		}
		out += r.pick(commentWords)
	}
	return out
}

// Generate builds all eight TPC-H tables at the given scale factor into
// a catalog. groupRows <= 0 uses the storage default.
func Generate(sf float64, groupRows int) (*catalog.Catalog, error) {
	cat := catalog.New()
	sz := SizesFor(sf)

	put := func(t *storage.Table, err error) error {
		if err != nil {
			return err
		}
		cat.Put(t)
		return nil
	}
	if err := put(genRegion(groupRows)); err != nil {
		return nil, err
	}
	if err := put(genNation(groupRows)); err != nil {
		return nil, err
	}
	if err := put(genSupplier(sz.Supplier, groupRows)); err != nil {
		return nil, err
	}
	if err := put(genCustomer(sz.Customer, groupRows)); err != nil {
		return nil, err
	}
	if err := put(genPart(sz.Part, groupRows)); err != nil {
		return nil, err
	}
	if err := put(genPartsupp(sz.Part, sz.Supplier, groupRows)); err != nil {
		return nil, err
	}
	if err := put(genOrders(sz.Orders, sz.Customer, groupRows)); err != nil {
		return nil, err
	}
	if err := put(genLineitem(sz.Orders, sz.Part, sz.Supplier, groupRows)); err != nil {
		return nil, err
	}
	if err := cat.AnalyzeAll(); err != nil {
		return nil, err
	}
	return cat, nil
}

func genRegion(groupRows int) (*storage.Table, error) {
	b := storage.NewBuilder("region", RegionSchema(), groupRows)
	for i, name := range regions {
		r := newRng(1, int64(i))
		if err := b.AppendRow(vtypes.Row{
			vtypes.I64Value(int64(i)), vtypes.StrValue(name), vtypes.StrValue(r.comment(4)),
		}); err != nil {
			return nil, err
		}
	}
	return b.Finish()
}

func genNation(groupRows int) (*storage.Table, error) {
	b := storage.NewBuilder("nation", NationSchema(), groupRows)
	for i, name := range nations {
		r := newRng(2, int64(i))
		if err := b.AppendRow(vtypes.Row{
			vtypes.I64Value(int64(i)), vtypes.StrValue(name),
			vtypes.I64Value(nationRegion[i]), vtypes.StrValue(r.comment(5)),
		}); err != nil {
			return nil, err
		}
	}
	return b.Finish()
}

func genSupplier(n int64, groupRows int) (*storage.Table, error) {
	b := storage.NewBuilder("supplier", SupplierSchema(), groupRows)
	for i := int64(1); i <= n; i++ {
		r := newRng(3, i)
		if err := b.AppendRow(vtypes.Row{
			vtypes.I64Value(i),
			vtypes.StrValue(fmt.Sprintf("Supplier#%09d", i)),
			vtypes.StrValue(r.comment(2)),
			vtypes.I64Value(r.intn(25)),
			vtypes.StrValue(fmt.Sprintf("%02d-%03d-%03d-%04d", 10+r.intn(25), r.intn(1000), r.intn(1000), r.intn(10000))),
			vtypes.F64Value(float64(r.rang(-99999, 999999)) / 100),
			vtypes.StrValue(r.comment(6)),
		}); err != nil {
			return nil, err
		}
	}
	return b.Finish()
}

func genCustomer(n int64, groupRows int) (*storage.Table, error) {
	b := storage.NewBuilder("customer", CustomerSchema(), groupRows)
	for i := int64(1); i <= n; i++ {
		r := newRng(4, i)
		if err := b.AppendRow(vtypes.Row{
			vtypes.I64Value(i),
			vtypes.StrValue(fmt.Sprintf("Customer#%09d", i)),
			vtypes.StrValue(r.comment(2)),
			vtypes.I64Value(r.intn(25)),
			vtypes.StrValue(fmt.Sprintf("%02d-%03d-%03d-%04d", 10+r.intn(25), r.intn(1000), r.intn(1000), r.intn(10000))),
			vtypes.F64Value(float64(r.rang(-99999, 999999)) / 100),
			vtypes.StrValue(r.pick(segments)),
			vtypes.StrValue(r.comment(7)),
		}); err != nil {
			return nil, err
		}
	}
	return b.Finish()
}

func genPart(n int64, groupRows int) (*storage.Table, error) {
	b := storage.NewBuilder("part", PartSchema(), groupRows)
	for i := int64(1); i <= n; i++ {
		r := newRng(5, i)
		name := r.pick(colors) + " " + r.pick(colors) + " " + r.pick(colors) + " " + r.pick(colors) + " " + r.pick(colors)
		mfgr := 1 + r.intn(5)
		brand := mfgr*10 + 1 + r.intn(5)
		if err := b.AppendRow(vtypes.Row{
			vtypes.I64Value(i),
			vtypes.StrValue(name),
			vtypes.StrValue(fmt.Sprintf("Manufacturer#%d", mfgr)),
			vtypes.StrValue(fmt.Sprintf("Brand#%d", brand)),
			vtypes.StrValue(r.pick(types1) + " " + r.pick(types2) + " " + r.pick(types3)),
			vtypes.I64Value(1 + r.intn(50)),
			vtypes.StrValue(r.pick(containers)),
			vtypes.F64Value(90000.0/100 + float64(i%200000)/2000 + 0.01*float64(i%1000)),
			vtypes.StrValue(r.comment(3)),
		}); err != nil {
			return nil, err
		}
	}
	return b.Finish()
}

func genPartsupp(parts, suppliers int64, groupRows int) (*storage.Table, error) {
	b := storage.NewBuilder("partsupp", PartsuppSchema(), groupRows)
	suppliers = maxI64(suppliers, 1)
	for p := int64(1); p <= parts; p++ {
		for s := int64(0); s < 4; s++ {
			r := newRng(6, p*4+s)
			if err := b.AppendRow(vtypes.Row{
				vtypes.I64Value(p),
				vtypes.I64Value(1 + (p+s*(parts/4+1))%suppliers),
				vtypes.I64Value(1 + r.intn(9999)),
				vtypes.F64Value(float64(r.rang(100, 100000)) / 100),
				vtypes.StrValue(r.comment(5)),
			}); err != nil {
				return nil, err
			}
		}
	}
	return b.Finish()
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func genOrders(n, customers int64, groupRows int) (*storage.Table, error) {
	b := storage.NewBuilder("orders", OrdersSchema(), groupRows)
	customers = maxI64(customers, 1)
	for i := int64(1); i <= n; i++ {
		r := newRng(7, i)
		odate := dateLo + r.intn(dateHi-dateLo-151)
		if err := b.AppendRow(vtypes.Row{
			vtypes.I64Value(i),
			vtypes.I64Value(1 + r.intn(customers)),
			vtypes.StrValue(r.pick([]string{"O", "F", "P"})),
			vtypes.F64Value(float64(r.rang(85000, 55528500)) / 100),
			vtypes.DateValue(odate),
			vtypes.StrValue(r.pick(priorities)),
			vtypes.StrValue(fmt.Sprintf("Clerk#%09d", 1+r.intn(maxI64(n/1500, 1)))),
			vtypes.I64Value(0),
			vtypes.StrValue(r.comment(6)),
		}); err != nil {
			return nil, err
		}
	}
	return b.Finish()
}

// OrderDate recomputes an order's date (shared with lineitem generation).
func orderDate(orderKey int64) int64 {
	r := newRng(7, orderKey)
	return dateLo + r.intn(dateHi-dateLo-151)
}

func genLineitem(orders, parts, suppliers int64, groupRows int) (*storage.Table, error) {
	b := storage.NewBuilder("lineitem", LineitemSchema(), groupRows)
	parts = maxI64(parts, 1)
	suppliers = maxI64(suppliers, 1)
	for o := int64(1); o <= orders; o++ {
		r := newRng(8, o)
		lines := 1 + r.intn(7)
		odate := orderDate(o)
		for l := int64(0); l < lines; l++ {
			lr := newRng(9, o*8+l)
			qty := float64(1 + lr.intn(50))
			price := float64(lr.rang(90000, 200000)) / 100 * qty / 10
			ship := odate + 1 + lr.intn(121)
			commit := odate + 30 + lr.intn(61)
			receipt := ship + 1 + lr.intn(30)
			rf := "N"
			if receipt <= vtypes.MustParseDate("1995-06-17") {
				if lr.intn(2) == 0 {
					rf = "R"
				} else {
					rf = "A"
				}
			}
			ls := "O"
			if ship <= vtypes.MustParseDate("1995-06-17") {
				ls = "F"
			}
			if err := b.AppendRow(vtypes.Row{
				vtypes.I64Value(o),
				vtypes.I64Value(1 + lr.intn(parts)),
				vtypes.I64Value(1 + lr.intn(suppliers)),
				vtypes.I64Value(l + 1),
				vtypes.F64Value(qty),
				vtypes.F64Value(price),
				vtypes.F64Value(float64(lr.intn(11)) / 100),
				vtypes.F64Value(float64(lr.intn(9)) / 100),
				vtypes.StrValue(rf),
				vtypes.StrValue(ls),
				vtypes.DateValue(ship),
				vtypes.DateValue(commit),
				vtypes.DateValue(receipt),
				vtypes.StrValue(lr.pick(instructs)),
				vtypes.StrValue(lr.pick(shipModes)),
				vtypes.StrValue(lr.comment(4)),
			}); err != nil {
				return nil, err
			}
		}
	}
	return b.Finish()
}
