package wal

import (
	"os"
	"path/filepath"
	"testing"
)

func TestAppendReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.wal")
	l, recs, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatal("fresh log must be empty")
	}
	if _, err := l.Append(1, KindData, "orders", []byte("pdt-1")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(1, KindCommit, "", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(2, KindData, "lineitem", []byte("pdt-2")); err != nil {
		t.Fatal(err)
	}
	// txn 2 has no commit marker.
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	l.Close()

	_, recs, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("replayed %d records", len(recs))
	}
	if recs[0].LSN != 1 || recs[2].LSN != 3 {
		t.Fatal("LSNs wrong")
	}
	committed := CommittedTxns(recs)
	if len(committed) != 1 || committed[0].Table != "orders" || string(committed[0].Data) != "pdt-1" {
		t.Fatalf("committed filter wrong: %+v", committed)
	}
}

func TestLSNContinuesAfterReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.wal")
	l, _, _ := Open(path)
	lsn1, _ := l.Append(1, KindCommit, "", nil)
	l.Close()
	l2, _, _ := Open(path)
	defer l2.Close()
	lsn2, _ := l2.Append(2, KindCommit, "", nil)
	if lsn2 != lsn1+1 {
		t.Fatalf("LSN must continue: %d then %d", lsn1, lsn2)
	}
}

func TestCorruptTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.wal")
	l, _, _ := Open(path)
	if _, err := l.Append(1, KindData, "t", []byte("good")); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Flip a byte in a second, appended record's payload.
	f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	f.Write([]byte{200, 0, 0, 0, 1, 2, 3, 4, 9, 9}) // bogus header + short payload
	f.Close()

	l2, recs, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(recs) != 1 || string(recs[0].Data) != "good" {
		t.Fatalf("intact prefix must survive: %+v", recs)
	}
	// The torn tail must have been truncated: appending then reopening
	// yields exactly two records.
	if _, err := l2.Append(2, KindCommit, "", nil); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	_, recs, _ = Open(path)
	if len(recs) != 2 {
		t.Fatalf("after truncate+append: %d records", len(recs))
	}
}

func TestResetKeepsLSNsMonotonic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.wal")
	l, _, _ := Open(path)
	_, _ = l.Append(1, KindData, "t", []byte("x"))
	last, _ := l.Append(1, KindCommit, "", nil)
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	lsn, _ := l.Append(2, KindCommit, "", nil)
	if lsn <= last {
		t.Fatalf("LSNs must stay monotonic across reset: %d then %d", last, lsn)
	}
	l.Close()

	// Reopen: the reset sentinel carries the sequence forward, old data
	// records are gone, and appends keep increasing.
	l2, recs, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := CommittedTxns(recs); len(got) != 0 {
		t.Fatalf("reset must drop old data records, got %d", len(got))
	}
	lsn2, _ := l2.Append(3, KindCommit, "", nil)
	if lsn2 <= lsn {
		t.Fatalf("LSNs must stay monotonic across reset+reopen: %d then %d", lsn, lsn2)
	}
}
