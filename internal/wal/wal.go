// Package wal implements the write-ahead log of the transaction layer.
// As the paper describes, Vectorwise "uses a Write Ahead Log that logs
// PDTs as they are committed": each committed transaction appends one
// data record per written table containing its serialized (rebased) PDT,
// followed by a commit marker. Recovery replays committed transactions
// in LSN order, re-propagating each PDT onto the table's master PDT.
//
// Record framing (little-endian):
//
//	len   uint32  — payload length
//	crc   uint32  — IEEE CRC-32 of payload
//	payload:
//	  lsn    uint64
//	  txn    uint64
//	  kind   byte   (1 = data, 2 = commit)
//	  tblLen uint16 | table name | pdt bytes   (data records only)
//
// A torn tail (partial final record or CRC mismatch) is detected on
// replay and truncated, the standard WAL recovery contract.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// RecordKind discriminates log records.
type RecordKind byte

// Log record kinds.
const (
	// KindData carries one table's serialized PDT for a transaction.
	KindData RecordKind = 1
	// KindCommit marks the transaction as durably committed.
	KindCommit RecordKind = 2
	// KindReset is the sentinel Reset writes after truncating the log.
	// Its only job is to carry the pre-truncation LSN forward, so LSNs
	// stay monotonic for the life of the database even across resets —
	// the property that lets table images record an applied-LSN
	// watermark and recovery skip records already folded into them.
	KindReset RecordKind = 3
)

// Record is one log entry.
type Record struct {
	LSN   uint64
	Txn   uint64
	Kind  RecordKind
	Table string // data records only
	Data  []byte // serialized PDT, data records only
}

// Log is an append-only write-ahead log.
type Log struct {
	f       *os.File
	path    string
	nextLSN uint64
}

// Open opens (creating if needed) the log at path and replays existing
// records. A corrupt or torn tail is truncated. The returned records are
// every intact record in LSN order.
func Open(path string) (*Log, []Record, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	recs, validLen, err := scan(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if err := f.Truncate(validLen); err != nil {
		f.Close()
		return nil, nil, err
	}
	if _, err := f.Seek(validLen, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	l := &Log{f: f, path: path, nextLSN: 1}
	if len(recs) > 0 {
		l.nextLSN = recs[len(recs)-1].LSN + 1
	}
	return l, recs, nil
}

// scan reads intact records and returns them with the valid byte length.
func scan(f *os.File) ([]Record, int64, error) {
	raw, err := io.ReadAll(f)
	if err != nil {
		return nil, 0, err
	}
	var recs []Record
	off := int64(0)
	for int(off)+8 <= len(raw) {
		plen := binary.LittleEndian.Uint32(raw[off:])
		crc := binary.LittleEndian.Uint32(raw[off+4:])
		if int(off)+8+int(plen) > len(raw) {
			break // torn tail
		}
		payload := raw[off+8 : off+8+int64(plen)]
		if crc32.ChecksumIEEE(payload) != crc {
			break // corrupt tail
		}
		rec, perr := decodePayload(payload)
		if perr != nil {
			break
		}
		recs = append(recs, rec)
		off += 8 + int64(plen)
	}
	return recs, off, nil
}

func decodePayload(p []byte) (Record, error) {
	if len(p) < 17 {
		return Record{}, fmt.Errorf("wal: short payload")
	}
	rec := Record{
		LSN:  binary.LittleEndian.Uint64(p[0:]),
		Txn:  binary.LittleEndian.Uint64(p[8:]),
		Kind: RecordKind(p[16]),
	}
	p = p[17:]
	if rec.Kind == KindData {
		if len(p) < 2 {
			return Record{}, fmt.Errorf("wal: short table name")
		}
		tl := binary.LittleEndian.Uint16(p)
		if len(p) < 2+int(tl) {
			return Record{}, fmt.Errorf("wal: short table name")
		}
		rec.Table = string(p[2 : 2+tl])
		rec.Data = append([]byte(nil), p[2+tl:]...)
	}
	return rec, nil
}

// Append writes a record, assigns its LSN and flushes it to disk.
func (l *Log) Append(txn uint64, kind RecordKind, table string, data []byte) (uint64, error) {
	lsn := l.nextLSN
	payload := make([]byte, 17, 19+len(table)+len(data))
	binary.LittleEndian.PutUint64(payload[0:], lsn)
	binary.LittleEndian.PutUint64(payload[8:], txn)
	payload[16] = byte(kind)
	if kind == KindData {
		var tl [2]byte
		binary.LittleEndian.PutUint16(tl[:], uint16(len(table)))
		payload = append(payload, tl[:]...)
		payload = append(payload, table...)
		payload = append(payload, data...)
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	if _, err := l.f.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := l.f.Write(payload); err != nil {
		return 0, err
	}
	l.nextLSN = lsn + 1
	return lsn, nil
}

// Sync forces the log to stable storage (group-commit point).
func (l *Log) Sync() error { return l.f.Sync() }

// Reset truncates the log after a checkpoint has made all logged state
// durable in the table files. The LSN sequence is NOT reset: a KindReset
// sentinel carrying the next LSN is written first, so records appended
// after the reset (and after a crash-reopen of the truncated log) keep
// strictly increasing LSNs. Applied-LSN watermarks recorded in table
// images therefore stay comparable across resets.
func (l *Log) Reset() error {
	next := l.nextLSN
	if err := l.f.Truncate(0); err != nil {
		return err
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	l.nextLSN = next
	if _, err := l.Append(0, KindReset, "", nil); err != nil {
		return err
	}
	return l.f.Sync()
}

// Close closes the underlying file.
func (l *Log) Close() error { return l.f.Close() }

// CommittedTxns filters replayed records down to the data records of
// transactions that reached their commit marker, in original LSN order.
func CommittedTxns(recs []Record) []Record {
	committed := make(map[uint64]bool)
	for _, r := range recs {
		if r.Kind == KindCommit {
			committed[r.Txn] = true
		}
	}
	var out []Record
	for _, r := range recs {
		if r.Kind == KindData && committed[r.Txn] {
			out = append(out, r)
		}
	}
	return out
}
