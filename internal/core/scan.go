package core

import (
	"context"

	"vectorwise/internal/pdt"
	"vectorwise/internal/storage"
	"vectorwise/internal/vector"
	"vectorwise/internal/vtypes"
)

// Scan reads a column projection of a stable table, merging in the
// table's PDT layers (committed master, then the transaction's private
// PDT) positionally. With empty PDTs the scan serves zero-copy views of
// decompressed chunks; with deltas it routes through the merge scan.
//
// A Scan may carry a filter predicate (the plan's pushed-down sargable
// conjuncts): it is evaluated on every batch right after decompression
// (and after delta merge), so downstream operators see pre-filtered
// selection vectors, and it is the predicate row-group pruning was
// derived from.
type Scan struct {
	table   *storage.Table
	cols    []int
	fetch   storage.ChunkFetcher
	prune   storage.PruneFn
	filter  Pred
	stats   *storage.ScanStats
	vecSize int
	// PDT layers, bottom-up; nil/empty layers are skipped.
	layers []*pdt.PDT
	// group range for parallel partition scans; hi == 0 means all.
	gLo, gHi int

	schema *vtypes.Schema
	sc     *storage.Scanner
	merged pdt.RowSource
	batch  *vector.Batch
	ctx    context.Context
}

// ScanOpts configures a Scan.
type ScanOpts struct {
	// Fetch interposes a buffer manager; nil reads chunks directly.
	Fetch storage.ChunkFetcher
	// Prune skips row groups by statistics. With non-empty PDT layers
	// it still applies, restricted to groups whose global position
	// range carries no delta entries in any layer — the positional
	// merge steps over the entry-free gap, so clean cold groups skip
	// while touched groups merge normally.
	Prune storage.PruneFn
	// Filter, when non-nil, is evaluated on every output batch inside
	// the scan (post-decompression, post-merge); surviving rows are
	// referenced through the batch's selection vector.
	Filter Pred
	// Stats, when non-nil, counts scanned/pruned row groups (shared
	// across the partition scans of one query).
	Stats *storage.ScanStats
	// VecSize overrides vector.DefaultSize.
	VecSize int
	// Layers are PDT layers, bottom (committed master) first.
	Layers []*pdt.PDT
	// GroupLo/GroupHi restrict the scan to row groups [lo, hi) for
	// parallel partition scans; both zero means the whole table.
	GroupLo, GroupHi int
}

// NewScan builds a scan of the given column indexes of t.
func NewScan(t *storage.Table, cols []int, opts ScanOpts) *Scan {
	full := t.Schema()
	outCols := make([]vtypes.Column, len(cols))
	for i, c := range cols {
		outCols[i] = full.Cols[c]
	}
	s := &Scan{
		table:   t,
		cols:    append([]int(nil), cols...),
		fetch:   opts.Fetch,
		prune:   opts.Prune,
		filter:  opts.Filter,
		stats:   opts.Stats,
		vecSize: opts.VecSize,
		layers:  opts.Layers,
		gLo:     opts.GroupLo,
		gHi:     opts.GroupHi,
		schema:  &vtypes.Schema{Cols: outCols},
	}
	if s.vecSize <= 0 {
		s.vecSize = vector.DefaultSize
	}
	return s
}

// Schema implements Operator.
func (s *Scan) Schema() *vtypes.Schema { return s.schema }

// SetContext implements ContextSetter.
func (s *Scan) SetContext(ctx context.Context) { s.ctx = ctx }

// hasDeltas reports whether any PDT layer carries entries.
func (s *Scan) hasDeltas() bool {
	for _, p := range s.layers {
		if p != nil && !p.Empty() {
			return true
		}
	}
	return false
}

// Open implements Operator.
func (s *Scan) Open() error {
	prune := s.prune
	if prune != nil && s.hasDeltas() {
		// Pruning under a positional merge: a group may only be
		// skipped when its global position range is entry-free in
		// every PDT layer, so the merge steps over a clean gap and
		// touched groups keep dense positions. The range is re-expressed
		// through each layer's image (SID → RID) on the way up.
		starts := s.groupStarts()
		inner := prune
		prune = func(g int, grp *storage.GroupMeta) bool {
			lo, hi := starts[g], starts[g]+int64(grp.Rows)
			for _, layer := range s.layers {
				if layer == nil || layer.Empty() {
					continue
				}
				if layer.HasEntriesIn(lo, hi) {
					return false
				}
				lo, hi = layer.StartRID(lo), layer.StartRID(lo)+(hi-lo)
			}
			return inner(g, grp)
		}
	}
	s.sc = storage.NewScanner(s.table, s.cols, s.fetch, prune, s.vecSize)
	s.sc.SetStats(s.stats)
	if s.gHi > 0 {
		s.sc.SetGroupRange(s.gLo, s.gHi)
	}
	if s.hasDeltas() {
		var src pdt.RowSource = &scanSource{sc: s.sc}
		for _, layer := range s.layers {
			if layer == nil || layer.Empty() {
				continue
			}
			src = pdt.NewMergeScan(src, pdt.ProjectCols(layer, s.cols, s.schema), s.vecSize)
		}
		s.merged = src
	}
	return nil
}

// groupStarts returns the global start position of every row group.
func (s *Scan) groupStarts() []int64 {
	starts := make([]int64, s.table.Groups())
	var pos int64
	for g := range starts {
		starts[g] = pos
		pos += int64(s.table.GroupRows(g))
	}
	return starts
}

// Next implements Operator.
func (s *Scan) Next() (*vector.Batch, error) {
	for {
		if err := ctxErr(s.ctx); err != nil {
			return nil, err
		}
		b, err := s.nextRaw()
		if err != nil || b == nil {
			return nil, err
		}
		if s.filter != nil {
			if err := s.filter.Filter(b); err != nil {
				return nil, err
			}
			if b.N == 0 {
				continue
			}
		}
		return b, nil
	}
}

// nextRaw pulls the next unfiltered batch from storage (or the merge).
func (s *Scan) nextRaw() (*vector.Batch, error) {
	if s.merged != nil {
		vecs, n, err := s.merged.Next()
		if err != nil || n == 0 {
			return nil, err
		}
		b := &vector.Batch{Vecs: vecs}
		b.SetDense(n)
		return b, nil
	}
	vecs, _, n, err := s.sc.Next()
	if err != nil || n == 0 {
		return nil, err
	}
	if s.batch == nil {
		s.batch = &vector.Batch{}
	}
	s.batch.Vecs = vecs
	s.batch.SetDense(n)
	return s.batch, nil
}

// Close implements Operator.
func (s *Scan) Close() error {
	s.sc, s.merged = nil, nil
	return nil
}

// scanSource adapts storage.Scanner to pdt.PositionedSource, reporting
// each batch's global start position so the merge can align deltas
// across pruned row-group gaps.
type scanSource struct {
	sc  *storage.Scanner
	pos int64
}

// Next implements pdt.RowSource.
func (a *scanSource) Next() ([]*vector.Vector, int, error) {
	vecs, pos, n, err := a.sc.Next()
	a.pos = pos
	return vecs, n, err
}

// BasePos implements pdt.PositionedSource.
func (a *scanSource) BasePos() int64 { return a.pos }

// EndPos implements pdt.PositionedSource.
func (a *scanSource) EndPos() int64 { return a.sc.EndPos() }

// Select filters its input with a compiled predicate; surviving rows are
// referenced through the batch's selection vector, never copied.
type Select struct {
	child Operator
	pred  Pred
	ctx   context.Context
}

// Pred re-exports expr.Pred to avoid an import cycle in operator users.
type Pred interface {
	Filter(b *vector.Batch) error
}

// NewSelect wraps child with a filter.
func NewSelect(child Operator, pred Pred) *Select {
	return &Select{child: child, pred: pred}
}

// Schema implements Operator.
func (s *Select) Schema() *vtypes.Schema { return s.child.Schema() }

// SetContext implements ContextSetter.
func (s *Select) SetContext(ctx context.Context) { s.ctx = ctx }

// Open implements Operator.
func (s *Select) Open() error { return s.child.Open() }

// Next implements Operator.
func (s *Select) Next() (*vector.Batch, error) {
	for {
		if err := ctxErr(s.ctx); err != nil {
			return nil, err
		}
		b, err := s.child.Next()
		if err != nil || b == nil {
			return nil, err
		}
		if err := s.pred.Filter(b); err != nil {
			return nil, err
		}
		if b.N > 0 {
			return b, nil
		}
	}
}

// Close implements Operator.
func (s *Select) Close() error { return s.child.Close() }

// Expr re-exports the expression contract used by Project and the
// aggregate/join operators.
type Expr interface {
	Kind() vtypes.Kind
	Eval(b *vector.Batch) (*vector.Vector, error)
}

// Project computes one expression per output column. Column references
// pass through zero-copy; computed columns share the child's selection
// vector (results are written only at live positions).
type Project struct {
	child  Operator
	exprs  []Expr
	schema *vtypes.Schema
	out    vector.Batch
	ctx    context.Context
}

// NewProject builds a projection; names label the output columns.
func NewProject(child Operator, exprs []Expr, names []string) *Project {
	cols := make([]vtypes.Column, len(exprs))
	for i, e := range exprs {
		cols[i] = vtypes.Column{Name: names[i], Kind: e.Kind()}
	}
	return &Project{child: child, exprs: exprs, schema: &vtypes.Schema{Cols: cols}}
}

// Schema implements Operator.
func (p *Project) Schema() *vtypes.Schema { return p.schema }

// SetContext implements ContextSetter.
func (p *Project) SetContext(ctx context.Context) { p.ctx = ctx }

// Open implements Operator.
func (p *Project) Open() error { return p.child.Open() }

// Next implements Operator.
func (p *Project) Next() (*vector.Batch, error) {
	if err := ctxErr(p.ctx); err != nil {
		return nil, err
	}
	b, err := p.child.Next()
	if err != nil || b == nil {
		return nil, err
	}
	if p.out.Vecs == nil {
		p.out.Vecs = make([]*vector.Vector, len(p.exprs))
	}
	for i, e := range p.exprs {
		v, err := e.Eval(b)
		if err != nil {
			return nil, err
		}
		p.out.Vecs[i] = v
	}
	p.out.Sel = b.Sel
	p.out.N = b.N
	return &p.out, nil
}

// Close implements Operator.
func (p *Project) Close() error { return p.child.Close() }

// Limit passes through at most n rows.
type Limit struct {
	child Operator
	n     int64
	seen  int64
	ctx   context.Context
}

// NewLimit caps the stream at n rows.
func NewLimit(child Operator, n int64) *Limit { return &Limit{child: child, n: n} }

// Schema implements Operator.
func (l *Limit) Schema() *vtypes.Schema { return l.child.Schema() }

// SetContext implements ContextSetter.
func (l *Limit) SetContext(ctx context.Context) { l.ctx = ctx }

// Open implements Operator.
func (l *Limit) Open() error {
	l.seen = 0
	return l.child.Open()
}

// Next implements Operator.
func (l *Limit) Next() (*vector.Batch, error) {
	if err := ctxErr(l.ctx); err != nil {
		return nil, err
	}
	if l.seen >= l.n {
		return nil, nil
	}
	b, err := l.child.Next()
	if err != nil || b == nil {
		return nil, err
	}
	if l.seen+int64(b.N) > l.n {
		keep := int(l.n - l.seen)
		if b.Sel != nil {
			// The child owns b.Sel (often a reused selBuf); truncate a
			// private copy so operators that reuse the batch across
			// Next calls are not corrupted by the shortened view.
			sel := make([]int32, keep)
			copy(sel, b.Sel[:keep])
			b.Sel = sel
		}
		b.N = keep
	}
	l.seen += int64(b.N)
	return b, nil
}

// Close implements Operator.
func (l *Limit) Close() error { return l.child.Close() }
