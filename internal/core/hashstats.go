package core

import (
	"sync"
	"sync/atomic"

	"vectorwise/internal/hashtable"
)

// HashTableStat describes one operator's hash table after a statement
// ran: directory shape, growth and probe-length behavior, plus the time
// the operator spent in its table-bound phase. Surfaced per statement
// through Rows.HashStats / DB.ExplainAnalyze and cumulatively through
// /v1/stats.
type HashTableStat struct {
	// Op is the operator kind: "agg" (HashAggregate group lookup,
	// including set-op dedup) or "join" (HashJoin build+probe).
	Op string `json:"op"`
	// Slots/Entries/Load/Resizes/ProbeP50/ProbeMax mirror
	// hashtable.Stats at operator close.
	Slots    int     `json:"slots"`
	Entries  int     `json:"entries"`
	Load     float64 `json:"load"`
	Resizes  int     `json:"resizes"`
	ProbeP50 int     `json:"probe_p50"`
	ProbeMax int     `json:"probe_max"`
	// PhaseNs is the table-bound phase: for "agg" the time spent
	// translating rows to group ids (FindOrInsert), for "join" the
	// whole build-side materialization including table insertion.
	PhaseNs int64 `json:"phase_ns"`
}

// HashStatsSink collects the hash-table stats of every operator in a
// compiled statement. Operators record on Close (exchange subtrees may
// close from worker joins, hence the lock).
type HashStatsSink struct {
	mu    sync.Mutex
	stats []HashTableStat
}

// Record appends one operator's stats.
func (s *HashStatsSink) Record(op string, st hashtable.Stats, phaseNs int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.stats = append(s.stats, HashTableStat{
		Op: op, Slots: st.Slots, Entries: st.Entries, Load: st.Load,
		Resizes: st.Resizes, ProbeP50: st.ProbeP50, ProbeMax: st.ProbeMax,
		PhaseNs: phaseNs,
	})
	s.mu.Unlock()
}

// Snapshot returns the recorded stats (copy, safe to retain).
func (s *HashStatsSink) Snapshot() []HashTableStat {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	out := make([]HashTableStat, len(s.stats))
	copy(out, s.stats)
	s.mu.Unlock()
	return out
}

// HashStatsTotals accumulates hash-table counters across statements
// (the DB-lifetime form behind /v1/stats, like storage.ScanStats for
// scans). All fields are atomic; the zero value is ready to use.
type HashStatsTotals struct {
	tables   atomic.Int64
	entries  atomic.Int64
	resizes  atomic.Int64
	probeMax atomic.Int64
}

// Add folds one statement's recorded stats into the totals.
func (t *HashStatsTotals) Add(stats []HashTableStat) {
	for _, st := range stats {
		t.tables.Add(1)
		t.entries.Add(int64(st.Entries))
		t.resizes.Add(int64(st.Resizes))
		for {
			cur := t.probeMax.Load()
			if int64(st.ProbeMax) <= cur || t.probeMax.CompareAndSwap(cur, int64(st.ProbeMax)) {
				break
			}
		}
	}
}

// HashStatsTotalsSnapshot is a point-in-time copy of HashStatsTotals.
type HashStatsTotalsSnapshot struct {
	// Tables counts hash-keyed operators (agg + join) that completed.
	Tables int64 `json:"tables"`
	// Entries is the cumulative distinct keys those tables held.
	Entries int64 `json:"entries"`
	// Resizes is the cumulative directory doublings.
	Resizes int64 `json:"resizes"`
	// ProbeMax is the longest probe distance any table observed.
	ProbeMax int64 `json:"probe_max"`
}

// Snapshot returns the current totals.
func (t *HashStatsTotals) Snapshot() HashStatsTotalsSnapshot {
	return HashStatsTotalsSnapshot{
		Tables:   t.tables.Load(),
		Entries:  t.entries.Load(),
		Resizes:  t.resizes.Load(),
		ProbeMax: t.probeMax.Load(),
	}
}
