package core

import (
	"context"
	"errors"
	"testing"
)

// TestScanCancellation: a canceled context stops a scan at the next
// vector boundary with the context's error.
func TestScanCancellation(t *testing.T) {
	tbl := buildOrders(t, 5000, 512)
	sc := NewScan(tbl, []int{0, 2}, ScanOpts{VecSize: 100})
	ctx, cancel := context.WithCancel(context.Background())
	sc.SetContext(ctx)
	if err := sc.Open(); err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	if _, err := sc.Next(); err != nil {
		t.Fatalf("first batch: %v", err)
	}
	cancel()
	if _, err := sc.Next(); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled after cancel, got %v", err)
	}
}

// TestAggregateCancellationDuringBuild: cancellation interrupts a
// stop-and-go operator while it is still consuming input, before any
// output group is emitted.
func TestAggregateCancellationDuringBuild(t *testing.T) {
	tbl := buildOrders(t, 5000, 512)
	sc := NewScan(tbl, []int{1, 2}, ScanOpts{VecSize: 100})
	agg := NewHashAggregate(sc,
		[]Expr{col(0, sc.Schema().Col(0).Kind)},
		[]AggSpec{{Fn: AggSum, Arg: col(1, sc.Schema().Col(1).Kind)}},
		[]string{"cust", "total"})
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled before the first Next: build must not run
	agg.SetContext(ctx)
	sc.SetContext(ctx)
	if err := agg.Open(); err != nil {
		t.Fatal(err)
	}
	defer agg.Close()
	if _, err := agg.Next(); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestXchgCancellation: exchange workers stop on cancellation — the
// consumer observes the context error and Close joins all producers
// without hanging (the -race build would flag a leaked producer write).
func TestXchgCancellation(t *testing.T) {
	tbl := buildOrders(t, 20000, 512)
	parts := PartitionGroups(tbl.Groups(), 4)
	children := make([]Operator, len(parts))
	ctx, cancel := context.WithCancel(context.Background())
	for i, p := range parts {
		sc := NewScan(tbl, []int{0, 2}, ScanOpts{VecSize: 64, GroupLo: p[0], GroupHi: p[1]})
		sc.SetContext(ctx)
		children[i] = sc
	}
	x, err := NewXchgUnion(children)
	if err != nil {
		t.Fatal(err)
	}
	x.SetContext(ctx)
	if err := x.Open(); err != nil {
		t.Fatal(err)
	}
	if _, err := x.Next(); err != nil {
		t.Fatalf("first batch: %v", err)
	}
	cancel()
	// Workers may still flush already-copied batches; within a few
	// Nexts the context error must surface.
	var got error
	for i := 0; i < 1000; i++ {
		b, err := x.Next()
		if err != nil {
			got = err
			break
		}
		if b == nil {
			break
		}
	}
	if !errors.Is(got, context.Canceled) {
		t.Fatalf("want context.Canceled from exchange, got %v", got)
	}
	if err := x.Close(); err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("close: %v", err)
	}
}

// TestNilContextIsFree: operators without a context behave exactly as
// before (the hand-built experiment plans never pay for cancellation).
func TestNilContextIsFree(t *testing.T) {
	tbl := buildOrders(t, 1000, 256)
	sc := NewScan(tbl, []int{0}, ScanOpts{VecSize: 128})
	n, err := Drain(sc)
	if err != nil || n != 1000 {
		t.Fatalf("drain: n=%d err=%v", n, err)
	}
}
