package core

import (
	"context"
	"errors"
	"testing"

	"vectorwise/internal/vector"
	"vectorwise/internal/vtypes"
)

// Regression tests for the invariants cmd/vwlint machine-checks: the
// selalias private-copy rule (the historical Limit bug) and the ctxnext
// per-iteration polling rule on multi-batch loops.

// selReuseChild emits one batch whose Sel aliases a buffer the child
// keeps — the ownership pattern Select produces via MutableSel/SetSel,
// where the buffer is reused for the next batch.
type selReuseChild struct {
	b     *vector.Batch
	calls int
}

func (c *selReuseChild) Schema() *vtypes.Schema { return nil }
func (c *selReuseChild) Open() error            { c.calls = 0; return nil }
func (c *selReuseChild) Close() error           { return nil }
func (c *selReuseChild) Next() (*vector.Batch, error) {
	if c.calls++; c.calls > 1 {
		return nil, nil
	}
	return c.b, nil
}

// TestLimitInstallsPrivateSelCopy pins the worst offender of the
// selalias audit: Limit truncating a batch must install a freshly
// copied Sel, never shorten the child's shared slice in place (which
// would corrupt the buffer the child reuses on its next batch).
func TestLimitInstallsPrivateSelCopy(t *testing.T) {
	sel := []int32{0, 2, 4, 6, 8, 10, 12, 14}
	b := &vector.Batch{}
	b.SetSel(sel, len(sel))
	lim := NewLimit(&selReuseChild{b: b}, 3)
	if err := lim.Open(); err != nil {
		t.Fatal(err)
	}
	defer lim.Close()
	out, err := lim.Next()
	if err != nil {
		t.Fatal(err)
	}
	if out == nil || out.N != 3 {
		t.Fatalf("limited batch: %+v", out)
	}
	if &out.Sel[0] == &sel[0] {
		t.Fatal("Limit aliased the child's shared Sel; it must install a private copy before truncating")
	}
	for i, want := range []int32{0, 2, 4, 6, 8, 10, 12, 14} {
		if sel[i] != want {
			t.Fatalf("child's Sel buffer mutated at %d: got %d, want %d", i, sel[i], want)
		}
	}
}

// TestLeftOuterJoinCancellationMidProbe pins the ctxnext per-iteration
// rule on the outer-join probe loop: cancelling between batches stops
// the join at the next vector boundary instead of draining the probe
// side to completion.
func TestLeftOuterJoinCancellationMidProbe(t *testing.T) {
	orders := buildOrders(t, 20000, 512)
	cust := buildCustomers(t, 5)
	oscan := NewScan(orders, []int{0, 1}, ScanOpts{VecSize: 64})
	cscan := NewScan(cust, []int{0, 1}, ScanOpts{})
	j, err := NewHashJoin(oscan, cscan,
		[]Expr{col(1, vtypes.KindI64)}, []Expr{col(0, vtypes.KindI64)}, JoinLeftOuter)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	j.SetContext(ctx)
	oscan.SetContext(ctx)
	cscan.SetContext(ctx)
	if err := j.Open(); err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if _, err := j.Next(); err != nil {
		t.Fatalf("first batch: %v", err)
	}
	cancel()
	if _, err := j.Next(); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled after mid-probe cancel, got %v", err)
	}
}
