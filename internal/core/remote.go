package core

import (
	"context"
	"fmt"
	"sync"

	"vectorwise/internal/vector"
	"vectorwise/internal/vtypes"
)

// BatchSource is a stream of vector batches produced outside the local
// operator tree — in practice a remote shard's partial result arriving
// over the network. Unlike Operator, a BatchSource owns its batches:
// every batch it returns is freshly allocated and never reused, so the
// exchange can forward them without the ownership-transfer copy a local
// child requires. Next returning (nil, nil) ends the stream.
type BatchSource interface {
	// Open starts (or restarts) the stream. Implementations that can
	// fail over between replicas do so behind Open/Next transparently.
	Open() error
	Next() (*vector.Batch, error)
	Close() error
}

// RemoteExchange is the distributed form of XchgUnion: it unions the
// output of N remote batch sources, one goroutine per source, so every
// shard of a scattered query executes and ships its partial result
// concurrently. It is the paper's exchange operator generalized across
// processes — the operator tree above it cannot tell a remote shard
// from a local partition.
type RemoteExchange struct {
	sources []BatchSource
	schema  *vtypes.Schema
	ch      chan *vector.Batch
	errCh   chan error
	wg      sync.WaitGroup
	ctx     context.Context

	firstErr error
	done     int
}

// NewRemoteExchange unions the sources, which must all produce batches
// of the given schema.
func NewRemoteExchange(schema *vtypes.Schema, sources []BatchSource) (*RemoteExchange, error) {
	if len(sources) == 0 {
		return nil, fmt.Errorf("core: remote exchange needs sources")
	}
	return &RemoteExchange{sources: sources, schema: schema}, nil
}

// Schema implements Operator.
func (x *RemoteExchange) Schema() *vtypes.Schema { return x.schema }

// SetContext implements ContextSetter: cancellation unblocks both the
// per-batch pulls and producers stalled on the transfer channel.
func (x *RemoteExchange) SetContext(ctx context.Context) { x.ctx = ctx }

// Open implements Operator: one producer goroutine per source.
func (x *RemoteExchange) Open() error {
	x.ch = make(chan *vector.Batch, len(x.sources)*2)
	x.errCh = make(chan error, len(x.sources))
	var done <-chan struct{} // nil channel: never ready
	if x.ctx != nil {
		done = x.ctx.Done()
	}
	for _, s := range x.sources {
		s := s
		x.wg.Add(1)
		go func() {
			defer x.wg.Done()
			if err := s.Open(); err != nil {
				x.errCh <- err
				return
			}
			for {
				if err := ctxErr(x.ctx); err != nil {
					x.errCh <- err
					return
				}
				b, err := s.Next()
				if err != nil {
					x.errCh <- err
					return
				}
				if b == nil {
					x.errCh <- nil
					return
				}
				if b.N == 0 {
					continue
				}
				// Sources own their batches (fresh allocations), so no
				// ownership-transfer copy is needed here.
				select {
				case x.ch <- b:
				case <-done:
					x.errCh <- x.ctx.Err()
					return
				}
			}
		}()
	}
	return nil
}

// Next implements Operator.
func (x *RemoteExchange) Next() (*vector.Batch, error) {
	for {
		if err := ctxErr(x.ctx); err != nil {
			return nil, err
		}
		if x.done == len(x.sources) {
			select {
			case b := <-x.ch:
				return b, nil
			default:
				return nil, x.firstErr
			}
		}
		var done <-chan struct{}
		if x.ctx != nil {
			done = x.ctx.Done()
		}
		select {
		case b := <-x.ch:
			return b, nil
		case err := <-x.errCh:
			x.done++
			if err != nil && x.firstErr == nil {
				x.firstErr = err
			}
		case <-done:
			return nil, x.ctx.Err()
		}
	}
}

// Close implements Operator: joins the producers and closes every
// source.
func (x *RemoteExchange) Close() error {
	if x.ch != nil {
		go func() {
			for range x.ch {
			}
		}()
		x.wg.Wait()
		close(x.ch)
	}
	var first error
	for _, s := range x.sources {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
