package core

import (
	"context"
	"fmt"
	"sort"
	"testing"

	"vectorwise/internal/vector"
	"vectorwise/internal/vtypes"
)

// fakeSource emits its values one batch per value, optionally failing
// partway.
type fakeSource struct {
	vals    []int64
	failAt  int // -1: never
	pos     int
	opened  bool
	closed  bool
	openErr error
}

func (f *fakeSource) Open() error {
	f.opened = true
	return f.openErr
}

func (f *fakeSource) Next() (*vector.Batch, error) {
	if f.failAt >= 0 && f.pos == f.failAt {
		return nil, fmt.Errorf("fake: source died")
	}
	if f.pos >= len(f.vals) {
		return nil, nil
	}
	b := vector.NewBatchOfKinds([]vtypes.Kind{vtypes.KindI64}, 1)
	b.Vecs[0].I64[0] = f.vals[f.pos]
	b.SetDense(1)
	f.pos++
	return b, nil
}

func (f *fakeSource) Close() error {
	f.closed = true
	return nil
}

func i64Schema() *vtypes.Schema {
	return vtypes.NewSchema(vtypes.Column{Name: "v", Kind: vtypes.KindI64})
}

func drainExchange(t *testing.T, x *RemoteExchange) ([]int64, error) {
	t.Helper()
	if err := x.Open(); err != nil {
		return nil, err
	}
	var got []int64
	for {
		b, err := x.Next()
		if err != nil {
			x.Close()
			return got, err
		}
		if b == nil {
			break
		}
		for i := 0; i < b.N; i++ {
			got = append(got, b.Vecs[0].I64[b.LiveIndex(i)])
		}
	}
	return got, x.Close()
}

func TestRemoteExchangeUnionsAllSources(t *testing.T) {
	srcs := []BatchSource{
		&fakeSource{vals: []int64{1, 2, 3}, failAt: -1},
		&fakeSource{vals: []int64{4, 5}, failAt: -1},
		&fakeSource{vals: nil, failAt: -1}, // empty shard
	}
	x, err := NewRemoteExchange(i64Schema(), srcs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := drainExchange(t, x)
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	want := []int64{1, 2, 3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
	for i, s := range srcs {
		fs := s.(*fakeSource)
		if !fs.opened || !fs.closed {
			t.Fatalf("source %d: opened=%v closed=%v", i, fs.opened, fs.closed)
		}
	}
}

func TestRemoteExchangeSurfacesSourceError(t *testing.T) {
	srcs := []BatchSource{
		&fakeSource{vals: []int64{1, 2, 3}, failAt: -1},
		&fakeSource{vals: []int64{4, 5}, failAt: 1},
	}
	x, err := NewRemoteExchange(i64Schema(), srcs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := drainExchange(t, x); err == nil {
		t.Fatal("want error from dying source")
	}
}

func TestRemoteExchangeOpenErrorAndClose(t *testing.T) {
	srcs := []BatchSource{
		&fakeSource{vals: []int64{1}, failAt: -1},
		&fakeSource{openErr: fmt.Errorf("fake: connect refused"), failAt: -1},
	}
	x, err := NewRemoteExchange(i64Schema(), srcs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := drainExchange(t, x); err == nil {
		t.Fatal("want open error surfaced")
	}
	for i, s := range srcs {
		if !s.(*fakeSource).closed {
			t.Fatalf("source %d not closed after error", i)
		}
	}
}

func TestRemoteExchangeContextCancel(t *testing.T) {
	srcs := []BatchSource{&fakeSource{vals: make([]int64, 100), failAt: -1}}
	x, err := NewRemoteExchange(i64Schema(), srcs)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	x.SetContext(ctx)
	if err := x.Open(); err != nil {
		t.Fatal(err)
	}
	if _, err := x.Next(); err != nil {
		t.Fatal(err)
	}
	cancel()
	var nerr error
	for i := 0; i < 200; i++ {
		if _, nerr = x.Next(); nerr != nil {
			break
		}
	}
	if nerr == nil {
		t.Fatal("want cancellation error from Next")
	}
	if err := x.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoteExchangeNeedsSources(t *testing.T) {
	if _, err := NewRemoteExchange(i64Schema(), nil); err == nil {
		t.Fatal("want error for zero sources")
	}
}
