package core

import (
	"context"
	"fmt"
	"sync"

	"vectorwise/internal/vector"
	"vectorwise/internal/vtypes"
)

// XchgUnion is the Volcano-style exchange operator the rewriter injects
// for multi-core parallelism (paper §I-B): each child subtree runs in
// its own goroutine, pushing ownership-transferred batches into a shared
// channel; the parent consumes them in arrival order. All parallelism in
// the engine flows through this one operator, keeping every other
// operator single-threaded and simple.
type XchgUnion struct {
	children []Operator
	schema   *vtypes.Schema
	ch       chan *vector.Batch
	errCh    chan error
	wg       sync.WaitGroup
	opened   bool
	firstErr error
	done     int
	ctx      context.Context
}

// NewXchgUnion merges the outputs of the children, which must share a
// schema.
func NewXchgUnion(children []Operator) (*XchgUnion, error) {
	if len(children) == 0 {
		return nil, fmt.Errorf("core: exchange needs children")
	}
	return &XchgUnion{children: children, schema: children[0].Schema()}, nil
}

// Schema implements Operator.
func (x *XchgUnion) Schema() *vtypes.Schema { return x.schema }

// SetContext implements ContextSetter. The context reaches the workers
// two ways: their own per-batch check below (covering subtrees built
// without contexts of their own) and the select on the ownership-
// transfer send, which unblocks a producer whose consumer stopped
// pulling after cancellation.
func (x *XchgUnion) SetContext(ctx context.Context) { x.ctx = ctx }

// Open implements Operator: launches one producer goroutine per child.
func (x *XchgUnion) Open() error {
	x.ch = make(chan *vector.Batch, len(x.children)*2)
	x.errCh = make(chan error, len(x.children))
	var done <-chan struct{} // nil channel: never ready
	if x.ctx != nil {
		done = x.ctx.Done()
	}
	for _, c := range x.children {
		c := c
		x.wg.Add(1)
		go func() {
			defer x.wg.Done()
			if err := c.Open(); err != nil {
				x.errCh <- err
				return
			}
			for {
				if err := ctxErr(x.ctx); err != nil {
					x.errCh <- err
					return
				}
				b, err := c.Next()
				if err != nil {
					x.errCh <- err
					return
				}
				if b == nil {
					x.errCh <- nil
					return
				}
				if b.N == 0 {
					continue
				}
				// Transfer ownership: the producer's batch buffers are
				// reused on its next Next(), so compact-copy first.
				owned := copyBatch(b)
				select {
				case x.ch <- owned:
				case <-done:
					x.errCh <- x.ctx.Err()
					return
				}
			}
		}()
	}
	x.opened = true
	return nil
}

// copyBatch deep-copies the live rows of b into a fresh dense batch.
func copyBatch(b *vector.Batch) *vector.Batch {
	out := &vector.Batch{Vecs: make([]*vector.Vector, len(b.Vecs))}
	if b.Sel == nil {
		for i, v := range b.Vecs {
			nv := vector.New(v.Kind, b.N)
			nv.CopyFrom(v, 0, 0, b.N)
			out.Vecs[i] = nv
		}
	} else {
		for i, v := range b.Vecs {
			nv := vector.New(v.Kind, b.N)
			nv.GatherFrom(v, b.Sel[:b.N])
			out.Vecs[i] = nv
		}
	}
	out.SetDense(b.N)
	return out
}

// Next implements Operator.
func (x *XchgUnion) Next() (*vector.Batch, error) {
	for {
		if err := ctxErr(x.ctx); err != nil {
			return nil, err
		}
		if x.done == len(x.children) {
			// All producers finished; drain any remaining batches.
			select {
			case b := <-x.ch:
				return b, nil
			default:
				return nil, x.firstErr
			}
		}
		var done <-chan struct{}
		if x.ctx != nil {
			done = x.ctx.Done()
		}
		select {
		case b := <-x.ch:
			return b, nil
		case err := <-x.errCh:
			x.done++
			if err != nil && x.firstErr == nil {
				x.firstErr = err
			}
		case <-done:
			return nil, x.ctx.Err()
		}
	}
}

// Close implements Operator.
func (x *XchgUnion) Close() error {
	// Drain so producers blocked on the channel can exit.
	go func() {
		for range x.ch {
		}
	}()
	x.wg.Wait()
	close(x.ch)
	var first error
	for _, c := range x.children {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// PartitionGroups splits a table's row groups into at most parts
// contiguous ranges for parallel partition scans. Ranges are [lo, hi).
func PartitionGroups(numGroups, parts int) [][2]int {
	if parts > numGroups {
		parts = numGroups
	}
	if parts <= 0 {
		parts = 1
	}
	var out [][2]int
	base := numGroups / parts
	extra := numGroups % parts
	lo := 0
	for p := 0; p < parts; p++ {
		sz := base
		if p < extra {
			sz++
		}
		out = append(out, [2]int{lo, lo + sz})
		lo += sz
	}
	return out
}
