package core

import (
	"context"
	"sort"

	"vectorwise/internal/vector"
	"vectorwise/internal/vtypes"
)

// SortKey is one ORDER BY term.
type SortKey struct {
	Expr Expr
	Desc bool
}

// Sort materializes its input, sorts an index by the keys, and streams
// the permuted rows back out in vectors. (X100 sorts are also stop-and-
// go materializers; vectors only bound the unit of data movement.)
type Sort struct {
	child   Operator
	keys    []SortKey
	vecSize int

	cols   []*keyCol // payload columns
	keysC  []*keyCol // evaluated key columns
	nulls  [][]bool  // null indicators per payload column (lazily made)
	n      int
	perm   []int
	built  bool
	outPos int
	ctx    context.Context
}

// NewSort builds the operator.
func NewSort(child Operator, keys []SortKey) *Sort {
	return &Sort{child: child, keys: keys, vecSize: vector.DefaultSize}
}

// Schema implements Operator.
func (s *Sort) Schema() *vtypes.Schema { return s.child.Schema() }

// SetContext implements ContextSetter.
func (s *Sort) SetContext(ctx context.Context) { s.ctx = ctx }

// Open implements Operator.
func (s *Sort) Open() error { return s.child.Open() }

// consume materializes the child and evaluated sort keys.
func (s *Sort) consume() error {
	sch := s.child.Schema()
	s.cols = make([]*keyCol, sch.Len())
	s.nulls = make([][]bool, sch.Len())
	for i, c := range sch.Cols {
		s.cols[i] = &keyCol{kind: c.Kind}
	}
	s.keysC = make([]*keyCol, len(s.keys))
	for i, k := range s.keys {
		s.keysC[i] = &keyCol{kind: k.Expr.Kind()}
	}
	for {
		// Cancellation point while materializing the input.
		if err := ctxErr(s.ctx); err != nil {
			return err
		}
		b, err := s.child.Next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		if b.N == 0 {
			continue
		}
		keyVecs := make([]*vector.Vector, len(s.keys))
		for i, k := range s.keys {
			v, err := k.Expr.Eval(b)
			if err != nil {
				return err
			}
			keyVecs[i] = v
		}
		store := func(i int32) {
			for c := range s.cols {
				s.cols[c].appendFrom(b.Vecs[c], i)
				if b.Vecs[c].Nulls != nil && b.Vecs[c].Nulls[i] {
					if s.nulls[c] == nil {
						s.nulls[c] = make([]bool, s.n)
					}
					for len(s.nulls[c]) < s.n {
						s.nulls[c] = append(s.nulls[c], false)
					}
					s.nulls[c] = append(s.nulls[c], true)
				} else if s.nulls[c] != nil {
					s.nulls[c] = append(s.nulls[c], false)
				}
			}
			for c := range s.keysC {
				s.keysC[c].appendFrom(keyVecs[c], i)
			}
			s.n++
		}
		if b.Sel == nil {
			for i := 0; i < b.N; i++ {
				store(int32(i))
			}
		} else {
			for _, i := range b.Sel[:b.N] {
				store(i)
			}
		}
	}
	s.perm = make([]int, s.n)
	for i := range s.perm {
		s.perm[i] = i
	}
	sort.SliceStable(s.perm, func(a, b int) bool {
		ia, ib := s.perm[a], s.perm[b]
		for c, k := range s.keys {
			cmp := s.keysC[c].compare(ia, ib)
			if cmp == 0 {
				continue
			}
			if k.Desc {
				return cmp > 0
			}
			return cmp < 0
		}
		return false
	})
	return nil
}

// compare orders two stored rows of a keyCol.
func (k *keyCol) compare(a, b int) int {
	switch k.kind.StorageClass() {
	case vtypes.ClassI64:
		switch {
		case k.i64[a] < k.i64[b]:
			return -1
		case k.i64[a] > k.i64[b]:
			return 1
		}
	case vtypes.ClassF64:
		switch {
		case k.f64[a] < k.f64[b]:
			return -1
		case k.f64[a] > k.f64[b]:
			return 1
		}
	case vtypes.ClassStr:
		switch {
		case k.str[a] < k.str[b]:
			return -1
		case k.str[a] > k.str[b]:
			return 1
		}
	case vtypes.ClassBool:
		switch {
		case !k.b[a] && k.b[b]:
			return -1
		case k.b[a] && !k.b[b]:
			return 1
		}
	}
	return 0
}

// Next implements Operator.
func (s *Sort) Next() (*vector.Batch, error) {
	if err := ctxErr(s.ctx); err != nil {
		return nil, err
	}
	if !s.built {
		if err := s.consume(); err != nil {
			return nil, err
		}
		s.built = true
	}
	if s.outPos >= s.n {
		return nil, nil
	}
	n := s.n - s.outPos
	if n > s.vecSize {
		n = s.vecSize
	}
	out := vector.NewBatch(s.Schema(), n)
	for i := 0; i < n; i++ {
		src := s.perm[s.outPos+i]
		for c, kc := range s.cols {
			if s.nulls[c] != nil && src < len(s.nulls[c]) && s.nulls[c][src] {
				out.Vecs[c].Set(i, vtypes.NullValue(kc.kind))
				continue
			}
			out.Vecs[c].Set(i, kc.get(src))
		}
	}
	s.outPos += n
	out.SetDense(n)
	return out, nil
}

// Close implements Operator.
func (s *Sort) Close() error {
	s.cols, s.keysC, s.perm = nil, nil, nil
	return s.child.Close()
}

// NewTopN composes Sort and Limit — ORDER BY ... LIMIT n.
func NewTopN(child Operator, keys []SortKey, n int64) Operator {
	return NewLimit(NewSort(child, keys), n)
}
