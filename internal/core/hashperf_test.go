package core

import (
	"context"
	"errors"
	"testing"

	"vectorwise/internal/vector"
	"vectorwise/internal/vtypes"
)

// batchSource serves preset batches once — the minimal child for
// driving operator internals directly.
type batchSource struct {
	schema  *vtypes.Schema
	batches []*vector.Batch
	pos     int
	// onNext, when non-nil, runs before each Next (cancellation hooks).
	onNext func(call int)
	calls  int
}

func (s *batchSource) Schema() *vtypes.Schema { return s.schema }
func (s *batchSource) Open() error            { s.pos = 0; s.calls = 0; return nil }
func (s *batchSource) Close() error           { return nil }
func (s *batchSource) Next() (*vector.Batch, error) {
	if s.onNext != nil {
		s.onNext(s.calls)
	}
	s.calls++
	if s.pos >= len(s.batches) {
		return nil, nil
	}
	b := s.batches[s.pos]
	s.pos++
	return b, nil
}

// i64Batch builds a dense single-column BIGINT batch from keys.
func i64Batch(keys []int64) *vector.Batch {
	b := vector.NewBatch(i64Schema(), len(keys))
	copy(b.Vecs[0].I64, keys)
	b.SetDense(len(keys))
	return b
}

func repeatKeys(n int, distinct int64) []int64 {
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = int64(i) % distinct
	}
	return keys
}

// TestHashAggProbeNoSteadyStateAllocs pins the zero-allocation contract
// on the aggregate probe path: once every group exists and the table is
// at stable size, consuming a batch allocates nothing (keyVecs hoisted,
// table scratch reused, accumulators in place).
func TestHashAggProbeNoSteadyStateAllocs(t *testing.T) {
	b := i64Batch(repeatKeys(1024, 500))
	src := &batchSource{schema: i64Schema()}
	agg := NewHashAggregate(src,
		[]Expr{col(0, vtypes.KindI64)},
		[]AggSpec{{Fn: AggSum, Arg: col(0, vtypes.KindI64)}},
		[]string{"k", "s"})
	if err := agg.Open(); err != nil {
		t.Fatal(err)
	}
	defer agg.Close()
	if err := agg.consumeBatch(b); err != nil { // creates all 500 groups
		t.Fatal(err)
	}
	got := testing.AllocsPerRun(100, func() {
		if err := agg.consumeBatch(b); err != nil {
			t.Fatal(err)
		}
	})
	if got != 0 {
		t.Fatalf("hashagg probe path allocates %.1f/op at stable table size, want 0", got)
	}
}

// TestHashJoinProbeNoSteadyStateAllocs pins the same contract on the
// join probe path: a probe batch that matches nothing exercises hash +
// batched Find + gather with zero allocations (matching rows would
// allocate only the output batch).
func TestHashJoinProbeNoSteadyStateAllocs(t *testing.T) {
	build := i64Batch(repeatKeys(1024, 1024))
	probeKeys := make([]int64, 1024)
	for i := range probeKeys {
		probeKeys[i] = int64(100000 + i) // all misses
	}
	probe := i64Batch(probeKeys)
	j, err := NewHashJoin(
		&batchSource{schema: i64Schema()},
		&batchSource{schema: i64Schema(), batches: []*vector.Batch{build}},
		[]Expr{col(0, vtypes.KindI64)}, []Expr{col(0, vtypes.KindI64)}, JoinInner)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Open(); err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.buildTable(); err != nil {
		t.Fatal(err)
	}
	if out, err := j.probeBatch(probe); err != nil || out != nil {
		t.Fatalf("warmup probe: out=%v err=%v, want no matches", out, err)
	}
	got := testing.AllocsPerRun(100, func() {
		if _, err := j.probeBatch(probe); err != nil {
			t.Fatal(err)
		}
	})
	if got != 0 {
		t.Fatalf("hashjoin probe path allocates %.1f/op at stable table size, want 0", got)
	}
}

// TestJoinCancellationMidBuild: a context canceled while the build side
// is still streaming stops the build loop at the next batch boundary —
// the regression guard for the new batched build loop.
func TestJoinCancellationMidBuild(t *testing.T) {
	var batches []*vector.Batch
	for i := 0; i < 8; i++ {
		batches = append(batches, i64Batch(repeatKeys(256, 256)))
	}
	ctx, cancel := context.WithCancel(context.Background())
	buildSrc := &batchSource{schema: i64Schema(), batches: batches}
	buildSrc.onNext = func(call int) {
		if call == 3 { // cancel mid-build, several batches in
			cancel()
		}
	}
	j, err := NewHashJoin(
		&batchSource{schema: i64Schema()},
		buildSrc,
		[]Expr{col(0, vtypes.KindI64)}, []Expr{col(0, vtypes.KindI64)}, JoinInner)
	if err != nil {
		t.Fatal(err)
	}
	j.SetContext(ctx)
	if err := j.Open(); err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if _, err := j.Next(); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled from mid-build cancel, got %v", err)
	}
	if buildSrc.calls >= len(batches) {
		t.Fatalf("build ran to completion (%d calls) despite cancellation", buildSrc.calls)
	}
}

// BenchmarkHashAggProbe measures the steady-state aggregate probe path:
// one 1K batch against a stable 500-group table per iteration.
func BenchmarkHashAggProbe(b *testing.B) {
	batch := i64Batch(repeatKeys(1024, 500))
	src := &batchSource{schema: i64Schema()}
	agg := NewHashAggregate(src,
		[]Expr{col(0, vtypes.KindI64)},
		[]AggSpec{{Fn: AggSum, Arg: col(0, vtypes.KindI64)}},
		[]string{"k", "s"})
	if err := agg.Open(); err != nil {
		b.Fatal(err)
	}
	defer agg.Close()
	if err := agg.consumeBatch(batch); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(1024 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := agg.consumeBatch(batch); err != nil {
			b.Fatal(err)
		}
	}
}
