package core

import (
	"context"
	"fmt"
	"time"

	"vectorwise/internal/hashtable"
	"vectorwise/internal/primitives"
	"vectorwise/internal/vector"
	"vectorwise/internal/vtypes"
)

// AggFn names an aggregate function.
type AggFn uint8

// Aggregate functions. Avg decomposes into Sum/Count at output time
// (and the parallelizer rewrites it the same way across the exchange).
const (
	AggSum AggFn = iota
	AggCount
	AggCountStar
	AggMin
	AggMax
	AggAvg
)

// AggSpec is one aggregate column: a function over an input expression
// (nil for COUNT(*)).
type AggSpec struct {
	Fn  AggFn
	Arg Expr
}

// resultKind returns the output kind of the aggregate.
func (a AggSpec) resultKind() vtypes.Kind {
	switch a.Fn {
	case AggCount, AggCountStar:
		return vtypes.KindI64
	case AggAvg:
		return vtypes.KindF64
	default:
		return a.Arg.Kind()
	}
}

// keyCol stores one grouping column densely, per storage class.
type keyCol struct {
	kind vtypes.Kind
	i64  []int64
	f64  []float64
	str  []string
	b    []bool
}

func (k *keyCol) appendFrom(v *vector.Vector, i int32) {
	switch k.kind.StorageClass() {
	case vtypes.ClassI64:
		k.i64 = append(k.i64, v.I64[i])
	case vtypes.ClassF64:
		k.f64 = append(k.f64, v.F64[i])
	case vtypes.ClassStr:
		k.str = append(k.str, v.Str[i])
	case vtypes.ClassBool:
		k.b = append(k.b, v.B[i])
	}
}

func (k *keyCol) equalAt(g uint32, v *vector.Vector, i int32) bool {
	switch k.kind.StorageClass() {
	case vtypes.ClassI64:
		return k.i64[g] == v.I64[i]
	case vtypes.ClassF64:
		return k.f64[g] == v.F64[i]
	case vtypes.ClassStr:
		return k.str[g] == v.Str[i]
	default:
		return k.b[g] == v.B[i]
	}
}

func (k *keyCol) get(g int) vtypes.Value {
	switch k.kind.StorageClass() {
	case vtypes.ClassI64:
		return vtypes.Value{Kind: k.kind, I64: k.i64[g]}
	case vtypes.ClassF64:
		return vtypes.Value{Kind: k.kind, F64: k.f64[g]}
	case vtypes.ClassStr:
		return vtypes.Value{Kind: k.kind, Str: k.str[g]}
	default:
		return vtypes.Value{Kind: k.kind, B: k.b[g]}
	}
}

// aggState holds one aggregate's accumulators across all groups.
type aggState struct {
	spec AggSpec
	i64  []int64
	f64  []float64
	str  []string
	cnt  []int64 // Avg's count side
	seen []bool  // Min/Max initialization
}

func (a *aggState) grow() {
	switch a.spec.Fn {
	case AggCount, AggCountStar:
		a.i64 = append(a.i64, 0)
	case AggAvg:
		a.f64 = append(a.f64, 0)
		a.cnt = append(a.cnt, 0)
	case AggSum:
		if a.spec.Arg.Kind().StorageClass() == vtypes.ClassF64 {
			a.f64 = append(a.f64, 0)
		} else {
			a.i64 = append(a.i64, 0)
		}
	case AggMin, AggMax:
		a.seen = append(a.seen, false)
		switch a.spec.Arg.Kind().StorageClass() {
		case vtypes.ClassF64:
			a.f64 = append(a.f64, 0)
		case vtypes.ClassStr:
			a.str = append(a.str, "")
		default:
			a.i64 = append(a.i64, 0)
		}
	}
}

// HashAggregate implements vectorized grouped aggregation: each input
// batch is translated to a dense group-id vector via the shared
// open-addressing hash table (one batched FindOrInsert per vector),
// then one Agg* kernel per aggregate updates columnar accumulators.
// Grouping and aggregation both run one kernel per vector.
type HashAggregate struct {
	child     Operator
	groupBy   []Expr
	aggs      []AggSpec
	schema    *vtypes.Schema
	vecSize   int
	keys      []*keyCol
	states    []*aggState
	ht        *hashtable.Table
	numGroups int

	hashes  []uint64
	groups  []uint32
	keyVecs []*vector.Vector // per-batch key columns, hoisted (reused)
	eqFn    hashtable.EqFn
	allocFn hashtable.NewFn
	sink    *HashStatsSink
	probeNs int64 // cumulative FindOrInsert time (agg_probe_ns)
	built   bool
	outPos  int
	ctx     context.Context
	// partial marks a per-partition aggregate under a parallel
	// recombination: ungrouped over zero rows it emits nothing instead
	// of the implicit global row (which would feed zeros into the
	// final MIN/MAX).
	partial bool
	inRows  int64
}

// SetPartial marks this aggregate as a parallel partial (see the
// partial field).
func (h *HashAggregate) SetPartial(p bool) { h.partial = p }

// NewHashAggregate builds the operator; names labels group columns then
// aggregate columns.
func NewHashAggregate(child Operator, groupBy []Expr, aggs []AggSpec, names []string) *HashAggregate {
	cols := make([]vtypes.Column, 0, len(groupBy)+len(aggs))
	for i, g := range groupBy {
		cols = append(cols, vtypes.Column{Name: names[i], Kind: g.Kind()})
	}
	for i, a := range aggs {
		cols = append(cols, vtypes.Column{Name: names[len(groupBy)+i], Kind: a.resultKind()})
	}
	h := &HashAggregate{
		child: child, groupBy: groupBy, aggs: aggs,
		schema:  &vtypes.Schema{Cols: cols},
		vecSize: vector.DefaultSize,
	}
	return h
}

// Schema implements Operator.
func (h *HashAggregate) Schema() *vtypes.Schema { return h.schema }

// SetContext implements ContextSetter.
func (h *HashAggregate) SetContext(ctx context.Context) { h.ctx = ctx }

// SetStatsSink directs this operator's table stats to sink on Close.
func (h *HashAggregate) SetStatsSink(s *HashStatsSink) { h.sink = s }

// Open implements Operator.
func (h *HashAggregate) Open() error {
	if err := h.child.Open(); err != nil {
		return err
	}
	h.keys = make([]*keyCol, len(h.groupBy))
	for i, g := range h.groupBy {
		h.keys[i] = &keyCol{kind: g.Kind()}
	}
	h.states = make([]*aggState, len(h.aggs))
	for i, a := range h.aggs {
		h.states[i] = &aggState{spec: a}
	}
	h.ht = hashtable.New(0)
	h.keyVecs = make([]*vector.Vector, len(h.groupBy))
	h.eqFn = h.eqBatch
	h.allocFn = h.addGroup
	h.numGroups = 0
	h.probeNs = 0
	h.built = false
	h.outPos = 0
	h.inRows = 0
	return nil
}

// consume drains the child, building groups and accumulators.
func (h *HashAggregate) consume() error {
	if len(h.groupBy) == 0 {
		// Single implicit group.
		h.numGroups = 1
		for _, st := range h.states {
			st.grow()
		}
	}
	for {
		// Cancellation point inside the build phase: a canceled context
		// stops the aggregation while it is still consuming input, not
		// only once groups start streaming out.
		if err := ctxErr(h.ctx); err != nil {
			return err
		}
		b, err := h.child.Next()
		if err != nil {
			return err
		}
		if b == nil {
			if h.partial && len(h.groupBy) == 0 && h.inRows == 0 {
				h.numGroups = 0 // empty partial: no implicit group
			}
			return nil
		}
		if b.N == 0 {
			continue
		}
		h.inRows += int64(b.N)
		if err := h.consumeBatch(b); err != nil {
			return err
		}
	}
}

func (h *HashAggregate) consumeBatch(b *vector.Batch) error {
	capn := b.Capacity()
	if cap(h.hashes) < capn {
		h.hashes = make([]uint64, capn)
		h.groups = make([]uint32, capn)
	}
	hashes := h.hashes[:capn]
	groups := h.groups[:capn]

	if len(h.groupBy) > 0 {
		for i, g := range h.groupBy {
			v, err := g.Eval(b)
			if err != nil {
				return err
			}
			h.keyVecs[i] = v
		}
		// Vectorized hash of the key columns.
		for i, v := range h.keyVecs {
			if i == 0 {
				hashVec(hashes, v, b.Sel, b.N)
			} else {
				rehashVec(hashes, v, b.Sel, b.N)
			}
		}
		// Translate rows to group ids: one batched table lookup per
		// vector, with key verification and new-group allocation
		// running through the callbacks below.
		start := time.Now()
		h.ht.FindOrInsert(hashes, b.Sel, b.N, groups, h.eqFn, h.allocFn)
		h.probeNs += time.Since(start).Nanoseconds()
	} else {
		// Ungrouped: every row belongs to group 0; groups is zeroed.
		if b.Sel == nil {
			for i := 0; i < b.N; i++ {
				groups[i] = 0
			}
		} else {
			for _, i := range b.Sel[:b.N] {
				groups[i] = 0
			}
		}
	}

	// Fire the aggregate kernels.
	for _, st := range h.states {
		var arg *vector.Vector
		if st.spec.Arg != nil {
			v, err := st.spec.Arg.Eval(b)
			if err != nil {
				return err
			}
			arg = v
		}
		switch st.spec.Fn {
		case AggCount, AggCountStar:
			primitives.AggCount(st.i64, groups, b.Sel, b.N)
		case AggSum:
			if arg.Kind.StorageClass() == vtypes.ClassF64 {
				primitives.AggSum(st.f64, groups, arg.F64, b.Sel, b.N)
			} else {
				primitives.AggSum(st.i64, groups, arg.I64, b.Sel, b.N)
			}
		case AggAvg:
			if arg.Kind.StorageClass() == vtypes.ClassF64 {
				primitives.AggSum(st.f64, groups, arg.F64, b.Sel, b.N)
			} else {
				// Widen integers through a cast-free running float sum.
				if b.Sel == nil {
					for i := 0; i < b.N; i++ {
						st.f64[groups[i]] += float64(arg.I64[i])
					}
				} else {
					for _, i := range b.Sel[:b.N] {
						st.f64[groups[i]] += float64(arg.I64[i])
					}
				}
			}
			primitives.AggCount(st.cnt, groups, b.Sel, b.N)
		case AggMin:
			switch arg.Kind.StorageClass() {
			case vtypes.ClassF64:
				primitives.AggMin(st.f64, st.seen, groups, arg.F64, b.Sel, b.N)
			case vtypes.ClassStr:
				primitives.AggMin(st.str, st.seen, groups, arg.Str, b.Sel, b.N)
			default:
				primitives.AggMin(st.i64, st.seen, groups, arg.I64, b.Sel, b.N)
			}
		case AggMax:
			switch arg.Kind.StorageClass() {
			case vtypes.ClassF64:
				primitives.AggMax(st.f64, st.seen, groups, arg.F64, b.Sel, b.N)
			case vtypes.ClassStr:
				primitives.AggMax(st.str, st.seen, groups, arg.Str, b.Sel, b.N)
			default:
				primitives.AggMax(st.i64, st.seen, groups, arg.I64, b.Sel, b.N)
			}
		}
	}
	return nil
}

// eqBatch is the table's key-verification callback: column-major
// comparison of each candidate probe row against its candidate group's
// stored keys (rows already missed by an earlier column are skipped).
func (h *HashAggregate) eqBatch(rows []int32, vals []uint32, miss []bool, n int) {
	for c, kc := range h.keys {
		v := h.keyVecs[c]
		for j := 0; j < n; j++ {
			if !miss[j] && !kc.equalAt(vals[j], v, rows[j]) {
				miss[j] = true
			}
		}
	}
}

// addGroup is the table's new-key callback: it appends the row's keys
// and one accumulator slot per aggregate, returning the new group id.
func (h *HashAggregate) addGroup(i int32) uint32 {
	gid := h.numGroups
	h.numGroups++
	for c, kc := range h.keys {
		kc.appendFrom(h.keyVecs[c], i)
	}
	for _, st := range h.states {
		st.grow()
	}
	return uint32(gid)
}

func hashVec(dst []uint64, v *vector.Vector, sel []int32, n int) {
	switch v.Kind.StorageClass() {
	case vtypes.ClassI64:
		primitives.HashI64(dst, v.I64, sel, n)
	case vtypes.ClassF64:
		primitives.HashF64(dst, v.F64, sel, n)
	case vtypes.ClassStr:
		primitives.HashStr(dst, v.Str, sel, n)
	case vtypes.ClassBool:
		primitives.HashBool(dst, v.B, sel, n)
	}
}

func rehashVec(dst []uint64, v *vector.Vector, sel []int32, n int) {
	switch v.Kind.StorageClass() {
	case vtypes.ClassI64:
		primitives.RehashI64(dst, v.I64, sel, n)
	case vtypes.ClassF64:
		primitives.RehashF64(dst, v.F64, sel, n)
	case vtypes.ClassStr:
		primitives.RehashStr(dst, v.Str, sel, n)
	case vtypes.ClassBool:
		primitives.RehashBool(dst, v.B, sel, n)
	}
}

// Next implements Operator: first call drains the child, then groups
// stream out in insertion order.
func (h *HashAggregate) Next() (*vector.Batch, error) {
	if err := ctxErr(h.ctx); err != nil {
		return nil, err
	}
	if !h.built {
		if err := h.consume(); err != nil {
			return nil, err
		}
		h.built = true
	}
	if h.outPos >= h.numGroups {
		return nil, nil
	}
	n := h.numGroups - h.outPos
	if n > h.vecSize {
		n = h.vecSize
	}
	out := vector.NewBatch(h.schema, n)
	for i := 0; i < n; i++ {
		g := h.outPos + i
		for c, kc := range h.keys {
			out.Vecs[c].Set(i, kc.get(g))
		}
		for a, st := range h.states {
			out.Vecs[len(h.keys)+a].Set(i, h.aggValue(st, g))
		}
	}
	h.outPos += n
	out.SetDense(n)
	return out, nil
}

// aggValue materializes one accumulator as a value.
func (h *HashAggregate) aggValue(st *aggState, g int) vtypes.Value {
	switch st.spec.Fn {
	case AggCount, AggCountStar:
		return vtypes.I64Value(st.i64[g])
	case AggAvg:
		if st.cnt[g] == 0 {
			return vtypes.F64Value(0)
		}
		return vtypes.F64Value(st.f64[g] / float64(st.cnt[g]))
	case AggSum:
		if st.spec.Arg.Kind().StorageClass() == vtypes.ClassF64 {
			return vtypes.F64Value(st.f64[g])
		}
		return vtypes.I64Value(st.i64[g])
	case AggMin, AggMax:
		switch st.spec.Arg.Kind().StorageClass() {
		case vtypes.ClassF64:
			return vtypes.F64Value(st.f64[g])
		case vtypes.ClassStr:
			return vtypes.StrValue(st.str[g])
		default:
			return vtypes.Value{Kind: st.spec.Arg.Kind(), I64: st.i64[g]}
		}
	}
	panic(fmt.Sprintf("core: unknown aggregate %d", st.spec.Fn))
}

// Close implements Operator.
func (h *HashAggregate) Close() error {
	if h.sink != nil && h.ht != nil && len(h.groupBy) > 0 {
		h.sink.Record("agg", h.ht.Stats(), h.probeNs)
	}
	h.keys, h.states, h.ht = nil, nil, nil
	return h.child.Close()
}
