package core

import (
	"context"
	"fmt"

	"vectorwise/internal/vector"
	"vectorwise/internal/vtypes"
)

// JoinType selects join semantics.
type JoinType uint8

// Join types.
const (
	// JoinInner emits probe⋈build matches.
	JoinInner JoinType = iota
	// JoinLeftSemi emits each probe row with ≥1 match, once.
	JoinLeftSemi
	// JoinLeftAnti emits each probe row with no match.
	JoinLeftAnti
	// JoinLeftOuter emits matches plus unmatched probe rows with
	// NULL-indicated build columns.
	JoinLeftOuter
)

// HashJoin joins a streaming probe side (left child) against a
// materialized build side (right child). The build side is consumed
// fully on first Next — keys are hashed once into a bucket-chained
// table; probing then runs one hash kernel per probe vector plus a
// scalar chain walk per live row, emitting gathered output batches.
type HashJoin struct {
	probe, build         Operator
	probeKeys, buildKeys []Expr
	typ                  JoinType
	schema               *vtypes.Schema
	vecSize              int

	// Build-side storage: full columns plus evaluated key columns.
	buildCols []*keyCol
	buildKeyC []*keyCol
	buckets   []int32 // head of chain per bucket (row idx + 1)
	next      []int32 // chain links
	mask      uint64
	buildN    int
	built     bool

	hashes []uint64
	pend   *vector.Batch // overflow output
	done   bool
	ctx    context.Context
}

// NewHashJoin constructs the join. probeKeys and buildKeys must align in
// count and storage class.
func NewHashJoin(probe, build Operator, probeKeys, buildKeys []Expr, typ JoinType) (*HashJoin, error) {
	if len(probeKeys) != len(buildKeys) || len(probeKeys) == 0 {
		return nil, fmt.Errorf("core: join needs matching key lists")
	}
	for i := range probeKeys {
		if probeKeys[i].Kind().StorageClass() != buildKeys[i].Kind().StorageClass() {
			return nil, fmt.Errorf("core: join key %d: %v vs %v", i, probeKeys[i].Kind(), buildKeys[i].Kind())
		}
	}
	var cols []vtypes.Column
	cols = append(cols, probe.Schema().Cols...)
	if typ == JoinInner || typ == JoinLeftOuter {
		for _, c := range build.Schema().Cols {
			oc := c
			if typ == JoinLeftOuter {
				oc.Nullable = true
			}
			cols = append(cols, oc)
		}
	}
	return &HashJoin{
		probe: probe, build: build,
		probeKeys: probeKeys, buildKeys: buildKeys, typ: typ,
		schema:  &vtypes.Schema{Cols: cols},
		vecSize: vector.DefaultSize,
	}, nil
}

// Schema implements Operator.
func (j *HashJoin) Schema() *vtypes.Schema { return j.schema }

// SetContext implements ContextSetter.
func (j *HashJoin) SetContext(ctx context.Context) { j.ctx = ctx }

// Open implements Operator.
func (j *HashJoin) Open() error {
	if err := j.probe.Open(); err != nil {
		return err
	}
	return j.build.Open()
}

// buildTable materializes the build side.
func (j *HashJoin) buildTable() error {
	bs := j.build.Schema()
	j.buildCols = make([]*keyCol, bs.Len())
	for i, c := range bs.Cols {
		j.buildCols[i] = &keyCol{kind: c.Kind}
	}
	j.buildKeyC = make([]*keyCol, len(j.buildKeys))
	for i, e := range j.buildKeys {
		j.buildKeyC[i] = &keyCol{kind: e.Kind()}
	}
	var hashAll []uint64
	for {
		// Cancellation point in the build phase, before probing starts.
		if err := ctxErr(j.ctx); err != nil {
			return err
		}
		b, err := j.build.Next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		if b.N == 0 {
			continue
		}
		keyVecs := make([]*vector.Vector, len(j.buildKeys))
		for i, e := range j.buildKeys {
			v, err := e.Eval(b)
			if err != nil {
				return err
			}
			keyVecs[i] = v
		}
		capn := b.Capacity()
		hs := make([]uint64, capn)
		for i, v := range keyVecs {
			if i == 0 {
				hashVec(hs, v, b.Sel, b.N)
			} else {
				rehashVec(hs, v, b.Sel, b.N)
			}
		}
		store := func(i int32) {
			for c := range j.buildCols {
				j.buildCols[c].appendFrom(b.Vecs[c], i)
			}
			for c := range j.buildKeyC {
				j.buildKeyC[c].appendFrom(keyVecs[c], i)
			}
			hashAll = append(hashAll, hs[i])
			j.buildN++
		}
		if b.Sel == nil {
			for i := 0; i < b.N; i++ {
				store(int32(i))
			}
		} else {
			for _, i := range b.Sel[:b.N] {
				store(i)
			}
		}
	}
	// Size the directory to ~2× rows, power of two.
	size := uint64(1024)
	for size < uint64(j.buildN)*2 {
		size *= 2
	}
	j.mask = size - 1
	j.buckets = make([]int32, size)
	j.next = make([]int32, j.buildN)
	for r := 0; r < j.buildN; r++ {
		slot := hashAll[r] & j.mask
		j.next[r] = j.buckets[slot]
		j.buckets[slot] = int32(r + 1)
	}
	return nil
}

// matchRow reports whether build row r matches the probe keys at i.
func (j *HashJoin) matchRow(r int32, keyVecs []*vector.Vector, i int32) bool {
	for c, kc := range j.buildKeyC {
		if !kc.equalAt(uint32(r), keyVecs[c], i) {
			return false
		}
	}
	return true
}

// Next implements Operator.
func (j *HashJoin) Next() (*vector.Batch, error) {
	if !j.built {
		if err := j.buildTable(); err != nil {
			return nil, err
		}
		j.built = true
	}
	if j.pend != nil {
		out := j.pend
		j.pend = nil
		return out, nil
	}
	if j.done {
		return nil, nil
	}
	for {
		if err := ctxErr(j.ctx); err != nil {
			return nil, err
		}
		b, err := j.probe.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			j.done = true
			return nil, nil
		}
		if b.N == 0 {
			continue
		}
		out, err := j.probeBatch(b)
		if err != nil {
			return nil, err
		}
		if out != nil {
			return out, nil
		}
	}
}

// probeBatch joins one probe batch, returning an output batch (possibly
// leaving an overflow batch pended) or nil when nothing matched.
func (j *HashJoin) probeBatch(b *vector.Batch) (*vector.Batch, error) {
	keyVecs := make([]*vector.Vector, len(j.probeKeys))
	for i, e := range j.probeKeys {
		v, err := e.Eval(b)
		if err != nil {
			return nil, err
		}
		keyVecs[i] = v
	}
	capn := b.Capacity()
	if cap(j.hashes) < capn {
		j.hashes = make([]uint64, capn)
	}
	hs := j.hashes[:capn]
	for i, v := range keyVecs {
		if i == 0 {
			hashVec(hs, v, b.Sel, b.N)
		} else {
			rehashVec(hs, v, b.Sel, b.N)
		}
	}

	var probeIdx []int32
	var buildIdx []int32 // -1 for outer-null rows
	walk := func(i int32) {
		head := j.buckets[hs[i]&j.mask]
		switch j.typ {
		case JoinInner, JoinLeftOuter:
			matched := false
			for r := head; r != 0; r = j.next[r-1] {
				if j.matchRow(r-1, keyVecs, i) {
					probeIdx = append(probeIdx, i)
					buildIdx = append(buildIdx, r-1)
					matched = true
				}
			}
			if !matched && j.typ == JoinLeftOuter {
				probeIdx = append(probeIdx, i)
				buildIdx = append(buildIdx, -1)
			}
		case JoinLeftSemi:
			for r := head; r != 0; r = j.next[r-1] {
				if j.matchRow(r-1, keyVecs, i) {
					probeIdx = append(probeIdx, i)
					return
				}
			}
		case JoinLeftAnti:
			for r := head; r != 0; r = j.next[r-1] {
				if j.matchRow(r-1, keyVecs, i) {
					return
				}
			}
			probeIdx = append(probeIdx, i)
		}
	}
	if b.Sel == nil {
		for i := 0; i < b.N; i++ {
			walk(int32(i))
		}
	} else {
		for _, i := range b.Sel[:b.N] {
			walk(i)
		}
	}
	if len(probeIdx) == 0 {
		return nil, nil
	}
	return j.emit(b, probeIdx, buildIdx), nil
}

// emit gathers matched pairs into an output batch; pairs beyond one
// vector are queued on pend (the probe batch stays valid because emit
// copies all referenced values).
func (j *HashJoin) emit(b *vector.Batch, probeIdx, buildIdx []int32) *vector.Batch {
	total := len(probeIdx)
	mk := func(lo, hi int) *vector.Batch {
		n := hi - lo
		out := vector.NewBatch(j.schema, n)
		np := len(b.Vecs)
		for c := 0; c < np; c++ {
			dst := out.Vecs[c]
			src := b.Vecs[c]
			for k := lo; k < hi; k++ {
				dst.CopyFrom(src, int(probeIdx[k]), k-lo, 1)
			}
		}
		if j.typ == JoinInner || j.typ == JoinLeftOuter {
			for c, kc := range j.buildCols {
				dst := out.Vecs[np+c]
				for k := lo; k < hi; k++ {
					if buildIdx[k] < 0 {
						dst.Set(k-lo, vtypes.NullValue(kc.kind))
						continue
					}
					dst.Set(k-lo, kc.get(int(buildIdx[k])))
				}
			}
		}
		out.SetDense(n)
		return out
	}
	if total <= j.vecSize {
		return mk(0, total)
	}
	// Chain overflow batches through pend (rare: fan-out joins).
	first := mk(0, j.vecSize)
	rest := mk(j.vecSize, total)
	j.pend = rest
	return first
}

// Close implements Operator.
func (j *HashJoin) Close() error {
	j.buildCols, j.buildKeyC, j.buckets, j.next = nil, nil, nil, nil
	if err := j.probe.Close(); err != nil {
		j.build.Close()
		return err
	}
	return j.build.Close()
}
