package core

import (
	"context"
	"fmt"
	"time"

	"vectorwise/internal/hashtable"
	"vectorwise/internal/vector"
	"vectorwise/internal/vtypes"
)

// JoinType selects join semantics.
type JoinType uint8

// Join types.
const (
	// JoinInner emits probe⋈build matches.
	JoinInner JoinType = iota
	// JoinLeftSemi emits each probe row with ≥1 match, once.
	JoinLeftSemi
	// JoinLeftAnti emits each probe row with no match.
	JoinLeftAnti
	// JoinLeftOuter emits matches plus unmatched probe rows with
	// NULL-indicated build columns.
	JoinLeftOuter
)

// HashJoin joins a streaming probe side (left child) against a
// materialized build side (right child). The build side is consumed
// fully on first Next — each build batch inserts its distinct keys into
// the shared open-addressing table (one batched FindOrInsert per
// vector); rows sharing a key chain off their distinct-key entry in
// build order. Probing runs one hash kernel plus one batched table
// lookup per probe vector, then walks the (usually length-1) duplicate
// chain only for genuinely duplicate build keys, emitting gathered
// output batches.
type HashJoin struct {
	probe, build         Operator
	probeKeys, buildKeys []Expr
	typ                  JoinType
	schema               *vtypes.Schema
	vecSize              int

	// Build-side storage: full columns plus evaluated key columns.
	buildCols []*keyCol
	buildKeyC []*keyCol
	ht        *hashtable.Table
	head      []int32 // per distinct key: first build row
	tail      []int32 // per distinct key: last build row (chain append)
	next      []int32 // per build row: next row with the same key, -1 ends
	buildN    int
	built     bool

	hashes  []uint64
	kids    []int32          // per probe row: distinct-key id or -1
	keyVecs []*vector.Vector // current batch's key columns (build, then probe)
	rowOf   []int32          // build phase: batch row -> dense build row id
	fik     []uint32         // build phase: FindOrInsert output
	eqFn    hashtable.EqFn
	allocFn hashtable.NewFn
	sink    *HashStatsSink
	buildNs int64 // build-side materialization time (join_build_ns)

	probeIdx []int32       // reused emit gather buffers
	buildIdx []int32       // -1 for outer-null rows
	pend     *vector.Batch // overflow output
	done     bool
	ctx      context.Context
}

// NewHashJoin constructs the join. probeKeys and buildKeys must align in
// count and storage class.
func NewHashJoin(probe, build Operator, probeKeys, buildKeys []Expr, typ JoinType) (*HashJoin, error) {
	if len(probeKeys) != len(buildKeys) || len(probeKeys) == 0 {
		return nil, fmt.Errorf("core: join needs matching key lists")
	}
	for i := range probeKeys {
		if probeKeys[i].Kind().StorageClass() != buildKeys[i].Kind().StorageClass() {
			return nil, fmt.Errorf("core: join key %d: %v vs %v", i, probeKeys[i].Kind(), buildKeys[i].Kind())
		}
	}
	var cols []vtypes.Column
	cols = append(cols, probe.Schema().Cols...)
	if typ == JoinInner || typ == JoinLeftOuter {
		for _, c := range build.Schema().Cols {
			oc := c
			if typ == JoinLeftOuter {
				oc.Nullable = true
			}
			cols = append(cols, oc)
		}
	}
	return &HashJoin{
		probe: probe, build: build,
		probeKeys: probeKeys, buildKeys: buildKeys, typ: typ,
		schema:  &vtypes.Schema{Cols: cols},
		vecSize: vector.DefaultSize,
	}, nil
}

// Schema implements Operator.
func (j *HashJoin) Schema() *vtypes.Schema { return j.schema }

// SetContext implements ContextSetter.
func (j *HashJoin) SetContext(ctx context.Context) { j.ctx = ctx }

// SetStatsSink directs this operator's table stats to sink on Close.
func (j *HashJoin) SetStatsSink(s *HashStatsSink) { j.sink = s }

// Open implements Operator.
func (j *HashJoin) Open() error {
	if err := j.probe.Open(); err != nil {
		return err
	}
	return j.build.Open()
}

// buildTable materializes the build side: columns append densely, each
// batch's distinct keys insert through one batched FindOrInsert, and
// duplicate-key rows chain off their distinct entry in build order.
func (j *HashJoin) buildTable() error {
	start := time.Now()
	bs := j.build.Schema()
	j.buildCols = make([]*keyCol, bs.Len())
	for i, c := range bs.Cols {
		j.buildCols[i] = &keyCol{kind: c.Kind}
	}
	j.buildKeyC = make([]*keyCol, len(j.buildKeys))
	for i, e := range j.buildKeys {
		j.buildKeyC[i] = &keyCol{kind: e.Kind()}
	}
	j.ht = hashtable.New(0)
	j.keyVecs = make([]*vector.Vector, len(j.buildKeys))
	j.eqFn = j.eqBuild
	j.allocFn = j.allocKey
	for {
		// Cancellation point in the build phase, before probing starts.
		if err := ctxErr(j.ctx); err != nil {
			return err
		}
		b, err := j.build.Next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		if b.N == 0 {
			continue
		}
		for i, e := range j.buildKeys {
			v, err := e.Eval(b)
			if err != nil {
				return err
			}
			j.keyVecs[i] = v
		}
		capn := b.Capacity()
		if cap(j.hashes) < capn {
			j.hashes = make([]uint64, capn)
			j.rowOf = make([]int32, capn)
			j.fik = make([]uint32, capn)
		}
		hs := j.hashes[:capn]
		for i, v := range j.keyVecs {
			if i == 0 {
				hashVec(hs, v, b.Sel, b.N)
			} else {
				rehashVec(hs, v, b.Sel, b.N)
			}
		}
		// Append the batch's live rows densely; remember each batch
		// position's dense row id for the insert callbacks below.
		store := func(i int32) {
			for c := range j.buildCols {
				j.buildCols[c].appendFrom(b.Vecs[c], i)
			}
			for c := range j.buildKeyC {
				j.buildKeyC[c].appendFrom(j.keyVecs[c], i)
			}
			j.next = append(j.next, -1)
			j.rowOf[i] = int32(j.buildN)
			j.buildN++
		}
		if b.Sel == nil {
			for i := 0; i < b.N; i++ {
				store(int32(i))
			}
		} else {
			for _, i := range b.Sel[:b.N] {
				store(i)
			}
		}
		// One batched insert for the vector, then chain duplicate-key
		// rows in batch order (first occurrence is the chain head).
		j.ht.FindOrInsert(hs, b.Sel, b.N, j.fik, j.eqFn, j.allocFn)
		chain := func(i int32) {
			kid := j.fik[i]
			r := j.rowOf[i]
			if j.head[kid] != r {
				j.next[j.tail[kid]] = r
				j.tail[kid] = r
			}
		}
		if b.Sel == nil {
			for i := 0; i < b.N; i++ {
				chain(int32(i))
			}
		} else {
			for _, i := range b.Sel[:b.N] {
				chain(i)
			}
		}
	}
	j.buildNs = time.Since(start).Nanoseconds()
	return nil
}

// eqBuild verifies candidate batch rows against their candidate
// distinct key's representative (head) build row, column-major over the
// key columns.
func (j *HashJoin) eqBuild(rows []int32, vals []uint32, miss []bool, n int) {
	for c, kc := range j.buildKeyC {
		v := j.keyVecs[c]
		for k := 0; k < n; k++ {
			if !miss[k] && !kc.equalAt(uint32(j.head[vals[k]]), v, rows[k]) {
				miss[k] = true
			}
		}
	}
}

// allocKey registers a first-seen build key: the claiming row becomes
// its chain head (and tail, until a duplicate appends).
func (j *HashJoin) allocKey(i int32) uint32 {
	kid := len(j.head)
	r := j.rowOf[i]
	j.head = append(j.head, r)
	j.tail = append(j.tail, r)
	return uint32(kid)
}

// Next implements Operator.
func (j *HashJoin) Next() (*vector.Batch, error) {
	if !j.built {
		if err := j.buildTable(); err != nil {
			return nil, err
		}
		j.built = true
	}
	if j.pend != nil {
		out := j.pend
		j.pend = nil
		return out, nil
	}
	if j.done {
		return nil, nil
	}
	for {
		if err := ctxErr(j.ctx); err != nil {
			return nil, err
		}
		b, err := j.probe.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			j.done = true
			return nil, nil
		}
		if b.N == 0 {
			continue
		}
		out, err := j.probeBatch(b)
		if err != nil {
			return nil, err
		}
		if out != nil {
			return out, nil
		}
	}
}

// probeBatch joins one probe batch: one hash-kernel pass, one batched
// table lookup translating every row to its distinct-key id (or -1),
// then a gather walk over the (usually length-1) duplicate chains. It
// returns an output batch (possibly leaving an overflow batch pended)
// or nil when nothing matched.
func (j *HashJoin) probeBatch(b *vector.Batch) (*vector.Batch, error) {
	for i, e := range j.probeKeys {
		v, err := e.Eval(b)
		if err != nil {
			return nil, err
		}
		j.keyVecs[i] = v
	}
	capn := b.Capacity()
	if cap(j.hashes) < capn {
		j.hashes = make([]uint64, capn)
	}
	if cap(j.kids) < capn {
		j.kids = make([]int32, capn)
	}
	hs := j.hashes[:capn]
	for i, v := range j.keyVecs {
		if i == 0 {
			hashVec(hs, v, b.Sel, b.N)
		} else {
			rehashVec(hs, v, b.Sel, b.N)
		}
	}
	kids := j.kids[:capn]
	j.ht.Find(hs, b.Sel, b.N, kids, j.eqFn)

	probeIdx := j.probeIdx[:0]
	buildIdx := j.buildIdx[:0] // -1 for outer-null rows
	walk := func(i int32) {
		kid := kids[i]
		switch j.typ {
		case JoinInner, JoinLeftOuter:
			if kid < 0 {
				if j.typ == JoinLeftOuter {
					probeIdx = append(probeIdx, i)
					buildIdx = append(buildIdx, -1)
				}
				return
			}
			for r := j.head[kid]; r >= 0; r = j.next[r] {
				probeIdx = append(probeIdx, i)
				buildIdx = append(buildIdx, r)
			}
		case JoinLeftSemi:
			if kid >= 0 {
				probeIdx = append(probeIdx, i)
			}
		case JoinLeftAnti:
			if kid < 0 {
				probeIdx = append(probeIdx, i)
			}
		}
	}
	if b.Sel == nil {
		for i := 0; i < b.N; i++ {
			walk(int32(i))
		}
	} else {
		for _, i := range b.Sel[:b.N] {
			walk(i)
		}
	}
	j.probeIdx, j.buildIdx = probeIdx, buildIdx
	if len(probeIdx) == 0 {
		return nil, nil
	}
	return j.emit(b, probeIdx, buildIdx), nil
}

// emit gathers matched pairs into an output batch; pairs beyond one
// vector are queued on pend (the probe batch stays valid because emit
// copies all referenced values).
func (j *HashJoin) emit(b *vector.Batch, probeIdx, buildIdx []int32) *vector.Batch {
	total := len(probeIdx)
	mk := func(lo, hi int) *vector.Batch {
		n := hi - lo
		out := vector.NewBatch(j.schema, n)
		np := len(b.Vecs)
		for c := 0; c < np; c++ {
			dst := out.Vecs[c]
			src := b.Vecs[c]
			for k := lo; k < hi; k++ {
				dst.CopyFrom(src, int(probeIdx[k]), k-lo, 1)
			}
		}
		if j.typ == JoinInner || j.typ == JoinLeftOuter {
			for c, kc := range j.buildCols {
				dst := out.Vecs[np+c]
				for k := lo; k < hi; k++ {
					if buildIdx[k] < 0 {
						dst.Set(k-lo, vtypes.NullValue(kc.kind))
						continue
					}
					dst.Set(k-lo, kc.get(int(buildIdx[k])))
				}
			}
		}
		out.SetDense(n)
		return out
	}
	if total <= j.vecSize {
		return mk(0, total)
	}
	// Chain overflow batches through pend (rare: fan-out joins).
	first := mk(0, j.vecSize)
	rest := mk(j.vecSize, total)
	j.pend = rest
	return first
}

// Close implements Operator.
func (j *HashJoin) Close() error {
	if j.sink != nil && j.ht != nil {
		j.sink.Record("join", j.ht.Stats(), j.buildNs)
	}
	j.buildCols, j.buildKeyC, j.ht = nil, nil, nil
	j.head, j.tail, j.next = nil, nil, nil
	if err := j.probe.Close(); err != nil {
		j.build.Close()
		return err
	}
	return j.build.Close()
}
