package core

import (
	"fmt"
	"sort"
	"testing"

	"vectorwise/internal/expr"
	"vectorwise/internal/pdt"
	"vectorwise/internal/storage"
	"vectorwise/internal/vtypes"
)

// buildOrders builds a small orders-like table: id, customer, amount, tag.
func buildOrders(t testing.TB, n, groupRows int) *storage.Table {
	t.Helper()
	schema := vtypes.NewSchema(
		vtypes.Column{Name: "id", Kind: vtypes.KindI64},
		vtypes.Column{Name: "cust", Kind: vtypes.KindI64},
		vtypes.Column{Name: "amount", Kind: vtypes.KindF64},
		vtypes.Column{Name: "tag", Kind: vtypes.KindStr},
	)
	b := storage.NewBuilder("orders", schema, groupRows)
	tags := []string{"RAIL", "AIR", "SHIP"}
	for i := 0; i < n; i++ {
		err := b.AppendRow(vtypes.Row{
			vtypes.I64Value(int64(i)),
			vtypes.I64Value(int64(i % 7)),
			vtypes.F64Value(float64(i%100) + 0.5),
			vtypes.StrValue(tags[i%3]),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	tbl, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func col(i int, k vtypes.Kind) Expr { return expr.NewCol(i, k) }
func i64c(v int64) Expr             { return expr.NewConst(vtypes.I64Value(v)) }
func f64c(v float64) Expr           { return expr.NewConst(vtypes.F64Value(v)) }
func mustPred(p expr.Pred, err error) Pred {
	if err != nil {
		panic(err)
	}
	return p
}

func TestScanAllRows(t *testing.T) {
	tbl := buildOrders(t, 500, 128)
	sc := NewScan(tbl, []int{0, 2}, ScanOpts{VecSize: 100})
	rows, err := Collect(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 500 {
		t.Fatalf("scanned %d rows", len(rows))
	}
	if rows[499][0].I64 != 499 {
		t.Fatal("scan values wrong")
	}
	if sc.Schema().Col(1).Name != "amount" {
		t.Fatal("projected schema wrong")
	}
}

func TestScanWithPDTLayers(t *testing.T) {
	tbl := buildOrders(t, 100, 32)
	master := pdt.New(tbl.Schema(), tbl.Rows())
	if err := master.Delete(0); err != nil {
		t.Fatal(err)
	}
	// RID 4 addresses stable row 5 (the delete above shifted positions).
	if err := master.Modify(4, 2, vtypes.F64Value(999.5)); err != nil {
		t.Fatal(err)
	}
	small := pdt.New(tbl.Schema(), master.VisibleRows())
	if err := small.Append(vtypes.Row{
		vtypes.I64Value(1000), vtypes.I64Value(1), vtypes.F64Value(1.5), vtypes.StrValue("NEW"),
	}); err != nil {
		t.Fatal(err)
	}
	sc := NewScan(tbl, []int{0, 2}, ScanOpts{Layers: []*pdt.PDT{master, small}, VecSize: 16})
	rows, err := Collect(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 100 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0][0].I64 != 1 {
		t.Fatal("delete not merged")
	}
	// Original row 5 is now at position 4 with modified amount.
	if rows[4][1].F64 != 999.5 {
		t.Fatalf("modify not merged: %v", rows[4])
	}
	if rows[99][0].I64 != 1000 {
		t.Fatal("insert not merged")
	}
}

func TestSelectPushesSelectionVectors(t *testing.T) {
	tbl := buildOrders(t, 1000, 256)
	sc := NewScan(tbl, []int{0, 1, 2, 3}, ScanOpts{})
	p1 := mustPred(expr.NewCmpConst(col(0, vtypes.KindI64), expr.CmpLt, vtypes.I64Value(100)))
	p2 := mustPred(expr.NewCmpConst(col(3, vtypes.KindStr), expr.CmpEq, vtypes.StrValue("RAIL")))
	sel := NewSelect(sc, expr.NewAnd(p1, p2))
	rows, err := Collect(sel)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := 0; i < 100; i++ {
		if i%3 == 0 {
			want++
		}
	}
	if len(rows) != want {
		t.Fatalf("got %d rows, want %d", len(rows), want)
	}
	for _, r := range rows {
		if r[0].I64 >= 100 || r[3].Str != "RAIL" {
			t.Fatalf("filter leak: %v", r)
		}
	}
}

func TestProjectComputes(t *testing.T) {
	tbl := buildOrders(t, 10, 8)
	sc := NewScan(tbl, []int{0, 2}, ScanOpts{})
	mul, err := expr.NewArith(expr.OpMul, col(1, vtypes.KindF64), f64c(2))
	if err != nil {
		t.Fatal(err)
	}
	pr := NewProject(sc, []Expr{col(0, vtypes.KindI64), mul}, []string{"id", "double_amount"})
	rows, err := Collect(pr)
	if err != nil {
		t.Fatal(err)
	}
	if rows[3][1].F64 != (3.5)*2 {
		t.Fatalf("computed col wrong: %v", rows[3])
	}
	if pr.Schema().Col(1).Name != "double_amount" {
		t.Fatal("schema name wrong")
	}
}

func TestProjectAfterSelectAlignsWithSel(t *testing.T) {
	tbl := buildOrders(t, 100, 64)
	sc := NewScan(tbl, []int{0, 2}, ScanOpts{})
	p := mustPred(expr.NewCmpConst(col(0, vtypes.KindI64), expr.CmpGe, vtypes.I64Value(90)))
	add, err := expr.NewArith(expr.OpAdd, col(0, vtypes.KindI64), i64c(1000))
	if err != nil {
		t.Fatal(err)
	}
	pr := NewProject(NewSelect(sc, p), []Expr{add}, []string{"idplus"})
	rows, err := Collect(pr)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 || rows[0][0].I64 != 1090 || rows[9][0].I64 != 1099 {
		t.Fatalf("project-through-sel wrong: %v", rows)
	}
}

func TestHashAggregateGrouped(t *testing.T) {
	tbl := buildOrders(t, 700, 128)
	sc := NewScan(tbl, []int{1, 2}, ScanOpts{})
	agg := NewHashAggregate(sc,
		[]Expr{col(0, vtypes.KindI64)},
		[]AggSpec{
			{Fn: AggSum, Arg: col(1, vtypes.KindF64)},
			{Fn: AggCountStar},
			{Fn: AggMin, Arg: col(1, vtypes.KindF64)},
			{Fn: AggMax, Arg: col(1, vtypes.KindF64)},
			{Fn: AggAvg, Arg: col(1, vtypes.KindF64)},
		},
		[]string{"cust", "total", "cnt", "mn", "mx", "avg"})
	rows, err := Collect(agg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("got %d groups", len(rows))
	}
	// Verify group 0 against a scalar recomputation.
	var sum, mn, mx float64
	var cnt int64
	mn = 1e18
	mx = -1e18
	for i := 0; i < 700; i++ {
		if i%7 != 0 {
			continue
		}
		v := float64(i%100) + 0.5
		sum += v
		cnt++
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	for _, r := range rows {
		if r[0].I64 != 0 {
			continue
		}
		if r[1].F64 != sum || r[2].I64 != cnt || r[3].F64 != mn || r[4].F64 != mx {
			t.Fatalf("group 0 wrong: %v (want sum=%v cnt=%d mn=%v mx=%v)", r, sum, cnt, mn, mx)
		}
		if r[5].F64 != sum/float64(cnt) {
			t.Fatalf("avg wrong: %v", r[5])
		}
	}
}

func TestHashAggregateUngrouped(t *testing.T) {
	tbl := buildOrders(t, 100, 32)
	sc := NewScan(tbl, []int{0}, ScanOpts{})
	agg := NewHashAggregate(sc, nil,
		[]AggSpec{{Fn: AggSum, Arg: col(0, vtypes.KindI64)}, {Fn: AggCountStar}},
		[]string{"s", "c"})
	rows, err := Collect(agg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].I64 != 99*100/2 || rows[0][1].I64 != 100 {
		t.Fatalf("ungrouped agg wrong: %v", rows)
	}
}

func TestHashAggregateEmptyInput(t *testing.T) {
	tbl := buildOrders(t, 100, 32)
	sc := NewScan(tbl, []int{0}, ScanOpts{})
	p := mustPred(expr.NewCmpConst(col(0, vtypes.KindI64), expr.CmpLt, vtypes.I64Value(-1)))
	// Grouped over empty input → zero groups.
	agg := NewHashAggregate(NewSelect(sc, p), []Expr{col(0, vtypes.KindI64)},
		[]AggSpec{{Fn: AggCountStar}}, []string{"g", "c"})
	rows, err := Collect(agg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatalf("empty grouped agg must emit nothing, got %v", rows)
	}
	// Ungrouped over empty input → one zero row.
	sc2 := NewScan(tbl, []int{0}, ScanOpts{})
	p2 := mustPred(expr.NewCmpConst(col(0, vtypes.KindI64), expr.CmpLt, vtypes.I64Value(-1)))
	agg2 := NewHashAggregate(NewSelect(sc2, p2), nil,
		[]AggSpec{{Fn: AggCountStar}}, []string{"c"})
	rows2, err := Collect(agg2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows2) != 1 || rows2[0][0].I64 != 0 {
		t.Fatalf("empty ungrouped agg must emit one zero row, got %v", rows2)
	}
}

func TestHashAggregateManyGroups(t *testing.T) {
	// More groups than the initial directory to force rehashing.
	tbl := buildOrders(t, 5000, 1024)
	sc := NewScan(tbl, []int{0}, ScanOpts{})
	agg := NewHashAggregate(sc, []Expr{col(0, vtypes.KindI64)},
		[]AggSpec{{Fn: AggCountStar}}, []string{"id", "c"})
	rows, err := Collect(agg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5000 {
		t.Fatalf("got %d groups, want 5000", len(rows))
	}
	for _, r := range rows {
		if r[1].I64 != 1 {
			t.Fatal("per-group count wrong after rehash")
		}
	}
}

// customers table for join tests: cust id → name.
func buildCustomers(t testing.TB, n int) *storage.Table {
	t.Helper()
	schema := vtypes.NewSchema(
		vtypes.Column{Name: "cid", Kind: vtypes.KindI64},
		vtypes.Column{Name: "name", Kind: vtypes.KindStr},
	)
	b := storage.NewBuilder("cust", schema, 64)
	for i := 0; i < n; i++ {
		if err := b.AppendRow(vtypes.Row{vtypes.I64Value(int64(i)), vtypes.StrValue(fmt.Sprintf("c%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	tbl, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestHashJoinInner(t *testing.T) {
	orders := buildOrders(t, 100, 32)
	cust := buildCustomers(t, 5) // custs 0..4; orders reference 0..6
	oscan := NewScan(orders, []int{0, 1}, ScanOpts{})
	cscan := NewScan(cust, []int{0, 1}, ScanOpts{})
	j, err := NewHashJoin(oscan, cscan,
		[]Expr{col(1, vtypes.KindI64)}, []Expr{col(0, vtypes.KindI64)}, JoinInner)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Collect(j)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := 0; i < 100; i++ {
		if i%7 < 5 {
			want++
		}
	}
	if len(rows) != want {
		t.Fatalf("inner join %d rows, want %d", len(rows), want)
	}
	for _, r := range rows {
		if r[1].I64 != r[2].I64 {
			t.Fatalf("join key mismatch: %v", r)
		}
		if r[3].Str != fmt.Sprintf("c%d", r[1].I64) {
			t.Fatalf("joined payload wrong: %v", r)
		}
	}
}

func TestHashJoinSemiAnti(t *testing.T) {
	orders := buildOrders(t, 100, 32)
	cust := buildCustomers(t, 5)
	mk := func(typ JoinType) []vtypes.Row {
		oscan := NewScan(orders, []int{0, 1}, ScanOpts{})
		cscan := NewScan(cust, []int{0}, ScanOpts{})
		j, err := NewHashJoin(oscan, cscan,
			[]Expr{col(1, vtypes.KindI64)}, []Expr{col(0, vtypes.KindI64)}, typ)
		if err != nil {
			t.Fatal(err)
		}
		rows, err := Collect(j)
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	semi := mk(JoinLeftSemi)
	anti := mk(JoinLeftAnti)
	if len(semi)+len(anti) != 100 {
		t.Fatalf("semi %d + anti %d != 100", len(semi), len(anti))
	}
	for _, r := range semi {
		if r[1].I64 >= 5 {
			t.Fatalf("semi leak: %v", r)
		}
		if len(r) != 2 {
			t.Fatal("semi must project probe side only")
		}
	}
	for _, r := range anti {
		if r[1].I64 < 5 {
			t.Fatalf("anti leak: %v", r)
		}
	}
}

func TestHashJoinLeftOuter(t *testing.T) {
	orders := buildOrders(t, 21, 8)
	cust := buildCustomers(t, 5)
	oscan := NewScan(orders, []int{0, 1}, ScanOpts{})
	cscan := NewScan(cust, []int{0, 1}, ScanOpts{})
	j, err := NewHashJoin(oscan, cscan,
		[]Expr{col(1, vtypes.KindI64)}, []Expr{col(0, vtypes.KindI64)}, JoinLeftOuter)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Collect(j)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 21 {
		t.Fatalf("left outer %d rows, want 21", len(rows))
	}
	nulls := 0
	for _, r := range rows {
		if r[1].I64 >= 5 {
			if !r[2].Null || !r[3].Null {
				t.Fatalf("unmatched row must null-pad: %v", r)
			}
			nulls++
		} else if r[3].Null {
			t.Fatalf("matched row must not null-pad: %v", r)
		}
	}
	if nulls == 0 {
		t.Fatal("expected some unmatched rows")
	}
}

func TestHashJoinDuplicateBuildKeys(t *testing.T) {
	// Build side with duplicate keys: fan-out must emit all pairs.
	schema := vtypes.NewSchema(
		vtypes.Column{Name: "k", Kind: vtypes.KindI64},
		vtypes.Column{Name: "v", Kind: vtypes.KindI64},
	)
	b := storage.NewBuilder("dup", schema, 16)
	for i := 0; i < 6; i++ {
		_ = b.AppendRow(vtypes.Row{vtypes.I64Value(int64(i % 2)), vtypes.I64Value(int64(i))})
	}
	dup, _ := b.Finish()
	probe := buildCustomers(t, 2) // keys 0,1
	ps := NewScan(probe, []int{0}, ScanOpts{})
	bs := NewScan(dup, []int{0, 1}, ScanOpts{})
	j, err := NewHashJoin(ps, bs, []Expr{col(0, vtypes.KindI64)}, []Expr{col(0, vtypes.KindI64)}, JoinInner)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Collect(j)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("fan-out join %d rows, want 6", len(rows))
	}
}

func TestSortAscDescMultiKey(t *testing.T) {
	tbl := buildOrders(t, 50, 16)
	sc := NewScan(tbl, []int{0, 1, 3}, ScanOpts{})
	srt := NewSort(sc, []SortKey{
		{Expr: col(2, vtypes.KindStr)},             // tag asc
		{Expr: col(0, vtypes.KindI64), Desc: true}, // id desc
	})
	rows, err := Collect(srt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 50 {
		t.Fatal("sort lost rows")
	}
	if !sort.SliceIsSorted(rows, func(a, b int) bool {
		if rows[a][2].Str != rows[b][2].Str {
			return rows[a][2].Str < rows[b][2].Str
		}
		return rows[a][0].I64 > rows[b][0].I64
	}) {
		t.Fatal("sort order wrong")
	}
}

func TestTopNAndLimit(t *testing.T) {
	tbl := buildOrders(t, 200, 64)
	sc := NewScan(tbl, []int{0}, ScanOpts{})
	top := NewTopN(sc, []SortKey{{Expr: col(0, vtypes.KindI64), Desc: true}}, 5)
	rows, err := Collect(top)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 || rows[0][0].I64 != 199 || rows[4][0].I64 != 195 {
		t.Fatalf("topn wrong: %v", rows)
	}
	// Limit alone.
	lim := NewLimit(NewScan(tbl, []int{0}, ScanOpts{VecSize: 7}), 10)
	rows, err = Collect(lim)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("limit wrong: %d", len(rows))
	}
}

func TestXchgUnionParallelScan(t *testing.T) {
	tbl := buildOrders(t, 1000, 100) // 10 groups
	parts := PartitionGroups(tbl.Groups(), 4)
	if len(parts) != 4 {
		t.Fatalf("partitions: %v", parts)
	}
	var children []Operator
	for _, p := range parts {
		children = append(children, NewScan(tbl, []int{0}, ScanOpts{GroupLo: p[0], GroupHi: p[1]}))
	}
	x, err := NewXchgUnion(children)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Collect(x)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1000 {
		t.Fatalf("parallel scan %d rows", len(rows))
	}
	// Every id must appear exactly once.
	seen := make(map[int64]bool, 1000)
	for _, r := range rows {
		if seen[r[0].I64] {
			t.Fatal("duplicate row through exchange")
		}
		seen[r[0].I64] = true
	}
}

func TestParallelPartialAggregate(t *testing.T) {
	// The parallelizer's shape: per-partition partial aggregates unioned
	// through the exchange, re-aggregated at the top.
	tbl := buildOrders(t, 1000, 100)
	parts := PartitionGroups(tbl.Groups(), 2)
	var children []Operator
	for _, p := range parts {
		sc := NewScan(tbl, []int{1, 2}, ScanOpts{GroupLo: p[0], GroupHi: p[1]})
		children = append(children, NewHashAggregate(sc,
			[]Expr{col(0, vtypes.KindI64)},
			[]AggSpec{{Fn: AggSum, Arg: col(1, vtypes.KindF64)}, {Fn: AggCountStar}},
			[]string{"cust", "psum", "pcnt"}))
	}
	x, err := NewXchgUnion(children)
	if err != nil {
		t.Fatal(err)
	}
	final := NewHashAggregate(x,
		[]Expr{col(0, vtypes.KindI64)},
		[]AggSpec{{Fn: AggSum, Arg: col(1, vtypes.KindF64)}, {Fn: AggSum, Arg: col(2, vtypes.KindI64)}},
		[]string{"cust", "total", "cnt"})
	rows, err := Collect(final)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("parallel agg %d groups", len(rows))
	}
	// Compare against serial aggregation.
	serial := NewHashAggregate(NewScan(tbl, []int{1, 2}, ScanOpts{}),
		[]Expr{col(0, vtypes.KindI64)},
		[]AggSpec{{Fn: AggSum, Arg: col(1, vtypes.KindF64)}, {Fn: AggCountStar}},
		[]string{"cust", "total", "cnt"})
	wantRows, err := Collect(serial)
	if err != nil {
		t.Fatal(err)
	}
	wantBy := map[int64][2]float64{}
	for _, r := range wantRows {
		wantBy[r[0].I64] = [2]float64{r[1].F64, float64(r[2].I64)}
	}
	for _, r := range rows {
		w := wantBy[r[0].I64]
		if r[1].F64 != w[0] || float64(r[2].I64) != w[1] {
			t.Fatalf("parallel result differs for cust %d: %v vs %v", r[0].I64, r, w)
		}
	}
}

func TestScanPruningWithPredicate(t *testing.T) {
	tbl := buildOrders(t, 1000, 100)
	pruned := 0
	prune := func(_ int, g *storage.GroupMeta) bool {
		if g.Cols[0].MaxI64 < 900 {
			pruned++
			return true
		}
		return false
	}
	sc := NewScan(tbl, []int{0}, ScanOpts{Prune: prune})
	p := mustPred(expr.NewCmpConst(col(0, vtypes.KindI64), expr.CmpGe, vtypes.I64Value(900)))
	rows, err := Collect(NewSelect(sc, p))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 100 || pruned != 9 {
		t.Fatalf("pruned scan: %d rows, %d groups pruned", len(rows), pruned)
	}
	// With PDT deltas, pruning is restricted to delta-free groups: the
	// delete at position 0 pins group 0 (its range holds an entry), but
	// groups 1..8 still skip, and the merge stays positionally correct
	// across the gap.
	master := pdt.New(tbl.Schema(), tbl.Rows())
	_ = master.Delete(0)
	pruned = 0
	sc2 := NewScan(tbl, []int{0}, ScanOpts{Prune: prune, Layers: []*pdt.PDT{master}})
	rows2, err := Collect(sc2)
	if err != nil {
		t.Fatal(err)
	}
	// Group 0 survives pruning (delta overlap) minus its deleted row;
	// group 9 survives by statistics.
	if pruned != 8 || len(rows2) != 199 {
		t.Fatalf("delta-aware pruning: %d groups pruned, %d rows (want 8, 199)", pruned, len(rows2))
	}
	for _, r := range rows2 {
		if v := r[0].I64; v == 0 || (v >= 100 && v < 900) {
			t.Fatalf("row %d must not appear (deleted or pruned range)", v)
		}
	}
}

func TestCaseExpression(t *testing.T) {
	tbl := buildOrders(t, 30, 16)
	sc := NewScan(tbl, []int{2, 3}, ScanOpts{})
	isRail, err := expr.NewLikeMap(col(1, vtypes.KindStr), "RAIL")
	if err != nil {
		t.Fatal(err)
	}
	cse, err := expr.NewCase(isRail, col(0, vtypes.KindF64), f64c(0))
	if err != nil {
		t.Fatal(err)
	}
	agg := NewHashAggregate(NewProject(sc, []Expr{cse}, []string{"railamt"}), nil,
		[]AggSpec{{Fn: AggSum, Arg: col(0, vtypes.KindF64)}}, []string{"s"})
	rows, err := Collect(agg)
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for i := 0; i < 30; i++ {
		if i%3 == 0 {
			want += float64(i%100) + 0.5
		}
	}
	if rows[0][0].F64 != want {
		t.Fatalf("case-sum = %v, want %v", rows[0][0].F64, want)
	}
}

func TestDrainCountsRows(t *testing.T) {
	tbl := buildOrders(t, 123, 50)
	n, err := Drain(NewScan(tbl, []int{0}, ScanOpts{}))
	if err != nil || n != 123 {
		t.Fatalf("Drain = %d, %v", n, err)
	}
}
