// Package core is the X100 vectorized execution engine — the paper's
// primary contribution. Operators form a Volcano-style pull tree, but
// each Next() transports a *vector batch* (~1K rows) instead of a single
// tuple, so the per-call interpretation overhead amortizes over the
// whole vector while intermediates stay CPU-cache resident (unlike
// MonetDB's full-column materialization).
//
// Contract: a batch returned by Next() is valid only until the next
// Next() or Close() on the same operator. Operators that buffer input
// (hash build, sort, aggregate, exchange) copy what they retain.
package core

import (
	"context"

	"vectorwise/internal/vector"
	"vectorwise/internal/vtypes"
)

// Operator is a vectorized physical operator.
type Operator interface {
	// Schema describes the output columns.
	Schema() *vtypes.Schema
	// Open prepares the operator tree (allocates buffers, builds hash
	// tables lazily on first Next).
	Open() error
	// Next returns the next batch, or nil at end of stream.
	Next() (*vector.Batch, error)
	// Close releases resources; the operator cannot be reused.
	Close() error
}

// ContextSetter is implemented by operators that honor a cancellation
// context: once ctx is done, Next returns ctx.Err() at the next batch
// boundary instead of producing more data. Stop-and-go operators (hash
// build, sort, aggregation) also check between input batches while
// materializing, so cancellation interrupts their build phase, not just
// their output phase. The cross-compiler installs the statement context
// on every node it builds; a nil context disables the checks.
type ContextSetter interface {
	SetContext(ctx context.Context)
}

// SetTreeContext installs ctx on op and, via the compiler's per-node
// application, is the hook hand-built trees can use on a single node.
// It is a no-op for operators predating cancellation support.
func SetTreeContext(op Operator, ctx context.Context) {
	if cs, ok := op.(ContextSetter); ok {
		cs.SetContext(ctx)
	}
}

// ctxErr is the per-batch cancellation check: nil context never
// cancels; otherwise it reports ctx.Err() once the context is done.
// Amortized over a ~1K-row vector the check is noise, which is why the
// engine can afford it on every Next.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// Collect drains an operator into boxed rows — the boundary where
// vectors become user-visible results (and the only place the engine
// boxes values).
func Collect(op Operator) ([]vtypes.Row, error) {
	if err := op.Open(); err != nil {
		return nil, err
	}
	defer op.Close()
	var out []vtypes.Row
	for {
		b, err := op.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return out, nil
		}
		for i := 0; i < b.N; i++ {
			out = append(out, b.Row(i))
		}
	}
}

// Drain consumes an operator counting rows without materializing them
// (benchmark helper measuring pure engine throughput).
func Drain(op Operator) (int64, error) {
	if err := op.Open(); err != nil {
		return 0, err
	}
	defer op.Close()
	var n int64
	for {
		b, err := op.Next()
		if err != nil {
			return 0, err
		}
		if b == nil {
			return n, nil
		}
		n += int64(b.N)
	}
}
