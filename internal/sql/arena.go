package sql

// Arena-allocated ASTs: every node and every AST slice a parse produces
// comes out of chunked, reusable blocks owned by an Arena. A warm parse
// (arena reused, capacities grown) performs near-zero heap allocations;
// reset is O(number of block lists), not O(nodes). The Statement header
// itself lives in the arena too.
//
// Ownership: a Statement returned by Parse keeps its arena alive; the
// AST is valid until Statement.Release. Callers that cache ASTs (the
// plan cache) simply never call Release and let the arena ride along
// with the AST.

// nodeBlock is the per-type node-block size; sliceBlock the element
// capacity of each slice block.
const (
	nodeBlock  = 64
	sliceBlock = 256
)

// nodePool hands out *T from chunked blocks with bump allocation.
// reset rewinds without freeing, so block capacity persists across
// parses.
type nodePool[T any] struct {
	blocks [][]T
	bi     int // current block
	off    int // next free slot in blocks[bi]
}

func (p *nodePool[T]) get() *T {
	for {
		if p.bi == len(p.blocks) {
			p.blocks = append(p.blocks, make([]T, nodeBlock))
		}
		blk := p.blocks[p.bi]
		if p.off < len(blk) {
			v := &blk[p.off]
			p.off++
			var zero T
			*v = zero
			return v
		}
		p.bi++
		p.off = 0
	}
}

func (p *nodePool[T]) reset() { p.bi, p.off = 0, 0 }

// slicePool carves exact-length []T out of chunked blocks. Oversize
// requests (> sliceBlock) get a dedicated allocation and are not
// reused.
type slicePool[T any] struct {
	blocks [][]T
	bi     int
	off    int
}

func (p *slicePool[T]) alloc(n int) []T {
	if n == 0 {
		return nil
	}
	if n > sliceBlock {
		return make([]T, n)
	}
	for {
		if p.bi == len(p.blocks) {
			p.blocks = append(p.blocks, make([]T, sliceBlock))
		}
		blk := p.blocks[p.bi]
		if p.off+n <= len(blk) {
			s := blk[p.off : p.off+n : p.off+n]
			p.off += n
			var zero T
			for i := range s {
				s[i] = zero
			}
			return s
		}
		p.bi++
		p.off = 0
	}
}

func (p *slicePool[T]) reset() { p.bi, p.off = 0, 0 }

// scratch is a shared append stack for building lists during recursive
// descent. Usage is strictly LIFO: m := mark(); push...; takeSlice(m).
// Capacity persists across parses.
type scratch[T any] struct{ buf []T }

func (s *scratch[T]) mark() int    { return len(s.buf) }
func (s *scratch[T]) push(v T)     { s.buf = append(s.buf, v) }
func (s *scratch[T]) reset()       { s.buf = s.buf[:0] }
func (s *scratch[T]) at(m int) []T { return s.buf[m:] }

// takeSlice copies everything pushed since mark m into an arena slice
// and pops it from the scratch stack.
func takeSlice[T any](sc *scratch[T], sp *slicePool[T], m int) []T {
	n := len(sc.buf) - m
	if n == 0 {
		sc.buf = sc.buf[:m]
		return nil
	}
	out := sp.alloc(n)
	copy(out, sc.buf[m:])
	sc.buf = sc.buf[:m]
	return out
}

// Arena owns all memory behind one parsed Statement. Zero value is
// ready to use; see NewArena.
type Arena struct {
	stmt Statement

	// toks is the reusable token buffer Parse lexes into; its capacity
	// persists across parses (the AST never references tokens).
	toks []token

	idents   nodePool[Ident]
	nums     nodePool[NumLit]
	strs     nodePool[StrLit]
	dates    nodePool[DateLit]
	paramsP  nodePool[ParamExpr]
	bins     nodePool[BinExpr]
	nots     nodePool[NotExpr]
	betweens nodePool[BetweenExpr]
	ins      nodePool[InExpr]
	likes    nodePool[LikeExpr]
	isnulls  nodePool[IsNullExpr]
	cases    nodePool[CaseExpr]
	aggsP    nodePool[AggCall]
	funcs    nodePool[FuncCall]
	subs     nodePool[SubqueryExpr]
	insubs   nodePool[InSubExpr]
	selects  nodePool[SelectStmt]
	setops   nodePool[SetOpStmt]

	exprSlices  slicePool[Expr]
	itemSlices  slicePool[SelectItem]
	tableSlices slicePool[TableRef]
	joinSlices  slicePool[JoinClause]
	oneqSlices  slicePool[OnEq]
	orderSlices slicePool[OrderItem]
	rowSlices   slicePool[[]Expr]
	colSlices   slicePool[CreateCol]
	strSlices   slicePool[string]

	sExprs  scratch[Expr]
	sItems  scratch[SelectItem]
	sJoins  scratch[JoinClause]
	sOneqs  scratch[OnEq]
	sOrders scratch[OrderItem]
	sRows   scratch[[]Expr]
	sCols   scratch[CreateCol]
	sStrs   scratch[string]
}

// NewArena returns an empty arena for use with WithArena. Reusing one
// arena across sequential parses keeps warm parses allocation-free;
// the AST from parse N is invalidated by parse N+1.
func NewArena() *Arena { return &Arena{} }

func (a *Arena) reset() {
	a.idents.reset()
	a.nums.reset()
	a.strs.reset()
	a.dates.reset()
	a.paramsP.reset()
	a.bins.reset()
	a.nots.reset()
	a.betweens.reset()
	a.ins.reset()
	a.likes.reset()
	a.isnulls.reset()
	a.cases.reset()
	a.aggsP.reset()
	a.funcs.reset()
	a.subs.reset()
	a.insubs.reset()
	a.selects.reset()
	a.setops.reset()

	a.exprSlices.reset()
	a.itemSlices.reset()
	a.tableSlices.reset()
	a.joinSlices.reset()
	a.oneqSlices.reset()
	a.orderSlices.reset()
	a.rowSlices.reset()
	a.colSlices.reset()
	a.strSlices.reset()

	a.sExprs.reset()
	a.sItems.reset()
	a.sJoins.reset()
	a.sOneqs.reset()
	a.sOrders.reset()
	a.sRows.reset()
	a.sCols.reset()
	a.sStrs.reset()
}
