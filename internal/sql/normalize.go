package sql

// Normalize derives the plan-cache key text straight from the lexer's
// token stream in one pass: keywords and identifiers lower-cased,
// whitespace and comments collapsed to single spaces, string literals
// kept verbatim (escapes included), `!=` folded to `<>`, and any
// trailing semicolon dropped. Unlexable input is returned unchanged —
// the parser will produce the real error on the same bytes.

import "strings"

// Normalize canonicalizes one statement's text for cache keying.
func Normalize(input string) string {
	var b strings.Builder
	b.Grow(len(input))
	var buf [96]token
	toks, err := tokenize(input, buf[:])
	if err != nil {
		return input
	}
	first := true
	for k := range toks {
		t := toks[k]
		if t.kind == tokEOF {
			break
		}
		if t.kind == tokSymbol && t.sym == symSemi {
			// Trailing semicolons never reach the key; an embedded
			// one would fail the parse anyway.
			continue
		}
		if !first {
			b.WriteByte(' ')
		}
		first = false
		switch t.kind {
		case tokKeyword:
			b.WriteString(kwNames[t.kw])
		case tokIdent:
			b.WriteString(identTok(input, &t))
		case tokString:
			b.WriteString(input[t.pos:t.end]) // quotes included, escapes verbatim
		case tokParam:
			if t.end == t.pos+1 {
				b.WriteByte('?')
			} else {
				b.WriteByte('$')
				b.WriteString(rawText(input, &t))
			}
		default:
			b.WriteString(rawText(input, &t))
		}
	}
	return b.String()
}
