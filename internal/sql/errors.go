package sql

import "fmt"

// ParseError is the typed error returned by Parse for lexical and
// syntactic failures. Offset is a byte offset into the input; Line and
// Col are 1-based and computed from the input when the error is built
// (the cold path — the lexer itself never tracks lines). Near holds
// the offending token's text, empty at end of input.
type ParseError struct {
	Offset int
	Line   int
	Col    int
	Near   string
	Msg    string
}

// Error implements error.
func (e *ParseError) Error() string {
	if e.Near == "" {
		return fmt.Sprintf("sql: %s at line %d, column %d", e.Msg, e.Line, e.Col)
	}
	return fmt.Sprintf("sql: %s at line %d, column %d near %q", e.Msg, e.Line, e.Col, e.Near)
}

// newParseError locates offset within src (line/col are 1-based).
func newParseError(src string, offset int, near, msg string) *ParseError {
	if offset > len(src) {
		offset = len(src)
	}
	line, col := 1, 1
	for i := 0; i < offset; i++ {
		if src[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return &ParseError{Offset: offset, Line: line, Col: col, Near: near, Msg: msg}
}
