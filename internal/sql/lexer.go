// Package sql implements the SQL frontend: a hand-written lexer and
// recursive-descent parser for the analytical subset the repository's
// workloads need (stand-in for the Ingres SQL layer of §I-B), plus a
// planner that resolves names against the catalog and emits algebra
// plans for the optimizer/cross-compiler stack.
//
// Supported statements:
//
//	CREATE TABLE t (col TYPE [NULL], ...)
//	INSERT INTO t VALUES (...), (...)
//	SELECT exprs FROM t [JOIN u ON a = b]... [WHERE p]
//	    [GROUP BY exprs] [ORDER BY expr [DESC], ...] [LIMIT n]
//	UPDATE t SET col = expr [WHERE p]
//	DELETE FROM t [WHERE p]
//
// Scalar grammar: arithmetic, comparisons, AND/OR/NOT, BETWEEN, IN,
// [NOT] LIKE, IS [NOT] NULL, CASE WHEN ... THEN ... ELSE ... END,
// SUM/COUNT/AVG/MIN/MAX aggregates, YEAR(d), DATE 'YYYY-MM-DD' literals,
// and `?` / `$N` placeholders for prepared statements (see
// ParseWithParams).
package sql

import (
	"fmt"
	"strings"
)

// tokKind classifies tokens.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol  // punctuation and operators
	tokKeyword // recognized keyword (upper-cased)
	tokParam   // placeholder: `?` (text empty) or `$N` (text = digits)
)

type token struct {
	kind tokKind
	text string // keywords upper-cased, idents lower-cased
	pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"ORDER": true, "LIMIT": true, "ASC": true, "DESC": true, "AND": true,
	"OR": true, "NOT": true, "IN": true, "BETWEEN": true, "LIKE": true,
	"IS": true, "NULL": true, "CASE": true, "WHEN": true, "THEN": true,
	"ELSE": true, "END": true, "AS": true, "JOIN": true, "ON": true,
	"INNER": true, "LEFT": true, "OUTER": true, "SEMI": true, "ANTI": true,
	"CREATE": true, "TABLE": true, "INSERT": true, "INTO": true, "VALUES": true,
	"UPDATE": true, "SET": true, "DELETE": true, "DATE": true,
	"BIGINT": true, "DOUBLE": true, "VARCHAR": true, "BOOLEAN": true,
	"TRUE": true, "FALSE": true, "SUM": true, "COUNT": true, "AVG": true,
	"MIN": true, "MAX": true, "YEAR": true, "BEGIN": true, "COMMIT": true,
	"ROLLBACK": true, "HAVING": true, "DISTINCT": true, "INTEGER": true,
	"TEXT": true, "FLOAT": true,
}

// lex tokenizes the input.
func lex(input string) ([]token, error) {
	var out []token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && input[i+1] == '-': // comment
			for i < n && input[i] != '\n' {
				i++
			}
		case isDigit(c) || (c == '.' && i+1 < n && isDigit(input[i+1])):
			start := i
			for i < n && (isDigit(input[i]) || input[i] == '.') {
				i++
			}
			out = append(out, token{kind: tokNumber, text: input[start:i], pos: start})
		case c == '\'':
			i++
			start := i
			var sb strings.Builder
			for i < n {
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' { // escaped quote
						sb.WriteString(input[start:i])
						sb.WriteByte('\'')
						i += 2
						start = i
						continue
					}
					break
				}
				i++
			}
			if i >= n {
				return nil, fmt.Errorf("sql: unterminated string at %d", start)
			}
			sb.WriteString(input[start:i])
			i++
			out = append(out, token{kind: tokString, text: sb.String(), pos: start})
		case c == '?':
			out = append(out, token{kind: tokParam, pos: i})
			i++
		case c == '$' && i+1 < n && isDigit(input[i+1]):
			start := i
			i++
			for i < n && isDigit(input[i]) {
				i++
			}
			out = append(out, token{kind: tokParam, text: input[start+1 : i], pos: start})
		case isIdentStart(c):
			start := i
			for i < n && isIdentChar(input[i]) {
				i++
			}
			word := input[start:i]
			up := strings.ToUpper(word)
			if keywords[up] {
				out = append(out, token{kind: tokKeyword, text: up, pos: start})
			} else {
				out = append(out, token{kind: tokIdent, text: strings.ToLower(word), pos: start})
			}
		default:
			// Multi-char operators first.
			if i+1 < n {
				two := input[i : i+2]
				if two == "<=" || two == ">=" || two == "<>" || two == "!=" {
					if two == "!=" {
						two = "<>"
					}
					out = append(out, token{kind: tokSymbol, text: two, pos: i})
					i += 2
					continue
				}
			}
			switch c {
			case '(', ')', ',', '*', '+', '-', '/', '=', '<', '>', '.', ';':
				out = append(out, token{kind: tokSymbol, text: string(c), pos: i})
				i++
			default:
				return nil, fmt.Errorf("sql: unexpected character %q at %d", c, i)
			}
		}
	}
	out = append(out, token{kind: tokEOF, pos: n})
	return out, nil
}

func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool { return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') }
func isIdentChar(c byte) bool  { return isIdentStart(c) || isDigit(c) }
