// Package sql implements the SQL frontend: a hand-written byte-scan
// lexer and Pratt parser for the analytical subset the repository's
// workloads need (stand-in for the Ingres SQL layer of §I-B), plus a
// planner that resolves names against the catalog and emits algebra
// plans for the optimizer/cross-compiler stack.
//
// Supported statements:
//
//	CREATE TABLE t (col TYPE [NULL], ...)
//	INSERT INTO t VALUES (...), (...)
//	SELECT exprs FROM t [[LEFT [OUTER]|SEMI|ANTI] JOIN u ON a = b]... [WHERE p]
//	    [GROUP BY exprs] [HAVING p] [ORDER BY expr [DESC], ...] [LIMIT n]
//	SELECT ... UNION [ALL] | EXCEPT | INTERSECT SELECT ... [ORDER BY ...] [LIMIT n]
//	UPDATE t SET col = expr [WHERE p]
//	DELETE FROM t [WHERE p]
//
// Scalar grammar: arithmetic, comparisons, AND/OR/NOT, [NOT] BETWEEN,
// [NOT] IN (list | SELECT ...), [NOT] LIKE, IS [NOT] NULL,
// CASE WHEN ... THEN ... ELSE ... END, SUM/COUNT/AVG/MIN/MAX aggregates,
// uncorrelated scalar subqueries (SELECT <agg> ...), YEAR(d),
// DATE 'YYYY-MM-DD' literals, and `?` / `$N` placeholders for prepared
// statements.
//
// The lexer is a batch byte scanner: tokenize classifies bytes through
// [256]-entry tables and lexes the whole statement into a reusable
// token array in one pass, keeping the scan cursor in a register
// across tokens. Keywords resolve through a perfect-hash table (one
// probe, case-insensitive verify, no ToUpper allocation); tokens are
// 16-byte [pos,end) offset pairs into the input — zero string copies
// on the hot path. Identifier lowercasing and string-literal
// unescaping happen lazily, only when an identifier actually contains
// upper-case bytes or a literal actually contains a doubled quote
// (flags recorded during the scan).
package sql

import "strings"

// tokKind classifies tokens.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol  // punctuation and operators (see symID)
	tokKeyword // recognized keyword (see kwID)
	tokParam   // placeholder: `?` (raw empty) or `$N` (raw = digits)
)

// kwID enumerates recognized keywords; kwNone marks a non-keyword.
type kwID uint8

const (
	kwNone kwID = iota
	kwSELECT
	kwFROM
	kwWHERE
	kwGROUP
	kwBY
	kwORDER
	kwLIMIT
	kwASC
	kwDESC
	kwAND
	kwOR
	kwNOT
	kwIN
	kwBETWEEN
	kwLIKE
	kwIS
	kwNULL
	kwCASE
	kwWHEN
	kwTHEN
	kwELSE
	kwEND
	kwAS
	kwJOIN
	kwON
	kwINNER
	kwLEFT
	kwOUTER
	kwSEMI
	kwANTI
	kwCREATE
	kwTABLE
	kwINSERT
	kwINTO
	kwVALUES
	kwUPDATE
	kwSET
	kwDELETE
	kwDATE
	kwBIGINT
	kwDOUBLE
	kwVARCHAR
	kwBOOLEAN
	kwTRUE
	kwFALSE
	kwSUM
	kwCOUNT
	kwAVG
	kwMIN
	kwMAX
	kwYEAR
	kwBEGIN
	kwCOMMIT
	kwROLLBACK
	kwHAVING
	kwDISTINCT
	kwINTEGER
	kwTEXT
	kwFLOAT
	kwUNION
	kwALL
	kwEXCEPT
	kwINTERSECT
	kwCount_ // number of keyword ids; keep last
)

// kwNames maps kwID to the canonical lower-case spelling (index 0 is
// unused). Used for rendering, normalization and error messages.
var kwNames = [kwCount_]string{
	kwSELECT: "select", kwFROM: "from", kwWHERE: "where", kwGROUP: "group",
	kwBY: "by", kwORDER: "order", kwLIMIT: "limit", kwASC: "asc",
	kwDESC: "desc", kwAND: "and", kwOR: "or", kwNOT: "not", kwIN: "in",
	kwBETWEEN: "between", kwLIKE: "like", kwIS: "is", kwNULL: "null",
	kwCASE: "case", kwWHEN: "when", kwTHEN: "then", kwELSE: "else",
	kwEND: "end", kwAS: "as", kwJOIN: "join", kwON: "on", kwINNER: "inner",
	kwLEFT: "left", kwOUTER: "outer", kwSEMI: "semi", kwANTI: "anti",
	kwCREATE: "create", kwTABLE: "table", kwINSERT: "insert", kwINTO: "into",
	kwVALUES: "values", kwUPDATE: "update", kwSET: "set", kwDELETE: "delete",
	kwDATE: "date", kwBIGINT: "bigint", kwDOUBLE: "double",
	kwVARCHAR: "varchar", kwBOOLEAN: "boolean", kwTRUE: "true",
	kwFALSE: "false", kwSUM: "sum", kwCOUNT: "count", kwAVG: "avg",
	kwMIN: "min", kwMAX: "max", kwYEAR: "year", kwBEGIN: "begin",
	kwCOMMIT: "commit", kwROLLBACK: "rollback", kwHAVING: "having",
	kwDISTINCT: "distinct", kwINTEGER: "integer", kwTEXT: "text",
	kwFLOAT: "float", kwUNION: "union", kwALL: "all", kwEXCEPT: "except",
	kwINTERSECT: "intersect",
}

// Keyword lookup packs a word's first eight lower-cased bytes into a
// uint64 (big-endian shift-or). Letters are nonzero, so a shorter word
// can never alias a longer one's packing — for words of at most eight
// bytes the packed value IS the word, and verification is a single
// integer compare instead of a byte loop. A multiplicative perfect
// hash over the packed value picks the only candidate slot; init
// searches for a multiplier under which no two keywords collide. Only
// INTERSECT exceeds eight bytes; kwTail checks its ninth byte, and
// kwLen rejects eight-byte prefixes of it.
const kwTableBits = 9

var (
	kwTable  [1 << kwTableBits]kwID
	kwMult   uint64
	kwPacked [kwCount_]uint64 // first min(8,len) bytes, shift-or packed
	kwLen    [kwCount_]uint8
	kwTail   [kwCount_]byte // 9th byte, or 0 for words of <= 8 bytes
	maxKwLen int
)

// kwPack returns name's first eight bytes (fewer for short names)
// folded to lower case and packed big-endian into a uint64.
func kwPack(name string) uint64 {
	var w uint64
	for j := 0; j < len(name) && j < 8; j++ {
		w = w<<8 | uint64(name[j]|0x20)
	}
	return w
}

func init() {
	for id := kwID(1); id < kwCount_; id++ {
		name := kwNames[id]
		if len(name) > maxKwLen {
			maxKwLen = len(name)
		}
		kwPacked[id] = kwPack(name)
		kwLen[id] = uint8(len(name))
		if len(name) > 8 {
			kwTail[id] = name[8]
		}
	}
	for mult := uint64(0x9E3779B97F4A7C15); ; mult += 2 {
		kwMult = mult
		kwTable = [1 << kwTableBits]kwID{}
		ok := true
		for id := kwID(1); id < kwCount_ && ok; id++ {
			slot := (kwPacked[id] * mult) >> (64 - kwTableBits)
			ok = kwTable[slot] == kwNone
			kwTable[slot] = id
		}
		if ok {
			return
		}
	}
}

// symID enumerates symbols/operators.
type symID uint8

const (
	symNone symID = iota
	symLParen
	symRParen
	symComma
	symStar
	symPlus
	symMinus
	symSlash
	symEq
	symLt
	symGt
	symLe
	symGe
	symNe // `<>` (also `!=`, normalized)
	symDot
	symSemi
	symCount_
)

// symNames maps symID to canonical text (static strings — symbol
// tokens never point into the source).
var symNames = [symCount_]string{
	symLParen: "(", symRParen: ")", symComma: ",", symStar: "*",
	symPlus: "+", symMinus: "-", symSlash: "/", symEq: "=", symLt: "<",
	symGt: ">", symLe: "<=", symGe: ">=", symNe: "<>", symDot: ".",
	symSemi: ";",
}

// Byte-class tables: one load per byte, no branching cascades.
const (
	clsOther byte = iota
	clsSpace
	clsDigit
	clsIdentStart // letter or underscore
	clsSym        // single-char symbol
)

var (
	charClass   [256]byte
	identTab    [256]byte // 0: not ident; 1: ident byte; 1|tokFlagUpper: upper-case letter
	singleSym   [256]symID
	symFollower [256]bool // first byte of a possible 2-char op (< > !)
)

func init() {
	for c := 'a'; c <= 'z'; c++ {
		charClass[c] = clsIdentStart
		identTab[c] = 1
	}
	for c := 'A'; c <= 'Z'; c++ {
		charClass[c] = clsIdentStart
		identTab[c] = 1 | tokFlagUpper
	}
	charClass['_'] = clsIdentStart
	identTab['_'] = 1 | tokFlagNonLetter
	for c := '0'; c <= '9'; c++ {
		charClass[c] = clsDigit
		identTab[c] = 1 | tokFlagNonLetter
	}
	for _, c := range []byte{' ', '\t', '\n', '\r'} {
		charClass[c] = clsSpace
	}
	for id := symID(1); id < symCount_; id++ {
		if len(symNames[id]) == 1 {
			c := symNames[id][0]
			singleSym[c] = id
			charClass[c] = clsSym
		}
	}
	charClass['!'] = clsSym // only as !=
	symFollower['<'] = true
	symFollower['>'] = true
	symFollower['!'] = true
}

// token flag bits. tokFlagUpper and tokFlagNonLetter double as identTab
// bits so the ident scan loop accumulates them with a single OR per
// byte; only tokFlagUpper is stored on tokens.
const (
	tokFlagEsc       uint8 = 1 // string literal contains a doubled quote
	tokFlagUpper     uint8 = 2 // identifier contains upper-case bytes
	tokFlagNonLetter uint8 = 4 // scan-time only: digit or underscore seen (cannot be a keyword)
)

// token is one lexed token, 16 bytes. Raw text is not stored: it is
// recovered from the source through the [pos, end) byte range — see
// rawText. For strings the range covers the quotes (the value is the
// inner text, escapes still doubled); for params it covers `?` or
// `$N` (the value is the digits after $, empty for ?).
type token struct {
	kind tokKind
	kw   kwID
	sym  symID
	flag uint8
	pos  int32
	end  int32
}

// rawText recovers a token's raw text from the source it was lexed
// from: idents and numbers verbatim, strings their inner text (escapes
// still doubled), params the digits after $ (empty for ?), symbols the
// canonical spelling (`!=` reads back as `<>`).
func rawText(src string, t *token) string {
	switch t.kind {
	case tokSymbol:
		return symNames[t.sym]
	case tokString:
		return src[t.pos+1 : t.end-1]
	case tokParam:
		return src[t.pos+1 : t.end]
	case tokEOF:
		return ""
	}
	return src[t.pos:t.end]
}

// tokenize lexes all of src into toks, reusing its capacity and
// growing as needed, and returns the filled slice — always terminated
// by a tokEOF token. Batching the whole statement keeps the scan
// cursor in a register across tokens instead of bouncing it through a
// lexer struct once per token; malformed input yields a *ParseError.
func tokenize(src string, toks []token) ([]token, error) {
	n := len(src)
	// Every token consumes at least one source byte, so n+1 slots
	// (worst case: all one-byte symbols, plus EOF) always suffice —
	// sized up front so the scan loop has no growth check.
	if len(toks) <= n {
		toks = make([]token, n+1)
	}
	i := 0
	nt := 0
	for {
		tok := &toks[nt]
		nt++
		// Fast path: tokens are separated by a single space almost
		// always; runs of whitespace and comments take the loop below,
		// which also yields the break byte's class for dispatch.
		if i < n && src[i] == ' ' {
			i++
		}
		var c, cls byte
		for {
			if i >= n {
				*tok = token{kind: tokEOF, pos: int32(n), end: int32(n)}
				return toks[:nt], nil
			}
			c = src[i]
			cls = charClass[c]
			if cls != clsSpace {
				if c != '-' || i+1 >= n || src[i+1] != '-' {
					break
				}
				for i < n && src[i] != '\n' { // line comment
					i++
				}
				continue
			}
			i++
		}
		start := i
		switch cls {
		case clsIdentStart:
			fl := identTab[c]
			i++
			for i < n {
				b := identTab[src[i]]
				if b == 0 {
					break
				}
				fl |= b
				i++
			}
			// Keywords are pure letters: a digit or underscore anywhere
			// in the word rules out the lookup without hashing. The
			// probe packs the word like kwPack and verifies with integer
			// compares only (see the kwTable comment).
			if wn := i - start; fl&tokFlagNonLetter == 0 && wn <= maxKwLen && wn >= 2 {
				e8 := i
				if wn > 8 {
					e8 = start + 8
				}
				var w uint64
				for j := start; j < e8; j++ {
					w = w<<8 | uint64(src[j]|0x20)
				}
				if id := kwTable[(w*kwMult)>>(64-kwTableBits)]; id != kwNone &&
					kwPacked[id] == w && int(kwLen[id]) == wn &&
					(wn <= 8 || src[start+8]|0x20 == kwTail[id]) {
					*tok = token{kind: tokKeyword, kw: id, pos: int32(start), end: int32(i)}
					continue
				}
			}
			*tok = token{kind: tokIdent, flag: fl & tokFlagUpper, pos: int32(start), end: int32(i)}
		case clsDigit:
			i++
			for i < n && (charClass[src[i]] == clsDigit || src[i] == '.') {
				i++
			}
			*tok = token{kind: tokNumber, pos: int32(start), end: int32(i)}
		case clsSym:
			if c == '.' {
				if i+1 < n && charClass[src[i+1]] == clsDigit { // .5 style literal
					i++
					for i < n && (charClass[src[i]] == clsDigit || src[i] == '.') {
						i++
					}
					*tok = token{kind: tokNumber, pos: int32(start), end: int32(i)}
					continue
				}
				i++
				*tok = token{kind: tokSymbol, sym: symDot, pos: int32(start), end: int32(i)}
				continue
			}
			if symFollower[c] {
				if i+1 < n && src[i+1] == '=' {
					i += 2
					sym := symNe // != normalizes to <>
					switch c {
					case '<':
						sym = symLe
					case '>':
						sym = symGe
					}
					*tok = token{kind: tokSymbol, sym: sym, pos: int32(start), end: int32(i)}
					continue
				}
				if c == '<' && i+1 < n && src[i+1] == '>' {
					i += 2
					*tok = token{kind: tokSymbol, sym: symNe, pos: int32(start), end: int32(i)}
					continue
				}
				if c == '!' {
					return toks[:nt-1], newParseError(src, start, "!", "unexpected character '!'")
				}
			}
			i++
			*tok = token{kind: tokSymbol, sym: singleSym[c], pos: int32(start), end: int32(i)}
		default:
			switch c {
			case '\'':
				i++
				inner := i
				var esc uint8
				for {
					if i >= n {
						return toks[:nt-1], newParseError(src, inner, "", "unterminated string")
					}
					if src[i] != '\'' {
						i++
						continue
					}
					if i+1 < n && src[i+1] == '\'' { // doubled quote
						esc = tokFlagEsc
						i += 2
						continue
					}
					break
				}
				i++
				*tok = token{kind: tokString, flag: esc, pos: int32(start), end: int32(i)}
			case '?':
				i++
				*tok = token{kind: tokParam, pos: int32(start), end: int32(i)}
			case '$':
				if i+1 < n && charClass[src[i+1]] == clsDigit {
					i += 2
					for i < n && charClass[src[i]] == clsDigit {
						i++
					}
					*tok = token{kind: tokParam, pos: int32(start), end: int32(i)}
					continue
				}
				return toks[:nt-1], newParseError(src, start, "$", "unexpected character '$'")
			default:
				return toks[:nt-1], newParseError(src, start, src[start:i+1], "unexpected character "+quoteByte(c))
			}
		}
	}
}

// identText returns the lower-cased identifier text, reusing the raw
// sub-slice when it is already lower-case (the common case).
func identText(raw string) string {
	for i := 0; i < len(raw); i++ {
		if raw[i] >= 'A' && raw[i] <= 'Z' {
			return strings.ToLower(raw)
		}
	}
	return raw
}

// identTok returns an identifier's lower-cased text, reusing the
// source sub-slice when it is already lower-case — the lexer tracked
// case while scanning, so no rescan happens here.
func identTok(src string, t *token) string {
	raw := src[t.pos:t.end]
	if t.flag&tokFlagUpper == 0 {
		return raw
	}
	return strings.ToLower(raw)
}

// stringTok returns a literal's value, undoubling ” only when
// present.
func stringTok(src string, t *token) string {
	raw := src[t.pos+1 : t.end-1]
	if t.flag&tokFlagEsc == 0 {
		return raw
	}
	return strings.ReplaceAll(raw, "''", "'")
}

func quoteByte(c byte) string {
	if c >= 0x20 && c < 0x7f {
		return "'" + string(c) + "'"
	}
	const hex = "0123456789abcdef"
	return "0x" + string(hex[c>>4]) + string(hex[c&0xf])
}
