package sql

// AST node definitions. The parser produces these; the planner lowers
// them onto the algebra with names resolved against the catalog.

// Stmt is any parsed statement.
type Stmt interface{ stmt() }

// SelectStmt is a SELECT query.
type SelectStmt struct {
	Items   []SelectItem
	From    []TableRef
	Joins   []JoinClause
	Where   Expr
	GroupBy []Expr
	Having  Expr
	OrderBy []OrderItem
	Limit   int64 // -1 when absent
}

func (*SelectStmt) stmt() {}

// SetOpStmt combines two queries with UNION [ALL], EXCEPT or
// INTERSECT. Chains fold left-associatively, so Left may itself be a
// SetOpStmt. ORDER BY and LIMIT apply to the combined result.
type SetOpStmt struct {
	Op          string // "union", "union all", "except", "intersect"
	Left, Right Stmt   // *SelectStmt or *SetOpStmt
	OrderBy     []OrderItem
	Limit       int64 // -1 when absent
}

func (*SetOpStmt) stmt() {}

// SelectItem is one projection (Star means `*`).
type SelectItem struct {
	Expr  Expr
	Alias string
	Star  bool
}

// TableRef names a base table with an optional alias.
type TableRef struct {
	Table string
	Alias string
}

// JoinClause is `JOIN t ON l = r [AND l2 = r2 ...]`.
type JoinClause struct {
	Kind  string // "inner", "left", "semi", "anti"
	Table TableRef
	On    []OnEq
}

// OnEq is one equality in an ON clause.
type OnEq struct{ L, R Expr }

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// CreateStmt is CREATE TABLE.
type CreateStmt struct {
	Table string
	Cols  []CreateCol
}

func (*CreateStmt) stmt() {}

// CreateCol is one column definition.
type CreateCol struct {
	Name     string
	Type     string // BIGINT | DOUBLE | VARCHAR | BOOLEAN | DATE
	Nullable bool
}

// InsertStmt is INSERT INTO ... VALUES.
type InsertStmt struct {
	Table string
	Rows  [][]Expr
}

func (*InsertStmt) stmt() {}

// UpdateStmt is UPDATE ... SET ... WHERE. SetCols and SetExprs are
// parallel slices in source order (deterministic errors, arena
// friendly).
type UpdateStmt struct {
	Table    string
	SetCols  []string
	SetExprs []Expr
	Where    Expr
}

func (*UpdateStmt) stmt() {}

// DeleteStmt is DELETE FROM ... WHERE.
type DeleteStmt struct {
	Table string
	Where Expr
}

func (*DeleteStmt) stmt() {}

// TxStmt is BEGIN/COMMIT/ROLLBACK.
type TxStmt struct{ Kind string }

func (*TxStmt) stmt() {}

// Expr is a parsed scalar expression.
type Expr interface{ expr() }

// Ident is a possibly qualified column reference.
type Ident struct{ Qualifier, Name string }

// NumLit is an unparsed numeric literal.
type NumLit struct{ Text string }

// StrLit is a string literal.
type StrLit struct{ Val string }

// DateLit is DATE 'yyyy-mm-dd'.
type DateLit struct{ Val string }

// BoolLit is TRUE/FALSE.
type BoolLit struct{ Val bool }

// NullLit is NULL.
type NullLit struct{}

// ParamExpr is a `?` or `$N` placeholder. Idx is the 1-based parameter
// ordinal: `?` placeholders number left to right, `$N` names an ordinal
// explicitly (both styles may mix; the statement's parameter count is
// the highest ordinal seen).
type ParamExpr struct{ Idx int }

// BinExpr is a binary operation (arithmetic, comparison, AND, OR).
type BinExpr struct {
	Op   string
	L, R Expr
}

// NotExpr is NOT e.
type NotExpr struct{ In Expr }

// BetweenExpr is e BETWEEN lo AND hi.
type BetweenExpr struct{ In, Lo, Hi Expr }

// InExpr is e IN (list).
type InExpr struct {
	In   Expr
	List []Expr
}

// LikeExpr is e [NOT] LIKE pattern.
type LikeExpr struct {
	In      Expr
	Pattern string
	Negate  bool
}

// IsNullExpr is e IS [NOT] NULL.
type IsNullExpr struct {
	In     Expr
	Negate bool
}

// CaseExpr is CASE WHEN c THEN a ELSE b END.
type CaseExpr struct{ Cond, Then, Else Expr }

// AggCall is SUM/COUNT/AVG/MIN/MAX(arg) (arg nil for COUNT(*)).
type AggCall struct {
	Fn  string
	Arg Expr
}

// FuncCall is a scalar function (YEAR).
type FuncCall struct {
	Fn  string
	Arg Expr
}

// SubqueryExpr is an uncorrelated scalar subquery: (SELECT <agg> ...).
// The planner requires exactly one select item containing an aggregate
// and no GROUP BY, which guarantees a single row.
type SubqueryExpr struct{ Sel *SelectStmt }

// InSubExpr is e [NOT] IN (SELECT ...) over a one-column subquery.
type InSubExpr struct {
	In     Expr
	Sel    *SelectStmt
	Negate bool
}

func (*Ident) expr()        {}
func (*NumLit) expr()       {}
func (*ParamExpr) expr()    {}
func (*StrLit) expr()       {}
func (*DateLit) expr()      {}
func (*BoolLit) expr()      {}
func (*NullLit) expr()      {}
func (*BinExpr) expr()      {}
func (*NotExpr) expr()      {}
func (*BetweenExpr) expr()  {}
func (*InExpr) expr()       {}
func (*LikeExpr) expr()     {}
func (*IsNullExpr) expr()   {}
func (*CaseExpr) expr()     {}
func (*AggCall) expr()      {}
func (*FuncCall) expr()     {}
func (*SubqueryExpr) expr() {}
func (*InSubExpr) expr()    {}
