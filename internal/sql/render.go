package sql

// AST → SQL text rendering. The cluster's inter-node wire carries SQL
// (the nodes' /v1/query endpoint), so the distributed planner splits
// statements at the AST level and renders the pieces back to text; the
// fuzz suite uses the same renderer for its round-trip property. The
// renderer emits exactly the dialect the parser accepts — every
// rendered statement must re-parse to an equivalent AST.

import (
	"fmt"
	"strings"
)

// RenderStmt renders a SELECT or set-operation statement.
func RenderStmt(s Stmt) string {
	switch t := s.(type) {
	case *SelectStmt:
		return RenderSelect(t)
	case *SetOpStmt:
		var b strings.Builder
		writeSetOp(&b, t)
		writeOrderLimit(&b, t.OrderBy, t.Limit)
		return b.String()
	default:
		return fmt.Sprintf("/*unrenderable %T*/", s)
	}
}

func writeSetOp(b *strings.Builder, s *SetOpStmt) {
	writeBranch := func(st Stmt) {
		switch t := st.(type) {
		case *SetOpStmt:
			writeSetOp(b, t)
		case *SelectStmt:
			writeSelectCore(b, t)
		}
	}
	writeBranch(s.Left)
	b.WriteString(" ")
	b.WriteString(strings.ToUpper(s.Op))
	b.WriteString(" ")
	writeBranch(s.Right)
}

// RenderSelect renders a SELECT statement as parseable SQL text.
func RenderSelect(s *SelectStmt) string {
	var b strings.Builder
	writeSelectCore(&b, s)
	writeOrderLimit(&b, s.OrderBy, s.Limit)
	return b.String()
}

func writeSelectCore(b *strings.Builder, s *SelectStmt) {
	b.WriteString("SELECT ")
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		if it.Star {
			b.WriteString("*")
			continue
		}
		b.WriteString(RenderExpr(it.Expr))
		if it.Alias != "" {
			b.WriteString(" AS ")
			b.WriteString(it.Alias)
		}
	}
	b.WriteString(" FROM ")
	for i, tr := range s.From {
		if i > 0 {
			b.WriteString(", ")
		}
		writeTableRef(b, tr)
	}
	for _, j := range s.Joins {
		switch j.Kind {
		case "left":
			b.WriteString(" LEFT OUTER JOIN ")
		case "semi":
			b.WriteString(" SEMI JOIN ")
		case "anti":
			b.WriteString(" ANTI JOIN ")
		default:
			b.WriteString(" JOIN ")
		}
		writeTableRef(b, j.Table)
		b.WriteString(" ON ")
		for i, on := range j.On {
			if i > 0 {
				b.WriteString(" AND ")
			}
			b.WriteString(RenderExpr(on.L))
			b.WriteString(" = ")
			b.WriteString(RenderExpr(on.R))
		}
	}
	if s.Where != nil {
		b.WriteString(" WHERE ")
		b.WriteString(RenderExpr(s.Where))
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(RenderExpr(g))
		}
	}
	if s.Having != nil {
		b.WriteString(" HAVING ")
		b.WriteString(RenderExpr(s.Having))
	}
}

func writeOrderLimit(b *strings.Builder, order []OrderItem, limit int64) {
	if len(order) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range order {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(RenderExpr(o.Expr))
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if limit >= 0 {
		fmt.Fprintf(b, " LIMIT %d", limit)
	}
}

func writeTableRef(b *strings.Builder, tr TableRef) {
	b.WriteString(tr.Table)
	if tr.Alias != "" && tr.Alias != tr.Table {
		b.WriteString(" ")
		b.WriteString(tr.Alias)
	}
}

// RenderExpr renders an expression as parseable SQL text. Binary
// operations are fully parenthesized, so rendering never needs the
// parser's precedence table.
func RenderExpr(e Expr) string {
	switch t := e.(type) {
	case *Ident:
		if t.Qualifier != "" {
			return t.Qualifier + "." + t.Name
		}
		return t.Name
	case *NumLit:
		return t.Text
	case *StrLit:
		return quoteStr(t.Val)
	case *DateLit:
		return "DATE '" + t.Val + "'"
	case *BoolLit:
		if t.Val {
			return "TRUE"
		}
		return "FALSE"
	case *NullLit:
		return "NULL"
	case *ParamExpr:
		return fmt.Sprintf("$%d", t.Idx)
	case *BinExpr:
		return "(" + RenderExpr(t.L) + " " + t.Op + " " + RenderExpr(t.R) + ")"
	case *NotExpr:
		return "(NOT " + RenderExpr(t.In) + ")"
	case *BetweenExpr:
		return "(" + RenderExpr(t.In) + " BETWEEN " + RenderExpr(t.Lo) +
			" AND " + RenderExpr(t.Hi) + ")"
	case *InExpr:
		var b strings.Builder
		b.WriteString(RenderExpr(t.In))
		b.WriteString(" IN (")
		for i, m := range t.List {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(RenderExpr(m))
		}
		b.WriteString(")")
		return b.String()
	case *LikeExpr:
		op := " LIKE "
		if t.Negate {
			op = " NOT LIKE "
		}
		return RenderExpr(t.In) + op + quoteStr(t.Pattern)
	case *IsNullExpr:
		if t.Negate {
			return RenderExpr(t.In) + " IS NOT NULL"
		}
		return RenderExpr(t.In) + " IS NULL"
	case *CaseExpr:
		return "CASE WHEN " + RenderExpr(t.Cond) + " THEN " + RenderExpr(t.Then) +
			" ELSE " + RenderExpr(t.Else) + " END"
	case *AggCall:
		if t.Arg == nil {
			return t.Fn + "(*)"
		}
		return t.Fn + "(" + RenderExpr(t.Arg) + ")"
	case *FuncCall:
		return t.Fn + "(" + RenderExpr(t.Arg) + ")"
	case *SubqueryExpr:
		var b strings.Builder
		b.WriteString("(")
		writeSelectCore(&b, t.Sel)
		b.WriteString(")")
		return b.String()
	case *InSubExpr:
		var b strings.Builder
		b.WriteString(RenderExpr(t.In))
		if t.Negate {
			b.WriteString(" NOT IN (")
		} else {
			b.WriteString(" IN (")
		}
		writeSelectCore(&b, t.Sel)
		b.WriteString(")")
		return b.String()
	default:
		return fmt.Sprintf("/*unrenderable %T*/", e)
	}
}

// RenderInsert renders an INSERT statement (the coordinator re-renders
// inserts after routing each VALUES row to its shard).
func RenderInsert(table string, rows [][]Expr) string {
	var b strings.Builder
	b.WriteString("INSERT INTO ")
	b.WriteString(table)
	b.WriteString(" VALUES ")
	for i, row := range rows {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString("(")
		for j, v := range row {
			if j > 0 {
				b.WriteString(", ")
			}
			b.WriteString(RenderExpr(v))
		}
		b.WriteString(")")
	}
	return b.String()
}

func quoteStr(s string) string {
	return "'" + strings.ReplaceAll(s, "'", "''") + "'"
}
