package sql

// A single-pass Pratt parser over the streaming lexer. The parser keeps
// exactly two tokens of lookahead (cur/peek) — enough to distinguish
// `NOT IN`/`NOT LIKE`/`NOT BETWEEN` postfixes — and allocates every AST
// node and slice from the statement's arena, so a warm parse (arena
// reused) touches the heap only for oversized lists.

import (
	"fmt"
	"strconv"
	"sync"
)

// Statement is the handle returned by Parse: the parsed AST plus the
// arena that owns every node in it.
type Statement struct {
	// AST is the parsed statement tree.
	AST Stmt
	// NumParams is the number of `?`/`$N` placeholder slots (the
	// highest ordinal seen).
	NumParams int

	arena  *Arena
	pooled bool
}

// Release returns the statement's arena to the shared pool. The AST
// (and every string borrowed from the input) is invalid afterwards.
// Callers that cache the AST — the plan cache does — simply never call
// Release; the arena then lives exactly as long as the AST.
func (s *Statement) Release() {
	a := s.arena
	if a == nil {
		return
	}
	s.arena = nil
	s.AST = nil
	if s.pooled {
		arenaPool.Put(a)
	}
}

var arenaPool = sync.Pool{New: func() any { return NewArena() }}

// ParseOption configures Parse. It is a value (not a closure) so that
// passing options stays allocation-free on the warm path.
type ParseOption struct{ arena *Arena }

// WithArena parses into a caller-owned arena instead of the shared
// pool. Each parse resets the arena, invalidating the previous AST;
// Release on the resulting Statement is a no-op.
func WithArena(a *Arena) ParseOption {
	return ParseOption{arena: a}
}

// Parse parses one SQL statement. It is the single entry point of the
// front end; errors are *ParseError values carrying byte offset,
// line/column and the offending token.
func Parse(input string, opts ...ParseOption) (*Statement, error) {
	var cfg ParseOption
	for _, o := range opts {
		if o.arena != nil {
			cfg.arena = o.arena
		}
	}
	a, pooled := cfg.arena, false
	if a == nil {
		a = arenaPool.Get().(*Arena)
		pooled = true
	}
	a.reset()
	// Lex the whole statement up front into the arena's reusable token
	// slice: tokenize writes each token in place (no append, no copy)
	// and the parser then advances through a stable array with two
	// pointer moves instead of re-entering the lexer per token.
	toks, lexErr := tokenize(input, a.toks[:cap(a.toks)])
	a.toks = toks
	if lexErr != nil {
		if pooled {
			arenaPool.Put(a)
		}
		return nil, lexErr
	}
	p := parser{a: a, toks: toks, src: input}
	p.peek = &toks[0]
	p.k = 1
	err := p.advance() // prime cur
	var stmt Stmt
	if err == nil {
		stmt, err = p.statement()
	}
	if err == nil && p.curSym(symSemi) {
		err = p.advance()
	}
	if err == nil && p.cur.kind != tokEOF {
		err = p.errf(p.cur, "trailing input")
	}
	if err != nil {
		if pooled {
			arenaPool.Put(a)
		}
		return nil, err
	}
	st := &a.stmt
	*st = Statement{AST: stmt, NumParams: p.params, arena: a, pooled: pooled}
	return st, nil
}

// ParseWithParams is the pre-arena entry point.
//
// Deprecated: use Parse; the Statement carries NumParams.
func ParseWithParams(input string) (Stmt, int, error) {
	st, err := Parse(input)
	if err != nil {
		return nil, 0, err
	}
	// The AST keeps its arena alive; intentionally not released.
	return st.AST, st.NumParams, nil
}

type parser struct {
	src  string // statement text; tokens hold offsets into it
	toks []token
	k    int // index of the token after peek
	cur  *token
	// peek is the second lookahead token.
	peek   *token
	a      *Arena
	params int
}

// advance moves the two-token window. The token array ends with an EOF
// token, so once k runs off the end peek simply stays parked on it.
// The error return is vestigial (lexing happened up front) but keeps
// the grammar productions' `if err := p.advance()` shape.
func (p *parser) advance() error {
	p.cur = p.peek
	if p.k < len(p.toks) {
		p.peek = &p.toks[p.k]
		p.k++
	}
	return nil
}

func (p *parser) curSym(s symID) bool {
	return p.cur.kind == tokSymbol && p.cur.sym == s
}

func nearText(src string, t *token) string {
	switch t.kind {
	case tokEOF:
		return ""
	case tokString:
		return "'" + rawText(src, t) + "'"
	case tokParam:
		if t.end == t.pos+1 {
			return "?"
		}
		return "$" + rawText(src, t)
	default:
		return rawText(src, t)
	}
}

func (p *parser) errf(t *token, format string, args ...any) error {
	return newParseError(p.src, int(t.pos), nearText(p.src, t), fmt.Sprintf(format, args...))
}

// text returns t's raw text (see rawText).
func (p *parser) text(t *token) string { return rawText(p.src, t) }

func (p *parser) expectSym(s symID, ctx string) error {
	if !p.curSym(s) {
		return p.errf(p.cur, "expected %q in %s", symNames[s], ctx)
	}
	return p.advance()
}

func (p *parser) expectKw(k kwID, ctx string) error {
	if p.cur.kw != k {
		return p.errf(p.cur, "expected %s in %s", kwNames[k], ctx)
	}
	return p.advance()
}

// ident consumes an identifier and returns its lower-cased text.
func (p *parser) ident(what string) (string, error) {
	if p.cur.kind != tokIdent {
		return "", p.errf(p.cur, "expected %s", what)
	}
	name := identTok(p.src, p.cur)
	return name, p.advance()
}

func (p *parser) statement() (Stmt, error) {
	switch p.cur.kw {
	case kwSELECT:
		return p.queryStmt()
	case kwCREATE:
		return p.createStmt()
	case kwINSERT:
		return p.insertStmt()
	case kwUPDATE:
		return p.updateStmt()
	case kwDELETE:
		return p.deleteStmt()
	case kwBEGIN, kwCOMMIT, kwROLLBACK:
		kind := kwNames[p.cur.kw]
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &TxStmt{Kind: kind}, nil
	}
	return nil, p.errf(p.cur, "expected statement")
}

// queryStmt parses SELECT ... [UNION [ALL]|EXCEPT|INTERSECT SELECT ...]*
// [ORDER BY ...] [LIMIT n]. Set operations fold left-associatively and
// ORDER BY/LIMIT bind to the whole chain.
func (p *parser) queryStmt() (Stmt, error) {
	core, err := p.selectCore()
	if err != nil {
		return nil, err
	}
	var stmt Stmt = core
	for {
		var op string
		switch p.cur.kw {
		case kwUNION:
			if err := p.advance(); err != nil {
				return nil, err
			}
			op = "union"
			if p.cur.kw == kwALL {
				if err := p.advance(); err != nil {
					return nil, err
				}
				op = "union all"
			}
		case kwEXCEPT:
			if err := p.advance(); err != nil {
				return nil, err
			}
			op = "except"
		case kwINTERSECT:
			if err := p.advance(); err != nil {
				return nil, err
			}
			op = "intersect"
		}
		if op == "" {
			break
		}
		right, err := p.selectCore()
		if err != nil {
			return nil, err
		}
		so := p.a.setops.get()
		so.Op, so.Left, so.Right, so.Limit = op, stmt, right, -1
		stmt = so
	}
	order, limit, err := p.orderLimit()
	if err != nil {
		return nil, err
	}
	switch t := stmt.(type) {
	case *SelectStmt:
		t.OrderBy, t.Limit = order, limit
	case *SetOpStmt:
		t.OrderBy, t.Limit = order, limit
	}
	return stmt, nil
}

// selectCore parses one SELECT block through HAVING — no ORDER BY or
// LIMIT, so set-op chains and subqueries can reuse it.
func (p *parser) selectCore() (*SelectStmt, error) {
	if err := p.expectKw(kwSELECT, "query"); err != nil {
		return nil, err
	}
	sel := p.a.selects.get()
	sel.Limit = -1
	mi := p.a.sItems.mark()
	for {
		var it SelectItem
		if p.curSym(symStar) {
			it.Star = true
			if err := p.advance(); err != nil {
				return nil, err
			}
		} else {
			e, err := p.expr(0)
			if err != nil {
				return nil, err
			}
			it.Expr = e
			if p.cur.kw == kwAS {
				if err := p.advance(); err != nil {
					return nil, err
				}
				alias, err := p.ident("alias after AS")
				if err != nil {
					return nil, err
				}
				it.Alias = alias
			} else if p.cur.kind == tokIdent {
				it.Alias = identTok(p.src, p.cur)
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
		}
		p.a.sItems.push(it)
		if !p.curSym(symComma) {
			break
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	sel.Items = takeSlice(&p.a.sItems, &p.a.itemSlices, mi)
	if err := p.expectKw(kwFROM, "select"); err != nil {
		return nil, err
	}
	tr, err := p.tableRef()
	if err != nil {
		return nil, err
	}
	from := p.a.tableSlices.alloc(1)
	from[0] = tr
	sel.From = from
	mj := p.a.sJoins.mark()
	for {
		kind, ok, err := p.joinKind()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		jt, err := p.tableRef()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw(kwON, "join"); err != nil {
			return nil, err
		}
		mo := p.a.sOneqs.mark()
		for {
			l, err := p.expr(bpAdd)
			if err != nil {
				return nil, err
			}
			if err := p.expectSym(symEq, "join condition"); err != nil {
				return nil, err
			}
			r, err := p.expr(bpAdd)
			if err != nil {
				return nil, err
			}
			p.a.sOneqs.push(OnEq{L: l, R: r})
			if p.cur.kw != kwAND {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		p.a.sJoins.push(JoinClause{
			Kind:  kind,
			Table: jt,
			On:    takeSlice(&p.a.sOneqs, &p.a.oneqSlices, mo),
		})
	}
	sel.Joins = takeSlice(&p.a.sJoins, &p.a.joinSlices, mj)
	if p.cur.kw == kwWHERE {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if sel.Where, err = p.expr(0); err != nil {
			return nil, err
		}
	}
	if p.cur.kw == kwGROUP {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectKw(kwBY, "GROUP BY"); err != nil {
			return nil, err
		}
		mg := p.a.sExprs.mark()
		for {
			e, err := p.expr(0)
			if err != nil {
				return nil, err
			}
			p.a.sExprs.push(e)
			if !p.curSym(symComma) {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		sel.GroupBy = takeSlice(&p.a.sExprs, &p.a.exprSlices, mg)
	}
	if p.cur.kw == kwHAVING {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if sel.Having, err = p.expr(0); err != nil {
			return nil, err
		}
	}
	return sel, nil
}

func (p *parser) tableRef() (TableRef, error) {
	var tr TableRef
	name, err := p.ident("table name")
	if err != nil {
		return tr, err
	}
	tr.Table = name
	// The alias defaults to the table name, so scope resolution treats
	// `t.col` and an unaliased FROM uniformly.
	tr.Alias = name
	if p.cur.kind == tokIdent {
		tr.Alias = identTok(p.src, p.cur)
		if err := p.advance(); err != nil {
			return tr, err
		}
	}
	return tr, nil
}

// joinKind consumes a join introducer, returning its planner kind.
func (p *parser) joinKind() (string, bool, error) {
	switch p.cur.kw {
	case kwJOIN:
		return "inner", true, p.advance()
	case kwINNER:
		if err := p.advance(); err != nil {
			return "", false, err
		}
		return "inner", true, p.expectKw(kwJOIN, "join")
	case kwLEFT:
		if err := p.advance(); err != nil {
			return "", false, err
		}
		kind := "left"
		switch p.cur.kw {
		case kwOUTER:
			if err := p.advance(); err != nil {
				return "", false, err
			}
		case kwSEMI:
			kind = "semi"
			if err := p.advance(); err != nil {
				return "", false, err
			}
		case kwANTI:
			kind = "anti"
			if err := p.advance(); err != nil {
				return "", false, err
			}
		}
		return kind, true, p.expectKw(kwJOIN, "join")
	case kwSEMI:
		if err := p.advance(); err != nil {
			return "", false, err
		}
		return "semi", true, p.expectKw(kwJOIN, "join")
	case kwANTI:
		if err := p.advance(); err != nil {
			return "", false, err
		}
		return "anti", true, p.expectKw(kwJOIN, "join")
	}
	return "", false, nil
}

func (p *parser) orderLimit() ([]OrderItem, int64, error) {
	var items []OrderItem
	limit := int64(-1)
	if p.cur.kw == kwORDER {
		if err := p.advance(); err != nil {
			return nil, 0, err
		}
		if err := p.expectKw(kwBY, "ORDER BY"); err != nil {
			return nil, 0, err
		}
		mo := p.a.sOrders.mark()
		for {
			e, err := p.expr(0)
			if err != nil {
				return nil, 0, err
			}
			desc := false
			switch p.cur.kw {
			case kwDESC:
				desc = true
				if err := p.advance(); err != nil {
					return nil, 0, err
				}
			case kwASC:
				if err := p.advance(); err != nil {
					return nil, 0, err
				}
			}
			p.a.sOrders.push(OrderItem{Expr: e, Desc: desc})
			if !p.curSym(symComma) {
				break
			}
			if err := p.advance(); err != nil {
				return nil, 0, err
			}
		}
		items = takeSlice(&p.a.sOrders, &p.a.orderSlices, mo)
	}
	if p.cur.kw == kwLIMIT {
		if err := p.advance(); err != nil {
			return nil, 0, err
		}
		if p.cur.kind != tokNumber {
			return nil, 0, p.errf(p.cur, "expected integer after LIMIT")
		}
		n, err := strconv.ParseInt(p.text(p.cur), 10, 64)
		if err != nil {
			return nil, 0, p.errf(p.cur, "invalid LIMIT %q", p.text(p.cur))
		}
		limit = n
		if err := p.advance(); err != nil {
			return nil, 0, err
		}
	}
	return items, limit, nil
}

func (p *parser) createStmt() (Stmt, error) {
	if err := p.advance(); err != nil { // CREATE
		return nil, err
	}
	if err := p.expectKw(kwTABLE, "CREATE"); err != nil {
		return nil, err
	}
	table, err := p.ident("table name")
	if err != nil {
		return nil, err
	}
	if err := p.expectSym(symLParen, "CREATE TABLE"); err != nil {
		return nil, err
	}
	mc := p.a.sCols.mark()
	for {
		name, err := p.ident("column name")
		if err != nil {
			return nil, err
		}
		var typ string
		switch p.cur.kw {
		case kwBIGINT, kwINTEGER:
			typ = "BIGINT"
		case kwDOUBLE, kwFLOAT:
			typ = "DOUBLE"
		case kwVARCHAR, kwTEXT:
			typ = "VARCHAR"
		case kwBOOLEAN:
			typ = "BOOLEAN"
		case kwDATE:
			typ = "DATE"
		default:
			return nil, p.errf(p.cur, "expected column type")
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		col := CreateCol{Name: name, Type: typ}
		switch p.cur.kw {
		case kwNULL:
			col.Nullable = true
			if err := p.advance(); err != nil {
				return nil, err
			}
		case kwNOT:
			if err := p.advance(); err != nil {
				return nil, err
			}
			if err := p.expectKw(kwNULL, "column constraint"); err != nil {
				return nil, err
			}
		}
		p.a.sCols.push(col)
		if !p.curSym(symComma) {
			break
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if err := p.expectSym(symRParen, "CREATE TABLE"); err != nil {
		return nil, err
	}
	return &CreateStmt{Table: table, Cols: takeSlice(&p.a.sCols, &p.a.colSlices, mc)}, nil
}

func (p *parser) insertStmt() (Stmt, error) {
	if err := p.advance(); err != nil { // INSERT
		return nil, err
	}
	if err := p.expectKw(kwINTO, "INSERT"); err != nil {
		return nil, err
	}
	table, err := p.ident("table name")
	if err != nil {
		return nil, err
	}
	if err := p.expectKw(kwVALUES, "INSERT"); err != nil {
		return nil, err
	}
	mr := p.a.sRows.mark()
	for {
		if err := p.expectSym(symLParen, "VALUES"); err != nil {
			return nil, err
		}
		me := p.a.sExprs.mark()
		for {
			e, err := p.expr(0)
			if err != nil {
				return nil, err
			}
			p.a.sExprs.push(e)
			if !p.curSym(symComma) {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		if err := p.expectSym(symRParen, "VALUES"); err != nil {
			return nil, err
		}
		p.a.sRows.push(takeSlice(&p.a.sExprs, &p.a.exprSlices, me))
		if !p.curSym(symComma) {
			break
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	return &InsertStmt{Table: table, Rows: takeSlice(&p.a.sRows, &p.a.rowSlices, mr)}, nil
}

func (p *parser) updateStmt() (Stmt, error) {
	if err := p.advance(); err != nil { // UPDATE
		return nil, err
	}
	table, err := p.ident("table name")
	if err != nil {
		return nil, err
	}
	if err := p.expectKw(kwSET, "UPDATE"); err != nil {
		return nil, err
	}
	ms := p.a.sStrs.mark()
	me := p.a.sExprs.mark()
	for {
		col, err := p.ident("column name")
		if err != nil {
			return nil, err
		}
		if err := p.expectSym(symEq, "SET"); err != nil {
			return nil, err
		}
		e, err := p.expr(0)
		if err != nil {
			return nil, err
		}
		p.a.sStrs.push(col)
		p.a.sExprs.push(e)
		if !p.curSym(symComma) {
			break
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	us := &UpdateStmt{
		Table:    table,
		SetExprs: takeSlice(&p.a.sExprs, &p.a.exprSlices, me),
		SetCols:  takeSlice(&p.a.sStrs, &p.a.strSlices, ms),
	}
	if p.cur.kw == kwWHERE {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if us.Where, err = p.expr(0); err != nil {
			return nil, err
		}
	}
	return us, nil
}

func (p *parser) deleteStmt() (Stmt, error) {
	if err := p.advance(); err != nil { // DELETE
		return nil, err
	}
	if err := p.expectKw(kwFROM, "DELETE"); err != nil {
		return nil, err
	}
	table, err := p.ident("table name")
	if err != nil {
		return nil, err
	}
	ds := &DeleteStmt{Table: table}
	if p.cur.kw == kwWHERE {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if ds.Where, err = p.expr(0); err != nil {
			return nil, err
		}
	}
	return ds, nil
}

// Binding powers for the Pratt loop. Predicates (comparisons, BETWEEN,
// IN, LIKE, IS) share one level whose operands bind at bpAdd.
const (
	bpOr    = 1
	bpAnd   = 2
	bpNot   = 3
	bpCmp   = 4
	bpAdd   = 5
	bpMul   = 6
	bpUnary = 7
)

func isCmpSym(s symID) bool {
	switch s {
	case symEq, symLt, symGt, symLe, symGe, symNe:
		return true
	}
	return false
}

// Infix binding-power tables: one probe decides both "is this token an
// infix operator" (nonzero) and how tightly it binds, so the Pratt
// loop's common exit — next token is a comma, keyword, paren... — is a
// single compare. A token has a nonzero kw or sym, never both, so the
// two probes combine with an OR.
var (
	kwInfixBP  [kwCount_]uint8
	symInfixBP [symCount_]uint8
)

func init() {
	kwInfixBP[kwOR] = bpOr
	kwInfixBP[kwAND] = bpAnd
	// Predicate keywords all bind at bpCmp; NOT is its postfix form
	// (NOT IN / NOT LIKE / NOT BETWEEN, resolved via peek).
	for _, k := range []kwID{kwBETWEEN, kwIN, kwLIKE, kwIS, kwNOT} {
		kwInfixBP[k] = bpCmp
	}
	for _, s := range []symID{symEq, symLt, symGt, symLe, symGe, symNe} {
		symInfixBP[s] = bpCmp
	}
	symInfixBP[symPlus] = bpAdd
	symInfixBP[symMinus] = bpAdd
	symInfixBP[symStar] = bpMul
	symInfixBP[symSlash] = bpMul
}

func (p *parser) bin(op string, l, r Expr) Expr {
	b := p.a.bins.get()
	b.Op, b.L, b.R = op, l, r
	return b
}

// expr parses an expression whose operators all bind at least as
// tightly as minBP.
func (p *parser) expr(minBP int) (Expr, error) {
	var lhs Expr
	var err error
	switch {
	case p.cur.kw == kwNOT:
		if err = p.advance(); err != nil {
			return nil, err
		}
		in, err := p.expr(bpNot)
		if err != nil {
			return nil, err
		}
		ne := p.a.nots.get()
		ne.In = in
		lhs = ne
	case p.curSym(symMinus):
		if err = p.advance(); err != nil {
			return nil, err
		}
		in, err := p.expr(bpUnary)
		if err != nil {
			return nil, err
		}
		zero := p.a.nums.get()
		zero.Text = "0"
		lhs = p.bin("-", zero, in)
	default:
		if lhs, err = p.primary(); err != nil {
			return nil, err
		}
	}
	for {
		t := p.cur
		// Gate: non-operators (the common exit) and operators bound
		// out by minBP bail on one combined table probe.
		bp := int(kwInfixBP[t.kw] | symInfixBP[t.sym])
		if bp == 0 || bp < minBP {
			return lhs, nil
		}
		switch {
		case t.kw == kwOR:
			if err := p.advance(); err != nil {
				return nil, err
			}
			r, err := p.expr(bpOr + 1)
			if err != nil {
				return nil, err
			}
			lhs = p.bin("OR", lhs, r)
		case t.kw == kwAND:
			if err := p.advance(); err != nil {
				return nil, err
			}
			r, err := p.expr(bpAnd + 1)
			if err != nil {
				return nil, err
			}
			lhs = p.bin("AND", lhs, r)
		case t.kind == tokSymbol && isCmpSym(t.sym):
			op := symNames[t.sym]
			if err := p.advance(); err != nil {
				return nil, err
			}
			r, err := p.expr(bpCmp + 1)
			if err != nil {
				return nil, err
			}
			lhs = p.bin(op, lhs, r)
		case t.kind == tokSymbol && (t.sym == symPlus || t.sym == symMinus):
			op := symNames[t.sym]
			if err := p.advance(); err != nil {
				return nil, err
			}
			r, err := p.expr(bpAdd + 1)
			if err != nil {
				return nil, err
			}
			lhs = p.bin(op, lhs, r)
		case t.kind == tokSymbol && (t.sym == symStar || t.sym == symSlash):
			op := symNames[t.sym]
			if err := p.advance(); err != nil {
				return nil, err
			}
			r, err := p.expr(bpMul + 1)
			if err != nil {
				return nil, err
			}
			lhs = p.bin(op, lhs, r)
		case t.kw == kwBETWEEN:
			if err := p.advance(); err != nil {
				return nil, err
			}
			if lhs, err = p.betweenTail(lhs, false); err != nil {
				return nil, err
			}
		case t.kw == kwIN:
			if err := p.advance(); err != nil {
				return nil, err
			}
			if lhs, err = p.inTail(lhs, false); err != nil {
				return nil, err
			}
		case t.kw == kwLIKE:
			if err := p.advance(); err != nil {
				return nil, err
			}
			if lhs, err = p.likeTail(lhs, false); err != nil {
				return nil, err
			}
		case t.kw == kwIS:
			if err := p.advance(); err != nil {
				return nil, err
			}
			neg := false
			if p.cur.kw == kwNOT {
				neg = true
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
			if err := p.expectKw(kwNULL, "IS"); err != nil {
				return nil, err
			}
			isn := p.a.isnulls.get()
			isn.In, isn.Negate = lhs, neg
			lhs = isn
		case t.kw == kwNOT:
			// Postfix NOT IN / NOT LIKE / NOT BETWEEN — the second
			// lookahead token decides.
			var tail kwID
			switch p.peek.kw {
			case kwIN, kwLIKE, kwBETWEEN:
				tail = p.peek.kw
			default:
				return lhs, nil
			}
			if err := p.advance(); err != nil { // NOT
				return nil, err
			}
			if err := p.advance(); err != nil { // IN/LIKE/BETWEEN
				return nil, err
			}
			switch tail {
			case kwIN:
				lhs, err = p.inTail(lhs, true)
			case kwLIKE:
				lhs, err = p.likeTail(lhs, true)
			default:
				lhs, err = p.betweenTail(lhs, true)
			}
			if err != nil {
				return nil, err
			}
		default:
			return lhs, nil
		}
	}
}

// betweenTail parses `lo AND hi` after [NOT] BETWEEN.
func (p *parser) betweenTail(lhs Expr, neg bool) (Expr, error) {
	lo, err := p.expr(bpAdd)
	if err != nil {
		return nil, err
	}
	if err := p.expectKw(kwAND, "BETWEEN"); err != nil {
		return nil, err
	}
	hi, err := p.expr(bpAdd)
	if err != nil {
		return nil, err
	}
	be := p.a.betweens.get()
	be.In, be.Lo, be.Hi = lhs, lo, hi
	if !neg {
		return be, nil
	}
	ne := p.a.nots.get()
	ne.In = be
	return ne, nil
}

// inTail parses `(list)` or `(SELECT ...)` after [NOT] IN.
func (p *parser) inTail(lhs Expr, neg bool) (Expr, error) {
	if err := p.expectSym(symLParen, "IN"); err != nil {
		return nil, err
	}
	if p.cur.kw == kwSELECT {
		sel, err := p.selectCore()
		if err != nil {
			return nil, err
		}
		if err := p.expectSym(symRParen, "IN subquery"); err != nil {
			return nil, err
		}
		is := p.a.insubs.get()
		is.In, is.Sel, is.Negate = lhs, sel, neg
		return is, nil
	}
	me := p.a.sExprs.mark()
	for {
		e, err := p.expr(bpAdd)
		if err != nil {
			return nil, err
		}
		p.a.sExprs.push(e)
		if !p.curSym(symComma) {
			break
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if err := p.expectSym(symRParen, "IN list"); err != nil {
		return nil, err
	}
	ie := p.a.ins.get()
	ie.In = lhs
	ie.List = takeSlice(&p.a.sExprs, &p.a.exprSlices, me)
	if !neg {
		return ie, nil
	}
	ne := p.a.nots.get()
	ne.In = ie
	return ne, nil
}

// likeTail parses the pattern literal after [NOT] LIKE.
func (p *parser) likeTail(lhs Expr, neg bool) (Expr, error) {
	if p.cur.kind != tokString {
		return nil, p.errf(p.cur, "expected string pattern after LIKE")
	}
	le := p.a.likes.get()
	le.In, le.Pattern, le.Negate = lhs, stringTok(p.src, p.cur), neg
	return le, p.advance()
}

// Shared immutable literal nodes (the planner only reads them).
var (
	litTrue  = &BoolLit{Val: true}
	litFalse = &BoolLit{Val: false}
	litNull  = &NullLit{}
)

func (p *parser) primary() (Expr, error) {
	t := p.cur
	switch t.kind {
	case tokNumber:
		nl := p.a.nums.get()
		nl.Text = p.text(t)
		return nl, p.advance()
	case tokString:
		sl := p.a.strs.get()
		sl.Val = stringTok(p.src, t)
		return sl, p.advance()
	case tokParam:
		pe := p.a.paramsP.get()
		if t.end == t.pos+1 { // bare `?`
			p.params++
			pe.Idx = p.params
		} else {
			n, err := strconv.Atoi(p.text(t))
			if err != nil || n < 1 {
				return nil, p.errf(t, "invalid parameter ordinal $%s", p.text(t))
			}
			pe.Idx = n
			if n > p.params {
				p.params = n
			}
		}
		return pe, p.advance()
	case tokIdent:
		name := identTok(p.src, t)
		if err := p.advance(); err != nil {
			return nil, err
		}
		id := p.a.idents.get()
		if p.curSym(symDot) {
			if err := p.advance(); err != nil {
				return nil, err
			}
			col, err := p.ident("column after '.'")
			if err != nil {
				return nil, err
			}
			id.Qualifier, id.Name = name, col
		} else {
			id.Name = name
		}
		return id, nil
	case tokSymbol:
		if t.sym == symLParen {
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.cur.kw == kwSELECT {
				sel, err := p.selectCore()
				if err != nil {
					return nil, err
				}
				if err := p.expectSym(symRParen, "subquery"); err != nil {
					return nil, err
				}
				sq := p.a.subs.get()
				sq.Sel = sel
				return sq, nil
			}
			e, err := p.expr(0)
			if err != nil {
				return nil, err
			}
			return e, p.expectSym(symRParen, "expression")
		}
	case tokKeyword:
		switch t.kw {
		case kwTRUE:
			return litTrue, p.advance()
		case kwFALSE:
			return litFalse, p.advance()
		case kwNULL:
			return litNull, p.advance()
		case kwDATE:
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.cur.kind != tokString {
				return nil, p.errf(p.cur, "expected string after DATE")
			}
			dl := p.a.dates.get()
			dl.Val = stringTok(p.src, p.cur)
			return dl, p.advance()
		case kwCASE:
			if err := p.advance(); err != nil {
				return nil, err
			}
			if err := p.expectKw(kwWHEN, "CASE"); err != nil {
				return nil, err
			}
			cond, err := p.expr(0)
			if err != nil {
				return nil, err
			}
			if err := p.expectKw(kwTHEN, "CASE"); err != nil {
				return nil, err
			}
			then, err := p.expr(0)
			if err != nil {
				return nil, err
			}
			if err := p.expectKw(kwELSE, "CASE"); err != nil {
				return nil, err
			}
			els, err := p.expr(0)
			if err != nil {
				return nil, err
			}
			if err := p.expectKw(kwEND, "CASE"); err != nil {
				return nil, err
			}
			ce := p.a.cases.get()
			ce.Cond, ce.Then, ce.Else = cond, then, els
			return ce, nil
		case kwSUM, kwCOUNT, kwAVG, kwMIN, kwMAX:
			var fn string
			switch t.kw {
			case kwSUM:
				fn = "SUM"
			case kwCOUNT:
				fn = "COUNT"
			case kwAVG:
				fn = "AVG"
			case kwMIN:
				fn = "MIN"
			case kwMAX:
				fn = "MAX"
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
			if err := p.expectSym(symLParen, "aggregate"); err != nil {
				return nil, err
			}
			ac := p.a.aggsP.get()
			ac.Fn = fn
			if fn == "COUNT" && p.curSym(symStar) {
				if err := p.advance(); err != nil {
					return nil, err
				}
				return ac, p.expectSym(symRParen, "aggregate")
			}
			arg, err := p.expr(0)
			if err != nil {
				return nil, err
			}
			ac.Arg = arg
			return ac, p.expectSym(symRParen, "aggregate")
		case kwYEAR:
			if err := p.advance(); err != nil {
				return nil, err
			}
			if err := p.expectSym(symLParen, "function"); err != nil {
				return nil, err
			}
			arg, err := p.expr(0)
			if err != nil {
				return nil, err
			}
			fc := p.a.funcs.get()
			fc.Fn, fc.Arg = "YEAR", arg
			return fc, p.expectSym(symRParen, "function")
		}
	}
	return nil, p.errf(t, "unexpected token in expression")
}
