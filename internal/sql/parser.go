package sql

import (
	"fmt"
	"strconv"
)

// Parse parses one SQL statement.
func Parse(input string) (Stmt, error) {
	stmt, _, err := ParseWithParams(input)
	return stmt, err
}

// ParseWithParams parses one SQL statement and reports how many `?` /
// `$N` placeholders it contains (the highest ordinal). Prepared
// statements use the count to validate bound arguments.
func ParseWithParams(input string) (Stmt, int, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, 0, err
	}
	p := &parser{toks: toks}
	stmt, err := p.statement()
	if err != nil {
		return nil, 0, err
	}
	p.accept(tokSymbol, ";")
	if !p.at(tokEOF, "") {
		return nil, 0, fmt.Errorf("sql: trailing input at %q", p.cur().text)
	}
	return stmt, p.params, nil
}

type parser struct {
	toks []token
	pos  int
	// params is the highest placeholder ordinal seen so far: `?`
	// placeholders allocate the next ordinal, `$N` raises it to N.
	params int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(kind tokKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	return token{}, fmt.Errorf("sql: expected %q, found %q", text, p.cur().text)
}

func (p *parser) statement() (Stmt, error) {
	switch {
	case p.at(tokKeyword, "SELECT"):
		return p.selectStmt()
	case p.at(tokKeyword, "CREATE"):
		return p.createStmt()
	case p.at(tokKeyword, "INSERT"):
		return p.insertStmt()
	case p.at(tokKeyword, "UPDATE"):
		return p.updateStmt()
	case p.at(tokKeyword, "DELETE"):
		return p.deleteStmt()
	case p.accept(tokKeyword, "BEGIN"):
		return &TxStmt{Kind: "begin"}, nil
	case p.accept(tokKeyword, "COMMIT"):
		return &TxStmt{Kind: "commit"}, nil
	case p.accept(tokKeyword, "ROLLBACK"):
		return &TxStmt{Kind: "rollback"}, nil
	default:
		return nil, fmt.Errorf("sql: unexpected %q", p.cur().text)
	}
}

func (p *parser) selectStmt() (*SelectStmt, error) {
	if _, err := p.expect(tokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	s := &SelectStmt{Limit: -1}
	for {
		if p.accept(tokSymbol, "*") {
			s.Items = append(s.Items, SelectItem{Star: true})
		} else {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.accept(tokKeyword, "AS") {
				t, err := p.expect(tokIdent, "")
				if err != nil {
					return nil, err
				}
				item.Alias = t.text
			} else if p.at(tokIdent, "") {
				item.Alias = p.next().text
			}
			s.Items = append(s.Items, item)
		}
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	tr, err := p.tableRef()
	if err != nil {
		return nil, err
	}
	s.From = append(s.From, tr)
	for {
		kind := ""
		switch {
		case p.accept(tokKeyword, "JOIN"):
			kind = "inner"
		case p.at(tokKeyword, "INNER"):
			p.next()
			if _, err := p.expect(tokKeyword, "JOIN"); err != nil {
				return nil, err
			}
			kind = "inner"
		case p.at(tokKeyword, "LEFT"):
			p.next()
			p.accept(tokKeyword, "OUTER")
			if p.accept(tokKeyword, "SEMI") {
				kind = "semi"
			} else if p.accept(tokKeyword, "ANTI") {
				kind = "anti"
			} else {
				kind = "left"
			}
			if _, err := p.expect(tokKeyword, "JOIN"); err != nil {
				return nil, err
			}
		case p.at(tokKeyword, "SEMI"):
			p.next()
			if _, err := p.expect(tokKeyword, "JOIN"); err != nil {
				return nil, err
			}
			kind = "semi"
		case p.at(tokKeyword, "ANTI"):
			p.next()
			if _, err := p.expect(tokKeyword, "JOIN"); err != nil {
				return nil, err
			}
			kind = "anti"
		}
		if kind == "" {
			break
		}
		jt, err := p.tableRef()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "ON"); err != nil {
			return nil, err
		}
		var ons []OnEq
		for {
			l, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokSymbol, "="); err != nil {
				return nil, err
			}
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			ons = append(ons, OnEq{L: l, R: r})
			if !p.accept(tokKeyword, "AND") {
				break
			}
		}
		s.Joins = append(s.Joins, JoinClause{Kind: kind, Table: jt, On: ons})
	}
	if p.accept(tokKeyword, "WHERE") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		s.Where = e
	}
	if p.accept(tokKeyword, "GROUP") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, e)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "HAVING") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		s.Having = e
	}
	if p.accept(tokKeyword, "ORDER") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.accept(tokKeyword, "DESC") {
				item.Desc = true
			} else {
				p.accept(tokKeyword, "ASC")
			}
			s.OrderBy = append(s.OrderBy, item)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "LIMIT") {
		t, err := p.expect(tokNumber, "")
		if err != nil {
			return nil, err
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sql: bad LIMIT %q", t.text)
		}
		s.Limit = n
	}
	return s, nil
}

func (p *parser) tableRef() (TableRef, error) {
	t, err := p.expect(tokIdent, "")
	if err != nil {
		return TableRef{}, err
	}
	tr := TableRef{Table: t.text, Alias: t.text}
	if p.accept(tokKeyword, "AS") {
		a, err := p.expect(tokIdent, "")
		if err != nil {
			return TableRef{}, err
		}
		tr.Alias = a.text
	} else if p.at(tokIdent, "") {
		tr.Alias = p.next().text
	}
	return tr, nil
}

func (p *parser) createStmt() (*CreateStmt, error) {
	p.next() // CREATE
	if _, err := p.expect(tokKeyword, "TABLE"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	st := &CreateStmt{Table: name.text}
	for {
		cn, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		ct := p.cur()
		if ct.kind != tokKeyword {
			return nil, fmt.Errorf("sql: expected type for column %q", cn.text)
		}
		p.next()
		typ := ct.text
		switch typ {
		case "INTEGER":
			typ = "BIGINT"
		case "TEXT":
			typ = "VARCHAR"
		case "FLOAT":
			typ = "DOUBLE"
		}
		col := CreateCol{Name: cn.text, Type: typ}
		if p.accept(tokKeyword, "NULL") {
			col.Nullable = true
		} else if p.accept(tokKeyword, "NOT") {
			if _, err := p.expect(tokKeyword, "NULL"); err != nil {
				return nil, err
			}
		}
		st.Cols = append(st.Cols, col)
		if p.accept(tokSymbol, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *parser) insertStmt() (*InsertStmt, error) {
	p.next() // INSERT
	if _, err := p.expect(tokKeyword, "INTO"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "VALUES"); err != nil {
		return nil, err
	}
	st := &InsertStmt{Table: name.text}
	for {
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		st.Rows = append(st.Rows, row)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	return st, nil
}

func (p *parser) updateStmt() (*UpdateStmt, error) {
	p.next() // UPDATE
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "SET"); err != nil {
		return nil, err
	}
	st := &UpdateStmt{Table: name.text, Set: map[string]Expr{}}
	for {
		cn, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, "="); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		st.Set[cn.text] = e
		st.SetOrder = append(st.SetOrder, cn.text)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if p.accept(tokKeyword, "WHERE") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	return st, nil
}

func (p *parser) deleteStmt() (*DeleteStmt, error) {
	p.next() // DELETE
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	st := &DeleteStmt{Table: name.text}
	if p.accept(tokKeyword, "WHERE") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	return st, nil
}

// Expression grammar (precedence climbing):
// expr := orExpr
// orExpr := andExpr (OR andExpr)*
// andExpr := notExpr (AND notExpr)*
// notExpr := [NOT] predExpr
// predExpr := addExpr [cmpOp addExpr | BETWEEN .. AND .. | IN (..) |
//             [NOT] LIKE 'pat' | IS [NOT] NULL]
// addExpr := mulExpr (('+'|'-') mulExpr)*
// mulExpr := unary (('*'|'/') unary)*
// unary := ['-'] primary

func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "OR") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "AND") {
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) notExpr() (Expr, error) {
	if p.accept(tokKeyword, "NOT") {
		in, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &NotExpr{In: in}, nil
	}
	return p.predExpr()
}

func (p *parser) predExpr() (Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	switch {
	case p.at(tokSymbol, "=") || p.at(tokSymbol, "<") || p.at(tokSymbol, ">") ||
		p.at(tokSymbol, "<=") || p.at(tokSymbol, ">=") || p.at(tokSymbol, "<>"):
		op := p.next().text
		r, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		return &BinExpr{Op: op, L: l, R: r}, nil
	case p.accept(tokKeyword, "BETWEEN"):
		lo, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "AND"); err != nil {
			return nil, err
		}
		hi, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{In: l, Lo: lo, Hi: hi}, nil
	case p.accept(tokKeyword, "IN"):
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		var list []Expr
		for {
			e, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return &InExpr{In: l, List: list}, nil
	case p.accept(tokKeyword, "LIKE"):
		t, err := p.expect(tokString, "")
		if err != nil {
			return nil, err
		}
		return &LikeExpr{In: l, Pattern: t.text}, nil
	case p.accept(tokKeyword, "IS"):
		neg := p.accept(tokKeyword, "NOT")
		if _, err := p.expect(tokKeyword, "NULL"); err != nil {
			return nil, err
		}
		return &IsNullExpr{In: l, Negate: neg}, nil
	}
	// NOT LIKE postfix.
	if p.at(tokKeyword, "NOT") && p.pos+1 < len(p.toks) && p.toks[p.pos+1].text == "LIKE" {
		p.next()
		p.next()
		t, err := p.expect(tokString, "")
		if err != nil {
			return nil, err
		}
		return &LikeExpr{In: l, Pattern: t.text, Negate: true}, nil
	}
	return l, nil
}

func (p *parser) addExpr() (Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for p.at(tokSymbol, "+") || p.at(tokSymbol, "-") {
		op := p.next().text
		r, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) mulExpr() (Expr, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for p.at(tokSymbol, "*") || p.at(tokSymbol, "/") {
		op := p.next().text
		r, err := p.unary()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) unary() (Expr, error) {
	if p.accept(tokSymbol, "-") {
		in, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &BinExpr{Op: "-", L: &NumLit{Text: "0"}, R: in}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.next()
		return &NumLit{Text: t.text}, nil
	case t.kind == tokParam:
		p.next()
		if t.text == "" { // `?`: next ordinal
			p.params++
			return &ParamExpr{Idx: p.params}, nil
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("sql: bad parameter $%s", t.text)
		}
		if n > p.params {
			p.params = n
		}
		return &ParamExpr{Idx: n}, nil
	case t.kind == tokString:
		p.next()
		return &StrLit{Val: t.text}, nil
	case p.accept(tokKeyword, "TRUE"):
		return &BoolLit{Val: true}, nil
	case p.accept(tokKeyword, "FALSE"):
		return &BoolLit{Val: false}, nil
	case p.accept(tokKeyword, "NULL"):
		return &NullLit{}, nil
	case p.accept(tokKeyword, "DATE"):
		s, err := p.expect(tokString, "")
		if err != nil {
			return nil, err
		}
		return &DateLit{Val: s.text}, nil
	case p.accept(tokKeyword, "CASE"):
		if _, err := p.expect(tokKeyword, "WHEN"); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "THEN"); err != nil {
			return nil, err
		}
		then, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "ELSE"); err != nil {
			return nil, err
		}
		el, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "END"); err != nil {
			return nil, err
		}
		return &CaseExpr{Cond: cond, Then: then, Else: el}, nil
	case t.kind == tokKeyword && (t.text == "SUM" || t.text == "COUNT" || t.text == "AVG" || t.text == "MIN" || t.text == "MAX"):
		p.next()
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		call := &AggCall{Fn: t.text}
		if t.text == "COUNT" && p.accept(tokSymbol, "*") {
			// COUNT(*)
		} else {
			arg, err := p.expr()
			if err != nil {
				return nil, err
			}
			call.Arg = arg
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return call, nil
	case p.accept(tokKeyword, "YEAR"):
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		arg, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return &FuncCall{Fn: "YEAR", Arg: arg}, nil
	case p.accept(tokSymbol, "("):
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokIdent:
		p.next()
		if p.accept(tokSymbol, ".") {
			c, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			return &Ident{Qualifier: t.text, Name: c.text}, nil
		}
		return &Ident{Name: t.text}, nil
	default:
		return nil, fmt.Errorf("sql: unexpected token %q in expression", t.text)
	}
}
