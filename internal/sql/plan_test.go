package sql

import (
	"strings"
	"testing"

	"vectorwise/internal/algebra"
	"vectorwise/internal/catalog"
	"vectorwise/internal/storage"
	"vectorwise/internal/tupleengine"
	"vectorwise/internal/vtypes"
)

// planFixture builds a catalog with two joinable tables:
// t(a BIGINT, b DOUBLE, c VARCHAR) and u(k BIGINT, v DOUBLE).
func planFixture(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	tb := storage.NewBuilder("t", vtypes.NewSchema(
		vtypes.Column{Name: "a", Kind: vtypes.KindI64},
		vtypes.Column{Name: "b", Kind: vtypes.KindF64},
		vtypes.Column{Name: "c", Kind: vtypes.KindStr},
	), 0)
	for i := 0; i < 10; i++ {
		tag := "odd"
		if i%2 == 0 {
			tag = "even"
		}
		if err := tb.AppendRow(vtypes.Row{
			vtypes.I64Value(int64(i)), vtypes.F64Value(float64(i) * 1.5), vtypes.StrValue(tag),
		}); err != nil {
			t.Fatal(err)
		}
	}
	tt, err := tb.Finish()
	if err != nil {
		t.Fatal(err)
	}
	cat.Put(tt)

	ub := storage.NewBuilder("u", vtypes.NewSchema(
		vtypes.Column{Name: "k", Kind: vtypes.KindI64},
		vtypes.Column{Name: "v", Kind: vtypes.KindF64},
	), 0)
	for i := 0; i < 5; i++ { // only keys 0..4 join
		if err := ub.AppendRow(vtypes.Row{
			vtypes.I64Value(int64(i)), vtypes.F64Value(float64(10 * i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	ut, err := ub.Finish()
	if err != nil {
		t.Fatal(err)
	}
	cat.Put(ut)
	return cat
}

// planAndRun plans a SELECT and executes it on the tuple engine.
func planAndRun(t *testing.T, cat *catalog.Catalog, q string) []vtypes.Row {
	t.Helper()
	stmt, err := Parse(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	p := &Planner{Cat: cat}
	plan, err := p.PlanQuery(stmt.AST)
	if err != nil {
		t.Fatalf("plan %q: %v", q, err)
	}
	rows, err := tupleengine.Run(plan, cat)
	if err != nil {
		t.Fatalf("run %q: %v", q, err)
	}
	return rows
}

// Arithmetic over aggregates in the select list (the Q14 shape): the
// ratio of two sums, with the repeated aggregate computed once.
func TestPlanExpressionOverAggregates(t *testing.T) {
	cat := planFixture(t)
	rows := planAndRun(t, cat, `SELECT 100.0 * SUM(b) / (SUM(b) + COUNT(*)) AS pct FROM t`)
	if len(rows) != 1 {
		t.Fatalf("rows: %v", rows)
	}
	// sum(b) = 1.5 * 45 = 67.5; 100*67.5/(67.5+10) = 87.0967...
	got := rows[0][0].F64
	want := 100.0 * 67.5 / 77.5
	if got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("pct = %v, want %v", got, want)
	}
}

// A CASE inside an aggregate with an int literal arm beside a float arm
// widens instead of erroring.
func TestPlanCaseArmWidening(t *testing.T) {
	cat := planFixture(t)
	rows := planAndRun(t, cat,
		`SELECT SUM(CASE WHEN c = 'even' THEN b ELSE 0 END) s FROM t`)
	if len(rows) != 1 {
		t.Fatalf("rows: %v", rows)
	}
	// even rows: 0,2,4,6,8 → b sums to 1.5*(0+2+4+6+8) = 30
	if got := rows[0][0].F64; got != 30 {
		t.Fatalf("s = %v, want 30", got)
	}
}

// HAVING referencing bare aggregates and select aliases.
func TestPlanHavingAggregatesAndAliases(t *testing.T) {
	cat := planFixture(t)
	rows := planAndRun(t, cat,
		`SELECT c, SUM(b) total FROM t GROUP BY c HAVING SUM(b) > 29 AND total < 35 ORDER BY c`)
	if len(rows) != 1 || rows[0][0].Str != "even" {
		t.Fatalf("rows: %v", rows)
	}
	// HAVING may use an aggregate the select list drops.
	rows = planAndRun(t, cat,
		`SELECT c FROM t GROUP BY c HAVING COUNT(*) = 5 AND MIN(a) = 1`)
	if len(rows) != 1 || rows[0][0].Str != "odd" {
		t.Fatalf("rows: %v", rows)
	}
}

// WHERE conjuncts that reference a table joined later must not be pushed
// into the first table's scan.
func TestPlanJoinPredicatePlacement(t *testing.T) {
	cat := planFixture(t)
	rows := planAndRun(t, cat,
		`SELECT a, v FROM t JOIN u ON a = k WHERE v >= 20 AND b > 0`)
	if len(rows) != 3 { // k in {2,3,4}: v=20,30,40 and b>0
		t.Fatalf("rows: %v", rows)
	}
	// Right-side-only predicate on a semi join pushes into the build side
	// (its columns are out of scope above the join).
	rows = planAndRun(t, cat, `SELECT a FROM t SEMI JOIN u ON a = k WHERE v >= 30`)
	if len(rows) != 2 { // keys 3,4
		t.Fatalf("semi rows: %v", rows)
	}
}

// HAVING without any aggregation is rejected, not silently dropped.
func TestPlanHavingWithoutAggregates(t *testing.T) {
	cat := planFixture(t)
	stmt, err := Parse(`SELECT a FROM t HAVING a > 1`)
	if err != nil {
		t.Fatal(err)
	}
	p := &Planner{Cat: cat}
	if _, err := p.PlanQuery(stmt.AST); err == nil ||
		!strings.Contains(err.Error(), "HAVING") {
		t.Fatalf("want HAVING error, got %v", err)
	}
}

// A self-referential select alias must error, not recurse forever.
func TestPlanAliasSelfReference(t *testing.T) {
	cat := planFixture(t)
	for _, q := range []string{
		`SELECT SUM(b) s, a + 1 AS a FROM t GROUP BY c`,
		`SELECT n + 1 AS n FROM t GROUP BY c HAVING n > 0`,
	} {
		stmt, err := Parse(q)
		if err != nil {
			t.Fatal(err)
		}
		p := &Planner{Cat: cat}
		if _, err := p.PlanQuery(stmt.AST); err == nil {
			t.Fatalf("plan %q: want error, got nil", q)
		}
	}
}

// BETWEEN bounds and IN members may be aggregates or group columns in
// HAVING (decomposed into comparisons), not just literals.
func TestPlanNonLiteralBoundsOverAggregates(t *testing.T) {
	cat := planFixture(t)
	rows := planAndRun(t, cat,
		`SELECT c FROM t GROUP BY c HAVING COUNT(*) BETWEEN 1 AND MAX(a)`)
	if len(rows) != 2 { // both groups: count 5 ≤ max(a) (8 and 9)
		t.Fatalf("between rows: %v", rows)
	}
	rows = planAndRun(t, cat,
		`SELECT c, MIN(a) m FROM t GROUP BY c HAVING MIN(a) IN (1, COUNT(*) - 5)`)
	if len(rows) != 2 { // even: min 0 = 5-5; odd: min 1
		t.Fatalf("in rows: %v", rows)
	}
}

// A select item that is neither grouped nor aggregated errors clearly.
func TestPlanUngroupedColumnRejected(t *testing.T) {
	cat := planFixture(t)
	stmt, err := Parse(`SELECT a, SUM(b) FROM t GROUP BY c`)
	if err != nil {
		t.Fatal(err)
	}
	p := &Planner{Cat: cat}
	if _, err := p.PlanQuery(stmt.AST); err == nil {
		t.Fatal("ungrouped select item must error")
	}
}

// The data-skipping rewrite: sargable single-table conjuncts move into
// ScanNode.Filters (parameter slots included), residual predicates stay
// as a Select, and the tuple engine still sees every predicate.
func TestPlanScanFilterExtraction(t *testing.T) {
	cat := planFixture(t)
	stmt, err := Parse(`SELECT a FROM t WHERE a BETWEEN ? AND ? AND b < 100.0 AND a + 1 > 2`)
	if err != nil {
		t.Fatal(err)
	}
	if stmt.NumParams != 2 {
		t.Fatalf("params: %d", stmt.NumParams)
	}
	p := &Planner{Cat: cat}
	plan, err := p.PlanQuery(stmt.AST)
	if err != nil {
		t.Fatal(err)
	}
	var scan *algebra.ScanNode
	var sel *algebra.SelectNode
	var walk func(algebra.Node)
	walk = func(nd algebra.Node) {
		switch v := nd.(type) {
		case *algebra.ScanNode:
			scan = v
		case *algebra.SelectNode:
			sel = v
		}
		for _, c := range nd.Children() {
			walk(c)
		}
	}
	walk(plan)
	if scan == nil || len(scan.Filters) != 3 {
		t.Fatalf("want 3 scan filters (two param bounds + b<100), got %+v", scan)
	}
	if sel == nil || !strings.Contains(sel.Pred.String(), "+") {
		t.Fatalf("arithmetic conjunct must stay residual, got %v", sel)
	}
	// The template binds and runs: filters' Params become literals.
	bound, err := algebra.BindParams(plan, []vtypes.Value{vtypes.I64Value(2), vtypes.I64Value(6)})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := tupleengine.Run(bound, cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 { // a in 2..6
		t.Fatalf("bound filtered rows: %d, want 5", len(rows))
	}
	// EXPLAIN renders the filters on the scan line, unbound slots as $N.
	text := algebra.Explain(plan)
	if !strings.Contains(text, "filters=[") || !strings.Contains(text, "$1") {
		t.Fatalf("EXPLAIN missing filters:\n%s", text)
	}
}
