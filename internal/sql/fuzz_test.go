package sql

import (
	"strings"
	"testing"
)

// FuzzParse throws arbitrary statement text at the lexer and parser.
// The invariants are: never panic, never hang; on success the reported
// placeholder count covers every ParamExpr in the tree (so a prepared
// statement can always validate its arguments); and query statements
// round-trip through the renderer (parse → render → parse yields a
// tree that renders identically).
func FuzzParse(f *testing.F) {
	seeds := []string{
		`SELECT k, v FROM t WHERE k = ?`,
		`SELECT v FROM t WHERE k = $1 AND v > $2`,
		`SELECT v FROM t WHERE k BETWEEN ? AND ? ORDER BY v DESC LIMIT 5`,
		`SELECT v FROM t WHERE k IN (?, ?, 3) AND s LIKE 'a%'`,
		`SELECT k, SUM(v) s FROM t GROUP BY k HAVING SUM(v) > ?`,
		`SELECT a.k FROM a JOIN b ON a.k = b.k WHERE b.v = $1`,
		`INSERT INTO t VALUES (?, ?), ($3, $4)`,
		`UPDATE t SET v = v + ? WHERE k = ?`,
		`DELETE FROM t WHERE d = DATE '2011-04-05' OR k = ?`,
		`SELECT CASE WHEN v > ? THEN 1 ELSE 0 END FROM t`,
		`SELECT v FROM t WHERE v IS NOT NULL AND k = $12`,
		`SELECT -? * (2 + $1) FROM t`,
		`CREATE TABLE t (k BIGINT, v DOUBLE NULL)`,
		`SELECT '?' , ' $1 ' FROM t WHERE s = '??'`,
		`select v from t where k = ?; `,
		`$`, `?`, `$0`, `$99999999999999999999`,
		// The grammar tranche: outer joins, set operations, ORDER BY
		// expressions, scalar and IN subqueries.
		`SELECT a, v FROM t LEFT OUTER JOIN u ON t.k = u.k WHERE v IS NULL`,
		`SELECT k FROM t UNION ALL SELECT k FROM u ORDER BY k LIMIT 9`,
		`SELECT k FROM t UNION SELECT k FROM u EXCEPT SELECT k FROM v`,
		`SELECT k FROM t INTERSECT SELECT k FROM u`,
		`SELECT k FROM t WHERE v > (SELECT AVG(v) FROM t)`,
		`SELECT k FROM t WHERE k IN (SELECT k FROM u WHERE v > ?)`,
		`SELECT k FROM t WHERE k NOT IN (SELECT k FROM u)`,
		`SELECT k, SUM(v) FROM t GROUP BY k ORDER BY SUM(v) DESC, k + 1`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		st, err := Parse(input)
		if err != nil {
			return
		}
		stmt, n := st.AST, st.NumParams
		if n < 0 {
			t.Fatalf("negative param count %d for %q", n, input)
		}
		maxIdx := 0
		walkParams(stmt, func(p *ParamExpr) {
			if p.Idx > maxIdx {
				maxIdx = p.Idx
			}
			if p.Idx < 1 {
				t.Fatalf("non-positive param ordinal %d in %q", p.Idx, input)
			}
		})
		if maxIdx > n {
			t.Fatalf("param count %d misses ordinal %d in %q", n, maxIdx, input)
		}
		// Placeholders only appear where the grammar allows them; the
		// count must be stable across a reparse of the same text.
		st2, err2 := Parse(input)
		if err2 != nil || st2.NumParams != n {
			t.Fatalf("reparse of %q: n=%d→%d err=%v", input, n, st2.NumParams, err2)
		}
		st2.Release()
		// Round-trip property: the renderer emits exactly the dialect
		// the parser accepts, and rendering is a fixed point.
		switch stmt.(type) {
		case *SelectStmt, *SetOpStmt:
			text := RenderStmt(stmt)
			rt, err := Parse(text)
			if err != nil {
				t.Fatalf("render of %q is unparseable: %q: %v", input, text, err)
			}
			if again := RenderStmt(rt.AST); again != text {
				t.Fatalf("round-trip diverged for %q:\n%q\n%q", input, text, again)
			}
			rt.Release()
		}
		_ = strings.TrimSpace(input)
	})
}

// walkParams visits every ParamExpr in a statement.
func walkParams(s Stmt, fn func(*ParamExpr)) {
	var walkStmt func(Stmt)
	var walkExpr func(Expr)
	walkExpr = func(e Expr) {
		switch t := e.(type) {
		case nil:
		case *ParamExpr:
			fn(t)
		case *BinExpr:
			walkExpr(t.L)
			walkExpr(t.R)
		case *NotExpr:
			walkExpr(t.In)
		case *BetweenExpr:
			walkExpr(t.In)
			walkExpr(t.Lo)
			walkExpr(t.Hi)
		case *InExpr:
			walkExpr(t.In)
			for _, m := range t.List {
				walkExpr(m)
			}
		case *LikeExpr:
			walkExpr(t.In)
		case *IsNullExpr:
			walkExpr(t.In)
		case *CaseExpr:
			walkExpr(t.Cond)
			walkExpr(t.Then)
			walkExpr(t.Else)
		case *AggCall:
			walkExpr(t.Arg)
		case *FuncCall:
			walkExpr(t.Arg)
		case *SubqueryExpr:
			walkStmt(t.Sel)
		case *InSubExpr:
			walkExpr(t.In)
			walkStmt(t.Sel)
		}
	}
	walkStmt = func(s Stmt) {
		switch t := s.(type) {
		case *SelectStmt:
			for _, it := range t.Items {
				walkExpr(it.Expr)
			}
			for _, j := range t.Joins {
				for _, on := range j.On {
					walkExpr(on.L)
					walkExpr(on.R)
				}
			}
			walkExpr(t.Where)
			for _, g := range t.GroupBy {
				walkExpr(g)
			}
			walkExpr(t.Having)
			for _, o := range t.OrderBy {
				walkExpr(o.Expr)
			}
		case *SetOpStmt:
			walkStmt(t.Left)
			walkStmt(t.Right)
			for _, o := range t.OrderBy {
				walkExpr(o.Expr)
			}
		case *InsertStmt:
			for _, row := range t.Rows {
				for _, e := range row {
					walkExpr(e)
				}
			}
		case *UpdateStmt:
			for _, e := range t.SetExprs {
				walkExpr(e)
			}
			walkExpr(t.Where)
		case *DeleteStmt:
			walkExpr(t.Where)
		}
	}
	walkStmt(s)
}

// Warm parses must stay allocation-free apart from the Pratt loop's
// fixed overhead: the arena is reused, token text borrows the source.
func TestParseWarmAllocs(t *testing.T) {
	queries := []string{
		`SELECT l_returnflag, l_linestatus, SUM(l_quantity) AS sum_qty,
		   SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge,
		   AVG(l_discount) AS avg_disc, COUNT(*) AS count_order
		 FROM lineitem WHERE l_shipdate <= DATE '1998-09-02'
		 GROUP BY l_returnflag, l_linestatus
		 ORDER BY l_returnflag, l_linestatus`,
		`SELECT k FROM t WHERE k IN (SELECT k FROM u) UNION ALL SELECT k FROM v ORDER BY k`,
		`UPDATE t SET v = v + 1, s = 'x' WHERE k BETWEEN ? AND ?`,
	}
	a := NewArena()
	for _, q := range queries {
		// Warm the arena so block allocation has already happened.
		if _, err := Parse(q, WithArena(a)); err != nil {
			t.Fatal(err)
		}
		n := testing.AllocsPerRun(50, func() {
			if _, err := Parse(q, WithArena(a)); err != nil {
				t.Fatal(err)
			}
		})
		if n > 8 {
			t.Errorf("warm parse of %.40q allocates %.0f times, want ≤ 8", q, n)
		}
	}
}
