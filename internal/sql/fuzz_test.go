package sql

import (
	"strings"
	"testing"
)

// FuzzParse throws arbitrary statement text at the lexer and parser.
// The invariants are: never panic, never hang, and on success the
// reported placeholder count covers every ParamExpr in the tree (so a
// prepared statement can always validate its arguments).
func FuzzParse(f *testing.F) {
	seeds := []string{
		`SELECT k, v FROM t WHERE k = ?`,
		`SELECT v FROM t WHERE k = $1 AND v > $2`,
		`SELECT v FROM t WHERE k BETWEEN ? AND ? ORDER BY v DESC LIMIT 5`,
		`SELECT v FROM t WHERE k IN (?, ?, 3) AND s LIKE 'a%'`,
		`SELECT k, SUM(v) s FROM t GROUP BY k HAVING SUM(v) > ?`,
		`SELECT a.k FROM a JOIN b ON a.k = b.k WHERE b.v = $1`,
		`INSERT INTO t VALUES (?, ?), ($3, $4)`,
		`UPDATE t SET v = v + ? WHERE k = ?`,
		`DELETE FROM t WHERE d = DATE '2011-04-05' OR k = ?`,
		`SELECT CASE WHEN v > ? THEN 1 ELSE 0 END FROM t`,
		`SELECT v FROM t WHERE v IS NOT NULL AND k = $12`,
		`SELECT -? * (2 + $1) FROM t`,
		`CREATE TABLE t (k BIGINT, v DOUBLE NULL)`,
		`SELECT '?' , ' $1 ' FROM t WHERE s = '??'`,
		`select v from t where k = ?; `,
		`$`, `?`, `$0`, `$99999999999999999999`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		stmt, n, err := ParseWithParams(input)
		if err != nil {
			return
		}
		if n < 0 {
			t.Fatalf("negative param count %d for %q", n, input)
		}
		maxIdx := 0
		walkParams(stmt, func(p *ParamExpr) {
			if p.Idx > maxIdx {
				maxIdx = p.Idx
			}
			if p.Idx < 1 {
				t.Fatalf("non-positive param ordinal %d in %q", p.Idx, input)
			}
		})
		if maxIdx > n {
			t.Fatalf("param count %d misses ordinal %d in %q", n, maxIdx, input)
		}
		// Placeholders only appear where the grammar allows them; the
		// count must be stable across a reparse of the same text.
		if _, n2, err2 := ParseWithParams(input); err2 != nil || n2 != n {
			t.Fatalf("reparse of %q: n=%d→%d err=%v", input, n, n2, err2)
		}
		_ = strings.TrimSpace(input)
	})
}

// walkParams visits every ParamExpr in a statement.
func walkParams(s Stmt, fn func(*ParamExpr)) {
	var walkExpr func(Expr)
	walkExpr = func(e Expr) {
		switch t := e.(type) {
		case nil:
		case *ParamExpr:
			fn(t)
		case *BinExpr:
			walkExpr(t.L)
			walkExpr(t.R)
		case *NotExpr:
			walkExpr(t.In)
		case *BetweenExpr:
			walkExpr(t.In)
			walkExpr(t.Lo)
			walkExpr(t.Hi)
		case *InExpr:
			walkExpr(t.In)
			for _, m := range t.List {
				walkExpr(m)
			}
		case *LikeExpr:
			walkExpr(t.In)
		case *IsNullExpr:
			walkExpr(t.In)
		case *CaseExpr:
			walkExpr(t.Cond)
			walkExpr(t.Then)
			walkExpr(t.Else)
		case *AggCall:
			walkExpr(t.Arg)
		case *FuncCall:
			walkExpr(t.Arg)
		}
	}
	switch t := s.(type) {
	case *SelectStmt:
		for _, it := range t.Items {
			walkExpr(it.Expr)
		}
		for _, j := range t.Joins {
			for _, on := range j.On {
				walkExpr(on.L)
				walkExpr(on.R)
			}
		}
		walkExpr(t.Where)
		for _, g := range t.GroupBy {
			walkExpr(g)
		}
		walkExpr(t.Having)
		for _, o := range t.OrderBy {
			walkExpr(o.Expr)
		}
	case *InsertStmt:
		for _, row := range t.Rows {
			for _, e := range row {
				walkExpr(e)
			}
		}
	case *UpdateStmt:
		for _, e := range t.Set {
			walkExpr(e)
		}
		walkExpr(t.Where)
	case *DeleteStmt:
		walkExpr(t.Where)
	}
}
