package sql

import (
	"strings"
	"testing"
)

func TestLexBasics(t *testing.T) {
	toks, err := lex(`SELECT a.b, 'it''s', 1.5 FROM t -- comment
WHERE x <> 2`)
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tok := range toks {
		texts = append(texts, tok.text)
	}
	joined := strings.Join(texts, " ")
	if !strings.Contains(joined, "it's") {
		t.Fatalf("escaped quote lost: %v", texts)
	}
	if !strings.Contains(joined, "<>") {
		t.Fatalf("operator lost: %v", texts)
	}
	if strings.Contains(joined, "comment") {
		t.Fatal("comment not stripped")
	}
	// != normalizes to <>.
	toks2, _ := lex("x != 1")
	if toks2[1].text != "<>" {
		t.Fatal("!= must normalize to <>")
	}
	if _, err := lex("bad ` char"); err == nil {
		t.Fatal("bad character must error")
	}
	if _, err := lex("'unterminated"); err == nil {
		t.Fatal("unterminated string must error")
	}
}

func TestParseSelectShapes(t *testing.T) {
	stmt, err := Parse(`SELECT a, SUM(b) total FROM t
		JOIN u ON t.k = u.k
		LEFT SEMI JOIN v ON t.k = v.k
		WHERE a > 1 AND b BETWEEN 2 AND 3 OR c IN (1,2) AND d LIKE 'x%'
		GROUP BY a HAVING total > 0 ORDER BY total DESC, a LIMIT 7;`)
	if err != nil {
		t.Fatal(err)
	}
	s := stmt.(*SelectStmt)
	if len(s.Items) != 2 || s.Items[1].Alias != "total" {
		t.Fatalf("items: %+v", s.Items)
	}
	if len(s.Joins) != 2 || s.Joins[0].Kind != "inner" || s.Joins[1].Kind != "semi" {
		t.Fatalf("joins: %+v", s.Joins)
	}
	if s.Where == nil || s.Having == nil {
		t.Fatal("where/having missing")
	}
	if len(s.OrderBy) != 2 || !s.OrderBy[0].Desc || s.OrderBy[1].Desc {
		t.Fatalf("orderby: %+v", s.OrderBy)
	}
	if s.Limit != 7 {
		t.Fatalf("limit: %d", s.Limit)
	}
}

func TestParseDML(t *testing.T) {
	st, err := Parse(`CREATE TABLE t (a BIGINT, b VARCHAR NULL, c DATE, d DOUBLE, e BOOLEAN)`)
	if err != nil {
		t.Fatal(err)
	}
	cs := st.(*CreateStmt)
	if len(cs.Cols) != 5 || !cs.Cols[1].Nullable || cs.Cols[0].Nullable {
		t.Fatalf("create: %+v", cs.Cols)
	}

	st, err = Parse(`INSERT INTO t VALUES (1, 'x', DATE '2011-01-01', 1.5, TRUE), (2, NULL, DATE '2011-01-02', -2.5, FALSE)`)
	if err != nil {
		t.Fatal(err)
	}
	is := st.(*InsertStmt)
	if len(is.Rows) != 2 || len(is.Rows[0]) != 5 {
		t.Fatalf("insert: %+v", is)
	}

	st, err = Parse(`UPDATE t SET b = 'y', d = d + 1.0 WHERE a = 1`)
	if err != nil {
		t.Fatal(err)
	}
	us := st.(*UpdateStmt)
	if len(us.SetOrder) != 2 || us.Where == nil {
		t.Fatalf("update: %+v", us)
	}

	st, err = Parse(`DELETE FROM t WHERE a IS NOT NULL`)
	if err != nil {
		t.Fatal(err)
	}
	ds := st.(*DeleteStmt)
	if ds.Where == nil {
		t.Fatal("delete where missing")
	}
	if _, ok := ds.Where.(*IsNullExpr); !ok {
		t.Fatalf("IS NOT NULL: %T", ds.Where)
	}
}

func TestParseExpressionPrecedence(t *testing.T) {
	st, err := Parse(`SELECT a + b * c FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	e := st.(*SelectStmt).Items[0].Expr.(*BinExpr)
	if e.Op != "+" {
		t.Fatalf("precedence wrong: %+v", e)
	}
	if inner, ok := e.R.(*BinExpr); !ok || inner.Op != "*" {
		t.Fatalf("mul must bind tighter: %+v", e.R)
	}
	// AND binds tighter than OR.
	st, _ = Parse(`SELECT a FROM t WHERE x = 1 OR y = 2 AND z = 3`)
	w := st.(*SelectStmt).Where.(*BinExpr)
	if w.Op != "OR" {
		t.Fatalf("OR must be top: %+v", w)
	}
	// CASE expression.
	st, err = Parse(`SELECT CASE WHEN a > 1 THEN b ELSE 0 END FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.(*SelectStmt).Items[0].Expr.(*CaseExpr); !ok {
		t.Fatal("case not parsed")
	}
	// Unary minus.
	st, _ = Parse(`SELECT -a FROM t`)
	if _, ok := st.(*SelectStmt).Items[0].Expr.(*BinExpr); !ok {
		t.Fatal("unary minus not parsed")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`SELECT`,
		`SELECT a`,
		`SELECT a FROM`,
		`SELECT a FROM t WHERE`,
		`SELECT a FROM t GROUP`,
		`SELECT a FROM t LIMIT x`,
		`CREATE TABLE`,
		`CREATE TABLE t (a)`,
		`INSERT INTO t`,
		`INSERT INTO t VALUES (1`,
		`UPDATE t`,
		`DELETE t`,
		`SELECT a FROM t trailing garbage ( (`,
		`SELECT a FROM t JOIN u`,
		`SELECT CASE WHEN a THEN b END FROM t`,
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) should fail", q)
		}
	}
}

func TestParseTxStatements(t *testing.T) {
	for _, kw := range []string{"BEGIN", "COMMIT", "ROLLBACK"} {
		st, err := Parse(kw)
		if err != nil {
			t.Fatal(err)
		}
		if st.(*TxStmt).Kind != strings.ToLower(kw) {
			t.Fatalf("tx kind wrong for %s", kw)
		}
	}
}
