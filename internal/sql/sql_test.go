package sql

import (
	"errors"
	"strings"
	"testing"
)

// lexAll tokenizes src, returning each token's canonical text (the
// shape Normalize emits).
func lexAll(t *testing.T, src string) []string {
	t.Helper()
	toks, err := tokenize(src, nil)
	if err != nil {
		t.Fatalf("lex %q: %v", src, err)
	}
	var out []string
	for k := range toks {
		tok := &toks[k]
		switch tok.kind {
		case tokEOF:
			return out
		case tokKeyword:
			out = append(out, kwNames[tok.kw])
		case tokIdent:
			out = append(out, identTok(src, tok))
		case tokString:
			out = append(out, stringTok(src, tok))
		default:
			out = append(out, rawText(src, tok))
		}
	}
	return out
}

func TestLexBasics(t *testing.T) {
	texts := lexAll(t, `SELECT a.b, 'it''s', 1.5 FROM t -- comment
WHERE x <> 2`)
	joined := strings.Join(texts, " ")
	if !strings.Contains(joined, "it's") {
		t.Fatalf("escaped quote lost: %v", texts)
	}
	if !strings.Contains(joined, "<>") {
		t.Fatalf("operator lost: %v", texts)
	}
	if strings.Contains(joined, "comment") {
		t.Fatal("comment not stripped")
	}
	// != normalizes to <>.
	if toks := lexAll(t, "x != 1"); toks[1] != "<>" {
		t.Fatalf("!= must normalize to <>, got %v", toks)
	}
	// Idents lower-case lazily; keywords match case-insensitively.
	if toks := lexAll(t, "SeLeCt FooBar"); toks[0] != "select" || toks[1] != "foobar" {
		t.Fatalf("case folding: %v", toks)
	}
	if _, err := tokenize("bad ` char", nil); err == nil {
		t.Fatal("bad character must error")
	}
	if _, err := tokenize("'unterminated", nil); err == nil {
		t.Fatal("unterminated string must error")
	}
}

// Token text must alias the source string, not copy it: tokens carry
// [pos, end) offsets, and the lazy transforms (ident lower-casing,
// string undoubling) must be identities on already-canonical input.
func TestLexZeroCopy(t *testing.T) {
	src := `SELECT abc FROM tbl WHERE s = 'plain'`
	toks, err := tokenize(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k := range toks {
		tok := &toks[k]
		if tok.kind == tokEOF {
			break
		}
		if tok.pos < 0 || tok.end < tok.pos || int(tok.end) > len(src) {
			t.Fatalf("token range [%d,%d) out of bounds", tok.pos, tok.end)
		}
		raw := rawText(src, tok)
		if tok.kind != tokSymbol && !strings.Contains(src[tok.pos:tok.end], raw) {
			t.Fatalf("token %q not within its range %q", raw, src[tok.pos:tok.end])
		}
	}
	// An all-lowercase ident and an escape-free string pass through
	// without allocation-forcing transforms.
	if identText("abc") != "abc" {
		t.Fatal("lowercase ident must be identity")
	}
	toks, err = tokenize("'plain' ident", nil)
	if err != nil || toks[0].kind != tokString {
		t.Fatalf("want string token, got %v (%v)", toks[0].kind, err)
	}
	if v := stringTok("'plain' ident", &toks[0]); v != "plain" {
		t.Fatalf("escape-free string must be identity, got %q", v)
	}
	if toks[1].kind != tokIdent || toks[1].flag&tokFlagUpper != 0 {
		t.Fatalf("lowercase ident must not carry the upper flag: %+v", toks[1])
	}
}

func TestParseSelectShapes(t *testing.T) {
	st, err := Parse(`SELECT a, SUM(b) total FROM t
		JOIN u ON t.k = u.k
		LEFT SEMI JOIN v ON t.k = v.k
		WHERE a > 1 AND b BETWEEN 2 AND 3 OR c IN (1,2) AND d LIKE 'x%'
		GROUP BY a HAVING total > 0 ORDER BY total DESC, a LIMIT 7;`)
	if err != nil {
		t.Fatal(err)
	}
	s := st.AST.(*SelectStmt)
	if len(s.Items) != 2 || s.Items[1].Alias != "total" {
		t.Fatalf("items: %+v", s.Items)
	}
	if len(s.Joins) != 2 || s.Joins[0].Kind != "inner" || s.Joins[1].Kind != "semi" {
		t.Fatalf("joins: %+v", s.Joins)
	}
	if s.Where == nil || s.Having == nil {
		t.Fatal("where/having missing")
	}
	if len(s.OrderBy) != 2 || !s.OrderBy[0].Desc || s.OrderBy[1].Desc {
		t.Fatalf("orderby: %+v", s.OrderBy)
	}
	if s.Limit != 7 {
		t.Fatalf("limit: %d", s.Limit)
	}
}

func TestParseOuterJoinAndOrderExpr(t *testing.T) {
	st, err := Parse(`SELECT a, v FROM t LEFT OUTER JOIN u ON t.k = u.k ORDER BY a + v DESC, SUM(v)`)
	if err != nil {
		t.Fatal(err)
	}
	s := st.AST.(*SelectStmt)
	if len(s.Joins) != 1 || s.Joins[0].Kind != "left" {
		t.Fatalf("joins: %+v", s.Joins)
	}
	if _, ok := s.OrderBy[0].Expr.(*BinExpr); !ok {
		t.Fatalf("ORDER BY expression: %T", s.OrderBy[0].Expr)
	}
	// LEFT JOIN without OUTER means the same thing.
	st, err = Parse(`SELECT a FROM t LEFT JOIN u ON t.k = u.k`)
	if err != nil {
		t.Fatal(err)
	}
	if st.AST.(*SelectStmt).Joins[0].Kind != "left" {
		t.Fatal("LEFT JOIN must parse as outer")
	}
}

func TestParseSetOps(t *testing.T) {
	st, err := Parse(`SELECT a FROM t UNION ALL SELECT a FROM u UNION SELECT a FROM v ORDER BY a LIMIT 3`)
	if err != nil {
		t.Fatal(err)
	}
	top := st.AST.(*SetOpStmt)
	if top.Op != "union" {
		t.Fatalf("top op: %q", top.Op)
	}
	inner := top.Left.(*SetOpStmt)
	if inner.Op != "union all" {
		t.Fatalf("set ops must fold left-associatively: %q", inner.Op)
	}
	if len(top.OrderBy) != 1 || top.Limit != 3 {
		t.Fatalf("order/limit must bind to the whole chain: %+v", top)
	}
	if sel := inner.Left.(*SelectStmt); sel.Limit != -1 || len(sel.OrderBy) != 0 {
		t.Fatalf("branch must not own order/limit: %+v", sel)
	}
	for _, q := range []string{
		`SELECT a FROM t EXCEPT SELECT a FROM u`,
		`SELECT a FROM t INTERSECT SELECT a FROM u`,
	} {
		st, err := Parse(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if _, ok := st.AST.(*SetOpStmt); !ok {
			t.Fatalf("%s: %T", q, st.AST)
		}
	}
}

func TestParseSubqueries(t *testing.T) {
	st, err := Parse(`SELECT a FROM t WHERE b < (SELECT AVG(v) FROM u) AND a IN (SELECT k FROM u WHERE v > 1)`)
	if err != nil {
		t.Fatal(err)
	}
	w := st.AST.(*SelectStmt).Where.(*BinExpr) // AND
	cmp := w.L.(*BinExpr)
	if _, ok := cmp.R.(*SubqueryExpr); !ok {
		t.Fatalf("scalar subquery: %T", cmp.R)
	}
	in, ok := w.R.(*InSubExpr)
	if !ok || in.Negate {
		t.Fatalf("IN subquery: %T", w.R)
	}
	st, err = Parse(`SELECT a FROM t WHERE a NOT IN (SELECT k FROM u)`)
	if err != nil {
		t.Fatal(err)
	}
	if in := st.AST.(*SelectStmt).Where.(*InSubExpr); !in.Negate {
		t.Fatal("NOT IN subquery must negate")
	}
}

func TestParseDML(t *testing.T) {
	st, err := Parse(`CREATE TABLE t (a BIGINT, b VARCHAR NULL, c DATE, d DOUBLE, e BOOLEAN)`)
	if err != nil {
		t.Fatal(err)
	}
	cs := st.AST.(*CreateStmt)
	if len(cs.Cols) != 5 || !cs.Cols[1].Nullable || cs.Cols[0].Nullable {
		t.Fatalf("create: %+v", cs.Cols)
	}

	st, err = Parse(`INSERT INTO t VALUES (1, 'x', DATE '2011-01-01', 1.5, TRUE), (2, NULL, DATE '2011-01-02', -2.5, FALSE)`)
	if err != nil {
		t.Fatal(err)
	}
	is := st.AST.(*InsertStmt)
	if len(is.Rows) != 2 || len(is.Rows[0]) != 5 {
		t.Fatalf("insert: %+v", is)
	}

	st, err = Parse(`UPDATE t SET b = 'y', d = d + 1.0 WHERE a = 1`)
	if err != nil {
		t.Fatal(err)
	}
	us := st.AST.(*UpdateStmt)
	if len(us.SetCols) != 2 || len(us.SetExprs) != 2 || us.Where == nil {
		t.Fatalf("update: %+v", us)
	}
	if us.SetCols[0] != "b" || us.SetCols[1] != "d" {
		t.Fatalf("set order lost: %+v", us.SetCols)
	}

	st, err = Parse(`DELETE FROM t WHERE a IS NOT NULL`)
	if err != nil {
		t.Fatal(err)
	}
	ds := st.AST.(*DeleteStmt)
	if ds.Where == nil {
		t.Fatal("delete where missing")
	}
	if _, ok := ds.Where.(*IsNullExpr); !ok {
		t.Fatalf("IS NOT NULL: %T", ds.Where)
	}
}

func TestParseExpressionPrecedence(t *testing.T) {
	st, err := Parse(`SELECT a + b * c FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	e := st.AST.(*SelectStmt).Items[0].Expr.(*BinExpr)
	if e.Op != "+" {
		t.Fatalf("precedence wrong: %+v", e)
	}
	if inner, ok := e.R.(*BinExpr); !ok || inner.Op != "*" {
		t.Fatalf("mul must bind tighter: %+v", e.R)
	}
	// AND binds tighter than OR.
	st, _ = Parse(`SELECT a FROM t WHERE x = 1 OR y = 2 AND z = 3`)
	w := st.AST.(*SelectStmt).Where.(*BinExpr)
	if w.Op != "OR" {
		t.Fatalf("OR must be top: %+v", w)
	}
	// CASE expression.
	st, err = Parse(`SELECT CASE WHEN a > 1 THEN b ELSE 0 END FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.AST.(*SelectStmt).Items[0].Expr.(*CaseExpr); !ok {
		t.Fatal("case not parsed")
	}
	// Unary minus.
	st, _ = Parse(`SELECT -a FROM t`)
	if _, ok := st.AST.(*SelectStmt).Items[0].Expr.(*BinExpr); !ok {
		t.Fatal("unary minus not parsed")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`SELECT`,
		`SELECT a`,
		`SELECT a FROM`,
		`SELECT a FROM t WHERE`,
		`SELECT a FROM t GROUP`,
		`SELECT a FROM t LIMIT x`,
		`CREATE TABLE`,
		`CREATE TABLE t (a)`,
		`INSERT INTO t`,
		`INSERT INTO t VALUES (1`,
		`UPDATE t`,
		`DELETE t`,
		`SELECT a FROM t trailing garbage ( (`,
		`SELECT a FROM t JOIN u`,
		`SELECT CASE WHEN a THEN b END FROM t`,
		`SELECT a FROM t UNION`,
		`SELECT a FROM t UNION ALL`,
		`SELECT a FROM t WHERE a IN (SELECT)`,
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) should fail", q)
		}
	}
}

// Every parse failure is a *ParseError locating the offending token.
func TestParseErrorPositions(t *testing.T) {
	_, err := Parse("SELECT a\nFROM t WHERE ***")
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("want *ParseError, got %T (%v)", err, err)
	}
	if pe.Line != 2 {
		t.Fatalf("line = %d, want 2", pe.Line)
	}
	if pe.Col != 14 {
		t.Fatalf("col = %d, want 14", pe.Col)
	}
	if pe.Offset != strings.Index("SELECT a\nFROM t WHERE ***", "*") {
		t.Fatalf("offset = %d", pe.Offset)
	}
	if !strings.Contains(pe.Error(), "line 2") {
		t.Fatalf("message must carry the position: %q", pe.Error())
	}
	// Lex errors position too.
	_, err = Parse("SELECT 'oops")
	if !errors.As(err, &pe) || pe.Line != 1 {
		t.Fatalf("lex error position: %v", err)
	}
}

func TestParseTxStatements(t *testing.T) {
	for _, kw := range []string{"BEGIN", "COMMIT", "ROLLBACK"} {
		st, err := Parse(kw)
		if err != nil {
			t.Fatal(err)
		}
		if st.AST.(*TxStmt).Kind != strings.ToLower(kw) {
			t.Fatalf("tx kind wrong for %s", kw)
		}
	}
}

// A caller-owned arena is reusable across parses; the pool path hands
// out an independent statement per call.
func TestParseArenaReuse(t *testing.T) {
	a := NewArena()
	var last string
	for i := 0; i < 3; i++ {
		st, err := Parse(`SELECT a, b FROM t WHERE a > 1 ORDER BY b`, WithArena(a))
		if err != nil {
			t.Fatal(err)
		}
		got := RenderStmt(st.AST)
		if last != "" && got != last {
			t.Fatalf("warm parse diverged: %q vs %q", got, last)
		}
		last = got
	}
	st1, err := Parse(`SELECT a FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	st1.Release()
	st2, err := Parse(`SELECT b FROM u`)
	if err != nil {
		t.Fatal(err)
	}
	if RenderStmt(st2.AST) != "SELECT b FROM u" {
		t.Fatalf("pooled reparse: %q", RenderStmt(st2.AST))
	}
	st2.Release()
}

func TestNormalizeTokenStream(t *testing.T) {
	cases := [][2]string{
		{"SELECT  *\nFROM t; -- done", "select * from t"},
		{"select A , B from T where S = 'It''s'", "select a , b from t where s = 'It''s'"},
		{"SELECT a FROM t WHERE x != 1", "select a from t where x <> 1"},
		{"broken '", "broken '"}, // unlexable text passes through
	}
	for _, c := range cases {
		if got := Normalize(c[0]); got != c[1] {
			t.Errorf("Normalize(%q) = %q, want %q", c[0], got, c[1])
		}
	}
}
