package sql

import "testing"

func TestParsePlaceholders(t *testing.T) {
	stmt, n, err := ParseWithParams(`SELECT v FROM t WHERE k = ? AND v > ?`)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("params = %d, want 2", n)
	}
	s := stmt.(*SelectStmt)
	cmp := s.Where.(*BinExpr) // AND
	if p, ok := cmp.L.(*BinExpr).R.(*ParamExpr); !ok || p.Idx != 1 {
		t.Fatalf("first ? not ordinal 1: %+v", cmp.L)
	}
	if p, ok := cmp.R.(*BinExpr).R.(*ParamExpr); !ok || p.Idx != 2 {
		t.Fatalf("second ? not ordinal 2: %+v", cmp.R)
	}
}

func TestParseDollarPlaceholders(t *testing.T) {
	// $N names ordinals explicitly and may repeat and mix with ?.
	_, n, err := ParseWithParams(`SELECT v FROM t WHERE k = $2 OR k = $1 OR k = $2`)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("params = %d, want 2", n)
	}
	// A ? after $3 takes the next ordinal (4).
	stmt, n, err := ParseWithParams(`SELECT v FROM t WHERE k = $3 AND v = ?`)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("params = %d, want 4", n)
	}
	_ = stmt
	if _, _, err := ParseWithParams(`SELECT v FROM t WHERE k = $0`); err == nil {
		t.Fatal("$0 must be rejected")
	}
}

func TestParsePlaceholderPositions(t *testing.T) {
	good := []string{
		`INSERT INTO t VALUES (?, ?), (?, ?)`,
		`UPDATE t SET v = ? WHERE k = ?`,
		`DELETE FROM t WHERE k = ?`,
		`SELECT v FROM t WHERE k BETWEEN ? AND ?`,
		`SELECT v FROM t WHERE k IN (?, ?, 3)`,
		`SELECT v + ? FROM t`,
		`SELECT v FROM t WHERE k = ? ORDER BY v LIMIT 3`,
	}
	for _, q := range good {
		if _, _, err := ParseWithParams(q); err != nil {
			t.Errorf("%s: %v", q, err)
		}
	}
	// `$` not followed by a digit is not a placeholder.
	if _, err := Parse(`SELECT $ FROM t`); err == nil {
		t.Fatal("lone $ must be rejected")
	}
}
