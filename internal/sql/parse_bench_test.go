package sql

import (
	"testing"

	"vectorwise/internal/tpch"
)

// BenchmarkParse measures front-end throughput over the TPC-H SQL
// corpus with a reused arena — the warm-parse configuration the plan
// cache's normalizer and the server's hot path run in. b.SetBytes makes
// `go test -bench` report MB/s directly: one corpus op covers every
// suite query, and the per-query sub-benchmarks expose allocs/op for a
// single warm parse (the TestParseWarmAllocs guard pins the ceiling).
func BenchmarkParse(b *testing.B) {
	suite := tpch.SQLSuite()
	b.Run("corpus", func(b *testing.B) {
		a := NewArena()
		var total int64
		for _, q := range suite {
			if _, err := Parse(q.SQL, WithArena(a)); err != nil {
				b.Fatal(err)
			}
			total += int64(len(q.SQL))
		}
		b.SetBytes(total)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, q := range suite {
				if _, err := Parse(q.SQL, WithArena(a)); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	for _, q := range suite {
		q := q
		b.Run(q.Name, func(b *testing.B) {
			a := NewArena()
			if _, err := Parse(q.SQL, WithArena(a)); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(q.SQL)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Parse(q.SQL, WithArena(a)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
