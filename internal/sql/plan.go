package sql

import (
	"fmt"
	"strconv"
	"strings"

	"vectorwise/internal/algebra"
	"vectorwise/internal/catalog"
	"vectorwise/internal/vtypes"
)

// Planner lowers parsed statements onto the algebra, resolving names
// against the catalog, pushing single-table predicates below joins and
// picking hash-join build sides by estimated cardinality — the slice of
// the Ingres optimizer's work this reproduction needs (histograms feed
// the estimates; see internal/catalog).
type Planner struct {
	Cat *catalog.Catalog
	// Params, when non-nil, substitutes bound values for `?` / `$N`
	// placeholders during lowering (Params[0] binds $1) — the direct
	// execution path DML uses. When nil, placeholders lower to
	// algebra.Param template slots whose kind is inferred from the
	// surrounding expression; algebra.BindParams fills them later
	// without re-planning.
	Params []vtypes.Value
}

// scopeEntry is one table visible in the FROM clause.
type scopeEntry struct {
	alias  string
	table  string
	schema *vtypes.Schema
	offset int // column offset in the join row
}

type scope struct{ entries []scopeEntry }

func (s *scope) width() int {
	n := 0
	for _, e := range s.entries {
		n += e.schema.Len()
	}
	return n
}

// resolve finds a column by (qualifier, name).
func (s *scope) resolve(qual, name string) (int, vtypes.Kind, error) {
	found := -1
	var kind vtypes.Kind
	for _, e := range s.entries {
		if qual != "" && e.alias != qual {
			continue
		}
		if ix := e.schema.ColIndex(name); ix >= 0 {
			if found >= 0 {
				return 0, 0, fmt.Errorf("sql: ambiguous column %q", name)
			}
			found = e.offset + ix
			kind = e.schema.Col(ix).Kind
		}
	}
	if found < 0 {
		return 0, 0, fmt.Errorf("sql: unknown column %q", qualName(qual, name))
	}
	return found, kind, nil
}

func qualName(q, n string) string {
	if q == "" {
		return n
	}
	return q + "." + n
}

// PlanSelect lowers a SELECT onto the algebra. As a final step it runs
// the data-skipping rewrite: sargable single-table conjuncts that
// predicate pushdown placed directly above a scan move into the scan's
// Filters, where the cross-compiler both evaluates them post-
// decompression and derives row-group min/max pruning. Parametrized
// conjuncts keep their Param slots, so a cached plan template prunes
// with each execution's bound values.
func (p *Planner) PlanSelect(s *SelectStmt) (algebra.Node, error) {
	node, err := p.planSelect(s)
	if err != nil {
		return nil, err
	}
	return algebra.PushFiltersIntoScans(node), nil
}

// planSelect lowers a SELECT without the scan-filter rewrite.
func (p *Planner) planSelect(s *SelectStmt) (algebra.Node, error) {
	if len(s.From) != 1 {
		return nil, fmt.Errorf("sql: exactly one FROM table plus JOIN clauses supported")
	}
	sc := &scope{}
	node, err := p.baseScan(s.From[0], sc)
	if err != nil {
		return nil, err
	}

	// Split WHERE into conjuncts for pushdown. Conjuncts containing
	// subqueries are set aside: they become joins (or post-join
	// selections) once the user's joins are in place, and must never
	// be pushed into a scan.
	var conjuncts, subqConjuncts []Expr
	for _, c := range splitConjuncts(s.Where) {
		if containsSubquery(c) {
			subqConjuncts = append(subqConjuncts, c)
		} else {
			conjuncts = append(conjuncts, c)
		}
	}

	// Push single-table conjuncts that only reference the first table
	// down before joins.
	node, conjuncts, err = p.pushdown(node, sc, conjuncts, s.From[0].Alias)
	if err != nil {
		return nil, err
	}

	for _, j := range s.Joins {
		rightSc := &scope{}
		right, err := p.baseScan(j.Table, rightSc)
		if err != nil {
			return nil, err
		}
		// Push right-table-only conjuncts into the build side — except
		// under a LEFT OUTER JOIN, where the WHERE applies after
		// null-extension and pushing it below the join would change
		// which left rows survive. (Semi/anti joins keep the push: the
		// right side never emits columns, so a right-only WHERE
		// conjunct is only satisfiable as a build-side filter.)
		if j.Kind != "left" {
			right, conjuncts, err = p.pushdown(right, rightSc, conjuncts, j.Table.Alias)
			if err != nil {
				return nil, err
			}
		}
		// Resolve keys: left keys against current scope, right keys
		// against the joined table.
		var lkeys, rkeys []algebra.Scalar
		for _, on := range j.On {
			lk, rk, err := p.resolveOn(on, sc, rightSc)
			if err != nil {
				return nil, err
			}
			lkeys = append(lkeys, lk)
			rkeys = append(rkeys, rk)
		}
		var typ algebra.JoinType
		switch j.Kind {
		case "inner":
			typ = algebra.JoinInner
		case "left":
			typ = algebra.JoinLeftOuter
		case "semi":
			typ = algebra.JoinLeftSemi
		case "anti":
			typ = algebra.JoinLeftAnti
		}
		node = &algebra.JoinNode{Left: node, Right: right, LeftKeys: lkeys, RightKeys: rkeys, Type: typ}
		if typ == algebra.JoinInner || typ == algebra.JoinLeftOuter {
			base := sc.width()
			for _, e := range rightSc.entries {
				sc.entries = append(sc.entries, scopeEntry{
					alias: e.alias, table: e.table, schema: e.schema, offset: base + e.offset,
				})
			}
		}
	}

	// Remaining WHERE conjuncts above the joins.
	if len(conjuncts) > 0 {
		pred, err := p.lowerConjuncts(conjuncts, sc)
		if err != nil {
			return nil, err
		}
		node = &algebra.SelectNode{Input: node, Pred: pred}
	}

	// Subquery conjuncts: `x [NOT] IN (SELECT ...)` becomes a
	// semi/anti join against the subplan; scalar subqueries attach via
	// a constant-key cross join and the conjunct then lowers as an
	// ordinary selection over the widened row.
	if len(subqConjuncts) > 0 {
		subqN := 0
		var rewritten []Expr
		for _, c := range subqConjuncts {
			if in := asInSub(c); in != nil {
				node, err = p.planInSubquery(node, sc, in)
				if err != nil {
					return nil, err
				}
				continue
			}
			var rc Expr
			node, rc, err = p.attachScalarSubqueries(node, sc, c, &subqN)
			if err != nil {
				return nil, err
			}
			rewritten = append(rewritten, rc)
		}
		if len(rewritten) > 0 {
			pred, err := p.lowerConjuncts(rewritten, sc)
			if err != nil {
				return nil, err
			}
			node = &algebra.SelectNode{Input: node, Pred: pred}
		}
	}

	// Aggregation?
	hasAgg := len(s.GroupBy) > 0 || containsAgg(s.Having)
	for _, item := range s.Items {
		if !item.Star && containsAgg(item.Expr) {
			hasAgg = true
		}
	}
	if hasAgg {
		return p.planAggregate(s, node, sc)
	}
	if s.Having != nil {
		return nil, fmt.Errorf("sql: HAVING requires GROUP BY or aggregates")
	}

	// Plain projection.
	var exprs []algebra.Scalar
	var names []string
	for _, item := range s.Items {
		if item.Star {
			for _, e := range sc.entries {
				for ci := 0; ci < e.schema.Len(); ci++ {
					exprs = append(exprs, &algebra.ColRef{Idx: e.offset + ci, K: e.schema.Col(ci).Kind})
					names = append(names, e.schema.Col(ci).Name)
				}
			}
			continue
		}
		lo, err := p.lower(item.Expr, sc)
		if err != nil {
			return nil, err
		}
		exprs = append(exprs, lo)
		names = append(names, itemName(item))
	}
	// ORDER BY resolves against the pre-projection scope (SQL permits
	// sorting on non-projected columns), falling back to select aliases.
	if len(s.OrderBy) > 0 {
		var keys []algebra.SortKey
		for _, o := range s.OrderBy {
			lo, err := p.lower(o.Expr, sc)
			if err != nil {
				if id, ok := o.Expr.(*Ident); ok && id.Qualifier == "" {
					found := false
					for i, n := range names {
						if n == id.Name {
							lo, found = exprs[i], true
							break
						}
					}
					if !found {
						return nil, err
					}
				} else {
					return nil, err
				}
			}
			keys = append(keys, algebra.SortKey{Expr: lo, Desc: o.Desc})
		}
		node = &algebra.SortNode{Input: node, Keys: keys}
	}
	out := algebra.Node(&algebra.ProjectNode{Input: node, Exprs: exprs, Names: names})
	if s.Limit >= 0 {
		out = &algebra.LimitNode{Input: out, N: s.Limit}
	}
	return out, nil
}

// baseScan builds a full-width scan of a table.
func (p *Planner) baseScan(tr TableRef, sc *scope) (algebra.Node, error) {
	tbl, _, err := p.Cat.Resolve(tr.Table)
	if err != nil {
		return nil, err
	}
	schema := tbl.Schema()
	cols := make([]int, schema.Len())
	for i := range cols {
		cols[i] = i
	}
	sc.entries = append(sc.entries, scopeEntry{alias: tr.Alias, table: tr.Table, schema: schema, offset: sc.width()})
	return &algebra.ScanNode{Table: tr.Table, Cols: cols, Out: schema.Clone()}, nil
}

// pushdown applies conjuncts referencing only `alias` directly above its
// scan, returning the remaining conjuncts.
func (p *Planner) pushdown(node algebra.Node, sc *scope, conjuncts []Expr, alias string) (algebra.Node, []Expr, error) {
	var local, rest []Expr
	for _, c := range conjuncts {
		if onlyReferences(c, alias, sc) {
			local = append(local, c)
		} else {
			rest = append(rest, c)
		}
	}
	if len(local) == 0 {
		return node, rest, nil
	}
	pred, err := p.lowerConjuncts(local, sc)
	if err != nil {
		return nil, nil, err
	}
	return &algebra.SelectNode{Input: node, Pred: pred}, rest, nil
}

func (p *Planner) lowerConjuncts(cs []Expr, sc *scope) (algebra.Scalar, error) {
	var preds []algebra.Scalar
	for _, c := range cs {
		lo, err := p.lower(c, sc)
		if err != nil {
			return nil, err
		}
		preds = append(preds, lo)
	}
	if len(preds) == 1 {
		return preds[0], nil
	}
	return &algebra.And{Preds: preds}, nil
}

func (p *Planner) resolveOn(on OnEq, left, right *scope) (algebra.Scalar, algebra.Scalar, error) {
	l, errL := p.lower(on.L, left)
	if errL == nil {
		r, errR := p.lower(on.R, right)
		if errR == nil {
			return l, r, nil
		}
	}
	// Try swapped orientation (ON b.x = a.y).
	l2, err := p.lower(on.R, left)
	if err != nil {
		return nil, nil, fmt.Errorf("sql: cannot resolve join condition")
	}
	r2, err := p.lower(on.L, right)
	if err != nil {
		return nil, nil, fmt.Errorf("sql: cannot resolve join condition")
	}
	return l2, r2, nil
}

// planAggregate lowers GROUP BY / aggregate queries. Select items and
// HAVING may be arbitrary expressions over group-by expressions and
// aggregate calls — e.g. `100.0 * SUM(a) / SUM(b)` — lowered in two
// steps: one AggNode computes the group keys and the distinct aggregates
// of the whole statement under internal names, then every output
// expression is rewritten to reference those columns and lowered as an
// ordinary projection (HAVING becomes a selection between the two).
func (p *Planner) planAggregate(s *SelectStmt, input algebra.Node, sc *scope) (algebra.Node, error) {
	var groupBy []algebra.Scalar
	for _, g := range s.GroupBy {
		lo, err := p.lower(g, sc)
		if err != nil {
			return nil, err
		}
		groupBy = append(groupBy, lo)
	}

	// Collect the distinct aggregate calls across select list and HAVING
	// (dedup by rendered text, so Q14's repeated SUM computes once).
	aggCols := map[string]int{}
	var aggs []algebra.AggExpr
	collect := func(e Expr) error {
		var firstErr error
		walkExprs(e, func(x Expr) {
			a, ok := x.(*AggCall)
			if !ok {
				return
			}
			key := renderExpr(a)
			if _, seen := aggCols[key]; seen {
				return
			}
			ax, err := p.lowerAgg(a, sc)
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			aggCols[key] = len(aggs)
			aggs = append(aggs, ax)
		})
		return firstErr
	}
	for _, item := range s.Items {
		if item.Star {
			return nil, fmt.Errorf("sql: * not allowed with GROUP BY")
		}
		if err := collect(item.Expr); err != nil {
			return nil, err
		}
	}
	if s.Having != nil {
		if err := collect(s.Having); err != nil {
			return nil, err
		}
	}

	// Internal column names ('#' cannot appear in a lexed identifier, so
	// they can never collide with user names).
	names := make([]string, 0, len(groupBy)+len(aggs))
	for i := range groupBy {
		names = append(names, fmt.Sprintf("#g%d", i))
	}
	for i := range aggs {
		names = append(names, fmt.Sprintf("#a%d", i))
	}
	node := algebra.Node(&algebra.AggNode{Input: input, GroupBy: groupBy, Aggs: aggs, Names: names})
	aggSc := schemaScope(node.Schema())

	// HAVING may compare against an uncorrelated scalar subquery
	// (Q11): attach each one via a constant-key join above the
	// aggregate and substitute its output column into the predicate.
	having := s.Having
	if having != nil && containsSubquery(having) {
		subqN := 0
		var err error
		node, having, err = p.attachScalarSubqueries(node, aggSc, having, &subqN)
		if err != nil {
			return nil, err
		}
	}

	// rewrite maps an AST expression onto the AggNode output: group-by
	// expressions and aggregate calls become references to the internal
	// columns; select aliases (HAVING may name them) substitute the
	// aliased expression. Aggregate arguments are never descended into —
	// they were already lowered against the input scope. expanding
	// tracks alias substitutions in flight so a self-referential alias
	// (`a + 1 AS a`) falls through to normal resolution instead of
	// recursing forever.
	expanding := map[string]bool{}
	var rewrite func(e Expr) Expr
	rewrite = func(e Expr) Expr {
		if g := matchGroupExpr(e, s.GroupBy); g >= 0 {
			return &Ident{Name: names[g]}
		}
		if a, ok := e.(*AggCall); ok {
			if ix, ok := aggCols[renderExpr(a)]; ok {
				return &Ident{Name: names[len(groupBy)+ix]}
			}
			return a
		}
		switch t := e.(type) {
		case *Ident:
			if t.Qualifier == "" && !expanding[t.Name] {
				for _, item := range s.Items {
					if !item.Star && item.Alias == t.Name {
						expanding[t.Name] = true
						out := rewrite(item.Expr)
						delete(expanding, t.Name)
						return out
					}
				}
			}
			return t
		case *BinExpr:
			return &BinExpr{Op: t.Op, L: rewrite(t.L), R: rewrite(t.R)}
		case *NotExpr:
			return &NotExpr{In: rewrite(t.In)}
		case *BetweenExpr:
			return &BetweenExpr{In: rewrite(t.In), Lo: rewrite(t.Lo), Hi: rewrite(t.Hi)}
		case *InExpr:
			list := make([]Expr, len(t.List))
			for i, m := range t.List {
				list[i] = rewrite(m)
			}
			return &InExpr{In: rewrite(t.In), List: list}
		case *LikeExpr:
			return &LikeExpr{In: rewrite(t.In), Pattern: t.Pattern, Negate: t.Negate}
		case *IsNullExpr:
			return &IsNullExpr{In: rewrite(t.In), Negate: t.Negate}
		case *CaseExpr:
			return &CaseExpr{Cond: rewrite(t.Cond), Then: rewrite(t.Then), Else: rewrite(t.Else)}
		case *FuncCall:
			return &FuncCall{Fn: t.Fn, Arg: rewrite(t.Arg)}
		}
		return e
	}

	// HAVING filters the aggregate output before the projection renames
	// and reorders it (equivalent, and it may reference aggregates that
	// the select list drops).
	if having != nil {
		pred, err := p.lower(rewrite(having), aggSc)
		if err != nil {
			return nil, err
		}
		node = &algebra.SelectNode{Input: node, Pred: pred}
	}

	// Projection expressions over the aggregate output, in select order.
	var exprs []algebra.Scalar
	var outNames []string
	for _, item := range s.Items {
		lo, err := p.lower(rewrite(item.Expr), aggSc)
		if err != nil {
			return nil, fmt.Errorf("%w (select items must be built from GROUP BY expressions and aggregates)", err)
		}
		exprs = append(exprs, lo)
		outNames = append(outNames, itemName(item))
	}

	// ORDER BY keys rewrite onto the aggregate output exactly like
	// select items do, and the sort runs between HAVING and the
	// projection (every engine preserves order through a projection) —
	// so keys may be arbitrary expressions over group keys and
	// aggregates, including ones the select list drops. A bare
	// identifier that only names a projected column (`ORDER BY count`)
	// falls back to that column's expression.
	if len(s.OrderBy) > 0 {
		var keys []algebra.SortKey
		for _, o := range s.OrderBy {
			lo, err := p.lower(rewrite(o.Expr), aggSc)
			if err != nil {
				if id, ok := o.Expr.(*Ident); ok && id.Qualifier == "" {
					for i, n := range outNames {
						if n == id.Name {
							lo, err = exprs[i], nil
							break
						}
					}
				}
				if err != nil {
					return nil, err
				}
			}
			keys = append(keys, algebra.SortKey{Expr: lo, Desc: o.Desc})
		}
		node = &algebra.SortNode{Input: node, Keys: keys}
	}
	node = &algebra.ProjectNode{Input: node, Exprs: exprs, Names: outNames}
	if s.Limit >= 0 {
		node = &algebra.LimitNode{Input: node, N: s.Limit}
	}
	return node, nil
}

// schemaScope exposes an output schema as an unqualified scope.
func schemaScope(s *vtypes.Schema) *scope {
	return &scope{entries: []scopeEntry{{alias: "", schema: s}}}
}

// lowerAgg lowers an aggregate call.
func (p *Planner) lowerAgg(a *AggCall, sc *scope) (algebra.AggExpr, error) {
	var fn algebra.AggFn
	switch a.Fn {
	case "SUM":
		fn = algebra.AggSum
	case "COUNT":
		if a.Arg == nil {
			return algebra.AggExpr{Fn: algebra.AggCountStar}, nil
		}
		fn = algebra.AggCount
	case "AVG":
		fn = algebra.AggAvg
	case "MIN":
		fn = algebra.AggMin
	case "MAX":
		fn = algebra.AggMax
	}
	arg, err := p.lower(a.Arg, sc)
	if err != nil {
		return algebra.AggExpr{}, err
	}
	return algebra.AggExpr{Fn: fn, Arg: arg}, nil
}

// lower lowers an AST expression against a scope.
func (p *Planner) lower(e Expr, sc *scope) (algebra.Scalar, error) {
	switch t := e.(type) {
	case *Ident:
		ix, kind, err := sc.resolve(t.Qualifier, t.Name)
		if err != nil {
			return nil, err
		}
		return &algebra.ColRef{Idx: ix, K: kind}, nil
	case *ParamExpr:
		// A placeholder always lowers to a typeless Param slot first;
		// the surrounding expression resolves its kind
		// (resolveParamPair, lowerLit, lowerBoundScalar), and — on the direct
		// execution path (Params set) — the same site materializes the
		// coerced literal, so bound DML sees exactly the values a bound
		// SELECT template would.
		return &algebra.Param{Idx: t.Idx}, nil
	case *NumLit:
		if strings.Contains(t.Text, ".") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, fmt.Errorf("sql: bad number %q", t.Text)
			}
			return &algebra.Lit{Val: vtypes.F64Value(f)}, nil
		}
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sql: bad number %q", t.Text)
		}
		return &algebra.Lit{Val: vtypes.I64Value(n)}, nil
	case *StrLit:
		return &algebra.Lit{Val: vtypes.StrValue(t.Val)}, nil
	case *DateLit:
		d, err := vtypes.ParseDate(t.Val)
		if err != nil {
			return nil, err
		}
		return &algebra.Lit{Val: vtypes.DateValue(d)}, nil
	case *BoolLit:
		return &algebra.Lit{Val: vtypes.BoolValue(t.Val)}, nil
	case *NullLit:
		return &algebra.Lit{Val: vtypes.NullValue(vtypes.KindI64)}, nil
	case *BinExpr:
		l, err := p.lower(t.L, sc)
		if err != nil {
			return nil, err
		}
		r, err := p.lower(t.R, sc)
		if err != nil {
			return nil, err
		}
		if l, r, err = p.resolveParamPair(l, r); err != nil {
			return nil, err
		}
		switch t.Op {
		case "AND":
			return &algebra.And{Preds: []algebra.Scalar{l, r}}, nil
		case "OR":
			return &algebra.Or{Preds: []algebra.Scalar{l, r}}, nil
		case "+", "-", "*", "/":
			op := map[string]algebra.ArithOp{"+": algebra.OpAdd, "-": algebra.OpSub, "*": algebra.OpMul, "/": algebra.OpDiv}[t.Op]
			// Widen int literals beside float columns.
			l, r = widenPair(l, r)
			return algebra.NewArith(op, l, r)
		default:
			op := map[string]algebra.CmpOp{"=": algebra.CmpEq, "<>": algebra.CmpNe, "<": algebra.CmpLt, "<=": algebra.CmpLe, ">": algebra.CmpGt, ">=": algebra.CmpGe}[t.Op]
			l, r = widenPair(l, r)
			return &algebra.Cmp{Op: op, L: l, R: r}, nil
		}
	case *NotExpr:
		in, err := p.lower(t.In, sc)
		if err != nil {
			return nil, err
		}
		return &algebra.Not{In: in}, nil
	case *BetweenExpr:
		in, err := p.lower(t.In, sc)
		if err != nil {
			return nil, err
		}
		lo, err := p.lowerBoundScalar(t.Lo, sc, in.Kind())
		if err != nil {
			return nil, err
		}
		hi, err := p.lowerBoundScalar(t.Hi, sc, in.Kind())
		if err != nil {
			return nil, err
		}
		// Literal bounds take the Between fast path. Anything else —
		// unbound placeholder slots (template path), columns, aggregate
		// outputs — decomposes into a pair of comparisons, which binds
		// and evaluates positionally.
		if loLit, ok := lo.(*algebra.Lit); ok {
			if hiLit, ok := hi.(*algebra.Lit); ok {
				return &algebra.Between{In: in, Lo: loLit.Val, Hi: hiLit.Val}, nil
			}
		}
		return &algebra.And{Preds: []algebra.Scalar{
			&algebra.Cmp{Op: algebra.CmpGe, L: in, R: lo},
			&algebra.Cmp{Op: algebra.CmpLe, L: in, R: hi},
		}}, nil
	case *InExpr:
		in, err := p.lower(t.In, sc)
		if err != nil {
			return nil, err
		}
		members := make([]algebra.Scalar, len(t.List))
		allLit := true
		for i, le := range t.List {
			m, err := p.lowerBoundScalar(le, sc, in.Kind())
			if err != nil {
				return nil, err
			}
			members[i] = m
			if _, ok := m.(*algebra.Lit); !ok {
				allLit = false
			}
		}
		if allLit {
			list := make([]vtypes.Value, len(members))
			for i, m := range members {
				list[i] = m.(*algebra.Lit).Val
			}
			return &algebra.In{In: in, List: list}, nil
		}
		// Non-literal members (placeholder slots, columns, aggregates):
		// decompose into an OR of equalities so each one binds or
		// evaluates positionally.
		preds := make([]algebra.Scalar, len(members))
		for i, m := range members {
			preds[i] = &algebra.Cmp{Op: algebra.CmpEq, L: in, R: m}
		}
		if len(preds) == 1 {
			return preds[0], nil
		}
		return &algebra.Or{Preds: preds}, nil
	case *LikeExpr:
		in, err := p.lower(t.In, sc)
		if err != nil {
			return nil, err
		}
		return &algebra.Like{In: in, Pattern: t.Pattern, Negate: t.Negate}, nil
	case *IsNullExpr:
		in, err := p.lower(t.In, sc)
		if err != nil {
			return nil, err
		}
		return &algebra.IsNull{In: in, Negate: t.Negate}, nil
	case *CaseExpr:
		cond, err := p.lower(t.Cond, sc)
		if err != nil {
			return nil, err
		}
		then, err := p.lower(t.Then, sc)
		if err != nil {
			return nil, err
		}
		el, err := p.lower(t.Else, sc)
		if err != nil {
			return nil, err
		}
		// Widen int literal arms beside float arms so both arms share a
		// storage class (`THEN price ELSE 0`).
		then, el = widenPair(then, el)
		return algebra.NewCase(cond, then, el)
	case *FuncCall:
		arg, err := p.lower(t.Arg, sc)
		if err != nil {
			return nil, err
		}
		if t.Fn == "YEAR" {
			return &algebra.YearOf{In: arg}, nil
		}
		return nil, fmt.Errorf("sql: unknown function %q", t.Fn)
	case *AggCall:
		return nil, fmt.Errorf("sql: aggregate %s not allowed here", t.Fn)
	case *SubqueryExpr:
		return nil, fmt.Errorf("sql: scalar subquery not supported in this position")
	case *InSubExpr:
		return nil, fmt.Errorf("sql: IN (SELECT ...) is only supported as a top-level WHERE conjunct")
	default:
		return nil, fmt.Errorf("sql: unsupported expression %T", e)
	}
}

// resolveParamPair types unresolved parameter slots from their sibling
// operand: in `k = ?` the placeholder adopts k's kind, so binding can
// coerce the argument and the kernels see one storage class. Two
// placeholders compared with each other have no kind source and fail.
// On the direct execution path the typed slot is materialized
// immediately (see materializeParam).
func (p *Planner) resolveParamPair(l, r algebra.Scalar) (algebra.Scalar, algebra.Scalar, error) {
	lp, lok := l.(*algebra.Param)
	rp, rok := r.(*algebra.Param)
	lu := lok && lp.K == vtypes.KindInvalid
	ru := rok && rp.K == vtypes.KindInvalid
	switch {
	case lu && ru:
		return nil, nil, fmt.Errorf("sql: cannot infer types of $%d and $%d compared with each other", lp.Idx, rp.Idx)
	case lu:
		l = &algebra.Param{Idx: lp.Idx, K: r.Kind()}
	case ru:
		r = &algebra.Param{Idx: rp.Idx, K: l.Kind()}
	}
	var err error
	if l, err = p.materializeParam(l); err != nil {
		return nil, nil, err
	}
	if r, err = p.materializeParam(r); err != nil {
		return nil, nil, err
	}
	return l, r, nil
}

// materializeParam substitutes the bound value for a typed Param slot
// when the planner is on the direct execution path (Params set),
// applying the same coercion BindParams applies to templates. Template
// planning (Params nil) and non-Param scalars pass through.
func (p *Planner) materializeParam(s algebra.Scalar) (algebra.Scalar, error) {
	prm, ok := s.(*algebra.Param)
	if !ok || p.Params == nil {
		return s, nil
	}
	if prm.Idx < 1 || prm.Idx > len(p.Params) {
		return nil, fmt.Errorf("sql: parameter $%d not bound (%d args)", prm.Idx, len(p.Params))
	}
	v, err := algebra.CoerceValue(p.Params[prm.Idx-1], prm.K)
	if err != nil {
		return nil, fmt.Errorf("sql: parameter $%d: %w", prm.Idx, err)
	}
	return &algebra.Lit{Val: v}, nil
}

// lowerBoundScalar lowers a BETWEEN bound or IN member. Placeholder
// slots adopt the probed expression's kind (and bind immediately on the
// direct execution path); literals coerce to it; other scalars —
// columns, aggregate outputs — pass through for the caller's comparison
// decomposition.
func (p *Planner) lowerBoundScalar(e Expr, sc *scope, want vtypes.Kind) (algebra.Scalar, error) {
	lo, err := p.lower(e, sc)
	if err != nil {
		return nil, err
	}
	switch t := lo.(type) {
	case *algebra.Param:
		k := t.K
		if k == vtypes.KindInvalid {
			k = want
		}
		return p.materializeParam(&algebra.Param{Idx: t.Idx, K: k})
	case *algebra.Lit:
		v, err := algebra.CoerceValue(t.Val, want)
		if err != nil {
			return nil, fmt.Errorf("sql: literal %w", err)
		}
		return &algebra.Lit{Val: v}, nil
	}
	return lo, nil
}

// lowerLit lowers an expression that must fold to a literal, coercing
// its kind class to match `want`. Bound placeholders fold to their
// argument value.
func (p *Planner) lowerLit(e Expr, sc *scope, want vtypes.Kind) (vtypes.Value, error) {
	lo, err := p.lower(e, sc)
	if err != nil {
		return vtypes.Value{}, err
	}
	if prm, ok := lo.(*algebra.Param); ok {
		lo, err = p.materializeParam(&algebra.Param{Idx: prm.Idx, K: want})
		if err != nil {
			return vtypes.Value{}, err
		}
	}
	lit, ok := lo.(*algebra.Lit)
	if !ok {
		return vtypes.Value{}, fmt.Errorf("sql: literal required")
	}
	v, err := algebra.CoerceValue(lit.Val, want)
	if err != nil {
		return vtypes.Value{}, fmt.Errorf("sql: literal %w", err)
	}
	return v, nil
}

// widenPair widens int literals next to float expressions so kernels
// compare within one storage class.
func widenPair(l, r algebra.Scalar) (algebra.Scalar, algebra.Scalar) {
	if l.Kind().StorageClass() == vtypes.ClassF64 && r.Kind().StorageClass() == vtypes.ClassI64 {
		if lit, ok := r.(*algebra.Lit); ok {
			return l, &algebra.Lit{Val: vtypes.F64Value(float64(lit.Val.I64))}
		}
	}
	if r.Kind().StorageClass() == vtypes.ClassF64 && l.Kind().StorageClass() == vtypes.ClassI64 {
		if lit, ok := l.(*algebra.Lit); ok {
			return &algebra.Lit{Val: vtypes.F64Value(float64(lit.Val.I64))}, r
		}
	}
	return l, r
}

// splitConjuncts flattens a WHERE tree into ANDed conjuncts.
func splitConjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*BinExpr); ok && b.Op == "AND" {
		return append(splitConjuncts(b.L), splitConjuncts(b.R)...)
	}
	return []Expr{e}
}

// onlyReferences reports whether every column in e resolves inside the
// single alias — the test for pushing a WHERE conjunct below a join. A
// column that resolves in another table, or that does not resolve in the
// scope at all (it belongs to a table joined later), blocks the push.
func onlyReferences(e Expr, alias string, sc *scope) bool {
	ok := true
	walkIdents(e, func(id *Ident) {
		if id.Qualifier != "" {
			if id.Qualifier != alias {
				ok = false
			}
			return
		}
		resolved := false
		for _, ent := range sc.entries {
			if ent.schema.ColIndex(id.Name) >= 0 {
				resolved = true
				if ent.alias != alias {
					ok = false
				}
			}
		}
		if !resolved {
			ok = false
		}
	})
	return ok
}

// walkExprs visits e and every sub-expression, including aggregate
// arguments and IN-list members. A nil e is a no-op.
func walkExprs(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch t := e.(type) {
	case *BinExpr:
		walkExprs(t.L, fn)
		walkExprs(t.R, fn)
	case *NotExpr:
		walkExprs(t.In, fn)
	case *BetweenExpr:
		walkExprs(t.In, fn)
		walkExprs(t.Lo, fn)
		walkExprs(t.Hi, fn)
	case *InExpr:
		walkExprs(t.In, fn)
		for _, m := range t.List {
			walkExprs(m, fn)
		}
	case *LikeExpr:
		walkExprs(t.In, fn)
	case *IsNullExpr:
		walkExprs(t.In, fn)
	case *CaseExpr:
		walkExprs(t.Cond, fn)
		walkExprs(t.Then, fn)
		walkExprs(t.Else, fn)
	case *AggCall:
		walkExprs(t.Arg, fn)
	case *FuncCall:
		walkExprs(t.Arg, fn)
	case *InSubExpr:
		// The probe side belongs to the outer query; the subquery's
		// internals (its aggregates, idents) do not.
		walkExprs(t.In, fn)
	case *SubqueryExpr:
		// Leaf: nothing inside a scalar subquery belongs to the outer
		// query's scope.
	}
}

func walkIdents(e Expr, fn func(*Ident)) {
	walkExprs(e, func(x Expr) {
		if id, ok := x.(*Ident); ok {
			fn(id)
		}
	})
}

// containsAgg reports whether an expression contains an aggregate call.
func containsAgg(e Expr) bool {
	found := false
	walkExprs(e, func(x Expr) {
		if _, ok := x.(*AggCall); ok {
			found = true
		}
	})
	return found
}

// matchGroupExpr returns the index of the GROUP BY expression textually
// identical to e, or -1.
func matchGroupExpr(e Expr, groups []Expr) int {
	er := renderExpr(e)
	for i, g := range groups {
		if renderExpr(g) == er {
			return i
		}
	}
	return -1
}

// renderExpr canonicalizes an AST expression for matching.
func renderExpr(e Expr) string {
	switch t := e.(type) {
	case *Ident:
		return qualName(t.Qualifier, t.Name)
	case *NumLit:
		return t.Text
	case *ParamExpr:
		return fmt.Sprintf("$%d", t.Idx)
	case *StrLit:
		return "'" + t.Val + "'"
	case *DateLit:
		return "date'" + t.Val + "'"
	case *BoolLit:
		return fmt.Sprintf("%v", t.Val)
	case *NullLit:
		return "null"
	case *BinExpr:
		return "(" + renderExpr(t.L) + t.Op + renderExpr(t.R) + ")"
	case *NotExpr:
		return "not(" + renderExpr(t.In) + ")"
	case *BetweenExpr:
		return "between(" + renderExpr(t.In) + "," + renderExpr(t.Lo) + "," + renderExpr(t.Hi) + ")"
	case *InExpr:
		out := "in(" + renderExpr(t.In)
		for _, m := range t.List {
			out += "," + renderExpr(m)
		}
		return out + ")"
	case *LikeExpr:
		return fmt.Sprintf("like(%s,%q,%v)", renderExpr(t.In), t.Pattern, t.Negate)
	case *IsNullExpr:
		return fmt.Sprintf("isnull(%s,%v)", renderExpr(t.In), t.Negate)
	case *AggCall:
		if t.Arg == nil {
			return t.Fn + "(*)"
		}
		return t.Fn + "(" + renderExpr(t.Arg) + ")"
	case *FuncCall:
		return t.Fn + "(" + renderExpr(t.Arg) + ")"
	case *CaseExpr:
		return "case(" + renderExpr(t.Cond) + "," + renderExpr(t.Then) + "," + renderExpr(t.Else) + ")"
	case *SubqueryExpr:
		return "(" + RenderSelect(t.Sel) + ")"
	case *InSubExpr:
		return fmt.Sprintf("insub(%s,%s,%v)", renderExpr(t.In), RenderSelect(t.Sel), t.Negate)
	default:
		return fmt.Sprintf("%T", e)
	}
}

// containsSubquery reports whether an expression contains a subquery
// node anywhere (the subquery's own internals are not walked, but the
// node itself is seen).
func containsSubquery(e Expr) bool {
	found := false
	walkExprs(e, func(x Expr) {
		switch x.(type) {
		case *SubqueryExpr, *InSubExpr:
			found = true
		}
	})
	return found
}

// itemName derives the output column name of a select item.
func itemName(item SelectItem) string {
	if item.Alias != "" {
		return item.Alias
	}
	if id, ok := item.Expr.(*Ident); ok {
		return id.Name
	}
	if ag, ok := item.Expr.(*AggCall); ok {
		return strings.ToLower(ag.Fn)
	}
	return "expr"
}

// LowerOnTable lowers an expression against a single table schema
// (UPDATE/DELETE predicates and SET expressions).
func (p *Planner) LowerOnTable(e Expr, schema *vtypes.Schema) (algebra.Scalar, error) {
	return p.lower(e, schemaScope(schema))
}

// LowerSet lowers an UPDATE SET expression against a table schema; a
// bare placeholder (`SET col = ?`) adopts the target column's kind.
func (p *Planner) LowerSet(e Expr, schema *vtypes.Schema, want vtypes.Kind) (algebra.Scalar, error) {
	lo, err := p.lower(e, schemaScope(schema))
	if err != nil {
		return nil, err
	}
	if prm, ok := lo.(*algebra.Param); ok {
		return p.materializeParam(&algebra.Param{Idx: prm.Idx, K: want})
	}
	return lo, nil
}

// LowerLiteral folds a literal-only expression to a value of the wanted
// kind (INSERT VALUES).
func (p *Planner) LowerLiteral(e Expr, want vtypes.Kind) (vtypes.Value, error) {
	if _, ok := e.(*NullLit); ok {
		return vtypes.NullValue(want), nil
	}
	return p.lowerLit(e, &scope{}, want)
}
