package sql

// Query-level planning beyond a single SELECT block: UNION [ALL] /
// EXCEPT / INTERSECT over the existing union machinery, and the
// subquery-to-join rewrites (uncorrelated scalar subqueries via
// constant-key joins, IN (SELECT ...) via semi/anti joins).

import (
	"fmt"

	"vectorwise/internal/algebra"
	"vectorwise/internal/vtypes"
)

// PlanQuery lowers any query statement — a SELECT or a set-operation
// chain — onto the algebra, then runs the scan-filter rewrite (see
// PlanSelect).
func (p *Planner) PlanQuery(s Stmt) (algebra.Node, error) {
	node, err := p.planQuery(s)
	if err != nil {
		return nil, err
	}
	return algebra.PushFiltersIntoScans(node), nil
}

func (p *Planner) planQuery(s Stmt) (algebra.Node, error) {
	switch t := s.(type) {
	case *SelectStmt:
		return p.planSelect(t)
	case *SetOpStmt:
		return p.planSetOp(t)
	default:
		return nil, fmt.Errorf("sql: not a query statement: %T", s)
	}
}

// planSetOp lowers a set operation. UNION ALL is the engine's union;
// UNION adds a duplicate-eliminating group-by over it; INTERSECT and
// EXCEPT run a deduplicated left branch through a semi/anti join
// against the right branch on all columns. Like the engine's hash
// joins, the key comparison treats NULLs as equal — a documented
// divergence from SQL's three-valued semantics (TPC-H columns are
// non-null).
func (p *Planner) planSetOp(s *SetOpStmt) (algebra.Node, error) {
	left, err := p.planQuery(s.Left)
	if err != nil {
		return nil, err
	}
	right, err := p.planQuery(s.Right)
	if err != nil {
		return nil, err
	}
	ls, rs := left.Schema(), right.Schema()
	if ls.Len() != rs.Len() {
		return nil, fmt.Errorf("sql: %s branches have %d and %d columns", s.Op, ls.Len(), rs.Len())
	}
	for i := 0; i < ls.Len(); i++ {
		if ls.Col(i).Kind.StorageClass() != rs.Col(i).Kind.StorageClass() {
			return nil, fmt.Errorf("sql: %s column %d: type mismatch (%v vs %v)",
				s.Op, i+1, ls.Col(i).Kind, rs.Col(i).Kind)
		}
	}
	var node algebra.Node
	switch s.Op {
	case "union all":
		node = &algebra.UnionAllNode{Inputs: []algebra.Node{left, right}}
	case "union":
		node = dedupNode(&algebra.UnionAllNode{Inputs: []algebra.Node{left, right}})
	case "intersect":
		node = allColsJoin(dedupNode(left), right, algebra.JoinLeftSemi)
	case "except":
		node = allColsJoin(dedupNode(left), right, algebra.JoinLeftAnti)
	default:
		return nil, fmt.Errorf("sql: unknown set operation %q", s.Op)
	}
	if len(s.OrderBy) > 0 {
		sc := schemaScope(node.Schema())
		var keys []algebra.SortKey
		for _, o := range s.OrderBy {
			lo, err := p.lower(o.Expr, sc)
			if err != nil {
				return nil, err
			}
			keys = append(keys, algebra.SortKey{Expr: lo, Desc: o.Desc})
		}
		node = &algebra.SortNode{Input: node, Keys: keys}
	}
	if s.Limit >= 0 {
		node = &algebra.LimitNode{Input: node, N: s.Limit}
	}
	return node, nil
}

// dedupNode eliminates duplicate rows by grouping on every column with
// no aggregates.
func dedupNode(in algebra.Node) algebra.Node {
	sch := in.Schema()
	groups := make([]algebra.Scalar, sch.Len())
	names := make([]string, sch.Len())
	for i := 0; i < sch.Len(); i++ {
		groups[i] = &algebra.ColRef{Idx: i, K: sch.Col(i).Kind}
		names[i] = sch.Col(i).Name
	}
	return &algebra.AggNode{Input: in, GroupBy: groups, Names: names}
}

// allColsJoin joins two same-width inputs on every column pairwise.
func allColsJoin(l, r algebra.Node, typ algebra.JoinType) algebra.Node {
	lsch, rsch := l.Schema(), r.Schema()
	lk := make([]algebra.Scalar, lsch.Len())
	rk := make([]algebra.Scalar, rsch.Len())
	for i := range lk {
		lk[i] = &algebra.ColRef{Idx: i, K: lsch.Col(i).Kind}
		rk[i] = &algebra.ColRef{Idx: i, K: rsch.Col(i).Kind}
	}
	return &algebra.JoinNode{Left: l, Right: r, LeftKeys: lk, RightKeys: rk, Type: typ}
}

// asInSub unwraps a conjunct that is an IN-subquery predicate,
// flattening `NOT (x IN (SELECT ...))` into the negated form.
func asInSub(e Expr) *InSubExpr {
	switch t := e.(type) {
	case *InSubExpr:
		return t
	case *NotExpr:
		if in, ok := t.In.(*InSubExpr); ok {
			return &InSubExpr{In: in.In, Sel: in.Sel, Negate: !in.Negate}
		}
	}
	return nil
}

// planInSubquery rewrites `x [NOT] IN (SELECT c FROM ...)` into a
// semi/anti join of the current row stream against the subplan. The
// schema is unchanged, so the surrounding scope stays valid.
func (p *Planner) planInSubquery(node algebra.Node, sc *scope, in *InSubExpr) (algebra.Node, error) {
	probe, err := p.lower(in.In, sc)
	if err != nil {
		return nil, err
	}
	sub, err := p.planSelect(in.Sel)
	if err != nil {
		return nil, fmt.Errorf("sql: IN subquery: %w", err)
	}
	if sub.Schema().Len() != 1 {
		return nil, fmt.Errorf("sql: IN subquery must produce exactly one column, got %d", sub.Schema().Len())
	}
	key := sub.Schema().Col(0).Kind
	if probe.Kind().StorageClass() != key.StorageClass() {
		return nil, fmt.Errorf("sql: IN subquery key type mismatch (%v vs %v)", probe.Kind(), key)
	}
	typ := algebra.JoinLeftSemi
	if in.Negate {
		typ = algebra.JoinLeftAnti
	}
	return &algebra.JoinNode{
		Left:      node,
		Right:     sub,
		LeftKeys:  []algebra.Scalar{probe},
		RightKeys: []algebra.Scalar{&algebra.ColRef{Idx: 0, K: key}},
		Type:      typ,
	}, nil
}

// attachScalarSubqueries replaces every scalar subquery inside e with a
// reference to a fresh internal column ("#sqN"), attaching each
// subquery's one-row plan to node through a constant-key inner join
// (both sides key on literal 1 — a cross join with one build row). The
// scope gains an entry for each attached column, so the rewritten
// expression lowers like any other.
func (p *Planner) attachScalarSubqueries(node algebra.Node, sc *scope, e Expr, n *int) (algebra.Node, Expr, error) {
	var err error
	var rec func(Expr) Expr
	attach := func(t *SubqueryExpr) Expr {
		sub, kind, serr := p.planScalarSubquery(t.Sel)
		if serr != nil {
			if err == nil {
				err = serr
			}
			return t
		}
		name := fmt.Sprintf("#sq%d", *n)
		*n++
		renamed := &algebra.ProjectNode{
			Input: sub,
			Exprs: []algebra.Scalar{&algebra.ColRef{Idx: 0, K: kind}},
			Names: []string{name},
		}
		one := func() algebra.Scalar { return &algebra.Lit{Val: vtypes.I64Value(1)} }
		sc.entries = append(sc.entries, scopeEntry{schema: renamed.Schema(), offset: sc.width()})
		node = &algebra.JoinNode{
			Left:      node,
			Right:     renamed,
			LeftKeys:  []algebra.Scalar{one()},
			RightKeys: []algebra.Scalar{one()},
			Type:      algebra.JoinInner,
		}
		return &Ident{Name: name}
	}
	rec = func(x Expr) Expr {
		switch t := x.(type) {
		case *SubqueryExpr:
			return attach(t)
		case *BinExpr:
			return &BinExpr{Op: t.Op, L: rec(t.L), R: rec(t.R)}
		case *NotExpr:
			return &NotExpr{In: rec(t.In)}
		case *BetweenExpr:
			return &BetweenExpr{In: rec(t.In), Lo: rec(t.Lo), Hi: rec(t.Hi)}
		case *InExpr:
			list := make([]Expr, len(t.List))
			for i, m := range t.List {
				list[i] = rec(m)
			}
			return &InExpr{In: rec(t.In), List: list}
		case *LikeExpr:
			return &LikeExpr{In: rec(t.In), Pattern: t.Pattern, Negate: t.Negate}
		case *IsNullExpr:
			return &IsNullExpr{In: rec(t.In), Negate: t.Negate}
		case *CaseExpr:
			return &CaseExpr{Cond: rec(t.Cond), Then: rec(t.Then), Else: rec(t.Else)}
		case *AggCall:
			if t.Arg == nil {
				return t
			}
			return &AggCall{Fn: t.Fn, Arg: rec(t.Arg)}
		case *FuncCall:
			return &FuncCall{Fn: t.Fn, Arg: rec(t.Arg)}
		default:
			return x
		}
	}
	out := rec(e)
	if err != nil {
		return nil, nil, err
	}
	return node, out, nil
}

// planScalarSubquery plans an uncorrelated scalar subquery. To
// guarantee exactly one row without runtime checks, the subquery must
// be a single ungrouped aggregate (`SELECT AVG(x) FROM ...`); a
// correlated reference fails inside planSelect with an unknown-column
// error, since the subquery plans against a fresh scope.
func (p *Planner) planScalarSubquery(sel *SelectStmt) (algebra.Node, vtypes.Kind, error) {
	if len(sel.Items) != 1 || sel.Items[0].Star || !containsAgg(sel.Items[0].Expr) || len(sel.GroupBy) > 0 {
		return nil, 0, fmt.Errorf("sql: scalar subquery must be a single aggregate expression with no GROUP BY")
	}
	sub, err := p.planSelect(sel)
	if err != nil {
		return nil, 0, fmt.Errorf("sql: scalar subquery: %w", err)
	}
	return sub, sub.Schema().Col(0).Kind, nil
}
