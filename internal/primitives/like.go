package primitives

import "strings"

// LIKE support. The expression compiler classifies patterns into fast
// paths (prefix / suffix / contains / exact) and falls back to a general
// glob matcher for mixed patterns such as TPC-H Q9's '%green%' or
// Q13's '%special%requests%'. '%' matches any run, '_' any single byte.

// LikeShape classifies a LIKE pattern.
type LikeShape uint8

// Pattern shapes, cheapest first.
const (
	// LikeExact has no wildcards: equality.
	LikeExact LikeShape = iota
	// LikePrefix is "abc%".
	LikePrefix
	// LikeSuffix is "%abc".
	LikeSuffix
	// LikeContains is "%abc%".
	LikeContains
	// LikeGeneral is anything else.
	LikeGeneral
)

// ClassifyLike returns the shape of pattern and the literal payload for
// the fast-path shapes (pattern stripped of its wildcards).
func ClassifyLike(pattern string) (LikeShape, string) {
	if strings.ContainsRune(pattern, '_') {
		return LikeGeneral, pattern
	}
	n := strings.Count(pattern, "%")
	switch {
	case n == 0:
		return LikeExact, pattern
	case n == 1 && strings.HasSuffix(pattern, "%"):
		return LikePrefix, pattern[:len(pattern)-1]
	case n == 1 && strings.HasPrefix(pattern, "%"):
		return LikeSuffix, pattern[1:]
	case n == 2 && strings.HasPrefix(pattern, "%") && strings.HasSuffix(pattern, "%") && len(pattern) >= 2:
		inner := pattern[1 : len(pattern)-1]
		if !strings.Contains(inner, "%") {
			return LikeContains, inner
		}
	}
	return LikeGeneral, pattern
}

// MatchLike reports whether s matches the general LIKE pattern.
// Iterative two-pointer algorithm with backtracking on the last '%'.
func MatchLike(s, pattern string) bool {
	var si, pi int
	star, match := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pattern) && (pattern[pi] == '_' || pattern[pi] == s[si]):
			si++
			pi++
		case pi < len(pattern) && pattern[pi] == '%':
			star = pi
			match = si
			pi++
		case star != -1:
			pi = star + 1
			match++
			si = match
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '%' {
		pi++
	}
	return pi == len(pattern)
}

// SelLike selects live i where a[i] matches pattern, dispatching to the
// cheapest kernel for the pattern's shape.
func SelLike(res []int32, a []string, pattern string, sel []int32, n int) int {
	shape, lit := ClassifyLike(pattern)
	pred := likePred(shape, lit, pattern)
	k := 0
	if sel == nil {
		for i := 0; i < n; i++ {
			if pred(a[i]) {
				res[k] = int32(i)
				k++
			}
		}
		return k
	}
	for _, i := range sel[:n] {
		if pred(a[i]) {
			res[k] = i
			k++
		}
	}
	return k
}

// SelNotLike selects live i where a[i] does not match pattern.
func SelNotLike(res []int32, a []string, pattern string, sel []int32, n int) int {
	shape, lit := ClassifyLike(pattern)
	pred := likePred(shape, lit, pattern)
	k := 0
	if sel == nil {
		for i := 0; i < n; i++ {
			if !pred(a[i]) {
				res[k] = int32(i)
				k++
			}
		}
		return k
	}
	for _, i := range sel[:n] {
		if !pred(a[i]) {
			res[k] = i
			k++
		}
	}
	return k
}

// MapLike computes dst[i] = (a[i] LIKE pattern) for live i.
func MapLike(dst []bool, a []string, pattern string, sel []int32, n int) {
	shape, lit := ClassifyLike(pattern)
	pred := likePred(shape, lit, pattern)
	if sel == nil {
		for i := 0; i < n; i++ {
			dst[i] = pred(a[i])
		}
		return
	}
	for _, i := range sel[:n] {
		dst[i] = pred(a[i])
	}
}

func likePred(shape LikeShape, lit, pattern string) func(string) bool {
	switch shape {
	case LikeExact:
		return func(s string) bool { return s == lit }
	case LikePrefix:
		return func(s string) bool { return strings.HasPrefix(s, lit) }
	case LikeSuffix:
		return func(s string) bool { return strings.HasSuffix(s, lit) }
	case LikeContains:
		return func(s string) bool { return strings.Contains(s, lit) }
	default:
		return func(s string) bool { return MatchLike(s, pattern) }
	}
}
