// Package primitives contains the vectorized kernels of the X100 engine:
// tight loops over typed slices, each processing a whole vector per call.
//
// Design rules (these are the paper's performance argument, so they are
// enforced across the package):
//
//   - No interface values, closures or per-element function calls inside
//     a kernel loop. Each kernel is monomorphic after instantiation.
//   - Every kernel takes an optional selection vector `sel` (live
//     positions, ascending). A nil sel means positions 0..n-1 are live.
//   - Comparison kernels *produce* selection vectors rather than copying
//     data, so filters are free of data movement.
//   - Kernels never inspect null indicators: the rewriter's NULL
//     decomposition (paper §I-B) guarantees NULL-free inputs.
//
// The naming follows X100 conventions: Map* kernels compute a value per
// live row, Sel* kernels emit a selection vector, Agg* kernels update
// accumulators addressed by group ids, Hash* kernels build hash vectors.
// Suffixes VV and VC distinguish vector⊕vector from vector⊕constant.
package primitives

// Number constrains the arithmetic kernel element types. Dates share the
// int64 instantiation.
type Number interface {
	~int64 | ~float64
}

// Ordered constrains comparison kernels; strings compare lexically.
type Ordered interface {
	~int64 | ~float64 | ~string
}

// MapAddVV computes dst[i] = a[i] + b[i] for each live i.
func MapAddVV[T Number](dst, a, b []T, sel []int32, n int) {
	if sel == nil {
		_ = dst[n-1]
		for i := 0; i < n; i++ {
			dst[i] = a[i] + b[i]
		}
		return
	}
	for _, i := range sel[:n] {
		dst[i] = a[i] + b[i]
	}
}

// MapAddVC computes dst[i] = a[i] + c for each live i.
func MapAddVC[T Number](dst, a []T, c T, sel []int32, n int) {
	if sel == nil {
		_ = dst[n-1]
		for i := 0; i < n; i++ {
			dst[i] = a[i] + c
		}
		return
	}
	for _, i := range sel[:n] {
		dst[i] = a[i] + c
	}
}

// MapSubVV computes dst[i] = a[i] - b[i] for each live i.
func MapSubVV[T Number](dst, a, b []T, sel []int32, n int) {
	if sel == nil {
		_ = dst[n-1]
		for i := 0; i < n; i++ {
			dst[i] = a[i] - b[i]
		}
		return
	}
	for _, i := range sel[:n] {
		dst[i] = a[i] - b[i]
	}
}

// MapSubVC computes dst[i] = a[i] - c for each live i.
func MapSubVC[T Number](dst, a []T, c T, sel []int32, n int) {
	MapAddVC(dst, a, -c, sel, n)
}

// MapSubCV computes dst[i] = c - a[i] for each live i.
func MapSubCV[T Number](dst []T, c T, a []T, sel []int32, n int) {
	if sel == nil {
		_ = dst[n-1]
		for i := 0; i < n; i++ {
			dst[i] = c - a[i]
		}
		return
	}
	for _, i := range sel[:n] {
		dst[i] = c - a[i]
	}
}

// MapMulVV computes dst[i] = a[i] * b[i] for each live i.
func MapMulVV[T Number](dst, a, b []T, sel []int32, n int) {
	if sel == nil {
		_ = dst[n-1]
		for i := 0; i < n; i++ {
			dst[i] = a[i] * b[i]
		}
		return
	}
	for _, i := range sel[:n] {
		dst[i] = a[i] * b[i]
	}
}

// MapMulVC computes dst[i] = a[i] * c for each live i.
func MapMulVC[T Number](dst, a []T, c T, sel []int32, n int) {
	if sel == nil {
		_ = dst[n-1]
		for i := 0; i < n; i++ {
			dst[i] = a[i] * c
		}
		return
	}
	for _, i := range sel[:n] {
		dst[i] = a[i] * c
	}
}

// MapDivVV computes dst[i] = a[i] / b[i] for each live i. Integer
// division by zero yields 0 (the SQL layer guards with a NULL indicator;
// the kernel must stay total).
func MapDivVV[T Number](dst, a, b []T, sel []int32, n int) {
	if sel == nil {
		_ = dst[n-1]
		for i := 0; i < n; i++ {
			if b[i] == 0 {
				dst[i] = 0
				continue
			}
			dst[i] = a[i] / b[i]
		}
		return
	}
	for _, i := range sel[:n] {
		if b[i] == 0 {
			dst[i] = 0
			continue
		}
		dst[i] = a[i] / b[i]
	}
}

// MapDivVC computes dst[i] = a[i] / c for each live i (c must be nonzero;
// the expression compiler folds the guard).
func MapDivVC[T Number](dst, a []T, c T, sel []int32, n int) {
	if c == 0 {
		MapConst(dst, 0, sel, n)
		return
	}
	if sel == nil {
		_ = dst[n-1]
		for i := 0; i < n; i++ {
			dst[i] = a[i] / c
		}
		return
	}
	for _, i := range sel[:n] {
		dst[i] = a[i] / c
	}
}

// MapNegV computes dst[i] = -a[i] for each live i.
func MapNegV[T Number](dst, a []T, sel []int32, n int) {
	MapSubCV(dst, 0, a, sel, n)
}

// MapConst broadcasts a constant over the live rows.
func MapConst[T any](dst []T, c T, sel []int32, n int) {
	if sel == nil {
		for i := 0; i < n; i++ {
			dst[i] = c
		}
		return
	}
	for _, i := range sel[:n] {
		dst[i] = c
	}
}

// MapCopy copies the live rows of src into dst at the same positions.
func MapCopy[T any](dst, src []T, sel []int32, n int) {
	if sel == nil {
		copy(dst[:n], src[:n])
		return
	}
	for _, i := range sel[:n] {
		dst[i] = src[i]
	}
}

// MapI64ToF64 widens integers to doubles for each live i.
func MapI64ToF64(dst []float64, a []int64, sel []int32, n int) {
	if sel == nil {
		_ = dst[n-1]
		for i := 0; i < n; i++ {
			dst[i] = float64(a[i])
		}
		return
	}
	for _, i := range sel[:n] {
		dst[i] = float64(a[i])
	}
}

// MapF64ToI64 truncates doubles to integers for each live i.
func MapF64ToI64(dst []int64, a []float64, sel []int32, n int) {
	if sel == nil {
		_ = dst[n-1]
		for i := 0; i < n; i++ {
			dst[i] = int64(a[i])
		}
		return
	}
	for _, i := range sel[:n] {
		dst[i] = int64(a[i])
	}
}
