package primitives

// Aggregation kernels update accumulator arrays addressed by per-row
// group ids, the X100 pattern for vectorized grouped aggregation: the
// hash-aggregate operator first translates each live row to a dense
// group id, then fires one Agg* kernel per aggregate function.

// AggSum adds vals into acc at the rows' group ids.
func AggSum[T Number](acc []T, groups []uint32, vals []T, sel []int32, n int) {
	if sel == nil {
		for i := 0; i < n; i++ {
			acc[groups[i]] += vals[i]
		}
		return
	}
	for _, i := range sel[:n] {
		acc[groups[i]] += vals[i]
	}
}

// AggCount increments counters at the rows' group ids.
func AggCount(acc []int64, groups []uint32, sel []int32, n int) {
	if sel == nil {
		for i := 0; i < n; i++ {
			acc[groups[i]]++
		}
		return
	}
	for _, i := range sel[:n] {
		acc[groups[i]]++
	}
}

// AggCountN adds per-row counts (used to combine partial aggregates
// produced below exchange operators).
func AggCountN(acc []int64, groups []uint32, counts []int64, sel []int32, n int) {
	if sel == nil {
		for i := 0; i < n; i++ {
			acc[groups[i]] += counts[i]
		}
		return
	}
	for _, i := range sel[:n] {
		acc[groups[i]] += counts[i]
	}
}

// AggMin lowers acc to vals where smaller. seen tracks initialization
// (first value always wins).
func AggMin[T Ordered](acc []T, seen []bool, groups []uint32, vals []T, sel []int32, n int) {
	upd := func(i int32) {
		g := groups[i]
		if !seen[g] || vals[i] < acc[g] {
			acc[g] = vals[i]
			seen[g] = true
		}
	}
	if sel == nil {
		for i := 0; i < n; i++ {
			upd(int32(i))
		}
		return
	}
	for _, i := range sel[:n] {
		upd(i)
	}
}

// AggMax raises acc to vals where larger.
func AggMax[T Ordered](acc []T, seen []bool, groups []uint32, vals []T, sel []int32, n int) {
	upd := func(i int32) {
		g := groups[i]
		if !seen[g] || vals[i] > acc[g] {
			acc[g] = vals[i]
			seen[g] = true
		}
	}
	if sel == nil {
		for i := 0; i < n; i++ {
			upd(int32(i))
		}
		return
	}
	for _, i := range sel[:n] {
		upd(i)
	}
}

// Reduction kernels: whole-vector aggregates without grouping, used by
// ungrouped aggregation (e.g. TPC-H Q6) where no group-id indirection is
// needed at all.

// ReduceSum returns the sum of the live rows of a.
func ReduceSum[T Number](a []T, sel []int32, n int) T {
	var s T
	if sel == nil {
		for i := 0; i < n; i++ {
			s += a[i]
		}
		return s
	}
	for _, i := range sel[:n] {
		s += a[i]
	}
	return s
}

// ReduceMin returns the minimum of the live rows of a and whether any
// row was live.
func ReduceMin[T Ordered](a []T, sel []int32, n int) (T, bool) {
	var m T
	first := true
	if sel == nil {
		for i := 0; i < n; i++ {
			if first || a[i] < m {
				m = a[i]
				first = false
			}
		}
		return m, !first
	}
	for _, i := range sel[:n] {
		if first || a[i] < m {
			m = a[i]
			first = false
		}
	}
	return m, !first
}

// ReduceMax returns the maximum of the live rows of a and whether any
// row was live.
func ReduceMax[T Ordered](a []T, sel []int32, n int) (T, bool) {
	var m T
	first := true
	if sel == nil {
		for i := 0; i < n; i++ {
			if first || a[i] > m {
				m = a[i]
				first = false
			}
		}
		return m, !first
	}
	for _, i := range sel[:n] {
		if first || a[i] > m {
			m = a[i]
			first = false
		}
	}
	return m, !first
}
