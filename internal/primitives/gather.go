package primitives

// Gather/scatter kernels move data between vector positions through an
// index vector; hash join probe output and exchange repartitioning are
// built on them.

// Gather writes dst[i] = src[idx[i]] for i in [0,n).
func Gather[T any](dst, src []T, idx []uint32, n int) {
	_ = dst[n-1]
	for i := 0; i < n; i++ {
		dst[i] = src[idx[i]]
	}
}

// GatherSel writes dst[i] = src[idx[sel[i]]] for live rows, compacting
// the result densely into dst[0..n).
func GatherSel[T any](dst, src []T, idx []uint32, sel []int32, n int) {
	if sel == nil {
		Gather(dst, src, idx, n)
		return
	}
	for k, i := range sel[:n] {
		dst[k] = src[idx[i]]
	}
}

// Scatter writes dst[idx[i]] = src[i] for i in [0,n).
func Scatter[T any](dst, src []T, idx []uint32, n int) {
	for i := 0; i < n; i++ {
		dst[idx[i]] = src[i]
	}
}

// CompactSel writes dst[k] = src[sel[k]] for k in [0,n): the move from a
// selected batch to a dense one.
func CompactSel[T any](dst, src []T, sel []int32, n int) {
	if sel == nil {
		copy(dst[:n], src[:n])
		return
	}
	for k, i := range sel[:n] {
		dst[k] = src[i]
	}
}
