package primitives

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func i64s(vs ...int64) []int64     { return vs }
func f64s(vs ...float64) []float64 { return vs }

func TestMapAddVV(t *testing.T) {
	dst := make([]int64, 4)
	MapAddVV(dst, i64s(1, 2, 3, 4), i64s(10, 20, 30, 40), nil, 4)
	want := []int64{11, 22, 33, 44}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("dense add wrong: %v", dst)
		}
	}
	// Selected: only positions 1 and 3 are touched.
	dst2 := make([]int64, 4)
	MapAddVV(dst2, i64s(1, 2, 3, 4), i64s(10, 20, 30, 40), []int32{1, 3}, 2)
	if dst2[0] != 0 || dst2[1] != 22 || dst2[2] != 0 || dst2[3] != 44 {
		t.Fatalf("selected add wrong: %v", dst2)
	}
}

func TestMapArithVC(t *testing.T) {
	dst := make([]float64, 3)
	MapAddVC(dst, f64s(1, 2, 3), 0.5, nil, 3)
	if dst[2] != 3.5 {
		t.Fatal("MapAddVC wrong")
	}
	MapSubVC(dst, f64s(1, 2, 3), 1, nil, 3)
	if dst[0] != 0 {
		t.Fatal("MapSubVC wrong")
	}
	MapSubCV(dst, 10, f64s(1, 2, 3), nil, 3)
	if dst[0] != 9 || dst[2] != 7 {
		t.Fatal("MapSubCV wrong")
	}
	MapMulVC(dst, f64s(1, 2, 3), 2, nil, 3)
	if dst[2] != 6 {
		t.Fatal("MapMulVC wrong")
	}
	MapDivVC(dst, f64s(2, 4, 6), 2, nil, 3)
	if dst[2] != 3 {
		t.Fatal("MapDivVC wrong")
	}
	MapNegV(dst, f64s(1, -2, 3), nil, 3)
	if dst[1] != 2 {
		t.Fatal("MapNegV wrong")
	}
}

func TestMapMulSubVV(t *testing.T) {
	dst := make([]int64, 2)
	MapMulVV(dst, i64s(3, 4), i64s(5, 6), nil, 2)
	if dst[0] != 15 || dst[1] != 24 {
		t.Fatal("MapMulVV wrong")
	}
	MapSubVV(dst, i64s(3, 4), i64s(5, 6), nil, 2)
	if dst[0] != -2 {
		t.Fatal("MapSubVV wrong")
	}
}

func TestDivByZeroIsTotal(t *testing.T) {
	dst := make([]int64, 2)
	MapDivVV(dst, i64s(10, 10), i64s(0, 2), nil, 2)
	if dst[0] != 0 || dst[1] != 5 {
		t.Fatalf("div by zero must yield 0, got %v", dst)
	}
	MapDivVC(dst, i64s(10, 20), 0, nil, 2)
	if dst[0] != 0 || dst[1] != 0 {
		t.Fatal("div by const zero must yield 0")
	}
	// Selected variant too.
	dst2 := make([]int64, 2)
	MapDivVV(dst2, i64s(10, 10), i64s(0, 2), []int32{0, 1}, 2)
	if dst2[0] != 0 || dst2[1] != 5 {
		t.Fatal("selected div by zero wrong")
	}
}

func TestMapConstAndCopy(t *testing.T) {
	dst := make([]string, 3)
	MapConst(dst, "x", nil, 3)
	if dst[2] != "x" {
		t.Fatal("MapConst wrong")
	}
	src := []string{"a", "b", "c"}
	dst2 := make([]string, 3)
	MapCopy(dst2, src, []int32{2}, 1)
	if dst2[2] != "c" || dst2[0] != "" {
		t.Fatal("MapCopy sel wrong")
	}
}

func TestCasts(t *testing.T) {
	f := make([]float64, 2)
	MapI64ToF64(f, i64s(1, 2), nil, 2)
	if f[1] != 2.0 {
		t.Fatal("MapI64ToF64 wrong")
	}
	i := make([]int64, 2)
	MapF64ToI64(i, f64s(1.9, -1.9), nil, 2)
	if i[0] != 1 || i[1] != -1 {
		t.Fatal("MapF64ToI64 must truncate toward zero")
	}
	// Selected variants.
	f2 := make([]float64, 2)
	MapI64ToF64(f2, i64s(5, 7), []int32{1}, 1)
	if f2[0] != 0 || f2[1] != 7 {
		t.Fatal("selected cast wrong")
	}
	i2 := make([]int64, 2)
	MapF64ToI64(i2, f64s(5.5, 7.7), []int32{0}, 1)
	if i2[0] != 5 || i2[1] != 0 {
		t.Fatal("selected cast wrong")
	}
}

func TestSelVCKernels(t *testing.T) {
	a := i64s(5, 1, 7, 3, 7)
	res := make([]int32, 5)

	if n := SelEqVC(res, a, 7, nil, 5); n != 2 || res[0] != 2 || res[1] != 4 {
		t.Fatalf("SelEqVC: n=%d res=%v", n, res[:n])
	}
	if n := SelNeVC(res, a, 7, nil, 5); n != 3 {
		t.Fatalf("SelNeVC: n=%d", n)
	}
	if n := SelLtVC(res, a, 5, nil, 5); n != 2 || res[0] != 1 || res[1] != 3 {
		t.Fatalf("SelLtVC: n=%d res=%v", n, res[:n])
	}
	if n := SelLeVC(res, a, 5, nil, 5); n != 3 {
		t.Fatalf("SelLeVC: n=%d", n)
	}
	if n := SelGtVC(res, a, 5, nil, 5); n != 2 {
		t.Fatalf("SelGtVC: n=%d", n)
	}
	if n := SelGeVC(res, a, 5, nil, 5); n != 3 {
		t.Fatalf("SelGeVC: n=%d", n)
	}
	if n := SelBetweenVC(res, a, 3, 6, nil, 5); n != 2 || res[0] != 0 || res[1] != 3 {
		t.Fatalf("SelBetweenVC: n=%d res=%v", n, res[:n])
	}

	// Chaining through an input selection vector.
	sel := []int32{0, 2, 4} // values 5,7,7
	if n := SelEqVC(res, a, 7, sel, 3); n != 2 || res[0] != 2 || res[1] != 4 {
		t.Fatalf("chained SelEqVC: n=%d res=%v", n, res[:n])
	}
	if n := SelLtVC(res, a, 6, sel, 3); n != 1 || res[0] != 0 {
		t.Fatalf("chained SelLtVC: n=%d", n)
	}
	if n := SelNeVC(res, a, 5, sel, 3); n != 2 {
		t.Fatalf("chained SelNeVC: n=%d", n)
	}
	if n := SelLeVC(res, a, 5, sel, 3); n != 1 {
		t.Fatalf("chained SelLeVC: n=%d", n)
	}
	if n := SelGtVC(res, a, 5, sel, 3); n != 2 {
		t.Fatalf("chained SelGtVC: n=%d", n)
	}
	if n := SelGeVC(res, a, 7, sel, 3); n != 2 {
		t.Fatalf("chained SelGeVC: n=%d", n)
	}
	if n := SelBetweenVC(res, a, 6, 8, sel, 3); n != 2 {
		t.Fatalf("chained SelBetweenVC: n=%d", n)
	}
}

func TestSelVCStrings(t *testing.T) {
	a := []string{"apple", "pear", "fig"}
	res := make([]int32, 3)
	if n := SelLtVC(res, a, "mango", nil, 3); n != 2 || res[0] != 0 || res[1] != 2 {
		t.Fatalf("string SelLtVC: %v", res[:n])
	}
}

func TestSelVVKernels(t *testing.T) {
	a := i64s(1, 5, 3)
	b := i64s(2, 5, 1)
	res := make([]int32, 3)
	if n := SelEqVV(res, a, b, nil, 3); n != 1 || res[0] != 1 {
		t.Fatal("SelEqVV wrong")
	}
	if n := SelNeVV(res, a, b, nil, 3); n != 2 {
		t.Fatal("SelNeVV wrong")
	}
	if n := SelLtVV(res, a, b, nil, 3); n != 1 || res[0] != 0 {
		t.Fatal("SelLtVV wrong")
	}
	if n := SelLeVV(res, a, b, nil, 3); n != 2 {
		t.Fatal("SelLeVV wrong")
	}
	if n := SelGtVV(res, a, b, nil, 3); n != 1 || res[0] != 2 {
		t.Fatal("SelGtVV wrong")
	}
	if n := SelGeVV(res, a, b, nil, 3); n != 2 {
		t.Fatal("SelGeVV wrong")
	}
	sel := []int32{0, 2}
	if n := SelEqVV(res, a, b, sel, 2); n != 0 {
		t.Fatal("chained SelEqVV wrong")
	}
	if n := SelNeVV(res, a, b, sel, 2); n != 2 {
		t.Fatal("chained SelNeVV wrong")
	}
	if n := SelLtVV(res, a, b, sel, 2); n != 1 {
		t.Fatal("chained SelLtVV wrong")
	}
	if n := SelLeVV(res, a, b, sel, 2); n != 1 {
		t.Fatal("chained SelLeVV wrong")
	}
}

func TestSelTrueFalse(t *testing.T) {
	a := []bool{true, false, true}
	res := make([]int32, 3)
	if n := SelTrue(res, a, nil, 3); n != 2 || res[0] != 0 || res[1] != 2 {
		t.Fatal("SelTrue wrong")
	}
	if n := SelFalse(res, a, nil, 3); n != 1 || res[0] != 1 {
		t.Fatal("SelFalse wrong")
	}
	sel := []int32{1, 2}
	if n := SelTrue(res, a, sel, 2); n != 1 || res[0] != 2 {
		t.Fatal("chained SelTrue wrong")
	}
	if n := SelFalse(res, a, sel, 2); n != 1 || res[0] != 1 {
		t.Fatal("chained SelFalse wrong")
	}
}

func TestMapComparisons(t *testing.T) {
	a := i64s(1, 5, 3)
	dst := make([]bool, 3)
	MapEqVC(dst, a, 5, nil, 3)
	if dst[0] || !dst[1] || dst[2] {
		t.Fatal("MapEqVC wrong")
	}
	MapNeVC(dst, a, 5, nil, 3)
	if !dst[0] || dst[1] {
		t.Fatal("MapNeVC wrong")
	}
	MapLtVC(dst, a, 3, nil, 3)
	if !dst[0] || dst[2] {
		t.Fatal("MapLtVC wrong")
	}
	MapLeVC(dst, a, 3, nil, 3)
	if !dst[2] || dst[1] {
		t.Fatal("MapLeVC wrong")
	}
	MapGtVC(dst, a, 3, nil, 3)
	if !dst[1] || dst[2] {
		t.Fatal("MapGtVC wrong")
	}
	MapGeVC(dst, a, 3, nil, 3)
	if !dst[1] || !dst[2] || dst[0] {
		t.Fatal("MapGeVC wrong")
	}
	b := i64s(1, 4, 9)
	MapEqVV(dst, a, b, nil, 3)
	if !dst[0] || dst[1] {
		t.Fatal("MapEqVV wrong")
	}
	MapNeVV(dst, a, b, nil, 3)
	if dst[0] || !dst[1] {
		t.Fatal("MapNeVV wrong")
	}
	MapLtVV(dst, a, b, nil, 3)
	if dst[0] || dst[1] || !dst[2] {
		t.Fatal("MapLtVV wrong")
	}
	MapLeVV(dst, a, b, nil, 3)
	if !dst[0] || dst[1] || !dst[2] {
		t.Fatal("MapLeVV wrong")
	}
	// Selected variants only touch live slots.
	dst2 := make([]bool, 3)
	MapEqVC(dst2, a, 1, []int32{0}, 1)
	if !dst2[0] || dst2[1] || dst2[2] {
		t.Fatal("selected MapEqVC wrong")
	}
}

func TestLogicKernels(t *testing.T) {
	a := []bool{true, true, false, false}
	b := []bool{true, false, true, false}
	dst := make([]bool, 4)
	MapAnd(dst, a, b, nil, 4)
	if !dst[0] || dst[1] || dst[2] || dst[3] {
		t.Fatal("MapAnd wrong")
	}
	MapOr(dst, a, b, nil, 4)
	if !dst[0] || !dst[1] || !dst[2] || dst[3] {
		t.Fatal("MapOr wrong")
	}
	MapNot(dst, a, nil, 4)
	if dst[0] || !dst[2] {
		t.Fatal("MapNot wrong")
	}
	sel := []int32{1, 3}
	d2 := make([]bool, 4)
	MapAnd(d2, a, a, sel, 2)
	if d2[0] || !d2[1] || d2[2] || d2[3] {
		t.Fatal("selected MapAnd wrong")
	}
	MapOr(d2, b, b, sel, 2)
	if d2[3] {
		t.Fatal("selected MapOr wrong")
	}
	MapNot(d2, a, sel, 2)
	if d2[1] || !d2[3] {
		t.Fatal("selected MapNot wrong")
	}
}

func TestInSet(t *testing.T) {
	a := []string{"DE", "FR", "US", "NL"}
	res := make([]int32, 4)
	if n := SelInSet(res, a, []string{"FR", "NL"}, nil, 4); n != 2 || res[0] != 1 || res[1] != 3 {
		t.Fatalf("SelInSet: %v", res[:n])
	}
	if n := SelInSet(res, a, []string{"FR", "NL"}, []int32{0, 1}, 2); n != 1 {
		t.Fatal("chained SelInSet wrong")
	}
	dst := make([]bool, 4)
	MapInSet(dst, a, []string{"US"}, nil, 4)
	if !dst[2] || dst[0] {
		t.Fatal("MapInSet wrong")
	}
	MapInSet(dst, a, []string{"DE"}, []int32{0}, 1)
	if !dst[0] {
		t.Fatal("selected MapInSet wrong")
	}
}

func TestNullSelectors(t *testing.T) {
	nulls := []bool{false, true, false}
	res := make([]int32, 3)
	if n := SelIsNull(res, nulls, nil, 3); n != 1 || res[0] != 1 {
		t.Fatal("SelIsNull wrong")
	}
	if n := SelIsNotNull(res, nulls, nil, 3); n != 2 {
		t.Fatal("SelIsNotNull wrong")
	}
}

func TestSelOutputAscendingProperty(t *testing.T) {
	f := func(vals []int64, c int64) bool {
		res := make([]int32, len(vals))
		n := SelLtVC(res, vals, c, nil, len(vals))
		for i := 1; i < n; i++ {
			if res[i] <= res[i-1] {
				return false
			}
		}
		// Cross-check count against a scalar loop.
		cnt := 0
		for _, v := range vals {
			if v < c {
				cnt++
			}
		}
		return cnt == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHashKernels(t *testing.T) {
	a := i64s(1, 2, 1)
	h := make([]uint64, 3)
	HashI64(h, a, nil, 3)
	if h[0] != h[2] {
		t.Fatal("equal values must hash equal")
	}
	if h[0] == h[1] {
		t.Fatal("1 and 2 collide (suspicious)")
	}
	// Rehash changes and stays consistent.
	h2 := make([]uint64, 3)
	copy(h2, h)
	RehashI64(h2, i64s(9, 9, 9), nil, 3)
	if h2[0] == h[0] {
		t.Fatal("rehash must change hash")
	}
	if h2[0] != h2[2] {
		t.Fatal("rehash must stay consistent for equal prefixes")
	}

	f := []float64{1.5, 0.0}
	hf := make([]uint64, 2)
	HashF64(hf, f, nil, 2)
	hneg := make([]uint64, 2)
	HashF64(hneg, []float64{1.5, negZero()}, nil, 2)
	if hf[1] != hneg[1] {
		t.Fatal("-0.0 must hash like +0.0")
	}

	s := []string{"ab", "ab", "ba"}
	hs := make([]uint64, 3)
	HashStr(hs, s, nil, 3)
	if hs[0] != hs[1] || hs[0] == hs[2] {
		t.Fatal("string hash wrong")
	}

	bb := []bool{true, false, true}
	hb := make([]uint64, 3)
	HashBool(hb, bb, nil, 3)
	if hb[0] != hb[2] || hb[0] == hb[1] {
		t.Fatal("bool hash wrong")
	}

	// Selected variants.
	hsel := make([]uint64, 3)
	HashI64(hsel, a, []int32{1}, 1)
	if hsel[1] != h[1] || hsel[0] != 0 {
		t.Fatal("selected HashI64 wrong")
	}
	RehashF64(hf, f, nil, 2)
	RehashStr(hs, s, nil, 3)
	RehashBool(hb, bb, nil, 3)
	if hs[0] != hs[1] {
		t.Fatal("RehashStr must stay consistent")
	}
	RehashF64(hf, f, []int32{0}, 1)
	RehashStr(hs, s, []int32{0}, 1)
	RehashBool(hb, bb, []int32{0}, 1)
	RehashI64(h, a, []int32{0}, 1)

	m := make([]uint64, 3)
	BucketMask(m, hs, 7, nil, 3)
	if m[0] > 7 {
		t.Fatal("BucketMask wrong")
	}
	BucketMask(m, hs, 7, []int32{2}, 1)
}

func negZero() float64 { z := 0.0; return -z }

func TestAggKernels(t *testing.T) {
	groups := []uint32{0, 1, 0, 1, 0}
	vals := i64s(1, 10, 2, 20, 3)
	acc := make([]int64, 2)
	AggSum(acc, groups, vals, nil, 5)
	if acc[0] != 6 || acc[1] != 30 {
		t.Fatalf("AggSum wrong: %v", acc)
	}
	cnt := make([]int64, 2)
	AggCount(cnt, groups, nil, 5)
	if cnt[0] != 3 || cnt[1] != 2 {
		t.Fatalf("AggCount wrong: %v", cnt)
	}
	cn := make([]int64, 2)
	AggCountN(cn, groups, i64s(2, 2, 2, 2, 2), nil, 5)
	if cn[0] != 6 || cn[1] != 4 {
		t.Fatalf("AggCountN wrong: %v", cn)
	}
	mn := make([]int64, 2)
	mx := make([]int64, 2)
	seen1 := make([]bool, 2)
	seen2 := make([]bool, 2)
	AggMin(mn, seen1, groups, vals, nil, 5)
	AggMax(mx, seen2, groups, vals, nil, 5)
	if mn[0] != 1 || mn[1] != 10 || mx[0] != 3 || mx[1] != 20 {
		t.Fatalf("AggMin/Max wrong: %v %v", mn, mx)
	}
	// Selected.
	acc2 := make([]int64, 2)
	AggSum(acc2, groups, vals, []int32{0, 4}, 2)
	if acc2[0] != 4 || acc2[1] != 0 {
		t.Fatal("selected AggSum wrong")
	}
	cnt2 := make([]int64, 2)
	AggCount(cnt2, groups, []int32{1}, 1)
	if cnt2[1] != 1 {
		t.Fatal("selected AggCount wrong")
	}
	AggCountN(cn, groups, i64s(1, 1, 1, 1, 1), []int32{1}, 1)
	AggMin(mn, seen1, groups, vals, []int32{1}, 1)
	AggMax(mx, seen2, groups, vals, []int32{1}, 1)
}

func TestAggMinFirstValueWins(t *testing.T) {
	// A value larger than the zero-initialized accumulator must still
	// be taken as the first minimum (the seen flag guards it).
	acc := []int64{0}
	seen := []bool{false}
	AggMin(acc, seen, []uint32{0}, i64s(42), nil, 1)
	if acc[0] != 42 {
		t.Fatal("first value must initialize min accumulator")
	}
	// And for max with negatives.
	acc2 := []int64{0}
	seen2 := []bool{false}
	AggMax(acc2, seen2, []uint32{0}, i64s(-42), nil, 1)
	if acc2[0] != -42 {
		t.Fatal("first value must initialize max accumulator")
	}
}

func TestReduceKernels(t *testing.T) {
	a := f64s(1, 2, 3, 4)
	if s := ReduceSum(a, nil, 4); s != 10 {
		t.Fatal("ReduceSum wrong")
	}
	if s := ReduceSum(a, []int32{0, 3}, 2); s != 5 {
		t.Fatal("selected ReduceSum wrong")
	}
	if m, ok := ReduceMin(a, nil, 4); !ok || m != 1 {
		t.Fatal("ReduceMin wrong")
	}
	if m, ok := ReduceMax(a, nil, 4); !ok || m != 4 {
		t.Fatal("ReduceMax wrong")
	}
	if _, ok := ReduceMin(a, nil, 0); ok {
		t.Fatal("empty ReduceMin must report no value")
	}
	if _, ok := ReduceMax(a, []int32{}, 0); ok {
		t.Fatal("empty ReduceMax must report no value")
	}
	if m, ok := ReduceMin(a, []int32{1, 2}, 2); !ok || m != 2 {
		t.Fatal("selected ReduceMin wrong")
	}
	if m, ok := ReduceMax(a, []int32{1, 2}, 2); !ok || m != 3 {
		t.Fatal("selected ReduceMax wrong")
	}
}

func TestGatherScatter(t *testing.T) {
	src := []int64{10, 20, 30, 40}
	dst := make([]int64, 3)
	Gather(dst, src, []uint32{3, 0, 2}, 3)
	if dst[0] != 40 || dst[1] != 10 || dst[2] != 30 {
		t.Fatalf("Gather wrong: %v", dst)
	}
	d2 := make([]int64, 2)
	GatherSel(d2, src, []uint32{3, 0, 2, 1}, []int32{1, 3}, 2)
	if d2[0] != 10 || d2[1] != 20 {
		t.Fatalf("GatherSel wrong: %v", d2)
	}
	GatherSel(d2, src, []uint32{1, 2}, nil, 2)
	if d2[0] != 20 {
		t.Fatal("dense GatherSel wrong")
	}
	out := make([]int64, 4)
	Scatter(out, []int64{1, 2}, []uint32{2, 0}, 2)
	if out[2] != 1 || out[0] != 2 {
		t.Fatalf("Scatter wrong: %v", out)
	}
	c := make([]int64, 2)
	CompactSel(c, src, []int32{1, 3}, 2)
	if c[0] != 20 || c[1] != 40 {
		t.Fatal("CompactSel wrong")
	}
	CompactSel(c, src, nil, 2)
	if c[0] != 10 {
		t.Fatal("dense CompactSel wrong")
	}
}

func TestClassifyLike(t *testing.T) {
	cases := []struct {
		pat   string
		shape LikeShape
		lit   string
	}{
		{"hello", LikeExact, "hello"},
		{"pre%", LikePrefix, "pre"},
		{"%suf", LikeSuffix, "suf"},
		{"%mid%", LikeContains, "mid"},
		{"a%b", LikeGeneral, "a%b"},
		{"a_c", LikeGeneral, "a_c"},
		{"%a%b%", LikeGeneral, "%a%b%"},
	}
	for _, c := range cases {
		shape, lit := ClassifyLike(c.pat)
		if shape != c.shape || lit != c.lit {
			t.Errorf("ClassifyLike(%q) = (%d,%q), want (%d,%q)", c.pat, shape, lit, c.shape, c.lit)
		}
	}
}

func TestMatchLike(t *testing.T) {
	cases := []struct {
		s, pat string
		want   bool
	}{
		{"forest green metallic", "%green%", true},
		{"forest blue", "%green%", false},
		{"special packages requests", "%special%requests%", true},
		{"special requests", "%special%requests%", true},
		{"requests special", "%special%requests%", false},
		{"abc", "a_c", true},
		{"ac", "a_c", false},
		{"abc", "abc", true},
		{"abc", "ab", false},
		{"", "%", true},
		{"", "", true},
		{"x", "", false},
		{"anything", "%%", true},
		{"ab", "a%b%c", false},
		{"a-b-c", "a%b%c", true},
	}
	for _, c := range cases {
		if got := MatchLike(c.s, c.pat); got != c.want {
			t.Errorf("MatchLike(%q,%q) = %v, want %v", c.s, c.pat, got, c.want)
		}
	}
}

func TestSelLikeDispatch(t *testing.T) {
	a := []string{"green apple", "dark green", "blue", "green"}
	res := make([]int32, 4)
	if n := SelLike(res, a, "green%", nil, 4); n != 2 || res[0] != 0 || res[1] != 3 {
		t.Fatalf("prefix like: %v", res[:n])
	}
	if n := SelLike(res, a, "%green", nil, 4); n != 2 || res[0] != 1 || res[1] != 3 {
		t.Fatalf("suffix like: %v", res[:n])
	}
	if n := SelLike(res, a, "%green%", nil, 4); n != 3 {
		t.Fatalf("contains like: n=%d", n)
	}
	if n := SelLike(res, a, "blue", nil, 4); n != 1 || res[0] != 2 {
		t.Fatalf("exact like: %v", res[:n])
	}
	if n := SelLike(res, a, "g%n a%e", nil, 4); n != 1 || res[0] != 0 {
		t.Fatalf("general like: n=%d", n)
	}
	if n := SelLike(res, a, "%a%e", nil, 4); n != 1 || res[0] != 0 {
		t.Fatalf("general like 2: %v", res[:n])
	}
	if n := SelNotLike(res, a, "%green%", nil, 4); n != 1 || res[0] != 2 {
		t.Fatalf("not like: %v", res[:n])
	}
	if n := SelLike(res, a, "%green%", []int32{2, 3}, 2); n != 1 || res[0] != 3 {
		t.Fatal("chained like wrong")
	}
	if n := SelNotLike(res, a, "%green%", []int32{2, 3}, 2); n != 1 || res[0] != 2 {
		t.Fatal("chained not-like wrong")
	}
	dst := make([]bool, 4)
	MapLike(dst, a, "%green%", nil, 4)
	if !dst[0] || dst[2] {
		t.Fatal("MapLike wrong")
	}
	MapLike(dst, a, "blue", []int32{2}, 1)
	if !dst[2] {
		t.Fatal("selected MapLike wrong")
	}
}

func TestMatchLikeAgainstNaiveProperty(t *testing.T) {
	// Compare the backtracking matcher against a recursive reference on
	// random short strings/patterns drawn from a tiny alphabet.
	var ref func(s, p string) bool
	ref = func(s, p string) bool {
		if p == "" {
			return s == ""
		}
		switch p[0] {
		case '%':
			for i := 0; i <= len(s); i++ {
				if ref(s[i:], p[1:]) {
					return true
				}
			}
			return false
		case '_':
			return s != "" && ref(s[1:], p[1:])
		default:
			return s != "" && s[0] == p[0] && ref(s[1:], p[1:])
		}
	}
	rng := rand.New(rand.NewSource(42))
	alpha := "ab%_"
	for trial := 0; trial < 2000; trial++ {
		s := randStr(rng, "ab", 8)
		p := randStr(rng, alpha, 6)
		if MatchLike(s, p) != ref(s, p) {
			t.Fatalf("MatchLike(%q,%q) disagrees with reference", s, p)
		}
	}
}

func randStr(rng *rand.Rand, alpha string, maxLen int) string {
	n := rng.Intn(maxLen + 1)
	b := make([]byte, n)
	for i := range b {
		b[i] = alpha[rng.Intn(len(alpha))]
	}
	return string(b)
}
