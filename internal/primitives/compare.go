package primitives

// Selection kernels: each scans the live rows (sel or dense 0..n-1),
// appends the indexes passing the predicate to res, and returns the
// number selected. res must have capacity >= n. Output order is
// ascending because input order is, which downstream kernels rely on.

// SelEqVC selects live i where a[i] == c.
func SelEqVC[T comparable](res []int32, a []T, c T, sel []int32, n int) int {
	k := 0
	if sel == nil {
		for i := 0; i < n; i++ {
			if a[i] == c {
				res[k] = int32(i)
				k++
			}
		}
		return k
	}
	for _, i := range sel[:n] {
		if a[i] == c {
			res[k] = i
			k++
		}
	}
	return k
}

// SelNeVC selects live i where a[i] != c.
func SelNeVC[T comparable](res []int32, a []T, c T, sel []int32, n int) int {
	k := 0
	if sel == nil {
		for i := 0; i < n; i++ {
			if a[i] != c {
				res[k] = int32(i)
				k++
			}
		}
		return k
	}
	for _, i := range sel[:n] {
		if a[i] != c {
			res[k] = i
			k++
		}
	}
	return k
}

// SelLtVC selects live i where a[i] < c.
func SelLtVC[T Ordered](res []int32, a []T, c T, sel []int32, n int) int {
	k := 0
	if sel == nil {
		for i := 0; i < n; i++ {
			if a[i] < c {
				res[k] = int32(i)
				k++
			}
		}
		return k
	}
	for _, i := range sel[:n] {
		if a[i] < c {
			res[k] = i
			k++
		}
	}
	return k
}

// SelLeVC selects live i where a[i] <= c.
func SelLeVC[T Ordered](res []int32, a []T, c T, sel []int32, n int) int {
	k := 0
	if sel == nil {
		for i := 0; i < n; i++ {
			if a[i] <= c {
				res[k] = int32(i)
				k++
			}
		}
		return k
	}
	for _, i := range sel[:n] {
		if a[i] <= c {
			res[k] = i
			k++
		}
	}
	return k
}

// SelGtVC selects live i where a[i] > c.
func SelGtVC[T Ordered](res []int32, a []T, c T, sel []int32, n int) int {
	k := 0
	if sel == nil {
		for i := 0; i < n; i++ {
			if a[i] > c {
				res[k] = int32(i)
				k++
			}
		}
		return k
	}
	for _, i := range sel[:n] {
		if a[i] > c {
			res[k] = i
			k++
		}
	}
	return k
}

// SelGeVC selects live i where a[i] >= c.
func SelGeVC[T Ordered](res []int32, a []T, c T, sel []int32, n int) int {
	k := 0
	if sel == nil {
		for i := 0; i < n; i++ {
			if a[i] >= c {
				res[k] = int32(i)
				k++
			}
		}
		return k
	}
	for _, i := range sel[:n] {
		if a[i] >= c {
			res[k] = i
			k++
		}
	}
	return k
}

// SelBetweenVC selects live i where lo <= a[i] <= hi, fused to avoid an
// intermediate selection vector for the common BETWEEN pattern.
func SelBetweenVC[T Ordered](res []int32, a []T, lo, hi T, sel []int32, n int) int {
	k := 0
	if sel == nil {
		for i := 0; i < n; i++ {
			if a[i] >= lo && a[i] <= hi {
				res[k] = int32(i)
				k++
			}
		}
		return k
	}
	for _, i := range sel[:n] {
		if a[i] >= lo && a[i] <= hi {
			res[k] = i
			k++
		}
	}
	return k
}

// SelEqVV selects live i where a[i] == b[i].
func SelEqVV[T comparable](res []int32, a, b []T, sel []int32, n int) int {
	k := 0
	if sel == nil {
		for i := 0; i < n; i++ {
			if a[i] == b[i] {
				res[k] = int32(i)
				k++
			}
		}
		return k
	}
	for _, i := range sel[:n] {
		if a[i] == b[i] {
			res[k] = i
			k++
		}
	}
	return k
}

// SelNeVV selects live i where a[i] != b[i].
func SelNeVV[T comparable](res []int32, a, b []T, sel []int32, n int) int {
	k := 0
	if sel == nil {
		for i := 0; i < n; i++ {
			if a[i] != b[i] {
				res[k] = int32(i)
				k++
			}
		}
		return k
	}
	for _, i := range sel[:n] {
		if a[i] != b[i] {
			res[k] = i
			k++
		}
	}
	return k
}

// SelLtVV selects live i where a[i] < b[i].
func SelLtVV[T Ordered](res []int32, a, b []T, sel []int32, n int) int {
	k := 0
	if sel == nil {
		for i := 0; i < n; i++ {
			if a[i] < b[i] {
				res[k] = int32(i)
				k++
			}
		}
		return k
	}
	for _, i := range sel[:n] {
		if a[i] < b[i] {
			res[k] = i
			k++
		}
	}
	return k
}

// SelLeVV selects live i where a[i] <= b[i].
func SelLeVV[T Ordered](res []int32, a, b []T, sel []int32, n int) int {
	k := 0
	if sel == nil {
		for i := 0; i < n; i++ {
			if a[i] <= b[i] {
				res[k] = int32(i)
				k++
			}
		}
		return k
	}
	for _, i := range sel[:n] {
		if a[i] <= b[i] {
			res[k] = i
			k++
		}
	}
	return k
}

// SelGtVV selects live i where a[i] > b[i].
func SelGtVV[T Ordered](res []int32, a, b []T, sel []int32, n int) int {
	return SelLtVV(res, b, a, sel, n)
}

// SelGeVV selects live i where a[i] >= b[i].
func SelGeVV[T Ordered](res []int32, a, b []T, sel []int32, n int) int {
	return SelLeVV(res, b, a, sel, n)
}

// SelTrue selects live i where a[i] is true (used to turn a boolean map
// vector — e.g. the result of an OR — back into a selection vector).
func SelTrue(res []int32, a []bool, sel []int32, n int) int {
	k := 0
	if sel == nil {
		for i := 0; i < n; i++ {
			if a[i] {
				res[k] = int32(i)
				k++
			}
		}
		return k
	}
	for _, i := range sel[:n] {
		if a[i] {
			res[k] = i
			k++
		}
	}
	return k
}

// SelFalse selects live i where a[i] is false.
func SelFalse(res []int32, a []bool, sel []int32, n int) int {
	k := 0
	if sel == nil {
		for i := 0; i < n; i++ {
			if !a[i] {
				res[k] = int32(i)
				k++
			}
		}
		return k
	}
	for _, i := range sel[:n] {
		if !a[i] {
			res[k] = i
			k++
		}
	}
	return k
}

// Map comparison kernels produce boolean vectors instead of selection
// vectors. The expression compiler uses them under disjunctions, where
// both branches must be evaluated over the same live set.

// MapEqVC computes dst[i] = (a[i] == c).
func MapEqVC[T comparable](dst []bool, a []T, c T, sel []int32, n int) {
	if sel == nil {
		_ = dst[n-1]
		for i := 0; i < n; i++ {
			dst[i] = a[i] == c
		}
		return
	}
	for _, i := range sel[:n] {
		dst[i] = a[i] == c
	}
}

// MapNeVC computes dst[i] = (a[i] != c).
func MapNeVC[T comparable](dst []bool, a []T, c T, sel []int32, n int) {
	if sel == nil {
		_ = dst[n-1]
		for i := 0; i < n; i++ {
			dst[i] = a[i] != c
		}
		return
	}
	for _, i := range sel[:n] {
		dst[i] = a[i] != c
	}
}

// MapLtVC computes dst[i] = (a[i] < c).
func MapLtVC[T Ordered](dst []bool, a []T, c T, sel []int32, n int) {
	if sel == nil {
		_ = dst[n-1]
		for i := 0; i < n; i++ {
			dst[i] = a[i] < c
		}
		return
	}
	for _, i := range sel[:n] {
		dst[i] = a[i] < c
	}
}

// MapLeVC computes dst[i] = (a[i] <= c).
func MapLeVC[T Ordered](dst []bool, a []T, c T, sel []int32, n int) {
	if sel == nil {
		_ = dst[n-1]
		for i := 0; i < n; i++ {
			dst[i] = a[i] <= c
		}
		return
	}
	for _, i := range sel[:n] {
		dst[i] = a[i] <= c
	}
}

// MapGtVC computes dst[i] = (a[i] > c).
func MapGtVC[T Ordered](dst []bool, a []T, c T, sel []int32, n int) {
	if sel == nil {
		_ = dst[n-1]
		for i := 0; i < n; i++ {
			dst[i] = a[i] > c
		}
		return
	}
	for _, i := range sel[:n] {
		dst[i] = a[i] > c
	}
}

// MapGeVC computes dst[i] = (a[i] >= c).
func MapGeVC[T Ordered](dst []bool, a []T, c T, sel []int32, n int) {
	if sel == nil {
		_ = dst[n-1]
		for i := 0; i < n; i++ {
			dst[i] = a[i] >= c
		}
		return
	}
	for _, i := range sel[:n] {
		dst[i] = a[i] >= c
	}
}

// MapEqVV computes dst[i] = (a[i] == b[i]).
func MapEqVV[T comparable](dst []bool, a, b []T, sel []int32, n int) {
	if sel == nil {
		_ = dst[n-1]
		for i := 0; i < n; i++ {
			dst[i] = a[i] == b[i]
		}
		return
	}
	for _, i := range sel[:n] {
		dst[i] = a[i] == b[i]
	}
}

// MapNeVV computes dst[i] = (a[i] != b[i]).
func MapNeVV[T comparable](dst []bool, a, b []T, sel []int32, n int) {
	if sel == nil {
		_ = dst[n-1]
		for i := 0; i < n; i++ {
			dst[i] = a[i] != b[i]
		}
		return
	}
	for _, i := range sel[:n] {
		dst[i] = a[i] != b[i]
	}
}

// MapLtVV computes dst[i] = (a[i] < b[i]).
func MapLtVV[T Ordered](dst []bool, a, b []T, sel []int32, n int) {
	if sel == nil {
		_ = dst[n-1]
		for i := 0; i < n; i++ {
			dst[i] = a[i] < b[i]
		}
		return
	}
	for _, i := range sel[:n] {
		dst[i] = a[i] < b[i]
	}
}

// MapLeVV computes dst[i] = (a[i] <= b[i]).
func MapLeVV[T Ordered](dst []bool, a, b []T, sel []int32, n int) {
	if sel == nil {
		_ = dst[n-1]
		for i := 0; i < n; i++ {
			dst[i] = a[i] <= b[i]
		}
		return
	}
	for _, i := range sel[:n] {
		dst[i] = a[i] <= b[i]
	}
}
