package primitives

import "math"

// Hash kernels build one 64-bit hash per live row, column by column:
// Hash* initializes from the first key column, Rehash* folds further
// columns in. The mixer is the splitmix64 finalizer — cheap, good
// avalanche, and fully deterministic so join/aggregate results are
// reproducible across runs (important for the experiment harness).

const (
	hashMul1 = 0xbf58476d1ce4e5b9
	hashMul2 = 0x94d049bb133111eb
	hashSeed = 0x9e3779b97f4a7c15
)

// mix64 is the splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= hashMul1
	x ^= x >> 27
	x *= hashMul2
	x ^= x >> 31
	return x
}

// strHash hashes a string with FNV-1a then finalizes; inlined manually
// to stay allocation-free.
func strHash(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return mix64(h)
}

// HashI64 writes dst[i] = hash(a[i]) for live i.
func HashI64(dst []uint64, a []int64, sel []int32, n int) {
	if sel == nil {
		_ = dst[n-1]
		for i := 0; i < n; i++ {
			dst[i] = mix64(uint64(a[i]) + hashSeed)
		}
		return
	}
	for _, i := range sel[:n] {
		dst[i] = mix64(uint64(a[i]) + hashSeed)
	}
}

// HashF64 writes dst[i] = hash(bits(a[i])) for live i. -0.0 normalizes
// to +0.0 so SQL equality and hash equality agree.
func HashF64(dst []uint64, a []float64, sel []int32, n int) {
	h := func(f float64) uint64 {
		if f == 0 {
			f = 0 // collapse -0.0
		}
		return mix64(math.Float64bits(f) + hashSeed)
	}
	if sel == nil {
		_ = dst[n-1]
		for i := 0; i < n; i++ {
			dst[i] = h(a[i])
		}
		return
	}
	for _, i := range sel[:n] {
		dst[i] = h(a[i])
	}
}

// HashStr writes dst[i] = hash(a[i]) for live i.
func HashStr(dst []uint64, a []string, sel []int32, n int) {
	if sel == nil {
		_ = dst[n-1]
		for i := 0; i < n; i++ {
			dst[i] = strHash(a[i])
		}
		return
	}
	for _, i := range sel[:n] {
		dst[i] = strHash(a[i])
	}
}

// HashBool writes dst[i] = hash(a[i]) for live i.
func HashBool(dst []uint64, a []bool, sel []int32, n int) {
	t := mix64(1 + hashSeed)
	f := mix64(2 + hashSeed)
	if sel == nil {
		_ = dst[n-1]
		for i := 0; i < n; i++ {
			if a[i] {
				dst[i] = t
			} else {
				dst[i] = f
			}
		}
		return
	}
	for _, i := range sel[:n] {
		if a[i] {
			dst[i] = t
		} else {
			dst[i] = f
		}
	}
}

// RehashI64 folds column a into existing hashes: dst[i] = mix(dst[i] ^ hash(a[i])).
func RehashI64(dst []uint64, a []int64, sel []int32, n int) {
	if sel == nil {
		_ = dst[n-1]
		for i := 0; i < n; i++ {
			dst[i] = mix64(dst[i] ^ mix64(uint64(a[i])+hashSeed))
		}
		return
	}
	for _, i := range sel[:n] {
		dst[i] = mix64(dst[i] ^ mix64(uint64(a[i])+hashSeed))
	}
}

// RehashF64 folds a float column into existing hashes.
func RehashF64(dst []uint64, a []float64, sel []int32, n int) {
	h := func(f float64) uint64 {
		if f == 0 {
			f = 0
		}
		return mix64(math.Float64bits(f) + hashSeed)
	}
	if sel == nil {
		_ = dst[n-1]
		for i := 0; i < n; i++ {
			dst[i] = mix64(dst[i] ^ h(a[i]))
		}
		return
	}
	for _, i := range sel[:n] {
		dst[i] = mix64(dst[i] ^ h(a[i]))
	}
}

// RehashStr folds a string column into existing hashes.
func RehashStr(dst []uint64, a []string, sel []int32, n int) {
	if sel == nil {
		_ = dst[n-1]
		for i := 0; i < n; i++ {
			dst[i] = mix64(dst[i] ^ strHash(a[i]))
		}
		return
	}
	for _, i := range sel[:n] {
		dst[i] = mix64(dst[i] ^ strHash(a[i]))
	}
}

// RehashBool folds a bool column into existing hashes.
func RehashBool(dst []uint64, a []bool, sel []int32, n int) {
	t := mix64(1 + hashSeed)
	f := mix64(2 + hashSeed)
	if sel == nil {
		_ = dst[n-1]
		for i := 0; i < n; i++ {
			if a[i] {
				dst[i] = mix64(dst[i] ^ t)
			} else {
				dst[i] = mix64(dst[i] ^ f)
			}
		}
		return
	}
	for _, i := range sel[:n] {
		if a[i] {
			dst[i] = mix64(dst[i] ^ t)
		} else {
			dst[i] = mix64(dst[i] ^ f)
		}
	}
}

// BucketMask maps hashes to power-of-two bucket ids: dst[i] = h[i] & mask.
func BucketMask(dst []uint64, h []uint64, mask uint64, sel []int32, n int) {
	if sel == nil {
		_ = dst[n-1]
		for i := 0; i < n; i++ {
			dst[i] = h[i] & mask
		}
		return
	}
	for _, i := range sel[:n] {
		dst[i] = h[i] & mask
	}
}
