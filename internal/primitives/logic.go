package primitives

// Boolean-map kernels used by the expression compiler for disjunctions
// and NOT, where both operand maps were computed over the same live set.

// MapAnd computes dst[i] = a[i] && b[i] for live i.
func MapAnd(dst, a, b []bool, sel []int32, n int) {
	if sel == nil {
		_ = dst[n-1]
		for i := 0; i < n; i++ {
			dst[i] = a[i] && b[i]
		}
		return
	}
	for _, i := range sel[:n] {
		dst[i] = a[i] && b[i]
	}
}

// MapOr computes dst[i] = a[i] || b[i] for live i.
func MapOr(dst, a, b []bool, sel []int32, n int) {
	if sel == nil {
		_ = dst[n-1]
		for i := 0; i < n; i++ {
			dst[i] = a[i] || b[i]
		}
		return
	}
	for _, i := range sel[:n] {
		dst[i] = a[i] || b[i]
	}
}

// MapNot computes dst[i] = !a[i] for live i.
func MapNot(dst, a []bool, sel []int32, n int) {
	if sel == nil {
		_ = dst[n-1]
		for i := 0; i < n; i++ {
			dst[i] = !a[i]
		}
		return
	}
	for _, i := range sel[:n] {
		dst[i] = !a[i]
	}
}

// SelInSet selects live i where a[i] is a member of the given small set
// (the SQL IN (...) list). For the short lists that appear in queries a
// linear probe over a slice beats a map.
func SelInSet[T comparable](res []int32, a []T, set []T, sel []int32, n int) int {
	k := 0
	if sel == nil {
		for i := 0; i < n; i++ {
			for _, s := range set {
				if a[i] == s {
					res[k] = int32(i)
					k++
					break
				}
			}
		}
		return k
	}
	for _, i := range sel[:n] {
		for _, s := range set {
			if a[i] == s {
				res[k] = i
				k++
				break
			}
		}
	}
	return k
}

// MapInSet computes dst[i] = (a[i] ∈ set) for live i.
func MapInSet[T comparable](dst []bool, a []T, set []T, sel []int32, n int) {
	member := func(v T) bool {
		for _, s := range set {
			if v == s {
				return true
			}
		}
		return false
	}
	if sel == nil {
		for i := 0; i < n; i++ {
			dst[i] = member(a[i])
		}
		return
	}
	for _, i := range sel[:n] {
		dst[i] = member(a[i])
	}
}

// SelIsNull selects live i whose null indicator is set; SelIsNotNull the
// complement. These operate on the indicator column produced by the
// storage layer (NULLs-as-two-columns, paper §I-B).
func SelIsNull(res []int32, nulls []bool, sel []int32, n int) int {
	return SelTrue(res, nulls, sel, n)
}

// SelIsNotNull selects live i whose null indicator is clear.
func SelIsNotNull(res []int32, nulls []bool, sel []int32, n int) int {
	return SelFalse(res, nulls, sel, n)
}
