package cluster

// Integration tests: real vwserve nodes on httptest listeners, fronted
// by a real Coordinator. Everything runs in-process so `go test -race`
// exercises the full coordinator/node concurrency.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"

	vectorwise "vectorwise"
	"vectorwise/internal/server"
	"vectorwise/internal/vector"
)

// testCluster is a coordinator over shards×replicas in-process nodes.
type testCluster struct {
	co    *Coordinator
	nodes [][]*vectorwise.DB   // nodes[shard][replica]
	srvs  [][]*httptest.Server // same shape
	http  *httptest.Server     // coordinator's own HTTP face
}

func newTestCluster(t *testing.T, shards, replicas int, tables []string) *testCluster {
	t.Helper()
	tc := &testCluster{}
	m := &ShardMap{Tables: make(map[string]Placement)}
	for si := 0; si < shards; si++ {
		var dbs []*vectorwise.DB
		var srvs []*httptest.Server
		var urls []string
		for ri := 0; ri < replicas; ri++ {
			db := vectorwise.OpenMemory()
			s := server.New(db, server.Config{Name: fmt.Sprintf("s%dr%d", si, ri)})
			ts := httptest.NewServer(s.Handler())
			t.Cleanup(func() { ts.Close(); s.Close() })
			dbs = append(dbs, db)
			srvs = append(srvs, ts)
			urls = append(urls, ts.URL)
		}
		tc.nodes = append(tc.nodes, dbs)
		tc.srvs = append(tc.srvs, srvs)
		m.Shards = append(m.Shards, urls)
	}
	for _, spec := range tables {
		name, key, _ := strings.Cut(spec, ":")
		m.Tables[name] = Placement{Sharded: true, KeyCol: key}
	}
	co, err := New(Config{Map: m})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { co.Close() })
	tc.co = co
	tc.http = httptest.NewServer(co.Handler())
	t.Cleanup(tc.http.Close)
	return tc
}

func (tc *testCluster) exec(t *testing.T, sqlText string) int64 {
	t.Helper()
	n, err := tc.co.Exec(context.Background(), sqlText)
	if err != nil {
		t.Fatalf("exec %q: %v", sqlText, err)
	}
	return n
}

// query runs a SELECT through the coordinator and collects all rows.
func (tc *testCluster) query(t *testing.T, sqlText string) ([]string, [][]any) {
	t.Helper()
	res, err := tc.co.Query(context.Background(), sqlText)
	if err != nil {
		t.Fatalf("query %q: %v", sqlText, err)
	}
	defer res.Close()
	rows, err := drainResult(res)
	if err != nil {
		t.Fatalf("drain %q: %v", sqlText, err)
	}
	return res.Columns(), rows
}

func drainResult(res *Result) ([][]any, error) {
	var rows [][]any
	for {
		b, err := res.NextBatch()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return rows, nil
		}
		rows = append(rows, server.EncodeBatch(b)...)
	}
}

// nodeRows runs a SELECT directly on one node's embedded DB.
func nodeRows(t *testing.T, db *vectorwise.DB, sqlText string) [][]any {
	t.Helper()
	rows, err := db.QueryContext(context.Background(), sqlText)
	if err != nil {
		t.Fatalf("node query %q: %v", sqlText, err)
	}
	defer rows.Close()
	var out [][]any
	for {
		var b *vector.Batch
		b, err = rows.NextBatch()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			return out
		}
		out = append(out, server.EncodeBatch(b)...)
	}
}

// sortRows orders rows canonically so unordered result sets compare.
func sortRows(rows [][]any) {
	sort.Slice(rows, func(i, j int) bool {
		return fmt.Sprint(rows[i]) < fmt.Sprint(rows[j])
	})
}

func rowsEqual(a, b [][]any) bool {
	return fmt.Sprint(a) == fmt.Sprint(b)
}

// asFloat normalizes a result cell: EncodeBatch yields native int64 /
// float64 for in-process results, JSON decoding yields float64.
func asFloat(v any) float64 {
	switch n := v.(type) {
	case int64:
		return float64(n)
	case float64:
		return n
	}
	panic(fmt.Sprintf("not a number: %T", v))
}

const ordersDDL = `CREATE TABLE orders (o_id BIGINT, o_cust VARCHAR, o_total DOUBLE)`
const custDDL = `CREATE TABLE cust (c_name VARCHAR, c_region VARCHAR)`

// seedOrders creates a sharded orders table plus a replicated dimension
// and inserts rows through the coordinator.
func seedOrders(t *testing.T, tc *testCluster, n int) {
	t.Helper()
	tc.exec(t, ordersDDL)
	tc.exec(t, custDDL)
	var vals []string
	for i := 1; i <= n; i++ {
		vals = append(vals, fmt.Sprintf("(%d, 'c%d', %d.5)", i, i%7, i))
	}
	if got := tc.exec(t, "INSERT INTO orders VALUES "+strings.Join(vals, ", ")); got != int64(n) {
		t.Fatalf("insert reported %d rows, want %d", got, n)
	}
	tc.exec(t, `INSERT INTO cust VALUES ('c0','east'), ('c1','west'), ('c2','east')`)
}

func TestClusterDDLBroadcastAndInsertRouting(t *testing.T) {
	tc := newTestCluster(t, 3, 1, []string{"orders:o_id"})
	seedOrders(t, tc, 100)

	// Every node has the tables; sharded rows partition (each row on
	// exactly one shard), replicated rows are everywhere.
	var total int64
	for si := range tc.nodes {
		rows := nodeRows(t, tc.nodes[si][0], `SELECT COUNT(*) FROM orders`)
		n := int64(asFloat(rows[0][0]))
		if n == 100 {
			t.Fatalf("shard %d holds all rows; sharding did not partition", si)
		}
		total += n
		crows := nodeRows(t, tc.nodes[si][0], `SELECT COUNT(*) FROM cust`)
		if int64(asFloat(crows[0][0])) != 3 {
			t.Fatalf("shard %d: replicated table has %v rows, want 3", si, crows[0][0])
		}
	}
	if total != 100 {
		t.Fatalf("shards hold %d rows total, want 100", total)
	}
}

func TestClusterReplicasIdentical(t *testing.T) {
	tc := newTestCluster(t, 2, 2, []string{"orders:o_id"})
	seedOrders(t, tc, 60)
	for si := range tc.nodes {
		a := nodeRows(t, tc.nodes[si][0], `SELECT o_id, o_cust, o_total FROM orders ORDER BY o_id`)
		b := nodeRows(t, tc.nodes[si][1], `SELECT o_id, o_cust, o_total FROM orders ORDER BY o_id`)
		if !rowsEqual(a, b) {
			t.Fatalf("shard %d replicas diverge", si)
		}
	}
}

func TestClusterGatherQuery(t *testing.T) {
	tc := newTestCluster(t, 3, 1, []string{"orders:o_id"})
	seedOrders(t, tc, 50)

	_, rows := tc.query(t, `SELECT o_id FROM orders WHERE o_id <= 10`)
	sortRows(rows)
	if len(rows) != 10 {
		t.Fatalf("gather returned %d rows, want 10", len(rows))
	}

	// Global ORDER BY + LIMIT across shards.
	_, top := tc.query(t, `SELECT o_id FROM orders ORDER BY o_id DESC LIMIT 3`)
	want := [][]any{{int64(50)}, {int64(49)}, {int64(48)}}
	if !rowsEqual(top, want) {
		t.Fatalf("top-3 = %v, want %v", top, want)
	}

	// ORDER BY a column the projection drops — the merge sorts by a
	// hidden shipped key, with and without LIMIT.
	cols, top := tc.query(t, `SELECT o_id FROM orders ORDER BY o_total DESC LIMIT 3`)
	if len(cols) != 1 || cols[0] != "o_id" {
		t.Fatalf("hidden sort key leaked into columns: %v", cols)
	}
	if !rowsEqual(top, want) {
		t.Fatalf("top-3 by dropped column = %v, want %v", top, want)
	}
	_, ordered := tc.query(t, `SELECT o_id FROM orders WHERE o_id > 47 ORDER BY o_total DESC`)
	if !rowsEqual(ordered, want) {
		t.Fatalf("order-only by dropped column = %v, want %v", ordered, want)
	}
}

func TestClusterLocalQuery(t *testing.T) {
	tc := newTestCluster(t, 3, 1, []string{"orders:o_id"})
	seedOrders(t, tc, 10)
	_, rows := tc.query(t, `SELECT c_name FROM cust WHERE c_region = 'east' ORDER BY c_name`)
	if len(rows) != 2 || rows[0][0] != "c0" || rows[1][0] != "c2" {
		t.Fatalf("local query rows = %v", rows)
	}
}

func TestClusterAggregateQuery(t *testing.T) {
	tc := newTestCluster(t, 3, 1, []string{"orders:o_id"})
	seedOrders(t, tc, 100)

	// Reference: the same rows in one embedded engine.
	ref := vectorwise.OpenMemory()
	defer ref.Close()
	if _, err := ref.Exec(ordersDDL); err != nil {
		t.Fatal(err)
	}
	var vals []string
	for i := 1; i <= 100; i++ {
		vals = append(vals, fmt.Sprintf("(%d, 'c%d', %d.5)", i, i%7, i))
	}
	if _, err := ref.Exec("INSERT INTO orders VALUES " + strings.Join(vals, ", ")); err != nil {
		t.Fatal(err)
	}

	q := `SELECT o_cust, COUNT(*) AS n, SUM(o_total) AS s, AVG(o_total) AS a,
	             MIN(o_id) AS lo, MAX(o_id) AS hi
	      FROM orders GROUP BY o_cust HAVING COUNT(*) > 2 ORDER BY o_cust`
	_, got := tc.query(t, q)
	want := nodeRows(t, ref, q)
	if !rowsEqual(got, want) {
		t.Fatalf("distributed aggregate diverges:\ngot:  %v\nwant: %v", got, want)
	}

	// Global aggregate (no GROUP BY): exactly one row, merged across the
	// mandatory per-shard rows.
	_, grows := tc.query(t, `SELECT COUNT(*), SUM(o_total) FROM orders WHERE o_id > 90`)
	if len(grows) != 1 {
		t.Fatalf("global aggregate returned %d rows", len(grows))
	}
	gwant := nodeRows(t, ref, `SELECT COUNT(*), SUM(o_total) FROM orders WHERE o_id > 90`)
	if !rowsEqual(grows, gwant) {
		t.Fatalf("global aggregate = %v, want %v", grows, gwant)
	}

	// Empty everywhere: COUNT comes back 0, not no-rows.
	_, erows := tc.query(t, `SELECT COUNT(*) FROM orders WHERE o_id > 1000000`)
	if len(erows) != 1 || int(asFloat(erows[0][0])) != 0 {
		t.Fatalf("empty-input global aggregate = %v", erows)
	}
}

func TestClusterColocatedJoinAggregate(t *testing.T) {
	tc := newTestCluster(t, 3, 1, []string{"fact:f_k", "dim2:d_k"})
	tc.exec(t, `CREATE TABLE fact (f_k BIGINT, f_v DOUBLE)`)
	tc.exec(t, `CREATE TABLE dim2 (d_k BIGINT, d_tag VARCHAR)`)
	var fv, dv []string
	for i := 1; i <= 40; i++ {
		fv = append(fv, fmt.Sprintf("(%d, %d.25)", i, i))
		dv = append(dv, fmt.Sprintf("(%d, 't%d')", i, i%3))
	}
	tc.exec(t, "INSERT INTO fact VALUES "+strings.Join(fv, ", "))
	tc.exec(t, "INSERT INTO dim2 VALUES "+strings.Join(dv, ", "))

	// Both tables sharded on the join key → co-located, shard-local join.
	_, rows := tc.query(t, `SELECT d_tag, SUM(f_v) AS s FROM fact JOIN dim2 ON f_k = d_k GROUP BY d_tag ORDER BY d_tag`)
	if len(rows) != 3 {
		t.Fatalf("join aggregate rows = %v", rows)
	}
	var sum float64
	for _, r := range rows {
		sum += asFloat(r[1])
	}
	if want := (40*41)/2 + 40*0.25; sum != want {
		t.Fatalf("join aggregate sum = %v, want %v", sum, want)
	}
}

func TestClusterUpdateDelete(t *testing.T) {
	tc := newTestCluster(t, 3, 1, []string{"orders:o_id"})
	seedOrders(t, tc, 30)
	if n := tc.exec(t, `UPDATE orders SET o_total = 0 WHERE o_id <= 5`); n != 5 {
		t.Fatalf("update affected %d, want 5", n)
	}
	if n := tc.exec(t, `DELETE FROM orders WHERE o_id > 25`); n != 5 {
		t.Fatalf("delete affected %d, want 5", n)
	}
	_, rows := tc.query(t, `SELECT COUNT(*), SUM(o_total) FROM orders WHERE o_id <= 5`)
	if int(asFloat(rows[0][0])) != 5 || asFloat(rows[0][1]) != 0 {
		t.Fatalf("post-update rows = %v", rows)
	}
}

func TestClusterLoadCSV(t *testing.T) {
	tc := newTestCluster(t, 3, 1, []string{"orders:o_id"})
	tc.exec(t, ordersDDL)
	var b strings.Builder
	b.WriteString("o_id,o_cust,o_total\n")
	for i := 1; i <= 40; i++ {
		fmt.Fprintf(&b, "%d,c%d,%d.5\n", i, i%7, i)
	}
	n, err := tc.co.LoadCSV(context.Background(), "orders", strings.NewReader(b.String()), LoadOptions{Header: true})
	if err != nil {
		t.Fatal(err)
	}
	if n != 40 {
		t.Fatalf("loaded %d rows, want 40", n)
	}
	var total int64
	for si := range tc.nodes {
		rows := nodeRows(t, tc.nodes[si][0], `SELECT COUNT(*) FROM orders`)
		total += int64(asFloat(rows[0][0]))
	}
	if total != 40 {
		t.Fatalf("shards hold %d rows, want 40", total)
	}

	// CSV routing and INSERT routing must agree: the same key lands on
	// the same shard either way.
	_, rows := tc.query(t, `SELECT SUM(o_total) FROM orders`)
	if asFloat(rows[0][0]) != (40*41)/2+40*0.5 {
		t.Fatalf("sum after CSV load = %v", rows[0][0])
	}
}

func TestClusterHTTPQueryAndStats(t *testing.T) {
	tc := newTestCluster(t, 2, 1, []string{"orders:o_id"})
	seedOrders(t, tc, 20)

	// Plain /v1/query against the coordinator, same wire as a node.
	body := strings.NewReader(`{"sql":"SELECT COUNT(*) FROM orders"}`)
	resp, err := http.Post(tc.http.URL+"/v1/query", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var qr server.QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || len(qr.Rows) != 1 || int(qr.Rows[0][0].(float64)) != 20 {
		t.Fatalf("coordinator query: status=%d rows=%v", resp.StatusCode, qr.Rows)
	}

	// Streaming variant ends in a done trailer.
	sresp, err := http.Post(tc.http.URL+"/v1/query?stream=1", "application/json",
		strings.NewReader(`{"sql":"SELECT o_id FROM orders"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	dec := json.NewDecoder(sresp.Body)
	var rows int
	var done bool
	for {
		var line struct {
			Columns []string `json:"columns"`
			Rows    [][]any  `json:"rows"`
			Done    bool     `json:"done"`
		}
		if err := dec.Decode(&line); err != nil {
			break
		}
		rows += len(line.Rows)
		if line.Done {
			done = true
		}
	}
	if !done || rows != 20 {
		t.Fatalf("stream: done=%v rows=%d", done, rows)
	}

	// /v1/cluster reports topology and counters.
	cresp, err := http.Get(tc.http.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer cresp.Body.Close()
	var cl ClusterResponse
	if err := json.NewDecoder(cresp.Body).Decode(&cl); err != nil {
		t.Fatal(err)
	}
	if len(cl.Shards) != 2 {
		t.Fatalf("cluster reports %d shards", len(cl.Shards))
	}
	if !cl.Tables["orders"].Sharded || cl.Tables["orders"].KeyCol != "o_id" {
		t.Fatalf("cluster tables = %v", cl.Tables)
	}
	if cl.Queries < 2 {
		t.Fatalf("queries counter = %d, want >= 2", cl.Queries)
	}
	var shardQueries int64
	for _, s := range cl.Shards {
		shardQueries += s.Stats.Queries
		if len(s.Replicas) != 1 || !s.Replicas[0].Healthy {
			t.Fatalf("replica health: %+v", s.Replicas)
		}
		if s.Stats.BytesIn <= 0 {
			t.Fatalf("shard bytes_in = %d, want > 0", s.Stats.BytesIn)
		}
	}
	if shardQueries < 2 {
		t.Fatalf("per-shard query counters sum to %d", shardQueries)
	}
}

func TestClusterRejectsBadStatements(t *testing.T) {
	tc := newTestCluster(t, 2, 1, []string{"orders:o_id"})
	tc.exec(t, ordersDDL)

	// Invalid SQL fails on the schema DB before any fan-out.
	if _, err := tc.co.Query(context.Background(), `SELECT no_such_col FROM orders`); err == nil {
		t.Fatal("want validation error for unknown column")
	}
	if _, err := tc.co.Exec(context.Background(), `SELECT 1 FROM orders`); err == nil {
		t.Fatal("want error for SELECT via Exec")
	}
	if _, err := tc.co.Query(context.Background(), `DELETE FROM orders`); err == nil {
		t.Fatal("want error for DML via Query")
	}
}
