package cluster

import (
	"testing"

	"vectorwise/internal/sql"
	"vectorwise/internal/tpch"
)

// TestRenderRoundTrip re-parses the rendered form of every TPC-H suite
// query and renders again: render(parse(render(parse(q)))) must be a
// fixed point, which pins that rendering loses nothing the parser can
// express.
func TestRenderRoundTrip(t *testing.T) {
	for _, q := range tpch.SQLSuite() {
		t.Run(q.Name, func(t *testing.T) {
			stmt, err := sql.Parse(q.SQL)
			if err != nil {
				t.Fatalf("parse original: %v", err)
			}
			sel, ok := stmt.AST.(*sql.SelectStmt)
			if !ok {
				t.Fatalf("not a SELECT: %T", stmt)
			}
			r1 := RenderSelect(sel)
			stmt2, err := sql.Parse(r1)
			if err != nil {
				t.Fatalf("re-parse rendered SQL: %v\n%s", err, r1)
			}
			r2 := RenderSelect(stmt2.AST.(*sql.SelectStmt))
			if r1 != r2 {
				t.Fatalf("render not a fixed point:\n1: %s\n2: %s", r1, r2)
			}
		})
	}
}

// TestRenderExprForms covers expression shapes the suite queries don't
// exercise: params, CASE, LIKE, IN-style OR chains, string quoting.
func TestRenderExprForms(t *testing.T) {
	cases := []string{
		`SELECT k FROM t WHERE s LIKE '%it''s%'`,
		`SELECT CASE WHEN k > 1 THEN 'big' ELSE 'small' END AS sz FROM t`,
		`SELECT k FROM t WHERE d >= DATE '1994-01-01' AND d < DATE '1995-01-01'`,
		`SELECT -k AS nk, NOT b AS nb FROM t WHERE k IS NOT NULL OR b IS NULL`,
		`SELECT k FROM t LEFT JOIN u ON t.k = u.k WHERE u.v <> 0`,
		`SELECT k FROM t JOIN u ON t.k = u.k AND t.j = u.j`,
		`SELECT SUM(x) s FROM t GROUP BY g HAVING SUM(x) > 10 ORDER BY s DESC LIMIT 5`,
	}
	for _, src := range cases {
		stmt, err := sql.Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		r1 := RenderSelect(stmt.AST.(*sql.SelectStmt))
		stmt2, err := sql.Parse(r1)
		if err != nil {
			t.Fatalf("re-parse %q (rendered from %q): %v", r1, src, err)
		}
		r2 := RenderSelect(stmt2.AST.(*sql.SelectStmt))
		if r1 != r2 {
			t.Fatalf("not a fixed point for %q:\n1: %s\n2: %s", src, r1, r2)
		}
	}
}

func TestRenderInsert(t *testing.T) {
	src := `INSERT INTO t VALUES (1, 'a''b', DATE '2024-05-01'), (2, 'c', DATE '2024-05-02')`
	stmt, err := sql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ins := stmt.AST.(*sql.InsertStmt)
	r := RenderInsert(ins.Table, ins.Rows)
	stmt2, err := sql.Parse(r)
	if err != nil {
		t.Fatalf("re-parse %q: %v", r, err)
	}
	ins2 := stmt2.AST.(*sql.InsertStmt)
	if ins2.Table != "t" || len(ins2.Rows) != 2 || len(ins2.Rows[0]) != 3 {
		t.Fatalf("round trip mangled insert: %q", r)
	}
}
