package cluster

import (
	"strings"
	"testing"

	"vectorwise/internal/sql"
)

func testMap(t *testing.T) *ShardMap {
	t.Helper()
	m, err := ParseShardFlags(
		[]string{"http://a:1", "http://b:1", "http://c:1"},
		[]string{"lineitem:l_orderkey", "orders:o_orderkey"},
	)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func mustSplit(t *testing.T, m *ShardMap, src string) *distPlan {
	t.Helper()
	stmt, err := sql.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	dp, err := split(stmt.AST.(*sql.SelectStmt), src, m)
	if err != nil {
		t.Fatalf("split %q: %v", src, err)
	}
	return dp
}

func TestSplitClassLocal(t *testing.T) {
	m := testMap(t)
	src := `SELECT n_name FROM nation JOIN region ON n_regionkey = r_regionkey`
	dp := mustSplit(t, m, src)
	if dp.class != classLocal {
		t.Fatalf("class = %v, want classLocal", dp.class)
	}
	if dp.shardSQL != src {
		t.Fatalf("local plan must forward the raw SQL, got %q", dp.shardSQL)
	}
	if dp.mergeSQL != "" {
		t.Fatalf("local plan has merge SQL: %q", dp.mergeSQL)
	}
}

func TestSplitClassGather(t *testing.T) {
	m := testMap(t)

	// Plain scan: union of shard streams, no merge.
	dp := mustSplit(t, m, `SELECT l_orderkey, l_quantity FROM lineitem WHERE l_quantity > 40`)
	if dp.class != classGather || dp.mergeSQL != "" {
		t.Fatalf("plain gather: class=%v merge=%q", dp.class, dp.mergeSQL)
	}

	// ORDER BY + LIMIT: each shard ships its own top-N, merge re-sorts
	// and re-limits over the staging table.
	dp = mustSplit(t, m, `SELECT l_orderkey FROM lineitem ORDER BY l_orderkey LIMIT 10`)
	if dp.class != classGather {
		t.Fatalf("class = %v", dp.class)
	}
	if !strings.Contains(dp.shardSQL, "ORDER BY") || !strings.Contains(dp.shardSQL, "LIMIT 10") {
		t.Fatalf("shard SQL should keep top-N: %q", dp.shardSQL)
	}
	if !strings.Contains(dp.mergeSQL, StagingTable) || !strings.Contains(dp.mergeSQL, "LIMIT 10") {
		t.Fatalf("merge SQL: %q", dp.mergeSQL)
	}

	// ORDER BY without LIMIT: the per-shard sort is dropped (pure
	// waste), the merge re-sorts globally.
	dp = mustSplit(t, m, `SELECT l_orderkey FROM lineitem ORDER BY l_orderkey`)
	if strings.Contains(dp.shardSQL, "ORDER BY") {
		t.Fatalf("unlimited shard sort should be dropped: %q", dp.shardSQL)
	}
	if !strings.Contains(dp.mergeSQL, "ORDER BY") {
		t.Fatalf("merge SQL must sort: %q", dp.mergeSQL)
	}

	// ORDER BY a column the projection drops: the staging table will not
	// carry it, so the sort key ships as a hidden _s0 column the merge
	// sorts by and projects away.
	dp = mustSplit(t, m, `SELECT l_orderkey FROM lineitem ORDER BY l_quantity DESC LIMIT 5`)
	if !strings.Contains(dp.shardSQL, "l_quantity AS _s0") {
		t.Fatalf("shard SQL must ship the hidden sort key: %q", dp.shardSQL)
	}
	if !strings.Contains(dp.mergeSQL, "ORDER BY _s0 DESC") {
		t.Fatalf("merge SQL must sort by the hidden key: %q", dp.mergeSQL)
	}
	if strings.Contains(dp.mergeSQL, "*") {
		t.Fatalf("merge SQL must project the hidden key away: %q", dp.mergeSQL)
	}
	if !strings.Contains(dp.mergeSQL, "SELECT l_orderkey") {
		t.Fatalf("merge SQL must keep the original outputs: %q", dp.mergeSQL)
	}

	// SELECT * ships every base column, so even a dropped-looking sort
	// key is resolvable against the staging table as-is.
	dp = mustSplit(t, m, `SELECT * FROM lineitem ORDER BY l_quantity LIMIT 5`)
	if strings.Contains(dp.shardSQL, "_s0") {
		t.Fatalf("star gather needs no hidden key: %q", dp.shardSQL)
	}
	if !strings.Contains(dp.mergeSQL, "ORDER BY l_quantity") {
		t.Fatalf("star merge sorts by the column directly: %q", dp.mergeSQL)
	}
}

func TestSplitAggregate(t *testing.T) {
	m := testMap(t)
	dp := mustSplit(t, m, `
		SELECT l_returnflag, SUM(l_quantity) AS sq, COUNT(*) AS n, AVG(l_discount) AS ad,
		       MIN(l_tax) AS mn, MAX(l_tax) AS mx
		FROM lineitem
		WHERE l_quantity > 0
		GROUP BY l_returnflag
		HAVING COUNT(*) > 1
		ORDER BY sq DESC
		LIMIT 3`)
	if dp.class != classAggregate {
		t.Fatalf("class = %v", dp.class)
	}

	// Shard side: group keys as _gN, partials as _pN, WHERE and GROUP BY
	// kept, HAVING/ORDER/LIMIT stripped (they only make sense globally).
	s := dp.shardSQL
	for _, want := range []string{"_g0", "_p0", "WHERE", "GROUP BY",
		"SUM((1.0 * l_discount))", // AVG partial sum forced to DOUBLE
		"COUNT(l_discount)",       // AVG partial count
		"MIN(l_tax)", "MAX(l_tax)"} {
		if !strings.Contains(s, want) {
			t.Errorf("shard SQL missing %q:\n%s", want, s)
		}
	}
	for _, banned := range []string{"HAVING", "ORDER BY", "LIMIT"} {
		if strings.Contains(s, banned) {
			t.Errorf("shard SQL must not contain %q:\n%s", banned, s)
		}
	}

	// Merge side: re-aggregates partials over the staging table with the
	// original HAVING/ORDER/LIMIT. COUNT merges as SUM of partial counts;
	// AVG as a division of summed partials.
	mg := dp.mergeSQL
	for _, want := range []string{StagingTable, "GROUP BY", "HAVING", "ORDER BY", "LIMIT 3",
		"SUM(_p", "MIN(_p", "MAX(_p", "/"} {
		if !strings.Contains(mg, want) {
			t.Errorf("merge SQL missing %q:\n%s", want, mg)
		}
	}
	if strings.Contains(mg, "COUNT(") {
		t.Errorf("merge must re-aggregate COUNT as SUM:\n%s", mg)
	}

	// Both halves must parse in the engine's dialect.
	if _, err := sql.Parse(s); err != nil {
		t.Fatalf("shard SQL does not parse: %v\n%s", err, s)
	}
	if _, err := sql.Parse(mg); err != nil {
		t.Fatalf("merge SQL does not parse: %v\n%s", err, mg)
	}
}

func TestSplitColocatedJoinAllowed(t *testing.T) {
	m := testMap(t)
	dp := mustSplit(t, m, `
		SELECT o_orderpriority, COUNT(*) AS n
		FROM lineitem JOIN orders ON l_orderkey = o_orderkey
		GROUP BY o_orderpriority`)
	if dp.class != classAggregate {
		t.Fatalf("co-located join should split, class = %v", dp.class)
	}
}

func TestSplitCrossShardJoinRejected(t *testing.T) {
	m := testMap(t)
	src := `SELECT COUNT(*) FROM lineitem JOIN orders ON l_partkey = o_custkey`
	stmt, err := sql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := split(stmt.AST.(*sql.SelectStmt), src, m); err == nil {
		t.Fatal("want cross-shard join rejection")
	}
}

func TestSplitGlobalAggregate(t *testing.T) {
	// No GROUP BY: shard emits one mandatory row each; merge collapses
	// them into the single global row.
	m := testMap(t)
	dp := mustSplit(t, m, `SELECT SUM(l_quantity), COUNT(*) FROM lineitem`)
	if dp.class != classAggregate {
		t.Fatalf("class = %v", dp.class)
	}
	if strings.Contains(dp.shardSQL, "_g0") || strings.Contains(dp.mergeSQL, "GROUP BY") {
		t.Fatalf("global aggregate must not group:\nshard: %s\nmerge: %s", dp.shardSQL, dp.mergeSQL)
	}
}
