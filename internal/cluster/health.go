package cluster

// Replica health tracking. The coordinator polls every node's
// /v1/health on an interval; the result only reorders failover
// preference (healthy replicas first) — it never removes a replica,
// because a probe can be stale in both directions and the per-request
// retry path is what actually decides liveness.

import (
	"context"
	"sync"
	"time"
)

// ReplicaHealth is one node's last observed health state.
type ReplicaHealth struct {
	URL       string    `json:"url"`
	Healthy   bool      `json:"healthy"`
	Status    string    `json:"status,omitempty"`
	DataEpoch uint64    `json:"data_epoch,omitempty"`
	LastErr   string    `json:"last_error,omitempty"`
	CheckedAt time.Time `json:"checked_at"`
}

// healthTracker polls node health in the background.
type healthTracker struct {
	c        *client
	nodes    []string
	interval time.Duration

	mu    sync.Mutex
	state map[string]ReplicaHealth
	stop  chan struct{}
	done  chan struct{}
}

func newHealthTracker(c *client, nodes []string, interval time.Duration) *healthTracker {
	t := &healthTracker{
		c:        c,
		nodes:    nodes,
		interval: interval,
		state:    make(map[string]ReplicaHealth, len(nodes)),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	// Unprobed nodes start healthy: the request path must not shun a
	// replica just because the first poll hasn't completed.
	for _, n := range nodes {
		t.state[n] = ReplicaHealth{URL: n, Healthy: true}
	}
	go t.run()
	return t
}

func (t *healthTracker) run() {
	defer close(t.done)
	t.sweep() // immediate first pass so startup state is real
	tick := time.NewTicker(t.interval)
	defer tick.Stop()
	for {
		select {
		case <-t.stop:
			return
		case <-tick.C:
			t.sweep()
		}
	}
}

// sweep probes every node once, concurrently.
func (t *healthTracker) sweep() {
	var wg sync.WaitGroup
	for _, n := range t.nodes {
		n := n
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), t.interval)
			defer cancel()
			h := ReplicaHealth{URL: n, CheckedAt: time.Now()}
			hr, err := t.c.health(ctx, n)
			if err != nil {
				h.LastErr = err.Error()
			} else {
				h.Status = hr.Status
				h.DataEpoch = hr.DataEpoch
				h.Healthy = hr.Status == "ok"
				if !h.Healthy {
					h.LastErr = "status " + hr.Status
				}
			}
			t.mu.Lock()
			t.state[n] = h
			t.mu.Unlock()
		}()
	}
	wg.Wait()
}

// healthy reports the last probed health of a node.
func (t *healthTracker) healthy(url string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.state[url].Healthy
}

// order returns replicas reordered healthy-first, preserving relative
// order within each class (primary-preference inside the healthy set).
func (t *healthTracker) order(replicas []string) []string {
	out := make([]string, 0, len(replicas))
	var down []string
	for _, r := range replicas {
		if t.healthy(r) {
			out = append(out, r)
		} else {
			down = append(down, r)
		}
	}
	return append(out, down...)
}

// snapshot returns the health state of the given nodes in order.
func (t *healthTracker) snapshot(nodes []string) []ReplicaHealth {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]ReplicaHealth, len(nodes))
	for i, n := range nodes {
		out[i] = t.state[n]
	}
	return out
}

func (t *healthTracker) close() {
	close(t.stop)
	<-t.done
}
