package cluster

// shardSource adapts one shard's streaming query — with replica
// failover — to core.BatchSource, so core.RemoteExchange can union
// shards exactly the way XchgUnion unions local partitions.

import (
	"context"
	"fmt"
	"sync/atomic"

	"vectorwise/internal/vector"
	"vectorwise/internal/vtypes"
)

// ShardStats carries one shard's cumulative coordinator-side counters.
type ShardStats struct {
	Queries   atomic.Int64
	BytesIn   atomic.Int64
	Failovers atomic.Int64
}

// ShardStatsSnapshot is the JSON form of ShardStats.
type ShardStatsSnapshot struct {
	Queries   int64 `json:"queries"`
	BytesIn   int64 `json:"bytes_in"`
	Failovers int64 `json:"failovers"`
}

// Snapshot reads the counters.
func (s *ShardStats) Snapshot() ShardStatsSnapshot {
	return ShardStatsSnapshot{
		Queries:   s.Queries.Load(),
		BytesIn:   s.BytesIn.Load(),
		Failovers: s.Failovers.Load(),
	}
}

// shardSource streams one shard's result for one statement, failing
// over across the shard's replicas.
//
// Failover discipline: a retry re-runs the whole statement on the next
// replica, so it is only transparent if nothing from the failed attempt
// has been emitted downstream. In buffered mode the source drains the
// entire stream into memory before emitting anything, making failover
// safe at any point — the right trade for partial-aggregate streams,
// which are small (one row per group per shard). In unbuffered mode
// batches flow through as they arrive and failover is possible only
// until the first batch has been emitted; after that a dying node fails
// the query. Retries happen at most once per replica, in health order.
type shardSource struct {
	ctx      context.Context
	c        *client
	shard    int
	replicas []string // preferred order: healthy first
	sql      string
	kinds    []vtypes.Kind
	buffered bool
	stats    *ShardStats

	stream  *nodeStream // live stream (unbuffered mode)
	rep     int         // replica index of the live/buffering attempt
	emitted bool
	buf     []*vector.Batch
	bufPos  int
}

// Open implements core.BatchSource: start the stream on the first
// replica that accepts it (buffered mode also drains it here, failing
// over mid-drain as needed).
func (s *shardSource) Open() error {
	s.stats.Queries.Add(1)
	if s.buffered {
		return s.fill()
	}
	for s.rep = 0; s.rep < len(s.replicas); s.rep++ {
		st, err := s.c.openStream(s.ctx, s.replicas[s.rep], s.sql, &s.stats.BytesIn)
		if err == nil {
			s.stream = st
			return nil
		}
		if !isRetryable(err) || s.rep == len(s.replicas)-1 {
			return fmt.Errorf("shard %d: %w", s.shard, err)
		}
		s.stats.Failovers.Add(1)
	}
	return fmt.Errorf("shard %d: no replicas", s.shard)
}

// fill drains the whole stream into s.buf, restarting on the next
// replica on any retryable failure.
func (s *shardSource) fill() error {
	var lastErr error
	for rep := 0; rep < len(s.replicas); rep++ {
		if rep > 0 {
			s.stats.Failovers.Add(1)
		}
		st, err := s.c.openStream(s.ctx, s.replicas[rep], s.sql, &s.stats.BytesIn)
		if err != nil {
			lastErr = err
			if isRetryable(err) {
				continue
			}
			return fmt.Errorf("shard %d: %w", s.shard, err)
		}
		s.buf = s.buf[:0]
		s.bufPos = 0
		for {
			b, err := st.next(s.kinds)
			if err != nil {
				st.close()
				lastErr = err
				if isRetryable(err) {
					break // next replica
				}
				return fmt.Errorf("shard %d: %w", s.shard, err)
			}
			if b == nil {
				st.close()
				return nil
			}
			s.buf = append(s.buf, b)
		}
	}
	return fmt.Errorf("shard %d: all replicas failed: %w", s.shard, lastErr)
}

// Next implements core.BatchSource.
func (s *shardSource) Next() (*vector.Batch, error) {
	if s.buffered {
		if s.bufPos >= len(s.buf) {
			return nil, nil
		}
		b := s.buf[s.bufPos]
		s.buf[s.bufPos] = nil
		s.bufPos++
		return b, nil
	}
	for {
		b, err := s.stream.next(s.kinds)
		if err == nil {
			if b != nil {
				s.emitted = true
			}
			return b, nil
		}
		// A replica died mid-stream. If nothing has been emitted yet the
		// retry is invisible; otherwise rows are already downstream and
		// re-running would duplicate them.
		if !isRetryable(err) || s.emitted {
			return nil, fmt.Errorf("shard %d: %w", s.shard, err)
		}
		s.stream.close()
		s.stream = nil
		for s.rep++; s.rep < len(s.replicas); s.rep++ {
			s.stats.Failovers.Add(1)
			st, oerr := s.c.openStream(s.ctx, s.replicas[s.rep], s.sql, &s.stats.BytesIn)
			if oerr == nil {
				s.stream = st
				break
			}
			err = oerr
			if !isRetryable(oerr) {
				return nil, fmt.Errorf("shard %d: %w", s.shard, oerr)
			}
		}
		if s.stream == nil {
			return nil, fmt.Errorf("shard %d: all replicas failed: %w", s.shard, err)
		}
	}
}

// Close implements core.BatchSource.
func (s *shardSource) Close() error {
	if s.stream != nil {
		s.stream.close()
		s.stream = nil
	}
	s.buf = nil
	return nil
}
