package cluster

// HTTP client side of the inter-node wire. Nodes are plain vwserve
// processes; the coordinator talks to them over the same public
// /v1/query, /v1/load and /v1/health endpoints any client uses, so a
// "cluster node" needs zero node-side code beyond the server package.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync/atomic"
	"time"

	"vectorwise/internal/server"
	"vectorwise/internal/vector"
	"vectorwise/internal/vtypes"
)

// retryableError marks a shard-request failure that a different replica
// might not reproduce: transport errors, truncated streams, a draining
// or overloaded node, a node-side cancellation. Deterministic failures
// (the statement itself is bad — error_kind "query") and timeouts are
// not retryable: every replica would fail identically, or the retry
// would burn the remaining deadline repeating a too-slow statement.
type retryableError struct{ err error }

func (e *retryableError) Error() string { return e.err.Error() }
func (e *retryableError) Unwrap() error { return e.err }

func retryable(err error) error { return &retryableError{err: err} }

func isRetryable(err error) bool {
	var re *retryableError
	return errors.As(err, &re)
}

// client is the coordinator's HTTP client to the data nodes.
type client struct {
	http    *http.Client
	timeout time.Duration
}

func newClient(timeout time.Duration) *client {
	return &client{http: &http.Client{}, timeout: timeout}
}

func (c *client) post(ctx context.Context, url string, contentType string, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", contentType)
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, retryable(err)
	}
	return resp, nil
}

// checkStatus converts a non-200 response into an error, marking the
// ones another replica could answer (drain, overload, internal) as
// retryable.
func checkStatus(resp *http.Response) error {
	if resp.StatusCode == http.StatusOK {
		return nil
	}
	defer resp.Body.Close()
	var er server.ErrorResponse
	msg := resp.Status
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<10)).Decode(&er); err == nil && er.Error.Message != "" {
		msg = fmt.Sprintf("%s (%s)", er.Error.Message, er.Error.Code)
	}
	err := fmt.Errorf("cluster: node returned %d: %s", resp.StatusCode, msg)
	if resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests {
		return retryable(err)
	}
	return err
}

// exec runs a non-streaming statement (DDL/DML) on one node.
func (c *client) exec(ctx context.Context, baseURL, sqlText string) (*server.QueryResponse, error) {
	body, _ := json.Marshal(server.QueryRequest{SQL: sqlText, TimeoutMs: c.timeout.Milliseconds()})
	resp, err := c.post(ctx, baseURL+"/v1/query", "application/json", body)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if err := checkStatus(resp); err != nil {
		return nil, err
	}
	var qr server.QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		return nil, retryable(fmt.Errorf("cluster: decoding response from %s: %w", baseURL, err))
	}
	return &qr, nil
}

// load ships CSV bytes into one node's table via /v1/load.
func (c *client) load(ctx context.Context, baseURL, table string, header bool, null string, data []byte) (int64, error) {
	q := url.Values{"table": {table}}
	if header {
		q.Set("header", "1")
	}
	if null != "" {
		q.Set("null", null)
	}
	resp, err := c.post(ctx, baseURL+"/v1/load?"+q.Encode(), "text/csv", data)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if err := checkStatus(resp); err != nil {
		return 0, err
	}
	var lr server.LoadResponse
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		return 0, retryable(err)
	}
	return lr.RowsLoaded, nil
}

// health probes one node's /v1/health.
func (c *client) health(ctx context.Context, baseURL string) (*server.HealthResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/v1/health", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: health returned %d", resp.StatusCode)
	}
	var hr server.HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		return nil, err
	}
	return &hr, nil
}

// countingReader counts bytes received off the wire into an atomic.
type countingReader struct {
	r io.Reader
	n *atomic.Int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n.Add(int64(n))
	return n, err
}

// streamLine is one NDJSON line of a node's streamed query response —
// the union of server.StreamHeader, StreamBatch, StreamTrailer and
// StreamErrorTrailer.
type streamLine struct {
	Columns []string          `json:"columns"`
	Rows    [][]any           `json:"rows"`
	Done    bool              `json:"done"`
	Error   *server.ErrorBody `json:"error"`
	Kind    string            `json:"error_kind"`
}

// nodeStream is one open streaming query against one node.
type nodeStream struct {
	body io.Closer
	dec  *json.Decoder
	cols []string
}

// openStream starts a streaming SELECT on one node. bytesIn, when
// non-nil, accumulates wire bytes received.
func (c *client) openStream(ctx context.Context, baseURL, sqlText string, bytesIn *atomic.Int64) (*nodeStream, error) {
	body, _ := json.Marshal(server.QueryRequest{SQL: sqlText, TimeoutMs: c.timeout.Milliseconds()})
	resp, err := c.post(ctx, baseURL+"/v1/query?stream=1", "application/json", body)
	if err != nil {
		return nil, err
	}
	if err := checkStatus(resp); err != nil {
		return nil, err
	}
	var r io.Reader = resp.Body
	if bytesIn != nil {
		r = &countingReader{r: resp.Body, n: bytesIn}
	}
	dec := json.NewDecoder(r)
	dec.UseNumber() // exact int64 transport: no float64 round-trip
	var hdr streamLine
	if err := dec.Decode(&hdr); err != nil {
		resp.Body.Close()
		return nil, retryable(fmt.Errorf("cluster: reading stream header from %s: %w", baseURL, err))
	}
	if hdr.Error != nil {
		resp.Body.Close()
		return nil, trailerError(&hdr, baseURL)
	}
	return &nodeStream{body: resp.Body, dec: dec, cols: hdr.Columns}, nil
}

// next returns the next batch of the stream, (nil, nil) on the done
// trailer. A stream that ends without a trailer was truncated by a
// dying node — that is retryable.
func (s *nodeStream) next(kinds []vtypes.Kind) (*vector.Batch, error) {
	for {
		var line streamLine
		if err := s.dec.Decode(&line); err != nil {
			return nil, retryable(fmt.Errorf("cluster: stream truncated: %w", err))
		}
		switch {
		case line.Error != nil:
			return nil, trailerError(&line, "")
		case line.Done:
			return nil, nil
		case len(line.Rows) > 0:
			return decodeBatch(line.Rows, kinds)
		default:
			// Empty rows line: keep reading.
		}
	}
}

func (s *nodeStream) close() {
	if s.body != nil {
		s.body.Close()
	}
}

// trailerError types a node-reported stream failure using the
// error_kind satellite: "query" failures are deterministic (fail fast),
// "canceled" means the node's side of the request died (drain,
// shutdown — retry a replica), and "timeout" means the statement
// exceeded the node deadline (a retry would too).
func trailerError(line *streamLine, node string) error {
	err := fmt.Errorf("cluster: node error: %s (%s)", line.Error.Message, line.Error.Code)
	if node != "" {
		err = fmt.Errorf("cluster: node %s error: %s (%s)", node, line.Error.Message, line.Error.Code)
	}
	if line.Kind == "canceled" {
		return retryable(err)
	}
	return err
}

// decodeBatch converts one wire rows payload into a vector batch of the
// given kinds. The batch is freshly allocated — BatchSource ownership.
func decodeBatch(rows [][]any, kinds []vtypes.Kind) (*vector.Batch, error) {
	b := vector.NewBatchOfKinds(kinds, len(rows))
	for i, row := range rows {
		if len(row) != len(kinds) {
			return nil, fmt.Errorf("cluster: row arity %d, want %d", len(row), len(kinds))
		}
		for j, raw := range row {
			v := b.Vecs[j]
			if raw == nil {
				v.EnsureNulls()
				v.Nulls[i] = true
				continue
			}
			switch kinds[j] {
			case vtypes.KindI64:
				num, ok := raw.(json.Number)
				if !ok {
					return nil, decodeErr(raw, "BIGINT")
				}
				n, err := num.Int64()
				if err != nil {
					return nil, err
				}
				v.I64[i] = n
			case vtypes.KindF64:
				num, ok := raw.(json.Number)
				if !ok {
					return nil, decodeErr(raw, "DOUBLE")
				}
				f, err := num.Float64()
				if err != nil {
					return nil, err
				}
				v.F64[i] = f
			case vtypes.KindDate:
				s, ok := raw.(string)
				if !ok {
					return nil, decodeErr(raw, "DATE")
				}
				d, err := vtypes.ParseDate(s)
				if err != nil {
					return nil, err
				}
				v.I64[i] = d
			case vtypes.KindStr:
				s, ok := raw.(string)
				if !ok {
					return nil, decodeErr(raw, "VARCHAR")
				}
				v.Str[i] = s
			case vtypes.KindBool:
				bv, ok := raw.(bool)
				if !ok {
					return nil, decodeErr(raw, "BOOLEAN")
				}
				v.B[i] = bv
			default:
				return nil, fmt.Errorf("cluster: cannot decode kind %v", kinds[j])
			}
		}
	}
	b.SetDense(len(rows))
	return b, nil
}

func decodeErr(raw any, want string) error {
	return fmt.Errorf("cluster: wire value %T does not decode as %s", raw, want)
}
