// Package cluster generalizes the engine's exchange operator across
// processes: a coordinator hash-shards designated tables over N vwserve
// nodes (Vertica's segmentation model — big facts segmented by a key,
// dimensions replicated everywhere), plans SELECTs as per-shard partial
// statements shipped over the existing /v1/query?stream=1 NDJSON wire,
// and merges the partial batches on the coordinator through the normal
// Rows cursor. Each shard may carry k-safety-style read replicas; the
// coordinator health-checks them and fails a request over to the next
// replica when a node dies mid-stream.
package cluster

import (
	"fmt"
	"hash/fnv"
	"strings"
)

// Placement says how one table is distributed across the cluster.
type Placement struct {
	// Sharded tables are hash-partitioned on KeyCol: each row lives on
	// exactly one shard (on all of that shard's replicas). Non-sharded
	// tables are replicated in full on every node, so any join against
	// them is shard-local.
	Sharded bool `json:"sharded"`
	// KeyCol is the sharding column (sharded tables only).
	KeyCol string `json:"key_col,omitempty"`
}

// ShardMap is the cluster topology: the replica sets of each shard plus
// the placement of every sharded table. Tables not present are
// replicated (the default placement).
type ShardMap struct {
	// Shards[i] lists the base URLs of shard i's replicas, primary
	// first. Every replica of a shard holds the same data.
	Shards [][]string
	// Tables maps table name → placement for sharded tables.
	Tables map[string]Placement
}

// NumShards returns the shard count.
func (m *ShardMap) NumShards() int { return len(m.Shards) }

// Placement returns the placement of a table (replicated when unknown).
func (m *ShardMap) Placement(table string) Placement {
	if p, ok := m.Tables[table]; ok {
		return p
	}
	return Placement{}
}

// ShardForKey routes a shard-key value, in its canonical string form,
// to a shard. FNV-1a over the canonical bytes keeps routing stable
// across coordinator restarts and independent of Go's per-process map
// hashing.
func (m *ShardMap) ShardForKey(key string) int {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	return int(h.Sum64() % uint64(len(m.Shards)))
}

// AllNodes returns every replica URL across all shards, deduplicated,
// in shard order.
func (m *ShardMap) AllNodes() []string {
	seen := make(map[string]bool)
	var out []string
	for _, reps := range m.Shards {
		for _, u := range reps {
			if !seen[u] {
				seen[u] = true
				out = append(out, u)
			}
		}
	}
	return out
}

// ParseShardFlags builds a ShardMap from command-line form: each shard
// is a comma-separated replica URL list ("http://a:1,http://a:2"), each
// table a "name:keycol" pair.
func ParseShardFlags(shards, tables []string) (*ShardMap, error) {
	m := &ShardMap{Tables: make(map[string]Placement)}
	for i, s := range shards {
		var reps []string
		for _, u := range strings.Split(s, ",") {
			u = strings.TrimSuffix(strings.TrimSpace(u), "/")
			if u == "" {
				continue
			}
			if !strings.Contains(u, "://") {
				u = "http://" + u
			}
			reps = append(reps, u)
		}
		if len(reps) == 0 {
			return nil, fmt.Errorf("cluster: shard %d has no replica URLs", i)
		}
		m.Shards = append(m.Shards, reps)
	}
	if len(m.Shards) == 0 {
		return nil, fmt.Errorf("cluster: at least one shard is required")
	}
	for _, t := range tables {
		name, key, ok := strings.Cut(t, ":")
		name, key = strings.TrimSpace(name), strings.TrimSpace(key)
		if !ok || name == "" || key == "" {
			return nil, fmt.Errorf("cluster: bad -table %q (want name:keycol)", t)
		}
		m.Tables[strings.ToLower(name)] = Placement{Sharded: true, KeyCol: strings.ToLower(key)}
	}
	return m, nil
}
