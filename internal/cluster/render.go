package cluster

// AST → SQL text rendering now lives in internal/sql (the fuzz suite
// round-trips through it too); these wrappers keep the cluster-local
// names the splitter and coordinator use.

import "vectorwise/internal/sql"

// RenderSelect renders a SELECT statement as parseable SQL text.
func RenderSelect(s *sql.SelectStmt) string { return sql.RenderSelect(s) }

// RenderExpr renders an expression as parseable SQL text.
func RenderExpr(e sql.Expr) string { return sql.RenderExpr(e) }

// RenderInsert renders an INSERT statement (the coordinator re-renders
// inserts after routing each VALUES row to its shard).
func RenderInsert(table string, rows [][]sql.Expr) string { return sql.RenderInsert(table, rows) }
