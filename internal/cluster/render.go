package cluster

// AST → SQL text rendering. The inter-node wire carries SQL (the nodes'
// /v1/query endpoint), so the coordinator's distributed planner works
// at the AST level: it parses the client statement, splits it into a
// per-shard partial SelectStmt and a coordinator merge SelectStmt, and
// renders both back to text. The renderer emits exactly the dialect the
// parser accepts — every rendered statement must re-parse.

import (
	"fmt"
	"strings"

	"vectorwise/internal/sql"
)

// RenderSelect renders a SELECT statement as parseable SQL text.
func RenderSelect(s *sql.SelectStmt) string {
	var b strings.Builder
	b.WriteString("SELECT ")
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		if it.Star {
			b.WriteString("*")
			continue
		}
		b.WriteString(RenderExpr(it.Expr))
		if it.Alias != "" {
			b.WriteString(" AS ")
			b.WriteString(it.Alias)
		}
	}
	b.WriteString(" FROM ")
	for i, tr := range s.From {
		if i > 0 {
			b.WriteString(", ")
		}
		writeTableRef(&b, tr)
	}
	for _, j := range s.Joins {
		switch j.Kind {
		case "left":
			b.WriteString(" LEFT JOIN ")
		case "semi":
			b.WriteString(" SEMI JOIN ")
		case "anti":
			b.WriteString(" ANTI JOIN ")
		default:
			b.WriteString(" JOIN ")
		}
		writeTableRef(&b, j.Table)
		b.WriteString(" ON ")
		for i, on := range j.On {
			if i > 0 {
				b.WriteString(" AND ")
			}
			b.WriteString(RenderExpr(on.L))
			b.WriteString(" = ")
			b.WriteString(RenderExpr(on.R))
		}
	}
	if s.Where != nil {
		b.WriteString(" WHERE ")
		b.WriteString(RenderExpr(s.Where))
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(RenderExpr(g))
		}
	}
	if s.Having != nil {
		b.WriteString(" HAVING ")
		b.WriteString(RenderExpr(s.Having))
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(RenderExpr(o.Expr))
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if s.Limit >= 0 {
		fmt.Fprintf(&b, " LIMIT %d", s.Limit)
	}
	return b.String()
}

func writeTableRef(b *strings.Builder, tr sql.TableRef) {
	b.WriteString(tr.Table)
	if tr.Alias != "" && tr.Alias != tr.Table {
		b.WriteString(" ")
		b.WriteString(tr.Alias)
	}
}

// RenderExpr renders an expression as parseable SQL text. Binary
// operations are fully parenthesized, so rendering never needs the
// parser's precedence table.
func RenderExpr(e sql.Expr) string {
	switch t := e.(type) {
	case *sql.Ident:
		if t.Qualifier != "" {
			return t.Qualifier + "." + t.Name
		}
		return t.Name
	case *sql.NumLit:
		return t.Text
	case *sql.StrLit:
		return quoteStr(t.Val)
	case *sql.DateLit:
		return "DATE '" + t.Val + "'"
	case *sql.BoolLit:
		if t.Val {
			return "TRUE"
		}
		return "FALSE"
	case *sql.NullLit:
		return "NULL"
	case *sql.ParamExpr:
		return fmt.Sprintf("$%d", t.Idx)
	case *sql.BinExpr:
		return "(" + RenderExpr(t.L) + " " + t.Op + " " + RenderExpr(t.R) + ")"
	case *sql.NotExpr:
		return "(NOT " + RenderExpr(t.In) + ")"
	case *sql.BetweenExpr:
		return "(" + RenderExpr(t.In) + " BETWEEN " + RenderExpr(t.Lo) +
			" AND " + RenderExpr(t.Hi) + ")"
	case *sql.InExpr:
		var b strings.Builder
		b.WriteString(RenderExpr(t.In))
		b.WriteString(" IN (")
		for i, m := range t.List {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(RenderExpr(m))
		}
		b.WriteString(")")
		return b.String()
	case *sql.LikeExpr:
		op := " LIKE "
		if t.Negate {
			op = " NOT LIKE "
		}
		return RenderExpr(t.In) + op + quoteStr(t.Pattern)
	case *sql.IsNullExpr:
		if t.Negate {
			return RenderExpr(t.In) + " IS NOT NULL"
		}
		return RenderExpr(t.In) + " IS NULL"
	case *sql.CaseExpr:
		return "CASE WHEN " + RenderExpr(t.Cond) + " THEN " + RenderExpr(t.Then) +
			" ELSE " + RenderExpr(t.Else) + " END"
	case *sql.AggCall:
		if t.Arg == nil {
			return t.Fn + "(*)"
		}
		return t.Fn + "(" + RenderExpr(t.Arg) + ")"
	case *sql.FuncCall:
		return t.Fn + "(" + RenderExpr(t.Arg) + ")"
	default:
		return fmt.Sprintf("/*unrenderable %T*/", e)
	}
}

// RenderInsert renders an INSERT statement (the coordinator re-renders
// inserts after routing each VALUES row to its shard).
func RenderInsert(table string, rows [][]sql.Expr) string {
	var b strings.Builder
	b.WriteString("INSERT INTO ")
	b.WriteString(table)
	b.WriteString(" VALUES ")
	for i, row := range rows {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString("(")
		for j, v := range row {
			if j > 0 {
				b.WriteString(", ")
			}
			b.WriteString(RenderExpr(v))
		}
		b.WriteString(")")
	}
	return b.String()
}

func quoteStr(s string) string {
	return "'" + strings.ReplaceAll(s, "'", "''") + "'"
}
