package cluster

// The coordinator's read path: SELECTs are classified against the shard
// map, validated on the local schema DB (which also yields the wire
// schema), scattered as per-shard SQL, and merged — either streamed
// straight through a core.RemoteExchange union, or re-aggregated by the
// local engine over a scratch staging table when the split produced a
// merge statement.

import (
	"context"
	"fmt"
	"strings"

	vectorwise "vectorwise"
	"vectorwise/internal/core"
	"vectorwise/internal/sql"
	"vectorwise/internal/vector"
	"vectorwise/internal/vtypes"
)

// Result is a streaming distributed query result — the cluster-level
// analogue of vectorwise.Rows.
type Result struct {
	cols  []string
	next  func() (*vector.Batch, error)
	close func() error
}

// Columns returns the output column names.
func (r *Result) Columns() []string { return r.cols }

// NextBatch returns the next result batch, (nil, nil) at end of stream.
func (r *Result) NextBatch() (*vector.Batch, error) { return r.next() }

// Close releases the result's resources.
func (r *Result) Close() error { return r.close() }

// Query runs a SELECT (or set-operation) statement against the cluster.
func (co *Coordinator) Query(ctx context.Context, sqlText string) (*Result, error) {
	st, err := sql.Parse(sqlText)
	if err != nil {
		return nil, err
	}
	if st.NumParams > 0 {
		st.Release()
		return nil, fmt.Errorf("cluster: parameter placeholders are not supported by the coordinator")
	}
	switch st.AST.(type) {
	case *sql.SelectStmt, *sql.SetOpStmt:
	default:
		st.Release()
		return nil, fmt.Errorf("cluster: Query needs a SELECT; use Exec for DDL/DML")
	}
	co.queries.Add(1)
	dp, err := splitStmt(st.AST, sqlText, co.m)
	// The distributed plan carries rendered SQL text only, so the AST's
	// arena can go back to the pool before any fan-out.
	st.Release()
	if err != nil {
		return nil, err
	}
	// Validate the shard statement locally before any fan-out; its
	// schema types the wire decode on every path.
	shardSchema, err := co.validate(ctx, dp.shardSQL)
	if err != nil {
		return nil, err
	}
	kinds := schemaKinds(shardSchema)

	switch {
	case dp.class == classLocal:
		// All referenced tables are replicated: one node answers. Spread
		// the load round-robin across shards; failover runs through that
		// shard's whole replica set.
		si := int(co.rr.Add(1)-1) % co.m.NumShards()
		src := co.source(ctx, si, dp.shardSQL, kinds, false)
		return co.exchangeResult(ctx, shardSchema, []core.BatchSource{src})
	case dp.mergeSQL == "":
		// Pure gather: the union of shard streams is the answer.
		return co.exchangeResult(ctx, shardSchema, co.allSources(ctx, dp.shardSQL, kinds, false))
	default:
		return co.mergeResult(ctx, dp, shardSchema, kinds)
	}
}

// validate plans a statement on the (empty) schema DB, returning its
// output schema.
func (co *Coordinator) validate(ctx context.Context, sqlText string) (*vtypes.Schema, error) {
	rows, err := co.schema.QueryContext(ctx, sqlText)
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	return rows.Schema().Clone(), nil
}

// source builds the failover stream source for one shard.
func (co *Coordinator) source(ctx context.Context, shard int, sqlText string, kinds []vtypes.Kind, buffered bool) *shardSource {
	return &shardSource{
		ctx:      ctx,
		c:        co.c,
		shard:    shard,
		replicas: co.health.order(co.m.Shards[shard]),
		sql:      sqlText,
		kinds:    kinds,
		buffered: buffered,
		stats:    co.stats[shard],
	}
}

func (co *Coordinator) allSources(ctx context.Context, sqlText string, kinds []vtypes.Kind, buffered bool) []core.BatchSource {
	out := make([]core.BatchSource, co.m.NumShards())
	for i := range out {
		out[i] = co.source(ctx, i, sqlText, kinds, buffered)
	}
	return out
}

// exchangeResult streams the union of the sources through a
// RemoteExchange operator.
func (co *Coordinator) exchangeResult(ctx context.Context, schema *vtypes.Schema, sources []core.BatchSource) (*Result, error) {
	x, err := core.NewRemoteExchange(schema, sources)
	if err != nil {
		return nil, err
	}
	x.SetContext(ctx)
	if err := x.Open(); err != nil {
		x.Close()
		return nil, err
	}
	return &Result{
		cols:  schemaNames(schema),
		next:  x.Next,
		close: x.Close,
	}, nil
}

// mergeResult drains every shard's partial stream into a staging table
// of a scratch in-memory engine, then runs the merge statement over it;
// the final result is the scratch engine's normal Rows cursor. Sources
// are buffered, so a replica dying at any point of the drain fails over
// invisibly.
func (co *Coordinator) mergeResult(ctx context.Context, dp *distPlan, shardSchema *vtypes.Schema, kinds []vtypes.Kind) (*Result, error) {
	scratch := vectorwise.OpenMemory()
	ok := false
	defer func() {
		if !ok {
			scratch.Close()
		}
	}()
	if _, err := scratch.Exec(stagingDDL(shardSchema)); err != nil {
		return nil, err
	}

	x, err := core.NewRemoteExchange(shardSchema, co.allSources(ctx, dp.shardSQL, kinds, true))
	if err != nil {
		return nil, err
	}
	x.SetContext(ctx)
	if err := x.Open(); err != nil {
		x.Close()
		return nil, err
	}
	cols, nulls := newColumnBuffers(kinds)
	for {
		b, err := x.Next()
		if err != nil {
			x.Close()
			return nil, err
		}
		if b == nil {
			break
		}
		appendBatch(cols, nulls, b, kinds)
	}
	if err := x.Close(); err != nil {
		return nil, err
	}
	if _, err := scratch.LoadBatch(StagingTable, cols, nulls); err != nil {
		return nil, err
	}
	rows, err := scratch.QueryContext(ctx, dp.mergeSQL)
	if err != nil {
		return nil, err
	}
	ok = true
	return &Result{
		cols: rows.Columns(),
		next: rows.NextBatch,
		close: func() error {
			err := rows.Close()
			if cerr := scratch.Close(); err == nil {
				err = cerr
			}
			return err
		},
	}, nil
}

// stagingDDL renders the staging table's CREATE TABLE from the shard
// statement's output schema. Every column is nullable: partial SUM over
// an empty shard is NULL by SQL rules, and re-aggregation ignores NULLs.
func stagingDDL(schema *vtypes.Schema) string {
	var b strings.Builder
	b.WriteString("CREATE TABLE ")
	b.WriteString(StagingTable)
	b.WriteString(" (")
	for i, c := range schema.Cols {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.Name)
		b.WriteString(" ")
		b.WriteString(sqlType(c.Kind))
		b.WriteString(" NULL")
	}
	b.WriteString(")")
	return b.String()
}

func sqlType(k vtypes.Kind) string {
	switch k {
	case vtypes.KindI64:
		return "BIGINT"
	case vtypes.KindF64:
		return "DOUBLE"
	case vtypes.KindStr:
		return "VARCHAR"
	case vtypes.KindBool:
		return "BOOLEAN"
	case vtypes.KindDate:
		return "DATE"
	default:
		return "BIGINT"
	}
}

func schemaKinds(s *vtypes.Schema) []vtypes.Kind {
	out := make([]vtypes.Kind, s.Len())
	for i, c := range s.Cols {
		out[i] = c.Kind
	}
	return out
}

func schemaNames(s *vtypes.Schema) []string {
	out := make([]string, s.Len())
	for i, c := range s.Cols {
		out[i] = c.Name
	}
	return out
}

// newColumnBuffers allocates LoadBatch-shaped column accumulators.
func newColumnBuffers(kinds []vtypes.Kind) (cols []any, nulls [][]bool) {
	cols = make([]any, len(kinds))
	nulls = make([][]bool, len(kinds))
	for i, k := range kinds {
		switch k.StorageClass() {
		case vtypes.ClassI64:
			cols[i] = []int64{}
		case vtypes.ClassF64:
			cols[i] = []float64{}
		case vtypes.ClassStr:
			cols[i] = []string{}
		case vtypes.ClassBool:
			cols[i] = []bool{}
		}
	}
	return cols, nulls
}

// appendBatch appends a dense batch's live rows onto the accumulators.
func appendBatch(cols []any, nulls [][]bool, b *vector.Batch, kinds []vtypes.Kind) {
	for j, k := range kinds {
		v := b.Vecs[j]
		for i := 0; i < b.N; i++ {
			ix := b.LiveIndex(i)
			null := v.Nulls != nil && v.Nulls[ix]
			nulls[j] = append(nulls[j], null)
			switch k.StorageClass() {
			case vtypes.ClassI64:
				cols[j] = append(cols[j].([]int64), v.I64[ix])
			case vtypes.ClassF64:
				cols[j] = append(cols[j].([]float64), v.F64[ix])
			case vtypes.ClassStr:
				cols[j] = append(cols[j].([]string), v.Str[ix])
			case vtypes.ClassBool:
				cols[j] = append(cols[j].([]bool), v.B[ix])
			}
		}
	}
}
