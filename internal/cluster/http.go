package cluster

// The coordinator's HTTP face. It speaks the same /v1/query wire as a
// single vwserve node — including ?stream=1 NDJSON with the typed
// error trailer — so clients (and the TPC-H differential harness) can
// point at a coordinator or a node interchangeably. /v1/cluster adds
// the distributed observability a node does not have: topology, replica
// health, and per-shard query/bytes/failover counters.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"vectorwise/internal/server"
	"vectorwise/internal/sql"
)

// Handler returns the coordinator's HTTP API.
func (co *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/query", co.handleQuery)
	mux.HandleFunc("POST /v1/load", co.handleLoad)
	mux.HandleFunc("GET /v1/cluster", co.handleCluster)
	mux.HandleFunc("GET /v1/stats", co.handleCluster)
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, server.ErrorResponse{Error: server.ErrorBody{Code: code, Message: msg}})
}

func (co *Coordinator) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req server.QueryRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	if req.SQL == "" || req.Stmt != "" || req.Session != "" || len(req.Params) > 0 || req.Explain {
		writeError(w, http.StatusBadRequest, "bad_request",
			`the coordinator supports plain "sql" statements only (no sessions, prepared statements, params or explain yet)`)
		return
	}
	ctx := r.Context()
	if req.TimeoutMs > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMs)*time.Millisecond)
		defer cancel()
	}
	st, err := sql.Parse(req.SQL)
	if err != nil {
		body := server.ErrorBody{Code: "bad_request", Message: err.Error(), Position: server.PositionOf(err)}
		writeJSON(w, http.StatusBadRequest, server.ErrorResponse{Error: body})
		return
	}
	var isSelect bool
	switch st.AST.(type) {
	case *sql.SelectStmt, *sql.SetOpStmt:
		isSelect = true
	}
	st.Release()
	start := time.Now()
	if !isSelect {
		n, err := co.Exec(ctx, req.SQL)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad_request", err.Error())
			return
		}
		writeJSON(w, http.StatusOK, server.QueryResponse{
			RowsAffected: &n,
			ElapsedMs:    float64(time.Since(start)) / float64(time.Millisecond),
		})
		return
	}
	res, err := co.Query(ctx, req.SQL)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	defer res.Close()
	if r.URL.Query().Get("stream") == "1" {
		co.streamResult(w, res, start)
		return
	}
	var rows [][]any
	for {
		b, err := res.NextBatch()
		if err != nil {
			writeError(w, http.StatusBadRequest, "query_failed", err.Error())
			return
		}
		if b == nil {
			break
		}
		rows = append(rows, server.EncodeBatch(b)...)
	}
	writeJSON(w, http.StatusOK, server.QueryResponse{
		Columns:   res.Columns(),
		Rows:      rows,
		ElapsedMs: float64(time.Since(start)) / float64(time.Millisecond),
	})
}

// streamResult streams a distributed result as the same NDJSON protocol
// a node emits, typed error trailer included.
func (co *Coordinator) streamResult(w http.ResponseWriter, res *Result, start time.Time) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	rc := http.NewResponseController(w)
	writeLine := func(v any) error {
		if err := enc.Encode(v); err != nil {
			return err
		}
		return rc.Flush()
	}
	if err := writeLine(server.StreamHeader{Columns: res.Columns()}); err != nil {
		return
	}
	var total int64
	for {
		b, err := res.NextBatch()
		if err != nil {
			kind := "query"
			if errors.Is(err, context.DeadlineExceeded) {
				kind = "timeout"
			} else if errors.Is(err, context.Canceled) {
				kind = "canceled"
			}
			_ = writeLine(server.StreamErrorTrailer{
				Error: server.ErrorBody{Code: "query_failed", Message: err.Error()},
				Kind:  kind,
			})
			return
		}
		if b == nil {
			break
		}
		if err := writeLine(server.StreamBatch{Rows: server.EncodeBatch(b)}); err != nil {
			return
		}
		total += int64(b.N)
	}
	_ = writeLine(server.StreamTrailer{
		Done:      true,
		RowsTotal: total,
		ElapsedMs: float64(time.Since(start)) / float64(time.Millisecond),
	})
}

func (co *Coordinator) handleLoad(w http.ResponseWriter, r *http.Request) {
	table := r.URL.Query().Get("table")
	if table == "" {
		writeError(w, http.StatusBadRequest, "bad_request", `missing "table" query parameter`)
		return
	}
	header, _ := strconv.ParseBool(r.URL.Query().Get("header"))
	opts := LoadOptions{
		Header: header,
		Null:   r.URL.Query().Get("null"),
	}
	n, err := co.LoadCSV(r.Context(), table, http.MaxBytesReader(w, r.Body, 1<<30), opts)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	writeJSON(w, http.StatusOK, server.LoadResponse{RowsLoaded: n})
}

// ShardInfo is one shard's slice of the /v1/cluster response.
type ShardInfo struct {
	Replicas []ReplicaHealth    `json:"replicas"`
	Stats    ShardStatsSnapshot `json:"stats"`
}

// ClusterResponse is the /v1/cluster (and coordinator /v1/stats) body.
type ClusterResponse struct {
	Shards  []ShardInfo          `json:"shards"`
	Tables  map[string]Placement `json:"tables"`
	Queries int64                `json:"queries"`
	Uptime  string               `json:"uptime"`
}

func (co *Coordinator) handleCluster(w http.ResponseWriter, r *http.Request) {
	resp := ClusterResponse{
		Tables:  co.m.Tables,
		Queries: co.queries.Load(),
		Uptime:  fmt.Sprintf("%dms", time.Since(co.started).Milliseconds()),
	}
	for si, reps := range co.m.Shards {
		resp.Shards = append(resp.Shards, ShardInfo{
			Replicas: co.health.snapshot(reps),
			Stats:    co.stats[si].Snapshot(),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}
