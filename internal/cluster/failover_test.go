package cluster

// Failover tests: a replica dying mid-query must neither fail the query
// nor corrupt its result. The dying replica is modeled by a proxy that,
// once armed, truncates every response a few bytes in and aborts the
// connection — exactly what a killed process looks like from the
// coordinator's side of the wire.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	vectorwise "vectorwise"
	"vectorwise/internal/server"
	"vectorwise/internal/tpch"
	"vectorwise/internal/tpchdb"
)

// flakyProxy fronts one vwserve node. Unarmed it forwards faithfully;
// armed it writes at most cut bytes of any response and then kills the
// connection.
type flakyProxy struct {
	backend string
	cut     int64
	armed   chan struct{} // closed to arm
}

func newFlakyProxy(backend string, cut int64) *flakyProxy {
	return &flakyProxy{backend: backend, cut: cut, armed: make(chan struct{})}
}

func (p *flakyProxy) isArmed() bool {
	select {
	case <-p.armed:
		return true
	default:
		return false
	}
}

func (p *flakyProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	url := p.backend + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, url, r.Body)
	if err != nil {
		panic(http.ErrAbortHandler)
	}
	req.Header = r.Header.Clone()
	resp, err := http.DefaultTransport.RoundTrip(req)
	if err != nil {
		panic(http.ErrAbortHandler)
	}
	defer resp.Body.Close()
	w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
	w.WriteHeader(resp.StatusCode)
	if !p.isArmed() {
		_, _ = io.Copy(w, resp.Body)
		return
	}
	_, _ = io.CopyN(w, resp.Body, p.cut)
	_ = http.NewResponseController(w).Flush()
	panic(http.ErrAbortHandler)
}

// newFailoverCluster builds shards shards of two replicas each: replica
// 0 sits behind a flaky proxy, replica 1 is plain. The health prober is
// effectively disabled so replica order stays deterministic — the
// coordinator always tries the (possibly armed) proxy first.
func newFailoverCluster(t *testing.T, shards int, cut int64, tables []string) (*Coordinator, []*flakyProxy, [][]*vectorwise.DB) {
	t.Helper()
	m := &ShardMap{Tables: make(map[string]Placement)}
	var proxies []*flakyProxy
	var nodes [][]*vectorwise.DB
	for si := 0; si < shards; si++ {
		var dbs []*vectorwise.DB
		var urls []string
		for ri := 0; ri < 2; ri++ {
			db := vectorwise.OpenMemory()
			s := server.New(db, server.Config{Name: fmt.Sprintf("s%dr%d", si, ri)})
			ts := httptest.NewServer(s.Handler())
			t.Cleanup(func() { ts.Close(); s.Close() })
			dbs = append(dbs, db)
			if ri == 0 {
				p := newFlakyProxy(ts.URL, cut)
				pts := httptest.NewServer(p)
				t.Cleanup(pts.Close)
				proxies = append(proxies, p)
				urls = append(urls, pts.URL)
			} else {
				urls = append(urls, ts.URL)
			}
		}
		nodes = append(nodes, dbs)
		m.Shards = append(m.Shards, urls)
	}
	for _, spec := range tables {
		name, key, _ := cutSpec(spec)
		m.Tables[name] = Placement{Sharded: true, KeyCol: key}
	}
	co, err := New(Config{Map: m, HealthInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { co.Close() })
	return co, proxies, nodes
}

func cutSpec(spec string) (string, string, bool) {
	for i := range spec {
		if spec[i] == ':' {
			return spec[:i], spec[i+1:], true
		}
	}
	return spec, "", false
}

func coQuery(t *testing.T, co *Coordinator, sqlText string) [][]any {
	t.Helper()
	res, err := co.Query(context.Background(), sqlText)
	if err != nil {
		t.Fatalf("query %q: %v", sqlText, err)
	}
	defer res.Close()
	rows, err := drainResult(res)
	if err != nil {
		t.Fatalf("drain %q: %v", sqlText, err)
	}
	return rows
}

// TestFailoverMidQueryTPCH kills shard 0's primary replica and runs the
// TPC-H suite: every query must return exactly what it returned with
// all replicas alive, and the failover counter must move.
func TestFailoverMidQueryTPCH(t *testing.T) {
	if testing.Short() {
		t.Skip("loads TPC-H on seven engines")
	}
	co, proxies, _ := newFailoverCluster(t, 3, 96,
		[]string{"lineitem:l_orderkey", "orders:o_orderkey"})
	for _, ddl := range tpch.DDL() {
		if _, err := co.Exec(context.Background(), ddl); err != nil {
			t.Fatal(err)
		}
	}
	data, err := tpchdb.GenerateCSV(diffSF)
	if err != nil {
		t.Fatal(err)
	}
	for table, csv := range data {
		if _, err := co.LoadCSV(context.Background(), table, bytes.NewReader(csv), LoadOptions{}); err != nil {
			t.Fatalf("load %s: %v", table, err)
		}
	}

	var suite []tpch.SQLQuery
	for _, q := range tpch.SQLSuite() {
		if distributable(co.m, q.SQL) {
			suite = append(suite, q)
		}
	}
	baseline := make(map[string][][]any)
	for _, q := range suite {
		baseline[q.Name] = coQuery(t, co, q.SQL)
	}

	// Shard 0's primary now dies 96 bytes into every response — after
	// the stream header, inside the first batch.
	close(proxies[0].armed)

	for _, q := range suite {
		got := coQuery(t, co, q.SQL)
		want := baseline[q.Name]
		stmt := mustParseSelect(t, q.SQL)
		if len(stmt.OrderBy) == 0 {
			sortRows(got)
			sortRows(want)
		}
		diffRows(t, q.Name, got, want)
	}

	stats, err := co.Query(context.Background(), `SELECT 1 FROM region LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	stats.Close()
	if n := co.stats[0].Failovers.Load(); n == 0 {
		t.Fatal("failover counter did not move")
	}
}

// TestFailoverUnbufferedGather exercises the streaming (non-merge)
// path, where failover is only legal before the first emitted batch.
func TestFailoverUnbufferedGather(t *testing.T) {
	co, proxies, _ := newFailoverCluster(t, 2, 16, []string{"ev:e_id"})
	ctx := context.Background()
	if _, err := co.Exec(ctx, `CREATE TABLE ev (e_id BIGINT, e_v DOUBLE)`); err != nil {
		t.Fatal(err)
	}
	var vals []string
	for i := 1; i <= 200; i++ {
		vals = append(vals, fmt.Sprintf("(%d, %d.5)", i, i))
	}
	if _, err := co.Exec(ctx, "INSERT INTO ev VALUES "+joinComma(vals)); err != nil {
		t.Fatal(err)
	}

	before := coQuery(t, co, `SELECT e_id FROM ev`)
	for _, p := range proxies {
		close(p.armed) // all primaries die 16 bytes in — inside the header
	}
	after := coQuery(t, co, `SELECT e_id FROM ev`)
	sortRows(before)
	sortRows(after)
	if !rowsEqual(before, after) {
		t.Fatalf("gather after failover diverges: %d vs %d rows", len(after), len(before))
	}
	var failovers int64
	for _, s := range co.stats {
		failovers += s.Failovers.Load()
	}
	if failovers == 0 {
		t.Fatal("no failovers recorded")
	}
}

// TestFailoverAllReplicasDead pins the failure mode: when every replica
// of a shard is gone the query errors cleanly instead of hanging or
// returning partial data.
func TestFailoverAllReplicasDead(t *testing.T) {
	m := &ShardMap{Tables: map[string]Placement{"ev": {Sharded: true, KeyCol: "e_id"}}}
	var proxies []*flakyProxy
	var urls []string
	for i := 0; i < 2; i++ {
		db := vectorwise.OpenMemory()
		s := server.New(db, server.Config{})
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(func() { ts.Close(); s.Close() })
		p := newFlakyProxy(ts.URL, 1)
		pts := httptest.NewServer(p)
		t.Cleanup(pts.Close)
		proxies = append(proxies, p)
		urls = append(urls, pts.URL)
	}
	m.Shards = [][]string{urls}

	co, err := New(Config{Map: m, HealthInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { co.Close() })
	ctx := context.Background()
	if _, err := co.Exec(ctx, `CREATE TABLE ev (e_id BIGINT, e_v DOUBLE)`); err != nil {
		t.Fatal(err)
	}
	if _, err := co.Exec(ctx, `INSERT INTO ev VALUES (1, 1.5), (2, 2.5)`); err != nil {
		t.Fatal(err)
	}
	close(proxies[0].armed)
	close(proxies[1].armed)

	res, err := co.Query(ctx, `SELECT SUM(e_v) FROM ev`)
	if err == nil {
		_, err = drainResult(res)
		res.Close()
	}
	if err == nil {
		t.Fatal("want error when every replica is dead")
	}
}

func joinComma(parts []string) string {
	var b []byte
	for i, p := range parts {
		if i > 0 {
			b = append(b, ", "...)
		}
		b = append(b, p...)
	}
	return string(b)
}
