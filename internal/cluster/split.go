package cluster

// The distributed planner: classify a SELECT against the shard map and
// split it into a per-shard partial statement plus a coordinator merge
// statement. The split happens at the AST level because the inter-node
// wire speaks SQL; the algebra-level machinery this mirrors is the
// rewriter's intra-node aggregate parallelization (AggNode.Partial +
// recombination), lifted one level so the "partitions" are remote
// processes instead of goroutines.

import (
	"errors"
	"fmt"
	"strings"

	"vectorwise/internal/sql"
)

// errNotDistributable marks a statement shape the splitter cannot fan
// out — set operations and subqueries touching sharded data. Callers
// that probe distributability (the differential harness) match on it.
var errNotDistributable = errors.New(
	"cluster: set operations and subqueries are only supported when every referenced table is replicated")

// planClass says how a SELECT executes against the cluster.
type planClass int

const (
	// classLocal: the statement touches no sharded table, so any single
	// node holds all its data (dimensions are replicated everywhere).
	classLocal planClass = iota
	// classGather: sharded data, no aggregation — every shard runs the
	// statement and the coordinator unions the streams (re-sorting when
	// the statement ordered or limited its output).
	classGather
	// classAggregate: sharded data under GROUP BY/aggregates — shards
	// compute partial aggregates, the coordinator re-aggregates.
	classAggregate
)

// StagingTable is the scratch-DB table the coordinator stages shard
// partials in before running the merge statement over it.
const StagingTable = "_partials"

// distPlan is one SELECT split for distributed execution.
type distPlan struct {
	class planClass
	// shardSQL runs on every shard (classGather/classAggregate) or on
	// one replica set (classLocal).
	shardSQL string
	// mergeSQL, when non-empty, runs on the coordinator's scratch DB
	// over StagingTable filled with the shards' rows.
	mergeSQL string
}

// splitStmt classifies any query statement. Set operations and SELECTs
// with subqueries execute whole on one node, so they are legal only
// over replicated tables (any node holds all the data); plain SELECTs
// take the splitting path.
func splitStmt(stmt sql.Stmt, rawSQL string, m *ShardMap) (*distPlan, error) {
	sel, isSel := stmt.(*sql.SelectStmt)
	if !isSel || containsSubqueries(sel) {
		for _, t := range stmtTables(stmt) {
			if m.Placement(t).Sharded {
				return nil, errNotDistributable
			}
		}
		return &distPlan{class: classLocal, shardSQL: rawSQL}, nil
	}
	return split(sel, rawSQL, m)
}

// stmtTables collects every table a query statement references,
// descending through set-operation branches and subqueries.
func stmtTables(stmt sql.Stmt) []string {
	var out []string
	var walkSel func(s *sql.SelectStmt)
	var walkStmt func(s sql.Stmt)
	noteSubs := func(e sql.Expr) {
		walkExpr(e, func(x sql.Expr) {
			switch t := x.(type) {
			case *sql.SubqueryExpr:
				walkSel(t.Sel)
			case *sql.InSubExpr:
				walkSel(t.Sel)
			}
		})
	}
	walkSel = func(s *sql.SelectStmt) {
		for _, tr := range s.From {
			out = append(out, strings.ToLower(tr.Table))
		}
		for _, j := range s.Joins {
			out = append(out, strings.ToLower(j.Table.Table))
		}
		noteSubs(s.Where)
		noteSubs(s.Having)
	}
	walkStmt = func(s sql.Stmt) {
		switch t := s.(type) {
		case *sql.SelectStmt:
			walkSel(t)
		case *sql.SetOpStmt:
			walkStmt(t.Left)
			walkStmt(t.Right)
		}
	}
	walkStmt(stmt)
	return out
}

// containsSubqueries reports whether the SELECT has a subquery in its
// WHERE or HAVING clause.
func containsSubqueries(s *sql.SelectStmt) bool {
	found := false
	note := func(e sql.Expr) {
		walkExpr(e, func(x sql.Expr) {
			switch x.(type) {
			case *sql.SubqueryExpr, *sql.InSubExpr:
				found = true
			}
		})
	}
	note(s.Where)
	note(s.Having)
	return found
}

// split classifies stmt against the shard map and builds its
// distributed plan. rawSQL is the original statement text, forwarded
// verbatim on the classLocal path.
func split(stmt *sql.SelectStmt, rawSQL string, m *ShardMap) (*distPlan, error) {
	sharded, err := shardedTables(stmt, m)
	if err != nil {
		return nil, err
	}
	if len(sharded) == 0 {
		return &distPlan{class: classLocal, shardSQL: rawSQL}, nil
	}
	if hasAggregation(stmt) {
		shard, merge, err := splitAggregate(stmt)
		if err != nil {
			return nil, err
		}
		return &distPlan{
			class:    classAggregate,
			shardSQL: RenderSelect(shard),
			mergeSQL: RenderSelect(merge),
		}, nil
	}
	return splitGather(stmt), nil
}

// shardedTables returns the sharded tables stmt references and verifies
// that any join between two sharded tables is on their shard keys (rows
// that join are then co-located, so the join is shard-local — Vertica's
// identically-segmented join). A cross-shard join would need a
// repartitioning exchange the wire does not have yet.
func shardedTables(stmt *sql.SelectStmt, m *ShardMap) (map[string]Placement, error) {
	sharded := make(map[string]Placement)
	note := func(t string) {
		if p := m.Placement(strings.ToLower(t)); p.Sharded {
			sharded[strings.ToLower(t)] = p
		}
	}
	for _, tr := range stmt.From {
		note(tr.Table)
	}
	for _, j := range stmt.Joins {
		note(j.Table.Table)
	}
	if len(sharded) <= 1 {
		return sharded, nil
	}
	// Every join clause whose table is sharded must carry an equality
	// between two shard-key columns. Column names are table-unique in
	// this dialect, so a name-level check suffices.
	keyCols := make(map[string]bool)
	for _, p := range sharded {
		keyCols[p.KeyCol] = true
	}
	for _, j := range stmt.Joins {
		p := m.Placement(strings.ToLower(j.Table.Table))
		if !p.Sharded {
			continue
		}
		ok := false
		for _, on := range j.On {
			l, lok := on.L.(*sql.Ident)
			r, rok := on.R.(*sql.Ident)
			if lok && rok && keyCols[strings.ToLower(l.Name)] && keyCols[strings.ToLower(r.Name)] {
				ok = true
				break
			}
		}
		if !ok {
			return nil, fmt.Errorf(
				"cluster: join with sharded table %s is not on its shard key (%s); cross-shard joins are unsupported",
				j.Table.Table, p.KeyCol)
		}
	}
	return sharded, nil
}

// hasAggregation reports whether stmt groups or aggregates.
func hasAggregation(stmt *sql.SelectStmt) bool {
	if len(stmt.GroupBy) > 0 {
		return true
	}
	for _, it := range stmt.Items {
		if !it.Star && containsAgg(it.Expr) {
			return true
		}
	}
	return false
}

// splitGather builds the plan for sharded non-aggregate SELECTs. The
// union of shard streams is already the answer; ORDER BY and LIMIT need
// a coordinator merge pass because per-shard order does not compose
// into global order. The staging table only carries the statement's
// output columns, so any ORDER BY key outside them — a column the
// projection dropped, or an expression — ships as a hidden _sN column
// the merge sorts by and then projects away.
func splitGather(stmt *sql.SelectStmt) *distPlan {
	if len(stmt.OrderBy) == 0 && stmt.Limit < 0 {
		return &distPlan{class: classGather, shardSQL: RenderSelect(stmt)}
	}
	shard := *stmt
	shard.Items = append([]sql.SelectItem(nil), stmt.Items...)

	// The staging schema: one column per non-star output. A star ships
	// every base column, making any ORDER BY key resolvable as-is.
	hasStar := false
	outNames := make(map[string]bool)
	for _, it := range stmt.Items {
		if it.Star {
			hasStar = true
			continue
		}
		outNames[strings.ToLower(outputName(it))] = true
	}
	stagingResolvable := func(e sql.Expr) bool {
		if hasStar {
			return true
		}
		ok := true
		walkExpr(e, func(x sql.Expr) {
			if id, isID := x.(*sql.Ident); isID && !outNames[strings.ToLower(id.Name)] {
				ok = false
			}
		})
		return ok
	}
	mergeOrder := make([]sql.OrderItem, len(stmt.OrderBy))
	hidden := 0
	for i, o := range stmt.OrderBy {
		if stagingResolvable(o.Expr) {
			mergeOrder[i] = o
			continue
		}
		name := fmt.Sprintf("_s%d", hidden)
		hidden++
		shard.Items = append(shard.Items, sql.SelectItem{Expr: o.Expr, Alias: name})
		mergeOrder[i] = sql.OrderItem{Expr: &sql.Ident{Name: name}, Desc: o.Desc}
	}
	mergeItems := []sql.SelectItem{{Star: true}}
	if hidden > 0 {
		// Hidden sort keys must not leak into the result set.
		mergeItems = nil
		for _, it := range stmt.Items {
			mergeItems = append(mergeItems, sql.SelectItem{Expr: &sql.Ident{Name: outputName(it)}})
		}
	}
	if stmt.Limit < 0 {
		// Without a LIMIT the per-shard sort is pure waste; with one it
		// bounds what each shard ships (top-N per shard re-merged is
		// top-N globally).
		shard.OrderBy = nil
	}
	merge := &sql.SelectStmt{
		Items:   mergeItems,
		From:    []sql.TableRef{{Table: StagingTable}},
		OrderBy: mergeOrder,
		Limit:   stmt.Limit,
	}
	return &distPlan{
		class:    classGather,
		shardSQL: RenderSelect(&shard),
		mergeSQL: RenderSelect(merge),
	}
}

// splitAggregate splits an aggregating SELECT into the per-shard
// partial statement and the coordinator merge statement.
//
// Shard side: SELECT g0 AS _g0, ..., partial-aggs AS _p0, ...
// with the original FROM/JOIN/WHERE/GROUP BY and no HAVING/ORDER/LIMIT.
// Merge side: the original select list with every aggregate replaced by
// its re-aggregation over the partial columns and every group
// expression replaced by its _gN column, over StagingTable, grouped by
// the _gN columns, with the original HAVING/ORDER BY/LIMIT rewritten
// the same way.
//
// Recombination rules (the SQL-level mirror of the rewriter's
// parallelizeAgg):
//
//	SUM(x)   → shard SUM(x)            merge SUM(_p)
//	COUNT(x) → shard COUNT(x)          merge SUM(_p)
//	COUNT(*) → shard COUNT(*)          merge SUM(_p)
//	MIN(x)   → shard MIN(x)            merge MIN(_p)
//	MAX(x)   → shard MAX(x)            merge MAX(_p)
//	AVG(x)   → shard SUM(1.0*(x)), COUNT(x)   merge SUM(_ps)/SUM(_pc)
//
// The 1.0* in AVG's partial forces a DOUBLE sum so the merge division
// is float division whatever x's type. Re-aggregation ignores NULLs, so
// the mandatory one-row result of a global aggregate on an empty shard
// (COUNT=0, SUM=NULL) merges away without special cases.
func splitAggregate(stmt *sql.SelectStmt) (shard, merge *sql.SelectStmt, err error) {
	if len(stmt.From) != 1 {
		return nil, nil, fmt.Errorf("cluster: expected a single FROM table")
	}

	// Group expressions, keyed by canonical rendering.
	groupIdx := make(map[string]int)
	for i, g := range stmt.GroupBy {
		groupIdx[RenderExpr(g)] = i
	}

	shard = &sql.SelectStmt{
		From:    stmt.From,
		Joins:   stmt.Joins,
		Where:   stmt.Where,
		GroupBy: stmt.GroupBy,
		Limit:   -1,
	}
	for i, g := range stmt.GroupBy {
		shard.Items = append(shard.Items, sql.SelectItem{Expr: g, Alias: fmt.Sprintf("_g%d", i)})
	}

	// Distinct aggregate calls across select list, HAVING and ORDER BY,
	// each mapped to its merge-side replacement expression.
	mergeAgg := make(map[string]sql.Expr)
	collect := func(e sql.Expr) error {
		var werr error
		walkExpr(e, func(x sql.Expr) {
			a, ok := x.(*sql.AggCall)
			if !ok || werr != nil {
				return
			}
			key := RenderExpr(a)
			if _, done := mergeAgg[key]; done {
				return
			}
			switch a.Fn {
			case "SUM", "MIN", "MAX":
				p := nextPartial(shard, &sql.AggCall{Fn: a.Fn, Arg: a.Arg})
				mergeAgg[key] = &sql.AggCall{Fn: mergeFn(a.Fn), Arg: p}
			case "COUNT":
				p := nextPartial(shard, &sql.AggCall{Fn: "COUNT", Arg: a.Arg})
				mergeAgg[key] = &sql.AggCall{Fn: "SUM", Arg: p}
			case "AVG":
				ps := nextPartial(shard, &sql.AggCall{Fn: "SUM", Arg: &sql.BinExpr{
					Op: "*", L: &sql.NumLit{Text: "1.0"}, R: a.Arg}})
				pc := nextPartial(shard, &sql.AggCall{Fn: "COUNT", Arg: a.Arg})
				mergeAgg[key] = &sql.BinExpr{
					Op: "/",
					L:  &sql.AggCall{Fn: "SUM", Arg: ps},
					R:  &sql.AggCall{Fn: "SUM", Arg: pc},
				}
			default:
				werr = fmt.Errorf("cluster: cannot distribute aggregate %s", a.Fn)
			}
		})
		return werr
	}
	for _, it := range stmt.Items {
		if it.Star {
			return nil, nil, fmt.Errorf("cluster: SELECT * cannot mix with aggregation")
		}
		if err := collect(it.Expr); err != nil {
			return nil, nil, err
		}
	}
	if stmt.Having != nil {
		if err := collect(stmt.Having); err != nil {
			return nil, nil, err
		}
	}
	for _, o := range stmt.OrderBy {
		if err := collect(o.Expr); err != nil {
			return nil, nil, err
		}
	}

	// rewrite maps an original expression onto the staging schema:
	// whole-expression matches of a group expression become its _gN
	// column, aggregate calls become their merge replacement, and
	// everything else recurses.
	var rewrite func(e sql.Expr) sql.Expr
	rewrite = func(e sql.Expr) sql.Expr {
		if i, ok := groupIdx[RenderExpr(e)]; ok {
			return &sql.Ident{Name: fmt.Sprintf("_g%d", i)}
		}
		if a, ok := e.(*sql.AggCall); ok {
			return mergeAgg[RenderExpr(a)]
		}
		switch t := e.(type) {
		case *sql.BinExpr:
			return &sql.BinExpr{Op: t.Op, L: rewrite(t.L), R: rewrite(t.R)}
		case *sql.NotExpr:
			return &sql.NotExpr{In: rewrite(t.In)}
		case *sql.BetweenExpr:
			return &sql.BetweenExpr{In: rewrite(t.In), Lo: rewrite(t.Lo), Hi: rewrite(t.Hi)}
		case *sql.InExpr:
			list := make([]sql.Expr, len(t.List))
			for i, m := range t.List {
				list[i] = rewrite(m)
			}
			return &sql.InExpr{In: rewrite(t.In), List: list}
		case *sql.LikeExpr:
			return &sql.LikeExpr{In: rewrite(t.In), Pattern: t.Pattern, Negate: t.Negate}
		case *sql.IsNullExpr:
			return &sql.IsNullExpr{In: rewrite(t.In), Negate: t.Negate}
		case *sql.CaseExpr:
			return &sql.CaseExpr{Cond: rewrite(t.Cond), Then: rewrite(t.Then), Else: rewrite(t.Else)}
		case *sql.FuncCall:
			return &sql.FuncCall{Fn: t.Fn, Arg: rewrite(t.Arg)}
		}
		return e
	}

	merge = &sql.SelectStmt{
		From:  []sql.TableRef{{Table: StagingTable}},
		Limit: stmt.Limit,
	}
	for _, it := range stmt.Items {
		merge.Items = append(merge.Items, sql.SelectItem{
			Expr:  rewrite(it.Expr),
			Alias: safeAlias(outputName(it)),
		})
	}
	for i := range stmt.GroupBy {
		merge.GroupBy = append(merge.GroupBy, &sql.Ident{Name: fmt.Sprintf("_g%d", i)})
	}
	if stmt.Having != nil {
		merge.Having = rewrite(stmt.Having)
	}
	// ORDER BY on the merge side runs after the merge projection, so it
	// must name output columns — a staging column like _g0 is renamed
	// away by then.
	for _, o := range stmt.OrderBy {
		e, err := mergeOrderExpr(stmt, merge, o.Expr, rewrite)
		if err != nil {
			return nil, nil, err
		}
		merge.OrderBy = append(merge.OrderBy, sql.OrderItem{Expr: e, Desc: o.Desc})
	}
	return shard, merge, nil
}

// mergeOrderExpr maps one ORDER BY expression onto the merge statement's
// output: select-alias references pass through, expressions matching a
// select item become that item's output column, anything else maps onto
// the staging schema.
func mergeOrderExpr(stmt, merge *sql.SelectStmt, e sql.Expr, rewrite func(sql.Expr) sql.Expr) (sql.Expr, error) {
	if id, ok := e.(*sql.Ident); ok {
		for _, it := range stmt.Items {
			if strings.EqualFold(it.Alias, id.Name) {
				return e, nil
			}
		}
	}
	key := RenderExpr(e)
	for i, it := range stmt.Items {
		if RenderExpr(it.Expr) == key {
			if a := merge.Items[i].Alias; a != "" {
				return &sql.Ident{Name: a}, nil
			}
			return nil, fmt.Errorf("cluster: ORDER BY expression %s needs an alias in the select list", key)
		}
	}
	return rewrite(e), nil
}

// nextPartial appends one partial-aggregate item to the shard statement
// and returns the staging column reference that carries it.
func nextPartial(shard *sql.SelectStmt, agg *sql.AggCall) *sql.Ident {
	name := fmt.Sprintf("_p%d", len(shard.Items)-len(shard.GroupBy))
	shard.Items = append(shard.Items, sql.SelectItem{Expr: agg, Alias: name})
	return &sql.Ident{Name: name}
}

func mergeFn(fn string) string {
	if fn == "SUM" {
		return "SUM"
	}
	return fn // MIN, MAX re-aggregate with themselves
}

// outputName mirrors the planner's output-column naming so the
// coordinator's result header matches single-node execution.
func outputName(item sql.SelectItem) string {
	if item.Alias != "" {
		return item.Alias
	}
	if id, ok := item.Expr.(*sql.Ident); ok {
		return id.Name
	}
	if ag, ok := item.Expr.(*sql.AggCall); ok {
		return strings.ToLower(ag.Fn)
	}
	return "expr"
}

// safeAlias returns name if it renders as a legal alias (aggregate
// names like "sum" are keywords and cannot follow AS), else "".
func safeAlias(name string) string {
	if _, err := sql.Parse("SELECT 1 AS " + name + " FROM t"); err != nil {
		return ""
	}
	return name
}

// walkExpr visits e and every sub-expression.
func walkExpr(e sql.Expr, fn func(sql.Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch t := e.(type) {
	case *sql.BinExpr:
		walkExpr(t.L, fn)
		walkExpr(t.R, fn)
	case *sql.NotExpr:
		walkExpr(t.In, fn)
	case *sql.BetweenExpr:
		walkExpr(t.In, fn)
		walkExpr(t.Lo, fn)
		walkExpr(t.Hi, fn)
	case *sql.InExpr:
		walkExpr(t.In, fn)
		for _, m := range t.List {
			walkExpr(m, fn)
		}
	case *sql.LikeExpr:
		walkExpr(t.In, fn)
	case *sql.IsNullExpr:
		walkExpr(t.In, fn)
	case *sql.CaseExpr:
		walkExpr(t.Cond, fn)
		walkExpr(t.Then, fn)
		walkExpr(t.Else, fn)
	case *sql.AggCall:
		walkExpr(t.Arg, fn)
	case *sql.FuncCall:
		walkExpr(t.Arg, fn)
	case *sql.InSubExpr:
		// The probe side is an ordinary expression; the subquery's own
		// tree (like SubqueryExpr's) is the visitor's to descend if it
		// cares — see stmtTables.
		walkExpr(t.In, fn)
	}
}

// containsAgg reports whether e contains an aggregate call.
func containsAgg(e sql.Expr) bool {
	found := false
	walkExpr(e, func(x sql.Expr) {
		if _, ok := x.(*sql.AggCall); ok {
			found = true
		}
	})
	return found
}
