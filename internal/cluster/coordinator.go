package cluster

// The coordinator: the initiator node of the distributed exchange. It
// owns the shard map, mirrors cluster DDL into a local empty "schema
// DB" (used to validate statements and derive wire schemas before any
// fan-out), routes ingest by shard key, scatters per-shard partial
// statements, and merges partial results — either straight through a
// core.RemoteExchange union or via a scratch staging table re-aggregated
// by the local engine, so final results always flow through the normal
// Rows cursor.

import (
	"bytes"
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	vectorwise "vectorwise"
	"vectorwise/internal/sql"
	"vectorwise/internal/vtypes"
)

// Config tunes a Coordinator.
type Config struct {
	// Map is the cluster topology (required).
	Map *ShardMap
	// Timeout bounds each shard request (default 30s).
	Timeout time.Duration
	// HealthInterval is the replica health poll period (default 2s).
	HealthInterval time.Duration
}

// Coordinator fronts a sharded + replicated vwserve cluster.
type Coordinator struct {
	m      *ShardMap
	c      *client
	health *healthTracker
	// schema is an empty local engine holding only the cluster's DDL:
	// incoming statements are planned against it first, so bad SQL fails
	// before any network fan-out, and its Rows.Schema() supplies the
	// column kinds the NDJSON wire decode needs.
	schema  *vectorwise.DB
	ddlMu   sync.Mutex
	stats   []*ShardStats
	queries atomic.Int64
	rr      atomic.Int64 // round-robin cursor for replicated-only reads
	started time.Time
}

// New builds a Coordinator over an existing cluster of vwserve nodes.
// The nodes are assumed empty (or identically initialized); issue DDL
// through the coordinator so the schema DB stays in sync.
func New(cfg Config) (*Coordinator, error) {
	if cfg.Map == nil || cfg.Map.NumShards() == 0 {
		return nil, fmt.Errorf("cluster: config needs a shard map")
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = 2 * time.Second
	}
	db := vectorwise.OpenMemory()
	db.SetParallelism(1) // schema DB plans, it never scans data
	c := newClient(cfg.Timeout)
	co := &Coordinator{
		m:       cfg.Map,
		c:       c,
		health:  newHealthTracker(c, cfg.Map.AllNodes(), cfg.HealthInterval),
		schema:  db,
		stats:   make([]*ShardStats, cfg.Map.NumShards()),
		started: time.Now(),
	}
	for i := range co.stats {
		co.stats[i] = &ShardStats{}
	}
	return co, nil
}

// Close stops the health prober and the schema DB.
func (co *Coordinator) Close() error {
	co.health.close()
	return co.schema.Close()
}

// Map returns the shard map.
func (co *Coordinator) Map() *ShardMap { return co.m }

// broadcast runs fn against every URL concurrently and returns the
// first error.
func broadcast(urls []string, fn func(url string) error) error {
	errs := make([]error, len(urls))
	var wg sync.WaitGroup
	for i, u := range urls {
		i, u := i, u
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = fn(u)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Exec runs a DDL or DML statement against the cluster, returning rows
// affected. DDL and non-routable DML broadcast to every node; INSERTs
// into sharded tables route each VALUES row by its shard key.
func (co *Coordinator) Exec(ctx context.Context, sqlText string) (int64, error) {
	st, err := sql.Parse(sqlText)
	if err != nil {
		return 0, err
	}
	defer st.Release()
	if st.NumParams > 0 {
		return 0, fmt.Errorf("cluster: parameter placeholders are not supported by the coordinator")
	}
	switch t := st.AST.(type) {
	case *sql.SelectStmt, *sql.SetOpStmt:
		return 0, fmt.Errorf("cluster: Exec cannot run SELECT; use Query")
	case *sql.CreateStmt:
		return 0, co.execDDL(ctx, sqlText)
	case *sql.InsertStmt:
		return co.execInsert(ctx, t, sqlText)
	case *sql.UpdateStmt:
		return co.execBroadcastDML(ctx, sqlText, t.Table)
	case *sql.DeleteStmt:
		return co.execBroadcastDML(ctx, sqlText, t.Table)
	default:
		return 0, fmt.Errorf("cluster: unsupported statement for coordinator execution")
	}
}

// execDDL applies DDL locally (validating it) then on every node.
func (co *Coordinator) execDDL(ctx context.Context, sqlText string) error {
	co.ddlMu.Lock()
	defer co.ddlMu.Unlock()
	if _, err := co.schema.Exec(sqlText); err != nil {
		return err
	}
	return broadcast(co.m.AllNodes(), func(u string) error {
		_, err := co.c.exec(ctx, u, sqlText)
		return err
	})
}

// execBroadcastDML runs an UPDATE/DELETE on every node. Each sharded
// row lives on exactly one shard, so summing one replica per shard
// counts every row once; for replicated tables every node mutates the
// same rows, so shard 0's count is the answer.
func (co *Coordinator) execBroadcastDML(ctx context.Context, sqlText, table string) (int64, error) {
	var mu sync.Mutex
	perShard := make([]int64, co.m.NumShards())
	for si, reps := range co.m.Shards {
		si := si
		if err := broadcast(reps, func(u string) error {
			qr, err := co.c.exec(ctx, u, sqlText)
			if err != nil {
				return err
			}
			if qr.RowsAffected != nil {
				mu.Lock()
				perShard[si] = *qr.RowsAffected
				mu.Unlock()
			}
			return nil
		}); err != nil {
			return 0, err
		}
	}
	if co.m.Placement(strings.ToLower(table)).Sharded {
		var total int64
		for _, n := range perShard {
			total += n
		}
		return total, nil
	}
	return perShard[0], nil
}

// execInsert routes INSERT rows: sharded tables split the VALUES list
// by hashed shard key, replicated tables broadcast the whole statement.
func (co *Coordinator) execInsert(ctx context.Context, ins *sql.InsertStmt, sqlText string) (int64, error) {
	table := strings.ToLower(ins.Table)
	p := co.m.Placement(table)
	if !p.Sharded {
		if err := broadcast(co.m.AllNodes(), func(u string) error {
			_, err := co.c.exec(ctx, u, sqlText)
			return err
		}); err != nil {
			return 0, err
		}
		return int64(len(ins.Rows)), nil
	}
	keyIdx, keyKind, err := co.keyColumn(table, p.KeyCol)
	if err != nil {
		return 0, err
	}
	perShard := make([][][]sql.Expr, co.m.NumShards())
	for _, row := range ins.Rows {
		if keyIdx >= len(row) {
			return 0, fmt.Errorf("cluster: INSERT row has no value for shard key %s", p.KeyCol)
		}
		key, err := literalKey(row[keyIdx], keyKind)
		if err != nil {
			return 0, err
		}
		si := co.m.ShardForKey(key)
		perShard[si] = append(perShard[si], row)
	}
	var total atomic.Int64
	for si, rows := range perShard {
		if len(rows) == 0 {
			continue
		}
		stmtText := RenderInsert(ins.Table, rows)
		n := int64(len(rows))
		if err := broadcast(co.m.Shards[si], func(u string) error {
			_, err := co.c.exec(ctx, u, stmtText)
			return err
		}); err != nil {
			return total.Load(), err
		}
		total.Add(n)
	}
	return total.Load(), nil
}

// keyColumn resolves a sharded table's key column index and kind from
// the schema DB.
func (co *Coordinator) keyColumn(table, keyCol string) (int, vtypes.Kind, error) {
	ent, err := co.schema.Catalog().Get(table)
	if err != nil {
		return 0, 0, fmt.Errorf("cluster: sharded table %s has no DDL yet: %w", table, err)
	}
	sch := ent.Table.Schema()
	ix := sch.ColIndex(keyCol)
	if ix < 0 {
		return 0, 0, fmt.Errorf("cluster: table %s has no shard key column %s", table, keyCol)
	}
	return ix, sch.Col(ix).Kind, nil
}

// literalKey canonicalizes an INSERT literal for shard routing. The
// canonical form must agree with csvKey below: integers in decimal,
// dates as epoch days, strings verbatim.
func literalKey(e sql.Expr, kind vtypes.Kind) (string, error) {
	switch t := e.(type) {
	case *sql.NumLit:
		if kind == vtypes.KindI64 {
			n, err := strconv.ParseInt(t.Text, 10, 64)
			if err != nil {
				return "", fmt.Errorf("cluster: shard key %q is not an integer", t.Text)
			}
			return strconv.FormatInt(n, 10), nil
		}
		return "", fmt.Errorf("cluster: shard key column kind %v does not take numeric literal", kind)
	case *sql.StrLit:
		if kind != vtypes.KindStr {
			return "", fmt.Errorf("cluster: shard key column kind %v does not take string literal", kind)
		}
		return t.Val, nil
	case *sql.DateLit:
		d, err := vtypes.ParseDate(t.Val)
		if err != nil {
			return "", err
		}
		return strconv.FormatInt(d, 10), nil
	default:
		return "", fmt.Errorf("cluster: shard key value must be a literal, got %T", e)
	}
}

// csvKey canonicalizes one CSV field of the shard key column, matching
// literalKey.
func csvKey(field string, kind vtypes.Kind) (string, error) {
	field = strings.TrimSpace(field)
	switch kind {
	case vtypes.KindI64:
		n, err := strconv.ParseInt(field, 10, 64)
		if err != nil {
			return "", fmt.Errorf("cluster: shard key field %q is not an integer", field)
		}
		return strconv.FormatInt(n, 10), nil
	case vtypes.KindDate:
		d, err := vtypes.ParseDate(field)
		if err != nil {
			return "", err
		}
		return strconv.FormatInt(d, 10), nil
	case vtypes.KindStr:
		return field, nil
	default:
		return "", fmt.Errorf("cluster: unsupported shard key kind %v", kind)
	}
}

// LoadOptions mirror the node-side CSV options the coordinator forwards.
type LoadOptions struct {
	// Header skips the first CSV record.
	Header bool
	// Null is the token read as NULL on the nodes.
	Null string
}

// LoadCSV bulk-loads CSV into a cluster table: sharded tables fan rows
// out by hashed shard key (every replica of the owning shard receives
// the row), replicated tables receive the full input on every node.
// Returns total rows loaded (counting each logical row once).
func (co *Coordinator) LoadCSV(ctx context.Context, table string, r io.Reader, opts LoadOptions) (int64, error) {
	table = strings.ToLower(table)
	p := co.m.Placement(table)
	if !p.Sharded {
		data, err := io.ReadAll(r)
		if err != nil {
			return 0, err
		}
		var rows atomic.Int64
		if err := broadcast(co.m.AllNodes(), func(u string) error {
			n, err := co.c.load(ctx, u, table, opts.Header, opts.Null, data)
			rows.Store(n)
			return err
		}); err != nil {
			return 0, err
		}
		return rows.Load(), nil
	}

	keyIdx, keyKind, err := co.keyColumn(table, p.KeyCol)
	if err != nil {
		return 0, err
	}
	bufs := make([]bytes.Buffer, co.m.NumShards())
	writers := make([]*csv.Writer, co.m.NumShards())
	for i := range writers {
		writers[i] = csv.NewWriter(&bufs[i])
	}
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	if opts.Header {
		if _, err := cr.Read(); err != nil && err != io.EOF {
			return 0, err
		}
	}
	var total int64
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return 0, err
		}
		if keyIdx >= len(rec) {
			return 0, fmt.Errorf("cluster: CSV record has %d fields, shard key is column %d", len(rec), keyIdx+1)
		}
		key, err := csvKey(rec[keyIdx], keyKind)
		if err != nil {
			return 0, err
		}
		si := co.m.ShardForKey(key)
		if err := writers[si].Write(rec); err != nil {
			return 0, err
		}
		total++
	}
	for si := range writers {
		writers[si].Flush()
		if err := writers[si].Error(); err != nil {
			return 0, err
		}
		if bufs[si].Len() == 0 {
			continue
		}
		data := bufs[si].Bytes()
		if err := broadcast(co.m.Shards[si], func(u string) error {
			// Header already consumed above; the re-emitted CSV has none.
			_, err := co.c.load(ctx, u, table, false, opts.Null, data)
			return err
		}); err != nil {
			return 0, err
		}
	}
	return total, nil
}
