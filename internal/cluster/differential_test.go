package cluster

// Differential test: the TPC-H SQL suite on a 3-shard cluster must be
// row-identical to the same queries on a single embedded engine. This
// is the end-to-end check that the AST split, the NDJSON wire decode,
// the staging merge, and the shard routing compose to the same answer
// the single-node planner gives.

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"testing"

	vectorwise "vectorwise"
	"vectorwise/internal/sql"
	"vectorwise/internal/tpch"
	"vectorwise/internal/tpchdb"
)

const diffSF = 0.01

func mustParseSelect(t *testing.T, src string) *sql.SelectStmt {
	t.Helper()
	stmt, err := sql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return stmt.AST.(*sql.SelectStmt)
}

// distributable reports whether the splitter can run the statement on
// this shard map. Q18's subquery probes a sharded table, so the cluster
// suites skip it; the single-node differential suites still pin it.
func distributable(m *ShardMap, src string) bool {
	stmt, err := sql.Parse(src)
	if err != nil {
		return false
	}
	defer stmt.Release()
	_, err = splitStmt(stmt.AST, src, m)
	return err == nil
}

// loadTPCHCluster creates the TPC-H schema through the coordinator
// (lineitem and orders sharded on the order key — co-located — the six
// dimension tables replicated) and loads generated data via LoadCSV.
func loadTPCHCluster(t *testing.T, tc *testCluster, sf float64) {
	t.Helper()
	for _, ddl := range tpch.DDL() {
		tc.exec(t, ddl)
	}
	data, err := tpchdb.GenerateCSV(sf)
	if err != nil {
		t.Fatal(err)
	}
	for table, csv := range data {
		n, err := tc.co.LoadCSV(context.Background(), table, bytes.NewReader(csv), LoadOptions{})
		if err != nil {
			t.Fatalf("load %s: %v", table, err)
		}
		if n == 0 && table != "region" {
			t.Fatalf("load %s: 0 rows", table)
		}
	}
}

// cellsClose compares two result cells, tolerating float rounding from
// the partial-aggregate split (re-associated sums) and the wire's
// decimal round trip.
func cellsClose(a, b any) bool {
	af, aok := a.(float64)
	bf, bok := b.(float64)
	if aok && bok {
		if af == bf {
			return true
		}
		diff := math.Abs(af - bf)
		scale := math.Max(math.Abs(af), math.Abs(bf))
		return diff <= 1e-6*math.Max(scale, 1)
	}
	return fmt.Sprint(a) == fmt.Sprint(b)
}

func diffRows(t *testing.T, name string, got, want [][]any) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows distributed vs %d single-node", name, len(got), len(want))
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("%s row %d: %d cols vs %d", name, i, len(got[i]), len(want[i]))
		}
		for j := range want[i] {
			if !cellsClose(got[i][j], want[i][j]) {
				t.Fatalf("%s row %d col %d: distributed %v vs single-node %v",
					name, i, j, got[i][j], want[i][j])
			}
		}
	}
}

func TestTPCHDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("differential suite loads TPC-H on four engines")
	}
	tc := newTestCluster(t, 3, 1, []string{"lineitem:l_orderkey", "orders:o_orderkey"})
	loadTPCHCluster(t, tc, diffSF)

	ref := vectorwise.OpenMemory()
	defer ref.Close()
	if _, err := tpchdb.Load(ref, diffSF); err != nil {
		t.Fatal(err)
	}

	for _, q := range tpch.SQLSuite() {
		q := q
		t.Run(q.Name, func(t *testing.T) {
			if !distributable(tc.co.m, q.SQL) {
				t.Skipf("%s is not distributable on this shard map", q.Name)
			}
			_, got := tc.query(t, q.SQL)
			want := nodeRows(t, ref, q.SQL)
			// Q19-style unordered results: compare as sets.
			stmt := mustParseSelect(t, q.SQL)
			if len(stmt.OrderBy) == 0 {
				sortRows(got)
				sortRows(want)
			}
			diffRows(t, q.Name, got, want)
		})
	}
}

// TestTPCHDifferentialRowCounts cross-checks the sharding itself: every
// sharded table's rows partition exactly across the shards.
func TestTPCHDifferentialRowCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("loads TPC-H")
	}
	tc := newTestCluster(t, 3, 1, []string{"lineitem:l_orderkey", "orders:o_orderkey"})
	loadTPCHCluster(t, tc, diffSF)

	for _, table := range []string{"lineitem", "orders"} {
		var total, max int64
		for si := range tc.nodes {
			rows := nodeRows(t, tc.nodes[si][0], "SELECT COUNT(*) FROM "+table)
			n := int64(asFloat(rows[0][0]))
			total += n
			if n > max {
				max = n
			}
		}
		_, all := tc.query(t, "SELECT COUNT(*) FROM "+table)
		if total != int64(asFloat(all[0][0])) {
			t.Fatalf("%s: shard counts sum to %d, cluster count %v", table, total, all[0][0])
		}
		if max == total {
			t.Fatalf("%s: all %d rows on one shard; hash partitioning is broken", table, total)
		}
	}
}
