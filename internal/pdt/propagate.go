package pdt

import "fmt"

// Propagate folds a small (transaction-private) PDT down onto a copy of
// the big (shared) PDT it was stacked on, producing a single PDT over
// the big one's stable image. This is the commit-time operation of the
// paper's layered PDT design.
//
// The small PDT's SIDs address the big PDT's *output* image — exactly
// the coordinate system of the big PDT's RID API — so each small entry
// replays through Insert/Delete/Modify on the copy. Entries are applied
// in reverse sequence order: applying a change never disturbs the
// positions of rows before it, so earlier (smaller-position) entries
// remain addressable; and reverse replay of equal-position inserts
// restores their original relative order.
func Propagate(big, small *PDT) (*PDT, error) {
	if big.VisibleRows() != small.StableRows() {
		return nil, fmt.Errorf("pdt: propagate mismatch: big output %d rows, small stable %d",
			big.VisibleRows(), small.StableRows())
	}
	out := big.Clone()
	ents := small.Entries()
	for i := len(ents) - 1; i >= 0; i-- {
		e := ents[i]
		switch e.Type {
		case Ins:
			if err := out.Insert(e.SID, e.Row); err != nil {
				return nil, fmt.Errorf("pdt: propagate insert: %w", err)
			}
		case Del:
			if err := out.Delete(e.SID); err != nil {
				return nil, fmt.Errorf("pdt: propagate delete: %w", err)
			}
		case Mod:
			for _, mc := range e.Mods {
				if err := out.Modify(e.SID, mc.Col, mc.Val); err != nil {
					return nil, fmt.Errorf("pdt: propagate modify: %w", err)
				}
			}
		}
	}
	return out, nil
}
