package pdt

import (
	"testing"

	"vectorwise/internal/vector"
	"vectorwise/internal/vtypes"
)

// fakePosSource serves value ranges of a synthetic stable column with
// explicit positions — the shape a pruning or partition-restricted
// scanner presents: batches may start late, skip ranges, and end early.
type fakePosSource struct {
	ranges [][2]int64 // [lo, hi) position ranges served in order
	end    int64      // EndPos
	ri     int
	pos    int64
}

func (f *fakePosSource) Next() ([]*vector.Vector, int, error) {
	if f.ri >= len(f.ranges) {
		return nil, 0, nil
	}
	lo, hi := f.ranges[f.ri][0], f.ranges[f.ri][1]
	f.ri++
	f.pos = lo
	n := int(hi - lo)
	v := vector.New(vtypes.KindI64, n)
	for i := 0; i < n; i++ {
		v.I64[i] = lo + int64(i) // value == stable position
	}
	return []*vector.Vector{v}, n, nil
}

func (f *fakePosSource) BasePos() int64 { return f.pos }
func (f *fakePosSource) EndPos() int64  { return f.end }

func mergeSchema() *vtypes.Schema {
	return vtypes.NewSchema(vtypes.Column{Name: "v", Kind: vtypes.KindI64})
}

// drainPositioned collects all rows and the BasePos of each batch.
func drainPositioned(t *testing.T, m *MergeScan) (vals []int64, basePos []int64) {
	t.Helper()
	for {
		cols, n, err := m.Next()
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			return vals, basePos
		}
		basePos = append(basePos, m.BasePos())
		for i := 0; i < n; i++ {
			vals = append(vals, cols[0].I64[i])
		}
	}
}

// A partition-restricted source: entries below the partition start are
// stepped over (other partitions apply them), entries inside apply,
// and appends at the table end belong to the partition reaching it.
func TestMergeScanPartitionedSource(t *testing.T) {
	p := New(mergeSchema(), 1024)
	if err := p.Delete(100); err != nil { // other partition's business
		t.Fatal(err)
	}
	if err := p.Delete(599); err != nil { // RID 599 = SID 600 after the first delete
		t.Fatal(err)
	}
	if err := p.Append(vtypes.Row{vtypes.I64Value(-1)}); err != nil {
		t.Fatal(err)
	}
	// Partition covering stable [512, 1024), i.e. the second half.
	src := &fakePosSource{ranges: [][2]int64{{512, 1024}}, end: 1024}
	m := NewMergeScan(src, p, 200)
	vals, basePos := drainPositioned(t, m)
	// 512 stable rows minus the delete at 600, plus the append.
	if len(vals) != 512 {
		t.Fatalf("partition output %d rows, want 512", len(vals))
	}
	for _, v := range vals[:511] {
		if v == 600 {
			t.Fatal("deleted stable row 600 leaked through")
		}
	}
	if vals[511] != -1 {
		t.Fatalf("append missing from end partition: tail %d", vals[511])
	}
	// First batch's RID: stable 512 shifted by the one earlier delete
	// (SID 100); the delete at 600 lies inside this partition.
	if basePos[0] != 511 {
		t.Fatalf("first batch BasePos %d, want 511", basePos[0])
	}
	// The complementary partition [0, 512) applies only its own delete
	// and stops before the boundary.
	src = &fakePosSource{ranges: [][2]int64{{0, 512}}, end: 512}
	m = NewMergeScan(src, p, 200)
	vals, basePos = drainPositioned(t, m)
	if len(vals) != 511 {
		t.Fatalf("first partition %d rows, want 511", len(vals))
	}
	for _, v := range vals {
		if v == 100 {
			t.Fatal("deleted stable row 100 leaked through")
		}
		if v == -1 {
			t.Fatal("append emitted by non-final partition")
		}
	}
	if basePos[0] != 0 {
		t.Fatalf("first partition BasePos %d, want 0", basePos[0])
	}
}

// An insert exactly on a partition boundary is emitted by the
// partition that starts there — once, never twice.
func TestMergeScanBoundaryInsert(t *testing.T) {
	p := New(mergeSchema(), 1024)
	// Insert before stable position 512 (RID 512 pre-insert).
	if err := p.Insert(512, vtypes.Row{vtypes.I64Value(-512)}); err != nil {
		t.Fatal(err)
	}
	left := NewMergeScan(&fakePosSource{ranges: [][2]int64{{0, 512}}, end: 512}, p, 128)
	right := NewMergeScan(&fakePosSource{ranges: [][2]int64{{512, 1024}}, end: 1024}, p, 128)
	lv, _ := drainPositioned(t, left)
	rv, _ := drainPositioned(t, right)
	count := 0
	for _, v := range append(append([]int64(nil), lv...), rv...) {
		if v == -512 {
			count++
		}
	}
	if len(lv)+len(rv) != 1025 || count != 1 {
		t.Fatalf("boundary insert emitted %d times across %d+%d rows", count, len(lv), len(rv))
	}
	if rv[0] != -512 {
		t.Fatalf("boundary insert must lead the right partition, got %d", rv[0])
	}
}

// Pruned gaps: a source that skips clean ranges mid-stream. Batches cut
// at the discontinuity and deltas on both sides still apply at the
// right rows; BasePos stays truthful for a layered merge.
func TestMergeScanPrunedGaps(t *testing.T) {
	p := New(mergeSchema(), 1024)
	if err := p.Delete(10); err != nil {
		t.Fatal(err)
	}
	// Modify stable 800 (RID 799 after the delete).
	if err := p.Modify(799, 0, vtypes.I64Value(-800)); err != nil {
		t.Fatal(err)
	}
	// Groups [256, 768) pruned away: no entries there, so legal.
	src := &fakePosSource{ranges: [][2]int64{{0, 256}, {768, 1024}}, end: 1024}
	m := NewMergeScan(src, p, 4096)
	vals, basePos := drainPositioned(t, m)
	if len(vals) != 511 { // 256-1 + 256
		t.Fatalf("gap merge %d rows, want 511", len(vals))
	}
	// Two batches (cut at the jump) even though vecCap held both.
	if len(basePos) != 2 || basePos[0] != 0 || basePos[1] != 767 {
		t.Fatalf("batch positions %v, want [0 767]", basePos)
	}
	seen := false
	for _, v := range vals {
		if v == 10 {
			t.Fatal("deleted row leaked")
		}
		if v == -800 {
			seen = true
		}
		if v == 800 {
			t.Fatal("modification lost across the gap")
		}
	}
	if !seen {
		t.Fatal("modified row missing")
	}
}

// Layered merges over a pruned source: the lower merge's BasePos/EndPos
// let the upper layer align its own deltas across the same gap.
func TestMergeScanLayeredOverGaps(t *testing.T) {
	bottom := New(mergeSchema(), 1024)
	if err := bottom.Delete(0); err != nil {
		t.Fatal(err)
	}
	// Upper layer addresses the bottom's output image (1023 rows):
	// delete its row 900 (stable 901's image position is 900).
	top := New(mergeSchema(), 1023)
	if err := top.Delete(900); err != nil {
		t.Fatal(err)
	}
	// Prune [256, 768): entry-free in both layers' coordinates.
	src := &fakePosSource{ranges: [][2]int64{{0, 256}, {768, 1024}}, end: 1024}
	m := NewMergeScan(NewMergeScan(src, bottom, 128), top, 128)
	vals, _ := drainPositioned(t, m)
	if len(vals) != 510 {
		t.Fatalf("layered gap merge %d rows, want 510", len(vals))
	}
	for _, v := range vals {
		if v == 0 || v == 901 {
			t.Fatalf("row %d should be deleted", v)
		}
	}
}
