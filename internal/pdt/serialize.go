package pdt

import (
	"encoding/binary"
	"fmt"
	"math"

	"vectorwise/internal/vtypes"
)

// Serialization of PDTs for the write-ahead log. The schema is not
// embedded: the WAL record names the table and the catalog supplies the
// schema at replay time, exactly like the product logs PDTs by table.

// Encode serializes the PDT's deltas.
func Encode(p *PDT) []byte {
	out := binary.AppendUvarint(nil, uint64(p.StableRows()))
	ents := p.Entries()
	out = binary.AppendUvarint(out, uint64(len(ents)))
	for _, e := range ents {
		out = binary.AppendUvarint(out, uint64(e.SID))
		out = append(out, byte(e.Type))
		switch e.Type {
		case Ins:
			for _, v := range e.Row {
				out = appendValue(out, v)
			}
		case Mod:
			out = binary.AppendUvarint(out, uint64(len(e.Mods)))
			for _, mc := range e.Mods {
				out = binary.AppendUvarint(out, uint64(mc.Col))
				out = appendValue(out, mc.Val)
			}
		}
	}
	return out
}

// Decode reconstructs a PDT over the given schema.
func Decode(schema *vtypes.Schema, data []byte) (*PDT, error) {
	stable, k := binary.Uvarint(data)
	if k <= 0 {
		return nil, fmt.Errorf("pdt: truncated header")
	}
	data = data[k:]
	n, k := binary.Uvarint(data)
	if k <= 0 {
		return nil, fmt.Errorf("pdt: truncated entry count")
	}
	data = data[k:]
	p := New(schema, int64(stable))
	var err error
	for i := uint64(0); i < n; i++ {
		if len(data) == 0 {
			return nil, fmt.Errorf("pdt: truncated entry %d", i)
		}
		sid, k := binary.Uvarint(data)
		if k <= 0 {
			return nil, fmt.Errorf("pdt: truncated SID")
		}
		data = data[k:]
		if len(data) == 0 {
			return nil, fmt.Errorf("pdt: truncated type")
		}
		typ := EntryType(data[0])
		data = data[1:]
		e := Entry{SID: int64(sid), Type: typ}
		switch typ {
		case Ins:
			e.Row = make(vtypes.Row, schema.Len())
			for c := range e.Row {
				e.Row[c], data, err = readValue(data, schema.Col(c).Kind)
				if err != nil {
					return nil, err
				}
			}
		case Del:
		case Mod:
			nm, k := binary.Uvarint(data)
			if k <= 0 {
				return nil, fmt.Errorf("pdt: truncated mod count")
			}
			data = data[k:]
			e.Mods = make([]ColChange, nm)
			for j := range e.Mods {
				col, k := binary.Uvarint(data)
				if k <= 0 {
					return nil, fmt.Errorf("pdt: truncated mod col")
				}
				data = data[k:]
				if int(col) >= schema.Len() {
					return nil, fmt.Errorf("pdt: mod column %d out of schema", col)
				}
				e.Mods[j].Col = int(col)
				e.Mods[j].Val, data, err = readValue(data, schema.Col(int(col)).Kind)
				if err != nil {
					return nil, err
				}
			}
		default:
			return nil, fmt.Errorf("pdt: unknown entry type %d", typ)
		}
		// Entries arrive in order; append directly preserving counts.
		p.appendOrdered(e)
	}
	return p, nil
}

// appendOrdered appends an entry known to be in sequence order.
func (p *PDT) appendOrdered(e Entry) {
	if len(p.chunks) == 0 || len(p.chunks[len(p.chunks)-1].entries) >= maxChunk {
		p.chunks = append(p.chunks, &chunk{})
	}
	c := p.chunks[len(p.chunks)-1]
	c.entries = append(c.entries, e)
	switch e.Type {
	case Ins:
		c.ins++
		p.ins++
	case Del:
		c.del++
		p.del++
	}
}

// appendValue encodes a value: null flag byte, then the payload.
func appendValue(out []byte, v vtypes.Value) []byte {
	if v.Null {
		return append(out, 1)
	}
	out = append(out, 0)
	switch v.Kind.StorageClass() {
	case vtypes.ClassI64:
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], uint64(v.I64))
		out = append(out, b[:]...)
	case vtypes.ClassF64:
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v.F64))
		out = append(out, b[:]...)
	case vtypes.ClassStr:
		out = binary.AppendUvarint(out, uint64(len(v.Str)))
		out = append(out, v.Str...)
	case vtypes.ClassBool:
		if v.B {
			out = append(out, 1)
		} else {
			out = append(out, 0)
		}
	}
	return out
}

// readValue decodes a value of the given kind, returning the rest.
func readValue(data []byte, kind vtypes.Kind) (vtypes.Value, []byte, error) {
	if len(data) == 0 {
		return vtypes.Value{}, nil, fmt.Errorf("pdt: truncated value")
	}
	if data[0] == 1 {
		return vtypes.NullValue(kind), data[1:], nil
	}
	data = data[1:]
	switch kind.StorageClass() {
	case vtypes.ClassI64:
		if len(data) < 8 {
			return vtypes.Value{}, nil, fmt.Errorf("pdt: truncated i64")
		}
		return vtypes.Value{Kind: kind, I64: int64(binary.LittleEndian.Uint64(data))}, data[8:], nil
	case vtypes.ClassF64:
		if len(data) < 8 {
			return vtypes.Value{}, nil, fmt.Errorf("pdt: truncated f64")
		}
		return vtypes.Value{Kind: kind, F64: math.Float64frombits(binary.LittleEndian.Uint64(data))}, data[8:], nil
	case vtypes.ClassStr:
		l, k := binary.Uvarint(data)
		if k <= 0 || uint64(len(data)-k) < l {
			return vtypes.Value{}, nil, fmt.Errorf("pdt: truncated string")
		}
		s := string(data[k : k+int(l)])
		return vtypes.Value{Kind: kind, Str: s}, data[k+int(l):], nil
	case vtypes.ClassBool:
		if len(data) < 1 {
			return vtypes.Value{}, nil, fmt.Errorf("pdt: truncated bool")
		}
		return vtypes.Value{Kind: kind, B: data[0] == 1}, data[1:], nil
	}
	return vtypes.Value{}, nil, fmt.Errorf("pdt: invalid kind %v", kind)
}
