package pdt

import "vectorwise/internal/vtypes"

// ProjectCols rewrites the PDT onto a column projection: Ins rows keep
// only the projected columns, Mod entries remap column indexes (and
// disappear when none of their columns survive), Del entries pass
// through. Scans that read a subset of columns merge against the
// projected PDT, so untouched columns never materialize.
func ProjectCols(p *PDT, cols []int, projected *vtypes.Schema) *PDT {
	out := New(projected, p.stableRows)
	colMap := make(map[int]int, len(cols))
	for newIdx, oldIdx := range cols {
		colMap[oldIdx] = newIdx
	}
	for _, c := range p.chunks {
		for _, e := range c.entries {
			switch e.Type {
			case Ins:
				row := make(vtypes.Row, len(cols))
				for newIdx, oldIdx := range cols {
					row[newIdx] = e.Row[oldIdx]
				}
				out.appendOrdered(Entry{SID: e.SID, Type: Ins, Row: row})
			case Del:
				out.appendOrdered(Entry{SID: e.SID, Type: Del})
			case Mod:
				var mods []ColChange
				for _, mc := range e.Mods {
					if newIdx, ok := colMap[mc.Col]; ok {
						mods = append(mods, ColChange{Col: newIdx, Val: mc.Val})
					}
				}
				if mods != nil {
					out.appendOrdered(Entry{SID: e.SID, Type: Mod, Mods: mods})
				}
			}
		}
	}
	return out
}
