// Package pdt implements Positional Delta Trees (paper ref [5]), the
// differential update structure behind Vectorwise transactions. Updates
// are not applied in place — which would cost one I/O per column per
// modified record plus recompression — but gathered in a PDT that
// annotates changes by *tuple position* rather than by key. Scans merge
// the deltas in positionally, without reading key columns.
//
// Terminology (from the paper):
//
//   - SID: stable ID — position of a tuple in the immutable stable table
//     image underneath this PDT.
//   - RID: row ID — position of a tuple in the image that results from
//     applying this PDT to its stable input.
//
// PDTs layer: a transaction's private ("small") PDT sits on top of the
// shared ("big") PDT, whose output image defines the small PDT's SIDs.
// Committing propagates the small PDT's changes down onto a copy of the
// big one (see Propagate).
//
// The structure is a two-level counted tree: an ordered sequence of
// bounded chunks, each carrying insert/delete counts, giving O(√n)-ish
// updates and O(log n) position lookups at in-memory scale — the role
// the counted B-tree plays in the paper.
package pdt

import (
	"fmt"
	"sort"

	"vectorwise/internal/vtypes"
)

// EntryType discriminates delta entries.
type EntryType uint8

// Delta entry types.
const (
	// Ins inserts a new tuple immediately before stable position SID.
	Ins EntryType = iota + 1
	// Del deletes the stable tuple at SID.
	Del
	// Mod overwrites columns of the stable tuple at SID.
	Mod
)

// ColChange is one modified column of a Mod entry.
type ColChange struct {
	// Col is the column index in the table schema.
	Col int
	// Val is the new value.
	Val vtypes.Value
}

// Entry is one delta. Entries at equal SID are ordered: all Ins entries
// (in insertion order, they appear in the image in sequence order),
// then at most one Del or one Mod for the stable tuple itself.
type Entry struct {
	SID  int64
	Type EntryType
	// Row is the full new tuple for Ins entries.
	Row vtypes.Row
	// Mods lists changed columns for Mod entries.
	Mods []ColChange
}

// maxChunk bounds chunk size; inserts within a chunk are memmoves of at
// most this many entries.
const maxChunk = 256

type chunk struct {
	entries []Entry
	ins     int
	del     int
}

func (c *chunk) minSID() int64 { return c.entries[0].SID }

// PDT is a positional delta tree over a stable image of StableRows rows.
type PDT struct {
	schema     *vtypes.Schema
	stableRows int64
	chunks     []*chunk
	ins        int
	del        int
}

// New creates an empty PDT over a stable image with the given row count.
func New(schema *vtypes.Schema, stableRows int64) *PDT {
	return &PDT{schema: schema, stableRows: stableRows}
}

// Schema returns the table schema the PDT applies to.
func (p *PDT) Schema() *vtypes.Schema { return p.schema }

// StableRows returns the stable input row count.
func (p *PDT) StableRows() int64 { return p.stableRows }

// VisibleRows returns the row count of the output image.
func (p *PDT) VisibleRows() int64 { return p.stableRows + int64(p.ins) - int64(p.del) }

// Len returns the number of delta entries.
func (p *PDT) Len() int {
	n := 0
	for _, c := range p.chunks {
		n += len(c.entries)
	}
	return n
}

// Empty reports whether the PDT carries no deltas.
func (p *PDT) Empty() bool { return len(p.chunks) == 0 }

// Clone deep-copies the PDT (entries are copied; values are immutable).
func (p *PDT) Clone() *PDT {
	out := &PDT{schema: p.schema, stableRows: p.stableRows, ins: p.ins, del: p.del}
	out.chunks = make([]*chunk, len(p.chunks))
	for i, c := range p.chunks {
		nc := &chunk{entries: make([]Entry, len(c.entries)), ins: c.ins, del: c.del}
		for j, e := range c.entries {
			nc.entries[j] = cloneEntry(e)
		}
		out.chunks[i] = nc
	}
	return out
}

func cloneEntry(e Entry) Entry {
	out := e
	if e.Row != nil {
		out.Row = e.Row.Clone()
	}
	if e.Mods != nil {
		out.Mods = append([]ColChange(nil), e.Mods...)
	}
	return out
}

// Entries returns all deltas in order (for serialization and tests).
func (p *PDT) Entries() []Entry {
	out := make([]Entry, 0, p.Len())
	for _, c := range p.chunks {
		out = append(out, c.entries...)
	}
	return out
}

// deltaBefore returns (netDelta, insAtS, chunkIdx, entryIdx) where
// netDelta is ins-del over all entries with SID < s, insAtS counts Ins
// entries at SID == s, and (chunkIdx, entryIdx) locate the first entry
// with SID >= s.
func (p *PDT) deltaBefore(s int64) (delta int64, insAtS int, ci, ei int) {
	// Find first chunk that may contain SID >= s.
	ci = sort.Search(len(p.chunks), func(i int) bool {
		c := p.chunks[i].entries
		return c[len(c)-1].SID >= s
	})
	for i := 0; i < ci; i++ {
		delta += int64(p.chunks[i].ins - p.chunks[i].del)
	}
	if ci == len(p.chunks) {
		return delta, 0, ci, 0
	}
	ents := p.chunks[ci].entries
	ei = sort.Search(len(ents), func(i int) bool { return ents[i].SID >= s })
	for i := 0; i < ei; i++ {
		switch ents[i].Type {
		case Ins:
			delta++
		case Del:
			delta--
		}
	}
	// Count Ins entries at exactly SID s (they may span into the next
	// chunk if a split landed there).
	cj, ej := ci, ei
	for cj < len(p.chunks) {
		es := p.chunks[cj].entries
		for ej < len(es) && es[ej].SID == s && es[ej].Type == Ins {
			insAtS++
			ej++
		}
		if ej < len(es) || cj == len(p.chunks)-1 {
			break
		}
		cj++
		ej = 0
		if len(p.chunks[cj].entries) > 0 && p.chunks[cj].entries[0].SID != s {
			break
		}
	}
	return delta, insAtS, ci, ei
}

// startRID returns the RID of the first image row belonging to stable
// position s: the first Ins at s if any, else stable s itself.
func (p *PDT) startRID(s int64) int64 {
	delta, _, _, _ := p.deltaBefore(s)
	return s + delta
}

// target describes what a RID resolves to.
type target struct {
	sid   int64 // stable position
	insK  int   // if insEntry: index among Ins entries at sid
	isIns bool  // RID addresses the insK-th Ins entry at sid
	// When !isIns the RID addresses the stable tuple at sid (which is
	// guaranteed visible: deleted stables have no RID).
}

// resolve maps a visible RID to its target. rid must be in
// [0, VisibleRows()).
func (p *PDT) resolve(rid int64) (target, error) {
	if rid < 0 || rid >= p.VisibleRows() {
		return target{}, fmt.Errorf("pdt: RID %d out of range [0,%d)", rid, p.VisibleRows())
	}
	// Binary search the largest stable s in [0, stableRows] with
	// startRID(s) <= rid; startRID is non-decreasing.
	lo, hi := int64(0), p.stableRows // inclusive bounds on s
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if p.startRID(mid) <= rid {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	s := lo
	delta, insAtS, _, _ := p.deltaBefore(s)
	k := rid - (s + delta)
	if k < int64(insAtS) {
		return target{sid: s, insK: int(k), isIns: true}, nil
	}
	// Must be the stable tuple at s; verify it is not deleted and the
	// offset is exactly insAtS (anything else is an internal error).
	if k != int64(insAtS) || s >= p.stableRows || p.isDeleted(s) {
		return target{}, fmt.Errorf("pdt: internal resolve failure for RID %d (s=%d k=%d ins=%d)", rid, s, k, insAtS)
	}
	return target{sid: s, insK: insAtS}, nil
}

// isDeleted reports whether stable tuple s has a Del entry.
func (p *PDT) isDeleted(s int64) bool {
	e := p.findStableEntry(s)
	return e != nil && e.Type == Del
}

// findStableEntry returns the Del or Mod entry for stable s, if any.
func (p *PDT) findStableEntry(s int64) *Entry {
	_, _, ci, ei := p.deltaBefore(s)
	for ci < len(p.chunks) {
		ents := p.chunks[ci].entries
		for ei < len(ents) {
			e := &ents[ei]
			if e.SID != s {
				return nil
			}
			if e.Type != Ins {
				return e
			}
			ei++
		}
		ci++
		ei = 0
	}
	return nil
}

// insertEntryAt places a new entry at logical position (ci, ei).
func (p *PDT) insertEntryAt(ci, ei int, e Entry) {
	if len(p.chunks) == 0 {
		p.chunks = []*chunk{{}}
		ci, ei = 0, 0
	}
	if ci == len(p.chunks) {
		ci--
		ei = len(p.chunks[ci].entries)
	}
	c := p.chunks[ci]
	c.entries = append(c.entries, Entry{})
	copy(c.entries[ei+1:], c.entries[ei:])
	c.entries[ei] = e
	switch e.Type {
	case Ins:
		c.ins++
		p.ins++
	case Del:
		c.del++
		p.del++
	}
	if len(c.entries) > maxChunk {
		p.splitChunk(ci)
	}
}

// splitChunk halves an oversized chunk.
func (p *PDT) splitChunk(ci int) {
	c := p.chunks[ci]
	half := len(c.entries) / 2
	right := &chunk{entries: append([]Entry(nil), c.entries[half:]...)}
	c.entries = c.entries[:half]
	c.ins, c.del = 0, 0
	for _, e := range c.entries {
		switch e.Type {
		case Ins:
			c.ins++
		case Del:
			c.del++
		}
	}
	for _, e := range right.entries {
		switch e.Type {
		case Ins:
			right.ins++
		case Del:
			right.del++
		}
	}
	p.chunks = append(p.chunks, nil)
	copy(p.chunks[ci+2:], p.chunks[ci+1:])
	p.chunks[ci+1] = right
}

// removeEntryAt deletes the entry at (ci, ei).
func (p *PDT) removeEntryAt(ci, ei int) {
	c := p.chunks[ci]
	switch c.entries[ei].Type {
	case Ins:
		c.ins--
		p.ins--
	case Del:
		c.del--
		p.del--
	}
	c.entries = append(c.entries[:ei], c.entries[ei+1:]...)
	if len(c.entries) == 0 {
		p.chunks = append(p.chunks[:ci], p.chunks[ci+1:]...)
	}
}

// locate finds the logical position (ci, ei) of the k-th entry at SID s
// among entries of the given type offset. k counts Ins entries; pass
// k == insAtS to land after the Ins run (where Del/Mod for s lives).
func (p *PDT) locate(s int64, k int) (ci, ei int) {
	_, _, ci, ei = p.deltaBefore(s)
	for k > 0 {
		// Skip k Ins entries at s.
		if ci >= len(p.chunks) {
			return ci, 0
		}
		ents := p.chunks[ci].entries
		if ei >= len(ents) {
			ci++
			ei = 0
			continue
		}
		if ents[ei].SID == s && ents[ei].Type == Ins {
			ei++
			k--
			continue
		}
		break
	}
	if ci < len(p.chunks) && ei >= len(p.chunks[ci].entries) {
		ci++
		ei = 0
	}
	return ci, ei
}

// Insert makes row visible at position rid (0 <= rid <= VisibleRows()),
// shifting subsequent rows down.
func (p *PDT) Insert(rid int64, row vtypes.Row) error {
	if len(row) != p.schema.Len() {
		return fmt.Errorf("pdt: insert arity %d != schema %d", len(row), p.schema.Len())
	}
	if rid < 0 || rid > p.VisibleRows() {
		return fmt.Errorf("pdt: insert RID %d out of range [0,%d]", rid, p.VisibleRows())
	}
	// Find the stable position s whose region contains rid.
	lo, hi := int64(0), p.stableRows
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if p.startRID(mid) <= rid {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	s := lo
	delta, insAtS, _, _ := p.deltaBefore(s)
	k := int(rid - (s + delta))
	if k > insAtS {
		// rid points past the Ins run into/behind the stable tuple; an
		// insert "at the stable tuple of the NEXT position" — normalize
		// to the next stable position's region.
		s++
		k = 0
	}
	ci, ei := p.locate(s, k)
	p.insertEntryAt(ci, ei, Entry{SID: s, Type: Ins, Row: row.Clone()})
	return nil
}

// Append makes row the new last visible row.
func (p *PDT) Append(row vtypes.Row) error {
	return p.Insert(p.VisibleRows(), row)
}

// Delete removes the visible row at rid.
func (p *PDT) Delete(rid int64) error {
	t, err := p.resolve(rid)
	if err != nil {
		return err
	}
	if t.isIns {
		ci, ei := p.locate(t.sid, t.insK)
		p.removeEntryAt(ci, ei)
		return nil
	}
	// Stable tuple: a prior Mod for s is superseded by the Del.
	if e := p.findStableEntry(t.sid); e != nil && e.Type == Mod {
		ci, ei := p.locate(t.sid, t.insK) // lands on the Mod entry
		p.removeEntryAt(ci, ei)
	}
	ci, ei := p.locate(t.sid, t.insK)
	p.insertEntryAt(ci, ei, Entry{SID: t.sid, Type: Del})
	return nil
}

// Modify overwrites column col of the visible row at rid.
func (p *PDT) Modify(rid int64, col int, val vtypes.Value) error {
	if col < 0 || col >= p.schema.Len() {
		return fmt.Errorf("pdt: column %d out of range", col)
	}
	t, err := p.resolve(rid)
	if err != nil {
		return err
	}
	if t.isIns {
		ci, ei := p.locate(t.sid, t.insK)
		p.chunks[ci].entries[ei].Row[col] = val
		return nil
	}
	if e := p.findStableEntry(t.sid); e != nil && e.Type == Mod {
		for i := range e.Mods {
			if e.Mods[i].Col == col {
				e.Mods[i].Val = val
				return nil
			}
		}
		e.Mods = append(e.Mods, ColChange{Col: col, Val: val})
		return nil
	}
	ci, ei := p.locate(t.sid, t.insK)
	p.insertEntryAt(ci, ei, Entry{SID: t.sid, Type: Mod, Mods: []ColChange{{Col: col, Val: val}}})
	return nil
}

// RowAt materializes the visible row at rid given a reader for stable
// rows (point-access path for tests and conflict checks).
func (p *PDT) RowAt(rid int64, stable func(sid int64) (vtypes.Row, error)) (vtypes.Row, error) {
	t, err := p.resolve(rid)
	if err != nil {
		return nil, err
	}
	if t.isIns {
		ci, ei := p.locate(t.sid, t.insK)
		return p.chunks[ci].entries[ei].Row.Clone(), nil
	}
	row, err := stable(t.sid)
	if err != nil {
		return nil, err
	}
	if e := p.findStableEntry(t.sid); e != nil && e.Type == Mod {
		row = row.Clone()
		for _, mc := range e.Mods {
			row[mc.Col] = mc.Val
		}
	}
	return row, nil
}

// TouchedSIDs returns the set of stable positions this PDT references —
// the write set used by optimistic concurrency control. Ins entries
// touch their insertion point; Del/Mod touch the stable tuple.
func (p *PDT) TouchedSIDs() map[int64]struct{} {
	out := make(map[int64]struct{})
	for _, c := range p.chunks {
		for _, e := range c.entries {
			out[e.SID] = struct{}{}
		}
	}
	return out
}
