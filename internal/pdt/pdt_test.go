package pdt

import (
	"fmt"
	"math/rand"
	"testing"

	"vectorwise/internal/vector"
	"vectorwise/internal/vtypes"
)

func testSchema() *vtypes.Schema {
	return vtypes.NewSchema(
		vtypes.Column{Name: "id", Kind: vtypes.KindI64},
		vtypes.Column{Name: "name", Kind: vtypes.KindStr},
	)
}

func mkRow(id int64, name string) vtypes.Row {
	return vtypes.Row{vtypes.I64Value(id), vtypes.StrValue(name)}
}

// stableRows builds the stable image [0..n) with names "s<i>".
func stableRows(n int) []vtypes.Row {
	out := make([]vtypes.Row, n)
	for i := range out {
		out[i] = mkRow(int64(i), fmt.Sprintf("s%d", i))
	}
	return out
}

// stableSource exposes stable rows as a RowSource.
func stableSource(rows []vtypes.Row, batch int) RowSource {
	schema := testSchema()
	cols := []*vector.Vector{vector.New(vtypes.KindI64, len(rows)), vector.New(vtypes.KindStr, len(rows))}
	for i, r := range rows {
		cols[0].Set(i, r[0])
		cols[1].Set(i, r[1])
	}
	_ = schema
	return NewVecSource(cols, len(rows), batch)
}

// applyNaive replays the PDT-visible operations on a plain row slice —
// the reference model for every test.
type naiveImage struct {
	rows []vtypes.Row
}

func (n *naiveImage) insert(rid int64, row vtypes.Row) {
	n.rows = append(n.rows, nil)
	copy(n.rows[rid+1:], n.rows[rid:])
	n.rows[rid] = row.Clone()
}
func (n *naiveImage) delete(rid int64) {
	n.rows = append(n.rows[:rid], n.rows[rid+1:]...)
}
func (n *naiveImage) modify(rid int64, col int, v vtypes.Value) {
	n.rows[rid] = n.rows[rid].Clone()
	n.rows[rid][col] = v
}

func checkImage(t *testing.T, p *PDT, stable []vtypes.Row, want []vtypes.Row) {
	t.Helper()
	if p.VisibleRows() != int64(len(want)) {
		t.Fatalf("VisibleRows = %d, want %d", p.VisibleRows(), len(want))
	}
	got, err := Materialize(NewMergeScan(stableSource(stable, 7), p, 5), p.Schema())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("merged %d rows, want %d", len(got), len(want))
	}
	for i := range want {
		for c := range want[i] {
			if !got[i][c].Equal(want[i][c]) {
				t.Fatalf("row %d col %d: got %v want %v", i, c, got[i][c], want[i][c])
			}
		}
	}
	// RowAt must agree with the merge for every position.
	stableFn := func(sid int64) (vtypes.Row, error) { return stable[sid], nil }
	for i := range want {
		r, err := p.RowAt(int64(i), stableFn)
		if err != nil {
			t.Fatalf("RowAt(%d): %v", i, err)
		}
		for c := range want[i] {
			if !r[c].Equal(want[i][c]) {
				t.Fatalf("RowAt(%d) col %d: got %v want %v", i, c, r[c], want[i][c])
			}
		}
	}
}

func TestEmptyPDTPassthrough(t *testing.T) {
	stable := stableRows(10)
	p := New(testSchema(), 10)
	if !p.Empty() || p.Len() != 0 {
		t.Fatal("fresh PDT must be empty")
	}
	checkImage(t, p, stable, stable)
}

func TestInsertAtFrontMiddleEnd(t *testing.T) {
	stable := stableRows(5)
	p := New(testSchema(), 5)
	img := &naiveImage{rows: append([]vtypes.Row{}, stable...)}

	for _, op := range []struct {
		rid  int64
		name string
	}{{0, "front"}, {3, "middle"}, {7, "end"}} {
		row := mkRow(100+op.rid, op.name)
		if err := p.Insert(op.rid, row); err != nil {
			t.Fatal(err)
		}
		img.insert(op.rid, row)
	}
	checkImage(t, p, stable, img.rows)
}

func TestAppend(t *testing.T) {
	stable := stableRows(3)
	p := New(testSchema(), 3)
	img := &naiveImage{rows: append([]vtypes.Row{}, stable...)}
	for i := 0; i < 5; i++ {
		row := mkRow(int64(100+i), "app")
		if err := p.Append(row); err != nil {
			t.Fatal(err)
		}
		img.insert(int64(len(img.rows)), row)
	}
	checkImage(t, p, stable, img.rows)
}

func TestDeleteStableAndInserted(t *testing.T) {
	stable := stableRows(6)
	p := New(testSchema(), 6)
	img := &naiveImage{rows: append([]vtypes.Row{}, stable...)}

	// Delete stable row 2.
	if err := p.Delete(2); err != nil {
		t.Fatal(err)
	}
	img.delete(2)
	// Insert then delete the inserted row (annihilation).
	if err := p.Insert(1, mkRow(99, "temp")); err != nil {
		t.Fatal(err)
	}
	img.insert(1, mkRow(99, "temp"))
	if p.Len() != 2 {
		t.Fatalf("len %d", p.Len())
	}
	if err := p.Delete(1); err != nil {
		t.Fatal(err)
	}
	img.delete(1)
	if p.Len() != 1 {
		t.Fatalf("annihilation should remove the Ins entry, len=%d", p.Len())
	}
	checkImage(t, p, stable, img.rows)
}

func TestModifyStableAndInserted(t *testing.T) {
	stable := stableRows(4)
	p := New(testSchema(), 4)
	img := &naiveImage{rows: append([]vtypes.Row{}, stable...)}

	if err := p.Modify(2, 1, vtypes.StrValue("patched")); err != nil {
		t.Fatal(err)
	}
	img.modify(2, 1, vtypes.StrValue("patched"))
	// Second modify of same row merges into the same entry.
	if err := p.Modify(2, 0, vtypes.I64Value(222)); err != nil {
		t.Fatal(err)
	}
	img.modify(2, 0, vtypes.I64Value(222))
	if p.Len() != 1 {
		t.Fatalf("mods must merge into one entry, len=%d", p.Len())
	}
	// Re-modify same column overwrites.
	if err := p.Modify(2, 0, vtypes.I64Value(333)); err != nil {
		t.Fatal(err)
	}
	img.modify(2, 0, vtypes.I64Value(333))
	if p.Len() != 1 {
		t.Fatal("re-mod must not add entries")
	}
	// Modify an inserted row edits it in place.
	if err := p.Insert(0, mkRow(50, "ins")); err != nil {
		t.Fatal(err)
	}
	img.insert(0, mkRow(50, "ins"))
	if err := p.Modify(0, 1, vtypes.StrValue("ins2")); err != nil {
		t.Fatal(err)
	}
	img.modify(0, 1, vtypes.StrValue("ins2"))
	if p.Len() != 2 {
		t.Fatalf("modify-of-insert must edit in place, len=%d", p.Len())
	}
	checkImage(t, p, stable, img.rows)
}

func TestDeleteSupersedesModify(t *testing.T) {
	stable := stableRows(3)
	p := New(testSchema(), 3)
	if err := p.Modify(1, 1, vtypes.StrValue("x")); err != nil {
		t.Fatal(err)
	}
	if err := p.Delete(1); err != nil {
		t.Fatal(err)
	}
	if p.Len() != 1 {
		t.Fatalf("delete must drop the mod entry, len=%d", p.Len())
	}
	img := &naiveImage{rows: append([]vtypes.Row{}, stable...)}
	img.delete(1)
	checkImage(t, p, stable, img.rows)
}

func TestErrorsOnBadPositions(t *testing.T) {
	p := New(testSchema(), 3)
	if err := p.Insert(5, mkRow(1, "x")); err == nil {
		t.Fatal("insert past end must error")
	}
	if err := p.Insert(-1, mkRow(1, "x")); err == nil {
		t.Fatal("negative insert must error")
	}
	if err := p.Delete(3); err == nil {
		t.Fatal("delete past end must error")
	}
	if err := p.Modify(-1, 0, vtypes.I64Value(0)); err == nil {
		t.Fatal("negative modify must error")
	}
	if err := p.Modify(0, 9, vtypes.I64Value(0)); err == nil {
		t.Fatal("bad column must error")
	}
	if err := p.Insert(0, vtypes.Row{vtypes.I64Value(1)}); err == nil {
		t.Fatal("arity mismatch must error")
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := New(testSchema(), 3)
	if err := p.Modify(0, 1, vtypes.StrValue("a")); err != nil {
		t.Fatal(err)
	}
	c := p.Clone()
	if err := c.Modify(0, 1, vtypes.StrValue("b")); err != nil {
		t.Fatal(err)
	}
	stable := stableRows(3)
	stableFn := func(sid int64) (vtypes.Row, error) { return stable[sid], nil }
	r, _ := p.RowAt(0, stableFn)
	if r[1].Str != "a" {
		t.Fatal("clone mutation leaked into original")
	}
}

func TestTouchedSIDs(t *testing.T) {
	p := New(testSchema(), 10)
	_ = p.Insert(3, mkRow(1, "a"))
	_ = p.Delete(7) // rid 7 after insert at 3 → stable 6
	_ = p.Modify(0, 0, vtypes.I64Value(9))
	touched := p.TouchedSIDs()
	if len(touched) != 3 {
		t.Fatalf("touched %v", touched)
	}
	if _, ok := touched[0]; !ok {
		t.Fatal("mod sid missing")
	}
	if _, ok := touched[3]; !ok {
		t.Fatal("ins sid missing")
	}
	if _, ok := touched[6]; !ok {
		t.Fatal("del sid missing")
	}
}

// TestRandomOpsAgainstModel is the core property test: hundreds of
// random Insert/Delete/Modify operations must keep the PDT image
// identical to a naive row-slice model, across several stable sizes and
// chunk-split regimes.
func TestRandomOpsAgainstModel(t *testing.T) {
	for _, stableN := range []int{0, 1, 17, 300} {
		stableN := stableN
		t.Run(fmt.Sprintf("stable%d", stableN), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(stableN) + 5))
			stable := stableRows(stableN)
			p := New(testSchema(), int64(stableN))
			img := &naiveImage{rows: append([]vtypes.Row{}, stable...)}
			for op := 0; op < 900; op++ {
				n := int64(len(img.rows))
				switch r := rng.Intn(10); {
				case r < 4 || n == 0: // insert
					rid := int64(rng.Intn(int(n) + 1))
					row := mkRow(int64(1000+op), fmt.Sprintf("i%d", op))
					if err := p.Insert(rid, row); err != nil {
						t.Fatalf("op %d insert(%d): %v", op, rid, err)
					}
					img.insert(rid, row)
				case r < 7: // delete
					rid := int64(rng.Intn(int(n)))
					if err := p.Delete(rid); err != nil {
						t.Fatalf("op %d delete(%d): %v", op, rid, err)
					}
					img.delete(rid)
				default: // modify
					rid := int64(rng.Intn(int(n)))
					col := rng.Intn(2)
					var v vtypes.Value
					if col == 0 {
						v = vtypes.I64Value(int64(op))
					} else {
						v = vtypes.StrValue(fmt.Sprintf("m%d", op))
					}
					if err := p.Modify(rid, col, v); err != nil {
						t.Fatalf("op %d modify(%d,%d): %v", op, rid, col, err)
					}
					img.modify(rid, col, v)
				}
				if p.VisibleRows() != int64(len(img.rows)) {
					t.Fatalf("op %d: visible %d != model %d", op, p.VisibleRows(), len(img.rows))
				}
				// Full image check periodically (it is O(n)).
				if op%150 == 149 {
					checkImage(t, p, stable, img.rows)
				}
			}
			checkImage(t, p, stable, img.rows)
		})
	}
}

func TestMergeScanBatchBoundaries(t *testing.T) {
	// Insertions at batch boundaries and a delete spanning a refill.
	stable := stableRows(20)
	p := New(testSchema(), 20)
	img := &naiveImage{rows: append([]vtypes.Row{}, stable...)}
	for _, rid := range []int64{0, 5, 10, 20} {
		row := mkRow(rid+500, "b")
		if err := p.Insert(rid, row); err != nil {
			t.Fatal(err)
		}
		img.insert(rid, row)
	}
	if err := p.Delete(8); err != nil {
		t.Fatal(err)
	}
	img.delete(8)
	// Exercise several batch-size combinations.
	for _, srcBatch := range []int{1, 3, 7, 64} {
		for _, outBatch := range []int{1, 4, 9, 64} {
			got, err := Materialize(NewMergeScan(stableSource(stable, srcBatch), p, outBatch), p.Schema())
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(img.rows) {
				t.Fatalf("src=%d out=%d: %d rows, want %d", srcBatch, outBatch, len(got), len(img.rows))
			}
			for i := range got {
				if !got[i][0].Equal(img.rows[i][0]) {
					t.Fatalf("src=%d out=%d row %d mismatch", srcBatch, outBatch, i)
				}
			}
		}
	}
}

func TestPropagateBasic(t *testing.T) {
	stable := stableRows(10)
	big := New(testSchema(), 10)
	if err := big.Delete(3); err != nil {
		t.Fatal(err)
	}
	if err := big.Insert(0, mkRow(100, "big")); err != nil {
		t.Fatal(err)
	}
	// big image: [big, s0, s1, s2, s4..s9] (10 rows)

	small := New(testSchema(), big.VisibleRows())
	if err := small.Modify(0, 1, vtypes.StrValue("patched-big")); err != nil {
		t.Fatal(err)
	}
	if err := small.Delete(4); err != nil { // deletes s4 (big rid 4 = stable 4)
		t.Fatal(err)
	}
	if err := small.Insert(2, mkRow(200, "small")); err != nil {
		t.Fatal(err)
	}

	combined, err := Propagate(big, small)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: materialize via stacked merge.
	want, err := Materialize(
		NewMergeScan(NewMergeScan(stableSource(stable, 6), big, 4), small, 8), testSchema())
	if err != nil {
		t.Fatal(err)
	}
	got, err := Materialize(NewMergeScan(stableSource(stable, 5), combined, 3), testSchema())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("propagate: %d rows, want %d", len(got), len(want))
	}
	for i := range want {
		for c := range want[i] {
			if !got[i][c].Equal(want[i][c]) {
				t.Fatalf("propagate row %d col %d: %v vs %v", i, c, got[i][c], want[i][c])
			}
		}
	}
}

func TestPropagateMismatchErrors(t *testing.T) {
	big := New(testSchema(), 10)
	small := New(testSchema(), 99)
	if _, err := Propagate(big, small); err == nil {
		t.Fatal("stable-row mismatch must error")
	}
}

// TestPropagateRandomAgainstStackedMerge drives random ops into big and
// small layers and checks Propagate(big, small) produces the identical
// image to the stacked merge — the key layering invariant of the paper.
func TestPropagateRandomAgainstStackedMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		stableN := rng.Intn(60)
		stable := stableRows(stableN)
		big := New(testSchema(), int64(stableN))
		applyRandom(t, rng, big, 40)
		small := New(testSchema(), big.VisibleRows())
		applyRandom(t, rng, small, 40)

		combined, err := Propagate(big, small)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want, err := Materialize(
			NewMergeScan(NewMergeScan(stableSource(stable, 8), big, 8), small, 8), testSchema())
		if err != nil {
			t.Fatal(err)
		}
		got, err := Materialize(NewMergeScan(stableSource(stable, 8), combined, 8), testSchema())
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d rows, want %d", trial, len(got), len(want))
		}
		for i := range want {
			for c := range want[i] {
				if !got[i][c].Equal(want[i][c]) {
					t.Fatalf("trial %d row %d col %d: %v vs %v", trial, i, c, got[i][c], want[i][c])
				}
			}
		}
	}
}

func applyRandom(t *testing.T, rng *rand.Rand, p *PDT, ops int) {
	t.Helper()
	for op := 0; op < ops; op++ {
		n := p.VisibleRows()
		switch r := rng.Intn(10); {
		case r < 4 || n == 0:
			if err := p.Insert(int64(rng.Intn(int(n)+1)), mkRow(rng.Int63n(1e6), "r")); err != nil {
				t.Fatal(err)
			}
		case r < 7:
			if err := p.Delete(int64(rng.Intn(int(n)))); err != nil {
				t.Fatal(err)
			}
		default:
			col := rng.Intn(2)
			var v vtypes.Value
			if col == 0 {
				v = vtypes.I64Value(rng.Int63n(1e6))
			} else {
				v = vtypes.StrValue("mm")
			}
			if err := p.Modify(int64(rng.Intn(int(n))), col, v); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	p := New(testSchema(), 50)
	applyRandom(t, rng, p, 120)
	data := Encode(p)
	q, err := Decode(testSchema(), data)
	if err != nil {
		t.Fatal(err)
	}
	if q.StableRows() != p.StableRows() || q.VisibleRows() != p.VisibleRows() || q.Len() != p.Len() {
		t.Fatal("decoded shape mismatch")
	}
	stable := stableRows(50)
	want, _ := Materialize(NewMergeScan(stableSource(stable, 8), p, 8), testSchema())
	got, _ := Materialize(NewMergeScan(stableSource(stable, 8), q, 8), testSchema())
	if len(want) != len(got) {
		t.Fatal("decoded image size mismatch")
	}
	for i := range want {
		for c := range want[i] {
			if !got[i][c].Equal(want[i][c]) {
				t.Fatalf("decoded image row %d differs", i)
			}
		}
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	p := New(testSchema(), 5)
	_ = p.Insert(0, mkRow(1, "abc"))
	_ = p.Modify(3, 1, vtypes.StrValue("zz"))
	data := Encode(p)
	for cut := 0; cut < len(data); cut++ {
		if _, err := Decode(testSchema(), data[:cut]); err == nil {
			// Truncation at varint boundaries may still parse a prefix
			// as fewer entries only if entry count survived intact —
			// but the count is encoded up front, so it must error.
			t.Fatalf("truncation at %d must error", cut)
		}
	}
}

func TestEncodeWithNullsRoundtrip(t *testing.T) {
	schema := vtypes.NewSchema(
		vtypes.Column{Name: "a", Kind: vtypes.KindI64, Nullable: true},
		vtypes.Column{Name: "b", Kind: vtypes.KindBool},
		vtypes.Column{Name: "c", Kind: vtypes.KindF64},
	)
	p := New(schema, 2)
	_ = p.Insert(0, vtypes.Row{vtypes.NullValue(vtypes.KindI64), vtypes.BoolValue(true), vtypes.F64Value(2.5)})
	_ = p.Modify(1, 0, vtypes.NullValue(vtypes.KindI64))
	q, err := Decode(schema, Encode(p))
	if err != nil {
		t.Fatal(err)
	}
	ents := q.Entries()
	if !ents[0].Row[0].Null || !ents[0].Row[1].B || ents[0].Row[2].F64 != 2.5 {
		t.Fatal("ins row lost values")
	}
	if !ents[1].Mods[0].Val.Null {
		t.Fatal("mod null lost")
	}
}

func TestChunkSplitting(t *testing.T) {
	// Enough appends to force several chunk splits; image must stay
	// consistent and ordered.
	p := New(testSchema(), 0)
	n := maxChunk*3 + 17
	for i := 0; i < n; i++ {
		if err := p.Append(mkRow(int64(i), "x")); err != nil {
			t.Fatal(err)
		}
	}
	if p.VisibleRows() != int64(n) {
		t.Fatal("visible count wrong after splits")
	}
	got, err := Materialize(NewMergeScan(stableSource(nil, 8), p, 64), testSchema())
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i][0].I64 != int64(i) {
			t.Fatalf("order broken at %d after splits", i)
		}
	}
}
