package pdt

import (
	"vectorwise/internal/vector"
	"vectorwise/internal/vtypes"
)

// RowSource is a pull-based stream of row batches as aligned column
// vectors (dense, no selection vector). n == 0 signals end of stream.
// The storage scanner and the merge scan both present this shape, so
// PDT layers chain naturally: stable → big PDT → small PDT.
type RowSource interface {
	Next() (cols []*vector.Vector, n int, err error)
}

// MergeScan applies a PDT to a stable RowSource positionally: deleted
// stable rows are dropped, modified rows patched, inserted rows injected
// at their positions. Runs of unmodified rows move with bulk copies —
// the reason positional deltas merge faster than value-based ones.
type MergeScan struct {
	src    RowSource
	p      *PDT
	schema *vtypes.Schema
	vecCap int

	// stable input cursor
	cols []*vector.Vector
	n    int
	off  int
	sid  int64
	eof  bool

	// entry cursor
	ents []Entry
	ei   int

	out *vector.Batch
}

// NewMergeScan wraps src with the deltas of p. vecCap <= 0 selects
// vector.DefaultSize for output batches.
func NewMergeScan(src RowSource, p *PDT, vecCap int) *MergeScan {
	if vecCap <= 0 {
		vecCap = vector.DefaultSize
	}
	return &MergeScan{
		src:    src,
		p:      p,
		schema: p.Schema(),
		vecCap: vecCap,
		ents:   p.Entries(),
		out:    vector.NewBatch(p.Schema(), vecCap),
	}
}

// fill ensures a stable batch is available (or eof).
func (m *MergeScan) fill() error {
	for !m.eof && m.off >= m.n {
		cols, n, err := m.src.Next()
		if err != nil {
			return err
		}
		if n == 0 {
			m.eof = true
			return nil
		}
		m.cols, m.n, m.off = cols, n, 0
	}
	return nil
}

// Next implements RowSource, producing the merged image.
func (m *MergeScan) Next() (cols []*vector.Vector, n int, err error) {
	if err := m.fill(); err != nil {
		return nil, 0, err
	}
	produced := 0
	// Fresh output vectors each call: downstream operators may retain
	// views of the returned columns.
	m.out = vector.NewBatch(m.schema, m.vecCap)
	for produced < m.vecCap {
		var entSID int64 = 1<<62 - 1
		if m.ei < len(m.ents) {
			entSID = m.ents[m.ei].SID
		}
		if m.eof && m.ei >= len(m.ents) {
			break
		}
		if !m.eof && m.sid < entSID {
			// Bulk-copy the run of untouched stable rows.
			run := entSID - m.sid
			if avail := int64(m.n - m.off); run > avail {
				run = avail
			}
			if rem := int64(m.vecCap - produced); run > rem {
				run = rem
			}
			if run > 0 {
				for c := range m.out.Vecs {
					m.out.Vecs[c].CopyFrom(m.cols[c], m.off, produced, int(run))
				}
				m.off += int(run)
				m.sid += run
				produced += int(run)
			}
			if m.off >= m.n {
				if err := m.fill(); err != nil {
					return nil, 0, err
				}
			}
			continue
		}
		if m.ei < len(m.ents) && entSID <= m.sid {
			e := &m.ents[m.ei]
			switch e.Type {
			case Ins:
				for c := range m.out.Vecs {
					m.out.Vecs[c].Set(produced, e.Row[c])
				}
				produced++
				m.ei++
			case Del:
				// Skip the stable row at this SID.
				if err := m.skipStable(); err != nil {
					return nil, 0, err
				}
				m.ei++
			case Mod:
				for c := range m.out.Vecs {
					m.out.Vecs[c].CopyFrom(m.cols[c], m.off, produced, 1)
				}
				for _, mc := range e.Mods {
					m.out.Vecs[mc.Col].Set(produced, mc.Val)
				}
				produced++
				m.ei++
				if err := m.skipStable(); err != nil {
					return nil, 0, err
				}
			}
			continue
		}
		// Entries exhausted but stable rows remain past eof handling.
		if m.eof {
			break
		}
	}
	if produced == 0 {
		return nil, 0, nil
	}
	m.out.SetDense(produced)
	return m.out.Vecs, produced, nil
}

// skipStable advances past one stable input row.
func (m *MergeScan) skipStable() error {
	m.off++
	m.sid++
	if m.off >= m.n {
		return m.fill()
	}
	return nil
}

// VecSource adapts a fixed set of in-memory columns to RowSource (test
// and baseline-engine helper).
type VecSource struct {
	cols []*vector.Vector
	rows int
	cap  int
	pos  int
}

// NewVecSource serves rows from whole-column vectors in batches of cap.
func NewVecSource(cols []*vector.Vector, rows, capacity int) *VecSource {
	if capacity <= 0 {
		capacity = vector.DefaultSize
	}
	return &VecSource{cols: cols, rows: rows, cap: capacity}
}

// Next implements RowSource.
func (s *VecSource) Next() ([]*vector.Vector, int, error) {
	if s.pos >= s.rows {
		return nil, 0, nil
	}
	n := s.rows - s.pos
	if n > s.cap {
		n = s.cap
	}
	out := make([]*vector.Vector, len(s.cols))
	for i, v := range s.cols {
		out[i] = viewRange(v, s.pos, s.pos+n)
	}
	s.pos += n
	return out, n, nil
}

// Reset rewinds the source.
func (s *VecSource) Reset() { s.pos = 0 }

func viewRange(v *vector.Vector, lo, hi int) *vector.Vector {
	out := &vector.Vector{Kind: v.Kind}
	switch v.Kind.StorageClass() {
	case vtypes.ClassI64:
		out.I64 = v.I64[lo:hi]
	case vtypes.ClassF64:
		out.F64 = v.F64[lo:hi]
	case vtypes.ClassStr:
		out.Str = v.Str[lo:hi]
	case vtypes.ClassBool:
		out.B = v.B[lo:hi]
	}
	if v.Nulls != nil {
		out.Nulls = v.Nulls[lo:hi]
	}
	return out
}

// Materialize drains a RowSource into full rows (test helper and the
// update layer's snapshot reads).
func Materialize(src RowSource, schema *vtypes.Schema) ([]vtypes.Row, error) {
	var out []vtypes.Row
	for {
		cols, n, err := src.Next()
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return out, nil
		}
		for i := 0; i < n; i++ {
			row := make(vtypes.Row, len(cols))
			for c, v := range cols {
				row[c] = v.Get(i)
			}
			out = append(out, row)
		}
	}
}
