package pdt

import (
	"vectorwise/internal/vector"
	"vectorwise/internal/vtypes"
)

// RowSource is a pull-based stream of row batches as aligned column
// vectors (dense, no selection vector). n == 0 signals end of stream.
// The storage scanner and the merge scan both present this shape, so
// PDT layers chain naturally: stable → big PDT → small PDT.
type RowSource interface {
	Next() (cols []*vector.Vector, n int, err error)
}

// PositionedSource is a RowSource that also reports where its batches
// sit in the global position space of its consumer: BasePos is the
// position of the first row of the batch most recently returned by
// Next, and EndPos is the exclusive upper bound of the whole stream's
// range (the table end, or the partition end for GroupLo/GroupHi
// restricted scans). A positioned source may leave gaps — row groups
// skipped by min/max pruning — and may start after 0 or end before the
// table end — partition scans. MergeScan aligns its delta cursor to
// the reported positions instead of assuming a dense full-table
// stream: entries outside [start, EndPos) are stepped over (they
// belong to other partitions), and pruned gaps are guaranteed
// entry-free by the pruning contract (see PDT.HasEntriesIn). A
// positioned source never returns a batch spanning a gap.
type PositionedSource interface {
	RowSource
	BasePos() int64
	EndPos() int64
}

// MergeScan applies a PDT to a stable RowSource positionally: deleted
// stable rows are dropped, modified rows patched, inserted rows injected
// at their positions. Runs of unmodified rows move with bulk copies —
// the reason positional deltas merge faster than value-based ones.
type MergeScan struct {
	src    RowSource
	posSrc PositionedSource // non-nil when src reports batch positions
	p      *PDT
	schema *vtypes.Schema
	vecCap int

	// stable input cursor
	cols []*vector.Vector
	n    int
	off  int
	sid  int64
	eof  bool
	// jumped records that fill observed a position discontinuity (a
	// pruned row-group range). Rows produced before and after a jump
	// must land in different output batches so this MergeScan's own
	// BasePos stays truthful for the layer above.
	jumped bool

	// entry cursor
	ents []Entry
	ei   int
	// delta is the net ins-del count of consumed entries — applied or
	// stepped over; sid+delta is the RID of the next output row, which
	// makes the merge itself a PositionedSource for the layer above.
	delta   int64
	basePos int64
	// entStop bounds entry emission after eof: entries at SID >=
	// entStop belong to the partition after this one. Full-range
	// merges keep it past stableRows so appends emit.
	entStop int64
	// srcEnd is the source's reported end position (stableRows for
	// non-positioned sources), set once eof is seen.
	srcEnd int64

	out *vector.Batch
}

// NewMergeScan wraps src with the deltas of p. vecCap <= 0 selects
// vector.DefaultSize for output batches.
func NewMergeScan(src RowSource, p *PDT, vecCap int) *MergeScan {
	if vecCap <= 0 {
		vecCap = vector.DefaultSize
	}
	ps, _ := src.(PositionedSource)
	return &MergeScan{
		src:     src,
		posSrc:  ps,
		p:       p,
		schema:  p.Schema(),
		vecCap:  vecCap,
		ents:    p.Entries(),
		entStop: 1<<62 - 1,
		srcEnd:  p.stableRows,
		out:     vector.NewBatch(p.Schema(), vecCap),
	}
}

// BasePos implements PositionedSource: the RID (in this merge's output
// image) of the first row of the batch most recently returned by Next.
func (m *MergeScan) BasePos() int64 { return m.basePos }

// EndPos implements PositionedSource: the exclusive RID bound of this
// merge's output range. A full-range merge ends at VisibleRows (its
// appends included); a partition-restricted merge ends where the next
// partition's first image row begins.
func (m *MergeScan) EndPos() int64 {
	if m.srcEnd == m.p.stableRows {
		return m.p.VisibleRows()
	}
	return m.p.StartRID(m.srcEnd)
}

// skipEntriesBelow steps the entry cursor over entries at SID < sid
// without applying them: they annotate rows outside this stream (other
// partitions), or lie in a pruned gap (entry-free by contract, no-op).
// Their net insert-delete effect still lands in delta so sid+delta
// stays the true global RID.
func (m *MergeScan) skipEntriesBelow(sid int64) {
	for m.ei < len(m.ents) && m.ents[m.ei].SID < sid {
		switch m.ents[m.ei].Type {
		case Ins:
			m.delta++
		case Del:
			m.delta--
		}
		m.ei++
	}
}

// fill ensures a stable batch is available (or eof), aligning the
// stable cursor to the source's reported position when it can skip
// pruned row groups.
func (m *MergeScan) fill() error {
	for !m.eof && m.off >= m.n {
		cols, n, err := m.src.Next()
		if err != nil {
			return err
		}
		if n == 0 {
			m.eof = true
			if m.posSrc != nil {
				// Advance to the stream's declared end: trailing
				// pruned groups are stepped over (entry-free by
				// contract), and entries past the end — the next
				// partition's — stop emission (except appends at
				// stableRows, which belong to the partition that
				// reaches the table end).
				m.srcEnd = m.posSrc.EndPos()
				m.entStop = m.srcEnd
				if m.srcEnd == m.p.stableRows {
					m.entStop = m.p.stableRows + 1
				}
				if m.sid != m.srcEnd {
					m.skipEntriesBelow(m.srcEnd)
					m.sid = m.srcEnd
					m.jumped = true
				}
			}
			return nil
		}
		m.cols, m.n, m.off = cols, n, 0
		if m.posSrc != nil {
			if pos := m.posSrc.BasePos(); pos != m.sid {
				// A gap [m.sid, pos): a pruned range (entry-free) or
				// the run-up to a partition start (entries there
				// belong to earlier partitions — step over them,
				// keeping delta truthful).
				m.skipEntriesBelow(pos)
				m.sid = pos
				m.jumped = true
			}
		}
	}
	return nil
}

// Next implements RowSource, producing the merged image.
func (m *MergeScan) Next() (cols []*vector.Vector, n int, err error) {
	if err := m.fill(); err != nil {
		return nil, 0, err
	}
	// A jump before the first row of a batch is not a cut — the batch
	// simply starts after the gap.
	m.jumped = false
	m.basePos = m.sid + m.delta
	produced := 0
	// Fresh output vectors each call: downstream operators may retain
	// views of the returned columns.
	m.out = vector.NewBatch(m.schema, m.vecCap)
	for produced < m.vecCap {
		if m.jumped {
			// A pruned gap opened mid-batch: rows after it have
			// discontiguous RIDs, so they start the next batch.
			if produced > 0 {
				break
			}
			m.jumped = false
			m.basePos = m.sid + m.delta
		}
		var entSID int64 = 1<<62 - 1
		if m.ei < len(m.ents) {
			entSID = m.ents[m.ei].SID
		}
		if m.eof && (m.ei >= len(m.ents) || entSID >= m.entStop) {
			break
		}
		if !m.eof && m.sid < entSID {
			// Bulk-copy the run of untouched stable rows.
			run := entSID - m.sid
			if avail := int64(m.n - m.off); run > avail {
				run = avail
			}
			if rem := int64(m.vecCap - produced); run > rem {
				run = rem
			}
			if run > 0 {
				for c := range m.out.Vecs {
					m.out.Vecs[c].CopyFrom(m.cols[c], m.off, produced, int(run))
				}
				m.off += int(run)
				m.sid += run
				produced += int(run)
			}
			if m.off >= m.n {
				if err := m.fill(); err != nil {
					return nil, 0, err
				}
			}
			continue
		}
		if m.ei < len(m.ents) && entSID <= m.sid {
			e := &m.ents[m.ei]
			switch e.Type {
			case Ins:
				for c := range m.out.Vecs {
					m.out.Vecs[c].Set(produced, e.Row[c])
				}
				produced++
				m.delta++
				m.ei++
			case Del:
				// Skip the stable row at this SID.
				if err := m.skipStable(); err != nil {
					return nil, 0, err
				}
				m.delta--
				m.ei++
			case Mod:
				for c := range m.out.Vecs {
					m.out.Vecs[c].CopyFrom(m.cols[c], m.off, produced, 1)
				}
				for _, mc := range e.Mods {
					m.out.Vecs[mc.Col].Set(produced, mc.Val)
				}
				produced++
				m.ei++
				if err := m.skipStable(); err != nil {
					return nil, 0, err
				}
			}
			continue
		}
		// Entries exhausted but stable rows remain past eof handling.
		if m.eof {
			break
		}
	}
	if produced == 0 {
		return nil, 0, nil
	}
	m.out.SetDense(produced)
	return m.out.Vecs, produced, nil
}

// skipStable advances past one stable input row.
func (m *MergeScan) skipStable() error {
	m.off++
	m.sid++
	if m.off >= m.n {
		return m.fill()
	}
	return nil
}

// VecSource adapts a fixed set of in-memory columns to RowSource (test
// and baseline-engine helper).
type VecSource struct {
	cols []*vector.Vector
	rows int
	cap  int
	pos  int
}

// NewVecSource serves rows from whole-column vectors in batches of cap.
func NewVecSource(cols []*vector.Vector, rows, capacity int) *VecSource {
	if capacity <= 0 {
		capacity = vector.DefaultSize
	}
	return &VecSource{cols: cols, rows: rows, cap: capacity}
}

// Next implements RowSource.
func (s *VecSource) Next() ([]*vector.Vector, int, error) {
	if s.pos >= s.rows {
		return nil, 0, nil
	}
	n := s.rows - s.pos
	if n > s.cap {
		n = s.cap
	}
	out := make([]*vector.Vector, len(s.cols))
	for i, v := range s.cols {
		out[i] = viewRange(v, s.pos, s.pos+n)
	}
	s.pos += n
	return out, n, nil
}

// Reset rewinds the source.
func (s *VecSource) Reset() { s.pos = 0 }

func viewRange(v *vector.Vector, lo, hi int) *vector.Vector {
	out := &vector.Vector{Kind: v.Kind}
	switch v.Kind.StorageClass() {
	case vtypes.ClassI64:
		out.I64 = v.I64[lo:hi]
	case vtypes.ClassF64:
		out.F64 = v.F64[lo:hi]
	case vtypes.ClassStr:
		out.Str = v.Str[lo:hi]
	case vtypes.ClassBool:
		out.B = v.B[lo:hi]
	}
	if v.Nulls != nil {
		out.Nulls = v.Nulls[lo:hi]
	}
	return out
}

// Materialize drains a RowSource into full rows (test helper and the
// update layer's snapshot reads).
func Materialize(src RowSource, schema *vtypes.Schema) ([]vtypes.Row, error) {
	var out []vtypes.Row
	for {
		cols, n, err := src.Next()
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return out, nil
		}
		for i := 0; i < n; i++ {
			row := make(vtypes.Row, len(cols))
			for c, v := range cols {
				row[c] = v.Get(i)
			}
			out = append(out, row)
		}
	}
}
