package pdt

import (
	"fmt"
	"sort"
)

// Coordinate translation helpers used by optimistic concurrency control:
// a transaction's small PDT addresses the snapshot master's output image
// (RIDs); validation and rebase need to round-trip those through stable
// coordinates (SIDs).

// ResolveRID maps a visible RID to its target: the stable position sid,
// and when the RID addresses a row inserted by this PDT, its index k
// within the Ins run at sid (isIns true).
func (p *PDT) ResolveRID(rid int64) (sid int64, k int, isIns bool, err error) {
	t, err := p.resolve(rid)
	if err != nil {
		return 0, 0, false, err
	}
	return t.sid, t.insK, t.isIns, nil
}

// InsertionPoint maps an insertion RID (0 <= rid <= VisibleRows()) to
// the (sid, k) pair identifying where an Insert at rid would land: as
// the k-th Ins entry at stable position sid.
func (p *PDT) InsertionPoint(rid int64) (sid int64, k int, err error) {
	if rid < 0 || rid > p.VisibleRows() {
		return 0, 0, fmt.Errorf("pdt: insertion point %d out of range [0,%d]", rid, p.VisibleRows())
	}
	lo, hi := int64(0), p.stableRows
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if p.startRID(mid) <= rid {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	s := lo
	delta, _, _, _ := p.deltaBefore(s)
	return s, int(rid - (s + delta)), nil
}

// RIDOfStable returns the RID at which the stable tuple sid is (or
// would be) visible in this PDT's output image.
func (p *PDT) RIDOfStable(sid int64) int64 {
	delta, insAtS, _, _ := p.deltaBefore(sid)
	return sid + delta + int64(insAtS)
}

// RIDOfIns returns the RID of the k-th Ins entry at stable position sid.
func (p *PDT) RIDOfIns(sid int64, k int) int64 {
	delta, _, _, _ := p.deltaBefore(sid)
	return sid + delta + int64(k)
}

// IsStableDeleted reports whether the stable tuple sid carries a Del.
func (p *PDT) IsStableDeleted(sid int64) bool { return p.isDeleted(sid) }

// StartRID returns the RID of the first image row belonging to stable
// position sid: the first Ins at sid if any, else stable sid itself.
// It is the coordinate translation data skipping uses to re-express a
// stable row-group range in the output image of a PDT layer.
func (p *PDT) StartRID(sid int64) int64 { return p.startRID(sid) }

// HasEntriesIn reports whether any delta entry annotates a stable
// position in [lo, hi). A row group whose global position range is
// entry-free in every PDT layer can be skipped by statistics without
// disturbing the positional merge: the merge scan just advances its
// stable cursor across the gap (no inserts to inject, no deletes or
// modifications to apply, and downstream layers see an equally clean
// RID gap). Entries at exactly hi belong to the next group's range —
// an Ins at hi injects before the next group's first row.
func (p *PDT) HasEntriesIn(lo, hi int64) bool {
	if lo >= hi {
		return false
	}
	// First chunk whose last entry reaches lo.
	ci := sort.Search(len(p.chunks), func(i int) bool {
		c := p.chunks[i].entries
		return c[len(c)-1].SID >= lo
	})
	if ci == len(p.chunks) {
		return false
	}
	ents := p.chunks[ci].entries
	ei := sort.Search(len(ents), func(i int) bool { return ents[i].SID >= lo })
	if ei == len(ents) {
		// Last entry of chunk ci reaches lo per the chunk search, so
		// ei < len(ents) always; guard anyway.
		ci++
		if ci == len(p.chunks) {
			return false
		}
		ents, ei = p.chunks[ci].entries, 0
	}
	return ents[ei].SID < hi
}
