package vector

import "vectorwise/internal/vtypes"

// Batch is the unit passed between vectorized operators: a set of
// equally-long vectors plus an optional selection vector. When Sel is
// nil the batch is dense and rows 0..N-1 are live; otherwise exactly the
// positions Sel[0..N-1] are live. Selection vectors let Select filter
// without copying any payload data — the filtered-out rows simply stop
// being referenced, which is a central X100 trick.
type Batch struct {
	Vecs []*Vector
	// Sel lists live positions in ascending order, or is nil for dense.
	Sel []int32
	// N is the live row count (len(Sel) when Sel != nil).
	N int
	// selBuf is retained so ResetSel can reuse capacity.
	selBuf []int32
}

// NewBatch allocates a batch with one vector per schema column, each of
// capacity cap.
func NewBatch(schema *vtypes.Schema, capacity int) *Batch {
	b := &Batch{Vecs: make([]*Vector, schema.Len())}
	for i, c := range schema.Cols {
		b.Vecs[i] = New(c.Kind, capacity)
	}
	return b
}

// NewBatchOfKinds allocates a batch from explicit kinds.
func NewBatchOfKinds(kinds []vtypes.Kind, capacity int) *Batch {
	b := &Batch{Vecs: make([]*Vector, len(kinds))}
	for i, k := range kinds {
		b.Vecs[i] = New(k, capacity)
	}
	return b
}

// Capacity returns the slot capacity of the batch's vectors (0 if empty).
func (b *Batch) Capacity() int {
	if len(b.Vecs) == 0 {
		return 0
	}
	return b.Vecs[0].Len()
}

// SetDense marks the batch dense with n live rows.
func (b *Batch) SetDense(n int) {
	b.Sel = nil
	b.N = n
}

// MutableSel returns a selection buffer of capacity >= cap, reusing any
// prior buffer. The caller fills it and calls SetSel.
func (b *Batch) MutableSel(capacity int) []int32 {
	if cap(b.selBuf) < capacity {
		b.selBuf = make([]int32, capacity)
	}
	return b.selBuf[:capacity]
}

// SetSel installs sel[:n] as the live set.
func (b *Batch) SetSel(sel []int32, n int) {
	b.Sel = sel[:n]
	b.N = n
}

// LiveIndex returns the physical index of live row i.
func (b *Batch) LiveIndex(i int) int {
	if b.Sel != nil {
		return int(b.Sel[i])
	}
	return i
}

// Row boxes live row i; boundary use only (result sets, tests).
func (b *Batch) Row(i int) vtypes.Row {
	ix := b.LiveIndex(i)
	row := make(vtypes.Row, len(b.Vecs))
	for c, v := range b.Vecs {
		row[c] = v.Get(ix)
	}
	return row
}

// Compact rewrites the batch so it becomes dense: every live row is
// copied to the front of fresh vectors. Operators that must materialize
// (hash build, sort, exchange) call this to drop the selection vector.
func (b *Batch) Compact() {
	if b.Sel == nil {
		return
	}
	for i, v := range b.Vecs {
		nv := New(v.Kind, b.Capacity())
		nv.GatherFrom(v, b.Sel)
		b.Vecs[i] = nv
	}
	b.Sel = nil
}

// Kinds returns the vector kinds of the batch.
func (b *Batch) Kinds() []vtypes.Kind {
	ks := make([]vtypes.Kind, len(b.Vecs))
	for i, v := range b.Vecs {
		ks[i] = v.Kind
	}
	return ks
}
