// Package vector implements the unit of data flow of the X100 engine:
// small typed arrays ("vectors") of roughly a thousand values, processed
// whole by each primitive. This strikes the balance the paper describes
// between tuple-at-a-time pipelining (interpretation overhead on every
// tuple) and MonetDB-style full materialization (memory traffic for
// whole-column intermediates).
package vector

import (
	"fmt"

	"vectorwise/internal/vtypes"
)

// DefaultSize is the default number of values per vector. X100 found
// ~1K values per vector amortizes interpretation overhead while keeping
// the working set of a query pipeline inside the CPU cache; experiment
// F1 reproduces that curve.
const DefaultSize = 1024

// Vector is a typed array of values with an optional null indicator.
// Exactly one of the payload slices is non-nil, selected by the storage
// class of Kind. Kernels index the payload slices directly: no interface
// dispatch, no boxing.
type Vector struct {
	Kind vtypes.Kind
	// I64 backs ClassI64 kinds (BIGINT, DATE).
	I64 []int64
	// F64 backs DOUBLE.
	F64 []float64
	// Str backs VARCHAR.
	Str []string
	// B backs BOOLEAN.
	B []bool
	// Nulls, when non-nil, marks NULL positions. Operators produced by
	// the NULL-decomposition rewrite never consult it; it exists so the
	// storage layer can surface indicator columns and so un-rewritten
	// plans (experiment T5's baseline) remain executable.
	Nulls []bool
}

// New allocates a vector of the given kind and capacity n.
func New(kind vtypes.Kind, n int) *Vector {
	v := &Vector{Kind: kind}
	switch kind.StorageClass() {
	case vtypes.ClassI64:
		v.I64 = make([]int64, n)
	case vtypes.ClassF64:
		v.F64 = make([]float64, n)
	case vtypes.ClassStr:
		v.Str = make([]string, n)
	case vtypes.ClassBool:
		v.B = make([]bool, n)
	default:
		panic(fmt.Sprintf("vector: invalid kind %v", kind))
	}
	return v
}

// Len returns the capacity of the payload (number of slots).
func (v *Vector) Len() int {
	switch v.Kind.StorageClass() {
	case vtypes.ClassI64:
		return len(v.I64)
	case vtypes.ClassF64:
		return len(v.F64)
	case vtypes.ClassStr:
		return len(v.Str)
	case vtypes.ClassBool:
		return len(v.B)
	}
	return 0
}

// EnsureNulls materializes the null indicator slice (all false) if absent.
func (v *Vector) EnsureNulls() {
	if v.Nulls == nil {
		v.Nulls = make([]bool, v.Len())
	}
}

// HasNulls reports whether any position in [0,n) is NULL.
func (v *Vector) HasNulls(n int) bool {
	if v.Nulls == nil {
		return false
	}
	for i := 0; i < n && i < len(v.Nulls); i++ {
		if v.Nulls[i] {
			return true
		}
	}
	return false
}

// Get boxes the value at index i. Only boundaries (result output, tests,
// baseline engines) call this; kernels never do.
func (v *Vector) Get(i int) vtypes.Value {
	if v.Nulls != nil && v.Nulls[i] {
		return vtypes.NullValue(v.Kind)
	}
	switch v.Kind.StorageClass() {
	case vtypes.ClassI64:
		return vtypes.Value{Kind: v.Kind, I64: v.I64[i]}
	case vtypes.ClassF64:
		return vtypes.Value{Kind: v.Kind, F64: v.F64[i]}
	case vtypes.ClassStr:
		return vtypes.Value{Kind: v.Kind, Str: v.Str[i]}
	case vtypes.ClassBool:
		return vtypes.Value{Kind: v.Kind, B: v.B[i]}
	}
	panic("vector: invalid kind")
}

// Set stores a boxed value at index i (boundary use only).
func (v *Vector) Set(i int, val vtypes.Value) {
	if val.Null {
		v.EnsureNulls()
		v.Nulls[i] = true
		// Write the storage-class zero as the "safe value" the paper
		// describes, so NULL-oblivious kernels stay well-defined.
		switch v.Kind.StorageClass() {
		case vtypes.ClassI64:
			v.I64[i] = 0
		case vtypes.ClassF64:
			v.F64[i] = 0
		case vtypes.ClassStr:
			v.Str[i] = ""
		case vtypes.ClassBool:
			v.B[i] = false
		}
		return
	}
	if v.Nulls != nil {
		v.Nulls[i] = false
	}
	switch v.Kind.StorageClass() {
	case vtypes.ClassI64:
		v.I64[i] = val.I64
	case vtypes.ClassF64:
		v.F64[i] = val.F64
	case vtypes.ClassStr:
		v.Str[i] = val.Str
	case vtypes.ClassBool:
		v.B[i] = val.B
	}
}

// CopyFrom copies n values from src (dense, starting at srcOff) into v
// starting at dstOff.
func (v *Vector) CopyFrom(src *Vector, srcOff, dstOff, n int) {
	switch v.Kind.StorageClass() {
	case vtypes.ClassI64:
		copy(v.I64[dstOff:dstOff+n], src.I64[srcOff:srcOff+n])
	case vtypes.ClassF64:
		copy(v.F64[dstOff:dstOff+n], src.F64[srcOff:srcOff+n])
	case vtypes.ClassStr:
		copy(v.Str[dstOff:dstOff+n], src.Str[srcOff:srcOff+n])
	case vtypes.ClassBool:
		copy(v.B[dstOff:dstOff+n], src.B[srcOff:srcOff+n])
	}
	if src.Nulls != nil {
		v.EnsureNulls()
		copy(v.Nulls[dstOff:dstOff+n], src.Nulls[srcOff:srcOff+n])
	} else if v.Nulls != nil {
		for i := dstOff; i < dstOff+n; i++ {
			v.Nulls[i] = false
		}
	}
}

// GatherFrom copies src[sel[i]] into v[i] for i in [0,len(sel)) — the
// compaction step that turns a selection vector back into a dense vector.
func (v *Vector) GatherFrom(src *Vector, sel []int32) {
	switch v.Kind.StorageClass() {
	case vtypes.ClassI64:
		d, s := v.I64, src.I64
		for i, ix := range sel {
			d[i] = s[ix]
		}
	case vtypes.ClassF64:
		d, s := v.F64, src.F64
		for i, ix := range sel {
			d[i] = s[ix]
		}
	case vtypes.ClassStr:
		d, s := v.Str, src.Str
		for i, ix := range sel {
			d[i] = s[ix]
		}
	case vtypes.ClassBool:
		d, s := v.B, src.B
		for i, ix := range sel {
			d[i] = s[ix]
		}
	}
	if src.Nulls != nil {
		v.EnsureNulls()
		for i, ix := range sel {
			v.Nulls[i] = src.Nulls[ix]
		}
	} else if v.Nulls != nil {
		for i := range sel {
			v.Nulls[i] = false
		}
	}
}

// Slice returns a view of the first n slots (shares storage).
func (v *Vector) Slice(n int) *Vector {
	out := &Vector{Kind: v.Kind}
	switch v.Kind.StorageClass() {
	case vtypes.ClassI64:
		out.I64 = v.I64[:n]
	case vtypes.ClassF64:
		out.F64 = v.F64[:n]
	case vtypes.ClassStr:
		out.Str = v.Str[:n]
	case vtypes.ClassBool:
		out.B = v.B[:n]
	}
	if v.Nulls != nil {
		out.Nulls = v.Nulls[:n]
	}
	return out
}
