package vector

import (
	"testing"

	"vectorwise/internal/vtypes"
)

func TestNewAllKinds(t *testing.T) {
	for _, k := range []vtypes.Kind{vtypes.KindI64, vtypes.KindF64, vtypes.KindStr, vtypes.KindBool, vtypes.KindDate} {
		v := New(k, 8)
		if v.Len() != 8 {
			t.Fatalf("kind %v: Len = %d", k, v.Len())
		}
	}
}

func TestNewInvalidKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(KindInvalid) must panic")
		}
	}()
	New(vtypes.KindInvalid, 4)
}

func TestGetSetRoundtrip(t *testing.T) {
	vals := []vtypes.Value{
		vtypes.I64Value(-5),
		vtypes.F64Value(1.25),
		vtypes.StrValue("abc"),
		vtypes.BoolValue(true),
		vtypes.DateValue(100),
		vtypes.NullValue(vtypes.KindI64),
	}
	kinds := []vtypes.Kind{vtypes.KindI64, vtypes.KindF64, vtypes.KindStr, vtypes.KindBool, vtypes.KindDate, vtypes.KindI64}
	for i, val := range vals {
		v := New(kinds[i], 4)
		v.Set(2, val)
		got := v.Get(2)
		if got.Null != val.Null || (!val.Null && got.Compare(val) != 0) {
			t.Errorf("roundtrip %v: got %v", val, got)
		}
	}
}

func TestSetNullWritesSafeValue(t *testing.T) {
	v := New(vtypes.KindI64, 2)
	v.I64[0] = 99
	v.Set(0, vtypes.NullValue(vtypes.KindI64))
	if v.I64[0] != 0 {
		t.Fatal("NULL must overwrite payload with the safe value 0")
	}
	if !v.Nulls[0] {
		t.Fatal("null indicator not set")
	}
	// Setting non-null again clears the indicator.
	v.Set(0, vtypes.I64Value(7))
	if v.Nulls[0] || v.I64[0] != 7 {
		t.Fatal("indicator must clear on non-null Set")
	}
}

func TestHasNulls(t *testing.T) {
	v := New(vtypes.KindI64, 4)
	if v.HasNulls(4) {
		t.Fatal("fresh vector has no nulls")
	}
	v.EnsureNulls()
	if v.HasNulls(4) {
		t.Fatal("all-false indicator is not null")
	}
	v.Nulls[3] = true
	if !v.HasNulls(4) {
		t.Fatal("null at 3 not seen")
	}
	if v.HasNulls(3) {
		t.Fatal("null outside prefix must not count")
	}
}

func TestCopyFrom(t *testing.T) {
	src := New(vtypes.KindStr, 4)
	src.Str = []string{"a", "b", "c", "d"}
	src.EnsureNulls()
	src.Nulls[1] = true
	dst := New(vtypes.KindStr, 4)
	dst.CopyFrom(src, 1, 0, 3)
	if dst.Str[0] != "b" || dst.Str[2] != "d" {
		t.Fatalf("payload copy wrong: %v", dst.Str)
	}
	if !dst.Nulls[0] || dst.Nulls[1] {
		t.Fatal("null copy wrong")
	}
}

func TestCopyFromClearsStaleNulls(t *testing.T) {
	src := New(vtypes.KindI64, 2)
	dst := New(vtypes.KindI64, 2)
	dst.EnsureNulls()
	dst.Nulls[0] = true
	dst.CopyFrom(src, 0, 0, 2)
	if dst.Nulls[0] {
		t.Fatal("copy from non-null src must clear dst nulls")
	}
}

func TestGatherFrom(t *testing.T) {
	src := New(vtypes.KindF64, 4)
	src.F64 = []float64{10, 20, 30, 40}
	dst := New(vtypes.KindF64, 2)
	dst.GatherFrom(src, []int32{3, 1})
	if dst.F64[0] != 40 || dst.F64[1] != 20 {
		t.Fatalf("gather wrong: %v", dst.F64)
	}
}

func TestSliceSharesStorage(t *testing.T) {
	v := New(vtypes.KindI64, 4)
	s := v.Slice(2)
	s.I64[0] = 42
	if v.I64[0] != 42 {
		t.Fatal("Slice must share storage")
	}
	if s.Len() != 2 {
		t.Fatal("Slice length wrong")
	}
}

func TestBatchBasics(t *testing.T) {
	sch := vtypes.NewSchema(
		vtypes.Column{Name: "a", Kind: vtypes.KindI64},
		vtypes.Column{Name: "b", Kind: vtypes.KindStr},
	)
	b := NewBatch(sch, 8)
	if b.Capacity() != 8 || len(b.Vecs) != 2 {
		t.Fatal("NewBatch wrong shape")
	}
	b.Vecs[0].I64[0] = 1
	b.Vecs[0].I64[1] = 2
	b.Vecs[1].Str[0] = "x"
	b.Vecs[1].Str[1] = "y"
	b.SetDense(2)
	if b.N != 2 || b.Sel != nil {
		t.Fatal("SetDense wrong")
	}
	r := b.Row(1)
	if r[0].I64 != 2 || r[1].Str != "y" {
		t.Fatalf("Row wrong: %v", r)
	}
}

func TestBatchSelAndCompact(t *testing.T) {
	b := NewBatchOfKinds([]vtypes.Kind{vtypes.KindI64}, 4)
	copy(b.Vecs[0].I64, []int64{10, 20, 30, 40})
	sel := b.MutableSel(4)
	sel[0], sel[1] = 1, 3
	b.SetSel(sel, 2)
	if b.N != 2 || b.LiveIndex(0) != 1 || b.LiveIndex(1) != 3 {
		t.Fatal("selection wrong")
	}
	if b.Row(1)[0].I64 != 40 {
		t.Fatal("Row through sel wrong")
	}
	b.Compact()
	if b.Sel != nil || b.Vecs[0].I64[0] != 20 || b.Vecs[0].I64[1] != 40 {
		t.Fatalf("Compact wrong: %v", b.Vecs[0].I64[:2])
	}
	// Compact on dense batch is a no-op.
	v := b.Vecs[0]
	b.Compact()
	if b.Vecs[0] != v {
		t.Fatal("Compact on dense batch must not reallocate")
	}
}

func TestBatchKinds(t *testing.T) {
	b := NewBatchOfKinds([]vtypes.Kind{vtypes.KindI64, vtypes.KindStr}, 2)
	ks := b.Kinds()
	if ks[0] != vtypes.KindI64 || ks[1] != vtypes.KindStr {
		t.Fatal("Kinds wrong")
	}
}

func TestEmptyBatchCapacity(t *testing.T) {
	b := &Batch{}
	if b.Capacity() != 0 {
		t.Fatal("empty batch capacity must be 0")
	}
}

func TestMutableSelReuses(t *testing.T) {
	b := NewBatchOfKinds([]vtypes.Kind{vtypes.KindI64}, 16)
	s1 := b.MutableSel(8)
	b.SetSel(s1, 0)
	s2 := b.MutableSel(8)
	if &s1[0] != &s2[0] {
		t.Fatal("MutableSel must reuse the buffer when capacity suffices")
	}
}
