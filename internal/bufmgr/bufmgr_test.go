package bufmgr

import (
	"sync"
	"testing"

	"vectorwise/internal/storage"
	"vectorwise/internal/vtypes"
)

func buildTable(t *testing.T, rows, groupRows int) *storage.Table {
	t.Helper()
	schema := vtypes.NewSchema(
		vtypes.Column{Name: "id", Kind: vtypes.KindI64},
		vtypes.Column{Name: "val", Kind: vtypes.KindF64},
	)
	b := storage.NewBuilder("t", schema, groupRows)
	for i := 0; i < rows; i++ {
		if err := b.AppendRow(vtypes.Row{vtypes.I64Value(int64(i)), vtypes.F64Value(float64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	tbl, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestFetchColumnCaches(t *testing.T) {
	tbl := buildTable(t, 1000, 100)
	m := New(1<<30, nil)
	v1, err := m.FetchColumn(tbl, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := m.FetchColumn(tbl, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 {
		t.Fatal("second fetch must hit cache and return same vector")
	}
	st := m.Stats()
	if st.IOChunks != 1 || st.Hits != 1 {
		t.Fatalf("stats wrong: %+v", st)
	}
	if v1.I64[99] != 99 {
		t.Fatal("decoded data wrong")
	}
	if !m.Contains(tbl, 0, 0) || m.Contains(tbl, 1, 0) {
		t.Fatal("Contains wrong")
	}
	if m.CachedBytes() <= 0 {
		t.Fatal("cache occupancy must be positive")
	}
}

func TestEvictionUnderCapacity(t *testing.T) {
	tbl := buildTable(t, 1000, 100) // 10 groups
	// Capacity for roughly 2 chunks of 100 int64s.
	m := New(1700, nil)
	for g := 0; g < 10; g++ {
		if _, err := m.FetchColumn(tbl, g, 0); err != nil {
			t.Fatal(err)
		}
	}
	st := m.Stats()
	if st.Evictions == 0 {
		t.Fatal("expected evictions under tight capacity")
	}
	// Re-fetch group 0: must be a miss now.
	m.ResetStats()
	if _, err := m.FetchColumn(tbl, 0, 0); err != nil {
		t.Fatal(err)
	}
	if m.Stats().IOChunks != 1 {
		t.Fatal("evicted chunk must reload from disk")
	}
}

func TestStatsReset(t *testing.T) {
	tbl := buildTable(t, 100, 100)
	m := New(0, nil)
	if _, err := m.FetchColumn(tbl, 0, 0); err != nil {
		t.Fatal(err)
	}
	m.ResetStats()
	if s := m.Stats(); s.IOChunks != 0 || s.IOBytes != 0 {
		t.Fatal("ResetStats must zero counters")
	}
}

func TestNormalScanDeliversInOrder(t *testing.T) {
	tbl := buildTable(t, 500, 100)
	m := New(0, nil)
	h := m.StartScan(tbl, []int{0}, PolicyNormal)
	defer h.Close()
	var groups []int
	var pos []int64
	for {
		res, ok, err := h.NextGroup()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		groups = append(groups, res.Group)
		pos = append(pos, res.Pos)
		if res.Rows != 100 {
			t.Fatalf("group %d rows %d", res.Group, res.Rows)
		}
		if res.Vecs[0].I64[0] != res.Pos {
			t.Fatal("group data misaligned with position")
		}
	}
	for i, g := range groups {
		if g != i || pos[i] != int64(i*100) {
			t.Fatalf("normal scan must be in order: %v %v", groups, pos)
		}
	}
}

func TestCoopScanDeliversAllGroupsOnce(t *testing.T) {
	tbl := buildTable(t, 500, 100)
	m := New(0, nil)
	h := m.StartScan(tbl, []int{0, 1}, PolicyCooperative)
	defer h.Close()
	seen := map[int]bool{}
	for {
		res, ok, err := h.NextGroup()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if seen[res.Group] {
			t.Fatalf("group %d delivered twice", res.Group)
		}
		seen[res.Group] = true
	}
	if len(seen) != 5 {
		t.Fatalf("delivered %d groups, want 5", len(seen))
	}
}

func TestCoopScanPrefersCachedGroups(t *testing.T) {
	tbl := buildTable(t, 500, 100)
	m := New(0, nil)
	// Warm group 3 in cache.
	if _, err := m.FetchColumn(tbl, 3, 0); err != nil {
		t.Fatal(err)
	}
	h := m.StartScan(tbl, []int{0}, PolicyCooperative)
	defer h.Close()
	res, ok, err := h.NextGroup()
	if err != nil || !ok {
		t.Fatal("scan should deliver")
	}
	if res.Group != 3 {
		t.Fatalf("cooperative scan should serve cached group 3 first, got %d", res.Group)
	}
}

func TestCoopScanSharesIO(t *testing.T) {
	tbl := buildTable(t, 1000, 100) // 10 groups
	m := New(0, nil)
	// Two cooperative scans interleaved: total chunk loads should be
	// roughly one table's worth (10 groups × 1 col), not two.
	h1 := m.StartScan(tbl, []int{0}, PolicyCooperative)
	h2 := m.StartScan(tbl, []int{0}, PolicyCooperative)
	defer h1.Close()
	defer h2.Close()
	done1, done2 := false, false
	for !done1 || !done2 {
		if !done1 {
			_, ok, err := h1.NextGroup()
			if err != nil {
				t.Fatal(err)
			}
			done1 = !ok
		}
		if !done2 {
			_, ok, err := h2.NextGroup()
			if err != nil {
				t.Fatal(err)
			}
			done2 = !ok
		}
	}
	st := m.Stats()
	if st.IOChunks != 10 {
		t.Fatalf("cooperative scans should load each chunk once, got %d loads (%d hits)", st.IOChunks, st.Hits)
	}
	if st.Hits != 10 {
		t.Fatalf("second scan should be all cache hits, got %d", st.Hits)
	}
}

func TestNormalVsCoopUnderTightCache(t *testing.T) {
	// The T4 shape at unit-test scale: staggered concurrent scans with a
	// cache far smaller than the table. Normal scans re-read almost
	// everything; cooperative scans share most loads.
	tbl := buildTable(t, 2000, 100) // 20 groups

	run := func(policy ScanPolicy) int64 {
		m := New(3000, nil) // ~3-4 chunks of 100 int64
		h1 := m.StartScan(tbl, []int{0}, policy)
		h2 := m.StartScan(tbl, []int{0}, policy)
		defer h1.Close()
		defer h2.Close()
		// h1 gets a head start of 10 groups, then they interleave —
		// the staggered-arrival pattern from the paper.
		for i := 0; i < 10; i++ {
			if _, _, err := h1.NextGroup(); err != nil {
				t.Fatal(err)
			}
		}
		done1, done2 := false, false
		for !done1 || !done2 {
			if !done1 {
				_, ok, err := h1.NextGroup()
				if err != nil {
					t.Fatal(err)
				}
				done1 = !ok
			}
			if !done2 {
				_, ok, err := h2.NextGroup()
				if err != nil {
					t.Fatal(err)
				}
				done2 = !ok
			}
		}
		return m.Stats().IOChunks
	}

	normalIO := run(PolicyNormal)
	coopIO := run(PolicyCooperative)
	if coopIO >= normalIO {
		t.Fatalf("cooperative scans should need less I/O: coop=%d normal=%d", coopIO, normalIO)
	}
}

func TestScanAfterCloseErrors(t *testing.T) {
	tbl := buildTable(t, 100, 100)
	m := New(0, nil)
	h := m.StartScan(tbl, []int{0}, PolicyCooperative)
	h.Close()
	h.Close() // idempotent
	if _, _, err := h.NextGroup(); err == nil {
		t.Fatal("NextGroup after Close must error")
	}
}

func TestConcurrentFetchIsSafe(t *testing.T) {
	tbl := buildTable(t, 2000, 100)
	m := New(5000, nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				g := (i*7 + seed) % 20
				v, err := m.FetchColumn(tbl, g, 0)
				if err != nil {
					t.Error(err)
					return
				}
				if v.I64[0] != int64(g*100) {
					t.Errorf("group %d data wrong", g)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestSimDiskThrottleAccounting(t *testing.T) {
	tbl := buildTable(t, 200, 100)
	d := &SimDisk{BytesPerSec: 1 << 30} // fast enough not to slow tests
	m := New(0, d)
	if _, err := m.FetchColumn(tbl, 0, 0); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.IOBytes <= 0 {
		t.Fatal("throttled disk must report transferred bytes")
	}
}
