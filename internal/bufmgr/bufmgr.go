// Package bufmgr implements the buffer management layer, including the
// Cooperative Scans design of paper ref [4]: instead of every concurrent
// scan independently dragging the table through an LRU buffer pool, an
// Active Buffer Manager (ABM) tracks which row groups each registered
// scan still needs, serves cached groups to every scan that wants them,
// and chooses the next group to load by *relevance* — how many waiting
// scans it satisfies. Under bandwidth pressure this turns N concurrent
// table scans from N full table reads into roughly one.
//
// The unit of caching and I/O accounting is a decompressed column chunk
// (row group × column). A synthetic disk with an optional bandwidth
// throttle stands in for the paper's RAID subsystem (see DESIGN.md
// substitution table) so the bandwidth-bound regime is reproducible.
package bufmgr

import (
	"container/list"
	"fmt"
	"sync"
	"time"

	"vectorwise/internal/storage"
	"vectorwise/internal/vector"
)

// Disk models the I/O path that materializes a decompressed column chunk.
type Disk interface {
	// ReadColumn decodes (group, col) of t and reports the compressed
	// bytes transferred.
	ReadColumn(t *storage.Table, group, col int) (*vector.Vector, int64, error)
}

// SimDisk decodes chunks from the in-memory table image, optionally
// throttled to BytesPerSec to emulate a bandwidth-bound disk subsystem.
type SimDisk struct {
	// BytesPerSec caps simulated transfer rate; 0 means unthrottled.
	BytesPerSec int64

	mu   sync.Mutex
	next time.Time
}

// ReadColumn implements Disk.
func (d *SimDisk) ReadColumn(t *storage.Table, group, col int) (*vector.Vector, int64, error) {
	raw := int64(len(t.RawChunk(group, col)))
	if n := t.RawNullChunk(group, col); n != nil {
		raw += int64(len(n))
	}
	if d.BytesPerSec > 0 {
		dur := time.Duration(float64(raw) / float64(d.BytesPerSec) * float64(time.Second))
		d.mu.Lock()
		now := time.Now()
		if d.next.Before(now) {
			d.next = now
		}
		wait := d.next.Sub(now)
		d.next = d.next.Add(dur)
		d.mu.Unlock()
		if wait+dur > 0 {
			time.Sleep(wait + dur)
		}
	}
	v, err := t.DecodeChunk(group, col)
	return v, raw, err
}

// Stats counts buffer manager activity; all fields are cumulative.
type Stats struct {
	// IOBytes is the total compressed bytes read from the disk layer.
	IOBytes int64
	// IOChunks is the number of chunk loads that went to disk.
	IOChunks int64
	// Hits is the number of chunk requests served from cache.
	Hits int64
	// Evictions counts cache evictions.
	Evictions int64
}

type chunkKey struct {
	t     *storage.Table
	group int
	col   int
}

type cacheEntry struct {
	key  chunkKey
	vec  *vector.Vector
	size int64
	elem *list.Element
}

// Manager is a byte-capacity LRU buffer pool over decompressed column
// chunks, shared by all scans of a process. It implements
// storage.ChunkFetcher so the core engine's scans go through it.
// All methods are safe for concurrent use: cache state is guarded by
// mu, chunk loads happen outside the lock (a racing duplicate load is
// benign — one copy wins the cache, both are valid to read), and the
// cached vectors themselves are treated as immutable by every scan.
type Manager struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	cache    map[chunkKey]*cacheEntry
	lru      *list.List // front = most recent
	disk     Disk
	stats    Stats

	scans map[*storage.Table]*abmTable
}

// New creates a Manager with the given cache capacity in bytes of
// decompressed chunk payload (capacity <= 0 means effectively unbounded).
func New(capacity int64, disk Disk) *Manager {
	if disk == nil {
		disk = &SimDisk{}
	}
	if capacity <= 0 {
		capacity = 1 << 62
	}
	return &Manager{
		capacity: capacity,
		cache:    make(map[chunkKey]*cacheEntry),
		lru:      list.New(),
		disk:     disk,
		scans:    make(map[*storage.Table]*abmTable),
	}
}

// Stats returns a snapshot of cumulative counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// ResetStats zeroes the counters (between experiment phases).
func (m *Manager) ResetStats() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats = Stats{}
}

// vectorBytes estimates the decompressed in-memory size of a chunk.
func vectorBytes(v *vector.Vector) int64 {
	n := int64(v.Len())
	var per int64 = 8
	if v.Str != nil {
		per = 24 // string header; payload shared with decode buffer
		for _, s := range v.Str {
			per += 0
			n += int64(len(s)) / max64(1, int64(len(v.Str)))
		}
	}
	if v.B != nil {
		per = 1
	}
	size := n * per
	if v.Nulls != nil {
		size += int64(len(v.Nulls))
	}
	return size
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// FetchColumn implements storage.ChunkFetcher with LRU caching.
func (m *Manager) FetchColumn(t *storage.Table, group, col int) (*vector.Vector, error) {
	key := chunkKey{t, group, col}
	m.mu.Lock()
	if e, ok := m.cache[key]; ok {
		m.lru.MoveToFront(e.elem)
		m.stats.Hits++
		v := e.vec
		m.mu.Unlock()
		return v, nil
	}
	m.mu.Unlock()

	// Load outside the lock; a racing duplicate load is harmless.
	v, raw, err := m.disk.ReadColumn(t, group, col)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	m.stats.IOBytes += raw
	m.stats.IOChunks++
	if _, ok := m.cache[key]; !ok {
		m.insertLocked(key, v)
	}
	m.mu.Unlock()
	return v, nil
}

// insertLocked adds an entry and evicts LRU entries over capacity.
func (m *Manager) insertLocked(key chunkKey, v *vector.Vector) {
	size := vectorBytes(v)
	e := &cacheEntry{key: key, vec: v, size: size}
	e.elem = m.lru.PushFront(e)
	m.cache[key] = e
	m.used += size
	for m.used > m.capacity && m.lru.Len() > 1 {
		back := m.lru.Back()
		if back == nil {
			break
		}
		ev := back.Value.(*cacheEntry)
		m.lru.Remove(back)
		delete(m.cache, ev.key)
		m.used -= ev.size
		m.stats.Evictions++
	}
}

// DropTable evicts every cached chunk of t and its idle cooperative-
// scan bookkeeping. The snapshot layer calls it when the last cursor
// pinning a superseded stable image closes: the image can never be
// scanned again, so keeping its decompressed chunks would only push
// live data out of the pool. Dropping is purely an eviction — a racing
// scan that still holds the table re-fetches on demand.
func (m *Manager) DropTable(t *storage.Table) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for key, e := range m.cache {
		if key.t != t {
			continue
		}
		m.lru.Remove(e.elem)
		delete(m.cache, key)
		m.used -= e.size
		m.stats.Evictions++
	}
	if at, ok := m.scans[t]; ok && len(at.scans) == 0 {
		delete(m.scans, t)
	}
}

// Contains reports whether a chunk is currently cached (test hook).
func (m *Manager) Contains(t *storage.Table, group, col int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.cache[chunkKey{t, group, col}]
	return ok
}

// CachedBytes returns the current cache occupancy.
func (m *Manager) CachedBytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.used
}

var errClosed = fmt.Errorf("bufmgr: scan already closed")
