package bufmgr

import (
	"sync"

	"vectorwise/internal/storage"
	"vectorwise/internal/vector"
)

// ScanPolicy selects how concurrent table scans share the buffer pool.
type ScanPolicy uint8

// Scan policies.
const (
	// PolicyNormal is the classic approach: each scan walks the table in
	// storage order through the shared LRU pool. Concurrent scans at
	// different offsets thrash both cache and bandwidth.
	PolicyNormal ScanPolicy = iota
	// PolicyCooperative registers the scan with the ABM: scans may
	// receive row groups out of order, cached groups are served to every
	// scan that still needs them, and loads are ordered by relevance
	// (number of waiting scans).
	PolicyCooperative
)

// abmTable is the ABM bookkeeping for one table: which registered scan
// still needs which row group.
type abmTable struct {
	mu    sync.Mutex
	scans map[*ScanHandle]struct{}
}

// ScanHandle is an active registered scan.
type ScanHandle struct {
	m      *Manager
	t      *storage.Table
	cols   []int
	policy ScanPolicy

	needs  []bool // per row group
	remain int
	nextG  int // cursor for PolicyNormal
	closed bool
}

// GroupResult is one row group delivered to a scan.
type GroupResult struct {
	// Group is the row-group index within the table.
	Group int
	// Pos is the global row position of the group's first row.
	Pos int64
	// Rows is the group's row count.
	Rows int
	// Vecs holds the requested columns, full-group length.
	Vecs []*vector.Vector
}

// StartScan registers a scan over the given columns of t.
func (m *Manager) StartScan(t *storage.Table, cols []int, policy ScanPolicy) *ScanHandle {
	h := &ScanHandle{
		m: m, t: t, cols: append([]int(nil), cols...), policy: policy,
		needs: make([]bool, t.Groups()), remain: t.Groups(),
	}
	for i := range h.needs {
		h.needs[i] = true
	}
	if policy == PolicyCooperative {
		m.mu.Lock()
		at := m.scans[t]
		if at == nil {
			at = &abmTable{scans: make(map[*ScanHandle]struct{})}
			m.scans[t] = at
		}
		m.mu.Unlock()
		at.mu.Lock()
		at.scans[h] = struct{}{}
		at.mu.Unlock()
	}
	return h
}

// Close deregisters the scan.
func (h *ScanHandle) Close() {
	if h.closed {
		return
	}
	h.closed = true
	if h.policy == PolicyCooperative {
		h.m.mu.Lock()
		at := h.m.scans[h.t]
		h.m.mu.Unlock()
		if at != nil {
			at.mu.Lock()
			delete(at.scans, h)
			at.mu.Unlock()
		}
	}
}

// NextGroup delivers the next row group under the scan's policy. The
// second result is false when the scan has consumed every group.
func (h *ScanHandle) NextGroup() (GroupResult, bool, error) {
	if h.closed {
		return GroupResult{}, false, errClosed
	}
	if h.remain == 0 {
		return GroupResult{}, false, nil
	}
	var g int
	switch h.policy {
	case PolicyNormal:
		g = h.nextG
		h.nextG++
	case PolicyCooperative:
		g = h.chooseCooperative()
	}
	h.needs[g] = false
	h.remain--
	vecs := make([]*vector.Vector, len(h.cols))
	for i, c := range h.cols {
		v, err := h.m.FetchColumn(h.t, g, c)
		if err != nil {
			return GroupResult{}, false, err
		}
		vecs[i] = v
	}
	pos := int64(0)
	for i := 0; i < g; i++ {
		pos += int64(h.t.GroupRows(i))
	}
	return GroupResult{Group: g, Pos: pos, Rows: h.t.GroupRows(g), Vecs: vecs}, true, nil
}

// chooseCooperative picks the row group to deliver next:
//
//  1. any group this scan still needs that is fully cached (cheapest —
//     pure sharing, no I/O);
//  2. otherwise the needed group wanted by the most other active scans
//     (maximum relevance: one load feeds many);
//  3. ties break toward the lowest group index.
func (h *ScanHandle) chooseCooperative() int {
	h.m.mu.Lock()
	at := h.m.scans[h.t]
	cached := make([]bool, h.t.Groups())
	for g := 0; g < h.t.Groups(); g++ {
		all := true
		for _, c := range h.cols {
			if _, ok := h.m.cache[chunkKey{h.t, g, c}]; !ok {
				all = false
				break
			}
		}
		cached[g] = all
	}
	h.m.mu.Unlock()

	for g, need := range h.needs {
		if need && cached[g] {
			return g
		}
	}

	// No cached group available: pick by relevance.
	at.mu.Lock()
	defer at.mu.Unlock()
	bestG, bestScore := -1, -1
	for g, need := range h.needs {
		if !need {
			continue
		}
		score := 0
		for other := range at.scans {
			if other != h && g < len(other.needs) && other.needs[g] {
				score++
			}
		}
		if score > bestScore {
			bestScore = score
			bestG = g
		}
	}
	return bestG
}
