// Package tupleengine is the tuple-at-a-time Volcano baseline the paper
// compares against: "straightforward implementations ... that transport
// just a single tuple-at-a-time through a query pipeline are bound to
// spend most execution time in interpretation overhead rather than query
// execution" (§I-A). Every operator pulls one boxed row per Next() call,
// and every scalar expression is interpreted recursively per row — the
// canonical design of classical row stores, implemented honestly (not
// deliberately pessimized): it is the per-tuple interpretation itself
// that costs.
package tupleengine

import (
	"fmt"

	"vectorwise/internal/algebra"
	"vectorwise/internal/catalog"
	"vectorwise/internal/pdt"
	"vectorwise/internal/storage"
	"vectorwise/internal/vector"
	"vectorwise/internal/vtypes"
)

// RowIter is the Volcano iterator: one row per Next.
type RowIter interface {
	Open() error
	// Next returns the next row; ok=false at end of stream.
	Next() (row vtypes.Row, ok bool, err error)
	Close() error
}

// Build compiles a plan into a row iterator tree.
func Build(n algebra.Node, cat *catalog.Catalog) (RowIter, error) {
	switch t := n.(type) {
	case *algebra.ScanNode:
		tbl, layers, err := cat.Resolve(t.Table)
		if err != nil {
			return nil, err
		}
		var it RowIter = newScanIter(tbl, layers, t.Cols, t.PartLo, t.PartHi)
		if len(t.Filters) > 0 {
			// Pushed scan filters evaluate as an ordinary selection:
			// the row-at-a-time baseline has no row groups to skip,
			// but must see the same rows as the vectorized engine.
			it = &selectIter{child: it, pred: algebra.FiltersPred(t.Filters)}
		}
		return it, nil
	case *algebra.SelectNode:
		child, err := Build(t.Input, cat)
		if err != nil {
			return nil, err
		}
		return &selectIter{child: child, pred: t.Pred}, nil
	case *algebra.ProjectNode:
		child, err := Build(t.Input, cat)
		if err != nil {
			return nil, err
		}
		return &projectIter{child: child, exprs: t.Exprs}, nil
	case *algebra.AggNode:
		child, err := Build(t.Input, cat)
		if err != nil {
			return nil, err
		}
		return &aggIter{child: child, node: t}, nil
	case *algebra.JoinNode:
		left, err := Build(t.Left, cat)
		if err != nil {
			return nil, err
		}
		right, err := Build(t.Right, cat)
		if err != nil {
			return nil, err
		}
		return &joinIter{left: left, right: right, node: t}, nil
	case *algebra.SortNode:
		child, err := Build(t.Input, cat)
		if err != nil {
			return nil, err
		}
		return &sortIter{child: child, keys: t.Keys}, nil
	case *algebra.LimitNode:
		child, err := Build(t.Input, cat)
		if err != nil {
			return nil, err
		}
		return &limitIter{child: child, n: t.N}, nil
	case *algebra.UnionAllNode:
		var children []RowIter
		for _, in := range t.Inputs {
			c, err := Build(in, cat)
			if err != nil {
				return nil, err
			}
			children = append(children, c)
		}
		return &unionIter{children: children}, nil
	default:
		return nil, fmt.Errorf("tupleengine: unsupported node %T", n)
	}
}

// Run drains a plan into rows.
func Run(n algebra.Node, cat *catalog.Catalog) ([]vtypes.Row, error) {
	it, err := Build(n, cat)
	if err != nil {
		return nil, err
	}
	if err := it.Open(); err != nil {
		return nil, err
	}
	defer it.Close()
	var out []vtypes.Row
	for {
		row, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, row)
	}
}

// scanIter reads a table row by row — boxing each value, exactly the
// per-tuple cost the paper attributes to row pipelines. (The underlying
// storage is shared with the vectorized engine; the difference under
// measurement is the execution discipline, not the data layout.)
type scanIter struct {
	tbl    *storage.Table
	layers []*pdt.PDT
	cols   []int
	lo, hi int

	src  pdt.RowSource
	vecs []*vector.Vector
	cur  int
	n    int
}

func newScanIter(tbl *storage.Table, layers []*pdt.PDT, cols []int, lo, hi int) *scanIter {
	return &scanIter{tbl: tbl, layers: layers, cols: cols, lo: lo, hi: hi}
}

// Open implements RowIter.
func (s *scanIter) Open() error {
	sc := storage.NewScanner(s.tbl, s.cols, nil, nil, 1024)
	if s.hi > 0 {
		sc.SetGroupRange(s.lo, s.hi)
	}
	var src pdt.RowSource = &scannerSource{sc: sc}
	projected := s.tbl.Schema().Project(s.cols)
	for _, layer := range s.layers {
		if layer == nil || layer.Empty() {
			continue
		}
		src = pdt.NewMergeScan(src, pdt.ProjectCols(layer, s.cols, projected), 1024)
	}
	s.src = src
	s.cur, s.n = 0, 0
	return nil
}

// scannerSource adapts storage.Scanner to pdt.PositionedSource so
// partition-restricted merges align deltas to global positions.
type scannerSource struct {
	sc  *storage.Scanner
	pos int64
}

// Next implements pdt.RowSource.
func (s *scannerSource) Next() ([]*vector.Vector, int, error) {
	vecs, pos, n, err := s.sc.Next()
	s.pos = pos
	return vecs, n, err
}

// BasePos implements pdt.PositionedSource.
func (s *scannerSource) BasePos() int64 { return s.pos }

// EndPos implements pdt.PositionedSource.
func (s *scannerSource) EndPos() int64 { return s.sc.EndPos() }

// Next implements RowIter.
func (s *scanIter) Next() (vtypes.Row, bool, error) {
	for s.cur >= s.n {
		cols, n, err := s.src.Next()
		if err != nil {
			return nil, false, err
		}
		if n == 0 {
			return nil, false, nil
		}
		s.vecs = cols
		s.cur, s.n = 0, n
	}
	row := make(vtypes.Row, len(s.vecs))
	for c, v := range s.vecs {
		row[c] = v.Get(s.cur)
	}
	s.cur++
	return row, true, nil
}

// Close implements RowIter.
func (s *scanIter) Close() error { return nil }
