package tupleengine

import (
	"fmt"
	"sort"

	"vectorwise/internal/algebra"
	"vectorwise/internal/hashtable"
	"vectorwise/internal/vtypes"
)

// selectIter filters one row at a time.
type selectIter struct {
	child RowIter
	pred  algebra.Scalar
}

func (s *selectIter) Open() error  { return s.child.Open() }
func (s *selectIter) Close() error { return s.child.Close() }

func (s *selectIter) Next() (vtypes.Row, bool, error) {
	for {
		row, ok, err := s.child.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		v, err := EvalRow(s.pred, row)
		if err != nil {
			return nil, false, err
		}
		if !v.Null && v.B {
			return row, true, nil
		}
	}
}

// projectIter computes expressions per row.
type projectIter struct {
	child RowIter
	exprs []algebra.Scalar
}

func (p *projectIter) Open() error  { return p.child.Open() }
func (p *projectIter) Close() error { return p.child.Close() }

func (p *projectIter) Next() (vtypes.Row, bool, error) {
	row, ok, err := p.child.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	out := make(vtypes.Row, len(p.exprs))
	for i, e := range p.exprs {
		v, err := EvalRow(e, row)
		if err != nil {
			return nil, false, err
		}
		out[i] = v
	}
	return out, true, nil
}

// aggIter hashes groups row by row through the shared open-addressing
// table (scalar Put per row; the vectorized engine batches the same
// structure).
type aggIter struct {
	child RowIter
	node  *algebra.AggNode

	ht    *hashtable.Table
	order []*aggGroup
	pos   int
	built bool
}

type aggGroup struct {
	key  vtypes.Row
	sums []float64
	is   []int64
	cnts []int64
	mins []vtypes.Value
	maxs []vtypes.Value
}

func (a *aggIter) Open() error {
	a.ht = hashtable.New(0)
	a.order = nil
	a.pos = 0
	a.built = false
	return a.child.Open()
}
func (a *aggIter) Close() error { return a.child.Close() }

func (a *aggIter) consume() error {
	n := a.node
	for {
		row, ok, err := a.child.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		key := make(vtypes.Row, len(n.GroupBy))
		for i, g := range n.GroupBy {
			v, err := EvalRow(g, row)
			if err != nil {
				return err
			}
			key[i] = v
		}
		h := key.Hash()
		gid, _ := a.ht.Put(h, func(v uint32) bool {
			cand := a.order[v]
			for i := range key {
				if !cand.key[i].Equal(key[i]) {
					return false
				}
			}
			return true
		}, func() uint32 {
			a.order = append(a.order, &aggGroup{
				key:  key,
				sums: make([]float64, len(n.Aggs)),
				is:   make([]int64, len(n.Aggs)),
				cnts: make([]int64, len(n.Aggs)),
				mins: make([]vtypes.Value, len(n.Aggs)),
				maxs: make([]vtypes.Value, len(n.Aggs)),
			})
			return uint32(len(a.order) - 1)
		})
		grp := a.order[gid]
		for i, ag := range n.Aggs {
			var v vtypes.Value
			if ag.Arg != nil {
				v, err = EvalRow(ag.Arg, row)
				if err != nil {
					return err
				}
			}
			switch ag.Fn {
			case algebra.AggCountStar, algebra.AggCount:
				grp.cnts[i]++
			case algebra.AggSum:
				if v.Kind.StorageClass() == vtypes.ClassF64 {
					grp.sums[i] += v.F64
				} else {
					grp.is[i] += v.I64
				}
			case algebra.AggAvg:
				grp.sums[i] += v.AsFloat()
				grp.cnts[i]++
			case algebra.AggMin:
				if grp.cnts[i] == 0 || v.Compare(grp.mins[i]) < 0 {
					grp.mins[i] = v
				}
				grp.cnts[i]++
			case algebra.AggMax:
				if grp.cnts[i] == 0 || v.Compare(grp.maxs[i]) > 0 {
					grp.maxs[i] = v
				}
				grp.cnts[i]++
			}
		}
	}
	// Ungrouped aggregation over empty input yields one zero row, like
	// the vectorized engine — unless this is a parallel partial, whose
	// empty partitions must contribute nothing to the recombination.
	if len(n.GroupBy) == 0 && len(a.order) == 0 && !n.Partial {
		a.order = append(a.order, &aggGroup{
			key:  vtypes.Row{},
			sums: make([]float64, len(n.Aggs)),
			is:   make([]int64, len(n.Aggs)),
			cnts: make([]int64, len(n.Aggs)),
			mins: make([]vtypes.Value, len(n.Aggs)),
			maxs: make([]vtypes.Value, len(n.Aggs)),
		})
	}
	return nil
}

func (a *aggIter) Next() (vtypes.Row, bool, error) {
	if !a.built {
		if err := a.consume(); err != nil {
			return nil, false, err
		}
		a.built = true
	}
	if a.pos >= len(a.order) {
		return nil, false, nil
	}
	grp := a.order[a.pos]
	a.pos++
	n := a.node
	out := make(vtypes.Row, 0, len(n.GroupBy)+len(n.Aggs))
	out = append(out, grp.key...)
	for i, ag := range n.Aggs {
		switch ag.Fn {
		case algebra.AggCountStar, algebra.AggCount:
			out = append(out, vtypes.I64Value(grp.cnts[i]))
		case algebra.AggSum:
			if ag.Arg.Kind().StorageClass() == vtypes.ClassF64 {
				out = append(out, vtypes.F64Value(grp.sums[i]))
			} else {
				out = append(out, vtypes.I64Value(grp.is[i]))
			}
		case algebra.AggAvg:
			if grp.cnts[i] == 0 {
				out = append(out, vtypes.F64Value(0))
			} else {
				out = append(out, vtypes.F64Value(grp.sums[i]/float64(grp.cnts[i])))
			}
		case algebra.AggMin:
			out = append(out, grp.mins[i])
		case algebra.AggMax:
			out = append(out, grp.maxs[i])
		}
	}
	return out, true, nil
}

// joinIter hash-joins with a materialized build side. The shared
// open-addressing table maps key hashes to distinct-key ids; rows
// sharing a key collect under that id in build order.
type joinIter struct {
	left, right RowIter
	node        *algebra.JoinNode

	ht    *hashtable.Table
	keys  []vtypes.Row   // per distinct key: representative key row
	rows  [][]vtypes.Row // per distinct key: build rows in arrival order
	built bool

	// current probe fan-out
	pending []vtypes.Row
}

func (j *joinIter) Open() error {
	if err := j.left.Open(); err != nil {
		return err
	}
	return j.right.Open()
}

func (j *joinIter) Close() error {
	if err := j.left.Close(); err != nil {
		j.right.Close()
		return err
	}
	return j.right.Close()
}

func (j *joinIter) build() error {
	j.ht = hashtable.New(0)
	j.keys, j.rows = nil, nil
	for {
		row, ok, err := j.right.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		key, err := evalKeys(j.node.RightKeys, row)
		if err != nil {
			return err
		}
		kid, _ := j.ht.Put(key.Hash(), func(v uint32) bool {
			return rowsEqual(j.keys[v], key)
		}, func() uint32 {
			j.keys = append(j.keys, key)
			j.rows = append(j.rows, nil)
			return uint32(len(j.keys) - 1)
		})
		j.rows[kid] = append(j.rows[kid], row)
	}
}

// rowsEqual compares two key rows element-wise.
func rowsEqual(a, b vtypes.Row) bool {
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

func evalKeys(keys []algebra.Scalar, row vtypes.Row) (vtypes.Row, error) {
	out := make(vtypes.Row, len(keys))
	for i, k := range keys {
		v, err := EvalRow(k, row)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func (j *joinIter) Next() (vtypes.Row, bool, error) {
	if !j.built {
		if err := j.build(); err != nil {
			return nil, false, err
		}
		j.built = true
	}
	for {
		if len(j.pending) > 0 {
			out := j.pending[0]
			j.pending = j.pending[1:]
			return out, true, nil
		}
		row, ok, err := j.left.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		key, err := evalKeys(j.node.LeftKeys, row)
		if err != nil {
			return nil, false, err
		}
		kid, matched := j.ht.Get(key.Hash(), func(v uint32) bool {
			return rowsEqual(j.keys[v], key)
		})
		if matched {
			switch j.node.Type {
			case algebra.JoinInner, algebra.JoinLeftOuter:
				for _, cand := range j.rows[kid] {
					j.pending = append(j.pending, append(row.Clone(), cand...))
				}
			case algebra.JoinLeftSemi:
				j.pending = append(j.pending, row)
			case algebra.JoinLeftAnti:
			}
		}
		if !matched {
			switch j.node.Type {
			case algebra.JoinLeftAnti:
				j.pending = append(j.pending, row)
			case algebra.JoinLeftOuter:
				out := row.Clone()
				for _, c := range j.node.Right.Schema().Cols {
					out = append(out, vtypes.NullValue(c.Kind))
				}
				j.pending = append(j.pending, out)
			}
		}
	}
}

// sortIter materializes and sorts.
type sortIter struct {
	child RowIter
	keys  []algebra.SortKey
	rows  []vtypes.Row
	pos   int
	built bool
}

func (s *sortIter) Open() error  { s.rows, s.pos, s.built = nil, 0, false; return s.child.Open() }
func (s *sortIter) Close() error { return s.child.Close() }

func (s *sortIter) Next() (vtypes.Row, bool, error) {
	if !s.built {
		type keyed struct {
			row  vtypes.Row
			keys vtypes.Row
		}
		var all []keyed
		for {
			row, ok, err := s.child.Next()
			if err != nil {
				return nil, false, err
			}
			if !ok {
				break
			}
			ks := make(vtypes.Row, len(s.keys))
			for i, k := range s.keys {
				v, err := EvalRow(k.Expr, row)
				if err != nil {
					return nil, false, err
				}
				ks[i] = v
			}
			all = append(all, keyed{row: row, keys: ks})
		}
		sort.SliceStable(all, func(a, b int) bool {
			for i, k := range s.keys {
				cmp := all[a].keys[i].Compare(all[b].keys[i])
				if cmp == 0 {
					continue
				}
				if k.Desc {
					return cmp > 0
				}
				return cmp < 0
			}
			return false
		})
		s.rows = make([]vtypes.Row, len(all))
		for i, k := range all {
			s.rows[i] = k.row
		}
		s.built = true
	}
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	row := s.rows[s.pos]
	s.pos++
	return row, true, nil
}

// limitIter caps the stream.
type limitIter struct {
	child RowIter
	n     int64
	seen  int64
}

func (l *limitIter) Open() error  { l.seen = 0; return l.child.Open() }
func (l *limitIter) Close() error { return l.child.Close() }

func (l *limitIter) Next() (vtypes.Row, bool, error) {
	if l.seen >= l.n {
		return nil, false, nil
	}
	row, ok, err := l.child.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	l.seen++
	return row, true, nil
}

// unionIter concatenates children (the serial rendering of an exchange).
type unionIter struct {
	children []RowIter
	cur      int
}

func (u *unionIter) Open() error {
	u.cur = 0
	for _, c := range u.children {
		if err := c.Open(); err != nil {
			return err
		}
	}
	return nil
}

func (u *unionIter) Close() error {
	var first error
	for _, c := range u.children {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (u *unionIter) Next() (vtypes.Row, bool, error) {
	for u.cur < len(u.children) {
		row, ok, err := u.children[u.cur].Next()
		if err != nil {
			return nil, false, err
		}
		if ok {
			return row, true, nil
		}
		u.cur++
	}
	return nil, false, nil
}

// EvalRow interprets a scalar over one boxed row — the per-tuple
// recursive interpretation whose overhead the paper quantifies.
func EvalRow(s algebra.Scalar, row vtypes.Row) (vtypes.Value, error) {
	switch t := s.(type) {
	case *algebra.ColRef:
		return row[t.Idx], nil
	case *algebra.Lit:
		return t.Val, nil
	case *algebra.Arith:
		l, err := EvalRow(t.L, row)
		if err != nil {
			return vtypes.Value{}, err
		}
		r, err := EvalRow(t.R, row)
		if err != nil {
			return vtypes.Value{}, err
		}
		if l.Null || r.Null {
			return vtypes.NullValue(t.K), nil
		}
		if t.K.StorageClass() == vtypes.ClassF64 {
			lf, rf := l.AsFloat(), r.AsFloat()
			switch t.Op {
			case algebra.OpAdd:
				return vtypes.F64Value(lf + rf), nil
			case algebra.OpSub:
				return vtypes.F64Value(lf - rf), nil
			case algebra.OpMul:
				return vtypes.F64Value(lf * rf), nil
			default:
				if rf == 0 {
					return vtypes.F64Value(0), nil
				}
				return vtypes.F64Value(lf / rf), nil
			}
		}
		li, ri := l.AsInt(), r.AsInt()
		var v int64
		switch t.Op {
		case algebra.OpAdd:
			v = li + ri
		case algebra.OpSub:
			v = li - ri
		case algebra.OpMul:
			v = li * ri
		default:
			if ri == 0 {
				v = 0
			} else {
				v = li / ri
			}
		}
		return vtypes.Value{Kind: t.K, I64: v}, nil
	case *algebra.Cast:
		v, err := EvalRow(t.In, row)
		if err != nil || v.Null {
			return vtypes.Value{Kind: t.To, Null: v.Null}, err
		}
		switch t.To.StorageClass() {
		case vtypes.ClassF64:
			return vtypes.F64Value(v.AsFloat()), nil
		case vtypes.ClassI64:
			return vtypes.Value{Kind: t.To, I64: v.AsInt()}, nil
		}
		return v, nil
	case *algebra.Cmp:
		l, err := EvalRow(t.L, row)
		if err != nil {
			return vtypes.Value{}, err
		}
		r, err := EvalRow(t.R, row)
		if err != nil {
			return vtypes.Value{}, err
		}
		if l.Null || r.Null {
			return vtypes.BoolValue(false), nil // SQL: comparison with NULL is not true
		}
		if l.Kind.StorageClass() != r.Kind.StorageClass() && l.Kind.Numeric() && r.Kind.Numeric() {
			l, r = vtypes.F64Value(l.AsFloat()), vtypes.F64Value(r.AsFloat())
		}
		cmp := l.Compare(r)
		var b bool
		switch t.Op {
		case algebra.CmpEq:
			b = cmp == 0
		case algebra.CmpNe:
			b = cmp != 0
		case algebra.CmpLt:
			b = cmp < 0
		case algebra.CmpLe:
			b = cmp <= 0
		case algebra.CmpGt:
			b = cmp > 0
		default:
			b = cmp >= 0
		}
		return vtypes.BoolValue(b), nil
	case *algebra.Between:
		v, err := EvalRow(t.In, row)
		if err != nil {
			return vtypes.Value{}, err
		}
		if v.Null {
			return vtypes.BoolValue(false), nil
		}
		return vtypes.BoolValue(v.Compare(t.Lo) >= 0 && v.Compare(t.Hi) <= 0), nil
	case *algebra.Like:
		v, err := EvalRow(t.In, row)
		if err != nil {
			return vtypes.Value{}, err
		}
		m := matchLike(v.Str, t.Pattern)
		if t.Negate {
			m = !m
		}
		return vtypes.BoolValue(!v.Null && m), nil
	case *algebra.In:
		v, err := EvalRow(t.In, row)
		if err != nil {
			return vtypes.Value{}, err
		}
		if v.Null {
			return vtypes.BoolValue(false), nil
		}
		for _, c := range t.List {
			if v.Equal(c) {
				return vtypes.BoolValue(true), nil
			}
		}
		return vtypes.BoolValue(false), nil
	case *algebra.And:
		for _, p := range t.Preds {
			v, err := EvalRow(p, row)
			if err != nil {
				return vtypes.Value{}, err
			}
			if v.Null || !v.B {
				return vtypes.BoolValue(false), nil
			}
		}
		return vtypes.BoolValue(true), nil
	case *algebra.Or:
		for _, p := range t.Preds {
			v, err := EvalRow(p, row)
			if err != nil {
				return vtypes.Value{}, err
			}
			if !v.Null && v.B {
				return vtypes.BoolValue(true), nil
			}
		}
		return vtypes.BoolValue(false), nil
	case *algebra.Not:
		v, err := EvalRow(t.In, row)
		if err != nil {
			return vtypes.Value{}, err
		}
		return vtypes.BoolValue(!v.Null && !v.B), nil
	case *algebra.Case:
		c, err := EvalRow(t.Cond, row)
		if err != nil {
			return vtypes.Value{}, err
		}
		var v vtypes.Value
		if !c.Null && c.B {
			v, err = EvalRow(t.Then, row)
		} else {
			v, err = EvalRow(t.Else, row)
		}
		if err != nil {
			return vtypes.Value{}, err
		}
		if t.K.StorageClass() == vtypes.ClassF64 && v.Kind.StorageClass() == vtypes.ClassI64 && !v.Null {
			v = vtypes.F64Value(float64(v.I64))
		}
		return v, nil
	case *algebra.YearOf:
		v, err := EvalRow(t.In, row)
		if err != nil || v.Null {
			return vtypes.Value{Kind: vtypes.KindI64, Null: v.Null}, err
		}
		return vtypes.I64Value(vtypes.Year(v.I64)), nil
	case *algebra.IsNull:
		v, err := EvalRow(t.In, row)
		if err != nil {
			return vtypes.Value{}, err
		}
		return vtypes.BoolValue(v.Null != t.Negate), nil
	default:
		return vtypes.Value{}, fmt.Errorf("tupleengine: unsupported scalar %T", s)
	}
}

// matchLike is a per-row LIKE interpreter (no pattern precompilation —
// the interpretation overhead is the point of this engine).
func matchLike(s, pattern string) bool {
	var si, pi int
	star, match := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pattern) && (pattern[pi] == '_' || pattern[pi] == s[si]):
			si++
			pi++
		case pi < len(pattern) && pattern[pi] == '%':
			star = pi
			match = si
			pi++
		case star != -1:
			pi = star + 1
			match++
			si = match
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '%' {
		pi++
	}
	return pi == len(pattern)
}
