package tupleengine

import (
	"testing"

	"vectorwise/internal/algebra"
	"vectorwise/internal/vtypes"
)

func row(vs ...vtypes.Value) vtypes.Row { return vtypes.Row(vs) }

func c(i int, k vtypes.Kind) algebra.Scalar { return &algebra.ColRef{Idx: i, K: k} }
func li(v int64) algebra.Scalar             { return &algebra.Lit{Val: vtypes.I64Value(v)} }

func evalOK(t *testing.T, s algebra.Scalar, r vtypes.Row) vtypes.Value {
	t.Helper()
	v, err := EvalRow(s, r)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestEvalRowArithmetic(t *testing.T) {
	r := row(vtypes.I64Value(10), vtypes.F64Value(2.5))
	add, _ := algebra.NewArith(algebra.OpAdd, c(0, vtypes.KindI64), li(5))
	if v := evalOK(t, add, r); v.I64 != 15 {
		t.Fatalf("add: %v", v)
	}
	mul, _ := algebra.NewArith(algebra.OpMul, c(0, vtypes.KindI64), c(1, vtypes.KindF64))
	if v := evalOK(t, mul, r); v.F64 != 25 {
		t.Fatalf("widen mul: %v", v)
	}
	div, _ := algebra.NewArith(algebra.OpDiv, c(0, vtypes.KindI64), li(0))
	if v := evalOK(t, div, r); v.I64 != 0 {
		t.Fatal("div by zero must be total")
	}
	// NULL propagates through arithmetic.
	rn := row(vtypes.NullValue(vtypes.KindI64), vtypes.F64Value(1))
	if v := evalOK(t, add, rn); !v.Null {
		t.Fatal("NULL must propagate")
	}
}

func TestEvalRowPredicates(t *testing.T) {
	r := row(vtypes.I64Value(7), vtypes.StrValue("promo box"))
	cases := []struct {
		s    algebra.Scalar
		want bool
	}{
		{&algebra.Cmp{Op: algebra.CmpGt, L: c(0, vtypes.KindI64), R: li(5)}, true},
		{&algebra.Cmp{Op: algebra.CmpEq, L: c(0, vtypes.KindI64), R: li(5)}, false},
		{&algebra.Between{In: c(0, vtypes.KindI64), Lo: vtypes.I64Value(5), Hi: vtypes.I64Value(9)}, true},
		{&algebra.In{In: c(0, vtypes.KindI64), List: []vtypes.Value{vtypes.I64Value(1), vtypes.I64Value(7)}}, true},
		{&algebra.Like{In: c(1, vtypes.KindStr), Pattern: "promo%"}, true},
		{&algebra.Like{In: c(1, vtypes.KindStr), Pattern: "promo%", Negate: true}, false},
		{&algebra.Not{In: &algebra.Cmp{Op: algebra.CmpGt, L: c(0, vtypes.KindI64), R: li(5)}}, false},
		{&algebra.And{Preds: []algebra.Scalar{
			&algebra.Cmp{Op: algebra.CmpGt, L: c(0, vtypes.KindI64), R: li(5)},
			&algebra.Cmp{Op: algebra.CmpLt, L: c(0, vtypes.KindI64), R: li(9)},
		}}, true},
		{&algebra.Or{Preds: []algebra.Scalar{
			&algebra.Cmp{Op: algebra.CmpGt, L: c(0, vtypes.KindI64), R: li(99)},
			&algebra.Cmp{Op: algebra.CmpLt, L: c(0, vtypes.KindI64), R: li(9)},
		}}, true},
		{&algebra.IsNull{In: c(0, vtypes.KindI64)}, false},
		{&algebra.IsNull{In: c(0, vtypes.KindI64), Negate: true}, true},
	}
	for i, tc := range cases {
		if v := evalOK(t, tc.s, r); v.B != tc.want {
			t.Errorf("case %d (%s): got %v", i, tc.s, v)
		}
	}
	// SQL three-valued logic: NULL comparisons are not true.
	rn := row(vtypes.NullValue(vtypes.KindI64), vtypes.StrValue(""))
	cmp := &algebra.Cmp{Op: algebra.CmpEq, L: c(0, vtypes.KindI64), R: li(0)}
	if v := evalOK(t, cmp, rn); v.B {
		t.Fatal("NULL = 0 must not be true")
	}
}

func TestEvalRowCaseYearCast(t *testing.T) {
	r := row(vtypes.DateValue(vtypes.MustParseDate("1997-05-20")), vtypes.F64Value(3.5))
	y := &algebra.YearOf{In: c(0, vtypes.KindDate)}
	if v := evalOK(t, y, r); v.I64 != 1997 {
		t.Fatalf("year: %v", v)
	}
	cs, _ := algebra.NewCase(
		&algebra.Cmp{Op: algebra.CmpGt, L: c(1, vtypes.KindF64), R: &algebra.Lit{Val: vtypes.F64Value(3)}},
		c(1, vtypes.KindF64),
		&algebra.Lit{Val: vtypes.F64Value(0)})
	if v := evalOK(t, cs, r); v.F64 != 3.5 {
		t.Fatalf("case: %v", v)
	}
	cast := &algebra.Cast{In: c(1, vtypes.KindF64), To: vtypes.KindI64}
	if v := evalOK(t, cast, r); v.I64 != 3 {
		t.Fatalf("cast: %v", v)
	}
}
