// Package tpchdb loads the TPC-H substrate into a vectorwise.DB through
// the public ingest surface only: CREATE TABLE DDL via DB.Exec and
// columnar bulk loads via DB.LoadBatch. The benchmark harness
// (cmd/vwbench) and the examples build their databases with it, so every
// measured number reflects the path a user can actually reach — no
// internal catalog surgery.
package tpchdb

import (
	"fmt"
	"time"

	vectorwise "vectorwise"
	"vectorwise/internal/storage"
	"vectorwise/internal/tpch"
	"vectorwise/internal/vtypes"
)

// LoadStats describes one completed load.
type LoadStats struct {
	// Rows is the total row count across all eight tables.
	Rows int64
	// Elapsed covers generation plus ingest.
	Elapsed time.Duration
}

// Load creates the eight TPC-H tables in db and bulk-loads them at
// scale factor sf. Tables must not already exist.
func Load(db *vectorwise.DB, sf float64) (LoadStats, error) {
	start := time.Now()
	cat, err := tpch.Generate(sf, 0)
	if err != nil {
		return LoadStats{}, err
	}
	for _, ddl := range tpch.DDL() {
		if _, err := db.Exec(ddl); err != nil {
			return LoadStats{}, fmt.Errorf("tpchdb: %w", err)
		}
	}
	var total int64
	for _, name := range cat.Names() {
		tbl, _, err := cat.Resolve(name)
		if err != nil {
			return LoadStats{}, err
		}
		cols, nulls, err := tableColumns(tbl)
		if err != nil {
			return LoadStats{}, err
		}
		n, err := db.LoadBatch(name, cols, nulls)
		if err != nil {
			return LoadStats{}, fmt.Errorf("tpchdb: load %s: %w", name, err)
		}
		total += n
	}
	return LoadStats{Rows: total, Elapsed: time.Since(start)}, nil
}

// tableColumns extracts a generated table's raw column slices for the
// DB.LoadBatch fast path.
func tableColumns(t *storage.Table) ([]any, [][]bool, error) {
	schema := t.Schema()
	cols := make([]any, schema.Len())
	var nulls [][]bool
	for c := 0; c < schema.Len(); c++ {
		v, err := t.ReadAllColumn(c)
		if err != nil {
			return nil, nil, err
		}
		switch schema.Col(c).Kind.StorageClass() {
		case vtypes.ClassI64:
			cols[c] = v.I64
		case vtypes.ClassF64:
			cols[c] = v.F64
		case vtypes.ClassStr:
			cols[c] = v.Str
		case vtypes.ClassBool:
			cols[c] = v.B
		default:
			return nil, nil, fmt.Errorf("tpchdb: column %q has unsupported kind %v", schema.Col(c).Name, schema.Col(c).Kind)
		}
		if v.Nulls != nil {
			if nulls == nil {
				nulls = make([][]bool, schema.Len())
			}
			nulls[c] = v.Nulls
		}
	}
	return cols, nulls, nil
}
