package tpchdb

// CSV export of the generated TPC-H tables, for loaders that ingest
// over a wire instead of in-process — the cluster coordinator's
// /v1/load fan-out in particular. Formatting round-trips exactly
// through DB.CopyFrom's field parsing: integers in decimal, doubles via
// strconv's shortest round-trip form, dates as YYYY-MM-DD.

import (
	"bytes"
	"encoding/csv"
	"fmt"
	"strconv"

	"vectorwise/internal/storage"
	"vectorwise/internal/tpch"
	"vectorwise/internal/vector"
	"vectorwise/internal/vtypes"
)

// GenerateCSV generates the eight TPC-H tables at scale factor sf and
// returns each table's rows as CSV bytes (no header; NULLs as empty
// fields).
func GenerateCSV(sf float64) (map[string][]byte, error) {
	cat, err := tpch.Generate(sf, 0)
	if err != nil {
		return nil, err
	}
	out := make(map[string][]byte)
	for _, name := range cat.Names() {
		tbl, _, err := cat.Resolve(name)
		if err != nil {
			return nil, err
		}
		data, err := tableCSV(tbl)
		if err != nil {
			return nil, fmt.Errorf("tpchdb: csv %s: %w", name, err)
		}
		out[name] = data
	}
	return out, nil
}

func tableCSV(t *storage.Table) ([]byte, error) {
	schema := t.Schema()
	cols := make([]*vector.Vector, schema.Len())
	for c := range cols {
		v, err := t.ReadAllColumn(c)
		if err != nil {
			return nil, err
		}
		cols[c] = v
	}
	var rows int
	if len(cols) > 0 {
		rows = colLen(cols[0], schema.Col(0).Kind)
	}
	var buf bytes.Buffer
	w := csv.NewWriter(&buf)
	rec := make([]string, schema.Len())
	for i := 0; i < rows; i++ {
		for c := range cols {
			rec[c] = formatField(cols[c], schema.Col(c).Kind, i)
		}
		if err := w.Write(rec); err != nil {
			return nil, err
		}
	}
	w.Flush()
	return buf.Bytes(), w.Error()
}

func colLen(v *vector.Vector, k vtypes.Kind) int {
	switch k.StorageClass() {
	case vtypes.ClassI64:
		return len(v.I64)
	case vtypes.ClassF64:
		return len(v.F64)
	case vtypes.ClassStr:
		return len(v.Str)
	case vtypes.ClassBool:
		return len(v.B)
	}
	return 0
}

func formatField(v *vector.Vector, k vtypes.Kind, i int) string {
	if v.Nulls != nil && v.Nulls[i] {
		return "" // CopyFrom's default NULL token for nullable columns
	}
	switch k {
	case vtypes.KindI64:
		return strconv.FormatInt(v.I64[i], 10)
	case vtypes.KindF64:
		return strconv.FormatFloat(v.F64[i], 'g', -1, 64)
	case vtypes.KindDate:
		return vtypes.FormatDate(v.I64[i])
	case vtypes.KindBool:
		if v.B[i] {
			return "true"
		}
		return "false"
	default:
		return v.Str[i]
	}
}
