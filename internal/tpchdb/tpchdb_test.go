package tpchdb

import (
	"context"
	"testing"

	vectorwise "vectorwise"
	"vectorwise/internal/testutil"
	"vectorwise/internal/tpch"
	"vectorwise/internal/vtypes"
)

// The DB-level differential: a database populated purely through the
// public surface (DDL + LoadBatch) must answer every suite query from
// SQL text with the same rows the hand-built algebra plan produces on
// the DB's own catalog — at parallelism 1 and N, warm and cold.
func TestSQLSuiteThroughDB(t *testing.T) {
	db := vectorwise.OpenMemory()
	db.SetParallelism(1)
	st, err := Load(db, 0.005)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rows < 10000 {
		t.Fatalf("suspiciously small load: %d rows", st.Rows)
	}
	for _, par := range []int{1, 4} {
		db.SetParallelism(par)
		for _, sq := range tpch.SQLSuite() {
			// Hand-built side runs with the DB's own buffer manager so
			// both sides of the differential share one scan pipeline.
			handRows, _, err := tpch.RunQuery(db.Catalog(), findQuery(t, sq.Name),
				tpch.RunOptions{Engine: tpch.EngineVectorized, Fetch: db.BufferManager()})
			if err != nil {
				t.Fatalf("%s hand-built: %v", sq.Name, err)
			}
			for rep := 0; rep < 2; rep++ { // cold then plan-cache warm
				res, err := db.Query(sq.SQL)
				if err != nil {
					t.Fatalf("%s par=%d: %v", sq.Name, par, err)
				}
				testutil.MatchRows(t, sq.Name, handRows, res.Rows)
			}
			// The streaming cursor is the same execution path Query
			// collects from — pin it row-identical too.
			cursorRows, err := collectViaCursor(db, sq.SQL)
			if err != nil {
				t.Fatalf("%s cursor par=%d: %v", sq.Name, par, err)
			}
			testutil.MatchRows(t, sq.Name+" (cursor)", handRows, cursorRows)
		}
	}
	// The front end was actually amortized: repeated statements hit the
	// plan cache.
	if s := db.PlanCacheStats(); s.Hits == 0 {
		t.Fatalf("plan cache never hit: %+v", s)
	}
}

// The data-skipping differential: with live PDT deltas on the fact
// tables, every suite query must return row-identical results with
// min/max pruning forced on vs. off — the delta-aware prune path may
// only skip groups whose positions no delta touches, so the positional
// merge must survive the gaps. Runs at parallelism 1 and N so the
// partition-restricted merge path is covered too.
func TestSQLSuitePruningWithDeltas(t *testing.T) {
	db := vectorwise.OpenMemory()
	db.SetParallelism(1)
	if _, err := Load(db, 0.005); err != nil {
		t.Fatal(err)
	}
	// Deltas across the fact tables: modify, delete, and insert so the
	// master PDTs carry every entry type during the sweep.
	for _, stmt := range []string{
		`UPDATE lineitem SET l_quantity = 99 WHERE l_orderkey = 1`,
		`DELETE FROM lineitem WHERE l_orderkey = 7`,
		`UPDATE orders SET o_shippriority = 1 WHERE o_orderkey = 32`,
		`INSERT INTO orders VALUES (999999, 1, 'F', 1.0, DATE '1995-06-01', '1-URGENT', 'clerk', 7, 'delta row')`,
	} {
		if _, err := db.Exec(stmt); err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
	}
	for _, par := range []int{1, 4} {
		db.SetParallelism(par)
		for _, sq := range tpch.SQLSuite() {
			db.SetDataSkipping(true)
			on, err := db.Query(sq.SQL)
			if err != nil {
				t.Fatalf("%s par=%d: %v", sq.Name, par, err)
			}
			db.SetDataSkipping(false)
			off, err := db.Query(sq.SQL)
			if err != nil {
				t.Fatalf("%s par=%d (noprune): %v", sq.Name, par, err)
			}
			testutil.MatchRows(t, sq.Name+" prune-on-vs-off", off.Rows, on.Rows)
		}
	}
}

// collectViaCursor drains a QueryContext cursor batch-at-a-time into
// boxed rows for comparison.
func collectViaCursor(db *vectorwise.DB, sql string) ([]vtypes.Row, error) {
	rows, err := db.QueryContext(context.Background(), sql)
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	var out []vtypes.Row
	for {
		b, err := rows.NextBatch()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return out, nil
		}
		for i := 0; i < b.N; i++ {
			out = append(out, b.Row(i))
		}
	}
}

func findQuery(t *testing.T, name string) tpch.Query {
	t.Helper()
	for _, q := range tpch.Suite() {
		if q.Name == name {
			return q
		}
	}
	t.Fatalf("unknown query %s", name)
	return tpch.Query{}
}
