package tpchdb

import (
	"context"
	"testing"

	vectorwise "vectorwise"
	"vectorwise/internal/testutil"
	"vectorwise/internal/tpch"
	"vectorwise/internal/vtypes"
)

// The DB-level differential: a database populated purely through the
// public surface (DDL + LoadBatch) must answer every suite query from
// SQL text with the same rows the hand-built algebra plan produces on
// the DB's own catalog — at parallelism 1 and N, warm and cold.
func TestSQLSuiteThroughDB(t *testing.T) {
	db := vectorwise.OpenMemory()
	db.SetParallelism(1)
	st, err := Load(db, 0.005)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rows < 10000 {
		t.Fatalf("suspiciously small load: %d rows", st.Rows)
	}
	for _, par := range []int{1, 4} {
		db.SetParallelism(par)
		for _, sq := range tpch.SQLSuite() {
			handRows, _, err := tpch.RunQuery(db.Catalog(), findQuery(t, sq.Name), tpch.RunOptions{Engine: tpch.EngineVectorized})
			if err != nil {
				t.Fatalf("%s hand-built: %v", sq.Name, err)
			}
			for rep := 0; rep < 2; rep++ { // cold then plan-cache warm
				res, err := db.Query(sq.SQL)
				if err != nil {
					t.Fatalf("%s par=%d: %v", sq.Name, par, err)
				}
				testutil.MatchRows(t, sq.Name, handRows, res.Rows)
			}
			// The streaming cursor is the same execution path Query
			// collects from — pin it row-identical too.
			cursorRows, err := collectViaCursor(db, sq.SQL)
			if err != nil {
				t.Fatalf("%s cursor par=%d: %v", sq.Name, par, err)
			}
			testutil.MatchRows(t, sq.Name+" (cursor)", handRows, cursorRows)
		}
	}
	// The front end was actually amortized: repeated statements hit the
	// plan cache.
	if s := db.PlanCacheStats(); s.Hits == 0 {
		t.Fatalf("plan cache never hit: %+v", s)
	}
}

// collectViaCursor drains a QueryContext cursor batch-at-a-time into
// boxed rows for comparison.
func collectViaCursor(db *vectorwise.DB, sql string) ([]vtypes.Row, error) {
	rows, err := db.QueryContext(context.Background(), sql)
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	var out []vtypes.Row
	for {
		b, err := rows.NextBatch()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return out, nil
		}
		for i := 0; i < b.N; i++ {
			out = append(out, b.Row(i))
		}
	}
}

func findQuery(t *testing.T, name string) tpch.Query {
	t.Helper()
	for _, q := range tpch.Suite() {
		if q.Name == name {
			return q
		}
	}
	t.Fatalf("unknown query %s", name)
	return tpch.Query{}
}
