package tpchdb

import (
	"context"
	"fmt"
	"testing"
	"time"

	vectorwise "vectorwise"
	"vectorwise/internal/testutil"
	"vectorwise/internal/tpch"
	"vectorwise/internal/vtypes"
)

// The DB-level differential: a database populated purely through the
// public surface (DDL + LoadBatch) must answer every suite query from
// SQL text with the same rows the hand-built algebra plan produces on
// the DB's own catalog — at parallelism 1 and N, warm and cold.
func TestSQLSuiteThroughDB(t *testing.T) {
	db := vectorwise.OpenMemory()
	db.SetParallelism(1)
	st, err := Load(db, 0.005)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rows < 10000 {
		t.Fatalf("suspiciously small load: %d rows", st.Rows)
	}
	for _, par := range []int{1, 4} {
		db.SetParallelism(par)
		for _, sq := range tpch.SQLSuite() {
			// Hand-built side runs with the DB's own buffer manager so
			// both sides of the differential share one scan pipeline.
			handRows, _, err := tpch.RunQuery(db.Catalog(), findQuery(t, sq.Name),
				tpch.RunOptions{Engine: tpch.EngineVectorized, Fetch: db.BufferManager()})
			if err != nil {
				t.Fatalf("%s hand-built: %v", sq.Name, err)
			}
			for rep := 0; rep < 2; rep++ { // cold then plan-cache warm
				res, err := db.Query(sq.SQL)
				if err != nil {
					t.Fatalf("%s par=%d: %v", sq.Name, par, err)
				}
				testutil.MatchRows(t, sq.Name, handRows, res.Rows)
			}
			// The streaming cursor is the same execution path Query
			// collects from — pin it row-identical too.
			cursorRows, err := collectViaCursor(db, sq.SQL)
			if err != nil {
				t.Fatalf("%s cursor par=%d: %v", sq.Name, par, err)
			}
			testutil.MatchRows(t, sq.Name+" (cursor)", handRows, cursorRows)
		}
	}
	// The front end was actually amortized: repeated statements hit the
	// plan cache.
	if s := db.PlanCacheStats(); s.Hits == 0 {
		t.Fatalf("plan cache never hit: %+v", s)
	}
}

// The data-skipping differential: with live PDT deltas on the fact
// tables, every suite query must return row-identical results with
// min/max pruning forced on vs. off — the delta-aware prune path may
// only skip groups whose positions no delta touches, so the positional
// merge must survive the gaps. Runs at parallelism 1 and N so the
// partition-restricted merge path is covered too.
func TestSQLSuitePruningWithDeltas(t *testing.T) {
	db := vectorwise.OpenMemory()
	db.SetParallelism(1)
	if _, err := Load(db, 0.005); err != nil {
		t.Fatal(err)
	}
	// Deltas across the fact tables: modify, delete, and insert so the
	// master PDTs carry every entry type during the sweep.
	for _, stmt := range []string{
		`UPDATE lineitem SET l_quantity = 99 WHERE l_orderkey = 1`,
		`DELETE FROM lineitem WHERE l_orderkey = 7`,
		`UPDATE orders SET o_shippriority = 1 WHERE o_orderkey = 32`,
		`INSERT INTO orders VALUES (999999, 1, 'F', 1.0, DATE '1995-06-01', '1-URGENT', 'clerk', 7, 'delta row')`,
	} {
		if _, err := db.Exec(stmt); err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
	}
	for _, par := range []int{1, 4} {
		db.SetParallelism(par)
		for _, sq := range tpch.SQLSuite() {
			db.SetDataSkipping(true)
			on, err := db.Query(sq.SQL)
			if err != nil {
				t.Fatalf("%s par=%d: %v", sq.Name, par, err)
			}
			db.SetDataSkipping(false)
			off, err := db.Query(sq.SQL)
			if err != nil {
				t.Fatalf("%s par=%d (noprune): %v", sq.Name, par, err)
			}
			testutil.MatchRows(t, sq.Name+" prune-on-vs-off", off.Rows, on.Rows)
		}
	}
}

// collectViaCursor drains a QueryContext cursor batch-at-a-time into
// boxed rows for comparison.
func collectViaCursor(db *vectorwise.DB, sql string) ([]vtypes.Row, error) {
	rows, err := db.QueryContext(context.Background(), sql)
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	var out []vtypes.Row
	for {
		b, err := rows.NextBatch()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return out, nil
		}
		for i := 0; i < b.N; i++ {
			out = append(out, b.Row(i))
		}
	}
}

func findQuery(t *testing.T, name string) tpch.Query {
	t.Helper()
	for _, q := range tpch.Suite() {
		if q.Name == name {
			return q
		}
	}
	t.Fatalf("unknown query %s", name)
	return tpch.Query{}
}

// The tuple-mover differential: two identically loaded DBs receive the
// same live DML batches; one runs with an aggressive background mover
// (short tick, tiny rebuild threshold, plus a forced pass per batch so
// folds and stable-image swaps are guaranteed, not just likely), the
// other never moves a tuple. Every suite query must be row-identical
// between them after every batch — a moved layer stack is a physical
// reorganization and may never change visible data — and on the moving
// DB min/max pruning on vs. off must also stay row-identical, pinning
// data skipping correct across rebuilt stable images and folded
// deltas.
func TestSQLSuiteWithActiveMover(t *testing.T) {
	moving := vectorwise.OpenMemory()
	frozen := vectorwise.OpenMemory()
	for _, db := range []*vectorwise.DB{moving, frozen} {
		// Parallelism is fixed (exchange fan-out is covered elsewhere);
		// this differential is about storage reorganization.
		db.SetParallelism(2)
		if _, err := Load(db, 0.005); err != nil {
			t.Fatal(err)
		}
	}
	defer moving.Close()
	defer frozen.Close()
	moving.SetMoverThreshold(8)
	moving.SetMoverInterval(5 * time.Millisecond)
	defer moving.SetMoverInterval(0)

	batches := [][]string{
		{
			`UPDATE lineitem SET l_quantity = 99 WHERE l_orderkey = 1`,
			`DELETE FROM lineitem WHERE l_orderkey = 7`,
			`INSERT INTO orders VALUES (999999, 1, 'F', 1.0, DATE '1995-06-01', '1-URGENT', 'clerk', 7, 'delta row')`,
		},
		{
			// Wide enough to clear the rebuild threshold (dozens of
			// lineitem rows), narrow enough that the frozen DB's
			// unfolded Mod layer stays cheap to merge-scan.
			`UPDATE lineitem SET l_quantity = l_quantity + 1 WHERE l_orderkey < 50`,
			`UPDATE orders SET o_shippriority = 1 WHERE o_orderkey = 32`,
			`DELETE FROM orders WHERE o_orderkey = 5`,
		},
		{
			`INSERT INTO lineitem VALUES (999999, 1, 1, 1, 13.0, 14000.0, 0.05, 0.02, 'N', 'O', DATE '1996-01-01', DATE '1996-01-05', DATE '1996-01-10', 'NONE', 'AIR', 'moved row')`,
			`UPDATE customer SET c_acctbal = c_acctbal + 10 WHERE c_custkey = 1`,
			`DELETE FROM lineitem WHERE l_orderkey = 3`,
		},
	}
	for bi, batch := range batches {
		for _, stmt := range batch {
			for _, db := range []*vectorwise.DB{moving, frozen} {
				if _, err := db.Exec(stmt); err != nil {
					t.Fatalf("batch %d %q: %v", bi, stmt, err)
				}
			}
		}
		// Forced pass on top of the background tick: the moving DB has
		// definitely folded (and, past the threshold, rebuilt) before
		// the comparison sweep.
		if err := moving.MoveTuples(); err != nil {
			t.Fatalf("batch %d move: %v", bi, err)
		}
		for _, sq := range tpch.SQLSuite() {
			want, err := frozen.Query(sq.SQL)
			if err != nil {
				t.Fatalf("batch %d %s frozen: %v", bi, sq.Name, err)
			}
			moving.SetDataSkipping(true)
			on, err := moving.Query(sq.SQL)
			if err != nil {
				t.Fatalf("batch %d %s moving: %v", bi, sq.Name, err)
			}
			testutil.MatchRows(t, fmt.Sprintf("batch %d %s mover-on-vs-off", bi, sq.Name), want.Rows, on.Rows)
			moving.SetDataSkipping(false)
			off, err := moving.Query(sq.SQL)
			if err != nil {
				t.Fatalf("batch %d %s moving (noprune): %v", bi, sq.Name, err)
			}
			testutil.MatchRows(t, fmt.Sprintf("batch %d %s prune-across-moved-layers", bi, sq.Name), want.Rows, off.Rows)
		}
	}
	st := moving.MoverStats()
	if st.Folds == 0 {
		t.Fatalf("mover never folded during the sweep: %+v", st)
	}
	if st.Rebuilds == 0 {
		t.Fatalf("mover never rebuilt a stable image during the sweep: %+v", st)
	}
}
