package hashtable

import (
	"math/rand"
	"testing"
)

// tableHarness pairs a Table with columnar key storage (payload i holds
// key store[i]) and a map oracle, so every batch result can be checked
// row-for-row against what a map[int64] would have said.
type tableHarness struct {
	t      *Table
	hashFn func(int64) uint64
	store  []int64          // payload -> key
	oracle map[int64]uint32 // key -> expected payload
}

func newHarness(hashFn func(int64) uint64) *tableHarness {
	return &tableHarness{t: New(0), hashFn: hashFn, oracle: map[int64]uint32{}}
}

// splitmix64 is the engine's scalar hash finisher.
func splitmix64(x int64) uint64 {
	z := uint64(x) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// findOrInsert runs one FindOrInsert batch and cross-checks it against
// the oracle (which it updates in first-occurrence order, exactly as
// the table contract promises alloc is called).
func (h *tableHarness) findOrInsert(t *testing.T, keys []int64, sel []int32, n int) {
	t.Helper()
	hashes := make([]uint64, len(keys))
	for i, k := range keys {
		hashes[i] = h.hashFn(k)
	}
	out := make([]uint32, len(keys))
	eq := func(rows []int32, vals []uint32, miss []bool, nc int) {
		for j := 0; j < nc; j++ {
			if !miss[j] && h.store[vals[j]] != keys[rows[j]] {
				miss[j] = true
			}
		}
	}
	// alloc must fire exactly once per distinct new key (allocation
	// order across different keys is pass-major, not batch order).
	allocedThisBatch := map[int64]bool{}
	alloc := func(row int32) uint32 {
		k := keys[row]
		if _, existed := h.oracle[k]; existed || allocedThisBatch[k] {
			t.Fatalf("alloc called twice for key %d", k)
		}
		allocedThisBatch[k] = true
		h.store = append(h.store, k)
		return uint32(len(h.store) - 1)
	}
	h.t.FindOrInsert(hashes, sel, n, out, eq, alloc)
	check := func(i int32) {
		k := keys[i]
		if int(out[i]) >= len(h.store) || h.store[out[i]] != k {
			t.Fatalf("FindOrInsert key %d at row %d: payload %d maps to wrong key", k, i, out[i])
		}
		if want, ok := h.oracle[k]; ok {
			if out[i] != want {
				t.Fatalf("FindOrInsert key %d at row %d: payload %d, oracle %d", k, i, out[i], want)
			}
		} else {
			if !allocedThisBatch[k] {
				t.Fatalf("new key %d at row %d resolved without alloc", k, i)
			}
			h.oracle[k] = out[i]
		}
	}
	if sel == nil {
		for i := 0; i < n; i++ {
			check(int32(i))
		}
	} else {
		for _, i := range sel[:n] {
			check(i)
		}
	}
	if h.t.Len() != len(h.oracle) {
		t.Fatalf("Len %d, oracle %d distinct keys", h.t.Len(), len(h.oracle))
	}
}

// find runs one Find batch and cross-checks hits and misses.
func (h *tableHarness) find(t *testing.T, keys []int64, sel []int32, n int) {
	t.Helper()
	hashes := make([]uint64, len(keys))
	for i, k := range keys {
		hashes[i] = h.hashFn(k)
	}
	out := make([]int32, len(keys))
	eq := func(rows []int32, vals []uint32, miss []bool, nc int) {
		for j := 0; j < nc; j++ {
			if !miss[j] && h.store[vals[j]] != keys[rows[j]] {
				miss[j] = true
			}
		}
	}
	h.t.Find(hashes, sel, n, out, eq)
	check := func(i int32) {
		want, ok := h.oracle[keys[i]]
		switch {
		case !ok && out[i] != -1:
			t.Fatalf("Find absent key %d at row %d: payload %d, want -1", keys[i], i, out[i])
		case ok && out[i] != int32(want):
			t.Fatalf("Find key %d at row %d: payload %d, oracle %d", keys[i], i, out[i], want)
		}
	}
	if sel == nil {
		for i := 0; i < n; i++ {
			check(int32(i))
		}
	} else {
		for _, i := range sel[:n] {
			check(i)
		}
	}
}

// runProperty drives random insert/find batches (dense and selective)
// from a bounded key universe — small enough that duplicate keys, both
// across batches and within one batch, are the norm (the join
// build-side shape).
func runProperty(t *testing.T, hashFn func(int64) uint64, universe int64, rounds int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	h := newHarness(hashFn)
	for r := 0; r < rounds; r++ {
		n := 1 + rng.Intn(1024)
		keys := make([]int64, n)
		for i := range keys {
			keys[i] = rng.Int63n(universe)
		}
		var sel []int32
		if rng.Intn(3) == 0 {
			// A strictly increasing selection over a wider batch, the
			// shape filters upstream produce.
			wide := n + rng.Intn(256)
			wkeys := make([]int64, wide)
			for i := range wkeys {
				wkeys[i] = rng.Int63n(universe)
			}
			sel32 := make([]int32, n)
			ints := rng.Perm(wide)[:n:n]
			// keep selection sorted and unique
			seen := map[int]bool{}
			k := 0
			for _, v := range ints {
				if !seen[v] {
					seen[v] = true
					ints[k] = v
					k++
				}
			}
			ints = ints[:k]
			for i := 1; i < len(ints); i++ {
				for j := i; j > 0 && ints[j] < ints[j-1]; j-- {
					ints[j], ints[j-1] = ints[j-1], ints[j]
				}
			}
			sel32 = sel32[:len(ints)]
			for i, v := range ints {
				sel32[i] = int32(v)
			}
			keys, sel, n = wkeys, sel32, len(ints)
		}
		if rng.Intn(2) == 0 {
			h.findOrInsert(t, keys, sel, n)
		} else {
			h.find(t, keys, sel, n)
		}
	}
}

func TestTableVsOracle(t *testing.T) {
	runProperty(t, splitmix64, 1<<14, 200, 1)
}

// TestTableVsOracleSmallUniverse hammers duplicate keys: every batch is
// nearly all duplicates of a handful of distinct keys.
func TestTableVsOracleSmallUniverse(t *testing.T) {
	runProperty(t, splitmix64, 17, 100, 2)
}

// TestTableVsOracleAllColliding is the adversarial seed: every key
// hashes to the same value, so tags and stored hashes reject nothing
// and every distinct key resolves purely through the eq callback at
// ever-growing probe distances.
func TestTableVsOracleAllColliding(t *testing.T) {
	runProperty(t, func(int64) uint64 { return 0xdeadbeef }, 64, 30, 3)
}

// TestTableVsOracleFewHashClasses forces heavy partial collisions: two
// hash classes share tags and full hashes, so eq must separate keys.
func TestTableVsOracleFewHashClasses(t *testing.T) {
	runProperty(t, func(k int64) uint64 { return uint64(k) & 3 }, 256, 50, 4)
}

// TestScalarPutGetVsOracle exercises the row-at-a-time entry points the
// reference engines use, across growth, against the same oracle.
func TestScalarPutGetVsOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tb := New(0)
	var store []int64
	oracle := map[int64]uint32{}
	for op := 0; op < 50000; op++ {
		k := rng.Int63n(5000)
		h := splitmix64(k)
		eq := func(v uint32) bool { return store[v] == k }
		if rng.Intn(2) == 0 {
			v, inserted := tb.Put(h, eq, func() uint32 {
				store = append(store, k)
				return uint32(len(store) - 1)
			})
			want, existed := oracle[k]
			if existed != !inserted {
				t.Fatalf("Put key %d: inserted=%v, oracle existed=%v", k, inserted, existed)
			}
			if !existed {
				oracle[k] = v
			} else if v != want {
				t.Fatalf("Put key %d: payload %d, oracle %d", k, v, want)
			}
		} else {
			v, ok := tb.Get(h, eq)
			want, existed := oracle[k]
			if ok != existed || (ok && v != want) {
				t.Fatalf("Get key %d: (%d,%v), oracle (%d,%v)", k, v, ok, want, existed)
			}
		}
	}
	if tb.Len() != len(oracle) {
		t.Fatalf("Len %d, oracle %d", tb.Len(), len(oracle))
	}
}

// TestGrowthPreservesEntries pins the rehash-free growth path: inserts
// far past several doublings keep every earlier entry findable.
func TestGrowthPreservesEntries(t *testing.T) {
	h := newHarness(splitmix64)
	keys := make([]int64, 1024)
	for round := 0; round < 40; round++ {
		for i := range keys {
			keys[i] = int64(round*len(keys) + i)
		}
		h.findOrInsert(t, keys, nil, len(keys))
	}
	st := h.t.Stats()
	if st.Resizes == 0 {
		t.Fatalf("expected directory growth, stats %+v", st)
	}
	if st.Entries != 40*1024 {
		t.Fatalf("entries %d, want %d", st.Entries, 40*1024)
	}
	// Every key from every round is still present.
	for round := 0; round < 40; round++ {
		for i := range keys {
			keys[i] = int64(round*len(keys) + i)
		}
		h.find(t, keys, nil, len(keys))
	}
}

// TestStatsShape sanity-checks the stats the operators surface.
func TestStatsShape(t *testing.T) {
	h := newHarness(splitmix64)
	keys := make([]int64, 512)
	for i := range keys {
		keys[i] = int64(i)
	}
	h.findOrInsert(t, keys, nil, len(keys))
	st := h.t.Stats()
	if st.Entries != 512 || st.Slots < 512 || st.Load <= 0 || st.Load > float64(loadNum)/float64(loadDen)+1e-9 {
		t.Fatalf("stats %+v", st)
	}
	if st.ProbeMax < st.ProbeP50 {
		t.Fatalf("probe max %d < p50 %d", st.ProbeMax, st.ProbeP50)
	}
}

// TestBatchNoSteadyStateAllocs pins the zero-allocation batch contract:
// once the table and scratch are sized, FindOrInsert and Find allocate
// nothing.
func TestBatchNoSteadyStateAllocs(t *testing.T) {
	tb := New(1 << 16)
	var store []int64
	n := 1024
	keys := make([]int64, n)
	hashes := make([]uint64, n)
	out := make([]uint32, n)
	outF := make([]int32, n)
	eq := func(rows []int32, vals []uint32, miss []bool, nc int) {
		for j := 0; j < nc; j++ {
			if !miss[j] && store[vals[j]] != keys[rows[j]] {
				miss[j] = true
			}
		}
	}
	alloc := func(row int32) uint32 {
		store = append(store, keys[row])
		return uint32(len(store) - 1)
	}
	fill := func(base int64) {
		for i := range keys {
			keys[i] = base + int64(i%500)
			hashes[i] = splitmix64(keys[i])
		}
	}
	fill(0)
	tb.FindOrInsert(hashes, nil, n, out, eq, alloc) // size scratch, warm store
	if got := testing.AllocsPerRun(100, func() {
		tb.FindOrInsert(hashes, nil, n, out, eq, alloc)
	}); got != 0 {
		t.Fatalf("FindOrInsert steady state allocates %.1f/op, want 0", got)
	}
	if got := testing.AllocsPerRun(100, func() {
		tb.Find(hashes, nil, n, outF, eq)
	}); got != 0 {
		t.Fatalf("Find steady state allocates %.1f/op, want 0", got)
	}
}

// FuzzTableVsOracle feeds byte-driven op sequences through the scalar
// API against a map oracle, with the hash mode (good, constant, 2-bit)
// part of the input so the fuzzer can explore collision regimes.
func FuzzTableVsOracle(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{1, 9, 9, 9, 9, 9, 9, 9, 9})       // constant hash, duplicate keys
	f.Add([]byte{2, 0, 4, 8, 12, 16, 20, 24, 255}) // 2-bit hash classes
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		var hashFn func(int64) uint64
		switch data[0] % 3 {
		case 0:
			hashFn = splitmix64
		case 1:
			hashFn = func(int64) uint64 { return 42 }
		default:
			hashFn = func(k int64) uint64 { return uint64(k) & 3 }
		}
		tb := New(0)
		var store []int64
		oracle := map[int64]uint32{}
		for _, b := range data[1:] {
			k := int64(b % 64)
			h := hashFn(k)
			eq := func(v uint32) bool { return store[v] == k }
			if b&0x80 == 0 {
				v, inserted := tb.Put(h, eq, func() uint32 {
					store = append(store, k)
					return uint32(len(store) - 1)
				})
				want, existed := oracle[k]
				if existed == inserted {
					t.Fatalf("Put key %d: inserted=%v, existed=%v", k, inserted, existed)
				}
				if !existed {
					oracle[k] = v
				} else if v != want {
					t.Fatalf("Put key %d: payload %d, oracle %d", k, v, want)
				}
			} else {
				v, ok := tb.Get(h, eq)
				want, existed := oracle[k]
				if ok != existed || (ok && v != want) {
					t.Fatalf("Get key %d: (%d,%v), oracle (%d,%v)", k, v, ok, want, existed)
				}
			}
		}
		if tb.Len() != len(oracle) {
			t.Fatalf("Len %d, oracle %d", tb.Len(), len(oracle))
		}
	})
}
