package hashtable

import (
	"testing"
)

// benchKeys returns n distinct pre-hashed keys.
func benchKeys(n int) []uint64 {
	hs := make([]uint64, n)
	for i := range hs {
		hs[i] = splitmix64(int64(i))
	}
	return hs
}

func noEq(_ []int32, _ []uint32, _ []bool, _ int) {} // hash-distinct keys: no false candidates to reject

// buildTable inserts every key 1024 rows at a time.
func buildTable(hs []uint64, hint int) *Table {
	t := New(hint)
	out := make([]uint32, 1024)
	var next uint32
	alloc := func(int32) uint32 { next++; return next - 1 }
	for o := 0; o < len(hs); o += 1024 {
		end := o + 1024
		if end > len(hs) {
			end = len(hs)
		}
		t.FindOrInsert(hs[o:end], nil, end-o, out, noEq, alloc)
	}
	return t
}

// BenchmarkHashTableVsGoMap compares the batch table against a plain
// map[uint64]uint32 on the two phases the operators run: Build (insert
// every key once — the join build / first-seen-group path) and Probe
// (stream 1024-row lookup batches across the full key set — the join
// probe path, working set deliberately larger than cache at 1e5+).
func BenchmarkHashTableVsGoMap(b *testing.B) {
	for _, size := range []int{100_000, 1_000_000} {
		hs := benchKeys(size)

		b.Run(sizeName("TableBuild", size), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buildTable(hs, size)
			}
		})

		b.Run(sizeName("GoMapBuild", size), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m := make(map[uint64]uint32, size)
				var next uint32
				for _, h := range hs {
					if _, ok := m[h]; !ok {
						m[h] = next
						next++
					}
				}
			}
		})

		b.Run(sizeName("TableProbe", size), func(b *testing.B) {
			t := buildTable(hs, size)
			found := make([]int32, 1024)
			b.ReportAllocs()
			b.SetBytes(1024 * 8)
			b.ResetTimer()
			off := 0
			for i := 0; i < b.N; i++ {
				t.Find(hs[off:off+1024], nil, 1024, found, noEq)
				off += 1024
				if off+1024 > size {
					off = 0
				}
			}
			if found[0] < 0 {
				b.Fatal("expected hit")
			}
		})

		b.Run(sizeName("GoMapProbe", size), func(b *testing.B) {
			m := make(map[uint64]uint32, size)
			for i, h := range hs {
				m[h] = uint32(i)
			}
			found := make([]int32, 1024)
			b.ReportAllocs()
			b.SetBytes(1024 * 8)
			b.ResetTimer()
			off := 0
			for i := 0; i < b.N; i++ {
				for k, h := range hs[off : off+1024] {
					if v, ok := m[h]; ok {
						found[k] = int32(v)
					} else {
						found[k] = -1
					}
				}
				off += 1024
				if off+1024 > size {
					off = 0
				}
			}
			if found[0] < 0 {
				b.Fatal("expected hit")
			}
		})
	}
}

func sizeName(kind string, n int) string {
	switch {
	case n >= 1_000_000:
		return kind + "/1M"
	case n >= 100_000:
		return kind + "/100k"
	default:
		return kind + "/small"
	}
}

// BenchmarkFindOrInsertHits measures the steady-state find-or-insert
// path — all keys already present, probes streaming across the full
// 100k key set — which is the hot loop of a high-cardinality aggregate.
func BenchmarkFindOrInsertHits(b *testing.B) {
	const size = 100_000
	hs := benchKeys(size)
	t := buildTable(hs, size)
	out := make([]uint32, 1024)
	var next uint32
	alloc := func(int32) uint32 { next++; return next - 1 }
	b.ReportAllocs()
	b.SetBytes(1024 * 8)
	b.ResetTimer()
	off := 0
	for i := 0; i < b.N; i++ {
		t.FindOrInsert(hs[off:off+1024], nil, 1024, out, noEq, alloc)
		off += 1024
		if off+1024 > size {
			off = 0
		}
	}
}
