// Package hashtable is the engine's shared hash-table core: a
// cache-conscious open-addressing table keyed by 64-bit hashes, probed
// a *vector at a time*. HashAggregate group lookup, HashJoin build and
// probe, set-operation dedup and both reference engines all sit on it,
// replacing the per-row `map[uint64]` work the Vectorwise paper argues
// a batch engine must not do at its pipeline hearts.
//
// # Layout
//
// One slot array, power-of-two sized, linear probing. Each slot is a
// 16-byte entry:
//
//	hash uint64  the full 64-bit key hash
//	val  uint32  caller payload (group id, key id)
//	tag  uint32  0 = empty, else 7 high hash bits | 0x80
//
// Everything a probe classifies on lives in one 16-byte record, so a
// probe — hit, empty, or collision — costs exactly one entry-array
// cache line, and a linear re-probe usually stays on the same line
// (four slots per 64-byte line). The inline tag rejects almost every
// hash-colliding slot before the caller is asked about keys; only on a
// full hash hit does the caller verify actual key columns. Storing the
// full hash makes growth rehash-free: doubling reinserts occupied
// slots by their stored hash without touching caller key storage.
//
// The table maps each distinct key hash chain to one uint32 value and
// never stores keys itself: key verification runs through a caller
// callback over its own (columnar) key storage, so the table works
// identically for aggregate groups, join build rows and boxed reference
// -engine rows. Distinct keys that share a full 64-bit hash are handled
// by continued probing — the callback rejecting a candidate sends the
// row one slot further, exactly like a tag mismatch.
//
// # Batch kernels
//
// FindOrInsert and Find process a whole vector per call in re-probe
// passes: pass 0 computes every row's bucket from its hash and resolves
// the (vast majority of) rows that hit an empty or matching slot; rows
// that met a foreign key fall into a shrinking miss set that re-probes
// one slot further per pass. On large tables a branch-free gather pass
// touches every probed slot first, so the classify loop's cache misses
// overlap instead of serializing behind data-dependent branches. Key
// verification for each pass's candidate set runs as its own loop over
// the caller's key columns — column-major, the same shape as every
// other kernel in the engine. All scratch lives on the Table, so
// steady-state batches allocate nothing.
package hashtable

// Table is an open-addressing linear-probing hash table keyed by
// uint64 hashes with uint32 payloads. The zero value is not usable;
// call New. A Table is not safe for concurrent use.
type Table struct {
	entries []entry
	mask    uint64
	used    int
	growAt  int

	// stats
	resizes  int
	maxProbe int
	hist     [histSize]uint64 // ops resolved at probe distance d (capped)

	// reusable batch scratch (see FindOrInsert)
	rows      []int32  // pending row indices
	rows2     []int32  // next pass's pending rows
	slots     []uint64 // current slot per pending row
	slots2    []uint64
	candRows  []int32
	candVals  []uint32
	candSlots []uint64
	miss      []bool
	gSlots    []uint64 // gathered home slot per row (pass 0)
	gEnt      []entry  // gathered home entry per row (pass 0)
}

// entry packs a slot's full key hash, payload and occupancy tag into
// 16 bytes so any probe outcome is decided from one cache line.
type entry struct {
	hash uint64
	val  uint32
	tag  uint32
}

const (
	minSlots = 64
	histSize = 64
	// Growth triggers above 7/10 occupancy — low enough that linear
	// probe chains stay short, high enough that the tag array stays
	// dense in cache.
	loadNum, loadDen = 7, 10
	// Tables past this many slots no longer fit fast cache; pass 0 then
	// runs as a branch-free gather stage over every row's home slot
	// followed by a classify stage over the (L1-resident) gather
	// scratch, so slot-line misses overlap instead of serializing
	// behind classification branches.
	gatherMinSlots = 1 << 15
)

// EqFn verifies a pass's candidate rows against stored entries: for
// each j < n the caller must set miss[j] = true when the keys of probe
// row rows[j] differ from the keys of the entry holding payload
// vals[j]. miss arrives cleared. Implementations loop key columns
// outermost (column-major) so each key column streams once per pass.
type EqFn func(rows []int32, vals []uint32, miss []bool, n int)

// NewFn allocates the payload for a first-seen key at probe row `row`
// (an index into the batch the hashes were computed over). It is called
// exactly once per distinct new key. Within a pass, allocations run in
// row order; a row deferred by a collision allocates in a later pass,
// after rows the earlier pass resolved — so allocation order is
// pass-major, not strict batch order.
type NewFn func(row int32) uint32

// New returns a table pre-sized for about `hint` entries (0 picks the
// minimum). Capacity is always a power of two.
func New(hint int) *Table {
	slots := minSlots
	for slots*loadNum/loadDen < hint {
		slots *= 2
	}
	t := &Table{}
	t.alloc(slots)
	return t
}

func (t *Table) alloc(slots int) {
	t.entries = make([]entry, slots)
	t.mask = uint64(slots - 1)
	t.growAt = slots * loadNum / loadDen
}

// Len returns the number of entries (distinct keys).
func (t *Table) Len() int { return t.used }

// Cap returns the slot count.
func (t *Table) Cap() int { return len(t.entries) }

// tagOf derives the 8-bit slot tag from a hash: the top 7 bits with the
// high bit forced on, so a tag is never 0 (the empty marker) without a
// data-dependent branch.
func tagOf(h uint64) uint32 { return uint32(h>>57&0x7f) | 0x80 }

// reserve grows the table until n more insertions cannot push occupancy
// past the load factor. Growing before a batch (never during) keeps
// every slot claimed mid-batch valid.
func (t *Table) reserve(n int) {
	for t.used+n > t.growAt {
		t.grow()
	}
}

// grow doubles the directory, reinserting every occupied slot by its
// stored hash. Entries are unique by construction, so reinsertion is a
// plain first-empty-slot walk with no key verification.
func (t *Table) grow() {
	oldEntries := t.entries
	t.alloc(len(oldEntries) * 2)
	for _, e := range oldEntries {
		if e.tag == 0 {
			continue
		}
		ns := e.hash & t.mask
		for t.entries[ns].tag != 0 {
			ns = (ns + 1) & t.mask
		}
		t.entries[ns] = e
	}
	t.resizes++
}

// ensureScratch sizes the pass buffers for an n-row batch.
func (t *Table) ensureScratch(n int) {
	if cap(t.rows) < n {
		t.rows = make([]int32, n)
		t.rows2 = make([]int32, n)
		t.slots = make([]uint64, n)
		t.slots2 = make([]uint64, n)
		t.candRows = make([]int32, n)
		t.candVals = make([]uint32, n)
		t.candSlots = make([]uint64, n)
		t.miss = make([]bool, n)
		t.gSlots = make([]uint64, n)
		t.gEnt = make([]entry, n)
	}
}

// note records that `resolved` operations finished at probe distance d.
func (t *Table) note(d, resolved int) {
	if resolved == 0 {
		return
	}
	if d > t.maxProbe {
		t.maxProbe = d
	}
	if d >= histSize {
		d = histSize - 1
	}
	t.hist[d] += uint64(resolved)
}

// FindOrInsert maps every live row's hash to its payload, inserting
// first-seen keys via alloc: on return out[i] holds the payload for
// each live row i. Key verification runs through eq (see EqFn); rows
// whose keys were never seen get a fresh payload from alloc. Duplicate
// keys within the batch resolve to the first occurrence's payload.
// out is indexed by batch position (like hashes), not compacted.
func (t *Table) FindOrInsert(hashes []uint64, sel []int32, n int, out []uint32, eq EqFn, alloc NewFn) {
	if n == 0 {
		return
	}
	t.reserve(n)
	t.ensureScratch(n)
	// Pass 0 is fused with pending-set construction: every row probes its
	// home slot straight from the hash vector, so the rows/slots scratch
	// is only written for the minority that must re-probe.
	entries := t.entries
	mask := uint64(len(entries)) - 1
	rows, slots := t.rows, t.slots
	nPend, nCand, resolved := 0, 0, 0
	if len(entries) >= gatherMinSlots {
		// Out-of-cache table: gather stage first (see package doc).
		gSlots, gEnt := t.gSlots[:n], t.gEnt[:n]
		if sel == nil {
			for i := 0; i < n; i++ {
				s := hashes[i] & mask
				gSlots[i] = s
				gEnt[i] = entries[s]
			}
		} else {
			for k, i := range sel[:n] {
				s := hashes[i] & mask
				gSlots[k] = s
				gEnt[k] = entries[s]
			}
		}
		if sel == nil {
			for k := 0; k < n; k++ {
				h := hashes[k]
				s := gSlots[k]
				e := gEnt[k]
				if e.tag == 0 {
					// Re-read: an earlier row of this batch may have
					// claimed the slot after the gather snapshot.
					e = entries[s]
				}
				if e.tag == 0 {
					// Claim: later rows of this pass see the entry.
					v := alloc(int32(k))
					entries[s] = entry{hash: h, val: v, tag: tagOf(h)}
					t.used++
					out[k] = v
					resolved++
					continue
				}
				if e.tag == tagOf(h) && e.hash == h {
					t.candRows[nCand] = int32(k)
					t.candVals[nCand] = e.val
					t.candSlots[nCand] = s
					nCand++
					continue
				}
				rows[nPend] = int32(k)
				slots[nPend] = (s + 1) & mask
				nPend++
			}
		} else {
			for k, i := range sel[:n] {
				h := hashes[i]
				s := gSlots[k]
				e := gEnt[k]
				if e.tag == 0 {
					e = entries[s]
				}
				if e.tag == 0 {
					v := alloc(i)
					entries[s] = entry{hash: h, val: v, tag: tagOf(h)}
					t.used++
					out[i] = v
					resolved++
					continue
				}
				if e.tag == tagOf(h) && e.hash == h {
					t.candRows[nCand] = i
					t.candVals[nCand] = e.val
					t.candSlots[nCand] = s
					nCand++
					continue
				}
				rows[nPend] = i
				slots[nPend] = (s + 1) & mask
				nPend++
			}
		}
	} else if sel == nil {
		for i := 0; i < n; i++ {
			h := hashes[i]
			s := h & mask
			e := entries[s]
			if e.tag == 0 {
				v := alloc(int32(i))
				entries[s] = entry{hash: h, val: v, tag: tagOf(h)}
				t.used++
				out[i] = v
				resolved++
				continue
			}
			if e.tag == tagOf(h) && e.hash == h {
				t.candRows[nCand] = int32(i)
				t.candVals[nCand] = e.val
				t.candSlots[nCand] = s
				nCand++
				continue
			}
			rows[nPend] = int32(i)
			slots[nPend] = (s + 1) & mask
			nPend++
		}
	} else {
		for _, i := range sel[:n] {
			h := hashes[i]
			s := h & mask
			e := entries[s]
			if e.tag == 0 {
				v := alloc(i)
				entries[s] = entry{hash: h, val: v, tag: tagOf(h)}
				t.used++
				out[i] = v
				resolved++
				continue
			}
			if e.tag == tagOf(h) && e.hash == h {
				t.candRows[nCand] = i
				t.candVals[nCand] = e.val
				t.candSlots[nCand] = s
				nCand++
				continue
			}
			rows[nPend] = i
			slots[nPend] = (s + 1) & mask
			nPend++
		}
	}
	if nCand > 0 {
		miss := t.miss[:nCand]
		for j := range miss {
			miss[j] = false
		}
		eq(t.candRows, t.candVals, miss, nCand)
		for j := 0; j < nCand; j++ {
			if miss[j] {
				rows[nPend] = t.candRows[j]
				slots[nPend] = (t.candSlots[j] + 1) & mask
				nPend++
				continue
			}
			out[t.candRows[j]] = t.candVals[j]
			resolved++
		}
	}
	t.note(0, resolved)
	pending := nPend
	next, nextSlots := t.rows2, t.slots2
	for dist := 1; pending > 0; dist++ {
		resolved = 0
		nPend, nCand = 0, 0
		for k := 0; k < pending; k++ {
			i := rows[k]
			s := slots[k]
			h := hashes[i]
			e := entries[s&mask]
			if e.tag == 0 {
				v := alloc(i)
				entries[s&mask] = entry{hash: h, val: v, tag: tagOf(h)}
				t.used++
				out[i] = v
				resolved++
				continue
			}
			if e.tag == tagOf(h) && e.hash == h {
				t.candRows[nCand] = i
				t.candVals[nCand] = e.val
				t.candSlots[nCand] = s
				nCand++
				continue
			}
			next[nPend] = i
			nextSlots[nPend] = (s + 1) & mask
			nPend++
		}
		if nCand > 0 {
			miss := t.miss[:nCand]
			for j := range miss {
				miss[j] = false
			}
			eq(t.candRows, t.candVals, miss, nCand)
			for j := 0; j < nCand; j++ {
				if miss[j] {
					next[nPend] = t.candRows[j]
					nextSlots[nPend] = (t.candSlots[j] + 1) & mask
					nPend++
					continue
				}
				out[t.candRows[j]] = t.candVals[j]
				resolved++
			}
		}
		t.note(dist, resolved)
		rows, next = next, rows
		slots, nextSlots = nextSlots, slots
		pending = nPend
	}
}

// Find maps every live row's hash to its payload or -1 when the key is
// absent: out[i] = int32(payload) or -1. Same pass structure as
// FindOrInsert without insertion — an empty slot resolves the row as a
// miss.
func (t *Table) Find(hashes []uint64, sel []int32, n int, out []int32, eq EqFn) {
	if n == 0 {
		return
	}
	t.ensureScratch(n)
	// Same fused pass-0 shape as FindOrInsert (see there): rows resolve
	// straight off the hash vector and only re-probers touch scratch.
	entries := t.entries
	mask := uint64(len(entries)) - 1
	rows, slots := t.rows, t.slots
	nPend, nCand, resolved := 0, 0, 0
	if len(entries) >= gatherMinSlots {
		// Out-of-cache table: gather stage first (see package doc). No
		// re-read in classify — Find never writes entries.
		gSlots, gEnt := t.gSlots[:n], t.gEnt[:n]
		if sel == nil {
			for i := 0; i < n; i++ {
				s := hashes[i] & mask
				gSlots[i] = s
				gEnt[i] = entries[s]
			}
		} else {
			for k, i := range sel[:n] {
				s := hashes[i] & mask
				gSlots[k] = s
				gEnt[k] = entries[s]
			}
		}
		if sel == nil {
			for k := 0; k < n; k++ {
				h := hashes[k]
				e := gEnt[k]
				if e.tag == 0 {
					out[k] = -1
					resolved++
					continue
				}
				if e.tag == tagOf(h) && e.hash == h {
					t.candRows[nCand] = int32(k)
					t.candVals[nCand] = e.val
					t.candSlots[nCand] = gSlots[k]
					nCand++
					continue
				}
				rows[nPend] = int32(k)
				slots[nPend] = (gSlots[k] + 1) & mask
				nPend++
			}
		} else {
			for k, i := range sel[:n] {
				h := hashes[i]
				e := gEnt[k]
				if e.tag == 0 {
					out[i] = -1
					resolved++
					continue
				}
				if e.tag == tagOf(h) && e.hash == h {
					t.candRows[nCand] = i
					t.candVals[nCand] = e.val
					t.candSlots[nCand] = gSlots[k]
					nCand++
					continue
				}
				rows[nPend] = i
				slots[nPend] = (gSlots[k] + 1) & mask
				nPend++
			}
		}
	} else if sel == nil {
		for i := 0; i < n; i++ {
			h := hashes[i]
			s := h & mask
			e := entries[s]
			if e.tag == 0 {
				out[i] = -1
				resolved++
				continue
			}
			if e.tag == tagOf(h) && e.hash == h {
				t.candRows[nCand] = int32(i)
				t.candVals[nCand] = e.val
				t.candSlots[nCand] = s
				nCand++
				continue
			}
			rows[nPend] = int32(i)
			slots[nPend] = (s + 1) & mask
			nPend++
		}
	} else {
		for _, i := range sel[:n] {
			h := hashes[i]
			s := h & mask
			e := entries[s]
			if e.tag == 0 {
				out[i] = -1
				resolved++
				continue
			}
			if e.tag == tagOf(h) && e.hash == h {
				t.candRows[nCand] = i
				t.candVals[nCand] = e.val
				t.candSlots[nCand] = s
				nCand++
				continue
			}
			rows[nPend] = i
			slots[nPend] = (s + 1) & mask
			nPend++
		}
	}
	if nCand > 0 {
		miss := t.miss[:nCand]
		for j := range miss {
			miss[j] = false
		}
		eq(t.candRows, t.candVals, miss, nCand)
		for j := 0; j < nCand; j++ {
			if miss[j] {
				rows[nPend] = t.candRows[j]
				slots[nPend] = (t.candSlots[j] + 1) & mask
				nPend++
				continue
			}
			out[t.candRows[j]] = int32(t.candVals[j])
			resolved++
		}
	}
	t.note(0, resolved)
	pending := nPend
	next, nextSlots := t.rows2, t.slots2
	for dist := 1; pending > 0; dist++ {
		resolved = 0
		nPend, nCand = 0, 0
		for k := 0; k < pending; k++ {
			i := rows[k]
			s := slots[k]
			h := hashes[i]
			e := entries[s&mask]
			if e.tag == 0 {
				out[i] = -1
				resolved++
				continue
			}
			if e.tag == tagOf(h) && e.hash == h {
				t.candRows[nCand] = i
				t.candVals[nCand] = e.val
				t.candSlots[nCand] = s
				nCand++
				continue
			}
			next[nPend] = i
			nextSlots[nPend] = (s + 1) & mask
			nPend++
		}
		if nCand > 0 {
			miss := t.miss[:nCand]
			for j := range miss {
				miss[j] = false
			}
			eq(t.candRows, t.candVals, miss, nCand)
			for j := 0; j < nCand; j++ {
				if miss[j] {
					next[nPend] = t.candRows[j]
					nextSlots[nPend] = (t.candSlots[j] + 1) & mask
					nPend++
					continue
				}
				out[t.candRows[j]] = int32(t.candVals[j])
				resolved++
			}
		}
		t.note(dist, resolved)
		rows, next = next, rows
		slots, nextSlots = nextSlots, slots
		pending = nPend
	}
}

// Put is the scalar form of FindOrInsert for the row-at-a-time
// reference engines: eq verifies a candidate payload's keys, alloc
// builds the payload for a new key. Reports the payload and whether it
// was inserted.
func (t *Table) Put(h uint64, eq func(v uint32) bool, alloc func() uint32) (uint32, bool) {
	t.reserve(1)
	tg := tagOf(h)
	s := h & t.mask
	for d := 0; ; d++ {
		e := t.entries[s]
		if e.tag == 0 {
			v := alloc()
			t.entries[s] = entry{hash: h, val: v, tag: tg}
			t.used++
			t.note(d, 1)
			return v, true
		}
		if e.tag == tg && e.hash == h && eq(e.val) {
			t.note(d, 1)
			return e.val, false
		}
		s = (s + 1) & t.mask
	}
}

// Get is the scalar form of Find.
func (t *Table) Get(h uint64, eq func(v uint32) bool) (uint32, bool) {
	tg := tagOf(h)
	s := h & t.mask
	for d := 0; ; d++ {
		e := t.entries[s]
		if e.tag == 0 {
			t.note(d, 1)
			return 0, false
		}
		if e.tag == tg && e.hash == h && eq(e.val) {
			t.note(d, 1)
			return e.val, true
		}
		s = (s + 1) & t.mask
	}
}

// Stats is a point-in-time summary of table shape and probe behavior.
type Stats struct {
	Slots    int     // directory size
	Entries  int     // distinct keys stored
	Load     float64 // Entries / Slots
	Resizes  int     // directory doublings since New
	ProbeP50 int     // median probe distance over all resolved ops
	ProbeMax int     // longest probe distance observed
}

// Stats reports the table's current shape and cumulative probe-length
// distribution (every resolved FindOrInsert/Find/Put/Get op counts
// once).
func (t *Table) Stats() Stats {
	st := Stats{
		Slots:    len(t.entries),
		Entries:  t.used,
		Resizes:  t.resizes,
		ProbeMax: t.maxProbe,
	}
	if st.Slots > 0 {
		st.Load = float64(st.Entries) / float64(st.Slots)
	}
	var total uint64
	for _, c := range t.hist {
		total += c
	}
	if total > 0 {
		half := (total + 1) / 2
		var cum uint64
		for d, c := range t.hist {
			cum += c
			if cum >= half {
				st.ProbeP50 = d
				break
			}
		}
	}
	return st
}
