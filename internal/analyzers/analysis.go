// Package analyzers is vwlint's analyzer suite: five static checks that
// machine-enforce the engine's concurrency and vector-lifetime
// invariants (lock discipline, selection-vector aliasing, per-batch
// cancellation, arena escape, snapshot refcount balance). The
// invariants themselves are documented in docs/ARCHITECTURE.md under
// "Engine invariants"; each analyzer's Doc string states the rule it
// checks and the canonical fix.
//
// The suite is self-contained on the standard library: packages are
// loaded through `go list -export` plus the gc export-data importer
// (see loader.go), so it needs no dependency on golang.org/x/tools. The
// Analyzer/Pass surface deliberately mirrors go/analysis so the
// checkers could migrate to the upstream framework verbatim if the
// module ever takes on the dependency.
package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //vwlint:ignore directives. Lowercase, no spaces.
	Name string
	// Doc states the invariant being checked and the canonical fix.
	Doc string
	// Run reports violations found in one package via pass.Reportf.
	Run func(pass *Pass)
}

// Pass carries one package's syntax and type information through an
// analyzer run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one reported violation, position still unresolved.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// All returns the full suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		LockDiscipline,
		SelAlias,
		CtxNext,
		ArenaEscape,
		RefBalance,
	}
}
