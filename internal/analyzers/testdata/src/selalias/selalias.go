// Package selalias exercises the shared-Sel mutation rules with a
// structural stand-in for vector.Batch and core.Operator.
package selalias

type Batch struct {
	Sel []int32
	N   int
}

type Operator interface {
	Next() (*Batch, error)
}

type limit struct {
	child Operator
	n     int
}

// Next demonstrates the core.Limit bug class: mutating the child's Sel
// in place instead of installing a private copy.
func (l *limit) Next() (*Batch, error) {
	b, err := l.child.Next()
	if err != nil || b == nil {
		return nil, err
	}
	if b.N > l.n {
		b.Sel = b.Sel[:l.n]      // want "truncates the child batch's shared Sel in place"
		b.Sel[0] = 0             // want "writes through the child batch's shared Sel slice"
		b.Sel = append(b.Sel, 1) // want "append reuses the child batch's shared Sel backing array"
		b.N = l.n
	}
	return b, nil
}

// NextCopied is the canonical fix: copy the live prefix into a fresh
// slice, then install it. After the re-own, writes are fine.
func (l *limit) NextCopied() (*Batch, error) {
	b, err := l.child.Next()
	if err != nil || b == nil {
		return nil, err
	}
	if b.N > l.n {
		sel := make([]int32, l.n)
		copy(sel, b.Sel[:l.n])
		b.Sel = sel
		b.Sel[0] = 0 // ok: freshly copied, privately owned
		b.N = l.n
	}
	return b, nil
}

// Aliases of a foreign batch stay foreign.
func (l *limit) NextAliased() (*Batch, error) {
	b, err := l.child.Next()
	if b == nil {
		return nil, err
	}
	c := b
	c.Sel[0] = 0 // want "writes through the child batch's shared Sel slice"
	return c, nil
}

func zeroAll(sel []int32) {
	for i := range sel {
		sel[i] = 0
	}
}

func zeroVia(sel []int32) { zeroAll(sel) }

func sum(sel []int32) int32 {
	var s int32
	for _, v := range sel {
		s += v
	}
	return s
}

// Batch parameters are owned by the caller; handing their Sel to a
// mutating callee (directly or transitively) is flagged, read-only use
// is not.
func reset(b *Batch) {
	zeroAll(b.Sel) // want "passes the child batch's shared Sel to zeroAll"
}

func resetVia(b *Batch) {
	zeroVia(b.Sel) // want "passes the child batch's shared Sel to zeroVia"
}

func total(b *Batch) int32 {
	return sum(b.Sel) // ok: callee only reads
}

// Locally allocated batches are private property.
func fresh(n int) *Batch {
	out := &Batch{Sel: make([]int32, n)}
	out.Sel[0] = 1 // ok: locally allocated
	return out
}

// Suppression works here too.
func trim(b *Batch, n int) {
	//vwlint:ignore selalias caller documents exclusive ownership of this batch
	b.Sel = b.Sel[:n]
}
