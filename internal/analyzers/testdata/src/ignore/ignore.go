// Package ignore exercises //vwlint:ignore directive handling: valid
// directives suppress, malformed ones (missing reason, unknown
// analyzer) are diagnostics in their own right and suppress nothing.
// Expectations live in directives_test.go, not in want comments.
package ignore

import "sync"

type store struct {
	mu sync.Mutex
	n  int
}

func (s *store) getLocked() int { return s.n }

// suppressedStandalone: directive on its own line covers the next line.
func (s *store) suppressedStandalone() int {
	//vwlint:ignore lockdiscipline the store is single-threaded during startup
	return s.getLocked()
}

// suppressedTrailing: directive trailing the code line covers it.
func (s *store) suppressedTrailing() int {
	return s.getLocked() //vwlint:ignore lockdiscipline init path, no concurrent access yet
}

// missingReason: directive without a reason reports and does not
// suppress the lockdiscipline finding below it.
func (s *store) missingReason() int {
	//vwlint:ignore lockdiscipline
	return s.getLocked()
}

// unknownName: unknown analyzer name reports and does not suppress.
func (s *store) unknownName() int {
	//vwlint:ignore nosuchcheck stale directive kept for the test
	return s.getLocked()
}

// multiName: one directive can name several analyzers.
func (s *store) multiName() int {
	//vwlint:ignore lockdiscipline,ctxnext shared startup path before serving
	return s.getLocked()
}

// wrongAnalyzer: a well-formed directive for a different analyzer does
// not suppress lockdiscipline.
func (s *store) wrongAnalyzer() int {
	//vwlint:ignore selalias reason that does not apply here
	return s.getLocked()
}

// bare: a directive with no analyzer name at all is malformed.
func (s *store) bare() int {
	//vwlint:ignore
	return s.n
}
