// Package ctxnext exercises the operator cancellation contract with a
// structural stand-in for the core.Operator interface.
package ctxnext

import "context"

type Batch struct {
	Sel []int32
	N   int
}

type Schema struct{}

type Operator interface {
	Schema() *Schema
	Open() error
	Next() (*Batch, error)
	Close() error
}

// ctxErr mirrors the engine's per-batch cancellation helper.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// base supplies the non-Next interface methods via embedding.
type base struct{ child Operator }

func (b *base) Schema() *Schema { return nil }
func (b *base) Open() error     { return nil }
func (b *base) Close() error    { return nil }

// goodOp polls its context at the top of Next: allowed.
type goodOp struct {
	base
	ctx context.Context
}

func (o *goodOp) Next() (*Batch, error) {
	if err := o.ctx.Err(); err != nil {
		return nil, err
	}
	return o.child.Next()
}

// badOp forwards to its child with no poll anywhere.
type badOp struct {
	base
	ctx context.Context
}

func (o *badOp) Next() (*Batch, error) { // want "operator Next never polls its context"
	return o.child.Next()
}

// buildOp is a stop-and-go operator: its Next drains the child before
// emitting. The drain loop must poll per iteration.
type buildOp struct {
	base
	ctx  context.Context
	rows int
}

func (o *buildOp) consume() error {
	for { // want "multi-batch loop never polls the context"
		b, err := o.child.Next()
		if err != nil {
			return err
		}
		if b == nil {
			return nil
		}
		o.rows += b.N
	}
}

func (o *buildOp) consumeChecked() error {
	for { // ok: polls via the helper each iteration
		if err := ctxErr(o.ctx); err != nil {
			return err
		}
		b, err := o.child.Next()
		if err != nil {
			return err
		}
		if b == nil {
			return nil
		}
		o.rows += b.N
	}
}

// poll gives one-level credit: a loop calling it counts as checked.
func (o *buildOp) poll() error { return ctxErr(o.ctx) }

func (o *buildOp) consumeViaHelper() error {
	for {
		if err := o.poll(); err != nil {
			return err
		}
		b, err := o.child.Next()
		if err != nil {
			return err
		}
		if b == nil {
			return nil
		}
		o.rows += b.N
	}
}

func (o *buildOp) Next() (*Batch, error) {
	if err := ctxErr(o.ctx); err != nil {
		return nil, err
	}
	if err := o.consumeChecked(); err != nil {
		return nil, err
	}
	return nil, nil
}

// exchOp pushes batches into a channel; the producer loop moves many
// batches per call and must poll too.
type exchOp struct {
	base
	ctx context.Context
	ch  chan *Batch
}

func (o *exchOp) Next() (*Batch, error) {
	if err := ctxErr(o.ctx); err != nil {
		return nil, err
	}
	return <-o.ch, nil
}

func (o *exchOp) pump(n int) {
	for i := 0; i < n; i++ { // want "multi-batch loop never polls the context"
		o.ch <- &Batch{N: 1}
	}
}

func (o *exchOp) pumpChecked(n int) {
	for i := 0; i < n; i++ {
		if err := ctxErr(o.ctx); err != nil {
			return
		}
		o.ch <- &Batch{N: 1}
	}
}

// notAnOperator does not implement Operator; its loops are exempt.
type notAnOperator struct {
	child Operator
}

func (n *notAnOperator) drain() {
	for {
		b, _ := n.child.Next()
		if b == nil {
			return
		}
	}
}

// Suppression with a reason is honored.
type suppressedOp struct {
	base
	ctx context.Context
}

//vwlint:ignore ctxnext wraps a child that already polls per batch
func (o *suppressedOp) Next() (*Batch, error) {
	return o.child.Next()
}
