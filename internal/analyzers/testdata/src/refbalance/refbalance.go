// Package refbalance exercises snapshot refcount hygiene with a local
// ref/unref pair and //vw:refcount / //vw:owns annotations.
package refbalance

import "errors"

var errTooMany = errors.New("too many holders")

type snapshot struct {
	// refs counts the holders pinning this snapshot.
	//
	//vw:refcount
	refs int
}

func (s *snapshot) ref()   { s.refs++ }
func (s *snapshot) unref() { s.refs-- }

type user struct {
	snap *snapshot
}

// leak takes a reference but the error path returns without releasing.
func leak(s *snapshot) error {
	s.ref()
	if s.refs > 10 {
		return errTooMany // want "return path leaks the reference"
	}
	s.unref()
	return nil
}

// balanced releases on every path via defer.
func balanced(s *snapshot) error {
	s.ref()
	defer s.unref()
	if s.refs > 10 {
		return errTooMany
	}
	return nil
}

// acquire transfers ownership by returning the counted value.
func acquire(s *snapshot) *snapshot {
	s.ref()
	return s
}

// bump increments the tagged field directly; same rules apply.
func bump(s *snapshot) error {
	s.refs++
	if s.refs > 10 {
		return errTooMany // want "return path leaks the reference"
	}
	s.unref()
	return nil
}

// open hands its caller a counted reference.
//
//vw:owns
func open(s *snapshot) *snapshot {
	s.ref()
	return s
}

// use releases on the error path and transfers on the success path.
func use(s *snapshot) (*user, error) {
	snap := open(s)
	if snap.refs > 100 {
		snap.unref()
		return nil, errTooMany
	}
	u := &user{}
	u.snap = snap //vw:owns released by the user's close path
	return u, nil
}

// useLeaky forgets the error path.
func useLeaky(s *snapshot) error {
	snap := open(s)
	if snap.refs > 100 {
		return errTooMany // want "return path leaks the reference"
	}
	snap.unref()
	return nil
}

// drop discards the owned result outright.
func drop(s *snapshot) {
	open(s) // want "owned reference is discarded"
}

// forget acquires and falls off the end without releasing.
func forget(s *snapshot) {
	s.ref()
} // want "function end leaks the reference"

// holdForever is a sanctioned imbalance, suppressed with a reason.
func holdForever(s *snapshot) {
	s.ref()
	//vwlint:ignore refbalance process-lifetime pin, released at shutdown
	return
}
