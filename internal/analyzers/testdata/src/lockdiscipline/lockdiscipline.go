// Package lockdiscipline exercises the *Locked calling convention.
package lockdiscipline

import "sync"

type store struct {
	mu    sync.Mutex
	rw    sync.RWMutex
	items map[string]int
}

func (s *store) getLocked(k string) int { return s.items[k] }

func (s *store) evictLocked() { delete(s.items, "stale") }

// Get acquires the mutex in the same body: allowed.
func (s *store) Get(k string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.getLocked(k)
}

// Peek takes a read lock: also allowed.
func (s *store) Peek(k string) int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return s.getLocked(k)
}

// flushLocked is itself *Locked, so its callees inherit the claim.
func (s *store) flushLocked() {
	s.evictLocked()
}

// Evict never takes a lock anywhere in its body.
func (s *store) Evict() {
	s.evictLocked() // want "evictLocked is called without holding a lock"
}

// Broken only unlocks; an Unlock is not an acquisition.
func (s *store) Broken(k string) int {
	defer s.mu.Unlock()
	return s.getLocked(k) // want "getLocked is called without holding a lock"
}

func scrubLocked(m map[string]int) { clear(m) }

// Plain functions are held to the convention too.
func scrub(m map[string]int) {
	scrubLocked(m) // want "scrubLocked is called without holding a lock"
}

// Suppression with a reason silences the diagnostic.
func scrubAtStartup(m map[string]int) {
	//vwlint:ignore lockdiscipline the store is single-threaded until serving starts
	scrubLocked(m)
}

// TryLock counts as an acquisition.
func (s *store) Maybe(k string) int {
	if !s.mu.TryLock() {
		return 0
	}
	defer s.mu.Unlock()
	return s.getLocked(k)
}
