// Package arenaescape exercises the arena-lifetime rules with a local
// //vw:arena-marked Statement stand-in.
package arenaescape

// Statement is the arena-owning parse result; everything reachable
// from it is recycled by the next Parse.
//
//vw:arena
type Statement struct {
	Select *SelectStmt
}

type SelectStmt struct {
	Where Expr
	Cols  []*ColRef
}

type Expr interface{ isExpr() }

type ColRef struct{ Name string }

func (*ColRef) isExpr() {}

// parser is arena-scoped state; stores into it stay inside the arena
// lifetime.
//
//vw:arena
type parser struct {
	out *Statement
}

func (p *parser) set(s *Statement) {
	p.out = s // ok: arena-to-arena store
}

// plan outlives Parse; arena values must not be stored into it.
type plan struct {
	filter Expr
	name   string
}

var lastStmt *Statement

func nameOf(e Expr) string {
	if c, ok := e.(*ColRef); ok {
		return c.Name
	}
	return ""
}

// CloneExpr stands in for the real deep copy.
func CloneExpr(e Expr) Expr { return e }

func build(stmt *Statement) *plan {
	p := &plan{}
	p.filter = stmt.Select.Where       // want "arena-owned value stored in field filter of non-arena type plan"
	p.name = nameOf(stmt.Select.Where) // ok: derived string, not a node
	lastStmt = stmt                    // want "arena-owned value stored in package-level variable lastStmt"
	return p
}

func buildLit(stmt *Statement) *plan {
	return &plan{filter: stmt.Select.Where} // want "arena-owned value stored into a composite literal of non-arena type plan"
}

func buildSafe(stmt *Statement) *plan {
	p := &plan{}
	p.filter = CloneExpr(stmt.Select.Where) // ok: deep copy
	return p
}

// link rewrites one arena node to point at another: allowed.
func link(stmt *Statement, e Expr) {
	stmt.Select.Where = e
}

type cache struct {
	byName map[string]Expr
}

func (c *cache) put(stmt *Statement) {
	c.byName["w"] = stmt.Select.Where // want "arena-owned value stored in a long-lived map"
}

func localIndex(stmt *Statement) int {
	seen := map[string]Expr{}
	seen["w"] = stmt.Select.Where // ok: Parse-scoped local map
	return len(seen)
}

func spawn(stmt *Statement, sink chan<- string) {
	go func() {
		sink <- nameOf(stmt.Select.Where) // want "goroutine captures arena-owned variable stmt"
	}()
}

func spawnSafe(stmt *Statement, sink chan<- string) {
	name := nameOf(stmt.Select.Where)
	go func() {
		sink <- name // ok: captures only the derived string
	}()
}

// Suppression with a reason is honored.
func buildPinned(stmt *Statement) *plan {
	p := &plan{}
	//vwlint:ignore arenaescape this plan is discarded before the next Parse by construction
	p.filter = stmt.Select.Where
	return p
}
