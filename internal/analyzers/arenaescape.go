package analyzers

import (
	"go/ast"
	"go/types"
	"strings"
)

// ArenaEscape guards the zero-allocation SQL front end: sql.Parse
// returns a *Statement whose AST nodes live in a reusable arena that
// is recycled on the next Parse with the same arena. Anything reachable
// from the Statement — node pointers, expression interfaces — is
// therefore valid only for the documented Parse lifetime (plan
// construction), and must not be stored anywhere that outlives it:
// struct fields of non-arena types, package-level variables, maps held
// in fields, or goroutines. The canonical fix is to deep-copy what the
// plan keeps (Clone*/Copy* helpers) or keep only derived data (plain
// strings are immutable and safe).
//
// Arena-owned types are those reachable from a type marked //vw:arena
// in the package under analysis, or — for consumers of the front
// end — reachable from Statement in an imported package named sql.
// Stores into other arena-owned values are allowed: node-to-node links
// stay inside the arena lifetime by construction.
var ArenaEscape = &Analyzer{
	Name: "arenaescape",
	Doc: "values reachable from an arena-owning *sql.Statement must not " +
		"outlive Parse; deep-copy what the plan keeps",
	Run: runArenaEscape,
}

func runArenaEscape(pass *Pass) {
	set := arenaTypes(pass)
	if len(set) == 0 {
		return
	}
	isArena := func(t types.Type) bool { return arenaType(t, set) }

	for _, fd := range funcDecls(pass) {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for li, lhs := range n.Lhs {
					var rhs ast.Expr
					if len(n.Rhs) == len(n.Lhs) {
						rhs = n.Rhs[li]
					} else if len(n.Rhs) == 1 {
						rhs = n.Rhs[0]
					}
					if rhs == nil || !exprIsArena(pass.Info, rhs, isArena) || isDeepCopy(rhs) {
						continue
					}
					checkArenaTarget(pass, lhs, set)
				}
			case *ast.CompositeLit:
				// Arena values placed in a non-arena composite literal
				// escape with the literal.
				tv, ok := pass.Info.Types[n]
				if !ok || isArena(tv.Type) {
					return true
				}
				if _, isStruct := deref(tv.Type).Underlying().(*types.Struct); !isStruct {
					return true
				}
				for _, el := range n.Elts {
					val := el
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						val = kv.Value
					}
					if exprIsArena(pass.Info, val, isArena) && !isDeepCopy(val) {
						pass.Reportf(val.Pos(),
							"arena-owned value stored into a composite literal of non-arena type %s; it is recycled by the next Parse — deep-copy it",
							types.TypeString(tv.Type, types.RelativeTo(pass.Pkg)))
					}
				}
			case *ast.GoStmt:
				// A goroutine outlives any statement-scoped lifetime
				// guarantee: flag arena values it captures or receives.
				for _, arg := range n.Call.Args {
					if exprIsArena(pass.Info, arg, isArena) && !isDeepCopy(arg) {
						pass.Reportf(arg.Pos(),
							"arena-owned value passed to a goroutine, which may outlive the Parse arena; deep-copy it first")
					}
				}
				if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
					reportArenaCaptures(pass, lit, isArena)
				}
			}
			return true
		})
	}
}

// checkArenaTarget flags stores of arena values into locations that
// outlive Parse.
func checkArenaTarget(pass *Pass, lhs ast.Expr, set map[*types.Named]bool) {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		obj := objOf(pass.Info, l)
		if v, ok := obj.(*types.Var); ok && v.Parent() == pass.Pkg.Scope() {
			pass.Reportf(lhs.Pos(),
				"arena-owned value stored in package-level variable %s; it is recycled by the next Parse — deep-copy it", l.Name)
		}
	case *ast.SelectorExpr:
		sel, ok := pass.Info.Selections[l]
		if !ok || sel.Kind() != types.FieldVal {
			return
		}
		recv := sel.Recv()
		if arenaType(recv, set) {
			return // node-to-node link, stays inside the arena lifetime
		}
		pass.Reportf(lhs.Pos(),
			"arena-owned value stored in field %s of non-arena type %s; it is recycled by the next Parse — deep-copy it",
			sel.Obj().Name(), types.TypeString(deref(recv), types.RelativeTo(pass.Pkg)))
	case *ast.IndexExpr:
		tv, ok := pass.Info.Types[l.X]
		if !ok {
			return
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return
		}
		// A map that is itself a local variable has Parse-scoped
		// lifetime; maps reached through fields or package vars do not.
		if id, ok := ast.Unparen(l.X).(*ast.Ident); ok {
			if v, ok := objOf(pass.Info, id).(*types.Var); ok && v.Parent() != pass.Pkg.Scope() && !v.IsField() {
				return
			}
		}
		pass.Reportf(lhs.Pos(),
			"arena-owned value stored in a long-lived map; it is recycled by the next Parse — deep-copy it")
	}
}

// reportArenaCaptures flags free variables of a goroutine literal whose
// types are arena-owned.
func reportArenaCaptures(pass *Pass, lit *ast.FuncLit, isArena func(types.Type) bool) {
	seen := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := pass.Info.Uses[id].(*types.Var)
		if !ok || seen[obj] || obj.IsField() {
			return true
		}
		// Captured: declared outside the literal but not at package level.
		if obj.Parent() == pass.Pkg.Scope() || obj.Pos() > lit.Pos() && obj.Pos() < lit.End() {
			return true
		}
		seen[obj] = true
		if isArena(obj.Type()) {
			pass.Reportf(id.Pos(),
				"goroutine captures arena-owned variable %s, which may be recycled before the goroutine runs; deep-copy it", obj.Name())
		}
		return true
	})
}

// exprIsArena reports whether e evaluates to an arena-owned value.
func exprIsArena(info *types.Info, e ast.Expr, isArena func(types.Type) bool) bool {
	tv, ok := info.Types[e]
	return ok && tv.Type != nil && isArena(tv.Type)
}

// isDeepCopy reports whether e is a call whose name promises a fresh
// copy (Clone, Copy, DeepCopy prefixes) — the sanctioned way to keep
// AST-shaped data past the arena lifetime.
func isDeepCopy(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	name := calleeName(call)
	for _, p := range []string{"Clone", "Copy", "DeepCopy", "clone", "copy", "deepCopy"} {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// arenaTypes computes the set of arena-owned named types: the closure
// of field/element reachability from every root, restricted to the
// root's own package, plus implementers of reachable interfaces.
func arenaTypes(pass *Pass) map[*types.Named]bool {
	var roots []*types.TypeName
	// Same-package roots carry an explicit //vw:arena marker.
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if hasMarker(ts.Doc, "//vw:arena") || hasMarker(ts.Comment, "//vw:arena") ||
					(len(gd.Specs) == 1 && hasMarker(gd.Doc, "//vw:arena")) {
					if tn, ok := pass.Info.Defs[ts.Name].(*types.TypeName); ok {
						roots = append(roots, tn)
					}
				}
			}
		}
	}
	// Imported front end: Statement in any imported package named sql.
	for _, imp := range pass.Pkg.Imports() {
		if imp.Name() == "sql" {
			if tn, ok := imp.Scope().Lookup("Statement").(*types.TypeName); ok {
				roots = append(roots, tn)
			}
		}
	}
	set := map[*types.Named]bool{}
	for _, root := range roots {
		home := root.Pkg()
		var visit func(t types.Type)
		visit = func(t types.Type) {
			switch t := types.Unalias(t).(type) {
			case *types.Named:
				if t.Obj().Pkg() != home || set[t] {
					return
				}
				set[t] = true
				visit(t.Underlying())
			case *types.Pointer:
				visit(t.Elem())
			case *types.Slice:
				visit(t.Elem())
			case *types.Array:
				visit(t.Elem())
			case *types.Map:
				visit(t.Key())
				visit(t.Elem())
			case *types.Chan:
				visit(t.Elem())
			case *types.Struct:
				for i := 0; i < t.NumFields(); i++ {
					visit(t.Field(i).Type())
				}
			}
		}
		visit(root.Type())
		// Node interfaces (e.g. Expr) admit every implementation in the
		// arena package; fixpoint until no new types join.
		for {
			added := false
			for n := range set {
				iface, ok := n.Underlying().(*types.Interface)
				if !ok {
					continue
				}
				for _, name := range home.Scope().Names() {
					tn, ok := home.Scope().Lookup(name).(*types.TypeName)
					if !ok {
						continue
					}
					cand, ok := types.Unalias(tn.Type()).(*types.Named)
					if !ok || set[cand] {
						continue
					}
					if types.Implements(cand, iface) || types.Implements(types.NewPointer(cand), iface) {
						before := len(set)
						visit(cand)
						if len(set) != before {
							added = true
						}
					}
				}
			}
			if !added {
				break
			}
		}
	}
	return set
}

// arenaType reports whether t is arena-owned after unwrapping
// pointers, slices, arrays and map values.
func arenaType(t types.Type, set map[*types.Named]bool) bool {
	for {
		t = types.Unalias(t)
		if n, ok := t.(*types.Named); ok {
			if set[n] {
				return true
			}
		}
		switch u := t.Underlying().(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		case *types.Map:
			return arenaType(u.Key(), set) || arenaType(u.Elem(), set)
		default:
			return false
		}
	}
}
