package analyzers

import (
	"go/ast"
	"go/types"
)

// CtxNext enforces the cancellation contract: every Next method on an
// operator type must poll its context (ctx.Err/ctx.Done, usually via
// core.ctxErr) on some path, so a canceled statement stops at the next
// vector boundary instead of running to completion; and every loop
// that moves more than one batch per call — pulling child batches
// while materializing, or pushing batches into an exchange channel —
// must poll per iteration, because one Next invocation of a
// stop-and-go operator can otherwise consume the entire input while
// cancellation waits.
//
// Operator types are those implementing an interface named Operator,
// either declared in the package under analysis or imported from a
// package named core. The canonical fix is a `if err := ctxErr(ctx);
// err != nil { return nil, err }` at the top of the loop body.
var CtxNext = &Analyzer{
	Name: "ctxnext",
	Doc: "operator Next methods must poll ctx.Err/ctx.Done, and " +
		"multi-batch loops must poll once per iteration",
	Run: runCtxNext,
}

func runCtxNext(pass *Pass) {
	ifaces := operatorInterfaces(pass)
	if len(ifaces) == 0 {
		return
	}
	decls := funcDecls(pass)
	direct := map[*types.Func]bool{}
	for fn, fd := range decls {
		direct[fn] = containsCtxCheck(pass.Info, fd.Body)
	}
	// checks reports whether node polls a context directly or through a
	// one-level call into another function of this package.
	checks := func(n ast.Node) bool {
		if containsCtxCheck(pass.Info, n) {
			return true
		}
		found := false
		ast.Inspect(n, func(n ast.Node) bool {
			if found {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if callee := calleeFunc(pass.Info, call); callee != nil && direct[callee] {
					found = true
					return false
				}
			}
			return true
		})
		return found
	}

	for fn, fd := range decls {
		if fd.Recv == nil || len(fd.Recv.List) == 0 {
			continue
		}
		recv := fn.Signature().Recv()
		if recv == nil || !implementsAny(recv.Type(), ifaces) {
			continue
		}
		if fd.Name.Name == "Next" && !checks(fd.Body) {
			pass.Reportf(fd.Name.Pos(),
				"operator Next never polls its context; cancellation cannot stop this operator (add a ctxErr/ctx.Err check)")
		}
		// Per-iteration rule: any loop in any method of an operator type
		// that can move more than one batch must poll inside the loop.
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch loop := n.(type) {
			case *ast.ForStmt:
				body = loop.Body
			case *ast.RangeStmt:
				body = loop.Body
			default:
				return true
			}
			if !isBatchLoop(pass.Info, body) {
				return true
			}
			if !checks(body) {
				pass.Reportf(n.Pos(),
					"multi-batch loop never polls the context; a canceled statement would run this loop to completion (check ctxErr per iteration)")
			}
			return true
		})
	}
}

// operatorInterfaces collects the Operator interfaces in scope: one
// declared in this package, or one imported from a package named core.
func operatorInterfaces(pass *Pass) []*types.Interface {
	var out []*types.Interface
	add := func(scope *types.Scope) {
		obj := scope.Lookup("Operator")
		if tn, ok := obj.(*types.TypeName); ok {
			if iface, ok := tn.Type().Underlying().(*types.Interface); ok {
				out = append(out, iface)
			}
		}
	}
	add(pass.Pkg.Scope())
	for _, imp := range pass.Pkg.Imports() {
		if imp.Name() == "core" {
			add(imp.Scope())
		}
	}
	return out
}

func implementsAny(t types.Type, ifaces []*types.Interface) bool {
	for _, iface := range ifaces {
		if types.Implements(t, iface) {
			return true
		}
		if _, isPtr := t.Underlying().(*types.Pointer); !isPtr {
			if types.Implements(types.NewPointer(t), iface) {
				return true
			}
		}
	}
	return false
}

// isBatchLoop reports whether the loop body moves batches: it pulls
// child batches via an operator Next call, or sends a batch on a
// channel (the exchange producer pattern).
func isBatchLoop(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if isOperatorNextResult(info, n) {
				found = true
				return false
			}
		case *ast.SendStmt:
			if tv, ok := info.Types[n.Value]; ok && isBatch(tv.Type) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
