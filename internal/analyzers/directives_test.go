package analyzers_test

import (
	"path/filepath"
	"strings"
	"testing"

	"vectorwise/internal/analyzers"
)

// TestIgnoreDirectives pins the //vwlint:ignore contract on the ignore
// fixture: well-formed directives (standalone, trailing, multi-name)
// suppress; a missing reason or an unknown analyzer name is a
// diagnostic in its own right and suppresses nothing; a directive for
// the wrong analyzer suppresses nothing.
func TestIgnoreDirectives(t *testing.T) {
	pkg, err := analyzers.LoadDir(filepath.Join("testdata", "src", "ignore"))
	if err != nil {
		t.Fatalf("loading ignore fixture: %v", err)
	}
	findings := analyzers.Run([]*analyzers.Package{pkg}, analyzers.All())

	var directive, lockdisc []analyzers.Finding
	for _, f := range findings {
		switch f.Analyzer {
		case analyzers.DirectiveAnalyzer:
			directive = append(directive, f)
		case "lockdiscipline":
			lockdisc = append(lockdisc, f)
		default:
			t.Errorf("unexpected analyzer in findings: %s", f)
		}
	}

	// The three malformed directives report under the vwlint
	// pseudo-analyzer, in source order.
	if len(directive) != 3 {
		t.Fatalf("want 3 directive diagnostics, got %d: %v", len(directive), directive)
	}
	wantMsgs := []string{
		"requires a non-empty reason",
		`names unknown analyzer "nosuchcheck"`,
		"needs an analyzer name and a reason",
	}
	for i, want := range wantMsgs {
		if !strings.Contains(directive[i].Message, want) {
			t.Errorf("directive diagnostic %d = %q, want substring %q", i, directive[i].Message, want)
		}
	}

	// Exactly the three unsuppressed getLocked calls surface: under the
	// reason-less directive, the unknown-name directive, and the
	// wrong-analyzer directive. The three well-formed suppressions
	// (standalone, trailing, multi-name) hold.
	if len(lockdisc) != 3 {
		t.Fatalf("want 3 unsuppressed lockdiscipline findings, got %d: %v", len(lockdisc), lockdisc)
	}
	// Each surviving finding sits on the line after its (ineffective)
	// directive diagnostic or its standalone directive line.
	for _, f := range lockdisc {
		if !strings.Contains(f.Message, "getLocked is called without holding a lock") {
			t.Errorf("unexpected lockdiscipline message: %s", f)
		}
	}
}
