package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// RefBalance enforces snapshot refcount hygiene: in any function that
// acquires a counted reference — calling a ref() method on a type that
// pairs it with unref(), incrementing a field tagged //vw:refcount, or
// calling a same-package function documented //vw:owns (its result
// carries a reference the caller must release) — every return path
// must either release the reference (unref call or defer, on a path
// that dominates the return) or transfer ownership: return the
// acquired value itself, or annotate the hand-off line //vw:owns.
//
// The canonical fix for an error path is an explicit unref before the
// return; the canonical transfer is storing the reference into the
// owning struct on a line annotated //vw:owns (whose Close/release
// path then balances it).
var RefBalance = &Analyzer{
	Name: "refbalance",
	Doc: "every path out of a function that refs a snapshot must unref " +
		"or transfer ownership (//vw:owns)",
	Run: runRefBalance,
}

func runRefBalance(pass *Pass) {
	taggedFields := refcountFields(pass)
	ownsFuncs := map[*types.Func]bool{}
	decls := funcDecls(pass)
	for fn, fd := range decls {
		if hasMarker(fd.Doc, "//vw:owns") {
			ownsFuncs[fn] = true
		}
	}
	ownsLines := ownsCommentLines(pass)
	for _, fd := range decls {
		// The ref/unref methods themselves manipulate the counter by
		// definition; balance is their callers' obligation.
		if strings.EqualFold(fd.Name.Name, "ref") || strings.EqualFold(fd.Name.Name, "unref") {
			continue
		}
		checkRefBalance(pass, fd, taggedFields, ownsFuncs, ownsLines)
	}
}

// refcountFields collects struct fields annotated //vw:refcount.
func refcountFields(pass *Pass) map[types.Object]bool {
	out := map[types.Object]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if !hasMarker(field.Doc, "//vw:refcount") && !hasMarker(field.Comment, "//vw:refcount") {
					continue
				}
				for _, name := range field.Names {
					if obj := pass.Info.Defs[name]; obj != nil {
						out[obj] = true
					}
				}
			}
			return true
		})
	}
	return out
}

// ownsCommentLines records every file line carrying a //vw:owns
// annotation (statement-level ownership-transfer marker).
func ownsCommentLines(pass *Pass) map[*token.File]map[int]bool {
	out := map[*token.File]map[int]bool{}
	for _, f := range pass.Files {
		tf := pass.Fset.File(f.Pos())
		lines := map[int]bool{}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if isMarkerComment(c.Text, "//vw:owns") {
					lines[tf.Line(c.Pos())] = true
				}
			}
		}
		out[tf] = lines
	}
	return out
}

// hasRefPair reports whether t's pointer method set contains both ref
// and unref (any capitalization pairing).
func hasRefPair(t types.Type) bool {
	n := namedOf(t)
	if n == nil {
		return false
	}
	ms := types.NewMethodSet(types.NewPointer(n))
	has := func(name string) bool {
		for i := 0; i < ms.Len(); i++ {
			if strings.EqualFold(ms.At(i).Obj().Name(), name) {
				return true
			}
		}
		return false
	}
	return has("ref") && has("unref")
}

// event is one acquisition or release inside a function body.
type event struct {
	pos   token.Pos
	scope ast.Node   // innermost enclosing scope node
	chain []ast.Node // full enclosing-scope chain, outermost first
}

// refWalker performs the block-structured path analysis. A release
// covers a return iff it precedes it and its innermost scope encloses
// the return — the approximation of dominance that matches idiomatic
// Go (early-return error handling, defer pairing).
type refWalker struct {
	pass      *Pass
	tagged    map[types.Object]bool
	ownsFuncs map[*types.Func]bool
	ownsLines map[*token.File]map[int]bool
	tf        *token.File

	stack    []ast.Node
	acquired []event
	acqExprs []string // ExprString of each acquired value
	releases []event
	returns  []struct {
		ret *ast.ReturnStmt
		ev  event
	}
	leaks []token.Pos // owns-func results that are discarded outright
}

func checkRefBalance(pass *Pass, fd *ast.FuncDecl, tagged map[types.Object]bool, ownsFuncs map[*types.Func]bool, ownsLines map[*token.File]map[int]bool) {
	w := &refWalker{
		pass: pass, tagged: tagged, ownsFuncs: ownsFuncs, ownsLines: ownsLines,
		tf: pass.Fset.File(fd.Pos()),
	}
	w.walkBlock(fd.Body)
	for _, pos := range w.leaks {
		pass.Reportf(pos, "owned reference is discarded; assign it and unref (or transfer with //vw:owns)")
	}
	if len(w.acquired) == 0 {
		return
	}
	first := w.acquired[0].pos
	checked := false
	for _, r := range w.returns {
		if r.ret.Pos() < first {
			continue
		}
		checked = true
		if !w.covered(r.ev, r.ret) {
			pass.Reportf(r.ret.Pos(),
				"return path leaks the reference acquired at %s; unref before returning or annotate the transfer //vw:owns",
				pass.Fset.Position(first))
		}
	}
	if !checked {
		// No explicit return after the acquisition: falling off the end
		// must still balance.
		end := event{pos: fd.Body.Rbrace, scope: fd.Body, chain: []ast.Node{fd.Body}}
		if !w.covered(end, nil) {
			pass.Reportf(fd.Body.Rbrace,
				"function end leaks the reference acquired at %s; unref before returning or annotate the transfer //vw:owns",
				pass.Fset.Position(first))
		}
	}
}

// covered reports whether the return (or fall-off) event is preceded by
// a release whose scope encloses it, returns an acquired value, or sits
// on a //vw:owns line.
func (w *refWalker) covered(ret event, rs *ast.ReturnStmt) bool {
	if rs != nil {
		if lines := w.ownsLines[w.tf]; lines != nil && lines[w.tf.Line(rs.Pos())] {
			return true
		}
		for _, res := range rs.Results {
			s := types.ExprString(ast.Unparen(res))
			for _, acq := range w.acqExprs {
				if acq != "" && s == acq {
					return true // ownership transfers with the return value
				}
			}
		}
	}
	for _, rel := range w.releases {
		if rel.pos < ret.pos && w.encloses(rel, ret) {
			return true
		}
	}
	return false
}

// encloses reports whether release's innermost scope is on the
// return's scope chain.
func (w *refWalker) encloses(rel, ret event) bool {
	if rel.scope == nil {
		return true // function-body level
	}
	for _, s := range ret.chain {
		if s == rel.scope {
			return true
		}
	}
	return false
}

// walkBlock and walkStmt maintain the scope stack.
func (w *refWalker) walkBlock(b *ast.BlockStmt) {
	if b == nil {
		return
	}
	w.stack = append(w.stack, b)
	for _, s := range b.List {
		w.walkStmt(s)
	}
	w.stack = w.stack[:len(w.stack)-1]
}

func (w *refWalker) walkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		w.walkBlock(s)
	case *ast.IfStmt:
		w.scanLeaf(s.Init)
		w.scanExpr(s.Cond)
		w.walkBlock(s.Body)
		if s.Else != nil {
			w.walkStmt(s.Else)
		}
	case *ast.ForStmt:
		w.scanLeaf(s.Init)
		w.scanExpr(s.Cond)
		w.scanLeaf(s.Post)
		w.walkBlock(s.Body)
	case *ast.RangeStmt:
		w.scanExpr(s.X)
		w.walkBlock(s.Body)
	case *ast.SwitchStmt:
		w.scanLeaf(s.Init)
		w.scanExpr(s.Tag)
		w.walkClauses(s.Body)
	case *ast.TypeSwitchStmt:
		w.scanLeaf(s.Init)
		w.scanLeaf(s.Assign)
		w.walkClauses(s.Body)
	case *ast.SelectStmt:
		w.walkClauses(s.Body)
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt)
	case *ast.ReturnStmt:
		w.scanLeaf(s) // releases in return expressions count first
		w.returns = append(w.returns, struct {
			ret *ast.ReturnStmt
			ev  event
		}{s, w.eventHere(s.Pos())})
	default:
		w.scanLeaf(s)
	}
}

func (w *refWalker) walkClauses(body *ast.BlockStmt) {
	for _, c := range body.List {
		var stmts []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				w.scanExpr(e)
			}
			stmts = c.Body
		case *ast.CommClause:
			w.scanLeaf(c.Comm)
			stmts = c.Body
		default:
			continue
		}
		w.stack = append(w.stack, c)
		for _, s := range stmts {
			w.walkStmt(s)
		}
		w.stack = w.stack[:len(w.stack)-1]
	}
}

// eventHere snapshots the current scope chain.
func (w *refWalker) eventHere(pos token.Pos) event {
	var scope ast.Node
	if len(w.stack) > 0 {
		scope = w.stack[len(w.stack)-1]
	}
	return event{pos: pos, scope: scope, chain: append([]ast.Node(nil), w.stack...)}
}

// scanLeaf records acquisitions/releases in a non-compound statement.
func (w *refWalker) scanLeaf(s ast.Stmt) {
	if s == nil {
		return
	}
	// A statement sitting on a //vw:owns line is a sanctioned transfer.
	if lines := w.ownsLines[w.tf]; lines != nil && lines[w.tf.Line(s.Pos())] {
		w.releases = append(w.releases, w.eventHere(s.Pos()))
	}
	if inc, ok := s.(*ast.IncDecStmt); ok && inc.Tok == token.INC {
		if sel, ok := ast.Unparen(inc.X).(*ast.SelectorExpr); ok {
			if obj, ok := w.pass.Info.Uses[sel.Sel]; ok && w.tagged[obj] {
				w.acquire(inc.Pos(), types.ExprString(ast.Unparen(sel.X)))
			}
		}
	}
	// Track whether an owns-func result is bound to a variable; a bare
	// ExprStmt call discards the reference outright.
	if es, ok := s.(*ast.ExprStmt); ok {
		if call, ok := ast.Unparen(es.X).(*ast.CallExpr); ok {
			if f := calleeFunc(w.pass.Info, call); f != nil && w.ownsFuncs[f] {
				w.leaks = append(w.leaks, call.Pos())
			}
		}
	}
	if as, ok := s.(*ast.AssignStmt); ok && len(as.Rhs) == 1 {
		if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok {
			if f := calleeFunc(w.pass.Info, call); f != nil && w.ownsFuncs[f] {
				if id, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident); ok && id.Name != "_" {
					w.acquire(as.Pos(), id.Name)
				} else {
					w.leaks = append(w.leaks, call.Pos())
				}
			}
		}
	}
	w.scanExpr(s)
}

// scanExpr records ref()/unref() calls under n (skipping nested
// function literals, which are separate analysis units).
func (w *refWalker) scanExpr(n ast.Node) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name := sel.Sel.Name
		if !strings.EqualFold(name, "ref") && !strings.EqualFold(name, "unref") {
			return true
		}
		tv, ok := w.pass.Info.Types[sel.X]
		if !ok || !w.refcounted(tv.Type) {
			return true
		}
		if strings.EqualFold(name, "unref") {
			w.releases = append(w.releases, w.eventHere(call.Pos()))
		} else {
			w.acquire(call.Pos(), types.ExprString(ast.Unparen(sel.X)))
		}
		return true
	})
}

// refcounted reports whether t carries a counted reference: a ref/unref
// method pair, or a //vw:refcount-tagged field (types like dbSnapshot
// expose only unref; acquisition is a direct increment of the tagged
// field).
func (w *refWalker) refcounted(t types.Type) bool {
	if hasRefPair(t) {
		return true
	}
	n := namedOf(t)
	if n == nil {
		return false
	}
	st, ok := n.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if w.tagged[st.Field(i)] {
			return true
		}
	}
	return false
}

func (w *refWalker) acquire(pos token.Pos, expr string) {
	w.acquired = append(w.acquired, w.eventHere(pos))
	w.acqExprs = append(w.acqExprs, expr)
}
