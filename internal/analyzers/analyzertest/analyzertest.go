// Package analyzertest runs analyzers against testdata fixtures and
// checks their diagnostics against // want comments, mirroring
// golang.org/x/tools/go/analysis/analysistest (which the module
// deliberately does not depend on).
//
// Fixture files mark expected diagnostics with trailing comments:
//
//	b.Sel[0] = 1 // want "writes through the child batch"
//
// Each quoted string is a regular expression that must match a
// diagnostic reported on that line; every diagnostic must be matched
// by a want and every want must match a diagnostic. Diagnostics flow
// through the full driver, so //vwlint:ignore directives in fixtures
// suppress (and malformed directives report) exactly as in vwlint.
package analyzertest

import (
	"go/ast"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"vectorwise/internal/analyzers"
)

// expectation is one want regexp at a file line.
type expectation struct {
	file string
	line int
	rx   *regexp.Regexp
	src  string
	met  bool
}

var wantRE = regexp.MustCompile(`// want (.*)$`)

// Run loads testdata/src/<fixture> as one package, runs the analyzers
// on it through the full vwlint driver, and compares diagnostics to
// the fixture's want comments.
func Run(t *testing.T, fixture string, as ...*analyzers.Analyzer) {
	t.Helper()
	dir := filepath.Join("testdata", "src", fixture)
	pkg, err := analyzers.LoadDir(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}
	wants := collectWants(t, pkg)
	findings := analyzers.Run([]*analyzers.Package{pkg}, as)
	for _, f := range findings {
		matched := false
		for _, w := range wants {
			if w.file == f.Pos.Filename && w.line == f.Pos.Line && w.rx.MatchString(f.Message) {
				w.met = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic %s", f)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.src)
		}
	}
}

// collectWants parses // want comments out of the fixture files.
func collectWants(t *testing.T, pkg *analyzers.Package) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range pkg.Files {
		tf := pkg.Fset.File(f.Pos())
		var walk func(cg *ast.CommentGroup)
		walk = func(cg *ast.CommentGroup) {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				line := tf.Line(c.Pos())
				for _, q := range splitQuoted(m[1]) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: bad want string %s: %v", tf.Name(), line, q, err)
					}
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", tf.Name(), line, pat, err)
					}
					out = append(out, &expectation{file: tf.Name(), line: line, rx: rx, src: pat})
				}
			}
		}
		for _, cg := range f.Comments {
			walk(cg)
		}
	}
	return out
}

// splitQuoted splits `"a" "b"` into quoted segments.
func splitQuoted(s string) []string {
	var out []string
	for {
		s = strings.TrimSpace(s)
		if !strings.HasPrefix(s, `"`) {
			return out
		}
		end := 1
		for end < len(s) {
			if s[end] == '\\' {
				end += 2
				continue
			}
			if s[end] == '"' {
				break
			}
			end++
		}
		if end >= len(s) {
			return out
		}
		out = append(out, s[:end+1])
		s = s[end+1:]
	}
}
