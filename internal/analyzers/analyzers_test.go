package analyzers_test

import (
	"testing"

	"vectorwise/internal/analyzers"
	"vectorwise/internal/analyzers/analyzertest"
)

func TestLockDiscipline(t *testing.T) {
	analyzertest.Run(t, "lockdiscipline", analyzers.LockDiscipline)
}

func TestSelAlias(t *testing.T) {
	analyzertest.Run(t, "selalias", analyzers.SelAlias)
}

func TestCtxNext(t *testing.T) {
	analyzertest.Run(t, "ctxnext", analyzers.CtxNext)
}

func TestArenaEscape(t *testing.T) {
	analyzertest.Run(t, "arenaescape", analyzers.ArenaEscape)
}

func TestRefBalance(t *testing.T) {
	analyzertest.Run(t, "refbalance", analyzers.RefBalance)
}

func TestSuiteNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range analyzers.All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q is missing a name, doc, or run function", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	if len(seen) != 5 {
		t.Errorf("expected the 5-analyzer suite, got %d", len(seen))
	}
}
