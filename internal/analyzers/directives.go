package analyzers

import (
	"go/ast"
	"go/token"
	"strings"
)

// DirectiveAnalyzer is the pseudo-analyzer name under which malformed
// //vwlint:ignore directives are reported. It is always enabled and
// cannot itself be suppressed.
const DirectiveAnalyzer = "vwlint"

const directivePrefix = "//vwlint:ignore"

// directive is one parsed //vwlint:ignore comment.
//
// Syntax: //vwlint:ignore <analyzer>[,<analyzer>...] <reason text>
//
// The reason is mandatory — tribal knowledge is exactly what the suite
// exists to eliminate, so every suppression must say why the invariant
// does not apply. A directive on a code line suppresses that line's
// diagnostics; a directive on a line of its own suppresses the next
// line's.
type directive struct {
	pos    token.Pos
	file   *token.File
	line   int
	names  []string
	reason string
}

// parseDirectives extracts every //vwlint:ignore directive in the files
// and validates it against the known analyzer names, reporting
// malformed directives (missing reason, unknown analyzer) as
// diagnostics in their own right. Only well-formed directives suppress.
func parseDirectives(fset *token.FileSet, files []*ast.File, known map[string]bool) ([]directive, []Diagnostic) {
	var dirs []directive
	var diags []Diagnostic
	for _, f := range files {
		tf := fset.File(f.Pos())
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //vwlint:ignoreXYZ — not ours
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					diags = append(diags, Diagnostic{Pos: c.Pos(), Analyzer: DirectiveAnalyzer,
						Message: "vwlint:ignore needs an analyzer name and a reason"})
					continue
				}
				names := strings.Split(fields[0], ",")
				bad := false
				for _, n := range names {
					if !known[n] {
						diags = append(diags, Diagnostic{Pos: c.Pos(), Analyzer: DirectiveAnalyzer,
							Message: "vwlint:ignore names unknown analyzer " + strconvQuote(n)})
						bad = true
					}
				}
				reason := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), fields[0]))
				if reason == "" {
					diags = append(diags, Diagnostic{Pos: c.Pos(), Analyzer: DirectiveAnalyzer,
						Message: "vwlint:ignore requires a non-empty reason after the analyzer name"})
					bad = true
				}
				if bad {
					continue
				}
				dirs = append(dirs, directive{
					pos: c.Pos(), file: tf, line: tf.Line(c.Pos()),
					names: names, reason: reason,
				})
			}
		}
	}
	return dirs, diags
}

func strconvQuote(s string) string { return `"` + s + `"` }

// codeLines records, per file, which lines hold non-comment tokens, so
// a directive can tell whether it trails code (suppress same line) or
// stands alone (suppress next line).
func codeLines(fset *token.FileSet, files []*ast.File) map[*token.File]map[int]bool {
	out := map[*token.File]map[int]bool{}
	for _, f := range files {
		tf := fset.File(f.Pos())
		lines := map[int]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n.(type) {
			case nil, *ast.Comment, *ast.CommentGroup, *ast.File:
				return true
			}
			lines[tf.Line(n.Pos())] = true
			return true
		})
		out[tf] = lines
	}
	return out
}

// suppress drops diagnostics covered by a well-formed directive.
func suppress(diags []Diagnostic, dirs []directive, fset *token.FileSet, files []*ast.File) []Diagnostic {
	if len(dirs) == 0 {
		return diags
	}
	code := codeLines(fset, files)
	// covered[file][line][analyzer]
	type key struct {
		file *token.File
		line int
		name string
	}
	covered := map[key]bool{}
	for _, d := range dirs {
		target := d.line
		if lines := code[d.file]; lines != nil && !lines[d.line] {
			target = d.line + 1
		}
		for _, n := range d.names {
			covered[key{d.file, target, n}] = true
		}
	}
	var out []Diagnostic
	for _, dg := range diags {
		if dg.Analyzer != DirectiveAnalyzer {
			tf := fset.File(dg.Pos)
			if covered[key{tf, tf.Line(dg.Pos), dg.Analyzer}] {
				continue
			}
		}
		out = append(out, dg)
	}
	return out
}
