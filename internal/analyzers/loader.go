package analyzers

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Imports    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

const listFields = "-json=ImportPath,Name,Dir,GoFiles,Imports,Export,Standard,DepOnly,Error"

// goList runs `go list -e -deps -export` on the patterns and returns
// the decoded package stream. -export makes the go command compile
// every listed package and record the path of its export data, which is
// what lets the loader type-check roots against fully compiled
// dependencies without golang.org/x/tools.
func goList(dir string, patterns []string) ([]*listPkg, error) {
	args := append([]string{"list", "-e", "-deps", "-export", listFields}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analyzers: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*listPkg
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analyzers: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter resolves imports from the export data files `go list
// -export` produced. One importer (and one FileSet) is shared across
// every root so dependency packages keep a single types.Package
// identity per load.
func exportImporter(fset *token.FileSet, index map[string]*listPkg) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		p, ok := index[path]
		if !ok || p.Export == "" {
			return nil, fmt.Errorf("analyzers: no export data for %q", path)
		}
		return os.Open(p.Export)
	})
}

// typeCheck parses and checks one package's files.
func typeCheck(fset *token.FileSet, imp types.Importer, path, dir string, fileNames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range fileNames {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analyzers: %v", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	pkg, _ := conf.Check(path, fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("analyzers: type-checking %s: %v (+%d more)", path, typeErrs[0], len(typeErrs)-1)
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: pkg, Info: info}, nil
}

// Load type-checks the packages matching the go patterns (e.g. "./...")
// relative to dir. Only non-test Go files are analyzed: the invariants
// vwlint enforces live in production code, and test files may
// legitimately poke at internals (e.g. calling *Locked helpers under a
// test-owned lock).
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	index := make(map[string]*listPkg, len(listed))
	var roots []*listPkg
	for _, p := range listed {
		index[p.ImportPath] = p
		if p.Error != nil && !p.DepOnly {
			return nil, fmt.Errorf("analyzers: %s: %s", p.ImportPath, p.Error.Err)
		}
		if !p.DepOnly && !p.Standard {
			roots = append(roots, p)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].ImportPath < roots[j].ImportPath })
	fset := token.NewFileSet()
	imp := exportImporter(fset, index)
	var out []*Package
	for _, r := range roots {
		if len(r.GoFiles) == 0 {
			continue
		}
		pkg, err := typeCheck(fset, imp, r.ImportPath, r.Dir, r.GoFiles)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// LoadDir type-checks the single package rooted at dir (every .go file
// in it), resolving its imports through `go list -export`. This is the
// fixture path: analyzer tests point it at testdata/src directories,
// which live outside the module's package patterns but inside the
// module, so std and module imports both resolve.
func LoadDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analyzers: %v", err)
	}
	var fileNames []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			fileNames = append(fileNames, e.Name())
		}
	}
	if len(fileNames) == 0 {
		return nil, fmt.Errorf("analyzers: no Go files in %s", dir)
	}
	sort.Strings(fileNames)

	// Pre-parse to discover the fixture's imports, then ask the go
	// command for export data for exactly those packages.
	fset := token.NewFileSet()
	importSet := map[string]bool{}
	for _, name := range fileNames {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ImportsOnly)
		if err != nil {
			return nil, fmt.Errorf("analyzers: %v", err)
		}
		for _, imp := range f.Imports {
			importSet[strings.Trim(imp.Path.Value, `"`)] = true
		}
	}
	index := map[string]*listPkg{}
	if len(importSet) > 0 {
		var paths []string
		for p := range importSet {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		listed, err := goList(dir, paths)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Error != nil {
				return nil, fmt.Errorf("analyzers: %s: %s", p.ImportPath, p.Error.Err)
			}
			index[p.ImportPath] = p
		}
	}
	fset = token.NewFileSet()
	imp := exportImporter(fset, index)
	return typeCheck(fset, imp, "fixture/"+filepath.Base(dir), dir, fileNames)
}
