package analyzers_test

import (
	"testing"

	"vectorwise/internal/analyzers"
)

// TestTreeIsClean runs the full analyzer suite over the real repository
// — exactly what `go run ./cmd/vwlint ./...` does in CI — and demands
// zero diagnostics. This is the regression test for every violation the
// suite found and this tree fixed: reverting the execCreateLocked
// rename (lockdiscipline), dropping the //vw:owns transfer annotation
// on openRowsLocked's success return (refbalance), or removing the
// justified arenaescape suppressions in classifyStmt all fail here.
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	pkgs, err := analyzers.Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("suspiciously few packages loaded: %d", len(pkgs))
	}
	findings := analyzers.Run(pkgs, analyzers.All())
	for _, f := range findings {
		t.Errorf("vwlint: %s", f)
	}
}
