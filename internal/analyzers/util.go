package analyzers

import (
	"go/ast"
	"go/types"
	"strings"
)

// funcDecls maps every function object declared in the package to its
// declaration (only those with bodies).
func funcDecls(pass *Pass) map[*types.Func]*ast.FuncDecl {
	out := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				out[obj] = fd
			}
		}
	}
	return out
}

// calleeFunc resolves the function or method a call invokes, or nil for
// indirect calls (function values, conversions, builtins).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
		}
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f // package-qualified call
		}
	}
	return nil
}

// calleeName is the syntactic name of the called function ("" for
// indirect calls through non-selector expressions).
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// rootIdent returns the leftmost identifier of a selector/index/slice
// chain (x in x.a.b[i].c), or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// deref strips one level of pointer.
func deref(t types.Type) types.Type {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// namedOf returns the named type of t after stripping pointers/aliases.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// isPkgFunc reports whether f is the named function from the package
// with the given path (e.g. the sync mutex methods).
func isPkgFunc(f *types.Func, pkgPath string, names ...string) bool {
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != pkgPath {
		return false
	}
	for _, n := range names {
		if f.Name() == n {
			return true
		}
	}
	return false
}

// isCtxCheck reports whether call polls a cancellation context: a
// context.Context Err/Done method call, or a call to a helper named
// ctxErr (the engine's per-batch check in internal/core).
func isCtxCheck(info *types.Info, call *ast.CallExpr) bool {
	if calleeName(call) == "ctxErr" {
		return true
	}
	f := calleeFunc(info, call)
	return isPkgFunc(f, "context", "Err", "Done", "Cause")
}

// containsCtxCheck reports whether any call under n polls a context.
func containsCtxCheck(info *types.Info, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && isCtxCheck(info, call) {
			found = true
			return false
		}
		return true
	})
	return found
}

// hasMarker reports whether the comment group contains a //vw:<marker>
// annotation line.
func hasMarker(doc *ast.CommentGroup, marker string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if isMarkerComment(c.Text, marker) {
			return true
		}
	}
	return false
}

// isMarkerComment reports whether the comment text IS a marker line —
// the marker at the very start, followed by nothing or whitespace — as
// opposed to prose that merely mentions the marker.
func isMarkerComment(text, marker string) bool {
	if !strings.HasPrefix(text, marker) {
		return false
	}
	rest := text[len(marker):]
	return rest == "" || rest[0] == ' ' || rest[0] == '\t'
}

// isBatch reports whether t (after pointer deref) is a named struct
// type called "Batch" carrying a slice field "Sel" — vector.Batch in
// the real tree, or a structural stand-in in fixtures.
func isBatch(t types.Type) bool {
	n := namedOf(t)
	if n == nil || n.Obj().Name() != "Batch" {
		return false
	}
	st, ok := n.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() == "Sel" {
			_, isSlice := f.Type().Underlying().(*types.Slice)
			return isSlice
		}
	}
	return false
}

// asSelOfBatch returns (base expr, true) when e is the selector
// <batch>.Sel on a Batch-typed value.
func asSelOfBatch(info *types.Info, e ast.Expr) (ast.Expr, bool) {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Sel" {
		return nil, false
	}
	if tv, ok := info.Types[sel.X]; ok && isBatch(tv.Type) {
		return sel.X, true
	}
	return nil, false
}

// isOperatorNextResult reports whether call is a method call named Next
// whose first result is a batch pointer — the shape of pulling a child
// operator's output.
func isOperatorNextResult(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Next" {
		return false
	}
	if _, ok := info.Selections[sel]; !ok {
		return false // package-qualified, not a method
	}
	tv, ok := info.Types[call]
	if !ok {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		return t.Len() > 0 && isBatch(t.At(0).Type())
	default:
		return isBatch(t)
	}
}

// objOf resolves an identifier to its object (definition or use).
func objOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Defs[id]; o != nil {
		return o
	}
	return info.Uses[id]
}
