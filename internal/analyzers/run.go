package analyzers

import (
	"fmt"
	"go/token"
	"sort"
)

// Finding is one position-resolved diagnostic, ready to print.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String formats the finding the way compilers do:
// path:line:col: analyzer: message.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// Run executes the analyzers over each package, applies
// //vwlint:ignore suppression, validates the directives themselves,
// and returns the surviving findings sorted by position.
func Run(pkgs []*Package, as []*Analyzer) []Finding {
	known := make(map[string]bool, len(as))
	for _, a := range as {
		known[a.Name] = true
	}
	var out []Finding
	for _, pkg := range pkgs {
		var diags []Diagnostic
		for _, a := range as {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &diags,
			}
			a.Run(pass)
		}
		dirs, dirDiags := parseDirectives(pkg.Fset, pkg.Files, known)
		diags = append(diags, dirDiags...)
		diags = suppress(diags, dirs, pkg.Fset, pkg.Files)
		for _, d := range diags {
			out = append(out, Finding{
				Pos:      pkg.Fset.Position(d.Pos),
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}
