package analyzers

import (
	"go/ast"
	"strings"
)

// LockDiscipline enforces the *Locked naming convention: a function
// whose name ends in "Locked" documents that it assumes its owner's
// mutex is already held, so it may only be called (a) from another
// *Locked function, or (b) from a function that itself acquires a
// sync.Mutex/RWMutex (Lock or RLock) somewhere in its body. Any other
// call site is running unlocked code that reads or writes guarded
// state — the bug class the convention exists to prevent.
//
// The canonical fix is to take the lock in the caller (with the usual
// defer-unlock pairing) or to hoist the call into an existing locked
// region; renaming the callee without adding locking is never the fix.
var LockDiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc: "calls to *Locked functions must come from *Locked functions or " +
		"from callers that acquire a sync mutex in the same body",
	Run: runLockDiscipline,
}

func runLockDiscipline(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if strings.HasSuffix(fd.Name.Name, "Locked") {
				continue // assumes the lock itself; callees inherit the claim
			}
			// Does this function acquire any sync mutex in its body
			// (including nested function literals, which run within the
			// same dynamic extent unless spawned — good enough for the
			// convention, and //vwlint:ignore covers exotic cases)?
			acquires := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if acquires {
					return false
				}
				if call, ok := n.(*ast.CallExpr); ok {
					if isPkgFunc(calleeFunc(pass.Info, call), "sync", "Lock", "RLock", "TryLock", "TryRLock") {
						acquires = true
						return false
					}
				}
				return true
			})
			if acquires {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				name := calleeName(call)
				if !strings.HasSuffix(name, "Locked") {
					return true
				}
				pass.Reportf(call.Pos(),
					"%s is called without holding a lock: the caller must acquire the guarding mutex or itself be a *Locked function",
					name)
				return true
			})
		}
	}
}
